package client

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"phonocmap/internal/config"
	"phonocmap/internal/core"
	"phonocmap/internal/runner"
	"phonocmap/internal/scenario"
	"phonocmap/internal/service"
	"phonocmap/internal/sweep"
)

func testSpec(budget int, seed int64) scenario.Spec {
	return scenario.Spec{
		App:       config.AppSpec{Builtin: "PIP"},
		Algorithm: "rs",
		Budget:    budget,
		Seed:      seed,
	}
}

func TestNewRejectsBadURLs(t *testing.T) {
	for _, bad := range []string{"", "not a url", "ftp://host", "http://"} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%q) accepted", bad)
		}
	}
	c, err := New("http://localhost:8080/")
	if err != nil {
		t.Fatal(err)
	}
	if c.BaseURL() != "http://localhost:8080" {
		t.Errorf("base URL %q not normalized", c.BaseURL())
	}
}

// TestServerDown: with nothing listening, every call fails with a
// transport error (after bounded retries) instead of hanging.
func TestServerDown(t *testing.T) {
	// Grab a port that is guaranteed dead.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	c, err := New("http://"+addr, WithRetries(1, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.RunScenario(ctx, testSpec(100, 1)); err == nil {
		t.Error("RunScenario against a dead server succeeded")
	}
	if _, err := c.Apps(ctx); err == nil {
		t.Error("Apps against a dead server succeeded")
	}
	var apiErr *APIError
	if _, err := c.Apps(ctx); errors.As(err, &apiErr) {
		t.Errorf("transport failure surfaced as an APIError: %v", err)
	}
}

// TestMidPollCancellation: cancelling the caller's context mid-wait
// cancels the job on the server (no orphaned run keeps burning a
// worker) and salvages the best-so-far partial result, matching the
// local backend's cancellation semantics.
func TestMidPollCancellation(t *testing.T) {
	srv := service.New(service.Config{Workers: 1, MaxBudget: 100_000_000})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	})
	c, err := New(ts.URL, WithPollInterval(5*time.Millisecond), WithoutEvents())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	spec := testSpec(50_000_000, 1) // far too long to finish
	spec.App.Builtin = "VOPD"
	res, err := c.RunScenario(ctx, spec)
	if err != nil {
		t.Fatalf("cancelled run returned %v, want the salvaged partial result", err)
	}
	if !res.Cancelled {
		t.Errorf("salvaged result not marked cancelled: %+v", res)
	}
	if res.Evals == 0 || len(res.Mapping) == 0 {
		t.Errorf("salvaged result carries no best-so-far point: %+v", res)
	}
	if res.Report != nil {
		t.Error("cancelled run carries an analysis report")
	}

	// The client's DELETE must have reached the server: its only job
	// settles as cancelled.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs")
		if err != nil {
			t.Fatal(err)
		}
		var jobs []service.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&jobs)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(jobs) != 1 {
			t.Fatalf("server knows %d jobs, want 1", len(jobs))
		}
		if jobs[0].State == service.StateCancelled {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never cancelled server-side (state %s)", jobs[0].State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestQueueFullRetry: 429 queue_full rejections are retried with
// backoff until the submission lands.
func TestQueueFullRetry(t *testing.T) {
	spec := testSpec(100, 1)
	norm := spec
	if _, err := norm.Normalize(); err != nil {
		t.Fatal(err)
	}
	status := service.JobStatus{
		ID: "job-000001", State: service.StateDone, Cached: true,
		Spec: norm, Evals: 100, IslandEvals: []int{100},
	}
	result := service.JobResult{
		ID: "job-000001", State: service.StateDone, Cached: true,
		Algorithm: "rs", Objective: "snr",
		Mapping: core.Mapping{0, 1, 2, 3, 4, 5, 6, 7},
		Score:   core.Score{Cost: -20, WorstSNRDB: 20}, Evals: 100, Seed: 1,
	}
	var submits atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		if submits.Add(1) <= 2 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(service.ErrorEnvelope{Error: service.ErrorDetail{
				Code: service.CodeQueueFull, Message: "job queue full (1 pending); retry later",
			}})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(status)
	})
	mux.HandleFunc("GET /v1/jobs/job-000001/result", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(result)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c, err := New(ts.URL, WithRetries(4, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunScenario(context.Background(), spec)
	if err != nil {
		t.Fatalf("queue-full retry failed: %v", err)
	}
	if got := submits.Load(); got != 3 {
		t.Errorf("submitted %d times, want 3 (two 429s, then accepted)", got)
	}
	if res.Score != result.Score || res.Evals != 100 {
		t.Errorf("unexpected result %+v", res)
	}

	// With retries exhausted, the queue_full envelope surfaces typed.
	submits.Store(-100) // next submissions all 429
	c2, err := New(ts.URL, WithRetries(1, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c2.RunScenario(context.Background(), spec)
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("exhausted retries returned %v, want *APIError", err)
	}
	if apiErr.Code != service.CodeQueueFull || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Errorf("got %+v, want queue_full/429", apiErr)
	}
}

// TestMalformedEnvelopeFallback: a non-envelope error body (a proxy, a
// crash page) still produces a usable *APIError carrying the raw text,
// and is not retried.
func TestMalformedEnvelopeFallback(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "text/plain")
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write([]byte("upstream exploded"))
	}))
	defer ts.Close()

	c, err := New(ts.URL, WithRetries(3, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.RunScenario(context.Background(), testSpec(100, 1))
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("got %v, want *APIError", err)
	}
	if apiErr.Code != "" {
		t.Errorf("malformed envelope produced code %q, want empty", apiErr.Code)
	}
	if apiErr.StatusCode != http.StatusInternalServerError || !strings.Contains(apiErr.Message, "upstream exploded") {
		t.Errorf("fallback error %+v does not carry the raw body", apiErr)
	}
	if !strings.Contains(apiErr.Error(), "upstream exploded") {
		t.Errorf("Error() %q hides the body", apiErr.Error())
	}
	if hits.Load() != 1 {
		t.Errorf("500 was tried %d times, want 1 (no blind retry of submissions)", hits.Load())
	}
}

// TestInvalidSpecIsTyped: a validation rejection surfaces as a typed
// invalid_spec APIError without retries.
func TestInvalidSpecIsTyped(t *testing.T) {
	c, _ := newTestBackend(t, service.Config{})
	spec := testSpec(100, 1)
	spec.App.Builtin = "NOPE"
	_, err := c.RunScenario(context.Background(), spec)
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("got %v, want *APIError", err)
	}
	if apiErr.Code != service.CodeInvalidSpec {
		t.Errorf("code %q, want invalid_spec", apiErr.Code)
	}
}

// TestUserAgent: every request identifies the SDK and its build
// version.
func TestUserAgent(t *testing.T) {
	var ua atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ua.Store(r.UserAgent())
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte("[]"))
	}))
	defer ts.Close()
	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Apps(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, _ := ua.Load().(string)
	if !strings.HasPrefix(got, "phonocmap-client/") || strings.TrimPrefix(got, "phonocmap-client/") == "" {
		t.Errorf("User-Agent %q, want phonocmap-client/<version>", got)
	}
}

// TestSSEWatchIsUsed: with events enabled (the default), a job wait
// consumes the SSE stream instead of polling the status endpoint.
func TestSSEWatchIsUsed(t *testing.T) {
	srv := service.New(service.Config{Workers: 1, MaxBudget: 10_000_000})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	})

	var events, polls atomic.Int32
	hc := &http.Client{Transport: countingTransport{events: &events, polls: &polls}}
	c, err := New(ts.URL, WithHTTPClient(hc))
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(100_000, 12)
	spec.App.Builtin = "VOPD"
	res, err := c.RunScenario(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals == 0 {
		t.Error("degenerate result")
	}
	if events.Load() == 0 {
		t.Error("SSE events endpoint never used")
	}
	if polls.Load() != 0 {
		t.Errorf("status polled %d times despite a live event stream", polls.Load())
	}
}

type countingTransport struct {
	events, polls *atomic.Int32
}

func (t countingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if strings.HasSuffix(r.URL.Path, "/events") {
		t.events.Add(1)
	} else if strings.HasPrefix(r.URL.Path, "/v1/jobs/") &&
		!strings.HasSuffix(r.URL.Path, "/result") && r.Method == http.MethodGet {
		t.polls.Add(1)
	}
	return http.DefaultTransport.RoundTrip(r)
}

// TestRunnerInterfaceCompliance: the client satisfies the Runner
// interface at compile time and behaves when asked for a sweep that
// fails validation.
func TestRunnerInterfaceCompliance(t *testing.T) {
	var _ runner.Runner = (*Client)(nil)
	c, _ := newTestBackend(t, service.Config{MaxSweepCells: 4})
	tooBig := sweep.Spec{
		Apps:    []config.AppSpec{{Builtin: "PIP"}},
		Seeds:   []int64{1, 2, 3, 4, 5},
		Budgets: []int{50},
	}
	_, err := c.RunSweep(context.Background(), tooBig, runner.SweepOptions{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != service.CodeInvalidSpec {
		t.Fatalf("oversized sweep returned %v, want invalid_spec APIError", err)
	}
}
