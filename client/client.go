// Package client is the typed Go SDK for phonocmap-serve: it implements
// the same Runner execution interface as the in-process backend
// (phonocmap.NewLocalRunner), against a remote server. Jobs and sweeps
// are submitted over the service's JSON API; progress arrives through
// the server's SSE event stream (with transparent fallback to polling
// with exponential backoff); context cancellation propagates to the
// server as a DELETE; queue-full rejections and transient failures of
// idempotent calls are retried with backoff; and every server error is
// decoded from the structured error envelope into a typed *APIError.
//
// The contract: for equal specs, a Client returns results identical to
// local execution — mappings, scores, evaluation counts, per-island
// breakdowns and analysis reports — because the server runs the same
// scenario compiler and sweep engine. The differential suite in this
// package enforces that equivalence against a live server handler.
//
//	c, err := client.New("http://localhost:8080")
//	res, err := c.RunScenario(ctx, spec)
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"phonocmap/internal/runner"
	"phonocmap/internal/service"
	"phonocmap/internal/version"
)

// maxErrorBody bounds how much of an error response is read while
// decoding the envelope (and echoed back when the envelope is
// malformed).
const maxErrorBody = 64 << 10

// APIError is a non-2xx server response, decoded from the service's
// structured error envelope. When a server (or an intermediary proxy)
// answers with something other than the envelope, Code is empty and
// Message carries the raw body text — the fallback keeps every failure
// inspectable.
type APIError struct {
	// StatusCode is the HTTP status of the response.
	StatusCode int
	// Code is the machine-readable error code (empty when the body was
	// not a valid envelope).
	Code service.ErrorCode
	// Message is the human-readable error message (or the raw body on a
	// malformed envelope).
	Message string
	// Details is the envelope's optional machine-readable context.
	Details map[string]any
}

func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("phonocmap server: %s (%s, HTTP %d)", e.Message, e.Code, e.StatusCode)
	}
	msg := e.Message
	if msg == "" {
		msg = http.StatusText(e.StatusCode)
	}
	return fmt.Sprintf("phonocmap server: HTTP %d: %s", e.StatusCode, msg)
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient replaces the underlying *http.Client (default: a
// dedicated client with no global timeout — job waits are bounded by
// the caller's context, not a transport deadline).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithPollInterval sets the initial status poll interval (default
// 50ms); successive polls back off exponentially to the max interval.
func WithPollInterval(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.pollInterval = d
		}
	}
}

// WithMaxPollInterval caps the poll backoff (default 2s).
func WithMaxPollInterval(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.maxPollInterval = d
		}
	}
}

// WithRetries configures transient-failure handling: up to attempts
// extra tries (default 4) starting at backoff (default 100ms, with the
// exponential envelope doubling per attempt and full jitter applied to
// each wait). Idempotent calls retry on transport errors and
// gateway-style 5xx; submissions additionally retry queue_full (429)
// rejections, which are safe to repeat by construction.
func WithRetries(attempts int, backoff time.Duration) Option {
	return func(c *Client) {
		if attempts >= 0 {
			c.retries = attempts
		}
		if backoff > 0 {
			c.retryBackoff = backoff
		}
	}
}

// WithUserAgent overrides the User-Agent header (default
// "phonocmap-client/<build version>").
func WithUserAgent(ua string) Option { return func(c *Client) { c.userAgent = ua } }

// WithoutEvents disables the SSE progress stream; job waits use status
// polling only. (SSE failures already fall back to polling; this option
// skips the attempt, e.g. through a proxy known to buffer streams.)
func WithoutEvents() Option { return func(c *Client) { c.useEvents = false } }

// WithNoCache asks the server to bypass its result cache for every
// submission from this client.
func WithNoCache() Option { return func(c *Client) { c.noCache = true } }

// Client is a phonocmap-serve API client. It is safe for concurrent
// use and implements the Runner interface, so callers written against
// it execute transparently on a remote worker pool.
type Client struct {
	base      string
	hc        *http.Client
	userAgent string

	pollInterval    time.Duration
	maxPollInterval time.Duration
	retries         int
	retryBackoff    time.Duration
	useEvents       bool
	noCache         bool

	// Transport-health counters, exposed through Metrics. They count
	// decisions, not requests: a retry is one backoff-and-repeat, an SSE
	// fallback is one stream abandoned for polling, a poll round is one
	// status GET while waiting on a job or sweep.
	nRetries      atomic.Int64
	nSSEFallbacks atomic.Int64
	nPollRounds   atomic.Int64
}

// Metrics is a snapshot of the client's transport-health counters —
// the SDK-side view of how smoothly the server conversation is going
// (retries climbing means rejections or flaky transport; SSE fallbacks
// mean a buffering proxy; poll rounds quantify wait traffic).
type Metrics struct {
	// Retries counts backoff-and-repeat cycles across all calls.
	Retries int64 `json:"retries"`
	// SSEFallbacks counts event streams abandoned for status polling.
	SSEFallbacks int64 `json:"sse_fallbacks"`
	// PollRounds counts status GETs issued while waiting on jobs and
	// sweeps.
	PollRounds int64 `json:"poll_rounds"`
}

// Metrics returns the client's transport-health counters.
func (c *Client) Metrics() Metrics {
	return Metrics{
		Retries:      c.nRetries.Load(),
		SSEFallbacks: c.nSSEFallbacks.Load(),
		PollRounds:   c.nPollRounds.Load(),
	}
}

var _ runner.Runner = (*Client)(nil)

// New builds a client for the server at baseURL (e.g.
// "http://localhost:8080").
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: bad server URL %q: %w", baseURL, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("client: server URL %q must be http(s)://host[:port]", baseURL)
	}
	c := &Client{
		base:            strings.TrimRight(u.String(), "/"),
		hc:              &http.Client{},
		userAgent:       version.UserAgent("phonocmap-client"),
		pollInterval:    50 * time.Millisecond,
		maxPollInterval: 2 * time.Second,
		retries:         4,
		retryBackoff:    100 * time.Millisecond,
		useEvents:       true,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// BaseURL returns the normalized server address the client talks to.
func (c *Client) BaseURL() string { return c.base }

// decodeError turns a non-2xx response into an *APIError, falling back
// to the raw body when it is not a valid envelope.
func decodeError(resp *http.Response) *APIError {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
	apiErr := &APIError{StatusCode: resp.StatusCode}
	var env service.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Code != "" {
		apiErr.Code = env.Error.Code
		apiErr.Message = env.Error.Message
		apiErr.Details = env.Error.Details
		return apiErr
	}
	apiErr.Message = strings.TrimSpace(string(body))
	return apiErr
}

// retryable reports whether an *APIError is worth repeating:
// queue_full is the server asking for exactly that, and gateway-style
// statuses are transient by nature. Validation errors, not-found and
// shutting_down are final.
func retryable(err *APIError) bool {
	switch err.Code {
	case service.CodeQueueFull:
		return true
	case "":
		return err.StatusCode == http.StatusBadGateway || err.StatusCode == http.StatusGatewayTimeout
	default:
		return false
	}
}

// do performs one API call with bounded retries, marshalling body (when
// non-nil) and decoding the response into out (when non-nil and the
// status is expectCode). It returns the final response status.
// idempotent additionally retries transport errors; submissions rely on
// the retryable-status rules alone.
func (c *Client) do(ctx context.Context, method, path string, body, out any, expectCode int, idempotent bool) (int, error) {
	var payload []byte
	if body != nil {
		var err error
		payload, err = json.Marshal(body)
		if err != nil {
			return 0, fmt.Errorf("client: marshal request: %w", err)
		}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		code, err := c.doOnce(ctx, method, path, payload, out, expectCode)
		if err == nil {
			return code, nil
		}
		lastErr = err
		if ctx.Err() != nil || attempt >= c.retries {
			return code, lastErr
		}
		if apiErr, ok := err.(*APIError); ok {
			if !retryable(apiErr) {
				return code, lastErr
			}
		} else if !idempotent {
			// A transport error on a non-idempotent call: the request may
			// or may not have been accepted; do not repeat it blindly.
			return code, lastErr
		}
		c.nRetries.Add(1)
		select {
		case <-ctx.Done():
			return code, ctx.Err()
		case <-time.After(c.retryDelay(attempt)):
		}
	}
}

// doOnce performs a single HTTP exchange.
func (c *Client) doOnce(ctx context.Context, method, path string, payload []byte, out any, expectCode int) (int, error) {
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return 0, fmt.Errorf("client: %w", err)
	}
	req.Header.Set("User-Agent", c.userAgent)
	req.Header.Set("Accept", "application/json")
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return resp.StatusCode, decodeError(resp)
	}
	if out != nil && (expectCode == 0 || resp.StatusCode == expectCode) {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("client: decode %s %s response: %w", method, path, err)
		}
	}
	return resp.StatusCode, nil
}

// Apps lists the server's bundled benchmark applications.
func (c *Client) Apps(ctx context.Context) ([]runner.AppInfo, error) {
	var out []runner.AppInfo
	_, err := c.do(ctx, http.MethodGet, "/v1/apps", nil, &out, http.StatusOK, true)
	return out, err
}

// Algorithms lists the server's mapping-optimization algorithms.
func (c *Client) Algorithms(ctx context.Context) ([]string, error) {
	var out []string
	_, err := c.do(ctx, http.MethodGet, "/v1/algorithms", nil, &out, http.StatusOK, true)
	return out, err
}

// Routers lists the server's built-in optical routers.
func (c *Client) Routers(ctx context.Context) ([]runner.RouterInfo, error) {
	var out []runner.RouterInfo
	_, err := c.do(ctx, http.MethodGet, "/v1/routers", nil, &out, http.StatusOK, true)
	return out, err
}

// Topologies lists the server's built-in topology kinds.
func (c *Client) Topologies(ctx context.Context) ([]string, error) {
	var out []string
	_, err := c.do(ctx, http.MethodGet, "/v1/topologies", nil, &out, http.StatusOK, true)
	return out, err
}

// Health fetches the server's liveness and pool statistics.
func (c *Client) Health(ctx context.Context) (service.Health, error) {
	var out service.Health
	_, err := c.do(ctx, http.MethodGet, "/healthz", nil, &out, http.StatusOK, true)
	return out, err
}
