package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"phonocmap/internal/runner"
	"phonocmap/internal/scenario"
	"phonocmap/internal/service"
	"phonocmap/internal/sweep"
)

// RunScenario submits the scenario as a job, waits for it to settle
// (SSE events when available, polling with backoff otherwise) and
// fetches the result. A cache hit on the server returns without any
// waiting. Cancelling ctx cancels the remote job and — per the Runner
// contract, matching local execution — returns the best-so-far partial
// result with Cancelled set when the server retained one, ctx's error
// otherwise.
func (c *Client) RunScenario(ctx context.Context, spec scenario.Spec) (runner.ScenarioResult, error) {
	req := service.Request{
		App:       spec.App,
		Arch:      spec.Arch,
		Objective: spec.Objective,
		Algorithm: spec.Algorithm,
		Budget:    spec.Budget,
		Seed:      spec.Seed,
		Seeds:     spec.Seeds,
		Analyses:  spec.Analyses,
		NoCache:   c.noCache,
	}
	var st service.JobStatus
	if _, err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &st, 0, false); err != nil {
		return runner.ScenarioResult{}, err
	}
	st, err := c.awaitJob(ctx, st)
	if err != nil {
		return runner.ScenarioResult{}, err
	}

	switch st.State {
	case service.StateFailed:
		return runner.ScenarioResult{}, fmt.Errorf("client: job %s failed: %s", st.ID, st.Error)
	case service.StateDone, service.StateCancelled:
		// When the wait ended because our own context died, the terminal
		// status came from the salvage path — fetch the (partial) result
		// on a detached context too.
		fetchCtx := ctx
		if ctx.Err() != nil {
			var cancel context.CancelFunc
			fetchCtx, cancel = detachedContext()
			defer cancel()
		}
		var res service.JobResult
		if _, err := c.do(fetchCtx, http.MethodGet, "/v1/jobs/"+st.ID+"/result", nil, &res, http.StatusOK, true); err != nil {
			if apiErr, ok := err.(*APIError); ok && apiErr.Code == service.CodeNoResult {
				// Cancelled before any evaluation: nothing to salvage.
				if ctx.Err() != nil {
					return runner.ScenarioResult{}, ctx.Err()
				}
				return runner.ScenarioResult{}, fmt.Errorf("client: job %s %s without a result", st.ID, st.State)
			}
			return runner.ScenarioResult{}, err
		}
		return runner.ScenarioResult{
			Spec:        st.Spec,
			Algorithm:   res.Algorithm,
			Objective:   res.Objective,
			Mapping:     res.Mapping,
			Score:       res.Score,
			Evals:       res.Evals,
			IslandEvals: st.IslandEvals,
			Seed:        res.Seed,
			DurationMs:  res.DurationMs,
			Cancelled:   res.Cancelled,
			Report:      res.Report,
			Trace:       res.Trace,
		}, nil
	default:
		return runner.ScenarioResult{}, fmt.Errorf("client: job %s settled in unexpected state %q", st.ID, st.State)
	}
}

// awaitJob waits for a submitted job to reach a terminal state. When
// the caller's context is cancelled mid-wait, the remote job is
// cancelled too and its terminal status salvaged (on a detached
// context) so the caller can return the best-so-far partial result —
// and no orphaned work keeps burning a server worker.
func (c *Client) awaitJob(ctx context.Context, st service.JobStatus) (service.JobStatus, error) {
	if st.State.Terminal() {
		return st, nil
	}
	if c.useEvents {
		if final, ok := c.watchJob(ctx, st.ID); ok {
			return final, nil
		}
		// The stream failed or ended early; the poller below finishes the
		// wait — unless the stream died because our own context did.
		if ctx.Err() != nil {
			return c.salvageJob(st.ID, ctx.Err())
		}
		c.nSSEFallbacks.Add(1)
	}
	final, err := c.pollJob(ctx, st.ID)
	if err != nil {
		if ctx.Err() != nil {
			return c.salvageJob(st.ID, ctx.Err())
		}
		return service.JobStatus{}, err
	}
	return final, nil
}

// detachedContext bounds the cleanup calls that must outlive the
// caller's (already dead) context.
func detachedContext() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 5*time.Second)
}

// salvageJob cancels the job remotely and waits (bounded, detached from
// the dead caller context) for it to settle, so the caller can ship the
// partial result the server retained — the same best-so-far semantics
// local execution has on cancellation. cause is returned when nothing
// could be salvaged.
func (c *Client) salvageJob(id string, cause error) (service.JobStatus, error) {
	ctx, cancel := detachedContext()
	defer cancel()
	if err := c.CancelJob(ctx, id); err != nil {
		return service.JobStatus{}, cause
	}
	st, err := c.pollJob(ctx, id)
	if err != nil {
		return service.JobStatus{}, cause
	}
	return st, nil
}

// watchJob consumes the job's SSE event stream until a terminal status
// event arrives. ok is false when the stream could not be used (not
// supported, buffered away by a proxy, or cut mid-run) — the caller
// falls back to polling.
func (c *Client) watchJob(ctx context.Context, id string) (service.JobStatus, bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return service.JobStatus{}, false
	}
	req.Header.Set("User-Agent", c.userAgent)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return service.JobStatus{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK ||
		!strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		return service.JobStatus{}, false
	}

	// Minimal SSE framing: accumulate "data:" lines until a blank line
	// terminates the event. Event names and comments are skipped — the
	// stream only carries "status" events.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if len(data) == 0 {
				continue
			}
			var st service.JobStatus
			if err := json.Unmarshal(data, &st); err != nil {
				return service.JobStatus{}, false
			}
			data = data[:0]
			if st.State.Terminal() {
				return st, true
			}
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " ")...)
		}
	}
	return service.JobStatus{}, false
}

// pollJob polls the job status with exponential backoff until it
// settles.
func (c *Client) pollJob(ctx context.Context, id string) (service.JobStatus, error) {
	interval := c.pollInterval
	for {
		c.nPollRounds.Add(1)
		var st service.JobStatus
		if _, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st, http.StatusOK, true); err != nil {
			return service.JobStatus{}, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return service.JobStatus{}, ctx.Err()
		case <-time.After(jitter(interval)):
		}
		if interval *= 2; interval > c.maxPollInterval {
			interval = c.maxPollInterval
		}
	}
}

// CancelJob asks the server to cancel a job: queued jobs flip to
// cancelled immediately, running jobs stop at their next evaluation
// attempt.
func (c *Client) CancelJob(ctx context.Context, id string) error {
	_, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil, 0, true)
	return err
}

// CancelSweep asks the server to cancel a sweep and all of its cells.
func (c *Client) CancelSweep(ctx context.Context, id string) error {
	_, err := c.do(ctx, http.MethodDelete, "/v1/sweeps/"+id, nil, nil, 0, true)
	return err
}

// RunSweep submits the grid as a server-side sweep, polls its status
// until every cell settles, and fetches the aggregated result.
// opts.OnCellDone fires as the status stream shows cells reaching a
// terminal state, with the fields the stream carries (score, evals,
// error); mappings and reports arrive with the returned SweepResult.
// Cancelling ctx cancels the remote sweep and — matching local
// execution — returns the partial per-cell results the server
// retained (unfinished cells report their cancellation as Error), or
// ctx's error when nothing could be salvaged.
func (c *Client) RunSweep(ctx context.Context, spec sweep.Spec, opts runner.SweepOptions) (runner.SweepResult, error) {
	req := service.SweepRequest{
		Apps:       spec.Apps,
		Archs:      spec.Archs,
		Objectives: spec.Objectives,
		Algorithms: spec.Algorithms,
		Budgets:    spec.Budgets,
		Seeds:      spec.Seeds,
		Islands:    spec.Islands,
		Analyses:   spec.Analyses,
		NoCache:    opts.NoCache || c.noCache,
	}
	var st service.SweepStatus
	if _, err := c.do(ctx, http.MethodPost, "/v1/sweeps", req, &st, 0, false); err != nil {
		return runner.SweepResult{}, err
	}
	id := st.ID

	settled := make(map[int]bool)
	emit := func(st service.SweepStatus) {
		if opts.OnCellDone == nil {
			return
		}
		for _, cs := range st.Cells {
			if settled[cs.Index] || !cs.State.Terminal() {
				continue
			}
			settled[cs.Index] = true
			cr := runner.SweepCellResult{Index: cs.Index, Cell: cs.Cell, Evals: cs.Evals, Error: cs.Error}
			if cs.Best != nil {
				cr.Score = *cs.Best
			}
			opts.OnCellDone(cr)
		}
	}
	emit(st)

	interval := c.pollInterval
	for !st.State.Terminal() {
		select {
		case <-ctx.Done():
			return c.salvageSweep(id, ctx.Err())
		case <-time.After(jitter(interval)):
		}
		if interval *= 2; interval > c.maxPollInterval {
			interval = c.maxPollInterval
		}
		c.nPollRounds.Add(1)
		if _, err := c.do(ctx, http.MethodGet, "/v1/sweeps/"+id, nil, &st, http.StatusOK, true); err != nil {
			if ctx.Err() != nil {
				return c.salvageSweep(id, ctx.Err())
			}
			return runner.SweepResult{}, err
		}
		emit(st)
	}
	return c.fetchSweepResult(ctx, id)
}

// fetchSweepResult downloads and converts a terminal sweep's result.
func (c *Client) fetchSweepResult(ctx context.Context, id string) (runner.SweepResult, error) {
	var res service.SweepResult
	if _, err := c.do(ctx, http.MethodGet, "/v1/sweeps/"+id+"/result", nil, &res, http.StatusOK, true); err != nil {
		return runner.SweepResult{}, err
	}
	out := runner.SweepResult{
		Cells:        make([]runner.SweepCellResult, 0, len(res.Cells)),
		Table:        res.Table,
		BudgetCurves: res.BudgetCurves,
		Pareto:       res.Pareto,
		Analysis:     res.Analysis,
	}
	for _, cr := range res.Cells {
		out.Cells = append(out.Cells, runner.SweepCellResult{
			Index:   cr.Index,
			Cell:    cr.Cell,
			Score:   cr.Score,
			Mapping: cr.Mapping,
			Evals:   cr.Evals,
			Report:  cr.Report,
			Error:   cr.Error,
		})
	}
	return out, nil
}

// salvageSweep cancels the sweep remotely and waits (bounded, detached
// from the dead caller context) for its cells to settle, returning the
// partial results — the sweep analogue of salvageJob. cause is returned
// when nothing could be salvaged.
func (c *Client) salvageSweep(id string, cause error) (runner.SweepResult, error) {
	ctx, cancel := detachedContext()
	defer cancel()
	if err := c.CancelSweep(ctx, id); err != nil {
		return runner.SweepResult{}, cause
	}
	interval := c.pollInterval
	for {
		c.nPollRounds.Add(1)
		var st service.SweepStatus
		if _, err := c.do(ctx, http.MethodGet, "/v1/sweeps/"+id, nil, &st, http.StatusOK, true); err != nil {
			return runner.SweepResult{}, cause
		}
		if st.State.Terminal() {
			break
		}
		select {
		case <-ctx.Done():
			return runner.SweepResult{}, cause
		case <-time.After(jitter(interval)):
		}
		if interval *= 2; interval > c.maxPollInterval {
			interval = c.maxPollInterval
		}
	}
	res, err := c.fetchSweepResult(ctx, id)
	if err != nil {
		return runner.SweepResult{}, cause
	}
	return res, nil
}
