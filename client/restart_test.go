package client

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"phonocmap/internal/config"
	"phonocmap/internal/runner"
	"phonocmap/internal/scenario"
	"phonocmap/internal/service"
	"phonocmap/internal/store"
)

// restartSpecs is the workload replayed across restarts: distinct
// topologies, objectives, algorithms, islands mode and a full analysis
// report, so byte-identity is checked over every payload shape the
// store persists.
func restartSpecs() []scenario.Spec {
	return []scenario.Spec{
		{
			App: config.AppSpec{Builtin: "PIP"}, Objective: "snr",
			Algorithm: "rs", Budget: 200, Seed: 1,
		},
		{
			App:  config.AppSpec{Builtin: "PIP"},
			Arch: config.ArchSpec{Topology: "torus"}, Objective: "loss",
			Algorithm: "rpbla", Budget: 200, Seed: 2,
		},
		{
			App: config.AppSpec{Builtin: "MWD"}, Objective: "snr",
			Algorithm: "rs", Budget: 150, Seed: 3, Seeds: 2,
			Analyses: &scenario.AnalysesSpec{
				WDM:   &scenario.WDMSpec{},
				Power: &scenario.PowerSpec{},
			},
		},
	}
}

// bootNode opens the persistent store in dir and starts a fresh service
// over it — one "process lifetime" of a serve node.
func bootNode(t *testing.T, dir string, cacheSize int) (*Client, *service.Server, *httptest.Server) {
	t.Helper()
	st, err := store.OpenFile(dir, store.FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv := service.New(service.Config{Workers: 2, CacheSize: cacheSize, Store: st})
	ts := httptest.NewServer(srv.Handler())
	c, err := New(ts.URL, WithPollInterval(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	return c, srv, ts
}

// stopNode shuts a node down gracefully: the write-behind queue drains
// and the store closes, exactly like a serve process handling SIGTERM.
func stopNode(t *testing.T, srv *service.Server, ts *httptest.Server) {
	t.Helper()
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestRestartDifferential is the persistence acceptance test: a node is
// restarted mid-benchmark (same cache directory, fresh process) and the
// replayed results are byte-identical to the originals — no field
// stripping, wall clock included, because a cache replay preserves the
// live run verbatim. The restarted node must answer from the store
// (store hit counters increment) without recomputing (evals_total stays
// zero).
func TestRestartDifferential(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	specs := restartSpecs()

	// Node lifetime 1: compute everything live.
	c1, srv1, ts1 := bootNode(t, dir, 0)
	originals := make([]runner.ScenarioResult, len(specs))
	for i, spec := range specs {
		res, err := c1.RunScenario(ctx, spec)
		if err != nil {
			t.Fatalf("live run %d: %v", i, err)
		}
		originals[i] = res
	}
	h1, err := c1.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h1.TotalEvals == 0 {
		t.Fatal("node 1 reports zero evaluations after live runs")
	}
	stopNode(t, srv1, ts1)

	// Node lifetime 2: same directory, fresh process, warmed LRU.
	c2, srv2, ts2 := bootNode(t, dir, 0)
	for i, spec := range specs {
		res, err := c2.RunScenario(ctx, spec)
		if err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
		jsonDiff(t, "restart replay", res, originals[i])
	}
	h2, err := c2.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h2.TotalEvals != 0 {
		t.Errorf("restarted node recomputed: evals_total = %d, want 0", h2.TotalEvals)
	}
	if h2.Cache.Store == nil {
		t.Fatal("restarted node reports no store tier")
	}
	if h2.Cache.Store.Hits == 0 {
		t.Error("restarted node answered without touching the store")
	}
	if h2.Cache.Store.Entries != len(specs) {
		t.Errorf("store entries = %d, want %d", h2.Cache.Store.Entries, len(specs))
	}
	if h2.Cache.Hits < uint64(len(specs)) {
		t.Errorf("cache hits = %d, want >= %d", h2.Cache.Hits, len(specs))
	}
	stopNode(t, srv2, ts2)

	// Node lifetime 3: disk-only (memory tier disabled) — every request
	// reads through the store directly, same byte-identity.
	c3, srv3, ts3 := bootNode(t, dir, -1)
	for i, spec := range specs {
		res, err := c3.RunScenario(ctx, spec)
		if err != nil {
			t.Fatalf("disk-only replay %d: %v", i, err)
		}
		jsonDiff(t, "disk-only replay", res, originals[i])
	}
	h3, err := c3.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h3.TotalEvals != 0 {
		t.Errorf("disk-only node recomputed: evals_total = %d, want 0", h3.TotalEvals)
	}
	if h3.Cache.Store == nil || h3.Cache.Store.Hits < uint64(len(specs)) {
		t.Errorf("disk-only store hits = %+v, want >= %d", h3.Cache.Store, len(specs))
	}
	if h3.Cache.Size != 0 {
		t.Errorf("disk-only node holds %d memory entries, want 0", h3.Cache.Size)
	}
	stopNode(t, srv3, ts3)
}
