package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"phonocmap/internal/config"
	"phonocmap/internal/scenario"
	"phonocmap/internal/service"
)

// TestMetricsPollRounds: with the event stream disabled, waiting on a
// job is pure polling — the poll-round counter must record it, and the
// other counters must stay silent on a healthy conversation.
func TestMetricsPollRounds(t *testing.T) {
	c, _ := newTestBackend(t, service.Config{})
	// Rebuild the client without events (newTestBackend enables them).
	c2, err := New(c.BaseURL(), WithPollInterval(time.Millisecond), WithoutEvents())
	if err != nil {
		t.Fatal(err)
	}
	spec := scenario.Spec{
		App: config.AppSpec{Builtin: "PIP"}, Algorithm: "rs", Budget: 500, Seed: 1,
	}
	if _, err := c2.RunScenario(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	m := c2.Metrics()
	if m.PollRounds < 1 {
		t.Errorf("poll rounds = %d, want >= 1", m.PollRounds)
	}
	if m.SSEFallbacks != 0 {
		t.Errorf("sse fallbacks = %d, want 0 (events were disabled, not abandoned)", m.SSEFallbacks)
	}
	if m.Retries != 0 {
		t.Errorf("retries = %d, want 0 on a healthy server", m.Retries)
	}
}

// TestMetricsSSEFallback: when the event stream is unusable (here: a
// proxy-like layer that rejects it), the client falls back to polling
// and counts the abandoned stream.
func TestMetricsSSEFallback(t *testing.T) {
	srv := service.New(service.Config{Workers: 2})
	inner := srv.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/events") {
			http.Error(w, "stream not supported here", http.StatusNotFound)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	c, err := New(ts.URL, WithPollInterval(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	spec := scenario.Spec{
		App: config.AppSpec{Builtin: "PIP"}, Algorithm: "rs", Budget: 500, Seed: 2,
	}
	if _, err := c.RunScenario(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	if m.SSEFallbacks != 1 {
		t.Errorf("sse fallbacks = %d, want 1", m.SSEFallbacks)
	}
	if m.PollRounds < 1 {
		t.Errorf("poll rounds = %d, want >= 1 after the fallback", m.PollRounds)
	}
}

// TestMetricsRetries: gateway-style failures on an idempotent call are
// retried with backoff, one counter tick per backoff-and-repeat cycle.
func TestMetricsRetries(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "bad gateway", http.StatusBadGateway)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`[]`))
	}))
	t.Cleanup(ts.Close)
	c, err := New(ts.URL, WithRetries(4, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Apps(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := c.Metrics().Retries; got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
}
