package client

import (
	"math/rand"
	"sync"
	"time"
)

// maxRetryBackoff caps the exponential retry curve so a large
// configured attempt count cannot shift the base into overflow (or into
// multi-minute sleeps).
const maxRetryBackoff = 30 * time.Second

// jitterMu guards jitterRand: the package-global math/rand functions
// would work too, but a dedicated source keeps the client's draw
// pattern independent of anything else in the process. (This package is
// deliberately outside the determinism contract the lint suite enforces
// on the compute packages — backoff is transport scheduling and can
// never influence results.)
var (
	jitterMu   sync.Mutex
	jitterRand = rand.New(rand.NewSource(time.Now().UnixNano()))
)

// jitter applies "full jitter" to a backoff interval: a uniform random
// duration in (0, d]. Deterministic exponential backoff synchronizes a
// fleet of coordinators that all saw the same failure at the same time
// — each retry round arrives as a thundering herd on the recovering
// node. Full jitter decorrelates the herd while preserving the
// exponential envelope (the expected wait halves, which retries tolerate
// by design).
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	jitterMu.Lock()
	n := jitterRand.Int63n(int64(d))
	jitterMu.Unlock()
	return time.Duration(1 + n)
}

// retryDelay is the jittered exponential backoff for retry attempt
// (0-based): full jitter over min(base << attempt, maxRetryBackoff).
func (c *Client) retryDelay(attempt int) time.Duration {
	d := c.retryBackoff
	for i := 0; i < attempt && d < maxRetryBackoff; i++ {
		d <<= 1
	}
	if d > maxRetryBackoff {
		d = maxRetryBackoff
	}
	return jitter(d)
}
