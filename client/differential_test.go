package client

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"phonocmap/internal/config"
	"phonocmap/internal/runner"
	"phonocmap/internal/scenario"
	"phonocmap/internal/service"
	"phonocmap/internal/sweep"
)

// newTestBackend starts a real service behind httptest and a client
// pointed at it.
func newTestBackend(t *testing.T, cfg service.Config) (*Client, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	srv := service.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	c, err := New(ts.URL, WithPollInterval(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	return c, ts
}

// jsonDiff compares two values through their canonical JSON — the exact
// equivalence the wire can express. It fails the test with both
// encodings on mismatch.
func jsonDiff(t *testing.T, label string, got, want any) {
	t.Helper()
	gb, err := json.MarshalIndent(got, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	wb, err := json.MarshalIndent(want, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gb, wb) {
		t.Errorf("%s: remote and local results differ\nremote:\n%s\nlocal:\n%s", label, gb, wb)
	}
}

// TestDifferentialScenarios is the service-equivalence guarantee as an
// API contract: for a grid of scenario specs spanning objectives,
// algorithms, topologies, islands mode and the full analysis pipeline,
// the remote backend (client -> phonocmap-serve) returns results
// byte-identical to the local backend — mapping, score, evaluation
// counts, per-island breakdowns, normalized specs and analysis reports.
// Only wall-clock duration is exempt.
func TestDifferentialScenarios(t *testing.T) {
	c, _ := newTestBackend(t, service.Config{})
	local := runner.NewLocal()
	ctx := context.Background()

	specs := []struct {
		name string
		spec scenario.Spec
	}{
		{"pip-mesh-snr-rs", scenario.Spec{
			App: config.AppSpec{Builtin: "PIP"}, Objective: "snr",
			Algorithm: "rs", Budget: 300, Seed: 1,
		}},
		{"pip-torus-loss-rpbla", scenario.Spec{
			App:  config.AppSpec{Builtin: "PIP"},
			Arch: config.ArchSpec{Topology: "torus"}, Objective: "loss",
			Algorithm: "rpbla", Budget: 300, Seed: 2,
		}},
		{"pip-wloss-ga", scenario.Spec{
			App: config.AppSpec{Builtin: "PIP"}, Objective: "wloss",
			Algorithm: "ga", Budget: 300, Seed: 5,
		}},
		{"mwd-islands", scenario.Spec{
			App: config.AppSpec{Builtin: "MWD"}, Objective: "snr",
			Algorithm: "rs", Budget: 200, Seed: 3, Seeds: 2,
		}},
		{"pip-full-analyses", scenario.Spec{
			App:       config.AppSpec{Builtin: "PIP"},
			Arch:      config.ArchSpec{Router: "cygnus", Routing: "bfs"},
			Objective: "snr", Algorithm: "rs", Budget: 200, Seed: 4,
			Analyses: &scenario.AnalysesSpec{
				WDM:          &scenario.WDMSpec{},
				Power:        &scenario.PowerSpec{},
				Robustness:   &scenario.RobustnessSpec{Samples: 8},
				LinkFailures: &scenario.LinkFailuresSpec{},
				Sim:          &scenario.SimSpec{DurationNs: 50_000, LoadScales: []float64{0.5, 1}},
			},
		}},
		{"pip-degraded-link", scenario.Spec{
			App: config.AppSpec{Builtin: "PIP"},
			Arch: config.ArchSpec{
				Router: "cygnus", Routing: "bfs", FailedLinks: [][2]int{{1, 2}},
			},
			Objective: "snr", Algorithm: "rs", Budget: 200, Seed: 6,
		}},
	}

	for _, tc := range specs {
		t.Run(tc.name, func(t *testing.T) {
			remote, err := c.RunScenario(ctx, tc.spec)
			if err != nil {
				t.Fatalf("remote: %v", err)
			}
			localRes, err := local.RunScenario(ctx, tc.spec)
			if err != nil {
				t.Fatalf("local: %v", err)
			}
			if remote.Evals == 0 || len(remote.Mapping) == 0 {
				t.Fatalf("degenerate remote result: %+v", remote)
			}
			if remote.Trace == nil || localRes.Trace == nil {
				t.Fatalf("missing trace: remote=%t local=%t", remote.Trace != nil, localRes.Trace != nil)
			}
			// Wall-clock measurements are the execution-local fields: the
			// result duration and the trace's timing/throughput numbers.
			// Everything else in the trace — event islands, evaluation
			// counts, scores, span breakdowns — is part of the contract.
			remote.DurationMs, localRes.DurationMs = 0, 0
			stripTraceTiming(remote.Trace)
			stripTraceTiming(localRes.Trace)
			jsonDiff(t, tc.name, remote, localRes)
		})
	}
}

// stripTraceTiming zeroes a trace's execution-local wall-clock fields so
// the deterministic remainder can be compared byte-for-byte.
func stripTraceTiming(tr *scenario.RunTrace) {
	tr.TimeToBestMs, tr.DurationMs, tr.EvalsPerSec = 0, 0, 0
	for i := range tr.Events {
		tr.Events[i].AtMs = 0
	}
	for i := range tr.Islands {
		tr.Islands[i].EvalsPerSec = 0
	}
}

// TestDifferentialSweep extends the equivalence to a full design-space
// sweep: per-cell outcomes (mappings, scores, evals, reports) and every
// aggregation — Table II rows, budget curves, annotated Pareto fronts,
// analysis summary columns — are byte-identical between a server-side
// sweep consumed through the client and a local sweep run.
func TestDifferentialSweep(t *testing.T) {
	c, _ := newTestBackend(t, service.Config{})
	local := runner.NewLocal()
	ctx := context.Background()

	grid := sweep.Spec{
		Apps:       []config.AppSpec{{Builtin: "PIP"}},
		Archs:      []config.ArchSpec{{Topology: "mesh"}, {Topology: "torus"}},
		Objectives: []string{"snr", "loss"},
		Algorithms: []string{"rs", "rpbla"},
		Budgets:    []int{150},
		Seeds:      []int64{1},
		Analyses: &scenario.AnalysesSpec{
			WDM:   &scenario.WDMSpec{},
			Power: &scenario.PowerSpec{},
		},
	}

	remote, err := c.RunSweep(ctx, grid, runner.SweepOptions{})
	if err != nil {
		t.Fatalf("remote sweep: %v", err)
	}
	localRes, err := local.RunSweep(ctx, grid, runner.SweepOptions{})
	if err != nil {
		t.Fatalf("local sweep: %v", err)
	}
	if len(remote.Cells) != 8 {
		t.Fatalf("remote sweep has %d cells, want 8", len(remote.Cells))
	}
	for _, cell := range remote.Cells {
		if cell.Error != "" {
			t.Fatalf("remote cell %d failed: %s", cell.Index, cell.Error)
		}
		if cell.Report == nil {
			t.Fatalf("remote cell %d missing its analysis report", cell.Index)
		}
	}
	jsonDiff(t, "sweep", remote, localRes)
}

// TestDifferentialDiscovery: both backends answer discovery calls with
// identical payloads.
func TestDifferentialDiscovery(t *testing.T) {
	c, _ := newTestBackend(t, service.Config{})
	local := runner.NewLocal()
	ctx := context.Background()

	rApps, err := c.Apps(ctx)
	if err != nil {
		t.Fatal(err)
	}
	lApps, _ := local.Apps(ctx)
	jsonDiff(t, "apps", rApps, lApps)

	rAlgos, err := c.Algorithms(ctx)
	if err != nil {
		t.Fatal(err)
	}
	lAlgos, _ := local.Algorithms(ctx)
	jsonDiff(t, "algorithms", rAlgos, lAlgos)

	rRouters, err := c.Routers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	lRouters, _ := local.Routers(ctx)
	jsonDiff(t, "routers", rRouters, lRouters)

	rTopos, err := c.Topologies(ctx)
	if err != nil {
		t.Fatal(err)
	}
	lTopos, _ := local.Topologies(ctx)
	jsonDiff(t, "topologies", rTopos, lTopos)
}

// TestDifferentialCacheHit: a cache replay on the server is
// indistinguishable from the first computation through the Runner
// interface (duration aside).
func TestDifferentialCacheHit(t *testing.T) {
	c, _ := newTestBackend(t, service.Config{})
	ctx := context.Background()
	spec := scenario.Spec{
		App: config.AppSpec{Builtin: "PIP"}, Algorithm: "rs", Budget: 250, Seed: 9,
		Analyses: &scenario.AnalysesSpec{WDM: &scenario.WDMSpec{}},
	}
	first, err := c.RunScenario(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.RunScenario(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	first.DurationMs, second.DurationMs = 0, 0
	jsonDiff(t, "cache replay", second, first)
}
