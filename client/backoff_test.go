package client

import (
	"testing"
	"time"
)

// TestJitterBounds pins the full-jitter contract: every draw is in
// (0, d] — strictly positive (a zero wait would turn the poll loop into
// a busy spin) and never beyond the exponential envelope.
func TestJitterBounds(t *testing.T) {
	for _, d := range []time.Duration{
		time.Nanosecond,
		time.Microsecond,
		50 * time.Millisecond,
		2 * time.Second,
	} {
		var min, max time.Duration = d, 0
		for i := 0; i < 10000; i++ {
			v := jitter(d)
			if v <= 0 || v > d {
				t.Fatalf("jitter(%v) = %v, want in (0, %v]", d, v, d)
			}
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		// The draws must actually spread across the interval (full
		// jitter, not a fixed fraction). 10k draws over a wide range
		// land in both halves with overwhelming probability.
		if d >= 50*time.Millisecond && (min > d/2 || max <= d/2) {
			t.Errorf("jitter(%v) draws did not span both halves: min %v, max %v", d, min, max)
		}
	}
}

// TestJitterZeroAndNegative pins the degenerate inputs: no draw, value
// passed through (time.After treats them as immediate).
func TestJitterZeroAndNegative(t *testing.T) {
	if v := jitter(0); v != 0 {
		t.Errorf("jitter(0) = %v, want 0", v)
	}
	if v := jitter(-time.Second); v != -time.Second {
		t.Errorf("jitter(-1s) = %v, want -1s", v)
	}
}

// TestRetryDelayEnvelope pins the retry schedule: attempt n draws from
// (0, min(base<<n, maxRetryBackoff)], so the envelope doubles but can
// never overflow or exceed the cap regardless of the attempt count.
func TestRetryDelayEnvelope(t *testing.T) {
	c := &Client{retryBackoff: 100 * time.Millisecond}
	for attempt, want := range []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
	} {
		for i := 0; i < 1000; i++ {
			if v := c.retryDelay(attempt); v <= 0 || v > want {
				t.Fatalf("retryDelay(%d) = %v, want in (0, %v]", attempt, v, want)
			}
		}
	}
	// A pathological attempt count must not shift into overflow: the
	// envelope saturates at maxRetryBackoff.
	for _, attempt := range []int{20, 63, 64, 1000} {
		if v := c.retryDelay(attempt); v <= 0 || v > maxRetryBackoff {
			t.Fatalf("retryDelay(%d) = %v, want in (0, %v]", attempt, v, maxRetryBackoff)
		}
	}
}
