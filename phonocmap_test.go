package phonocmap_test

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"phonocmap"
)

func TestAppsComplete(t *testing.T) {
	apps := phonocmap.Apps()
	if len(apps) != 8 {
		t.Fatalf("Apps() = %v, want 8 entries", apps)
	}
	for _, name := range apps {
		g, err := phonocmap.App(name)
		if err != nil {
			t.Errorf("App(%q): %v", name, err)
			continue
		}
		if g.NumTasks() == 0 || g.NumEdges() == 0 {
			t.Errorf("%s: empty graph", name)
		}
	}
	if _, err := phonocmap.App("nope"); err == nil {
		t.Error("App accepted an unknown name")
	}
}

func TestAlgorithmsAndRouters(t *testing.T) {
	algos := phonocmap.Algorithms()
	if len(algos) < 3 {
		t.Errorf("Algorithms() = %v", algos)
	}
	for _, r := range phonocmap.Routers() {
		s, err := phonocmap.RouterSummary(r)
		if err != nil || s == "" {
			t.Errorf("RouterSummary(%q) = %q, %v", r, s, err)
		}
	}
	if _, err := phonocmap.RouterSummary("nope"); err == nil {
		t.Error("RouterSummary accepted unknown router")
	}
	if len(phonocmap.Topologies()) != 3 {
		t.Errorf("Topologies() = %v", phonocmap.Topologies())
	}
}

func TestSquareForTasks(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 8: 3, 16: 4, 22: 5, 32: 6}
	for n, want := range cases {
		if got := phonocmap.SquareForTasks(n); got != want {
			t.Errorf("SquareForTasks(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestEndToEndOptimize(t *testing.T) {
	app := phonocmap.MustApp("PIP")
	net, err := phonocmap.NewMeshNetwork(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := phonocmap.NewProblem(app, net, phonocmap.MaximizeSNR)
	if err != nil {
		t.Fatal(err)
	}
	res, err := phonocmap.Optimize(prob, "rpbla", 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals != 500 {
		t.Errorf("Evals = %d, want 500", res.Evals)
	}
	if res.Score.WorstSNRDB <= 0 || math.IsInf(res.Score.WorstSNRDB, 0) {
		t.Errorf("SNR = %v, want finite positive", res.Score.WorstSNRDB)
	}
	if err := phonocmap.Verify(prob, res); err != nil {
		t.Errorf("Verify: %v", err)
	}
	// Corrupt the result: Verify must notice.
	bad := res
	bad.Score.WorstSNRDB += 1
	bad.Score.Cost -= 1
	if err := phonocmap.Verify(prob, bad); err == nil {
		t.Error("Verify accepted a corrupted score")
	}
}

func TestCompareEqualBudgets(t *testing.T) {
	app := phonocmap.MustApp("MWD")
	net, err := phonocmap.NewMeshNetwork(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := phonocmap.NewProblem(app, net, phonocmap.MinimizeLoss)
	if err != nil {
		t.Fatal(err)
	}
	results, err := phonocmap.Compare(prob, []string{"rs", "ga", "rpbla"}, 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("Compare returned %d results", len(results))
	}
	for _, r := range results {
		if r.Evals > 400 {
			t.Errorf("%s exceeded budget: %d", r.Algorithm, r.Evals)
		}
		if r.Score.WorstLossDB >= 0 {
			t.Errorf("%s loss %v not negative", r.Algorithm, r.Score.WorstLossDB)
		}
	}
	if _, err := phonocmap.Compare(prob, []string{"nope"}, 100, 1); err == nil {
		t.Error("Compare accepted unknown algorithm")
	}
}

func TestTorusShortensPaths(t *testing.T) {
	// The paper's torus runs: wraparound improves the loss of optimized
	// mappings on sparse apps. At minimum, both must produce sane
	// results and the torus must never be dramatically worse.
	app := phonocmap.MustApp("263enc_mp3enc")
	mesh, err := phonocmap.NewMeshNetwork(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	torus, err := phonocmap.NewTorusNetwork(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	meshProb, err := phonocmap.NewProblem(app, mesh, phonocmap.MinimizeLoss)
	if err != nil {
		t.Fatal(err)
	}
	torusProb, err := phonocmap.NewProblem(app, torus, phonocmap.MinimizeLoss)
	if err != nil {
		t.Fatal(err)
	}
	mres, err := phonocmap.Optimize(meshProb, "rpbla", 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	tres, err := phonocmap.Optimize(torusProb, "rpbla", 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mres.Score.WorstLossDB >= 0 || tres.Score.WorstLossDB >= 0 {
		t.Error("non-negative losses")
	}
	if tres.Score.WorstLossDB < mres.Score.WorstLossDB-1.0 {
		t.Errorf("torus loss %v dramatically worse than mesh %v", tres.Score.WorstLossDB, mres.Score.WorstLossDB)
	}
}

func TestRunExperiment(t *testing.T) {
	exp := phonocmap.Experiment{
		App:       phonocmap.AppSpec{Builtin: "PIP"},
		Arch:      phonocmap.ArchSpec{Topology: "mesh", Width: 3, Height: 3, Router: "crux", Routing: "xy"},
		Objective: "loss",
		Algorithm: "rs",
		Budget:    200,
		Seed:      5,
	}
	res, err := phonocmap.RunExperiment(exp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "rs" || res.Evals != 200 {
		t.Errorf("result: %+v", res)
	}
	bad := exp
	bad.Objective = "latency"
	if _, err := phonocmap.RunExperiment(bad); err == nil {
		t.Error("accepted unknown objective")
	}
	bad = exp
	bad.App = phonocmap.AppSpec{Builtin: "nope"}
	if _, err := phonocmap.RunExperiment(bad); err == nil {
		t.Error("accepted unknown app")
	}
}

func TestRandomMappingAndEvaluate(t *testing.T) {
	app := phonocmap.MustApp("VOPD")
	net, err := phonocmap.NewMeshNetwork(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := phonocmap.NewProblem(app, net, phonocmap.MaximizeSNR)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	m, err := phonocmap.RandomMapping(prob, rng)
	if err != nil {
		t.Fatal(err)
	}
	s, err := phonocmap.Evaluate(prob, m)
	if err != nil {
		t.Fatal(err)
	}
	if s.WorstLossDB >= 0 || s.WorstSNRDB <= 0 {
		t.Errorf("implausible score %+v", s)
	}
}

func TestNewCustomMesh(t *testing.T) {
	net, err := phonocmap.NewCustomMesh(3, 3, 1.0, "crossbar", "yx")
	if err != nil {
		t.Fatal(err)
	}
	if net.Router().Name() != "crossbar" || net.Routing().Name() != "yx" {
		t.Errorf("components: %s", net.String())
	}
	if _, err := phonocmap.NewCustomMesh(3, 3, -1, "crux", "xy"); err == nil {
		t.Error("accepted negative die size")
	}
}

func TestSimulateFacade(t *testing.T) {
	app := phonocmap.MustApp("MWD")
	net, err := phonocmap.NewMeshNetwork(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	m := identityMapping(app.NumTasks())
	st, err := phonocmap.Simulate(net, app, m, phonocmap.SimConfig{DurationNs: 50_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.PacketsDelivered == 0 || st.ThroughputGbps <= 0 {
		t.Errorf("simulation produced nothing: %+v", st)
	}
}

func TestPowerFacade(t *testing.T) {
	b := phonocmap.DefaultPowerBudget()
	rep, err := phonocmap.AssessPower(b, phonocmap.Score{WorstLossDB: -3, WorstSNRDB: 25})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible {
		t.Error("3 dB loss infeasible under default budget")
	}
	if _, err := phonocmap.AssessPower(b, phonocmap.Score{WorstLossDB: 1}); err == nil {
		t.Error("accepted positive loss")
	}
}

func TestWDMFacade(t *testing.T) {
	app := phonocmap.MustApp("MPEG-4")
	net, err := phonocmap.NewMeshNetwork(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	m := identityMapping(app.NumTasks())
	alloc, err := phonocmap.AllocateWavelengths(net, app, m)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Channels < 1 {
		t.Fatalf("allocation: %+v", alloc)
	}
	loss, snr, err := phonocmap.EvaluateWDM(net, app, m, alloc)
	if err != nil {
		t.Fatal(err)
	}
	if loss >= 0 || snr <= 0 {
		t.Errorf("WDM metrics: loss %v, snr %v", loss, snr)
	}
}

func TestParetoExploreFacade(t *testing.T) {
	app := phonocmap.MustApp("PIP")
	net, err := phonocmap.NewMeshNetwork(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := phonocmap.NewProblem(app, net, phonocmap.MaximizeSNR)
	if err != nil {
		t.Fatal(err)
	}
	front, err := phonocmap.ParetoExplore(prob, "rs", 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Fatal("empty front")
	}
	for i := 1; i < len(front); i++ {
		if front[i].WorstLossDB > front[i-1].WorstLossDB {
			t.Error("front not sorted by loss quality")
		}
	}
	if _, err := phonocmap.ParetoExplore(prob, "nope", 10, 1); err == nil {
		t.Error("accepted unknown algorithm")
	}
}

func TestRobustnessFacade(t *testing.T) {
	app := phonocmap.MustApp("PIP")
	net, err := phonocmap.NewMeshNetwork(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	m := identityMapping(app.NumTasks())
	vr, err := phonocmap.AssessVariation(net, app, m, 5, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if vr.Samples != 5 || vr.Loss.Count() != 5 {
		t.Errorf("variation: %+v", vr)
	}
	// Crux cannot do BFS detours: the failure analysis must refuse.
	if _, err := phonocmap.AssessLinkFailures(net, app, m); err == nil {
		t.Error("accepted Crux for link-failure analysis")
	}
	cyg, err := phonocmap.NewNetwork(phonocmap.ArchSpec{
		Topology: "mesh", Width: 3, Height: 3, Router: "cygnus", Routing: "bfs",
	})
	if err != nil {
		t.Fatal(err)
	}
	failures, err := phonocmap.AssessLinkFailures(cyg, app, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 12 {
		t.Errorf("failures = %d, want 12 undirected links", len(failures))
	}
}

func TestWeightedObjectiveFacade(t *testing.T) {
	app := phonocmap.MustApp("VOPD")
	net, err := phonocmap.NewMeshNetwork(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := phonocmap.NewProblem(app, net, phonocmap.MinimizeWeightedLoss)
	if err != nil {
		t.Fatal(err)
	}
	res, err := phonocmap.Optimize(prob, "rpbla", 800, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score.AvgLossDB >= 0 {
		t.Errorf("AvgLossDB = %v", res.Score.AvgLossDB)
	}
}

func identityMapping(n int) phonocmap.Mapping {
	m := make(phonocmap.Mapping, n)
	for i := range m {
		m[i] = phonocmap.TileID(i)
	}
	return m
}

func TestDefaultParamsFacade(t *testing.T) {
	p := phonocmap.DefaultParams()
	if p.CrossingLoss != -0.04 || p.CrossingCrosstalk != -40 {
		t.Errorf("DefaultParams not Table I: %+v", p)
	}
}

func TestSweepFacade(t *testing.T) {
	spec := phonocmap.SweepSpec{
		Apps:       []phonocmap.AppSpec{{Builtin: "PIP"}},
		Archs:      []phonocmap.ArchSpec{{Topology: "mesh"}},
		Objectives: []string{"snr", "loss"},
		Algorithms: []string{"rs"},
		Budgets:    []int{120},
		Seeds:      []int64{1},
	}
	cells, err := phonocmap.ExpandSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("expanded %d cells, want 2", len(cells))
	}
	results, err := phonocmap.RunSweep(context.Background(), spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("cell %s: %v", r.Cell.Label(), r.Err)
		}
		if r.Run.Evals != 120 {
			t.Errorf("cell %s spent %d evals, want 120", r.Cell.Label(), r.Run.Evals)
		}
		// Every cell result must verify against a fresh problem — the
		// sweep path produces real reproducible mappings.
		prob, err := phonocmap.NewProblem(phonocmap.MustApp("PIP"), mustMesh(t, 3, 3), objectiveOf(t, r.Cell.Objective))
		if err != nil {
			t.Fatal(err)
		}
		if err := phonocmap.Verify(prob, r.Run); err != nil {
			t.Errorf("cell %s: %v", r.Cell.Label(), err)
		}
	}
	rows := phonocmap.SweepTable(results)
	if len(rows) != 1 || rows[0].App != "PIP" {
		t.Fatalf("table rows = %+v", rows)
	}
	cell := rows[0].Mesh["rs"]
	if cell.SNRDB <= 0 || cell.LossDB >= 0 {
		t.Errorf("table cell = %+v", cell)
	}
	if pts := phonocmap.SweepBudgetCurves(results); len(pts) != 2 {
		t.Errorf("budget curve points = %d, want 2", len(pts))
	}
	if fronts := phonocmap.SweepParetoFronts(results); len(fronts["PIP"]) == 0 {
		t.Error("empty Pareto front")
	}
}

func mustMesh(t *testing.T, w, h int) *phonocmap.Network {
	t.Helper()
	net, err := phonocmap.NewMeshNetwork(w, h)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func objectiveOf(t *testing.T, name string) phonocmap.Objective {
	t.Helper()
	switch name {
	case "snr":
		return phonocmap.MaximizeSNR
	case "loss":
		return phonocmap.MinimizeLoss
	default:
		t.Fatalf("unexpected objective %q", name)
		return phonocmap.MaximizeSNR
	}
}
