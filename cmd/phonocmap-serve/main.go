// Command phonocmap-serve runs the PhoNoCMap mapping-optimization
// service: an HTTP JSON API that accepts mapping-DSE jobs, executes them
// on a worker pool with per-job cancellation, and caches results so
// duplicate submissions are answered instantly.
//
// Usage:
//
//	phonocmap-serve [-addr :8080] [-workers N] [-queue 64] [-cache 256]
//
// Example session:
//
//	curl -s localhost:8080/v1/apps
//	curl -s -X POST localhost:8080/v1/jobs -d '{"app":{"builtin":"VOPD"},"budget":20000}'
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -s localhost:8080/v1/jobs/job-000001/result
//	curl -s -X POST localhost:8080/v1/sweeps -d '{"apps":[{"builtin":"PIP"}],"archs":[{"topology":"mesh"},{"topology":"torus"}],"algorithms":["rs","rpbla"],"budgets":[20000]}'
//	curl -s localhost:8080/v1/sweeps/sweep-000001/result
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"phonocmap/internal/service"
	"phonocmap/internal/version"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "job queue capacity")
	cache := flag.Int("cache", 256, "result cache entries (negative disables)")
	maxBudget := flag.Int("max-budget", 5_000_000, "largest accepted per-seed evaluation budget")
	maxSeeds := flag.Int("max-seeds", 64, "largest accepted island count per job")
	maxSweepCells := flag.Int("max-sweep-cells", 1024, "largest accepted sweep grid size (cells)")
	maxSweeps := flag.Int("max-sweeps", 128, "sweep registry bound (oldest finished evicted)")
	flag.Parse()
	if *showVersion {
		fmt.Printf("phonocmap-serve %s (%s)\n", version.String(), runtime.Version())
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := service.New(service.Config{
		Addr:          *addr,
		Workers:       *workers,
		QueueSize:     *queue,
		CacheSize:     *cache,
		MaxBudget:     *maxBudget,
		MaxSeeds:      *maxSeeds,
		MaxSweepCells: *maxSweepCells,
		MaxSweeps:     *maxSweeps,
	})
	cfg := srv.Config()
	log.Printf("phonocmap-serve %s listening on %s (%d workers, queue %d, cache %d)",
		version.String(), cfg.Addr, cfg.Workers, cfg.QueueSize, cfg.CacheSize)
	if err := srv.ListenAndServe(ctx); err != nil {
		log.Fatalf("phonocmap-serve: %v", err)
	}
	log.Printf("phonocmap-serve: shut down cleanly")
}
