// Command phonocmap-serve runs the PhoNoCMap mapping-optimization
// service: an HTTP JSON API that accepts mapping-DSE jobs, executes them
// on a worker pool with per-job cancellation, and caches results so
// duplicate submissions are answered instantly.
//
// Usage:
//
//	phonocmap-serve [-addr :8080] [-workers N] [-eval-workers 1] [-queue 64]
//	                [-cache 256] [-cache-dir /var/lib/phonocmap] [-cache-disk-max 512MiB]
//	                [-log-level info] [-debug-addr :6060]
//
// -cache-dir enables the persistent result store: completed runs are
// persisted to a content-addressed directory and survive restarts — on
// boot the most recent entries are warmed back into the in-memory LRU
// and repeated submissions replay byte-identical results without
// recomputing. -cache-disk-max caps the store's size on disk (accepts
// plain bytes or KiB/MiB/GiB suffixes; 0 = unbounded), evicting the
// oldest entries past the cap.
//
// Example session:
//
//	curl -s localhost:8080/v1/apps
//	curl -s -X POST localhost:8080/v1/jobs -d '{"app":{"builtin":"VOPD"},"budget":20000}'
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -s localhost:8080/v1/jobs/job-000001/result
//	curl -s -X POST localhost:8080/v1/sweeps -d '{"apps":[{"builtin":"PIP"}],"archs":[{"topology":"mesh"},{"topology":"torus"}],"algorithms":["rs","rpbla"],"budgets":[20000]}'
//	curl -s localhost:8080/v1/sweeps/sweep-000001/result
//	curl -s localhost:8080/metrics
//
// Observability: GET /metrics serves the Prometheus exposition of the
// server's telemetry registry; -debug-addr starts a second, separate
// listener serving net/http/pprof (keep it off the public address).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"

	"phonocmap/internal/service"
	"phonocmap/internal/store"
	"phonocmap/internal/version"
)

// parseLevel maps the -log-level flag to a slog.Level.
func parseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
}

// parseSize parses a -cache-disk-max value: plain bytes or a KiB, MiB or
// GiB suffix (KB/MB/GB accepted as the same power-of-two units). Empty
// means unbounded.
func parseSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	upper := strings.ToUpper(s)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{
		{"KIB", 1 << 10}, {"MIB", 1 << 20}, {"GIB", 1 << 30},
		{"KB", 1 << 10}, {"MB", 1 << 20}, {"GB", 1 << 30},
		{"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30},
		{"B", 1},
	} {
		if strings.HasSuffix(upper, u.suffix) {
			mult = u.mult
			s = strings.TrimSpace(s[:len(s)-len(u.suffix)])
			break
		}
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid size %q (want e.g. 1073741824, 512MiB, 2GiB)", s)
	}
	return n * mult, nil
}

// debugMux builds the pprof handler set on its own mux, so the debug
// listener exposes nothing else (and the service mux exposes no pprof).
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	evalWorkers := flag.Int("eval-workers", 1, "evaluation workers per run (never changes results, only throughput)")
	queue := flag.Int("queue", 64, "job queue capacity")
	cache := flag.Int("cache", 256, "result cache entries (negative disables the memory tier)")
	cacheDir := flag.String("cache-dir", "", "persist results to this directory (empty = memory-only cache)")
	cacheDiskMax := flag.String("cache-disk-max", "", "cap the persistent store's disk usage (e.g. 512MiB, 2GiB; empty or 0 = unbounded)")
	maxBudget := flag.Int("max-budget", 5_000_000, "largest accepted per-seed evaluation budget")
	maxSeeds := flag.Int("max-seeds", 64, "largest accepted island count per job")
	maxSweepCells := flag.Int("max-sweep-cells", 1024, "largest accepted sweep grid size (cells)")
	maxSweeps := flag.Int("max-sweeps", 128, "sweep registry bound (oldest finished evicted)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this separate address (empty disables)")
	flag.Parse()
	if *showVersion {
		fmt.Printf("phonocmap-serve %s (%s)\n", version.String(), runtime.Version())
		return
	}

	level, err := parseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phonocmap-serve:", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *debugAddr != "" {
		dbg := &http.Server{Addr: *debugAddr, Handler: debugMux()}
		go func() {
			logger.Info("pprof debug server listening", "addr", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("pprof debug server failed", "error", err)
			}
		}()
		go func() {
			<-ctx.Done()
			_ = dbg.Close()
		}()
	}

	var st store.Store
	if *cacheDir != "" {
		maxBytes, err := parseSize(*cacheDiskMax)
		if err != nil {
			fmt.Fprintln(os.Stderr, "phonocmap-serve:", err)
			os.Exit(2)
		}
		fs, err := store.OpenFile(*cacheDir, store.FileOptions{MaxBytes: maxBytes})
		if err != nil {
			fmt.Fprintln(os.Stderr, "phonocmap-serve:", err)
			os.Exit(2)
		}
		logger.Info("persistent result store open",
			"dir", *cacheDir, "entries", fs.Len(), "max_bytes", maxBytes)
		st = fs
	} else if *cacheDiskMax != "" {
		fmt.Fprintln(os.Stderr, "phonocmap-serve: -cache-disk-max requires -cache-dir")
		os.Exit(2)
	}

	srv := service.New(service.Config{
		Addr:          *addr,
		Workers:       *workers,
		EvalWorkers:   *evalWorkers,
		QueueSize:     *queue,
		CacheSize:     *cache,
		Store:         st,
		MaxBudget:     *maxBudget,
		MaxSeeds:      *maxSeeds,
		MaxSweepCells: *maxSweepCells,
		MaxSweeps:     *maxSweeps,
		Logger:        logger,
	})
	cfg := srv.Config()
	logger.Info("phonocmap-serve listening",
		"version", version.String(), "addr", cfg.Addr,
		"workers", cfg.Workers, "eval_workers", cfg.EvalWorkers,
		"queue", cfg.QueueSize, "cache", cfg.CacheSize)
	if err := srv.ListenAndServe(ctx); err != nil {
		logger.Error("phonocmap-serve failed", "error", err)
		os.Exit(1)
	}
	logger.Info("phonocmap-serve shut down cleanly")
}
