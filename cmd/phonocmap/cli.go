package main

// Flag and argument parsing, extracted from the command handlers so it
// is unit-testable without exercising os.Exit or running optimizations.

import (
	"errors"
	"flag"
	"fmt"
	"strconv"
	"strings"

	"phonocmap/internal/cg"
	"phonocmap/internal/config"
	"phonocmap/internal/core"
	"phonocmap/internal/scenario"
	"phonocmap/internal/search"
	"phonocmap/internal/topo"
)

// errFlagParse marks flag-parse failures the flag package has already
// reported to stderr, so main exits with the conventional status 2
// without printing the error a second time.
var errFlagParse = errors.New("flag parse error")

// archFlags registers the architecture flags shared by map, eval and
// simulate.
type archFlags struct {
	topology    *string
	width       *int
	height      *int
	tiles       *int
	dieCm       *float64
	wrapCross   *int
	router      *string
	routing     *string
	failedLinks *string
}

func addArchFlags(fs *flag.FlagSet) archFlags {
	return archFlags{
		topology:    fs.String("topology", "mesh", "topology kind: mesh, torus or ring"),
		width:       fs.Int("width", 0, "grid width (0 = smallest square fitting the app)"),
		height:      fs.Int("height", 0, "grid height (0 = smallest square fitting the app)"),
		tiles:       fs.Int("tiles", 0, "ring tile count"),
		dieCm:       fs.Float64("die-cm", topo.DefaultDieCm, "die edge length in centimetres"),
		wrapCross:   fs.Int("wrap-crossings", 0, "waveguide crossings per torus wrap link"),
		router:      fs.String("router", "crux", "optical router: crux, cygnus or crossbar"),
		routing:     fs.String("routing", "xy", "routing algorithm: xy, yx or bfs"),
		failedLinks: fs.String("failed-links", "", "failed links as a-b pairs (both lanes cut), e.g. 0-1,5-6; needs -routing bfs"),
	}
}

// spec collects the flags into a raw (un-normalized) architecture spec;
// the scenario compiler resolves sizing defaults against the
// application.
func (a archFlags) spec() (config.ArchSpec, error) {
	failed, err := parseFailedLinks(*a.failedLinks)
	if err != nil {
		return config.ArchSpec{}, err
	}
	return config.ArchSpec{
		Topology:      *a.topology,
		Width:         *a.width,
		Height:        *a.height,
		Tiles:         *a.tiles,
		DieCm:         *a.dieCm,
		WrapCrossings: *a.wrapCross,
		Router:        *a.router,
		Routing:       *a.routing,
		FailedLinks:   failed,
	}, nil
}

// parseFailedLinks parses a comma-separated list of a-b tile pairs, e.g.
// "0-1,5-6", into the declarative failed-link cuts of an ArchSpec.
func parseFailedLinks(s string) ([][2]int, error) {
	if s == "" {
		return nil, nil
	}
	var out [][2]int
	for _, part := range strings.Split(s, ",") {
		ab := strings.SplitN(strings.TrimSpace(part), "-", 2)
		if len(ab) != 2 {
			return nil, fmt.Errorf("bad failed link %q (want a-b, e.g. 0-1)", part)
		}
		a, err := strconv.Atoi(strings.TrimSpace(ab[0]))
		if err != nil {
			return nil, fmt.Errorf("bad failed link %q: %w", part, err)
		}
		b, err := strconv.Atoi(strings.TrimSpace(ab[1]))
		if err != nil {
			return nil, fmt.Errorf("bad failed link %q: %w", part, err)
		}
		out = append(out, [2]int{a, b})
	}
	return out, nil
}

func loadApp(name, file string) (*cg.Graph, error) {
	spec, err := loadAppSpec(name, file)
	if err != nil {
		return nil, err
	}
	return spec.Build()
}

// loadAppSpec resolves the -app/-app-file pair into a declarative
// application spec (the shape the scenario compiler consumes).
func loadAppSpec(name, file string) (config.AppSpec, error) {
	switch {
	case name != "" && file != "":
		return config.AppSpec{}, fmt.Errorf("use either -app or -app-file, not both")
	case name != "":
		return config.AppSpec{Builtin: name}, nil
	case file != "":
		return config.LoadFile[config.AppSpec](file)
	default:
		return config.AppSpec{}, fmt.Errorf("an application is required: -app <name> or -app-file <json>")
	}
}

// backendChoice is the execution backend the -server/-servers flags
// selected: in-process when both are empty, one phonocmap-serve
// instance, or a fleet of them with cells sharded across nodes.
type backendChoice struct {
	server  string   // single phonocmap-serve URL
	servers []string // fleet node URLs (from -servers)
}

// remote reports whether execution leaves the process.
func (b backendChoice) remote() bool { return b.server != "" || len(b.servers) > 0 }

// String renders the backend for status output.
func (b backendChoice) String() string {
	if len(b.servers) > 0 {
		return fmt.Sprintf("fleet of %d (%s)", len(b.servers), strings.Join(b.servers, ", "))
	}
	return b.server
}

// parseServers splits the -servers flag's comma-separated node list,
// trimming whitespace and dropping empty entries so trailing commas are
// harmless.
func parseServers(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseMapCommand parses the 'map' subcommand's arguments into a
// normalized scenario spec (with the built application graph, so callers
// need not rebuild it) plus the -out path and the backend choice
// (-server/-servers; zero value = in-process execution). The spec is
// exactly what the optimization service normalizes, so the two fronts
// accept the same inputs and produce the same computations.
func parseMapCommand(args []string) (scenario.Spec, *cg.Graph, string, backendChoice, error) {
	fs := flag.NewFlagSet("map", flag.ContinueOnError)
	app := fs.String("app", "", "bundled application name (see 'phonocmap apps')")
	appFile := fs.String("app-file", "", "custom application JSON file")
	expFile := fs.String("experiment", "", "full scenario JSON file (overrides other flags; may include seeds and analyses)")
	objective := fs.String("objective", "snr", "objective: snr or loss")
	algorithm := fs.String("algorithm", "rpbla", "algorithm: "+strings.Join(search.Names(), ", "))
	budget := fs.Int("budget", 20000, "evaluation budget")
	seed := fs.Int64("seed", 1, "random seed")
	seeds := fs.Int("seeds", 1, "island count: > 1 runs that many seeded searches and keeps the best")
	evalWorkers := fs.Int("eval-workers", 1, "evaluation workers per run (never changes results, only throughput; 0 = keep process default)")
	analysesFile := fs.String("analyses", "", "post-optimization analyses JSON file (wdm, power, robustness, link_failures, sim)")
	out := fs.String("out", "", "write the result as JSON to this file")
	server := fs.String("server", "", "phonocmap-serve URL to execute on (default: in-process)")
	servers := fs.String("servers", "", "comma-separated phonocmap-serve URLs to execute on as a fleet")
	arch := addArchFlags(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return scenario.Spec{}, nil, "", backendChoice{}, err
		}
		return scenario.Spec{}, nil, "", backendChoice{}, fmt.Errorf("%w: %v", errFlagParse, err)
	}
	backend := backendChoice{server: *server, servers: parseServers(*servers)}
	if backend.server != "" && len(backend.servers) > 0 {
		return scenario.Spec{}, nil, "", backendChoice{}, fmt.Errorf("use either -server or -servers, not both")
	}
	// Worker count is deliberately not part of the scenario spec: it can
	// never change a result (sequential and parallel evaluation are
	// bit-identical), so it must not participate in normalization or
	// cache keys. It only tunes this process's evaluation throughput.
	if *evalWorkers > 0 {
		core.SetDefaultEvalWorkers(*evalWorkers)
	}

	var spec scenario.Spec
	if *expFile != "" {
		var err error
		spec, err = config.LoadFile[scenario.Spec](*expFile)
		if err != nil {
			return scenario.Spec{}, nil, "", backendChoice{}, err
		}
	} else {
		appSpec, err := loadAppSpec(*app, *appFile)
		if err != nil {
			return scenario.Spec{}, nil, "", backendChoice{}, err
		}
		archSpec, err := arch.spec()
		if err != nil {
			return scenario.Spec{}, nil, "", backendChoice{}, err
		}
		spec = scenario.Spec{
			App:       appSpec,
			Arch:      archSpec,
			Objective: *objective,
			Algorithm: *algorithm,
			Budget:    *budget,
			Seed:      *seed,
			Seeds:     *seeds,
		}
		if *analysesFile != "" {
			analyses, err := config.LoadFile[scenario.AnalysesSpec](*analysesFile)
			if err != nil {
				return scenario.Spec{}, nil, "", backendChoice{}, err
			}
			spec.Analyses = &analyses
		}
	}
	// One normalization path for flags and files alike: the scenario
	// compiler resolves the same defaults the service resolves, so the
	// CLI accepts exactly what the service accepts.
	g, err := spec.Normalize()
	if err != nil {
		return scenario.Spec{}, nil, "", backendChoice{}, err
	}
	return spec, g, *out, backend, nil
}

// parseMapping parses a comma-separated tile-per-task list, e.g.
// "0,1,4,5".
func parseMapping(s string) (core.Mapping, error) {
	if s == "" {
		return nil, fmt.Errorf("-mapping is required")
	}
	parts := strings.Split(s, ",")
	m := make(core.Mapping, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad mapping entry %q: %w", p, err)
		}
		m[i] = topo.TileID(v)
	}
	return m, nil
}
