package main

// Flag and argument parsing, extracted from the command handlers so it
// is unit-testable without exercising os.Exit or running optimizations.

import (
	"errors"
	"flag"
	"fmt"
	"strconv"
	"strings"

	"phonocmap/internal/cg"
	"phonocmap/internal/config"
	"phonocmap/internal/core"
	"phonocmap/internal/search"
	"phonocmap/internal/topo"
)

// errFlagParse marks flag-parse failures the flag package has already
// reported to stderr, so main exits with the conventional status 2
// without printing the error a second time.
var errFlagParse = errors.New("flag parse error")

// archFlags registers the architecture flags shared by map, eval and
// simulate.
type archFlags struct {
	topology  *string
	width     *int
	height    *int
	tiles     *int
	dieCm     *float64
	wrapCross *int
	router    *string
	routing   *string
}

func addArchFlags(fs *flag.FlagSet) archFlags {
	return archFlags{
		topology:  fs.String("topology", "mesh", "topology kind: mesh, torus or ring"),
		width:     fs.Int("width", 0, "grid width (0 = smallest square fitting the app)"),
		height:    fs.Int("height", 0, "grid height (0 = smallest square fitting the app)"),
		tiles:     fs.Int("tiles", 0, "ring tile count"),
		dieCm:     fs.Float64("die-cm", topo.DefaultDieCm, "die edge length in centimetres"),
		wrapCross: fs.Int("wrap-crossings", 0, "waveguide crossings per torus wrap link"),
		router:    fs.String("router", "crux", "optical router: crux, cygnus or crossbar"),
		routing:   fs.String("routing", "xy", "routing algorithm: xy, yx or bfs"),
	}
}

func (a archFlags) spec(app *cg.Graph) config.ArchSpec {
	s := config.ArchSpec{
		Topology:      *a.topology,
		Width:         *a.width,
		Height:        *a.height,
		Tiles:         *a.tiles,
		DieCm:         *a.dieCm,
		WrapCrossings: *a.wrapCross,
		Router:        *a.router,
		Routing:       *a.routing,
	}
	s.Normalize(app.NumTasks())
	return s
}

func loadApp(name, file string) (*cg.Graph, error) {
	switch {
	case name != "" && file != "":
		return nil, fmt.Errorf("use either -app or -app-file, not both")
	case name != "":
		return cg.App(name)
	case file != "":
		spec, err := config.LoadFile[config.AppSpec](file)
		if err != nil {
			return nil, err
		}
		return spec.Build()
	default:
		return nil, fmt.Errorf("an application is required: -app <name> or -app-file <json>")
	}
}

// parseMapCommand parses the 'map' subcommand's arguments into a
// normalized experiment description (with the built application graph,
// so callers need not rebuild it) plus the -out path.
func parseMapCommand(args []string) (config.Experiment, *cg.Graph, string, error) {
	fs := flag.NewFlagSet("map", flag.ContinueOnError)
	app := fs.String("app", "", "bundled application name (see 'phonocmap apps')")
	appFile := fs.String("app-file", "", "custom application JSON file")
	expFile := fs.String("experiment", "", "full experiment JSON file (overrides other flags)")
	objective := fs.String("objective", "snr", "objective: snr or loss")
	algorithm := fs.String("algorithm", "rpbla", "algorithm: "+strings.Join(search.Names(), ", "))
	budget := fs.Int("budget", 20000, "evaluation budget")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "", "write the result as JSON to this file")
	arch := addArchFlags(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return config.Experiment{}, nil, "", err
		}
		return config.Experiment{}, nil, "", fmt.Errorf("%w: %v", errFlagParse, err)
	}

	var exp config.Experiment
	var g *cg.Graph
	if *expFile != "" {
		var err error
		exp, err = config.LoadFile[config.Experiment](*expFile)
		if err != nil {
			return config.Experiment{}, nil, "", err
		}
		g, err = exp.App.Build()
		if err != nil {
			return config.Experiment{}, nil, "", err
		}
	} else {
		var err error
		g, err = loadApp(*app, *appFile)
		if err != nil {
			return config.Experiment{}, nil, "", err
		}
		exp = config.Experiment{
			App:       config.AppSpec{Builtin: *app},
			Arch:      arch.spec(g),
			Objective: *objective,
			Algorithm: *algorithm,
			Budget:    *budget,
			Seed:      *seed,
		}
		if *app == "" {
			exp.App = config.AppSpecOf(g)
		}
	}
	exp.Normalize()
	// Resolve architecture defaults on both paths (flags already size via
	// arch.spec, but an -experiment file may omit dimensions entirely) so
	// the CLI accepts exactly what the service accepts.
	exp.Arch.Normalize(g.NumTasks())
	return exp, g, *out, nil
}

// parseMapping parses a comma-separated tile-per-task list, e.g.
// "0,1,4,5".
func parseMapping(s string) (core.Mapping, error) {
	if s == "" {
		return nil, fmt.Errorf("-mapping is required")
	}
	parts := strings.Split(s, ",")
	m := make(core.Mapping, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad mapping entry %q: %w", p, err)
		}
		m[i] = topo.TileID(v)
	}
	return m, nil
}
