// Command phonocmap is the PhoNoCMap mapping tool: it maps an application
// communication graph onto a photonic NoC, optimizing worst-case
// insertion loss or worst-case crosstalk SNR (Fusella & Cilardo, DATE
// 2016).
//
// Usage:
//
//	phonocmap map   -app VOPD -topology mesh -width 4 -height 4 \
//	                -objective snr -algorithm rpbla -budget 20000
//	phonocmap map   -experiment exp.json [-out result.json]
//	phonocmap eval  -app PIP -width 3 -height 3 -mapping 0,1,2,3,4,5,6,7
//	phonocmap apps
//	phonocmap routers
//	phonocmap dot   -app MPEG-4
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"phonocmap"
	"phonocmap/client"
	"phonocmap/internal/cg"
	"phonocmap/internal/config"
	"phonocmap/internal/core"
	"phonocmap/internal/fleet"
	"phonocmap/internal/router"
	"phonocmap/internal/runner"
	"phonocmap/internal/scenario"
	"phonocmap/internal/topo"
	"phonocmap/internal/version"
	"phonocmap/internal/viz"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "map":
		err = cmdMap(os.Args[2:])
	case "eval":
		err = cmdEval(os.Args[2:])
	case "simulate":
		err = cmdSimulate(os.Args[2:])
	case "apps":
		err = cmdApps()
	case "routers":
		err = cmdRouters()
	case "dot":
		err = cmdDot(os.Args[2:])
	case "version", "-version", "--version":
		fmt.Printf("phonocmap %s (%s)\n", version.String(), runtime.Version())
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "phonocmap: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		if errors.Is(err, errFlagParse) {
			// The flag package already printed the error and usage.
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "phonocmap:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `phonocmap <command> [flags]

Commands:
  map       optimize a mapping for an application on an architecture
  eval      evaluate an explicit mapping
  simulate  optimize a mapping, then run the traffic simulator on it
  apps      list the bundled benchmark applications
  routers   list the built-in optical router architectures
  dot       print an application graph in Graphviz format
  version   print the build version

Most 'map' and 'simulate' work can run remotely: pass -server URL to
execute on a phonocmap-serve instance instead of in-process, or
-servers url1,url2,... to shard across a fleet of them.

Run 'phonocmap <command> -h' for command flags.`)
}

// newRunner picks the execution backend: in-process for the zero
// choice, the typed phonocmap-serve client for -server, a fleet
// coordinator sharding across nodes for -servers. All implement the
// same Runner interface and return identical results for equal specs,
// so every command downstream of this switch is backend-agnostic. The
// returned cleanup releases backend resources (the fleet's health
// prober) and is always non-nil.
func newRunner(b backendChoice) (runner.Runner, func(), error) {
	noop := func() {}
	switch {
	case len(b.servers) > 0:
		fr, err := fleet.New(fleet.Config{Servers: b.servers})
		if err != nil {
			return nil, nil, err
		}
		return fr, func() { _ = fr.Close() }, nil
	case b.server != "":
		c, err := client.New(b.server)
		if err != nil {
			return nil, nil, err
		}
		return c, noop, nil
	default:
		return runner.NewLocal(), noop, nil
	}
}

func cmdMap(args []string) error {
	spec, g, out, backend, err := parseMapCommand(args)
	if errors.Is(err, flag.ErrHelp) {
		return nil // usage already printed by the flag package
	}
	if err != nil {
		return err
	}

	rn, cleanup, err := newRunner(backend)
	if err != nil {
		return err
	}
	defer cleanup()
	res, err := rn.RunScenario(context.Background(), spec)
	if err != nil {
		return err
	}
	rep := res.Report
	// The physical summaries below render against the local architecture
	// model — the spec is normalized, so this is the same network the
	// executing backend built.
	nw, err := spec.Arch.Build()
	if err != nil {
		return err
	}

	fmt.Printf("application : %s\n", g)
	fmt.Printf("architecture: %s\n", nw)
	if backend.remote() {
		fmt.Printf("backend     : phonocmap-serve @ %s\n", backend)
	}
	fmt.Printf("objective   : %s   algorithm: %s   budget: %d evals   seed: %d\n",
		spec.Objective, spec.Algorithm, spec.Budget, spec.Seed)
	fmt.Printf("result      : worst-case loss %.3f dB, worst-case SNR %.3f dB (%d evals, %v)\n",
		res.Score.WorstLossDB, res.Score.WorstSNRDB, res.Evals,
		(time.Duration(res.DurationMs * float64(time.Millisecond))).Round(time.Millisecond))
	fmt.Println("mapping     :")
	for task, tile := range res.Mapping {
		fmt.Printf("  %-14s -> tile %d\n", g.TaskName(cg.TaskID(task)), tile)
	}
	if grid, ok := nw.Topology().(*topo.Grid); ok {
		if gridStr, err := viz.MappingGrid(grid, g, res.Mapping); err == nil {
			fmt.Println("\nplacement:")
			fmt.Print(gridStr)
		}
	}
	if loads, err := viz.LinkUsage(nw, g, res.Mapping); err == nil {
		fmt.Println("busiest links:")
		fmt.Print(viz.FormatLinkUsage(loads, 5))
	}
	// The quick WDM summary is part of the default map output, but when
	// the analyses block already ran the WDM study the report section
	// below carries it — don't compute and print it twice.
	if spec.Analyses == nil || spec.Analyses.WDM == nil {
		if alloc, err := phonocmap.AllocateWavelengths(nw, g, res.Mapping); err == nil {
			fmt.Printf("wavelengths for contention-free operation: %d (%d conflicting pairs)\n",
				alloc.Channels, alloc.Conflicts)
		}
	}
	printReport(rep)
	if out != "" {
		payload := struct {
			Scenario scenario.Spec    `json:"scenario"`
			Mapping  core.Mapping     `json:"mapping"`
			Score    core.Score       `json:"score"`
			Evals    int              `json:"evals"`
			Report   *scenario.Report `json:"report,omitempty"`
		}{spec, res.Mapping, res.Score, res.Evals, rep}
		if err := config.SaveFile(out, payload); err != nil {
			return err
		}
		fmt.Printf("result written to %s\n", out)
	}
	return nil
}

// printReport renders the analysis report sections the scenario
// requested.
func printReport(rep *scenario.Report) {
	if rep == nil {
		return
	}
	fmt.Println("\nanalysis report:")
	if w := rep.WDM; w != nil {
		fmt.Printf("  wdm         : %d wavelength(s), %d conflicting pairs; channeled worst SNR %.2f dB\n",
			w.Channels, w.Conflicts, w.WorstSNRDB)
	}
	if p := rep.Power; p != nil {
		status := "FEASIBLE"
		if !p.Feasible {
			status = "INFEASIBLE"
		}
		fmt.Printf("  power       : %s; channel %.2f dBm, total %.2f dBm, headroom %.2f dB, BER %.2e\n",
			status, p.ChannelPowerDBm, p.TotalInjectedDBm, p.HeadroomDB, p.EstimatedBER)
	}
	if r := rep.Robustness; r != nil {
		fmt.Printf("  robustness  : %d samples ±%.0f%%; loss %.2f±%.2f dB (worst %.2f), SNR %.2f±%.2f dB (worst %.2f)\n",
			r.Samples, r.Tolerance*100, r.MeanLossDB, r.StdLossDB, r.WorstLossDB,
			r.MeanSNRDB, r.StdSNRDB, r.WorstSNRDB)
	}
	if lf := rep.LinkFailures; lf != nil {
		fmt.Printf("  link cuts   : %d scenarios, %d unreachable; worst cut %d-%d: loss %.2f dB, SNR %.2f dB\n",
			lf.Cuts, lf.Unreachable, lf.WorstLink[0], lf.WorstLink[1], lf.WorstLossDB, lf.WorstSNRDB)
	}
	if sm := rep.Sim; sm != nil {
		fmt.Printf("  traffic sim : %d load point(s); saturation load %.2fx\n", len(sm.Points), sm.SaturationLoad)
		for _, p := range sm.Points {
			fmt.Printf("    load %.2fx: offered %.2f Gb/s, delivered %.1f%%, mean latency %.1f ns, max util %.2f\n",
				p.LoadScale, p.OfferedGbps, p.DeliveredFraction*100, p.MeanLatencyNs, p.MaxLinkUtilization)
		}
	}
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	app := fs.String("app", "", "bundled application name")
	appFile := fs.String("app-file", "", "custom application JSON file")
	mapping := fs.String("mapping", "", "comma-separated tile per task, e.g. 0,1,4,5")
	arch := addArchFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	appSpec, err := loadAppSpec(*app, *appFile)
	if err != nil {
		return err
	}
	m, err := parseMapping(*mapping)
	if err != nil {
		return err
	}
	archSpec, err := arch.spec()
	if err != nil {
		return err
	}
	comp, err := scenario.Compile(scenario.Spec{App: appSpec, Arch: archSpec})
	if err != nil {
		return err
	}
	g, nw := comp.App, comp.Network
	res, details, err := comp.Problem.Details(m)
	if err != nil {
		return err
	}
	fmt.Printf("architecture: %s\n", nw)
	fmt.Printf("worst-case loss %.3f dB, worst-case SNR %.3f dB, conflicts %d\n",
		res.WorstLossDB, res.WorstSNRDB, res.Conflicts)
	fmt.Println("per-communication breakdown:")
	for i, d := range details {
		e := g.Edge(i)
		fmt.Printf("  %-14s -> %-14s loss %7.3f dB  noise %8.3f dB  snr %7.3f dB\n",
			g.TaskName(e.Src), g.TaskName(e.Dst), d.LossDB, d.NoiseDB, d.SNRDB)
	}
	return nil
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	app := fs.String("app", "", "bundled application name")
	appFile := fs.String("app-file", "", "custom application JSON file")
	objective := fs.String("objective", "snr", "objective: snr or loss")
	algorithm := fs.String("algorithm", "rpbla", "mapping algorithm")
	budget := fs.Int("budget", 10000, "optimization evaluation budget")
	seed := fs.Int64("seed", 1, "random seed")
	durationNs := fs.Float64("duration-ns", 200_000, "simulated time (ns)")
	loadScale := fs.Float64("load", 1, "scale factor on CG bandwidths")
	server := fs.String("server", "", "phonocmap-serve URL to optimize on (default: in-process); the simulation itself always runs locally")
	servers := fs.String("servers", "", "comma-separated phonocmap-serve URLs to optimize on as a fleet")
	arch := addArchFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	appSpec, err := loadAppSpec(*app, *appFile)
	if err != nil {
		return err
	}
	archSpec, err := arch.spec()
	if err != nil {
		return err
	}
	spec := scenario.Spec{
		App:       appSpec,
		Arch:      archSpec,
		Objective: *objective,
		Algorithm: *algorithm,
		Budget:    *budget,
		Seed:      *seed,
	}
	// Normalize up front: the simulator below needs the resolved
	// architecture, and the backend normalizes to the same spec anyway.
	g, err := spec.Normalize()
	if err != nil {
		return err
	}
	backend := backendChoice{server: *server, servers: parseServers(*servers)}
	if backend.server != "" && len(backend.servers) > 0 {
		return fmt.Errorf("use either -server or -servers, not both")
	}
	rn, cleanup, err := newRunner(backend)
	if err != nil {
		return err
	}
	defer cleanup()
	res, err := rn.RunScenario(context.Background(), spec)
	if err != nil {
		return err
	}
	nw, err := spec.Arch.Build()
	if err != nil {
		return err
	}
	cfg := phonocmap.SimConfig{DurationNs: *durationNs, LoadScale: *loadScale, Seed: *seed}

	ident := core.IdentityMapping(g.NumTasks())
	idStats, err := phonocmap.Simulate(nw, g, ident, cfg)
	if err != nil {
		return err
	}
	optStats, err := phonocmap.Simulate(nw, g, res.Mapping, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("application : %s on %s\n", g, nw)
	fmt.Printf("optimized   : %s, %s objective, budget %d (worst loss %.2f dB, worst SNR %.2f dB)\n",
		*algorithm, *objective, *budget, res.Score.WorstLossDB, res.Score.WorstSNRDB)
	fmt.Printf("\n%-22s %14s %14s\n", "simulated metric", "identity", "optimized")
	rows := []struct {
		name     string
		id, opt  float64
		decimals int
	}{
		{"mean latency (ns)", idStats.MeanLatencyNs, optStats.MeanLatencyNs, 1},
		{"p95 latency (ns)", idStats.P95LatencyNs, optStats.P95LatencyNs, 1},
		{"mean wait (ns)", idStats.MeanWaitNs, optStats.MeanWaitNs, 1},
		{"throughput (Gb/s)", idStats.ThroughputGbps, optStats.ThroughputGbps, 2},
		{"max link util", idStats.MaxLinkUtilization, optStats.MaxLinkUtilization, 3},
	}
	for _, r := range rows {
		fmt.Printf("%-22s %14.*f %14.*f\n", r.name, r.decimals, r.id, r.decimals, r.opt)
	}
	// Power feasibility of the optimized design point.
	rep, err := phonocmap.AssessPower(phonocmap.DefaultPowerBudget(), res.Score)
	if err != nil {
		return err
	}
	fmt.Printf("\npower budget: %s\n", rep)
	return nil
}

func cmdApps() error {
	for _, name := range cg.AppNames() {
		g := cg.MustApp(name)
		side := phonocmap.SquareForTasks(g.NumTasks())
		fmt.Printf("%-15s %2d tasks, %2d edges, smallest mesh %dx%d\n",
			name, g.NumTasks(), g.NumEdges(), side, side)
	}
	return nil
}

func cmdRouters() error {
	for _, name := range phonocmap.Routers() {
		a, err := router.ByName(name)
		if err != nil {
			return err
		}
		fmt.Println(a.Summary())
	}
	return nil
}

func cmdDot(args []string) error {
	fs := flag.NewFlagSet("dot", flag.ExitOnError)
	app := fs.String("app", "", "bundled application name")
	appFile := fs.String("app-file", "", "custom application JSON file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := loadApp(*app, *appFile)
	if err != nil {
		return err
	}
	fmt.Print(g.DOT())
	return nil
}
