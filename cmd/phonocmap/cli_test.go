package main

import (
	"context"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"phonocmap/internal/core"
	"phonocmap/internal/scenario"
)

func TestParseMapCommandHelp(t *testing.T) {
	_, _, _, _, err := parseMapCommand([]string{"-h"})
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
	// cmdMap must treat help as a clean exit, not an error.
	if err := cmdMap([]string{"-h"}); err != nil {
		t.Errorf("cmdMap(-h) = %v, want nil", err)
	}
}

func TestParseMapping(t *testing.T) {
	m, err := parseMapping("0, 1,4,5")
	if err != nil {
		t.Fatal(err)
	}
	want := core.Mapping{0, 1, 4, 5}
	if !m.Equal(want) {
		t.Errorf("got %v, want %v", m, want)
	}
	for _, bad := range []string{"", "0,x,2", "1,,2"} {
		if _, err := parseMapping(bad); err == nil {
			t.Errorf("parseMapping(%q) accepted", bad)
		}
	}
}

func TestParseServers(t *testing.T) {
	got := parseServers(" http://a:8080, http://b:8080 ,,")
	want := []string{"http://a:8080", "http://b:8080"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parseServers = %v, want %v", got, want)
	}
	if s := parseServers(""); s != nil {
		t.Errorf("parseServers(\"\") = %v, want nil", s)
	}
}

func TestParseMapCommandBackendFlags(t *testing.T) {
	_, _, _, backend, err := parseMapCommand([]string{
		"-app", "PIP", "-servers", "http://a:8080,http://b:8080",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !backend.remote() || len(backend.servers) != 2 {
		t.Errorf("backend = %+v, want a 2-node fleet", backend)
	}
	// -server and -servers are mutually exclusive backends.
	if _, _, _, _, err := parseMapCommand([]string{
		"-app", "PIP", "-server", "http://a:8080", "-servers", "http://b:8080",
	}); err == nil {
		t.Error("parseMapCommand accepted -server together with -servers")
	}
}

func TestParseMapCommandDefaults(t *testing.T) {
	exp, _, out, _, err := parseMapCommand([]string{"-app", "VOPD"})
	if err != nil {
		t.Fatal(err)
	}
	if out != "" {
		t.Errorf("default -out = %q, want empty", out)
	}
	if exp.App.Builtin != "VOPD" {
		t.Errorf("app %+v", exp.App)
	}
	if exp.Arch.Topology != "mesh" || exp.Arch.Width != 4 || exp.Arch.Height != 4 {
		t.Errorf("VOPD should default to a 4x4 mesh, got %+v", exp.Arch)
	}
	if exp.Arch.Router != "crux" || exp.Arch.Routing != "xy" {
		t.Errorf("arch defaults %+v", exp.Arch)
	}
	if exp.Objective != "snr" || exp.Algorithm != "rpbla" || exp.Budget != 20000 || exp.Seed != 1 {
		t.Errorf("experiment defaults %+v", exp)
	}
}

func TestParseMapCommandFlags(t *testing.T) {
	exp, _, out, _, err := parseMapCommand([]string{
		"-app", "PIP", "-topology", "torus", "-width", "5", "-height", "3",
		"-objective", "loss", "-algorithm", "ga", "-budget", "777", "-seed", "9",
		"-out", "res.json",
	})
	if err != nil {
		t.Fatal(err)
	}
	if out != "res.json" {
		t.Errorf("out = %q", out)
	}
	if exp.Arch.Topology != "torus" || exp.Arch.Width != 5 || exp.Arch.Height != 3 {
		t.Errorf("arch %+v", exp.Arch)
	}
	if exp.Objective != "loss" || exp.Algorithm != "ga" || exp.Budget != 777 || exp.Seed != 9 {
		t.Errorf("experiment %+v", exp)
	}
}

func TestParseMapCommandExperimentFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "exp.json")
	body := `{
	  "app": {"builtin": "MWD"},
	  "arch": {"topology": "mesh", "width": 4, "height": 4, "router": "crux", "routing": "xy"},
	  "objective": "loss",
	  "algorithm": "sa",
	  "budget": 1234
	}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	exp, _, _, _, err := parseMapCommand([]string{"-experiment", path})
	if err != nil {
		t.Fatal(err)
	}
	if exp.App.Builtin != "MWD" || exp.Algorithm != "sa" || exp.Budget != 1234 {
		t.Errorf("experiment %+v", exp)
	}
	if exp.Seed != 1 {
		t.Errorf("Normalize did not default the seed: %d", exp.Seed)
	}
}

func TestParseMapCommandExperimentFileWithoutArch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "exp.json")
	if err := os.WriteFile(path, []byte(`{"app": {"builtin": "VOPD"}, "objective": "snr"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	exp, _, _, _, err := parseMapCommand([]string{"-experiment", path})
	if err != nil {
		t.Fatal(err)
	}
	// The arch must be resolved to the same defaults the service uses.
	if exp.Arch.Topology != "mesh" || exp.Arch.Width != 4 || exp.Arch.Height != 4 ||
		exp.Arch.Router != "crux" || exp.Arch.Routing != "xy" {
		t.Errorf("experiment without arch not normalized: %+v", exp.Arch)
	}
	if _, err := exp.Arch.Build(); err != nil {
		t.Errorf("normalized arch does not build: %v", err)
	}
}

func TestParseMapCommandErrors(t *testing.T) {
	cases := [][]string{
		{},                                     // no app at all
		{"-app", "NOPE"},                       // unknown bundled app
		{"-app", "PIP", "-app-file", "x.json"}, // both sources
		{"-bogus-flag"},                        // unknown flag
		{"-experiment", "/nonexistent/exp.json"},
	}
	for _, args := range cases {
		if _, _, _, _, err := parseMapCommand(args); err == nil {
			t.Errorf("parseMapCommand(%v) accepted", args)
		}
	}
	if _, _, _, _, err := parseMapCommand([]string{"-bogus-flag"}); !errors.Is(err, errFlagParse) {
		t.Errorf("bad flag returned %v, want errFlagParse sentinel", err)
	}
}

func TestLoadApp(t *testing.T) {
	g, err := loadApp("PIP", "")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 8 {
		t.Errorf("PIP has %d tasks, want 8", g.NumTasks())
	}
	if _, err := loadApp("", ""); err == nil {
		t.Error("missing app accepted")
	}
	if _, err := loadApp("PIP", "file.json"); err == nil {
		t.Error("both app sources accepted")
	}
	if _, err := loadApp("", "/nonexistent/app.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestArchFlagsSpecRespectsExplicitSize(t *testing.T) {
	exp, _, _, _, err := parseMapCommand([]string{"-app", "DVOPD", "-width", "8"})
	if err != nil {
		t.Fatal(err)
	}
	// Width fixed, height still defaults to the smallest fitting square.
	if exp.Arch.Width != 8 || exp.Arch.Height != 6 {
		t.Errorf("arch %dx%d, want 8x6", exp.Arch.Width, exp.Arch.Height)
	}
}

func TestParseFailedLinks(t *testing.T) {
	got, err := parseFailedLinks("0-1, 5-6")
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int{{0, 1}, {5, 6}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("got %v, want %v", got, want)
	}
	if got, err := parseFailedLinks(""); err != nil || got != nil {
		t.Errorf("empty input: %v, %v", got, err)
	}
	for _, bad := range []string{"0", "a-b", "1-2-3x", "1-", "-2"} {
		if _, err := parseFailedLinks(bad); err == nil {
			t.Errorf("parseFailedLinks(%q) accepted", bad)
		}
	}
}

func TestParseMapCommandFailedLinksAndAnalyses(t *testing.T) {
	analysesPath := filepath.Join(t.TempDir(), "analyses.json")
	if err := os.WriteFile(analysesPath, []byte(`{"power": {}, "robustness": {"samples": 6}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, _, _, _, err := parseMapCommand([]string{
		"-app", "PIP", "-router", "cygnus", "-routing", "bfs",
		"-failed-links", "1-2", "-analyses", analysesPath, "-seeds", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Arch.FailedLinks) != 1 || spec.Arch.FailedLinks[0] != [2]int{1, 2} {
		t.Errorf("failed links %v", spec.Arch.FailedLinks)
	}
	if spec.Seeds != 2 {
		t.Errorf("seeds %d", spec.Seeds)
	}
	if spec.Analyses == nil || spec.Analyses.Power == nil || spec.Analyses.Robustness == nil {
		t.Fatalf("analyses %+v", spec.Analyses)
	}
	if spec.Analyses.Robustness.Samples != 6 || spec.Analyses.Robustness.Tolerance != 0.1 {
		t.Errorf("analyses not normalized: %+v", spec.Analyses.Robustness)
	}

	// failed_links without BFS routing is rejected at parse/normalize
	// time, like the service rejects it at submission.
	if _, _, _, _, err := parseMapCommand([]string{"-app", "PIP", "-failed-links", "1-2"}); err == nil {
		t.Error("failed links with default xy routing accepted")
	}
}

// TestCmdMapMatchesScenarioPipeline pins the CLI execution path to the
// shared pipeline: what cmdMap computes for a degraded spec — via the
// Runner backend newRunner selects — is exactly scenario.Run of the
// parsed spec, the same computation the service and a 1-cell sweep
// perform for this spec (their equivalence is pinned in
// internal/service, and local/remote Runner equivalence in package
// client).
func TestCmdMapMatchesScenarioPipeline(t *testing.T) {
	args := []string{
		"-app", "PIP", "-router", "cygnus", "-routing", "bfs",
		"-failed-links", "1-2", "-algorithm", "rs", "-budget", "250", "-seed", "11",
	}
	spec, _, _, backend, err := parseMapCommand(args)
	if err != nil {
		t.Fatal(err)
	}
	if backend.remote() {
		t.Fatalf("no -server/-servers flag given, parsed %q", backend)
	}
	rn, cleanup, err := newRunner(backend)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	res, err := rn.RunScenario(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := scenario.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Mapping.Equal(want.Run.Mapping) || res.Score != want.Run.Score || res.Evals != want.Run.Evals {
		t.Errorf("CLI path diverges from pipeline:\n cli %+v\n lib %+v", res, want.Run)
	}
	if !reflect.DeepEqual(res.Report, want.Report) {
		t.Errorf("CLI report diverges from pipeline")
	}
}
