package main

import (
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"phonocmap/internal/core"
)

func TestParseMapCommandHelp(t *testing.T) {
	_, _, _, err := parseMapCommand([]string{"-h"})
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
	// cmdMap must treat help as a clean exit, not an error.
	if err := cmdMap([]string{"-h"}); err != nil {
		t.Errorf("cmdMap(-h) = %v, want nil", err)
	}
}

func TestParseMapping(t *testing.T) {
	m, err := parseMapping("0, 1,4,5")
	if err != nil {
		t.Fatal(err)
	}
	want := core.Mapping{0, 1, 4, 5}
	if !m.Equal(want) {
		t.Errorf("got %v, want %v", m, want)
	}
	for _, bad := range []string{"", "0,x,2", "1,,2"} {
		if _, err := parseMapping(bad); err == nil {
			t.Errorf("parseMapping(%q) accepted", bad)
		}
	}
}

func TestParseMapCommandDefaults(t *testing.T) {
	exp, _, out, err := parseMapCommand([]string{"-app", "VOPD"})
	if err != nil {
		t.Fatal(err)
	}
	if out != "" {
		t.Errorf("default -out = %q, want empty", out)
	}
	if exp.App.Builtin != "VOPD" {
		t.Errorf("app %+v", exp.App)
	}
	if exp.Arch.Topology != "mesh" || exp.Arch.Width != 4 || exp.Arch.Height != 4 {
		t.Errorf("VOPD should default to a 4x4 mesh, got %+v", exp.Arch)
	}
	if exp.Arch.Router != "crux" || exp.Arch.Routing != "xy" {
		t.Errorf("arch defaults %+v", exp.Arch)
	}
	if exp.Objective != "snr" || exp.Algorithm != "rpbla" || exp.Budget != 20000 || exp.Seed != 1 {
		t.Errorf("experiment defaults %+v", exp)
	}
}

func TestParseMapCommandFlags(t *testing.T) {
	exp, _, out, err := parseMapCommand([]string{
		"-app", "PIP", "-topology", "torus", "-width", "5", "-height", "3",
		"-objective", "loss", "-algorithm", "ga", "-budget", "777", "-seed", "9",
		"-out", "res.json",
	})
	if err != nil {
		t.Fatal(err)
	}
	if out != "res.json" {
		t.Errorf("out = %q", out)
	}
	if exp.Arch.Topology != "torus" || exp.Arch.Width != 5 || exp.Arch.Height != 3 {
		t.Errorf("arch %+v", exp.Arch)
	}
	if exp.Objective != "loss" || exp.Algorithm != "ga" || exp.Budget != 777 || exp.Seed != 9 {
		t.Errorf("experiment %+v", exp)
	}
}

func TestParseMapCommandExperimentFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "exp.json")
	body := `{
	  "app": {"builtin": "MWD"},
	  "arch": {"topology": "mesh", "width": 4, "height": 4, "router": "crux", "routing": "xy"},
	  "objective": "loss",
	  "algorithm": "sa",
	  "budget": 1234
	}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	exp, _, _, err := parseMapCommand([]string{"-experiment", path})
	if err != nil {
		t.Fatal(err)
	}
	if exp.App.Builtin != "MWD" || exp.Algorithm != "sa" || exp.Budget != 1234 {
		t.Errorf("experiment %+v", exp)
	}
	if exp.Seed != 1 {
		t.Errorf("Normalize did not default the seed: %d", exp.Seed)
	}
}

func TestParseMapCommandExperimentFileWithoutArch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "exp.json")
	if err := os.WriteFile(path, []byte(`{"app": {"builtin": "VOPD"}, "objective": "snr"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	exp, _, _, err := parseMapCommand([]string{"-experiment", path})
	if err != nil {
		t.Fatal(err)
	}
	// The arch must be resolved to the same defaults the service uses.
	if exp.Arch.Topology != "mesh" || exp.Arch.Width != 4 || exp.Arch.Height != 4 ||
		exp.Arch.Router != "crux" || exp.Arch.Routing != "xy" {
		t.Errorf("experiment without arch not normalized: %+v", exp.Arch)
	}
	if _, err := exp.Arch.Build(); err != nil {
		t.Errorf("normalized arch does not build: %v", err)
	}
}

func TestParseMapCommandErrors(t *testing.T) {
	cases := [][]string{
		{},                                     // no app at all
		{"-app", "NOPE"},                       // unknown bundled app
		{"-app", "PIP", "-app-file", "x.json"}, // both sources
		{"-bogus-flag"},                        // unknown flag
		{"-experiment", "/nonexistent/exp.json"},
	}
	for _, args := range cases {
		if _, _, _, err := parseMapCommand(args); err == nil {
			t.Errorf("parseMapCommand(%v) accepted", args)
		}
	}
	if _, _, _, err := parseMapCommand([]string{"-bogus-flag"}); !errors.Is(err, errFlagParse) {
		t.Errorf("bad flag returned %v, want errFlagParse sentinel", err)
	}
}

func TestLoadApp(t *testing.T) {
	g, err := loadApp("PIP", "")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 8 {
		t.Errorf("PIP has %d tasks, want 8", g.NumTasks())
	}
	if _, err := loadApp("", ""); err == nil {
		t.Error("missing app accepted")
	}
	if _, err := loadApp("PIP", "file.json"); err == nil {
		t.Error("both app sources accepted")
	}
	if _, err := loadApp("", "/nonexistent/app.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestArchFlagsSpecRespectsExplicitSize(t *testing.T) {
	exp, _, _, err := parseMapCommand([]string{"-app", "DVOPD", "-width", "8"})
	if err != nil {
		t.Fatal(err)
	}
	// Width fixed, height still defaults to the smallest fitting square.
	if exp.Arch.Width != 8 || exp.Arch.Height != 6 {
		t.Errorf("arch %dx%d, want 8x6", exp.Arch.Width, exp.Arch.Height)
	}
}
