// Command phonocmap-bench regenerates the paper's evaluation (Section
// III): the Figure 3 random-mapping distributions and the Table II
// algorithm comparison, plus ablations beyond the paper.
//
// Usage:
//
//	phonocmap-bench fig3   [-samples 100000] [-seed 1] [-apps PIP,VOPD] [-csv dir] [-workers N]
//	phonocmap-bench table2 [-budget 20000] [-seed 1] [-apps ...] [-algos rs,ga,rpbla] [-workers N] [-server URL]
//	phonocmap-bench ablation [-app VOPD] [-seed 1]
//	phonocmap-bench perf [-json] [-out BENCH_2026-01-01.json] [-budget 5000]
//
// Defaults reproduce the paper's setup; reduced samples/budgets give
// quick sanity runs. The grid-shaped experiments run on the sweep
// engine (internal/sweep) — -workers shards their cells across cores
// without changing any result (cells are independent seeded runs).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"phonocmap/client"
	"phonocmap/internal/experiments"
	"phonocmap/internal/runner"
	"phonocmap/internal/stats"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "fig3":
		err = cmdFig3(os.Args[2:])
	case "table2":
		err = cmdTable2(os.Args[2:])
	case "ablation":
		err = cmdAblation(os.Args[2:])
	case "perf":
		err = cmdPerf(os.Args[2:])
	case "-json":
		// Alias: `phonocmap-bench -json` is `perf -json` — the one-liner
		// CI and scripts use to pipe the perf snapshot to stdout.
		err = cmdPerf(os.Args[1:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "phonocmap-bench: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "phonocmap-bench:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `phonocmap-bench <command> [flags]

Commands:
  fig3      probability distributions of SNR and loss over random mappings
  table2    RS vs GA vs R-PBLA on mesh and torus, both objectives
  ablation  budget and router ablations (beyond the paper)
  perf      machine-readable perf snapshot (BENCH_<date>.json); -json to stdout`)
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func cmdFig3(args []string) error {
	fs := flag.NewFlagSet("fig3", flag.ExitOnError)
	samples := fs.Int("samples", 100_000, "random mappings per application (paper: 100000)")
	seed := fs.Int64("seed", 1, "random seed")
	bins := fs.Int("bins", 60, "histogram bins")
	apps := fs.String("apps", "", "comma-separated app subset (default: all eight)")
	csvDir := fs.String("csv", "", "write per-app CSV histograms to this directory")
	workers := fs.Int("workers", 0, "apps sampled concurrently (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	list := splitList(*apps)
	if len(list) == 0 {
		list = experiments.PaperApps()
	}
	fmt.Printf("Figure 3: distribution of worst-case SNR and power loss over %d random mappings\n", *samples)
	fmt.Printf("architecture: smallest square mesh per app, Crux router, XY routing, Table I parameters\n\n")
	results, err := experiments.Fig3All(list, experiments.Fig3Options{
		Samples: *samples, Seed: *seed, Bins: *bins,
	}, *workers)
	if err != nil {
		return err
	}
	for i, app := range list {
		res := results[i]
		fmt.Printf("== %s ==\n", app)
		fmt.Printf("SNR  (dB): %s  zero-noise mappings: %d\n", res.SNRSummary.String(), res.SNRSummary.NonFinite())
		fmt.Printf("loss (dB): %s\n", res.LossSummary.String())
		fmt.Println("SNR distribution:")
		fmt.Print(compactHist(res.SNRHist))
		fmt.Println("loss distribution:")
		fmt.Print(compactHist(res.LossHist))
		fmt.Println()
		if *csvDir != "" {
			if err := writeHistCSV(filepath.Join(*csvDir, "fig3_"+sanitize(app)+"_snr.csv"), res.SNRHist); err != nil {
				return err
			}
			if err := writeHistCSV(filepath.Join(*csvDir, "fig3_"+sanitize(app)+"_loss.csv"), res.LossHist); err != nil {
				return err
			}
		}
	}
	return nil
}

// compactHist renders only the occupied region of a histogram.
func compactHist(h *stats.Histogram) string {
	first, last := -1, -1
	for i := 0; i < h.NumBins(); i++ {
		if h.BinCount(i) > 0 {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 {
		return "  (no in-range samples)\n"
	}
	full := h.ASCII(50)
	lines := strings.Split(strings.TrimRight(full, "\n"), "\n")
	var b strings.Builder
	for i := first; i <= last; i++ {
		b.WriteString(lines[i])
		b.WriteByte('\n')
	}
	return b.String()
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, s)
}

func writeHistCSV(path string, h *stats.Histogram) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "bin_center,count,probability")
	probs := h.Probabilities()
	for i := 0; i < h.NumBins(); i++ {
		fmt.Fprintf(f, "%g,%d,%g\n", h.BinCenter(i), h.BinCount(i), probs[i])
	}
	return nil
}

func cmdTable2(args []string) error {
	fs := flag.NewFlagSet("table2", flag.ExitOnError)
	budget := fs.Int("budget", 20_000, "evaluation budget per run (the equal-time proxy)")
	seed := fs.Int64("seed", 1, "random seed")
	apps := fs.String("apps", "", "comma-separated app subset (default: all eight)")
	algos := fs.String("algos", "", "comma-separated algorithms (default: rs,ga,rpbla)")
	workers := fs.Int("workers", 0, "grid cells executed concurrently (0 = GOMAXPROCS; local execution only)")
	server := fs.String("server", "", "phonocmap-serve URL to execute the grid on (default: in-process)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := experiments.Table2Options{
		Budget:     *budget,
		Seed:       *seed,
		Apps:       splitList(*apps),
		Algorithms: splitList(*algos),
		Workers:    *workers,
	}
	opts.Normalize()

	fmt.Printf("Table II: algorithms comparison (budget %d evaluations per run, seed %d)\n", opts.Budget, opts.Seed)
	fmt.Printf("smallest square topology per app, Crux router, XY routing; SNR and Loss in dB\n\n")
	header := fmt.Sprintf("%-15s |", "Application")
	for _, topoName := range []string{"mesh", "torus"} {
		for _, a := range opts.Algorithms {
			header += fmt.Sprintf(" %-17s|", fmt.Sprintf("%s-%s SNR/Loss", topoName, a))
		}
	}
	fmt.Println(header)
	fmt.Println(strings.Repeat("-", len(header)))
	var rows []experiments.Row
	if *server != "" {
		// The Table II protocol is a sweep grid; remote execution submits
		// the same grid to a phonocmap-serve instance and reads the rows
		// from its aggregation — identical to the local path for equal
		// grids (the equivalence pinned by internal/service and the
		// client's differential suite).
		c, err := client.New(*server)
		if err != nil {
			return err
		}
		res, err := c.RunSweep(context.Background(), experiments.Table2Grid(opts), runner.SweepOptions{})
		if err != nil {
			return err
		}
		for _, cell := range res.Cells {
			if cell.Error != "" {
				return fmt.Errorf("cell %s: %s", cell.Cell.Label(), cell.Error)
			}
		}
		rows = res.Table
	} else {
		var err error
		rows, err = experiments.Table2(opts)
		if err != nil {
			return err
		}
	}
	for _, row := range rows {
		line := fmt.Sprintf("%-15s |", row.App)
		for _, cells := range []map[string]experiments.Cell{row.Mesh, row.Torus} {
			for _, a := range opts.Algorithms {
				c := cells[a]
				line += fmt.Sprintf(" %9.2f %6.2f |", c.SNRDB, c.LossDB)
			}
		}
		fmt.Println(line)
	}
	return nil
}

func cmdAblation(args []string) error {
	fs := flag.NewFlagSet("ablation", flag.ExitOnError)
	app := fs.String("app", "VOPD", "application")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Printf("Budget ablation (R-PBLA, SNR objective, %s):\n", *app)
	budgets := []int{500, 2000, 8000, 20000}
	bres, err := experiments.BudgetAblation(*app, budgets, *seed)
	if err != nil {
		return err
	}
	for _, r := range bres {
		fmt.Printf("  %-14s snr %7.2f dB\n", r.Label, r.SNRDB)
	}
	fmt.Printf("\nRouter ablation (R-PBLA, SNR objective, %s, budget 8000):\n", *app)
	rres, err := experiments.RouterAblation(*app, 8000, *seed)
	if err != nil {
		return err
	}
	for _, r := range rres {
		fmt.Printf("  %-14s snr %7.2f dB\n", r.Label, r.SNRDB)
	}
	return nil
}
