package main

// The perf subcommand is the tracked performance trajectory: a
// machine-readable snapshot of the two throughput numbers the project
// optimizes for — raw evaluation speed (full re-evaluation vs the
// incremental delta engine on the swap hot path) and end-to-end
// optimizer throughput per algorithm. CI runs it on every push and
// uploads the JSON as an artifact; committed BENCH_<date>.json files
// pin the trajectory across PRs.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"time"

	"phonocmap"
	"phonocmap/client"
	"phonocmap/internal/core"
	"phonocmap/internal/fleet"
	"phonocmap/internal/runner"
	"phonocmap/internal/service"
	"phonocmap/internal/version"
)

// perfReport is the BENCH_<date>.json schema.
type perfReport struct {
	// Date is the snapshot day (YYYY-MM-DD); Version the build version.
	Date      string `json:"date"`
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// SwapEval compares full re-evaluation against the incremental
	// delta engine on the swap-and-score hot path.
	SwapEval []swapEvalPerf `json:"swap_eval"`
	// ParallelEval is the batch-evaluation scaling curve: aggregate
	// evals/sec through Context.EvaluateBatch at increasing worker
	// counts on the densest swap-eval case. Results are bit-identical
	// at every worker count; only throughput changes with workers (and
	// only on multi-core runners — on one core the curve is flat, and
	// its rows carry overhead_only so nobody reads sub-1.0 "speedups"
	// as regressions).
	ParallelEval []parallelEvalPerf `json:"parallel_eval"`
	// Fleet is the multi-node sweep scaling curve: cells/sec through a
	// fleet coordinator over in-process phonocmap-serve instances at
	// increasing fleet sizes. Results are byte-identical at every size;
	// only throughput changes with nodes (and only on multi-core
	// runners — overhead_only marks the flat single-core rows).
	Fleet []fleetPerf `json:"fleet"`
	// Algorithms is end-to-end optimizer throughput, one full run per
	// algorithm at the same budget and seed.
	Algorithms []algoPerf `json:"algorithms"`
}

// swapEvalPerf is one full-vs-incremental case on a dense random CG
// (the incremental engine's worst case: many communications per task).
type swapEvalPerf struct {
	Case              string  `json:"case"`
	Tasks             int     `json:"tasks"`
	Edges             int     `json:"edges"`
	FullEvalsPerSec   float64 `json:"full_evals_per_sec"`
	IncrEvalsPerSec   float64 `json:"incremental_evals_per_sec"`
	Speedup           float64 `json:"speedup"`
	SwapsMeasuredFull int     `json:"swaps_measured_full"`
	SwapsMeasuredIncr int     `json:"swaps_measured_incremental"`
}

// parallelEvalPerf is one point of the batch-evaluation scaling curve.
// Workers is the flag-requested count; EvalWorkers what the run
// actually used (the context clamps to the batch size). OverheadOnly
// marks rows measured on a single-core runner, where extra workers can
// only add coordination overhead — their speedup column reports the
// cost of the machinery, not parallel scaling.
type parallelEvalPerf struct {
	Case          string  `json:"case"`
	Workers       int     `json:"workers"`
	EvalWorkers   int     `json:"eval_workers"`
	EvalsMeasured int     `json:"evals_measured"`
	EvalsPerSec   float64 `json:"evals_per_sec"`
	SpeedupVsOne  float64 `json:"speedup_vs_1_worker"`
	OverheadOnly  bool    `json:"overhead_only,omitempty"`
}

// fleetPerf is one point of the fleet sweep scaling curve: a fixed
// distinct-seed grid swept through a coordinator over Nodes in-process
// phonocmap-serve instances (one sweep worker each). OverheadOnly has
// the same meaning as in parallelEvalPerf: on one core more nodes
// cannot run cells concurrently, so the row measures dispatch overhead.
type fleetPerf struct {
	Nodes          int     `json:"nodes"`
	WorkersPerNode int     `json:"workers_per_node"`
	Cells          int     `json:"cells"`
	DurationMs     float64 `json:"duration_ms"`
	CellsPerSec    float64 `json:"cells_per_sec"`
	SpeedupVsOne   float64 `json:"speedup_vs_1_node"`
	OverheadOnly   bool    `json:"overhead_only,omitempty"`
}

// algoPerf is one optimizer run: evaluations per second through the
// full algorithm loop (bookkeeping included), plus the score it
// reached so quality regressions show up next to throughput ones.
type algoPerf struct {
	Algorithm   string  `json:"algorithm"`
	App         string  `json:"app"`
	Budget      int     `json:"budget"`
	Evals       int     `json:"evals"`
	DurationMs  float64 `json:"duration_ms"`
	EvalsPerSec float64 `json:"evals_per_sec"`
	SNRDB       float64 `json:"snr_db"`
}

func cmdPerf(args []string) error {
	fs := flag.NewFlagSet("perf", flag.ExitOnError)
	app := fs.String("app", "VOPD", "application for the per-algorithm runs")
	budget := fs.Int("budget", 5000, "evaluation budget per algorithm run")
	seed := fs.Int64("seed", 1, "random seed")
	algos := fs.String("algos", "rs,ga,rpbla,sa,tabu,memetic", "comma-separated algorithms")
	minTime := fs.Duration("mintime", 300*time.Millisecond, "minimum measurement window per swap-eval case")
	fleetCells := fs.Int("fleet-cells", 12, "distinct-seed cells in the fleet scaling sweep")
	fleetBudget := fs.Int("fleet-budget", 400, "evaluation budget per fleet sweep cell")
	out := fs.String("out", "", "write the snapshot to this path (default BENCH_<date>.json)")
	toStdout := fs.Bool("json", false, "write the snapshot JSON to stdout instead of a file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rep := perfReport{
		Date:      time.Now().UTC().Format("2006-01-02"),
		Version:   version.String(),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}

	swapCases := []struct {
		name         string
		side         int
		tasks, edges int
	}{
		{"4x4-dense", 4, 14, 48},
		{"8x8-dense", 8, 56, 220},
	}
	for _, tc := range swapCases {
		r, err := measureSwapEval(tc.name, tc.side, tc.tasks, tc.edges, *seed, *minTime)
		if err != nil {
			return fmt.Errorf("swap-eval %s: %w", tc.name, err)
		}
		rep.SwapEval = append(rep.SwapEval, r)
	}

	// Scaling curve on the densest case, at 1/2/4/NumCPU workers. On a
	// single-core runner the multi-worker rows cannot speed anything up —
	// they get overhead_only instead of a "speedup" column that would
	// read as a regression.
	workerCounts := []int{1, 2, 4, runtime.NumCPU()}
	sort.Ints(workerCounts)
	last := swapCases[len(swapCases)-1]
	seen := map[int]bool{}
	for _, workers := range workerCounts {
		if workers < 1 || seen[workers] {
			continue
		}
		seen[workers] = true
		r, err := measureParallelEval(last.name, last.side, last.tasks, last.edges, *seed, workers, *minTime)
		if err != nil {
			return fmt.Errorf("parallel-eval %s x%d: %w", last.name, workers, err)
		}
		r.OverheadOnly = workers > 1 && runtime.NumCPU() == 1
		rep.ParallelEval = append(rep.ParallelEval, r)
	}
	for i := range rep.ParallelEval {
		if base := rep.ParallelEval[0].EvalsPerSec; base > 0 {
			rep.ParallelEval[i].SpeedupVsOne = rep.ParallelEval[i].EvalsPerSec / base
		}
	}

	// Fleet scaling: the same distinct-seed grid swept through 1, 2 and
	// 4 in-process phonocmap-serve nodes. Sizes beyond 1 are marked
	// overhead_only on single-core runners, same as parallel_eval.
	for _, nodes := range []int{1, 2, 4} {
		r, err := measureFleet(nodes, *fleetCells, *fleetBudget, *seed)
		if err != nil {
			return fmt.Errorf("fleet x%d: %w", nodes, err)
		}
		r.OverheadOnly = nodes > 1 && runtime.NumCPU() == 1
		rep.Fleet = append(rep.Fleet, r)
	}
	for i := range rep.Fleet {
		if base := rep.Fleet[0].CellsPerSec; base > 0 {
			rep.Fleet[i].SpeedupVsOne = rep.Fleet[i].CellsPerSec / base
		}
	}

	for _, algo := range splitList(*algos) {
		r, err := measureAlgo(*app, algo, *budget, *seed)
		if err != nil {
			return fmt.Errorf("algorithm %s: %w", algo, err)
		}
		rep.Algorithms = append(rep.Algorithms, r)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *toStdout {
		_, err := os.Stdout.Write(enc)
		return err
	}
	path := *out
	if path == "" {
		path = "BENCH_" + rep.Date + ".json"
	}
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d swap-eval cases, %d algorithms)\n", path, len(rep.SwapEval), len(rep.Algorithms))
	return nil
}

// minSwapsPerCase is the floor on measured swaps per case and path.
// Time-window-only measurement undersampled expensive cases — the 8x8
// full-eval figure was once derived from just 128 swaps, mostly warm-up
// — so the loops now run until BOTH the window and this count are
// satisfied.
const minSwapsPerCase = 1024

// measureSwapEval times the swap-and-score hot path both ways on one
// dense random CG, repeating a fixed 4096-swap sequence until the
// measurement window fills and at least minSwapsPerCase swaps ran.
func measureSwapEval(name string, side, tasks, edges int, seed int64, minTime time.Duration) (swapEvalPerf, error) {
	rng := rand.New(rand.NewSource(seed))
	app, err := phonocmap.RandomApp(rng, tasks, edges)
	if err != nil {
		return swapEvalPerf{}, err
	}
	net, err := phonocmap.NewMeshNetwork(side, side)
	if err != nil {
		return swapEvalPerf{}, err
	}
	prob, err := phonocmap.NewProblem(app, net, phonocmap.MaximizeSNR)
	if err != nil {
		return swapEvalPerf{}, err
	}
	m0, err := phonocmap.RandomMapping(prob, rng)
	if err != nil {
		return swapEvalPerf{}, err
	}

	// One fixed random swap sequence, shared by both paths.
	numTiles := net.NumTiles()
	type swap struct{ a, b phonocmap.TileID }
	seq := make([]swap, 4096)
	for i := range seq {
		a := rng.Intn(numTiles)
		c := rng.Intn(numTiles - 1)
		if c >= a {
			c++
		}
		seq[i] = swap{a: phonocmap.TileID(a), b: phonocmap.TileID(c)}
	}

	// Full re-evaluation path: apply the swap to the mapping, score it
	// from scratch.
	taskOf := make([]int, numTiles)
	for t := range taskOf {
		taskOf[t] = -1
	}
	m := m0.Clone()
	for task, tile := range m {
		taskOf[tile] = task
	}
	// Both loops cycle the fixed sequence, checking the window every
	// checkEvery swaps so one pass of an expensive case cannot overshoot
	// the measurement budget by orders of magnitude.
	const checkEvery = 64
	fullOps := 0
	start := time.Now()
	for fullOps < minSwapsPerCase || time.Since(start) < minTime {
		for k := 0; k < checkEvery; k++ {
			s := seq[fullOps%len(seq)]
			ta, tb := taskOf[s.a], taskOf[s.b]
			taskOf[s.a], taskOf[s.b] = tb, ta
			if ta >= 0 {
				m[ta] = s.b
			}
			if tb >= 0 {
				m[tb] = s.a
			}
			if _, err := phonocmap.Evaluate(prob, m); err != nil {
				return swapEvalPerf{}, err
			}
			fullOps++
		}
	}
	fullRate := float64(fullOps) / time.Since(start).Seconds()

	// Incremental path: the delta engine evaluates only what the swap
	// touched.
	sess, err := phonocmap.NewSwapSession(prob, m0)
	if err != nil {
		return swapEvalPerf{}, err
	}
	incrOps := 0
	start = time.Now()
	for incrOps < minSwapsPerCase || time.Since(start) < minTime {
		for k := 0; k < checkEvery; k++ {
			s := seq[incrOps%len(seq)]
			if _, err := sess.EvaluateSwap(s.a, s.b); err != nil {
				return swapEvalPerf{}, err
			}
			sess.Commit()
			incrOps++
		}
	}
	incrRate := float64(incrOps) / time.Since(start).Seconds()

	out := swapEvalPerf{
		Case: name, Tasks: tasks, Edges: edges,
		FullEvalsPerSec:   fullRate,
		IncrEvalsPerSec:   incrRate,
		SwapsMeasuredFull: fullOps, SwapsMeasuredIncr: incrOps,
	}
	if fullRate > 0 {
		out.Speedup = incrRate / fullRate
	}
	return out, nil
}

// measureParallelEval times Context.EvaluateBatch — the production
// population-evaluation path, deterministic reduction included — on
// batches of GA-offspring-like candidates at a fixed worker count.
func measureParallelEval(name string, side, tasks, edges int, seed int64, workers int, minTime time.Duration) (parallelEvalPerf, error) {
	rng := rand.New(rand.NewSource(seed))
	app, err := phonocmap.RandomApp(rng, tasks, edges)
	if err != nil {
		return parallelEvalPerf{}, err
	}
	net, err := phonocmap.NewMeshNetwork(side, side)
	if err != nil {
		return parallelEvalPerf{}, err
	}
	prob, err := phonocmap.NewProblem(app, net, phonocmap.MaximizeSNR)
	if err != nil {
		return parallelEvalPerf{}, err
	}
	// Candidate batch: 256 single-swap neighbors of a base mapping —
	// the shape EvaluateBatch sees from the batched searchers.
	base, err := phonocmap.RandomMapping(prob, rng)
	if err != nil {
		return parallelEvalPerf{}, err
	}
	numTiles := net.NumTiles()
	taskOf := make([]int, numTiles)
	for t := range taskOf {
		taskOf[t] = -1
	}
	for task, tile := range base {
		taskOf[tile] = task
	}
	batch := make([]core.Mapping, 0, 256)
	for len(batch) < cap(batch) {
		a := rng.Intn(numTiles)
		b := rng.Intn(numTiles)
		if a == b || (taskOf[a] < 0 && taskOf[b] < 0) {
			continue
		}
		cand := base.Clone()
		if ta := taskOf[a]; ta >= 0 {
			cand[ta] = phonocmap.TileID(b)
		}
		if tb := taskOf[b]; tb >= 0 {
			cand[tb] = phonocmap.TileID(a)
		}
		batch = append(batch, cand)
	}

	ctx, err := core.NewContext(prob, rng, math.MaxInt/2)
	if err != nil {
		return parallelEvalPerf{}, err
	}
	defer ctx.Close()
	ctx.SetEvalWorkers(workers)
	// Warm the pool (seats the per-worker sessions) outside the window.
	if _, _, err := ctx.EvaluateBatch(batch); err != nil {
		return parallelEvalPerf{}, err
	}

	evals := 0
	start := time.Now()
	for evals < minSwapsPerCase || time.Since(start) < minTime {
		_, n, err := ctx.EvaluateBatch(batch)
		if err != nil {
			return parallelEvalPerf{}, err
		}
		evals += n
	}
	// The context clamps workers to the batch size — report what actually
	// ran, not just what the flag asked for.
	used := ctx.EvalWorkers()
	if used > len(batch) {
		used = len(batch)
	}
	out := parallelEvalPerf{
		Case: name, Workers: workers, EvalWorkers: used, EvalsMeasured: evals,
	}
	if secs := time.Since(start).Seconds(); secs > 0 {
		out.EvalsPerSec = float64(evals) / secs
	}
	return out, nil
}

// measureFleet boots nodes single-worker phonocmap-serve instances
// in-process, shards a distinct-seed sweep across them through the
// fleet coordinator, and reports end-to-end cells/sec. Every cell is a
// unique computation (distinct seeds defeat both dedup and the result
// cache), so the number is honest dispatch-plus-execution throughput.
func measureFleet(nodes, cells, budget int, seed int64) (fleetPerf, error) {
	servers := make([]*httptest.Server, nodes)
	urls := make([]string, nodes)
	for i := range servers {
		srv := service.New(service.Config{Workers: 1})
		ts := httptest.NewServer(srv.Handler())
		defer func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		}()
		servers[i] = ts
		urls[i] = ts.URL
	}
	fr, err := fleet.New(fleet.Config{
		Servers:       urls,
		ProbeInterval: 10 * time.Second,
		ClientOptions: []client.Option{
			client.WithPollInterval(2 * time.Millisecond),
			client.WithoutEvents(),
		},
	})
	if err != nil {
		return fleetPerf{}, err
	}
	defer fr.Close()

	seeds := make([]int64, cells)
	for i := range seeds {
		seeds[i] = seed + int64(i)
	}
	spec := phonocmap.SweepSpec{
		Apps:       []phonocmap.AppSpec{{Builtin: "PIP"}},
		Archs:      []phonocmap.ArchSpec{{Topology: "mesh"}},
		Objectives: []string{"snr"},
		Algorithms: []string{"rs"},
		Budgets:    []int{budget},
		Seeds:      seeds,
	}
	start := time.Now()
	res, err := fr.RunSweep(context.Background(), spec, runner.SweepOptions{})
	if err != nil {
		return fleetPerf{}, err
	}
	dur := time.Since(start)
	for _, c := range res.Cells {
		if c.Error != "" {
			return fleetPerf{}, fmt.Errorf("cell %d failed: %s", c.Index, c.Error)
		}
	}
	out := fleetPerf{
		Nodes: nodes, WorkersPerNode: 1, Cells: len(res.Cells),
		DurationMs: float64(dur) / float64(time.Millisecond),
	}
	if secs := dur.Seconds(); secs > 0 {
		out.CellsPerSec = float64(len(res.Cells)) / secs
	}
	return out, nil
}

// measureAlgo runs one full optimization and reports its throughput
// from the optimizer's own wall clock.
func measureAlgo(app, algo string, budget int, seed int64) (algoPerf, error) {
	g := phonocmap.MustApp(app)
	side := phonocmap.SquareForTasks(g.NumTasks())
	net, err := phonocmap.NewMeshNetwork(side, side)
	if err != nil {
		return algoPerf{}, err
	}
	prob, err := phonocmap.NewProblem(g, net, phonocmap.MaximizeSNR)
	if err != nil {
		return algoPerf{}, err
	}
	res, err := phonocmap.Optimize(prob, algo, budget, seed)
	if err != nil {
		return algoPerf{}, err
	}
	secs := res.Duration.Seconds()
	out := algoPerf{
		Algorithm: algo, App: app, Budget: budget,
		Evals:      res.Evals,
		DurationMs: float64(res.Duration) / float64(time.Millisecond),
		SNRDB:      res.Score.WorstSNRDB,
	}
	if secs > 0 {
		out.EvalsPerSec = float64(res.Evals) / secs
	}
	return out, nil
}
