package phonocmap_test

// Benchmark harness for the paper's evaluation. One benchmark family per
// table/figure:
//
//   - BenchmarkFig3Eval*      — the unit operation of Figure 3: evaluate
//     one random mapping (worst-case SNR + loss) on the app's mesh.
//     Figure 3 itself is 100 000 of these per app; regenerate the actual
//     plots with `go run ./cmd/phonocmap-bench fig3`.
//   - BenchmarkTable2*        — one Table II cell at a reduced budget:
//     a full optimization run of each paper algorithm. Regenerate the
//     full table with `go run ./cmd/phonocmap-bench table2`.
//   - BenchmarkNetworkBuild*  — architecture-model cost: expanding all
//     tile-pair paths of mesh networks.
//   - BenchmarkAblation*      — the design-choice ablations in DESIGN.md.
//
// Run everything with: go test -bench=. -benchmem

import (
	"context"
	"math/rand"
	"testing"

	"phonocmap"
)

func benchProblem(b *testing.B, app string, torus bool, obj phonocmap.Objective) *phonocmap.Problem {
	b.Helper()
	g := phonocmap.MustApp(app)
	side := phonocmap.SquareForTasks(g.NumTasks())
	var net *phonocmap.Network
	var err error
	if torus {
		net, err = phonocmap.NewTorusNetwork(side, side)
	} else {
		net, err = phonocmap.NewMeshNetwork(side, side)
	}
	if err != nil {
		b.Fatal(err)
	}
	prob, err := phonocmap.NewProblem(g, net, obj)
	if err != nil {
		b.Fatal(err)
	}
	return prob
}

// benchFig3Eval measures one random-mapping evaluation — the operation
// Figure 3 performs 100 000 times per application.
func benchFig3Eval(b *testing.B, app string) {
	prob := benchProblem(b, app, false, phonocmap.MaximizeSNR)
	rng := rand.New(rand.NewSource(1))
	mappings := make([]phonocmap.Mapping, 64)
	for i := range mappings {
		m, err := phonocmap.RandomMapping(prob, rng)
		if err != nil {
			b.Fatal(err)
		}
		mappings[i] = m
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := phonocmap.Evaluate(prob, mappings[i%len(mappings)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3EvalPIP(b *testing.B)     { benchFig3Eval(b, "PIP") }
func BenchmarkFig3EvalMWD(b *testing.B)     { benchFig3Eval(b, "MWD") }
func BenchmarkFig3EvalMPEG4(b *testing.B)   { benchFig3Eval(b, "MPEG-4") }
func BenchmarkFig3EvalVOPD(b *testing.B)    { benchFig3Eval(b, "VOPD") }
func BenchmarkFig3EvalWavelet(b *testing.B) { benchFig3Eval(b, "Wavelet") }
func BenchmarkFig3EvalDVOPD(b *testing.B)   { benchFig3Eval(b, "DVOPD") }
func BenchmarkFig3Eval263Dec(b *testing.B)  { benchFig3Eval(b, "263dec_mp3dec") }
func BenchmarkFig3Eval263Enc(b *testing.B)  { benchFig3Eval(b, "263enc_mp3enc") }

// benchTable2Cell measures one optimization run (one Table II cell) at a
// reduced budget so a full -bench pass stays tractable.
func benchTable2Cell(b *testing.B, app, algo string, torus bool) {
	const budget = 1000
	prob := benchProblem(b, app, torus, phonocmap.MaximizeSNR)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := phonocmap.Optimize(prob, algo, budget, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2VOPDMeshRS(b *testing.B)     { benchTable2Cell(b, "VOPD", "rs", false) }
func BenchmarkTable2VOPDMeshGA(b *testing.B)     { benchTable2Cell(b, "VOPD", "ga", false) }
func BenchmarkTable2VOPDMeshRPBLA(b *testing.B)  { benchTable2Cell(b, "VOPD", "rpbla", false) }
func BenchmarkTable2VOPDTorusRS(b *testing.B)    { benchTable2Cell(b, "VOPD", "rs", true) }
func BenchmarkTable2VOPDTorusGA(b *testing.B)    { benchTable2Cell(b, "VOPD", "ga", true) }
func BenchmarkTable2VOPDTorusRPBLA(b *testing.B) { benchTable2Cell(b, "VOPD", "rpbla", true) }
func BenchmarkTable2PIPMeshRPBLA(b *testing.B)   { benchTable2Cell(b, "PIP", "rpbla", false) }
func BenchmarkTable2DVOPDMeshRPBLA(b *testing.B) { benchTable2Cell(b, "DVOPD", "rpbla", false) }

// Extension algorithms (beyond the paper's three).
func BenchmarkTable2VOPDMeshSA(b *testing.B)   { benchTable2Cell(b, "VOPD", "sa", false) }
func BenchmarkTable2VOPDMeshTabu(b *testing.B) { benchTable2Cell(b, "VOPD", "tabu", false) }

// BenchmarkNetworkBuild measures the eager all-pairs element-level path
// expansion of the network model.
func benchNetworkBuild(b *testing.B, side int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := phonocmap.NewMeshNetwork(side, side); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNetworkBuild3x3(b *testing.B) { benchNetworkBuild(b, 3) }
func BenchmarkNetworkBuild4x4(b *testing.B) { benchNetworkBuild(b, 4) }
func BenchmarkNetworkBuild6x6(b *testing.B) { benchNetworkBuild(b, 6) }
func BenchmarkNetworkBuild8x8(b *testing.B) { benchNetworkBuild(b, 8) }

// BenchmarkAblationObjective compares the cost of the two objectives on
// the same instance: SNR evaluation aggregates crosstalk over shared
// elements, loss evaluation only accumulates path losses — the paper's
// "holistic view" overhead (DESIGN.md ablation index).
func BenchmarkAblationObjectiveLoss(b *testing.B) {
	prob := benchProblem(b, "VOPD", false, phonocmap.MinimizeLoss)
	rng := rand.New(rand.NewSource(1))
	m, err := phonocmap.RandomMapping(prob, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := phonocmap.Evaluate(prob, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationObjectiveSNR(b *testing.B) {
	prob := benchProblem(b, "VOPD", false, phonocmap.MaximizeSNR)
	rng := rand.New(rand.NewSource(1))
	m, err := phonocmap.RandomMapping(prob, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := phonocmap.Evaluate(prob, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRouter compares evaluation cost across router
// microarchitectures (crux vs crossbar element counts).
func BenchmarkAblationRouterCrossbar(b *testing.B) {
	g := phonocmap.MustApp("VOPD")
	spec := phonocmap.ArchSpec{Topology: "mesh", Width: 4, Height: 4, Router: "crossbar", Routing: "xy"}
	net, err := phonocmap.NewNetwork(spec)
	if err != nil {
		b.Fatal(err)
	}
	prob, err := phonocmap.NewProblem(g, net, phonocmap.MaximizeSNR)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	m, err := phonocmap.RandomMapping(prob, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := phonocmap.Evaluate(prob, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationObjectiveWeighted measures the bandwidth-weighted
// objective (extension) against the worst-case objectives above.
func BenchmarkAblationObjectiveWeighted(b *testing.B) {
	prob := benchProblem(b, "VOPD", false, phonocmap.MinimizeWeightedLoss)
	rng := rand.New(rand.NewSource(1))
	m, err := phonocmap.RandomMapping(prob, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := phonocmap.Evaluate(prob, m); err != nil {
			b.Fatal(err)
		}
	}
}

// benchMultiSeed runs the same 4-seed multi-start search with a given
// worker count. workers=1 serializes the islands (the sequential
// baseline); workers=4 is the parallel islands mode. The pair tracks the
// wall-clock speedup of OptimizeParallel across PRs:
//
//	go test -bench 'OptimizeSequential4Seeds|OptimizeParallel4Seeds' -benchtime 3x
func benchMultiSeed(b *testing.B, app, algo string, workers int) {
	prob := benchProblem(b, app, false, phonocmap.MaximizeSNR)
	seeds := phonocmap.Seeds(1, 4)
	const budget = 1500
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := phonocmap.OptimizeParallel(context.Background(), prob, algo, budget, seeds, workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizeSequential4Seeds(b *testing.B) { benchMultiSeed(b, "VOPD", "rs", 1) }
func BenchmarkOptimizeParallel4Seeds(b *testing.B)   { benchMultiSeed(b, "VOPD", "rs", 4) }

// The same pair on the largest bundled app, where evaluations are most
// expensive and parallel scaling matters most.
func BenchmarkOptimizeSequential4SeedsDVOPD(b *testing.B) { benchMultiSeed(b, "DVOPD", "rs", 1) }
func BenchmarkOptimizeParallel4SeedsDVOPD(b *testing.B)   { benchMultiSeed(b, "DVOPD", "rs", 4) }

// BenchmarkTable2VOPDMeshMemetic covers the memetic extension algorithm.
func BenchmarkTable2VOPDMeshMemetic(b *testing.B) { benchTable2Cell(b, "VOPD", "memetic", false) }

// BenchmarkWDMAllocate measures the wavelength-allocation extension.
func BenchmarkWDMAllocate(b *testing.B) {
	app := phonocmap.MustApp("MPEG-4")
	net, err := phonocmap.NewMeshNetwork(4, 4)
	if err != nil {
		b.Fatal(err)
	}
	m := make(phonocmap.Mapping, app.NumTasks())
	for i := range m {
		m[i] = phonocmap.TileID(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := phonocmap.AllocateWavelengths(net, app, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateFullVsIncremental is the hot-path comparison of the
// incremental delta-evaluation engine against full re-evaluation on the
// operation every swap searcher performs per step: swap two tiles, score
// the result. The equal-budget DSE protocol makes evals/sec the solution
// quality, so this ratio is the effective search-budget multiplier. The
// dense random CGs stress the worst case (many communications per task).
func BenchmarkEvaluateFullVsIncremental(b *testing.B) {
	cases := []struct {
		name         string
		side         int
		tasks, edges int
	}{
		{"4x4", 4, 14, 48},
		{"8x8", 8, 56, 220},
	}
	for _, tc := range cases {
		rng := rand.New(rand.NewSource(1))
		app, err := phonocmap.RandomApp(rng, tc.tasks, tc.edges)
		if err != nil {
			b.Fatal(err)
		}
		net, err := phonocmap.NewMeshNetwork(tc.side, tc.side)
		if err != nil {
			b.Fatal(err)
		}
		prob, err := phonocmap.NewProblem(app, net, phonocmap.MaximizeSNR)
		if err != nil {
			b.Fatal(err)
		}
		m0, err := phonocmap.RandomMapping(prob, rng)
		if err != nil {
			b.Fatal(err)
		}
		// One fixed random swap sequence, shared by both paths.
		numTiles := net.NumTiles()
		type swap struct{ a, b phonocmap.TileID }
		seq := make([]swap, 512)
		for i := range seq {
			a := rng.Intn(numTiles)
			c := rng.Intn(numTiles - 1)
			if c >= a {
				c++
			}
			seq[i] = swap{a: phonocmap.TileID(a), b: phonocmap.TileID(c)}
		}
		applySwap := func(m phonocmap.Mapping, taskOf []int, s swap) {
			ta, tb := taskOf[s.a], taskOf[s.b]
			taskOf[s.a], taskOf[s.b] = tb, ta
			if ta >= 0 {
				m[ta] = s.b
			}
			if tb >= 0 {
				m[tb] = s.a
			}
		}
		newTaskOf := func(m phonocmap.Mapping) []int {
			taskOf := make([]int, numTiles)
			for t := range taskOf {
				taskOf[t] = -1
			}
			for task, tile := range m {
				taskOf[tile] = task
			}
			return taskOf
		}

		b.Run("full-"+tc.name, func(b *testing.B) {
			m := m0.Clone()
			taskOf := newTaskOf(m)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				applySwap(m, taskOf, seq[i%len(seq)])
				if _, err := phonocmap.Evaluate(prob, m); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("incremental-"+tc.name, func(b *testing.B) {
			sess, err := phonocmap.NewSwapSession(prob, m0)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := seq[i%len(seq)]
				if _, err := sess.EvaluateSwap(s.a, s.b); err != nil {
					b.Fatal(err)
				}
				sess.Commit()
			}
		})
	}
}

// BenchmarkSimulate measures the traffic-simulator extension on a mapped
// benchmark application.
func BenchmarkSimulate(b *testing.B) {
	app := phonocmap.MustApp("VOPD")
	net, err := phonocmap.NewMeshNetwork(4, 4)
	if err != nil {
		b.Fatal(err)
	}
	m := make(phonocmap.Mapping, app.NumTasks())
	for i := range m {
		m[i] = phonocmap.TileID(i)
	}
	cfg := phonocmap.SimConfig{DurationNs: 50_000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := phonocmap.Simulate(net, app, m, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
