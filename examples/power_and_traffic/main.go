// Power and traffic: close the loop the paper's introduction opens. The
// injected laser power must exceed the detector sensitivity plus the
// worst-case insertion loss but stay below the silicon nonlinearity
// ceiling — so the worst-case loss of a mapping directly bounds how far
// a photonic NoC scales. This example optimizes mappings of the DVOPD
// decoder on growing meshes, assesses the optical power feasibility of
// each design point (including WDM variants), and runs the traffic
// simulator on the final mapping.
//
// Run with:
//
//	go run ./examples/power_and_traffic
package main

import (
	"fmt"
	"log"

	"phonocmap"
)

func main() {
	app := phonocmap.MustApp("DVOPD")
	fmt.Println("application:", app)
	fmt.Println()

	// Sweep mesh sizes from the smallest that fits upward; larger
	// meshes mean longer paths, more loss, less power headroom.
	fmt.Printf("%-8s %12s %12s %14s %12s\n", "mesh", "loss (dB)", "SNR (dB)", "laser (dBm/ch)", "headroom")
	budget := phonocmap.DefaultPowerBudget()
	budget.Wavelengths = 8 // an 8-channel WDM design point
	var lastMapping phonocmap.Mapping
	var lastNet *phonocmap.Network
	for side := 6; side <= 9; side++ {
		net, err := phonocmap.NewMeshNetwork(side, side)
		if err != nil {
			log.Fatal(err)
		}
		prob, err := phonocmap.NewProblem(app, net, phonocmap.MinimizeLoss)
		if err != nil {
			log.Fatal(err)
		}
		res, err := phonocmap.Optimize(prob, "rpbla", 6000, 1)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := phonocmap.AssessPower(budget, res.Score)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%dx%-6d %12.2f %12.2f %14.2f %9.2f dB\n",
			side, side, res.Score.WorstLossDB, res.Score.WorstSNRDB,
			rep.ChannelPowerDBm, rep.HeadroomDB)
		if side == 6 {
			lastMapping, lastNet = res.Mapping, net
		}
	}

	// How many WDM channels does the 6x6 design point support?
	net6 := lastNet
	prob, err := phonocmap.NewProblem(app, net6, phonocmap.MinimizeLoss)
	if err != nil {
		log.Fatal(err)
	}
	score, err := phonocmap.Evaluate(prob, lastMapping)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := phonocmap.AssessPower(phonocmap.DefaultPowerBudget(), score)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n6x6 design point: %s\n", rep)

	// Dynamic behaviour of the optimized mapping under load.
	fmt.Println("\ntraffic simulation (circuit switching, 40 Gb/s per wavelength):")
	for _, load := range []float64{0.5, 1, 2} {
		st, err := phonocmap.Simulate(net6, app, lastMapping, phonocmap.SimConfig{
			DurationNs: 200_000, LoadScale: load, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  load x%-4.1f mean latency %7.1f ns, p95 %7.1f ns, throughput %6.2f Gb/s, max util %.2f\n",
			load, st.MeanLatencyNs, st.P95LatencyNs, st.ThroughputGbps, st.MaxLinkUtilization)
	}
}
