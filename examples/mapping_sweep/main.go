// Mapping sweep: the Figure 3 experiment in miniature. Draw thousands of
// random mappings of one application, plot the worst-case SNR and loss
// distributions as ASCII histograms, and contrast the naive identity
// placement with the best sampled and the R-PBLA-optimized mappings —
// the spread that motivates mapping optimization in the first place.
//
// Run with:
//
//	go run ./examples/mapping_sweep [-app Wavelet] [-samples 20000]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"phonocmap"
	"phonocmap/internal/stats"
)

func main() {
	appName := flag.String("app", "Wavelet", "benchmark application")
	samples := flag.Int("samples", 20000, "random mappings to draw")
	flag.Parse()

	app, err := phonocmap.App(*appName)
	if err != nil {
		log.Fatal(err)
	}
	side := phonocmap.SquareForTasks(app.NumTasks())
	net, err := phonocmap.NewMeshNetwork(side, side)
	if err != nil {
		log.Fatal(err)
	}
	prob, err := phonocmap.NewProblem(app, net, phonocmap.MaximizeSNR)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %s, %d random mappings\n\n", app, net, *samples)

	snrHist, err := stats.NewHistogram(0, 45, 45)
	if err != nil {
		log.Fatal(err)
	}
	lossHist, err := stats.NewHistogram(-6, 0, 48)
	if err != nil {
		log.Fatal(err)
	}
	var snrSum, lossSum stats.Summary

	rng := rand.New(rand.NewSource(7))
	best := phonocmap.Mapping(nil)
	bestSNR := -1.0
	for i := 0; i < *samples; i++ {
		m, err := phonocmap.RandomMapping(prob, rng)
		if err != nil {
			log.Fatal(err)
		}
		s, err := phonocmap.Evaluate(prob, m)
		if err != nil {
			log.Fatal(err)
		}
		snrHist.Add(s.WorstSNRDB)
		lossHist.Add(s.WorstLossDB)
		snrSum.Add(s.WorstSNRDB)
		lossSum.Add(s.WorstLossDB)
		if s.WorstSNRDB > bestSNR {
			bestSNR, best = s.WorstSNRDB, m.Clone()
		}
	}

	fmt.Println("worst-case SNR distribution (dB):")
	fmt.Print(snrHist.ASCII(48))
	fmt.Println("\nworst-case loss distribution (dB):")
	fmt.Print(lossHist.ASCII(48))
	fmt.Printf("\nSNR : %s\n", snrSum.String())
	fmt.Printf("loss: %s\n", lossSum.String())

	// Contrast three placements.
	identity := make(phonocmap.Mapping, app.NumTasks())
	for i := range identity {
		identity[i] = phonocmap.TileID(i)
	}
	idScore, err := phonocmap.Evaluate(prob, identity)
	if err != nil {
		log.Fatal(err)
	}
	bestScore, err := phonocmap.Evaluate(prob, best)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := phonocmap.Optimize(prob, "rpbla", *samples, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nplacement comparison (equal evaluation counts for sweep and optimizer):")
	fmt.Printf("  identity placement : SNR %7.2f dB, loss %7.2f dB\n", idScore.WorstSNRDB, idScore.WorstLossDB)
	fmt.Printf("  best random sample : SNR %7.2f dB, loss %7.2f dB\n", bestScore.WorstSNRDB, bestScore.WorstLossDB)
	fmt.Printf("  R-PBLA optimized   : SNR %7.2f dB, loss %7.2f dB\n", opt.Score.WorstSNRDB, opt.Score.WorstLossDB)
}
