// Grid sweep: the paper's evaluation protocol as one declarative grid.
// Two applications × mesh/torus × both objectives × two algorithms run
// under an equal evaluation budget on the local worker pool, then the
// sweep aggregators fold the cells into a Table II-style comparison, a
// budget-ablation curve and per-application Pareto fronts.
//
// The identical grid can be submitted to a running phonocmap-serve via
// POST /v1/sweeps — cells are content-addressed job specs, so results
// computed on either front populate the same cache identity.
//
// Run with:
//
//	go run ./examples/grid_sweep
package main

import (
	"context"
	"fmt"
	"log"

	"phonocmap"
)

func main() {
	spec := phonocmap.SweepSpec{
		Apps: []phonocmap.AppSpec{{Builtin: "PIP"}, {Builtin: "MWD"}},
		Archs: []phonocmap.ArchSpec{
			{Topology: "mesh"}, // auto-sized to the smallest square per app
			{Topology: "torus"},
		},
		Objectives: []string{"snr", "loss"},
		Algorithms: []string{"rs", "rpbla"},
		Budgets:    []int{400, 4000},
		Seeds:      []int64{1},
	}

	cells, err := phonocmap.ExpandSweep(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid: %d cells (2 apps x 2 archs x 2 objectives x 2 algorithms x 2 budgets)\n\n", len(cells))

	results, err := phonocmap.RunSweep(context.Background(), spec, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			log.Fatalf("cell %s failed: %v", r.Cell.Label(), r.Err)
		}
	}

	// Table II-style comparison: each column reports the best score found
	// across the grid's budget dimension.
	fmt.Println("algorithm comparison (best SNR / best loss, dB):")
	for _, row := range phonocmap.SweepTable(results) {
		fmt.Printf("  %-6s", row.App)
		for _, topo := range []string{"mesh", "torus"} {
			cells := row.Mesh
			if topo == "torus" {
				cells = row.Torus
			}
			for _, algo := range spec.Algorithms {
				c := cells[algo]
				fmt.Printf("  %s/%s %6.2f/%6.2f", topo, algo, c.SNRDB, c.LossDB)
			}
		}
		fmt.Println()
	}

	fmt.Println("\nbudget ablation (mesh, snr objective):")
	for _, p := range phonocmap.SweepBudgetCurves(results) {
		if p.Topology != "mesh" || p.Objective != "snr" {
			continue
		}
		fmt.Printf("  %-6s %-6s budget %5d: snr %6.2f dB, loss %6.2f dB\n",
			p.App, p.Algorithm, p.Budget, p.SNRDB, p.LossDB)
	}

	fmt.Println("\nPareto fronts over all cells:")
	for app, front := range phonocmap.SweepParetoFronts(results) {
		fmt.Printf("  %s: %d non-dominated mapping(s)\n", app, len(front))
		for _, pt := range front {
			fmt.Printf("    loss %6.2f dB   SNR %6.2f dB\n", pt.WorstLossDB, pt.WorstSNRDB)
		}
	}
}
