// Grid sweep: the paper's evaluation protocol as one declarative grid.
// Two applications × mesh/torus × both objectives × two algorithms run
// under an equal evaluation budget, then the sweep aggregators fold the
// cells into a Table II-style comparison, a budget-ablation curve and
// per-application Pareto fronts.
//
// The grid executes through the Runner interface, so the backend is a
// flag: in-process by default, any phonocmap-serve instance with
// -server, or a whole fleet of them with -servers — same cells, same
// content-addressed identities, identical results at any fleet size.
//
// Run with:
//
//	go run ./examples/grid_sweep
//	go run ./examples/grid_sweep -server http://localhost:8080
//	go run ./examples/grid_sweep -servers http://localhost:8080,http://localhost:8081
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"

	"phonocmap"
)

func main() {
	server := flag.String("server", "", "phonocmap-serve URL to execute the grid on (default: in-process)")
	servers := flag.String("servers", "", "comma-separated phonocmap-serve URLs to shard the grid across as a fleet")
	flag.Parse()

	spec := phonocmap.SweepSpec{
		Apps: []phonocmap.AppSpec{{Builtin: "PIP"}, {Builtin: "MWD"}},
		Archs: []phonocmap.ArchSpec{
			{Topology: "mesh"}, // auto-sized to the smallest square per app
			{Topology: "torus"},
		},
		Objectives: []string{"snr", "loss"},
		Algorithms: []string{"rs", "rpbla"},
		Budgets:    []int{400, 4000},
		Seeds:      []int64{1},
	}

	rn := phonocmap.NewLocalRunner()
	switch {
	case *servers != "":
		fr, err := phonocmap.NewFleetRunner(phonocmap.FleetConfig{Servers: strings.Split(*servers, ",")})
		if err != nil {
			log.Fatal(err)
		}
		defer fr.Close()
		rn = fr
		fmt.Printf("executing on a fleet: %s\n", *servers)
	case *server != "":
		var err error
		if rn, err = phonocmap.NewClient(*server); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("executing on %s\n", *server)
	}

	cells, err := phonocmap.ExpandSweep(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid: %d cells (2 apps x 2 archs x 2 objectives x 2 algorithms x 2 budgets)\n\n", len(cells))

	res, err := rn.RunSweep(context.Background(), spec, phonocmap.SweepRunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range res.Cells {
		if c.Error != "" {
			log.Fatalf("cell %s failed: %s", c.Cell.Label(), c.Error)
		}
	}

	// Table II-style comparison: each column reports the best score found
	// across the grid's budget dimension.
	fmt.Println("algorithm comparison (best SNR / best loss, dB):")
	for _, row := range res.Table {
		fmt.Printf("  %-6s", row.App)
		for _, topo := range []string{"mesh", "torus"} {
			cells := row.Mesh
			if topo == "torus" {
				cells = row.Torus
			}
			for _, algo := range spec.Algorithms {
				c := cells[algo]
				fmt.Printf("  %s/%s %6.2f/%6.2f", topo, algo, c.SNRDB, c.LossDB)
			}
		}
		fmt.Println()
	}

	fmt.Println("\nbudget ablation (mesh, snr objective):")
	for _, p := range res.BudgetCurves {
		if p.Topology != "mesh" || p.Objective != "snr" {
			continue
		}
		fmt.Printf("  %-6s %-6s budget %5d: snr %6.2f dB, loss %6.2f dB\n",
			p.App, p.Algorithm, p.Budget, p.SNRDB, p.LossDB)
	}

	fmt.Println("\nPareto fronts over all cells:")
	for app, front := range res.Pareto {
		fmt.Printf("  %s: %d non-dominated mapping(s)\n", app, len(front))
		for _, pt := range front {
			fmt.Printf("    loss %6.2f dB   SNR %6.2f dB   (cell %d)\n",
				pt.WorstLossDB, pt.WorstSNRDB, pt.CellIndex)
		}
	}
}
