// Multimedia suite: run the full Table II protocol of the paper at a
// reduced budget — all eight multimedia applications, three algorithms,
// mesh and torus, both objectives — and verify the paper's qualitative
// claims on the way.
//
// Run with:
//
//	go run ./examples/multimedia_suite [-budget 4000]
package main

import (
	"flag"
	"fmt"
	"log"

	"phonocmap"
)

type runKey struct {
	app, algo string
	torus     bool
}

func main() {
	budget := flag.Int("budget", 4000, "evaluation budget per run")
	flag.Parse()

	algos := []string{"rs", "ga", "rpbla"}
	fmt.Printf("%-15s %-6s | %8s %8s | %8s %8s\n",
		"application", "algo", "meshSNR", "meshLoss", "torusSNR", "torusLoss")

	snr := make(map[runKey]float64)
	loss := make(map[runKey]float64)

	for _, appName := range phonocmap.Apps() {
		app := phonocmap.MustApp(appName)
		side := phonocmap.SquareForTasks(app.NumTasks())
		for _, algo := range algos {
			for _, torus := range []bool{false, true} {
				var net *phonocmap.Network
				var err error
				if torus {
					net, err = phonocmap.NewTorusNetwork(side, side)
				} else {
					net, err = phonocmap.NewMeshNetwork(side, side)
				}
				if err != nil {
					log.Fatal(err)
				}
				k := runKey{appName, algo, torus}
				snr[k] = optimize(app, net, phonocmap.MaximizeSNR, algo, *budget).WorstSNRDB
				loss[k] = optimize(app, net, phonocmap.MinimizeLoss, algo, *budget).WorstLossDB
			}
			fmt.Printf("%-15s %-6s | %8.2f %8.2f | %8.2f %8.2f\n",
				appName, algo,
				snr[runKey{appName, algo, false}], loss[runKey{appName, algo, false}],
				snr[runKey{appName, algo, true}], loss[runKey{appName, algo, true}])
		}
	}

	// Check the paper's qualitative claims on this run.
	fmt.Println("\nqualitative checks (paper, Section III):")
	check := func(name string, ok bool) {
		status := "OK "
		if !ok {
			status = "MISS"
		}
		fmt.Printf("  [%s] %s\n", status, name)
	}
	gaBeatsRS, rpblaCompetitive := 0, 0
	for _, appName := range phonocmap.Apps() {
		if snr[runKey{appName, "ga", false}] >= snr[runKey{appName, "rs", false}] {
			gaBeatsRS++
		}
		if snr[runKey{appName, "rpbla", false}] >= snr[runKey{appName, "ga", false}]-1.0 {
			rpblaCompetitive++
		}
	}
	check(fmt.Sprintf("GA >= RS on mesh SNR for %d/8 apps", gaBeatsRS), gaBeatsRS >= 6)
	check(fmt.Sprintf("R-PBLA within 1 dB of GA or better on mesh SNR for %d/8 apps", rpblaCompetitive), rpblaCompetitive >= 6)
	check("DVOPD (biggest topology) has the worst RS mesh loss", worstLossApp(loss) == "DVOPD")
	check("MPEG-4 (densest CG) does worse than MWD (sparse) on mesh SNR",
		snr[runKey{"MPEG-4", "rpbla", false}] <= snr[runKey{"MWD", "rpbla", false}])
}

func optimize(app *phonocmap.Graph, net *phonocmap.Network, obj phonocmap.Objective, algo string, budget int) phonocmap.Score {
	prob, err := phonocmap.NewProblem(app, net, obj)
	if err != nil {
		log.Fatal(err)
	}
	res, err := phonocmap.Optimize(prob, algo, budget, 1)
	if err != nil {
		log.Fatal(err)
	}
	return res.Score
}

func worstLossApp(loss map[runKey]float64) string {
	worst, worstApp := 0.0, ""
	for _, appName := range phonocmap.Apps() {
		if v := loss[runKey{appName, "rs", false}]; v < worst {
			worst, worstApp = v, appName
		}
	}
	return worstApp
}
