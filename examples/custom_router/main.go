// Custom router: demonstrate the extensibility claim of the paper — new
// optical router microarchitectures plug into PhoNoCMap without touching
// the tool core. This example hand-builds an XY-only reduced crossbar
// with the router.Builder API, wires it into a network, and compares its
// mapping quality against the built-in Crux reconstruction.
//
// Run with:
//
//	go run ./examples/custom_router
package main

import (
	"fmt"
	"log"

	"phonocmap"
	"phonocmap/internal/core"
	"phonocmap/internal/network"
	"phonocmap/internal/photonic"
	"phonocmap/internal/route"
	"phonocmap/internal/router"
	"phonocmap/internal/topo"
)

// buildReducedCrossbar assembles a 5x5 matrix crossbar that implements
// only the 16 turns XY routing needs: the four Y-to-X turn rings of a
// full crossbar are omitted (their intersections become plain crossings),
// trading generality for 16 rings instead of 20.
func buildReducedCrossbar() *router.Architecture {
	b := router.NewBuilder("xbar-xy")
	needed := make(map[[2]router.Port]bool)
	for _, t := range router.RequiredTurnsXY() {
		needed[[2]router.Port{t[0], t[1]}] = true
	}
	var elem [router.NumPorts][router.NumPorts]router.ElemID
	for i := router.Port(0); i < router.NumPorts; i++ {
		for j := router.Port(0); j < router.NumPorts; j++ {
			kind := photonic.Crossing
			if needed[[2]router.Port{i, j}] {
				kind = photonic.CPSE // ring only where a turn exists
			}
			elem[i][j] = b.AddElement(kind, fmt.Sprintf("x%d%d", i, j))
		}
	}
	for turn := range needed {
		i, j := turn[0], turn[1]
		var path []router.Traversal
		for k := router.Port(0); k < j; k++ {
			path = append(path, router.Traversal{Elem: elem[i][k], In: photonic.PortA0, State: photonic.Off})
		}
		path = append(path, router.Traversal{Elem: elem[i][j], In: photonic.PortA0, State: photonic.On})
		for m := i + 1; m < router.NumPorts; m++ {
			path = append(path, router.Traversal{Elem: elem[m][j], In: photonic.PortB0, State: photonic.Off})
		}
		b.SetPath(i, j, path)
	}
	arch, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return arch
}

func main() {
	custom := buildReducedCrossbar()
	fmt.Println("custom router :", custom.Summary())
	fmt.Println("built-in crux :", router.Crux().Summary())

	// The custom router must provide every turn XY routing produces;
	// CheckTurns is the validation hook architectures go through.
	if err := router.CheckTurns(custom, router.RequiredTurnsXY()); err != nil {
		log.Fatal(err)
	}

	app := phonocmap.MustApp("MWD")
	grid, err := topo.NewMesh(4, 4)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nmapping %s with R-PBLA (budget 6000, both objectives):\n", app)
	results := make(map[string]phonocmap.Score)
	for _, arch := range []*router.Architecture{custom, router.Crux()} {
		nw, err := network.New(grid, arch, route.XY{}, photonic.DefaultParams())
		if err != nil {
			log.Fatal(err)
		}
		var score phonocmap.Score
		for _, obj := range []phonocmap.Objective{phonocmap.MaximizeSNR, phonocmap.MinimizeLoss} {
			prob, err := core.NewProblem(app, nw, obj)
			if err != nil {
				log.Fatal(err)
			}
			res, err := phonocmap.Optimize(prob, "rpbla", 6000, 1)
			if err != nil {
				log.Fatal(err)
			}
			if obj == phonocmap.MaximizeSNR {
				score.WorstSNRDB = res.Score.WorstSNRDB
			} else {
				score.WorstLossDB = res.Score.WorstLossDB
			}
		}
		results[arch.Name()] = score
		fmt.Printf("  %-9s worst-case SNR %7.2f dB, worst-case loss %7.2f dB\n",
			arch.Name(), score.WorstSNRDB, score.WorstLossDB)
	}

	fmt.Println("\ninterpretation: the two microarchitectures trade differently —")
	fmt.Println("the matrix crossbar spreads paths over disjoint rows and columns")
	fmt.Println("(its idealized netlist has no gateway coupling, so crosstalk-free")
	fmt.Println("mappings can exist), while the Crux layout concentrates traffic")
	fmt.Println("through a compact centre and wins on insertion loss:")
	fmt.Printf("  loss: crux %.2f dB vs %s %.2f dB\n",
		results["crux"].WorstLossDB, custom.Name(), results[custom.Name()].WorstLossDB)
	fmt.Println("router microarchitecture and mapping quality interact; swapping the")
	fmt.Println("router is one Builder call, with no change to the tool core.")
}
