// Design space: the multi-objective and robustness view of mapping
// exploration, beyond the paper's single-objective runs. The example
// archives the Pareto front of (worst-case loss, worst-case SNR) during
// an R-PBLA run on VOPD, then hands the physical follow-up — WDM
// allocation, ±20% parameter variation and the exhaustive link-failure
// study on an all-turn Cygnus network — to the declarative scenario
// pipeline, and finally shows how a degraded topology (failed_links)
// becomes an ordinary sweepable design point.
//
// Run with:
//
//	go run ./examples/design_space
//	go run ./examples/design_space -server http://localhost:8080
//	go run ./examples/design_space -servers http://localhost:8080,http://localhost:8081
//
// With -server, the declarative steps (the scenario and the
// healthy-vs-degraded sweep) execute remotely on a phonocmap-serve
// instance through the same Runner interface — identical results. With
// -servers, they shard across a fleet of instances, still identical.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"

	"phonocmap"
)

func main() {
	server := flag.String("server", "", "phonocmap-serve URL for the declarative steps (default: in-process)")
	servers := flag.String("servers", "", "comma-separated phonocmap-serve URLs for the declarative steps, as a fleet")
	flag.Parse()
	rn := phonocmap.NewLocalRunner()
	switch {
	case *servers != "":
		fr, err := phonocmap.NewFleetRunner(phonocmap.FleetConfig{Servers: strings.Split(*servers, ",")})
		if err != nil {
			log.Fatal(err)
		}
		defer fr.Close()
		rn = fr
		fmt.Printf("declarative steps execute on a fleet: %s\n", *servers)
	case *server != "":
		var err error
		if rn, err = phonocmap.NewClient(*server); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("declarative steps execute on %s\n", *server)
	}

	app := phonocmap.MustApp("VOPD")
	net, err := phonocmap.NewMeshNetwork(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	prob, err := phonocmap.NewProblem(app, net, phonocmap.MaximizeSNR)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Pareto front over 10 000 evaluations.
	front, err := phonocmap.ParetoExplore(prob, "rpbla", 10000, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pareto front of %s on %s (%d points):\n", app.Name(), net, len(front))
	for _, p := range front {
		fmt.Printf("  loss %6.2f dB   SNR %6.2f dB\n", p.WorstLossDB, p.WorstSNRDB)
	}

	// 2. The physical follow-up, declaratively: re-run the same search on
	// an all-turn Cygnus network with the full analysis block. This spec
	// is exactly what the CLI's 'map -analyses' and the service's
	// /v1/jobs accept — one pipeline, three fronts.
	cygnus := phonocmap.Scenario{
		App:       phonocmap.AppSpec{Builtin: "VOPD"},
		Arch:      phonocmap.ArchSpec{Router: "cygnus", Routing: "bfs"},
		Objective: "snr",
		Algorithm: "rpbla",
		Budget:    10000,
		Seed:      1,
		Analyses: &phonocmap.AnalysesSpec{
			WDM:          &phonocmap.WDMSpec{},
			Robustness:   &phonocmap.RobustnessSpec{Samples: 40, Tolerance: 0.2},
			LinkFailures: &phonocmap.LinkFailuresSpec{},
		},
	}
	res, err := rn.RunScenario(context.Background(), cygnus)
	if err != nil {
		log.Fatal(err)
	}
	rep := res.Report
	fmt.Printf("\ncygnus design point: loss %.2f dB, SNR %.2f dB\n",
		res.Score.WorstLossDB, res.Score.WorstSNRDB)
	fmt.Printf("WDM: %d wavelength(s) remove %d conflicting pairs; worst SNR %.2f dB\n",
		rep.WDM.Channels, rep.WDM.Conflicts, rep.WDM.WorstSNRDB)
	fmt.Printf("parameter variation (40 samples, ±20%%): SNR %.2f±%.2f dB, worst draw %.2f dB\n",
		rep.Robustness.MeanSNRDB, rep.Robustness.StdSNRDB, rep.Robustness.WorstSNRDB)
	fmt.Printf("link failures (%d single-link cuts, BFS rerouting): %d unreachable; worst cut %v: loss %.2f dB, SNR %.2f dB\n",
		rep.LinkFailures.Cuts, rep.LinkFailures.Unreachable,
		rep.LinkFailures.WorstLink, rep.LinkFailures.WorstLossDB, rep.LinkFailures.WorstSNRDB)

	// 3. Degraded topologies are declarative now: sweep the healthy
	// network against the worst cut found above and compare like any
	// other design axis.
	degraded := phonocmap.ArchSpec{Router: "cygnus", Routing: "bfs",
		FailedLinks: [][2]int{{int(rep.LinkFailures.WorstLink[0]), int(rep.LinkFailures.WorstLink[1])}}}
	sweepRes, err := rn.RunSweep(context.Background(), phonocmap.SweepSpec{
		Apps:       []phonocmap.AppSpec{{Builtin: "VOPD"}},
		Archs:      []phonocmap.ArchSpec{{Router: "cygnus", Routing: "bfs"}, degraded},
		Algorithms: []string{"rpbla"},
		Budgets:    []int{5000},
	}, phonocmap.SweepRunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nhealthy vs degraded (remapped around the cut):")
	for _, r := range sweepRes.Cells {
		if r.Error != "" {
			log.Fatal(r.Error)
		}
		label := "healthy "
		if len(r.Cell.Arch.FailedLinks) > 0 {
			label = fmt.Sprintf("cut %v", r.Cell.Arch.FailedLinks[0])
		}
		fmt.Printf("  %s: loss %6.2f dB   SNR %6.2f dB\n",
			label, r.Score.WorstLossDB, r.Score.WorstSNRDB)
	}
}
