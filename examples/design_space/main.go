// Design space: the multi-objective and robustness view of mapping
// exploration, beyond the paper's single-objective runs. The example
// archives the Pareto front of (worst-case loss, worst-case SNR) during
// an R-PBLA run on VOPD, picks the knee point, allocates WDM wavelengths
// for it, stresses it with 20% photonic parameter variation, and
// finally checks every single-link failure with BFS rerouting on an
// all-turn Cygnus network.
//
// Run with:
//
//	go run ./examples/design_space
package main

import (
	"fmt"
	"log"

	"phonocmap"
)

func main() {
	app := phonocmap.MustApp("VOPD")
	net, err := phonocmap.NewMeshNetwork(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	prob, err := phonocmap.NewProblem(app, net, phonocmap.MaximizeSNR)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Pareto front over 10 000 evaluations.
	front, err := phonocmap.ParetoExplore(prob, "rpbla", 10000, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pareto front of %s on %s (%d points):\n", app.Name(), net, len(front))
	for _, p := range front {
		fmt.Printf("  loss %6.2f dB   SNR %6.2f dB\n", p.WorstLossDB, p.WorstSNRDB)
	}

	// Pick the knee: the point with the best sum of normalized ranks.
	knee := front[len(front)/2]
	fmt.Printf("\nknee point: loss %.2f dB, SNR %.2f dB\n", knee.WorstLossDB, knee.WorstSNRDB)

	// 2. WDM allocation for the knee mapping.
	alloc, err := phonocmap.AllocateWavelengths(net, app, knee.Mapping)
	if err != nil {
		log.Fatal(err)
	}
	_, wdmSNR, err := phonocmap.EvaluateWDM(net, app, knee.Mapping, alloc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WDM: %d wavelength(s) remove %d conflicting pairs; worst SNR %.2f dB\n",
		alloc.Channels, alloc.Conflicts, wdmSNR)

	// 3. Robustness to 20% coefficient variation (process + thermal).
	vr, err := phonocmap.AssessVariation(net, app, knee.Mapping, 40, 0.2, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nparameter variation (40 samples, ±20%%):\n")
	fmt.Printf("  loss: mean %6.2f dB, sd %4.2f, worst draw %6.2f dB\n",
		vr.Loss.Mean(), vr.Loss.StdDev(), vr.WorstLossDB)
	fmt.Printf("  SNR : mean %6.2f dB, sd %4.2f, worst draw %6.2f dB\n",
		vr.SNR.Mean(), vr.SNR.StdDev(), vr.WorstSNRDB)

	// 4. Single-link failures with BFS detours (needs an all-turn
	// router: rebuild the design point on Cygnus).
	cygnus, err := phonocmap.NewNetwork(phonocmap.ArchSpec{
		Topology: "mesh", Width: 4, Height: 4, Router: "cygnus", Routing: "bfs",
	})
	if err != nil {
		log.Fatal(err)
	}
	failures, err := phonocmap.AssessLinkFailures(cygnus, app, knee.Mapping)
	if err != nil {
		log.Fatal(err)
	}
	worst := phonocmap.FailureResult{WorstLossDB: 0}
	unreachable := 0
	for _, f := range failures {
		if f.Unreachable {
			unreachable++
			continue
		}
		if f.WorstLossDB < worst.WorstLossDB {
			worst = f
		}
	}
	fmt.Printf("\nlink failures (%d single-link cuts, BFS rerouting on cygnus):\n", len(failures))
	fmt.Printf("  unreachable scenarios: %d\n", unreachable)
	fmt.Printf("  worst cut %v: loss %.2f dB, SNR %.2f dB\n",
		worst.Failed, worst.WorstLossDB, worst.WorstSNRDB)
}
