// Full report: one declarative scenario drives the whole PhoNoCMap
// pipeline — optimization plus every post-optimization analysis. The
// spec below is exactly the JSON body you could POST to a
// phonocmap-serve instance at /v1/jobs; running it locally through
// phonocmap.RunScenario produces the bit-identical result and report.
//
// Run with:
//
//	go run ./examples/full_report
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"

	"phonocmap"
)

func main() {
	spec := phonocmap.Scenario{
		App: phonocmap.AppSpec{Builtin: "VOPD"},
		// Cygnus with BFS routing: an all-turn router, so the link-failure
		// study can reroute around cuts.
		Arch:      phonocmap.ArchSpec{Router: "cygnus", Routing: "bfs"},
		Objective: "snr",
		Algorithm: "rpbla",
		Budget:    5000,
		Seed:      1,
		Analyses: &phonocmap.AnalysesSpec{
			WDM:          &phonocmap.WDMSpec{},
			Power:        &phonocmap.PowerSpec{SNRMarginDB: 3},
			Robustness:   &phonocmap.RobustnessSpec{Samples: 30, Tolerance: 0.2},
			LinkFailures: &phonocmap.LinkFailuresSpec{},
			Sim:          &phonocmap.SimSpec{LoadScales: []float64{0.5, 1, 2, 4}},
		},
	}

	res, err := phonocmap.RunScenario(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized %s: worst loss %.2f dB, worst SNR %.2f dB (%d evals)\n\n",
		res.Run.Algorithm, res.Run.Score.WorstLossDB, res.Run.Score.WorstSNRDB, res.Run.Evals)

	rep := res.Report
	fmt.Printf("WDM          : %d wavelength(s) resolve %d conflicting pairs; channeled worst SNR %.2f dB\n",
		rep.WDM.Channels, rep.WDM.Conflicts, rep.WDM.WorstSNRDB)
	fmt.Printf("power        : feasible=%v channel %.2f dBm, headroom %.2f dB, BER %.2e\n",
		rep.Power.Feasible, rep.Power.ChannelPowerDBm, rep.Power.HeadroomDB, rep.Power.EstimatedBER)
	fmt.Printf("robustness   : ±20%% coefficients -> SNR %.2f±%.2f dB (worst draw %.2f dB)\n",
		rep.Robustness.MeanSNRDB, rep.Robustness.StdSNRDB, rep.Robustness.WorstSNRDB)
	fmt.Printf("link failures: %d cuts, %d unreachable; worst cut %v -> SNR %.2f dB\n",
		rep.LinkFailures.Cuts, rep.LinkFailures.Unreachable, rep.LinkFailures.WorstLink, rep.LinkFailures.WorstSNRDB)
	fmt.Printf("traffic sim  : saturation at %.1fx nominal load\n", rep.Sim.SaturationLoad)
	for _, p := range rep.Sim.Points {
		fmt.Printf("  load %4.1fx: delivered %5.1f%%, mean latency %7.1f ns, max link util %.2f\n",
			p.LoadScale, p.DeliveredFraction*100, p.MeanLatencyNs, p.MaxLinkUtilization)
	}

	// The full result is plain JSON — the same payload a service client
	// receives from GET /v1/jobs/{id}/result.
	b, err := json.MarshalIndent(res.Report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull report as JSON:\n%s\n", b)
}
