// Quickstart: map the VOPD video decoder onto a 4x4 photonic mesh and
// optimize the worst-case crosstalk SNR with the paper's R-PBLA
// algorithm.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"phonocmap"
)

func main() {
	// The eight benchmark applications of the paper ship with the
	// library. VOPD is the 16-task video object plane decoder.
	app := phonocmap.MustApp("VOPD")
	fmt.Println("application:", app)

	// The paper's reference architecture: a mesh of Crux optical
	// routers with XY dimension-order routing and the Table I physical
	// coefficients.
	net, err := phonocmap.NewMeshNetwork(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("network:    ", net)

	// Bind them into a mapping problem that maximizes the worst-case
	// signal-to-noise ratio (Eq. 4 of the paper).
	prob, err := phonocmap.NewProblem(app, net, phonocmap.MaximizeSNR)
	if err != nil {
		log.Fatal(err)
	}

	// Optimize with the randomized priority-based list algorithm under
	// a 20 000-evaluation budget.
	res, err := phonocmap.Optimize(prob, "rpbla", 20000, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nbest mapping after %d evaluations (%v):\n", res.Evals, res.Duration.Round(1000000))
	fmt.Printf("  worst-case SNR : %7.2f dB\n", res.Score.WorstSNRDB)
	fmt.Printf("  worst-case loss: %7.2f dB\n", res.Score.WorstLossDB)
	fmt.Println("\ntask placement (task -> tile):")
	for task, tile := range res.Mapping {
		fmt.Printf("  %2d %-14s -> %2d\n", task, app.TaskName(phonocmap.TaskID(task)), tile)
	}
}
