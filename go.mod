module phonocmap

go 1.24
