// Package unitchecker makes a phonocmap-lint binary speak the `go vet
// -vettool` protocol using only the standard library. It is a minimal
// re-implementation of golang.org/x/tools/go/analysis/unitchecker
// (unavailable in this build environment), driven by the observed
// behavior of cmd/go:
//
//  1. `tool -flags` must print a JSON array describing the tool's
//     flags (ours: none).
//  2. `tool -V=full` must print a "name version ... buildID=<hash>"
//     line; cmd/go folds it into the vet action's cache key, so the
//     hash must change when the tool changes — we hash the executable.
//  3. `tool <dir>/vet.cfg` runs the analysis unit described by the JSON
//     config: parse GoFiles, type-check against the export data in
//     PackageFile, run the analyzers, print diagnostics to stderr as
//     "pos: message", write the (empty) facts file to VetxOutput, and
//     exit 2 when something was found.
//
// cmd/go also invokes the tool once per *dependency* package with
// VetxOnly=true to collect cross-package facts. The phonocmap analyzers
// are strictly package-local, so those invocations short-circuit to
// writing an empty facts file — which is what keeps `go vet
// -vettool=phonocmap-lint ./...` cheap even though the module's
// dependency closure includes a large slice of the standard library.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"go/version"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"

	"phonocmap/lint/analysis"
)

// Config is the JSON schema of the vet.cfg file cmd/go hands the tool,
// one per analysis unit (package). Field names and meaning follow
// cmd/go/internal/work's vetConfig.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point of a vettool binary: it dispatches on the
// protocol argument and never returns.
func Main(analyzers ...*analysis.Analyzer) {
	for _, arg := range os.Args[1:] {
		switch {
		case arg == "-flags" || arg == "--flags":
			// No tool-specific flags; cmd/go requires a valid JSON array.
			fmt.Println("[]")
			os.Exit(0)
		case strings.HasPrefix(arg, "-V=") || strings.HasPrefix(arg, "--V="):
			printVersion()
			os.Exit(0)
		case strings.HasSuffix(arg, ".cfg"):
			os.Exit(run(arg, analyzers))
		}
	}
	fmt.Fprintf(os.Stderr, "%s: this is a vet tool; run it via go vet -vettool=%s ./...\n",
		progname(), os.Args[0])
	os.Exit(1)
}

func progname() string { return os.Args[0] }

// printVersion emits the version line cmd/go hashes into the vet cache
// key. Hashing the executable itself means rebuilding the tool (e.g.
// after editing an analyzer) invalidates prior vet results, exactly
// like the x/tools unitchecker.
func printVersion() {
	h := sha256.New()
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname(), string(h.Sum(nil)))
}

// run executes one analysis unit and returns the process exit code:
// 0 clean, 1 operational failure, 2 diagnostics reported.
func run(cfgFile string, analyzers []*analysis.Analyzer) int {
	cfg, err := readConfig(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname(), err)
		return 1
	}

	// Facts are written even when empty: cmd/go treats a missing
	// VetxOutput as a tool failure.
	writeVetx := func() error {
		if cfg.VetxOutput == "" {
			return nil
		}
		return os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
	}

	// Dependency-only invocation: no local analyzers produce facts, so
	// there is nothing to compute.
	if cfg.VetxOnly {
		if err := writeVetx(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname(), err)
			return 1
		}
		return 0
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname(), err)
			return 1
		}
		files = append(files, f)
	}

	pkg, info, err := typecheck(fset, files, cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			_ = writeVetx()
			return 0
		}
		fmt.Fprintf(os.Stderr, "%s: typecheck %s: %v\n", progname(), cfg.ImportPath, err)
		return 1
	}

	var diags []analysis.Diagnostic
	seen := make(map[string]bool)
	for _, a := range analyzers {
		a := a
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				key := fmt.Sprintf("%s|%v|%s", a.Name, d.Pos, d.Message)
				if !seen[key] {
					seen[key] = true
					diags = append(diags, d)
				}
			},
		}
		if _, err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "%s: analyzer %s: %v\n", progname(), a.Name, err)
			return 1
		}
	}

	if err := writeVetx(); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname(), err)
		return 1
	}

	if len(diags) == 0 {
		return 0
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	return 2
}

func readConfig(name string) (*Config, error) {
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode JSON config file %s: %v", name, err)
	}
	if len(cfg.GoFiles) == 0 && !cfg.VetxOnly {
		return nil, fmt.Errorf("no Go files in %s", name)
	}
	return cfg, nil
}

// typecheck type-checks the unit's files against the export data of its
// dependencies, exactly as the compiler saw them.
func typecheck(fset *token.FileSet, files []*ast.File, cfg *Config) (*types.Package, *types.Info, error) {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	base := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	goarch := os.Getenv("GOARCH")
	if goarch == "" {
		goarch = runtime.GOARCH
	}
	tc := &types.Config{
		Importer:    &mappedImporter{m: cfg.ImportMap, base: base},
		Sizes:       types.SizesFor(compiler, goarch),
		GoVersion:   version.Lang(cfg.GoVersion),
		FakeImportC: true,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}

// mappedImporter applies the config's source-import-path -> canonical
// package path mapping (vendoring, test variants) before delegating to
// the export-data importer.
type mappedImporter struct {
	m    map[string]string
	base types.Importer
}

func (mi *mappedImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := mi.m[path]; ok {
		path = mapped
	}
	return mi.base.Import(path)
}
