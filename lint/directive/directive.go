// Package directive parses the //phonocmap:* justification comments
// that suppress or enable checks in the phonocmap-lint suite:
//
//	//phonocmap:ordered <why iteration order cannot leak>
//	//phonocmap:wallclock <why this wall-clock read is contractually allowed>
//	//phonocmap:noalloc            (on a func: opt in to the allocation check)
//	//phonocmap:envelope           (on a func: this IS the error-envelope writer)
//	//phonocmap:release-ok <why the pooled value provably cannot leak>
//
// A directive attaches to the statement on its own line (trailing
// comment) or to the line directly below it (preceding comment line),
// mirroring how //go: directives bind. Directives that gate whole
// functions (noalloc, envelope) live in the function's doc comment.
package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

// Prefix is the comment marker shared by all phonocmap directives.
const Prefix = "phonocmap:"

// Directive is one parsed //phonocmap:name reason comment.
type Directive struct {
	Name   string // "ordered", "wallclock", ...
	Reason string // justification text after the name; may be empty
	Pos    token.Pos
}

// Map indexes a file's directives by the source line they annotate.
type Map struct {
	fset    *token.FileSet
	byLine  map[int][]Directive
	reasons []Directive
}

// Parse collects every directive in the file.
func Parse(fset *token.FileSet, file *ast.File) *Map {
	m := &Map{fset: fset, byLine: make(map[int][]Directive)}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			d, ok := parseComment(c)
			if !ok {
				continue
			}
			line := fset.Position(c.Pos()).Line
			m.byLine[line] = append(m.byLine[line], d)
			m.reasons = append(m.reasons, d)
		}
	}
	return m
}

func parseComment(c *ast.Comment) (Directive, bool) {
	text := c.Text
	if !strings.HasPrefix(text, "//"+Prefix) {
		return Directive{}, false
	}
	rest := strings.TrimPrefix(text, "//"+Prefix)
	name, reason, _ := strings.Cut(rest, " ")
	return Directive{Name: name, Reason: strings.TrimSpace(reason), Pos: c.Pos()}, true
}

// At reports whether a directive with the given name annotates the node:
// on the node's starting line or on the line directly above it.
func (m *Map) At(name string, node ast.Node) bool {
	line := m.fset.Position(node.Pos()).Line
	for _, l := range [2]int{line, line - 1} {
		for _, d := range m.byLine[l] {
			if d.Name == name {
				return true
			}
		}
	}
	return false
}

// OnFunc reports whether the function's doc comment carries the named
// directive.
func OnFunc(fn *ast.FuncDecl, name string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if d, ok := parseComment(c); ok && d.Name == name {
			return true
		}
	}
	return false
}
