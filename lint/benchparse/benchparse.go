// Package benchparse parses `go test -bench -benchmem` output into
// typed results. It replaces the awk '$(NF-1)' one-liners previously
// used by the CI allocation gate, which silently matched nothing (and
// therefore passed) whenever the benchmark name, the column layout, or
// a concurrent log line shifted. The parser keys on the unit tokens
// (ns/op, B/op, allocs/op) instead of column positions, so interleaved
// output and extra metrics cannot change what a number means.
package benchparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Result is one benchmark result line.
type Result struct {
	// Name is the full benchmark name including sub-benchmark path and
	// the -cpu suffix, e.g. "BenchmarkEvaluateFullVsIncremental/incremental-4x4-8".
	Name string
	// Iterations is the measured iteration count (b.N).
	Iterations int64
	// NsPerOp is the ns/op value; NaN-free, -1 when absent.
	NsPerOp float64
	// BytesPerOp is the B/op value; -1 when the line carried none
	// (benchmark ran without -benchmem).
	BytesPerOp int64
	// AllocsPerOp is the allocs/op value; -1 when absent.
	AllocsPerOp int64
}

// HasAllocs reports whether the line carried allocation metrics.
func (r Result) HasAllocs() bool { return r.AllocsPerOp >= 0 }

// Parse reads benchmark results from r, ignoring every non-benchmark
// line (headers, PASS/ok trailers, log output). It never guesses from
// column positions: a value is only taken when its unit token follows.
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		res, ok, err := ParseLine(sc.Text())
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, res)
		}
	}
	return out, sc.Err()
}

// ParseLine parses a single line; ok is false for non-benchmark lines.
func ParseLine(line string) (Result, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false, nil
	}
	// The second field must be the iteration count, or this is something
	// else (e.g. a log line that happens to start with "Benchmark...").
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false, nil
	}
	res := Result{Name: fields[0], Iterations: iters, NsPerOp: -1, BytesPerOp: -1, AllocsPerOp: -1}
	// Remaining fields come in value-unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		value, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			v, err := strconv.ParseFloat(value, 64)
			if err != nil {
				return Result{}, false, fmt.Errorf("benchparse: bad ns/op value %q in %q", value, line)
			}
			res.NsPerOp = v
		case "B/op":
			v, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				return Result{}, false, fmt.Errorf("benchparse: bad B/op value %q in %q", value, line)
			}
			res.BytesPerOp = v
		case "allocs/op":
			v, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				return Result{}, false, fmt.Errorf("benchparse: bad allocs/op value %q in %q", value, line)
			}
			res.AllocsPerOp = v
		}
	}
	return res, true, nil
}

// Match returns the results whose Name contains substr.
func Match(results []Result, substr string) []Result {
	var out []Result
	for _, r := range results {
		if strings.Contains(r.Name, substr) {
			out = append(out, r)
		}
	}
	return out
}
