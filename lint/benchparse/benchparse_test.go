package benchparse

import (
	"strings"
	"testing"
)

// realOutput is a verbatim-shaped `go test -bench -benchmem` transcript:
// headers, interleaved log output, sub-benchmarks with -cpu suffixes, a
// line without -benchmem metrics, and the PASS/ok trailer.
const realOutput = `goos: linux
goarch: amd64
pkg: phonocmap/internal/core
cpu: Fake CPU @ 2.00GHz
BenchmarkEvaluateFullVsIncremental/full-4x4-8         	  102030	     11780 ns/op	    2048 B/op	       3 allocs/op
BenchmarkEvaluateFullVsIncremental/incremental-4x4-8  	 2508582	       478.1 ns/op	       0 B/op	       0 allocs/op
some stray log line from the benchmark body
BenchmarkGASearchAllocs-8                             	     100	   1204211 ns/op	   48123 B/op	     520 allocs/op
BenchmarkNoMem-8                                      	 5000000	       240.0 ns/op
PASS
ok  	phonocmap/internal/core	4.512s
`

func TestParseRealOutput(t *testing.T) {
	results, err := Parse(strings.NewReader(realOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4: %+v", len(results), results)
	}

	inc := Match(results, "incremental-4x4")
	if len(inc) != 1 {
		t.Fatalf("Match(incremental-4x4) = %+v, want 1 result", inc)
	}
	if inc[0].AllocsPerOp != 0 || inc[0].BytesPerOp != 0 {
		t.Errorf("incremental: allocs=%d bytes=%d, want 0/0", inc[0].AllocsPerOp, inc[0].BytesPerOp)
	}
	if inc[0].NsPerOp != 478.1 {
		t.Errorf("incremental: ns/op = %v, want 478.1", inc[0].NsPerOp)
	}
	if inc[0].Iterations != 2508582 {
		t.Errorf("incremental: iterations = %d, want 2508582", inc[0].Iterations)
	}

	ga := Match(results, "GASearchAllocs")
	if len(ga) != 1 || ga[0].AllocsPerOp != 520 {
		t.Errorf("Match(GASearchAllocs) = %+v, want one result with 520 allocs/op", ga)
	}

	nomem := Match(results, "BenchmarkNoMem")
	if len(nomem) != 1 {
		t.Fatalf("Match(BenchmarkNoMem) = %+v, want 1 result", nomem)
	}
	if nomem[0].HasAllocs() {
		t.Errorf("BenchmarkNoMem parsed without -benchmem should report HasAllocs()==false, got %+v", nomem[0])
	}
	if nomem[0].NsPerOp != 240.0 {
		t.Errorf("BenchmarkNoMem: ns/op = %v, want 240.0", nomem[0].NsPerOp)
	}
}

func TestParseLineRejectsNonBenchmarkLines(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"ok  	phonocmap/internal/core	4.512s",
		"goos: linux",
		// Starts with "Benchmark" but field 2 is not an iteration count:
		// a log line, not a result.
		"BenchmarkFoo failed to converge after 3 restarts",
		"BenchmarkBare",
	} {
		if _, ok, err := ParseLine(line); ok || err != nil {
			t.Errorf("ParseLine(%q) = ok=%v err=%v, want skipped", line, ok, err)
		}
	}
}

func TestParseLineColumnDriftImmunity(t *testing.T) {
	// Extra metric pairs (e.g. custom b.ReportMetric output) must not
	// shift what allocs/op means — the awk '$(NF-1)' approach this
	// package replaces would misread this line.
	res, ok, err := ParseLine("BenchmarkX-8  10  100 ns/op  7 evals/op  16 B/op  2 allocs/op")
	if err != nil || !ok {
		t.Fatalf("ParseLine: ok=%v err=%v", ok, err)
	}
	if res.AllocsPerOp != 2 || res.BytesPerOp != 16 || res.NsPerOp != 100 {
		t.Errorf("got %+v, want allocs=2 bytes=16 ns=100", res)
	}
}

func TestParseLineBadValue(t *testing.T) {
	if _, _, err := ParseLine("BenchmarkX-8  10  oops ns/op"); err == nil {
		t.Error("malformed ns/op value should be an error, not a silent skip")
	}
}

func TestMatchEmpty(t *testing.T) {
	results, err := Parse(strings.NewReader(realOutput))
	if err != nil {
		t.Fatal(err)
	}
	if got := Match(results, "no-such-benchmark"); len(got) != 0 {
		t.Errorf("Match on absent name = %+v, want empty", got)
	}
}
