package analysistest

import (
	"bytes"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
)

// stdImporter resolves standard-library imports through the installed
// toolchain: `go list -export` compiles (or reuses from the build
// cache) the package and reports its export-data file, which the gc
// importer then reads. This works fully offline — fixtures only import
// the standard library and other fixtures.
type stdImporter struct {
	mu      sync.Mutex
	exports map[string]string // import path -> export data file
	gc      types.Importer
}

func newStdImporter(fset *token.FileSet) *stdImporter {
	si := &stdImporter{exports: make(map[string]string)}
	si.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, err := si.exportFile(path)
		if err != nil {
			return nil, err
		}
		return os.Open(file)
	})
	return si
}

func (si *stdImporter) Import(path string) (*types.Package, error) {
	return si.gc.Import(path)
}

// exportFile locates the export data of a toolchain package, memoized.
func (si *stdImporter) exportFile(path string) (string, error) {
	si.mu.Lock()
	defer si.mu.Unlock()
	if f, ok := si.exports[path]; ok {
		return f, nil
	}
	cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path)
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("go list -export %s: %v\n%s", path, err, errb.String())
	}
	file := strings.TrimSpace(out.String())
	if file == "" {
		return "", fmt.Errorf("go list -export %s: no export data", path)
	}
	si.exports[path] = file
	return file, nil
}
