// Package analysistest runs an analyzer over a GOPATH-style testdata
// tree and checks its diagnostics against // want annotations, in the
// style of golang.org/x/tools/go/analysis/analysistest (which cannot be
// vendored in this build environment).
//
// Fixture layout: <testdata>/src/<importpath>/*.go. A fixture package
// may import other fixture packages (resolved from the same tree, so
// tests can mimic phonocmap's own layout, e.g. a fake
// phonocmap/internal/obs) and any standard library package (resolved
// via the toolchain's export data).
//
// Expectations are trailing comments:
//
//	bad()            // want "regexp matched against the message"
//	worse()          // want "first" "second"
//
// Every diagnostic must match a want on its line and every want must be
// matched, or the test fails.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"phonocmap/lint/analysis"
)

// Run loads each fixture package, applies the analyzer, and reports
// mismatches through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	for _, path := range pkgpaths {
		path := path
		t.Run(path, func(t *testing.T) {
			t.Helper()
			runOne(t, testdata, a, path)
		})
	}
}

func runOne(t *testing.T, testdata string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	ld := newLoader(testdata)
	pkg, err := ld.load(pkgpath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgpath, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      ld.fset,
		Files:     pkg.files,
		Pkg:       pkg.types,
		TypesInfo: pkg.info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	wants := collectWants(t, ld.fset, pkg.files)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		posn := ld.fset.Position(d.Pos)
		key := lineKey{posn.Filename, posn.Line}
		if !wants.match(key, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", posn, d.Message)
		}
	}
	wants.reportUnmatched(t)
}

type lineKey struct {
	file string
	line int
}

type want struct {
	key     lineKey
	re      *regexp.Regexp
	matched bool
}

type wantSet struct{ wants []*want }

// wantRE extracts the quoted expectations from a // want comment.
var wantRE = regexp.MustCompile(`(?:"((?:[^"\\]|\\.)*)"|` + "`([^`]*)`" + `)`)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) *wantSet {
	t.Helper()
	ws := &wantSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				posn := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[len("want "):], -1) {
					expr := m[1]
					if m[2] != "" {
						expr = m[2]
					}
					expr = strings.ReplaceAll(expr, `\"`, `"`)
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", posn, expr, err)
					}
					ws.wants = append(ws.wants, &want{
						key: lineKey{posn.Filename, posn.Line},
						re:  re,
					})
				}
			}
		}
	}
	return ws
}

func (ws *wantSet) match(key lineKey, message string) bool {
	for _, w := range ws.wants {
		if !w.matched && w.key == key && w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

func (ws *wantSet) reportUnmatched(t *testing.T) {
	t.Helper()
	for _, w := range ws.wants {
		if !w.matched {
			t.Errorf("%s:%d: want %q: no matching diagnostic", w.key.file, w.key.line, w.re)
		}
	}
}

// --- fixture loading ---

type loadedPkg struct {
	types *types.Package
	files []*ast.File
	info  *types.Info
}

type loader struct {
	testdata string
	fset     *token.FileSet
	loaded   map[string]*loadedPkg
	imp      *fixtureImporter
}

func newLoader(testdata string) *loader {
	ld := &loader{
		testdata: testdata,
		fset:     token.NewFileSet(),
		loaded:   make(map[string]*loadedPkg),
	}
	ld.imp = &fixtureImporter{ld: ld, std: newStdImporter(ld.fset)}
	return ld
}

// load parses and type-checks one fixture package (memoized).
func (ld *loader) load(pkgpath string) (*loadedPkg, error) {
	if p, ok := ld.loaded[pkgpath]; ok {
		return p, nil
	}
	dir := filepath.Join(ld.testdata, "src", filepath.FromSlash(pkgpath))
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tc := &types.Config{Importer: ld.imp}
	tpkg, err := tc.Check(pkgpath, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", pkgpath, err)
	}
	p := &loadedPkg{types: tpkg, files: files, info: info}
	ld.loaded[pkgpath] = p
	return p, nil
}

// fixtureImporter resolves imports from the fixture tree first, then
// from the standard library.
type fixtureImporter struct {
	ld  *loader
	std types.Importer
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	dir := filepath.Join(fi.ld.testdata, "src", filepath.FromSlash(path))
	if names, _ := filepath.Glob(filepath.Join(dir, "*.go")); len(names) > 0 {
		p, err := fi.ld.load(path)
		if err != nil {
			return nil, err
		}
		return p.types, nil
	}
	return fi.std.Import(path)
}
