package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
BenchmarkEvaluateFullVsIncremental/incremental-4x4-8  	 2508582	       478.1 ns/op	       0 B/op	       0 allocs/op
BenchmarkGASearchAllocs-8                             	     100	   1204211 ns/op	   48123 B/op	     520 allocs/op
PASS
`

var buildBin string

// TestMain builds the command once (go run would collapse the
// program's exit code, which is exactly what's under test).
func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "benchcheck")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	buildBin = filepath.Join(dir, "benchcheck")
	if out, err := exec.Command("go", "build", "-o", buildBin, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building benchcheck: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// runBenchcheck runs the built binary with the given stdin and returns
// its combined output and exit code.
func runBenchcheck(t *testing.T, stdin string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(buildBin, args...)
	cmd.Stdin = strings.NewReader(stdin)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running benchcheck: %v\n%s", err, out)
	}
	return string(out), ee.ExitCode()
}

func TestWithinBudget(t *testing.T) {
	out, code := runBenchcheck(t, benchOutput, "-bench", "incremental-4x4", "-max-allocs", "0")
	if code != 0 {
		t.Fatalf("exit %d, want 0:\n%s", code, out)
	}
	if !strings.Contains(out, "0 allocs/op <= 0") {
		t.Errorf("missing ok line:\n%s", out)
	}
}

func TestOverBudget(t *testing.T) {
	out, code := runBenchcheck(t, benchOutput, "-bench", "GASearchAllocs", "-max-allocs", "500")
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "allocates 520 objects/op, budget is 500") {
		t.Errorf("missing over-budget line:\n%s", out)
	}
}

func TestMissingBenchmarkFails(t *testing.T) {
	// The anti-vacuity property the awk pipeline lacked: a renamed or
	// vanished benchmark must fail the gate, not silently pass it.
	out, code := runBenchcheck(t, benchOutput, "-bench", "renamed-benchmark", "-max-allocs", "0")
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "the gate would be vacuous") {
		t.Errorf("missing vacuity diagnostic:\n%s", out)
	}
}

func TestMissingBenchFlagIsUsageError(t *testing.T) {
	_, code := runBenchcheck(t, benchOutput)
	if code != 2 {
		t.Fatalf("exit %d, want 2 for missing -bench", code)
	}
}

func TestMissingAllocsMetricFails(t *testing.T) {
	out, code := runBenchcheck(t,
		"BenchmarkNoMem-8  5000000  240.0 ns/op\nPASS\n",
		"-bench", "NoMem", "-max-allocs", "0")
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "carries no allocs/op") {
		t.Errorf("missing no-benchmem diagnostic:\n%s", out)
	}
}
