// benchcheck gates CI on -benchmem output: it fails (exit 1) when a
// named benchmark's allocs/op exceeds a budget, and — unlike the awk
// pipelines it replaces — also fails when the benchmark is missing from
// the input, so a renamed benchmark can no longer silently disable the
// gate.
//
//	go test -run '^$' -bench X -benchmem ./... | tee out.txt
//	benchcheck -bench incremental-4x4 -max-allocs 0 out.txt
//
// With no file argument it reads stdin.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"phonocmap/lint/benchparse"
)

func main() {
	bench := flag.String("bench", "", "substring of the benchmark name to gate on (required)")
	maxAllocs := flag.Int64("max-allocs", 0, "maximum allowed allocs/op")
	flag.Parse()
	if *bench == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: -bench is required")
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}

	results, err := benchparse.Parse(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	matched := benchparse.Match(results, *bench)
	if len(matched) == 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: no benchmark matching %q in input (%d results total) — the gate would be vacuous\n",
			*bench, len(results))
		os.Exit(1)
	}
	failed := false
	for _, r := range matched {
		if !r.HasAllocs() {
			fmt.Fprintf(os.Stderr, "benchcheck: %s carries no allocs/op (run with -benchmem)\n", r.Name)
			failed = true
			continue
		}
		if r.AllocsPerOp > *maxAllocs {
			fmt.Fprintf(os.Stderr, "benchcheck: %s allocates %d objects/op, budget is %d\n",
				r.Name, r.AllocsPerOp, *maxAllocs)
			failed = true
			continue
		}
		fmt.Printf("benchcheck: %s ok: %d allocs/op <= %d\n", r.Name, r.AllocsPerOp, *maxAllocs)
	}
	if failed {
		os.Exit(1)
	}
}
