// phonocmap-lint is the project's static-analysis suite: five analyzers
// that enforce the determinism, pooled-session, metric-naming,
// error-envelope and hot-path-allocation contracts at `go vet` time.
//
// Run it through the vet driver so results are cached per package:
//
//	go build -o /tmp/phonocmap-lint phonocmap/lint/cmd/phonocmap-lint
//	go vet -vettool=/tmp/phonocmap-lint ./...
package main

import (
	"phonocmap/lint/analyzers/determinism"
	"phonocmap/lint/analyzers/errenvelope"
	"phonocmap/lint/analyzers/metricname"
	"phonocmap/lint/analyzers/noalloc"
	"phonocmap/lint/analyzers/poolrelease"
	"phonocmap/lint/unitchecker"
)

func main() {
	unitchecker.Main(
		determinism.Analyzer,
		poolrelease.Analyzer,
		metricname.Analyzer,
		errenvelope.Analyzer,
		noalloc.Analyzer,
	)
}
