// Package integration builds the phonocmap-lint multichecker and runs
// it the way CI does — `go vet -vettool` — over a deliberately broken
// module, asserting the violations actually fail the build.
package integration

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "phonocmap-lint")
	cmd := exec.Command("go", "build", "-o", bin, "phonocmap/lint/cmd/phonocmap-lint")
	cmd.Dir = ".." // the lint module root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building phonocmap-lint: %v\n%s", err, out)
	}
	return bin
}

func TestLintFailsOnBrokenFixture(t *testing.T) {
	bin := buildLint(t)
	fixture, err := filepath.Abs(filepath.Join("testdata", "brokenfix"))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = fixture
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool passed on the broken fixture; output:\n%s", out)
	}
	for _, want := range []string{
		"inside a map range", // determinism: unsorted map-range append
		"never releases",     // poolrelease: leaked session
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("vet output missing %q:\n%s", want, out)
		}
	}
}

func TestLintCleanOnOwnModule(t *testing.T) {
	// The analyzers must hold no false positives against real idiomatic
	// code; the lint module itself is a convenient guinea pig (the main
	// module's cleanliness is CI's lint step).
	bin := buildLint(t)
	lintRoot, err := filepath.Abs("..")
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./analysis/...", "./analyzers/...", "./benchparse/...")
	cmd.Dir = lintRoot
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool failed on the lint module itself: %v\n%s", err, out)
	}
}
