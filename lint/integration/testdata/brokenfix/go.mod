module brokenfix

go 1.24
