// Package core is the broken fixture's stand-in for phonocmap's core:
// it supplies the pooled-session surface the consumer leaks.
package core

type SwapSession struct{}

func (s *SwapSession) Release() {}

type Problem struct{}

func (p *Problem) NewSwapSession(m []int) (*SwapSession, error) { return &SwapSession{}, nil }
