// Package search deliberately violates two phonocmap-lint contracts:
// it leaks map iteration order into a slice and never releases a
// pooled session. The integration test asserts the multichecker fails
// this module.
package search

import "brokenfix/internal/core"

// Keys leaks map iteration order into the returned slice.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Leak acquires a pooled session and never releases it.
func Leak(p *core.Problem) error {
	ss, err := p.NewSwapSession(nil)
	if err != nil {
		return err
	}
	_ = ss
	return nil
}
