module phonocmap/lint

go 1.24
