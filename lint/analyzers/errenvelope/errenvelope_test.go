package errenvelope

import (
	"testing"

	"phonocmap/lint/analysistest"
)

func TestErrEnvelope(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer,
		"phonocmap/internal/service", // service package: contract active
		"phonocmap/internal/webui",   // non-service package: no diagnostics
	)
}
