// Package errenvelope enforces the service's structured-error contract:
// every non-2xx response under internal/service must flow through the
// envelope writer ({"error":{code,message,details}}), never through
// http.Error or a bare WriteHeader+body pair. The client SDK decodes
// exactly one failure shape; one handler that writes plain text breaks
// every typed caller.
package errenvelope

import (
	"go/ast"
	"go/constant"
	"go/types"

	"phonocmap/lint/analysis"
	"phonocmap/lint/directive"
)

// Analyzer is the error-envelope contract check.
var Analyzer = &analysis.Analyzer{
	Name: "phonoerrenvelope",
	Doc: `require internal/service handlers to emit errors through the envelope writer

Within packages whose path ends in internal/service:

  - calls to net/http.Error are always a violation;
  - w.WriteHeader is allowed only with a compile-time status below 400,
    inside a method itself named WriteHeader (middleware forwarding), or
    inside a function whose doc comment carries //phonocmap:envelope —
    the designated envelope/JSON writer implementation.`,
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !pass.PkgPathHasSuffix("internal/service") {
		return nil, nil
	}
	for _, file := range pass.SourceFiles() {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			exemptWriter := directive.OnFunc(fn, "envelope") || fn.Name.Name == "WriteHeader"
			checkFunc(pass, fn, exemptWriter)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, exemptWriter bool) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass, call)
		if callee == nil {
			return true
		}
		if isHTTPError(callee) {
			pass.Reportf(call.Pos(),
				"http.Error writes a plain-text error outside the structured envelope; use the service's envelope writer (writeError) instead")
			return true
		}
		if callee.Name() == "WriteHeader" && !exemptWriter {
			if code, isConst := constIntArg(pass, call, 0); !isConst || code >= 400 {
				pass.Reportf(call.Pos(),
					"bare WriteHeader with an error status bypasses the structured error envelope; emit errors through the envelope writer or mark the designated writer with //phonocmap:envelope")
			}
		}
		return true
	})
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func isHTTPError(fn *types.Func) bool {
	return fn.Name() == "Error" && fn.Pkg() != nil && fn.Pkg().Path() == "net/http" &&
		fn.Type().(*types.Signature).Recv() == nil
}

// constIntArg returns the compile-time integer value of argument i.
func constIntArg(pass *analysis.Pass, call *ast.CallExpr, i int) (int64, bool) {
	if i >= len(call.Args) {
		return 0, false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[i]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, exact := constant.Int64Val(tv.Value)
	return v, exact
}
