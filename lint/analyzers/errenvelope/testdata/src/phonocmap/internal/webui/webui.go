// Package webui is outside internal/service: the envelope contract
// does not apply here.
package webui

import "net/http"

func PlainError(w http.ResponseWriter) {
	http.Error(w, "not a service package", http.StatusTeapot)
}
