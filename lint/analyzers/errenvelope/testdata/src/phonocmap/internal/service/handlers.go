// Package service exercises errenvelope inside a service package.
package service

import "net/http"

func badHandler(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "boom", http.StatusInternalServerError) // want "http.Error writes a plain-text error outside the structured envelope"
}

func bareHeader(w http.ResponseWriter, code int) {
	w.WriteHeader(http.StatusBadRequest) // want "bare WriteHeader with an error status"
	w.WriteHeader(code)                  // want "bare WriteHeader with an error status"
	w.WriteHeader(http.StatusNoContent)  // ok: compile-time success status
}

// writeError is the fixture's designated envelope writer.
//
//phonocmap:envelope
func writeError(w http.ResponseWriter, code int) {
	w.WriteHeader(code) // ok: inside the annotated envelope writer
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

// WriteHeader records and forwards the status (middleware
// instrumentation), which the analyzer allows by method name.
func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}
