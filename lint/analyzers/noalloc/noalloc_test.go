package noalloc

import (
	"testing"

	"phonocmap/lint/analysistest"
)

func TestNoAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "phonocmap/internal/hot")
}
