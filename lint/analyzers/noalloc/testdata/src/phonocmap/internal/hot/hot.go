// Package hot exercises the noalloc analyzer on annotated and
// unannotated functions.
package hot

import "fmt"

type session struct {
	scratch []int
	buf     []byte
}

// Evaluate is the happy-path shape the hot path uses: error paths may
// allocate, scratch slices are reset and reused.
//
//phonocmap:noalloc
func (s *session) Evaluate(xs []int) (int, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("empty input") // ok: cold error path
	}
	s.scratch = s.scratch[:0]
	for _, x := range xs {
		s.scratch = append(s.scratch, x) // ok: amortized scratch reuse
	}
	s.buf = append(s.buf[:0], byte(len(xs))) // ok: append into x[:0]
	return len(s.scratch), nil
}

//phonocmap:noalloc
func grow(xs []int) []int {
	out := make([]int, 0, len(xs)) // want "calls make"
	for _, x := range xs {
		out = append(out, x) // want "append may grow its backing array"
	}
	return out
}

//phonocmap:noalloc
func newT() *session {
	return new(session) // want "calls new"
}

//phonocmap:noalloc
func literals() int {
	xs := []int{1, 2, 3}        // want "builds a slice literal"
	m := map[string]int{"a": 1} // want "builds a map literal"
	return len(xs) + len(m)
}

//phonocmap:noalloc
func boxes(x int) {
	_ = interface{}(x) // want "boxes int into interface"
	fmt.Println(x)     // want "passes int as interface"
}

//phonocmap:noalloc
func strConv(b []byte) string {
	return string(b) // want "which allocates"
}

//phonocmap:noalloc
func capture(x int) func() int {
	return func() int { return x } // want `closure capturing "x"`
}

//phonocmap:noalloc
func spawn() {
	go func() {}() // want "starts a goroutine"
}

// notAnnotated allocates freely: without the directive nothing is
// checked.
func notAnnotated() []int {
	return make([]int, 8)
}
