// Package noalloc statically audits functions annotated
// //phonocmap:noalloc — the hot-path functions whose 0-allocs/op
// contract the CI benchmark gate samples dynamically on two paths. The
// analyzer rejects constructs that allocate on the happy path: make /
// new, slice-or-map composite literals, &T{} literals, appends that are
// not provably amortized scratch reuse, capturing closures, string and
// rune conversions, and implicit interface boxing.
//
// Error paths are exempt: a block whose final statement returns a
// non-nil error is "cold" — the benchmark contract covers runs that
// complete without error, and error construction (fmt.Errorf) is
// allowed to allocate there.
package noalloc

import (
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"phonocmap/lint/analysis"
	"phonocmap/lint/directive"
)

// Analyzer is the hot-path allocation check.
var Analyzer = &analysis.Analyzer{
	Name: "phononoalloc",
	Doc: `reject allocating constructs in functions annotated //phonocmap:noalloc

The check is local and conservative: it complements (not replaces) the
-benchmem CI gate by covering every annotated function on every change,
not just the two benchmarked paths. Appends are allowed only in the
amortized scratch-reuse idiom: append(x[:0], ...) or appends to a slice
reset with x = x[:0] in the same function.`,
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.SourceFiles() {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !directive.OnFunc(fn, "noalloc") {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	resets := scratchResets(pass, fn.Body)
	cold := coldBlocks(fn.Body)

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if b, ok := n.(*ast.BlockStmt); ok && cold[b] {
			return false // error path: allocation is acceptable there
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, fn, n, resets)
		case *ast.CompositeLit:
			checkCompositeLit(pass, fn, n)
		case *ast.FuncLit:
			if capt := captured(pass, n); capt != "" {
				pass.Reportf(n.Pos(),
					"%s is //phonocmap:noalloc but contains a closure capturing %q (closure environments are heap-allocated)",
					fn.Name.Name, capt)
			}
			return false // don't descend: the closure body runs elsewhere
		case *ast.GoStmt:
			pass.Reportf(n.Pos(),
				"%s is //phonocmap:noalloc but starts a goroutine (stack + closure allocation)", fn.Name.Name)
		}
		return true
	}
	ast.Inspect(fn.Body, walk)
}

// checkCall flags allocating builtins, conversions and interface boxing.
func checkCall(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr, resets map[string]bool) {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				pass.Reportf(call.Pos(),
					"%s is //phonocmap:noalloc but calls %s", fn.Name.Name, b.Name())
			case "append":
				checkAppend(pass, fn, call, resets)
			}
			return
		}
	}
	// Conversions: T(x) where T allocates (string <-> []byte/[]rune, to interface).
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := pass.TypesInfo.TypeOf(call.Args[0])
		if src != nil {
			if allocatingConversion(dst, src) {
				pass.Reportf(call.Pos(),
					"%s is //phonocmap:noalloc but converts %s to %s, which allocates", fn.Name.Name, src, dst)
			}
			if isInterface(dst) && !isInterface(src) && !isNilConst(pass, call.Args[0]) {
				pass.Reportf(call.Pos(),
					"%s is //phonocmap:noalloc but boxes %s into interface %s", fn.Name.Name, src, dst)
			}
		}
		return
	}
	// Implicit boxing at call sites: concrete argument, interface parameter.
	sig, ok := calleeSignature(pass, call)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i, call.Ellipsis.IsValid())
		if pt == nil {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil || isNilConst(pass, arg) {
			continue
		}
		if isInterface(pt) && !isInterface(at) {
			pass.Reportf(arg.Pos(),
				"%s is //phonocmap:noalloc but passes %s as interface %s (boxing may allocate)", fn.Name.Name, at, pt)
		}
	}
}

// checkAppend allows only the amortized scratch-reuse idiom.
func checkAppend(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr, resets map[string]bool) {
	if len(call.Args) == 0 {
		return
	}
	dst := ast.Unparen(call.Args[0])
	// append(x[:0], ...) reuses x's backing array.
	if isZeroReslice(pass, dst) {
		return
	}
	// append(x, ...) where x was reset with x = x[:0] earlier.
	if resets[exprKey(pass.Fset, dst)] {
		return
	}
	pass.Reportf(call.Pos(),
		"%s is //phonocmap:noalloc but this append may grow its backing array; use the scratch idiom (x = x[:0] then append) if amortized growth is intended",
		fn.Name.Name)
}

// scratchResets collects the textual keys of slices reset to length
// zero anywhere in the function (x = x[:0], including fields like
// s.buf = s.buf[:0]) — the designated amortized-scratch slices.
func scratchResets(pass *analysis.Pass, body *ast.BlockStmt) map[string]bool {
	resets := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			sl, ok := ast.Unparen(rhs).(*ast.SliceExpr)
			if !ok || !isZeroHigh(pass, sl) {
				continue
			}
			lhsKey := exprKey(pass.Fset, ast.Unparen(as.Lhs[i]))
			if lhsKey != "" && lhsKey == exprKey(pass.Fset, ast.Unparen(sl.X)) {
				resets[lhsKey] = true
			}
		}
		return true
	})
	return resets
}

// isZeroReslice reports whether e is x[:0] (or x[0:0]).
func isZeroReslice(pass *analysis.Pass, e ast.Expr) bool {
	sl, ok := e.(*ast.SliceExpr)
	return ok && isZeroHigh(pass, sl)
}

func isZeroHigh(pass *analysis.Pass, sl *ast.SliceExpr) bool {
	if sl.High == nil {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sl.High]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	v, _ := constant.Int64Val(tv.Value)
	return v == 0
}

// checkCompositeLit flags literals with heap-allocated backing: slices,
// maps, and &T{}-style pointer literals. Plain struct and array values
// live in the frame.
func checkCompositeLit(pass *analysis.Pass, fn *ast.FuncDecl, lit *ast.CompositeLit) {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		pass.Reportf(lit.Pos(),
			"%s is //phonocmap:noalloc but builds a slice literal of %s", fn.Name.Name, t)
	case *types.Map:
		pass.Reportf(lit.Pos(),
			"%s is //phonocmap:noalloc but builds a map literal of %s", fn.Name.Name, t)
	}
}

// captured returns the name of a variable the closure captures from its
// enclosing function, or "".
func captured(pass *analysis.Pass, lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level variables are not captures.
		if v.Parent() == pass.Pkg.Scope() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			name = v.Name()
			return false
		}
		return true
	})
	return name
}

// coldBlocks marks if/else blocks whose final statement returns a
// non-nil last value — the early-exit error paths the allocation
// contract does not cover.
func coldBlocks(body *ast.BlockStmt) map[*ast.BlockStmt]bool {
	cold := make(map[*ast.BlockStmt]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		markIfCold(cold, ifs.Body)
		if els, ok := ifs.Else.(*ast.BlockStmt); ok {
			markIfCold(cold, els)
		}
		return true
	})
	return cold
}

func markIfCold(cold map[*ast.BlockStmt]bool, b *ast.BlockStmt) {
	if len(b.List) == 0 {
		return
	}
	ret, ok := b.List[len(b.List)-1].(*ast.ReturnStmt)
	if !ok || len(ret.Results) == 0 {
		return
	}
	last := ast.Unparen(ret.Results[len(ret.Results)-1])
	if id, isID := last.(*ast.Ident); isID && id.Name == "nil" {
		return
	}
	cold[b] = true
}

func calleeSignature(pass *analysis.Pass, call *ast.CallExpr) (*types.Signature, bool) {
	t := pass.TypesInfo.TypeOf(call.Fun)
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

// paramType returns the static type of parameter i, unrolling variadics.
func paramType(sig *types.Signature, i int, ellipsis bool) types.Type {
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	if sig.Variadic() && !ellipsis && i >= params.Len()-1 {
		last := params.At(params.Len() - 1).Type()
		if sl, ok := last.(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isNilConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

// allocatingConversion reports string<->[]byte/[]rune conversions.
func allocatingConversion(dst, src types.Type) bool {
	isString := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		sl, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := sl.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src))
}

// exprKey renders an expression to a comparable textual key
// ("ss.changed"); non-path expressions key as "".
func exprKey(fset *token.FileSet, e ast.Expr) string {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr:
	default:
		return ""
	}
	var b strings.Builder
	if err := printer.Fprint(&b, fset, e); err != nil {
		return ""
	}
	return b.String()
}
