// Package metricname is the static twin of the service's metricFamilies
// scrape test: every metric family registered with internal/obs must
// have a compile-time constant name matching ^phonocmap_[a-z0-9_]+$,
// must be registered at most once per package, and labeled vectors must
// declare their label keys as compile-time string constants (bounded
// cardinality by construction — a computed label key is how unbounded
// families sneak into a registry).
package metricname

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"

	"phonocmap/lint/analysis"
)

// Analyzer is the metric naming and registration check.
var Analyzer = &analysis.Analyzer{
	Name: "phonometricname",
	Doc: `enforce the phonocmap_* metric naming contract at registration sites

Names passed to obs.Registry registration methods (MustRegister, Counter,
CounterVec, CounterFn, Gauge, GaugeVec, GaugeFn, Histogram, HistogramVec)
must be compile-time string constants matching ^phonocmap_[a-z0-9_]+$ and
unique within the registering package. Label keys of
CounterVec/GaugeVec/HistogramVec (and the standalone
NewCounterVec/NewGaugeVec/NewHistogramVec constructors) must be
compile-time string constants matching ^[a-z][a-z0-9_]*$.`,
	Run: run,
}

var (
	nameRE  = regexp.MustCompile(`^phonocmap_[a-z0-9_]+$`)
	labelRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
)

// registryMethods maps obs.Registry method names to the index of their
// first label-key argument (-1: the method takes no label keys).
var registryMethods = map[string]int{
	"MustRegister": -1,
	"Counter":      -1,
	"CounterFn":    -1,
	"Gauge":        -1,
	"GaugeFn":      -1,
	"Histogram":    -1,
	"CounterVec":   2,
	"GaugeVec":     2,
	"HistogramVec": 3,
}

// standaloneVecs maps obs package-level constructors to the index of
// their first label-key argument.
var standaloneVecs = map[string]int{
	"NewCounterVec":   0,
	"NewGaugeVec":     0,
	"NewHistogramVec": 1,
}

func run(pass *analysis.Pass) (any, error) {
	// The obs package itself constructs and validates names generically;
	// the contract binds its *clients*.
	if pass.PkgPathHasSuffix("internal/obs") {
		return nil, nil
	}
	registered := make(map[string]ast.Node) // metric name -> first registration
	for _, file := range pass.SourceFiles() {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := callee(pass, call)
			if fn == nil || !fromObs(fn) {
				return true
			}
			if labelStart, ok := registryMethods[fn.Name()]; ok && isRegistryMethod(fn) {
				checkName(pass, call, fn.Name(), registered)
				if labelStart >= 0 {
					checkLabels(pass, call, fn.Name(), labelStart)
				}
			} else if labelStart, ok := standaloneVecs[fn.Name()]; ok {
				checkLabels(pass, call, fn.Name(), labelStart)
			}
			return true
		})
	}
	return nil, nil
}

func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func fromObs(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return path == "internal/obs" || strings.HasSuffix(path, "/internal/obs")
}

func isRegistryMethod(fn *types.Func) bool {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}

// checkName validates the metric family name (argument 0) and records
// it for duplicate detection.
func checkName(pass *analysis.Pass, call *ast.CallExpr, method string, registered map[string]ast.Node) {
	if len(call.Args) == 0 {
		return
	}
	arg := call.Args[0]
	name, isConst := constString(pass, arg)
	if !isConst {
		pass.Reportf(arg.Pos(),
			"metric name passed to Registry.%s must be a compile-time string constant so the family set is auditable statically", method)
		return
	}
	if !nameRE.MatchString(name) {
		pass.Reportf(arg.Pos(),
			"metric name %q does not match the required pattern ^phonocmap_[a-z0-9_]+$", name)
		return
	}
	if first, dup := registered[name]; dup {
		pass.Reportf(arg.Pos(),
			"duplicate registration of metric %q (first registered at %s); obs.Registry panics on duplicates at startup",
			name, pass.Fset.Position(first.Pos()))
		return
	}
	registered[name] = arg
}

// checkLabels validates the label-key arguments starting at index from.
func checkLabels(pass *analysis.Pass, call *ast.CallExpr, method string, from int) {
	for i := from; i < len(call.Args); i++ {
		arg := call.Args[i]
		// A variadic splat (labels...) defeats static bounding.
		if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
			pass.Reportf(arg.Pos(),
				"label keys passed to %s via ... cannot be statically bounded; list them as string literals", method)
			return
		}
		key, isConst := constString(pass, arg)
		if !isConst {
			pass.Reportf(arg.Pos(),
				"label key passed to %s must be a compile-time string constant (bounded label sets are part of the metrics contract)", method)
			continue
		}
		if !labelRE.MatchString(key) {
			pass.Reportf(arg.Pos(),
				"label key %q does not match the required pattern ^[a-z][a-z0-9_]*$", key)
		}
	}
}

// constString returns the compile-time string value of e, if it has one.
func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
