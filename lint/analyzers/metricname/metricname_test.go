package metricname

import (
	"testing"

	"phonocmap/lint/analysistest"
)

func TestMetricName(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer,
		"phonocmap/internal/service", // registry client: all checks active
		"phonocmap/internal/obs",     // the registry itself: exempt wholesale
	)
}
