// Package obs is a metricname fixture stand-in for phonocmap's real
// metrics registry: just the registration surface the analyzer keys on.
package obs

type Collector interface{ Collect() }

type Counter struct{}

func (c *Counter) Collect() {}

type Registry struct{}

func (r *Registry) MustRegister(name, help string, c Collector) {}

func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }

func (r *Registry) CounterFn(name, help string, fn func() float64) {}

func (r *Registry) GaugeFn(name, help string, fn func() float64) {}

func (r *Registry) CounterVec(name, help string, labels ...string) *Counter { return &Counter{} }

func (r *Registry) GaugeVec(name, help string, labels ...string) *Counter { return &Counter{} }

func (r *Registry) Histogram(name, help string, buckets []float64) *Counter { return &Counter{} }

func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *Counter {
	return &Counter{}
}

func NewCounterVec(labels ...string) *Counter { return &Counter{} }

func NewGaugeVec(labels ...string) *Counter { return &Counter{} }

func NewHistogramVec(buckets []float64, labels ...string) *Counter { return &Counter{} }

// Plain has a Counter method that is not a Registry method; calls to it
// must not be treated as registrations.
type Plain struct{}

func (p *Plain) Counter(name, help string) {}

// selfRegister shows why the analyzer skips the obs package itself: the
// registry's own helpers handle names generically.
func selfRegister(r *Registry, name string) {
	r.Counter(name, "obs constructs names generically; the contract binds clients")
}
