// Package service exercises metricname from a registry client.
package service

import "phonocmap/internal/obs"

var reg obs.Registry

func register(suffix string, labels []string) {
	reg.Counter("phonocmap_requests_total", "requests")
	reg.Counter("requests_total", "no prefix")     // want "does not match the required pattern"
	reg.Counter("phonocmap_requests_total", "dup") // want "duplicate registration"
	reg.Counter("phonocmap_"+suffix, "computed")   // want "must be a compile-time string constant"
	reg.MustRegister("phonocmap_custom_total", "custom", &obs.Counter{})
	reg.Histogram("phonocmap_latency_seconds", "latency", nil)
	reg.CounterVec("phonocmap_rpcs_total", "rpcs", "endpoint", "code")
	reg.CounterVec("phonocmap_bad_labels_total", "bad", "Endpoint") // want `label key "Endpoint" does not match`
	reg.HistogramVec("phonocmap_eval_ms", "evals", nil, "endpoint")
	reg.GaugeVec("phonocmap_node_inflight", "inflight", "node")
	reg.GaugeVec("phonocmap_bad_gauge", "bad", "No de")         // want `label key "No de" does not match`
	reg.CounterVec("phonocmap_splat_total", "splat", labels...) // want "cannot be statically bounded"
}

func standalone() {
	_ = obs.NewCounterVec("endpoint")
	_ = obs.NewCounterVec("en dpoint") // want `label key "en dpoint" does not match`
	_ = obs.NewGaugeVec("node")
	_ = obs.NewGaugeVec("9node") // want `label key "9node" does not match`
	_ = obs.NewHistogramVec(nil, "code")
}

func notARegistry(p *obs.Plain) {
	p.Counter("whatever", "Plain.Counter is not a registration site")
}

const reqLatency = "phonocmap_req_latency_ms"

func constName() {
	reg.Histogram(reqLatency, "named constants are compile-time constants too", nil)
}

func storeFamilies(entries func() float64) {
	// The persistent-store families registered through the callback-backed
	// constructors are registration sites too.
	reg.CounterFn("phonocmap_store_gets_total", "store lookups", entries)
	reg.CounterFn("phonocmap_store_hits_total", "store hits", entries)
	reg.CounterFn("phonocmap_store_puts_total", "store puts", entries)
	reg.CounterFn("phonocmap_store_errors_total", "store errors", entries)
	reg.CounterFn("phonocmap_store_evictions_total", "store evictions", entries)
	reg.GaugeFn("phonocmap_store_entries", "store entries", entries)
	reg.GaugeFn("phonocmap_store_bytes", "store bytes", entries)
	reg.CounterFn("store_gets_total", "no prefix", entries)            // want "does not match the required pattern"
	reg.GaugeFn("phonocmap_store_entries", "dup", entries)             // want "duplicate registration"
	reg.CounterFn("phonocmap_Store_gets_total", "bad casing", entries) // want "does not match the required pattern"
}
