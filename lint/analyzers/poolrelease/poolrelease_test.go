package poolrelease

import (
	"testing"

	"phonocmap/lint/analysistest"
)

func TestPoolRelease(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer,
		"phonocmap/internal/search", // consumer of the pooled constructors
		"phonocmap/internal/core",   // defining package: acquisition sites exempt
	)
}
