// Package poolrelease enforces pooled-session hygiene: every locally
// held value acquired from phonocmap's evaluation-session pools —
// Problem.NewSwapSession, NewSwapSessionPool, SwapSessionPool.Acquire,
// analysis.NewIncremental — must be released (Release/Close) on some
// path of the acquiring function, or demonstrably handed off (stored
// into a field, slice, map or channel, returned, or passed to another
// function that assumes ownership). A session that is neither keeps its
// incremental engine's buffers out of the shared sync.Pool forever —
// the exact leak class the 0-allocs/op hot-path contract exists to
// prevent, and one no differential test can see.
package poolrelease

import (
	"go/ast"
	"go/types"
	"strings"

	"phonocmap/lint/analysis"
	"phonocmap/lint/directive"
)

// Analyzer is the pooled-session hygiene check.
var Analyzer = &analysis.Analyzer{
	Name: "phonopoolrelease",
	Doc: `require Release/Close (or ownership hand-off) for pooled evaluation sessions

Acquisition sites are calls to core's NewSwapSession / NewSwapSessionPool /
SwapSessionPool.Acquire and analysis's NewIncremental. The acquired value
must either be released in the same function (directly or via defer) or
escape into longer-lived state whose owner releases it. Discarding one
with _ is always an error. A deliberate exception carries
//phonocmap:release-ok <why>.`,
	Run: run,
}

// acquirers maps function names to the package-path suffix they must
// come from.
var acquirers = map[string]string{
	"NewSwapSession":     "internal/core",
	"NewSwapSessionPool": "internal/core",
	"Acquire":            "internal/core",
	"NewIncremental":     "internal/analysis",
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.SourceFiles() {
		dirs := directive.Parse(pass.Fset, file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn, dirs)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, dirs *directive.Map) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isAcquire(pass, call) {
			return true
		}
		if dirs.At("release-ok", call) {
			return true
		}
		name := acquireName(call)
		obj, kind := bindingOf(pass, fn.Body, call)
		switch kind {
		case boundEscapes:
			return true // result feeds directly into a longer-lived structure
		case boundBlank:
			pass.Reportf(call.Pos(),
				"%s result discarded with _: the pooled session can never be released; bind it and Release it (or annotate //phonocmap:release-ok <why>)", name)
			return true
		case boundNone:
			pass.Reportf(call.Pos(),
				"%s result is not bound to a variable: the pooled session can never be released", name)
			return true
		}
		if releasedOrEscapes(pass, fn.Body, obj, call) {
			return true
		}
		pass.Reportf(call.Pos(),
			"%s acquires a pooled session that %q never releases: call %s.Release (ideally deferred) on every path, hand it off to an owner, or annotate //phonocmap:release-ok <why>",
			name, fnName(fn), obj.Name())
		return true
	})
}

func fnName(fn *ast.FuncDecl) string { return fn.Name.Name }

// isAcquire reports whether the call acquires a pooled session.
func isAcquire(pass *analysis.Pass, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	wantPkg, ok := acquirers[fn.Name()]
	if !ok {
		return false
	}
	path := fn.Pkg().Path()
	if path != wantPkg && !strings.HasSuffix(path, "/"+wantPkg) {
		return false
	}
	// Inside the defining package the constructor itself (and its
	// helpers) legitimately hold unreleased values mid-construction.
	if pass.Pkg.Path() == path {
		return false
	}
	if fn.Name() == "Acquire" {
		recv := fn.Type().(*types.Signature).Recv()
		if recv == nil || !typeNamed(recv.Type(), "SwapSessionPool") {
			return false
		}
	}
	return true
}

func acquireName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "acquire"
}

func typeNamed(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == name
}

type binding int

const (
	boundVar     binding = iota // assigned to a plain local variable
	boundBlank                  // assigned to _
	boundEscapes                // used directly in a hand-off position
	boundNone                   // bare expression statement
)

// bindingOf classifies how the acquire call's result is captured and,
// for boundVar, which object holds it.
func bindingOf(pass *analysis.Pass, body *ast.BlockStmt, call *ast.CallExpr) (types.Object, binding) {
	var obj types.Object
	kind := boundNone
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if ast.Unparen(rhs) != call {
					continue
				}
				// Multi-value acquire (v, err := ...): the session is result 0.
				lhs := n.Lhs[0]
				if len(n.Rhs) == len(n.Lhs) {
					lhs = n.Lhs[i]
				}
				switch l := ast.Unparen(lhs).(type) {
				case *ast.Ident:
					if l.Name == "_" {
						kind = boundBlank
						return false
					}
					obj = pass.TypesInfo.ObjectOf(l)
					kind = boundVar
				default:
					// Assigned straight into a field/index: owner hand-off.
					kind = boundEscapes
				}
				return false
			}
		case *ast.ValueSpec:
			for i, v := range n.Values {
				if ast.Unparen(v) != call {
					continue
				}
				if i < len(n.Names) {
					if n.Names[i].Name == "_" {
						kind = boundBlank
					} else {
						obj = pass.TypesInfo.ObjectOf(n.Names[i])
						kind = boundVar
					}
				}
				return false
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if containsCall(r, call) {
					kind = boundEscapes
					return false
				}
			}
		case *ast.CallExpr:
			if n == call {
				return true
			}
			for _, arg := range n.Args {
				if containsCall(arg, call) {
					kind = boundEscapes
					return false
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if containsCall(el, call) {
					kind = boundEscapes
					return false
				}
			}
		case *ast.SendStmt:
			if containsCall(n.Value, call) {
				kind = boundEscapes
				return false
			}
		}
		return kind == boundNone || obj != nil
	})
	if kind == boundVar && obj == nil {
		kind = boundNone
	}
	return obj, kind
}

func containsCall(e ast.Expr, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if n == call {
			found = true
		}
		return !found
	})
	return found
}

// releasedOrEscapes reports whether the bound session object is either
// released in this function or handed off to longer-lived state.
func releasedOrEscapes(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object, acquire *ast.CallExpr) bool {
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if n == acquire {
				return true
			}
			// v.Release() / v.Close()
			if sel, isSel := ast.Unparen(n.Fun).(*ast.SelectorExpr); isSel {
				if (sel.Sel.Name == "Release" || sel.Sel.Name == "Close") && usesObject(pass, sel.X, obj) {
					ok = true
					return false
				}
			}
			// v passed to another function (not a method ON v): hand-off.
			for _, arg := range n.Args {
				if id, isID := ast.Unparen(arg).(*ast.Ident); isID && pass.TypesInfo.ObjectOf(id) == obj {
					ok = true
					return false
				}
			}
		case *ast.AssignStmt:
			// field/index/map slot = v: hand-off to an owner.
			for i, rhs := range n.Rhs {
				if id, isID := ast.Unparen(rhs).(*ast.Ident); !isID || pass.TypesInfo.ObjectOf(id) != obj {
					continue
				} else {
					_ = id
				}
				lhs := n.Lhs[0]
				if len(n.Lhs) == len(n.Rhs) {
					lhs = n.Lhs[i]
				}
				switch ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					ok = true
					return false
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				e := el
				if kv, isKV := el.(*ast.KeyValueExpr); isKV {
					e = kv.Value
				}
				if id, isID := ast.Unparen(e).(*ast.Ident); isID && pass.TypesInfo.ObjectOf(id) == obj {
					ok = true
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if id, isID := ast.Unparen(r).(*ast.Ident); isID && pass.TypesInfo.ObjectOf(id) == obj {
					ok = true
					return false
				}
			}
		case *ast.SendStmt:
			if id, isID := ast.Unparen(n.Value).(*ast.Ident); isID && pass.TypesInfo.ObjectOf(id) == obj {
				ok = true
				return false
			}
		}
		return true
	})
	return ok
}

// usesObject reports whether expression e roots at obj.
func usesObject(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			return pass.TypesInfo.ObjectOf(t) == obj
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return false
		}
	}
}
