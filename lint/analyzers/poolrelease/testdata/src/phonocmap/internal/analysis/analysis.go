// Package analysis is a poolrelease fixture stand-in for phonocmap's
// incremental-analysis package.
package analysis

type Incremental struct{}

func (inc *Incremental) Close() {}

func NewIncremental(n int) *Incremental { return &Incremental{} }
