// Package core is a poolrelease fixture stand-in for phonocmap's real
// core: just the acquisition surface the analyzer keys on.
package core

type SwapSession struct{}

func (s *SwapSession) Release() {}

type Problem struct{}

func (p *Problem) NewSwapSession(m []int) (*SwapSession, error) { return &SwapSession{}, nil }

type SwapSessionPool struct{}

func NewSwapSessionPool(p *Problem, workers int) *SwapSessionPool { return &SwapSessionPool{} }

func (sp *SwapSessionPool) Acquire() *SwapSession { return &SwapSession{} }

func (sp *SwapSessionPool) Close() {}

// Limiter has an Acquire method too, but it is not a SwapSessionPool,
// so the analyzer must ignore it.
type Limiter struct{}

func (l *Limiter) Acquire() int { return 0 }

// warm holds an unreleased session mid-construction: legitimate inside
// the defining package, which the analyzer exempts wholesale.
func warm(p *Problem) {
	ss, _ := p.NewSwapSession(nil)
	_ = ss
}
