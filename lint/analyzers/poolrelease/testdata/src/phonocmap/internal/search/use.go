// Package search exercises poolrelease from a consumer of the pooled
// session constructors.
package search

import (
	"phonocmap/internal/analysis"
	"phonocmap/internal/core"
)

func leak(p *core.Problem) {
	ss, err := p.NewSwapSession(nil) // want "NewSwapSession acquires a pooled session"
	if err != nil {
		return
	}
	_ = ss
}

func evaluate(p *core.Problem) error {
	ss, err := p.NewSwapSession(nil) // ok: deferred Release
	if err != nil {
		return err
	}
	defer ss.Release()
	return nil
}

func discard(p *core.Problem) {
	_, _ = p.NewSwapSession(nil) // want "result discarded with _"
}

func bare(sp *core.SwapSessionPool) {
	sp.Acquire() // want "result is not bound"
}

func handOff(sp *core.SwapSessionPool) *core.SwapSession {
	return sp.Acquire() // ok: ownership transfers to the caller
}

type holder struct{ ss *core.SwapSession }

func (h *holder) fill(sp *core.SwapSessionPool) {
	h.ss = sp.Acquire() // ok: escapes into longer-lived state
}

func poolLeak(p *core.Problem) {
	sp := core.NewSwapSessionPool(p, 4) // want "NewSwapSessionPool acquires a pooled session"
	_ = sp
}

func poolOK(p *core.Problem) {
	sp := core.NewSwapSessionPool(p, 4) // ok: Close counts as release
	defer sp.Close()
}

func incLeak() {
	inc := analysis.NewIncremental(8) // want "NewIncremental acquires a pooled session"
	_ = inc
}

func incOK() {
	inc := analysis.NewIncremental(8) // ok: Close counts as release
	defer inc.Close()
}

func tolerated(sp *core.SwapSessionPool) {
	//phonocmap:release-ok process-lifetime session, reclaimed at exit
	ss := sp.Acquire()
	_ = ss
}

func passedOn(sp *core.SwapSessionPool) {
	ss := sp.Acquire() // ok: handed to a function that assumes ownership
	consume(ss)
}

func consume(ss *core.SwapSession) { defer ss.Release() }

func unrelated(l *core.Limiter) {
	l.Acquire() // ok: Acquire on a non-pool receiver
}
