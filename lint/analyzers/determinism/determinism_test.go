package determinism

import (
	"testing"

	"phonocmap/lint/analysistest"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer,
		"phonocmap/internal/core", // contract package: all checks active
		"phonocmap/internal/util", // non-contract package: no diagnostics
	)
}
