// Package determinism statically enforces the bit-identical-results
// contract of phonocmap's evaluation and reporting pipeline (the
// invariant the differential suites check dynamically): contract
// packages must not read wall clocks into result data, must not draw
// from the global math/rand stream, and must not let map iteration
// order leak into slices, result fields or JSON.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"phonocmap/lint/analysis"
	"phonocmap/lint/directive"
)

// Analyzer is the determinism contract check.
var Analyzer = &analysis.Analyzer{
	Name: "phonodeterminism",
	Doc: `enforce the bit-identical-results contract in phonocmap's contract packages

In internal/core, internal/search, internal/scenario, internal/sweep and
internal/analysis:

  - time.Now / time.Since calls must carry a //phonocmap:wallclock
    justification: the only sanctioned wall-clock reads are the ones
    feeding explicitly non-contractual fields (RunResult.Duration,
    trace AtMs).
  - package-level math/rand functions are forbidden: all randomness
    must flow from an explicitly seeded *rand.Rand.
  - a range over a map whose body appends to an outer slice, writes an
    outer field, accumulates floats or strings, or feeds json.Marshal
    is flagged unless the collected value is sorted immediately after
    the loop or the loop carries a //phonocmap:ordered justification.`,
	Run: run,
}

// contractPackages are the package-path suffixes the determinism
// contract covers — the packages whose outputs join differential
// equivalence tests or content-addressed cache keys.
var contractPackages = []string{
	"internal/core",
	"internal/search",
	"internal/scenario",
	"internal/sweep",
	"internal/analysis",
}

func run(pass *analysis.Pass) (any, error) {
	if !pass.PkgPathHasSuffix(contractPackages...) {
		return nil, nil
	}
	for _, file := range pass.SourceFiles() {
		dirs := directive.Parse(pass.Fset, file)
		checkClockAndRand(pass, file, dirs)
		checkMapRanges(pass, file, dirs)
	}
	return nil, nil
}

// --- wall clock and global rand ---

func checkClockAndRand(pass *analysis.Pass, file *ast.File, dirs *directive.Map) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "time":
			if (fn.Name() == "Now" || fn.Name() == "Since") && !dirs.At("wallclock", call) {
				pass.Reportf(call.Pos(),
					"time.%s in a determinism-contract package: results must not depend on wall clocks; route the value into a non-contractual field and annotate with //phonocmap:wallclock <why>",
					fn.Name())
			}
		case "math/rand", "math/rand/v2":
			// Constructors (New, NewSource, NewPCG, NewZipf, ...) are how
			// seeded generators are built; only the package-level functions
			// that draw from the hidden global stream are violations.
			if fn.Type().(*types.Signature).Recv() == nil && !strings.HasPrefix(fn.Name(), "New") {
				pass.Reportf(call.Pos(),
					"global %s.%s in a determinism-contract package: draw from an explicitly seeded *rand.Rand instead",
					fn.Pkg().Name(), fn.Name())
			}
		}
		return true
	})
}

// calleeFunc resolves a call's static callee, or nil.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// --- map iteration order ---

// checkMapRanges walks every statement list so that a flagged range can
// be absolved by a sort call later in the same list.
func checkMapRanges(pass *analysis.Pass, file *ast.File, dirs *directive.Map) {
	ast.Inspect(file, func(n ast.Node) bool {
		var stmts []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			stmts = n.List
		case *ast.CaseClause:
			stmts = n.Body
		case *ast.CommClause:
			stmts = n.Body
		default:
			return true
		}
		for i, stmt := range stmts {
			rng, ok := stmt.(*ast.RangeStmt)
			if !ok {
				continue
			}
			if t := pass.TypesInfo.TypeOf(rng.X); t == nil {
				continue
			} else if _, isMap := t.Underlying().(*types.Map); !isMap {
				continue
			}
			if dirs.At("ordered", rng) {
				continue
			}
			checkOneMapRange(pass, rng, stmts[i+1:])
		}
		return true
	})
}

// checkOneMapRange reports order-leaking writes inside one map-range
// body; rest is the statement tail after the loop, searched for
// absolving sort calls.
func checkOneMapRange(pass *analysis.Pass, rng *ast.RangeStmt, rest []ast.Stmt) {
	body := rng.Body
	outer := func(e ast.Expr) (types.Object, bool) {
		obj := rootObject(pass, e)
		if obj == nil {
			return nil, false
		}
		// Declared inside the loop body => per-iteration state, no leak.
		if obj.Pos() >= body.Pos() && obj.Pos() <= body.End() {
			return obj, false
		}
		return obj, true
	}

	ast.Inspect(body, func(n ast.Node) bool {
		// Nested map ranges get their own report; don't double-walk.
		if inner, ok := n.(*ast.RangeStmt); ok && inner != rng {
			if t := pass.TypesInfo.TypeOf(inner.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					return false
				}
			}
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isAppendCall(pass, n) && len(n.Args) > 0 {
				if obj, isOuter := outer(n.Args[0]); isOuter {
					if !sortedAfter(pass, rest, obj) {
						pass.Reportf(n.Pos(),
							"append to %q inside a map range: iteration order leaks into the slice; sort it after the loop or annotate the range with //phonocmap:ordered <why>",
							obj.Name())
					}
				}
				return true
			}
			if fn := calleeFunc(pass, n); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "encoding/json" &&
				(fn.Name() == "Marshal" || fn.Name() == "MarshalIndent" || fn.Name() == "Encode") {
				pass.Reportf(n.Pos(),
					"json encoding inside a map range: emit into a sorted collection after the loop or annotate the range with //phonocmap:ordered <why>")
			}
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, n, outer)
		}
		return true
	})
}

// checkMapRangeAssign flags order-dependent writes to state that
// outlives the loop iteration.
func checkMapRangeAssign(pass *analysis.Pass, as *ast.AssignStmt, outer func(ast.Expr) (types.Object, bool)) {
	for _, lhs := range as.Lhs {
		sel, isSel := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !isSel {
			// Plain identifiers and index expressions: scalar accumulation
			// into a local (sum += x) and keyed map writes are the
			// established order-independent idioms; only compound float and
			// string accumulation is order-sensitive enough to flag.
			if as.Tok == token.ASSIGN || as.Tok == token.DEFINE {
				continue
			}
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if _, isOuter := outer(id); isOuter && nonAssociative(pass, id, as.Tok) {
					pass.Reportf(as.Pos(),
						"%s accumulation of %q inside a map range is iteration-order dependent (%s is non-associative on this type); collect and sort first or annotate with //phonocmap:ordered <why>",
						as.Tok, id.Name, as.Tok)
				}
			}
			continue
		}
		obj, isOuter := outer(sel)
		if !isOuter {
			continue
		}
		if as.Tok != token.ASSIGN && !nonAssociative(pass, sel, as.Tok) {
			continue // integer-style compound accumulation commutes
		}
		pass.Reportf(as.Pos(),
			"write to field %s of %q inside a map range: last-writer/accumulation order depends on map iteration; make the write order-independent or annotate the range with //phonocmap:ordered <why>",
			sel.Sel.Name, obj.Name())
	}
}

// nonAssociative reports whether a compound assignment on the
// expression's type can produce different results under reordering:
// float arithmetic and string concatenation.
func nonAssociative(pass *analysis.Pass, e ast.Expr, tok token.Token) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch {
	case b.Info()&types.IsFloat != 0, b.Info()&types.IsComplex != 0:
		return tok != token.ASSIGN
	case b.Info()&types.IsString != 0:
		return tok == token.ADD_ASSIGN
	}
	return false
}

// isAppendCall reports whether the call is the append builtin.
func isAppendCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// rootObject resolves the base identifier of x, x.f, x[i], *x, x[:] chains.
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			return pass.TypesInfo.ObjectOf(t)
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.SliceExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// sortedAfter reports whether any statement after the loop sorts the
// collected object: a call to sort.* or slices.Sort* whose first
// argument (or sort.Sort-style sole argument) roots at obj.
func sortedAfter(pass *analysis.Pass, rest []ast.Stmt, obj types.Object) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			pkg := fn.Pkg().Path()
			if pkg != "sort" && pkg != "slices" {
				return true
			}
			if !strings.HasPrefix(fn.Name(), "Sort") && !strings.HasPrefix(fn.Name(), "Slice") &&
				!isSortConvenience(fn.Name()) {
				return true
			}
			for _, arg := range call.Args {
				if rootObject(pass, arg) == obj {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// isSortConvenience covers sort's typed helpers that don't start with
// Sort/Slice.
func isSortConvenience(name string) bool {
	switch name {
	case "Strings", "Ints", "Float64s", "Stable":
		return true
	}
	return false
}
