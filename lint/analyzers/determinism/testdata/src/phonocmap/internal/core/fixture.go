// Package core is a determinism-analyzer fixture mimicking a contract
// package (its import path ends in internal/core).
package core

import (
	"encoding/json"
	"math/rand"
	"sort"
	"time"
)

func clock() time.Duration {
	_ = time.Now() // want "time.Now in a determinism-contract package"
	//phonocmap:wallclock feeds a documented non-contractual duration field
	start := time.Now()
	return time.Since(start) // want "time.Since in a determinism-contract package"
}

func draw(rng *rand.Rand) int {
	rand.Shuffle(3, func(i, j int) {}) // want "global rand.Shuffle in a determinism-contract package"
	_ = rand.Intn(4)                   // want "global rand.Intn in a determinism-contract package"
	r := rand.New(rand.NewSource(1))   // ok: constructors build the seeded generators the rule demands
	return r.Intn(4) + rng.Intn(2)     // ok: methods on an explicit *rand.Rand
}

func collect(m map[string]int) ([]string, []string) {
	var names []string
	for k := range m {
		names = append(names, k) // want `append to "names" inside a map range`
	}
	var sorted []string
	for k := range m {
		sorted = append(sorted, k) // ok: sorted immediately after the loop
	}
	sort.Strings(sorted)
	return names, sorted
}

func orderedAppend(m map[string]int, sink []string) []string {
	//phonocmap:ordered the caller re-sorts the sink before any output
	for k := range m {
		sink = append(sink, k)
	}
	return sink
}

func encode(m map[string]int) [][]byte {
	var enc [][]byte
	for _, v := range m {
		b, err := json.Marshal(v) // want "json encoding inside a map range"
		if err != nil {
			continue
		}
		enc = append(enc, b) // want `append to "enc" inside a map range`
	}
	return enc
}

type stats struct {
	Mean float64
	Last string
}

func aggregate(m map[string]float64, st *stats) (count int) {
	var sum float64
	for k, v := range m {
		sum += v    // want `accumulation of "sum" inside a map range`
		count++     // ok: IncDec of an integer commutes
		st.Last = k // want "write to field Last"
	}
	st.Mean = sum / float64(len(m))
	return count
}

func tally(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // ok: integer accumulation commutes
	}
	return total
}

func mirror(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v // ok: keyed map writes are order-independent
	}
	return out
}

func perIteration(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		local := make([]int, 0, len(vs))
		for _, v := range vs {
			local = append(local, v) // ok: local is declared inside the map-range body
		}
		n += len(local)
	}
	return n
}
