// Package util is outside the determinism contract: wall clocks, the
// global rand stream and map iteration are unrestricted here.
package util

import (
	"math/rand"
	"time"
)

func Uptime(start time.Time) time.Duration { return time.Since(start) }

func Jitter() int { return rand.Intn(10) }

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
