// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis surface that phonocmap-lint's
// analyzers are written against. The container this repo builds in has
// no module proxy access, so the real x/tools cannot be vendored; the
// subset here — Analyzer, Pass, Diagnostic — is API-compatible enough
// that the analyzers would port to the real framework by changing one
// import line.
//
// Analyzers in this suite are purely local: they inspect one
// type-checked package at a time and never exchange facts across
// packages. That restriction is what makes the stdlib-only driver in
// phonocmap/lint/unitchecker possible.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check: a name (used as the diagnostic
// prefix and the analysistest identifier), human documentation, and the
// Run function applied to every package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (any, error)
}

// Diagnostic is one finding, anchored at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether a file is a test file; the phonocmap
// contracts apply to production code, so every analyzer in the suite
// skips _test.go files while still type-checking them as part of the
// package unit.
func IsTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Package).Filename, "_test.go")
}

// SourceFiles returns the pass's non-test files.
func (p *Pass) SourceFiles() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files))
	for _, f := range p.Files {
		if !IsTestFile(p.Fset, f) {
			out = append(out, f)
		}
	}
	return out
}

// PkgPathHasSuffix reports whether the pass's package path ends in one
// of the given slash-separated suffixes. Matching by suffix rather than
// full path keeps the analyzers applicable both to the real module
// ("phonocmap/internal/core") and to testdata fixtures that mimic its
// layout under another module name.
func (p *Pass) PkgPathHasSuffix(suffixes ...string) bool {
	path := p.Pkg.Path()
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}
