package phonocmap_test

import (
	"context"
	"testing"
	"time"

	"phonocmap"
)

// testProblem builds PIP on its smallest mesh — the cheapest bundled
// instance, so parallel tests stay fast.
func testProblem(t *testing.T) *phonocmap.Problem {
	t.Helper()
	g := phonocmap.MustApp("PIP")
	side := phonocmap.SquareForTasks(g.NumTasks())
	net, err := phonocmap.NewMeshNetwork(side, side)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := phonocmap.NewProblem(g, net, phonocmap.MaximizeSNR)
	if err != nil {
		t.Fatal(err)
	}
	return prob
}

func TestOptimizeContextReproducesOptimize(t *testing.T) {
	prob := testProblem(t)
	const budget, seed = 400, 11
	want, err := phonocmap.Optimize(prob, "rpbla", budget, seed)
	if err != nil {
		t.Fatal(err)
	}
	got, err := phonocmap.OptimizeContext(context.Background(), prob, "rpbla", budget, seed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Score != want.Score || !got.Mapping.Equal(want.Mapping) {
		t.Errorf("OptimizeContext diverged from Optimize: %+v vs %+v", got.Score, want.Score)
	}
}

func TestOptimizeContextCancel(t *testing.T) {
	prob := testProblem(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := phonocmap.OptimizeContext(ctx, prob, "rs", 100_000_000, 1)
	elapsed := time.Since(start)
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; context not honored", elapsed)
	}
	if err == nil && !res.Cancelled {
		t.Error("run neither errored nor reported Cancelled after context timeout")
	}
}

func TestOptimizeParallelBeatsOrMatchesSequential(t *testing.T) {
	prob := testProblem(t)
	const budget = 400
	seeds := phonocmap.Seeds(1, 4)

	var seqBest phonocmap.RunResult
	for i, seed := range seeds {
		res, err := phonocmap.Optimize(prob, "rpbla", budget, seed)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 || res.Score.Better(seqBest.Score) {
			seqBest = res
		}
	}
	par, err := phonocmap.OptimizeParallel(context.Background(), prob, "rpbla", budget, seeds, 4)
	if err != nil {
		t.Fatal(err)
	}
	if par.Score.Cost > seqBest.Score.Cost {
		t.Errorf("parallel score %v worse than sequential best %v", par.Score.Cost, seqBest.Score.Cost)
	}
	if par.Score != seqBest.Score {
		t.Errorf("parallel best %+v != sequential best %+v (same seeds must reproduce)", par.Score, seqBest.Score)
	}
}

func TestOptimizeParallelUnknownAlgorithm(t *testing.T) {
	prob := testProblem(t)
	if _, err := phonocmap.OptimizeParallel(context.Background(), prob, "nope", 100, phonocmap.Seeds(1, 2), 2); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}
