package service

import "net/http"

// ErrorCode is a machine-readable error classification, stable across
// releases so clients can branch on it without parsing English prose.
type ErrorCode string

const (
	// CodeInvalidRequest marks a request the decoder rejected before any
	// spec-level validation ran: malformed JSON, unknown fields, an
	// oversized body, or an unparseable query parameter.
	CodeInvalidRequest ErrorCode = "invalid_request"
	// CodeInvalidSpec marks a well-formed request whose spec failed
	// normalization, validation or compilation (unknown app, objective or
	// algorithm, out-of-range budget, application too big for the
	// architecture, oversized sweep grid, ...).
	CodeInvalidSpec ErrorCode = "invalid_spec"
	// CodeNotFound marks a job or sweep id the registry does not know
	// (possibly evicted).
	CodeNotFound ErrorCode = "not_found"
	// CodeQueueFull marks a submission shed by admission control: the job
	// queue is at capacity or too many sweeps are in flight. The request
	// was valid; retrying after a backoff is the intended response.
	CodeQueueFull ErrorCode = "queue_full"
	// CodeShuttingDown marks a submission refused because the server is
	// draining; unlike queue_full, retrying against this instance is
	// pointless.
	CodeShuttingDown ErrorCode = "shutting_down"
	// CodeNoResult marks a result request for a job that reached a
	// terminal state without producing one (failed, or cancelled before
	// any evaluation).
	CodeNoResult ErrorCode = "no_result"
	// CodeUnsupported marks a request the transport cannot satisfy, e.g.
	// an SSE stream over a connection that cannot flush.
	CodeUnsupported ErrorCode = "unsupported"
)

// ErrorDetail is the body of the structured error envelope.
type ErrorDetail struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
	// Details carries optional machine-readable context, e.g. the queue
	// capacity behind a queue_full or the offending cell of a sweep.
	Details map[string]any `json:"details,omitempty"`
}

// ErrorEnvelope is the wire shape of every non-2xx response:
//
//	{"error": {"code": "invalid_spec", "message": "...", "details": {...}}}
//
// Handlers emit it exclusively, so clients need exactly one decode path
// for failures.
type ErrorEnvelope struct {
	Error ErrorDetail `json:"error"`
}

// httpStatus maps an error code to its canonical HTTP status.
func (c ErrorCode) httpStatus() int {
	switch c {
	case CodeInvalidRequest, CodeInvalidSpec:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeQueueFull:
		return http.StatusTooManyRequests
	case CodeShuttingDown:
		return http.StatusServiceUnavailable
	case CodeNoResult:
		return http.StatusConflict
	case CodeUnsupported:
		return http.StatusNotImplemented
	default:
		return http.StatusInternalServerError
	}
}

// writeError emits the structured error envelope with the code's
// canonical HTTP status.
func writeError(w http.ResponseWriter, code ErrorCode, message string, details map[string]any) {
	writeJSON(w, code.httpStatus(), ErrorEnvelope{Error: ErrorDetail{
		Code:    code,
		Message: message,
		Details: details,
	}})
}
