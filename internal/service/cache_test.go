package service

import (
	"fmt"
	"sync"
	"testing"

	"phonocmap/internal/core"
)

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	res := func(cost float64) core.RunResult {
		return core.RunResult{Score: core.Score{Cost: cost}}
	}
	c.put("a", res(1), nil, 10)
	c.put("b", res(2), nil, 20)
	if _, _, _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.put("c", res(3), nil, 30) // evicts b (a was just touched)
	if _, _, _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if r, _, _, ok := c.get("a"); !ok || r.Score.Cost != 1 {
		t.Error("a lost or corrupted")
	}
	if r, _, _, ok := c.get("c"); !ok || r.Score.Cost != 3 {
		t.Error("c lost or corrupted")
	}
	st := c.stats()
	if st.Size != 2 || st.Capacity != 2 {
		t.Errorf("stats %+v", st)
	}
	if st.Hits != 3 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 3/1", st.Hits, st.Misses)
	}

	// Overwriting an existing key must not grow the cache.
	c.put("a", res(10), []TraceEvent{{Evals: 1}}, 99)
	if r, tr, ev, ok := c.get("a"); !ok || r.Score.Cost != 10 || len(tr) != 1 || ev != 99 {
		t.Error("overwrite lost data")
	}
	if c.stats().Size != 2 {
		t.Error("overwrite grew the cache")
	}
}

func TestResultCacheDisabled(t *testing.T) {
	c := newResultCache(-1)
	c.put("a", core.RunResult{}, nil, 1)
	if _, _, _, ok := c.get("a"); ok {
		t.Error("disabled cache stored an entry")
	}
}

func TestResultCacheConcurrent(t *testing.T) {
	c := newResultCache(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%16)
				c.put(key, core.RunResult{Score: core.Score{Cost: float64(i)}}, nil, i)
				c.get(key)
			}
		}(g)
	}
	wg.Wait()
	if c.stats().Size > 8 {
		t.Errorf("cache exceeded capacity: %d", c.stats().Size)
	}
}
