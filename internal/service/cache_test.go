package service

import (
	"fmt"
	"sync"
	"testing"

	"phonocmap/internal/core"
	"phonocmap/internal/scenario"
)

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2, nil)
	res := func(cost float64) core.RunResult {
		return core.RunResult{Score: core.Score{Cost: cost}}
	}
	c.put("a", res(1), nil, []int{10}, nil)
	c.put("b", res(2), nil, []int{20}, nil)
	if _, _, _, _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.put("c", res(3), nil, []int{30}, nil) // evicts b (a was just touched)
	if _, _, _, _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if r, _, _, _, ok := c.get("a"); !ok || r.Score.Cost != 1 {
		t.Error("a lost or corrupted")
	}
	if r, _, _, _, ok := c.get("c"); !ok || r.Score.Cost != 3 {
		t.Error("c lost or corrupted")
	}
	st := c.stats()
	if st.Size != 2 || st.Capacity != 2 {
		t.Errorf("stats %+v", st)
	}
	if st.Hits != 3 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 3/1", st.Hits, st.Misses)
	}

	// Overwriting an existing key must not grow the cache.
	c.put("a", res(10), []TraceEvent{{Evals: 1}}, []int{99, 101}, &scenario.Report{Power: &scenario.PowerReport{Feasible: true}})
	if r, tr, ev, rep, ok := c.get("a"); !ok || r.Score.Cost != 10 || len(tr) != 1 ||
		len(ev) != 2 || ev[0] != 99 || ev[1] != 101 ||
		rep == nil || rep.Power == nil || !rep.Power.Feasible {
		t.Error("overwrite lost data")
	}
	if c.stats().Size != 2 {
		t.Error("overwrite grew the cache")
	}
}

func TestResultCacheDisabled(t *testing.T) {
	c := newResultCache(-1, nil)
	c.put("a", core.RunResult{}, nil, []int{1}, nil)
	if _, _, _, _, ok := c.get("a"); ok {
		t.Error("disabled cache stored an entry")
	}
}

// TestResultCacheConcurrentHammer drives the cache from many goroutines
// with a key space much larger than the capacity, so every operation mix
// occurs concurrently: hits, misses, overwrites, LRU evictions and stats
// reads. Run under -race (the CI race step covers this package) it
// proves the mutex discipline of get/put/stats.
func TestResultCacheConcurrentHammer(t *testing.T) {
	const (
		capacity   = 8
		goroutines = 12
		iters      = 400
		keySpace   = 64 // >> capacity: constant eviction pressure
	)
	c := newResultCache(capacity, nil)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("k%d", (g*31+i)%keySpace)
				switch i % 4 {
				case 0:
					c.put(key, core.RunResult{Score: core.Score{Cost: float64(i)}},
						[]TraceEvent{{Evals: i}}, []int{i, i + 1}, &scenario.Report{})
				case 1:
					if res, trace, islands, rep, ok := c.get(key); ok {
						// An entry must always be read back whole: case 0
						// writes (trace len 1, islands len 2, a report),
						// case 2 writes (no trace, islands len 1, nil
						// report). Any other combination means a torn entry.
						if len(islands) == 0 ||
							(len(trace) == 1) != (len(islands) == 2) ||
							(len(trace) == 1) != (rep != nil) {
							t.Errorf("torn cache entry: res=%+v trace=%d islands=%v report=%v",
								res.Score, len(trace), islands, rep != nil)
							return
						}
					}
				case 2:
					c.put(key, core.RunResult{}, nil, []int{i}, nil)
					c.get(fmt.Sprintf("k%d", i%keySpace))
				default:
					c.stats()
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.stats()
	if st.Size > capacity {
		t.Errorf("cache exceeded capacity: %d > %d", st.Size, capacity)
	}
	if st.Hits+st.Misses == 0 {
		t.Error("hammer recorded no lookups")
	}
}
