// Package service implements phonocmap-serve: a long-lived HTTP JSON
// service that accepts mapping-DSE jobs, executes them on a bounded
// worker pool with per-job cancellation, and caches results so duplicate
// submissions are answered instantly.
//
// Endpoints:
//
//	POST   /v1/jobs            submit a job (Request) -> JobStatus
//	GET    /v1/jobs            list known jobs        -> []JobStatus
//	GET    /v1/jobs/{id}        job status             -> JobStatus
//	GET    /v1/jobs/{id}/result finished result        -> JobResult
//	GET    /v1/jobs/{id}/trace  convergence trace      -> JobTrace
//	GET    /v1/jobs/{id}/events live progress (SSE)    -> "status" events, each a JobStatus
//	DELETE /v1/jobs/{id}        cancel                 -> JobStatus
//	POST   /v1/sweeps          submit a design-space sweep (SweepRequest) -> SweepStatus
//	GET    /v1/sweeps          list known sweeps      -> []SweepStatus
//	GET    /v1/sweeps/{id}        live per-cell progress -> SweepStatus
//	GET    /v1/sweeps/{id}/result aggregated results     -> SweepResult
//	DELETE /v1/sweeps/{id}        cancel                 -> SweepStatus
//	GET    /v1/apps            bundled applications   -> []AppInfo
//	GET    /v1/algorithms      available algorithms   -> []string
//	GET    /v1/routers         built-in optical routers -> []RouterInfo
//	GET    /v1/topologies      built-in topology kinds  -> []string
//	GET    /v1/cache           cache + store statistics -> CacheStats
//	DELETE /v1/cache           empty both cache tiers   -> CacheClearResult
//	GET    /healthz            liveness + pool stats  -> Health
//
// The list endpoints accept ?status=<state> and ?limit=<n> filters
// (limit keeps the most recent n matching entries). Every non-2xx
// response is the structured error envelope ErrorEnvelope —
// {"error": {"code", "message", "details"}} — with a machine-readable
// ErrorCode, so clients branch on codes instead of parsing prose.
//
// A sweep expands a grid (apps x architectures x objectives x
// algorithms x budgets x seeds) into cells; every cell is exactly one
// job spec, executed on the same worker pool and answered from the same
// content-addressed result cache as individually submitted jobs.
package service

import (
	"fmt"

	"phonocmap/internal/cg"
	"phonocmap/internal/config"
	"phonocmap/internal/core"
	"phonocmap/internal/router"
	"phonocmap/internal/scenario"
	"phonocmap/internal/topo"
)

// Request is the POST /v1/jobs payload. App is required; everything else
// defaults like the CLI: smallest square mesh of Crux routers with XY
// routing, SNR objective, R-PBLA, budget 20000, seed 1, single seed.
type Request struct {
	App       config.AppSpec  `json:"app"`
	Arch      config.ArchSpec `json:"arch,omitempty"`
	Objective string          `json:"objective,omitempty"`
	Algorithm string          `json:"algorithm,omitempty"`
	Budget    int             `json:"budget,omitempty"`
	Seed      int64           `json:"seed,omitempty"`
	// Seeds > 1 switches to islands mode: that many independent seeded
	// searches (seeds Seed, Seed+1, ...) run concurrently and the best
	// result wins.
	Seeds int `json:"seeds,omitempty"`
	// Analyses selects post-optimization analyses (wdm, power,
	// robustness, link_failures, sim) to run on the winning mapping; the
	// typed report comes back in JobResult. The block is part of the
	// job's cache identity.
	Analyses *scenario.AnalysesSpec `json:"analyses,omitempty"`
	// NoCache skips the result cache on both lookup and fill.
	NoCache bool `json:"no_cache,omitempty"`
}

// Spec is a fully normalized request: every default resolved, so equal
// Specs describe identical computations. It is the scenario compiler's
// spec — the same declarative shape (and the same canonical-JSON content
// address, Key) every other front end uses. The analyses block is part
// of the key, so two jobs differing only in requested analyses never
// alias to one cache entry.
type Spec = scenario.Spec

// Limits bounds what a single request may ask for.
type Limits struct {
	MaxBudget int
	MaxSeeds  int
}

// normalize resolves every default through the scenario compiler — the
// single normalization path shared with the CLI and the sweep engine, so
// the fronts cannot drift apart — and validates the result against the
// service's limits. Only the application graph is built here (cheap);
// the expensive network/problem construction is deferred to compile so
// cache hits skip it entirely.
func normalize(req Request, lim Limits) (Spec, error) {
	spec := Spec{
		App:       req.App,
		Arch:      req.Arch,
		Objective: req.Objective,
		Algorithm: req.Algorithm,
		Budget:    req.Budget,
		Seed:      req.Seed,
		Seeds:     req.Seeds,
		Analyses:  req.Analyses,
	}
	if _, err := spec.Normalize(); err != nil {
		return Spec{}, err
	}
	if spec.Budget < 0 || (lim.MaxBudget > 0 && spec.Budget > lim.MaxBudget) {
		return Spec{}, fmt.Errorf("service: budget %d out of range (1..%d)", spec.Budget, lim.MaxBudget)
	}
	if spec.Seeds < 0 || (lim.MaxSeeds > 0 && spec.Seeds > lim.MaxSeeds) {
		return Spec{}, fmt.Errorf("service: seeds %d out of range (1..%d)", spec.Seeds, lim.MaxSeeds)
	}
	return spec, nil
}

// compile builds the runnable scenario a normalized spec describes
// through the scenario compiler, including the Eq. 2 fit check. The
// caller owns the result (it is not safe for concurrent use).
func compile(spec Spec) (*scenario.Compiled, error) {
	return scenario.Compile(spec)
}

// JobStatus is the wire representation of a job's lifecycle state.
type JobStatus struct {
	ID        string `json:"id"`
	State     State  `json:"state"`
	Cached    bool   `json:"cached,omitempty"`
	Spec      Spec   `json:"spec"`
	Submitted string `json:"submitted,omitempty"`
	Started   string `json:"started,omitempty"`
	Finished  string `json:"finished,omitempty"`
	Evals     int    `json:"evals"`
	// IslandEvals is the per-island evaluation breakdown (one entry per
	// seed). Cache hits replay the live run's breakdown verbatim, so the
	// status shape is identical across hit and miss.
	IslandEvals []int       `json:"island_evals,omitempty"`
	Budget      int         `json:"budget"` // total across islands
	Best        *core.Score `json:"best,omitempty"`
	Error       string      `json:"error,omitempty"`
}

// JobResult is the GET /v1/jobs/{id}/result payload of a finished job.
type JobResult struct {
	ID         string       `json:"id"`
	State      State        `json:"state"`
	Cached     bool         `json:"cached,omitempty"`
	Algorithm  string       `json:"algorithm"`
	Objective  string       `json:"objective"`
	Mapping    core.Mapping `json:"mapping"`
	Score      core.Score   `json:"score"`
	Evals      int          `json:"evals"`
	DurationMs float64      `json:"duration_ms"`
	Seed       int64        `json:"seed"`
	Cancelled  bool         `json:"cancelled,omitempty"`
	// Report is the post-optimization analysis report of the winning
	// mapping, present when the job's spec requested analyses. Cache hits
	// replay the live run's report verbatim.
	Report *scenario.Report `json:"report,omitempty"`
	// Trace is the run's span record: improvement timeline, per-island
	// spans, time-to-best. Cache hits replay the live run's trace
	// verbatim, wall-clock fields included.
	Trace *scenario.RunTrace `json:"trace,omitempty"`
}

// TraceEvent is one incumbent improvement of one island — the scenario
// layer's event, shared with the local runner so traces cannot drift
// between backends.
type TraceEvent = scenario.TraceEvent

// JobTrace is the GET /v1/jobs/{id}/trace payload.
type JobTrace struct {
	ID    string       `json:"id"`
	State State        `json:"state"`
	Trace []TraceEvent `json:"trace"`
}

// AppInfo describes one bundled benchmark application.
type AppInfo struct {
	Name  string `json:"name"`
	Tasks int    `json:"tasks"`
	Edges int    `json:"edges"`
}

// Apps lists the bundled applications for the discovery endpoint.
func Apps() []AppInfo {
	names := cg.AppNames()
	out := make([]AppInfo, 0, len(names))
	for _, name := range names {
		g := cg.MustApp(name)
		out = append(out, AppInfo{Name: name, Tasks: g.NumTasks(), Edges: g.NumEdges()})
	}
	return out
}

// RouterInfo describes one built-in optical router architecture for the
// discovery endpoint.
type RouterInfo struct {
	Name      string `json:"name"`
	Rings     int    `json:"rings"`
	Crossings int    `json:"crossings"`
	Turns     int    `json:"turns"`
	// AllTurn reports whether the router supports every input/output turn
	// — the prerequisite for BFS rerouting and link-failure analysis.
	AllTurn bool `json:"all_turn"`
}

// Routers lists the built-in optical routers for GET /v1/routers —
// discovery parity with the CLI's 'phonocmap routers'.
func Routers() []RouterInfo {
	names := router.Names()
	out := make([]RouterInfo, 0, len(names))
	for _, name := range names {
		a, err := router.ByName(name)
		if err != nil {
			// Names and ByName are the same table; a mismatch is a bug.
			panic("service: router table inconsistent: " + err.Error())
		}
		out = append(out, RouterInfo{
			Name:      name,
			Rings:     a.RingCount(),
			Crossings: a.CrossingCount(),
			Turns:     len(a.SupportedTurns()),
			AllTurn:   router.CheckTurns(a, router.RequiredTurnsAll()) == nil,
		})
	}
	return out
}

// Topologies lists the built-in topology kinds for GET /v1/topologies.
func Topologies() []string { return topo.Kinds() }

// Health is the /healthz payload.
type Health struct {
	Status string `json:"status"`
	// Version is the build's version string (module version, VCS
	// revision, or "devel"), so fleet dashboards can tell instances
	// apart.
	Version string `json:"version"`
	Workers int    `json:"workers"`
	// WorkersBusy and WorkerUtilization expose live execution load so a
	// fleet coordinator can pick the least-loaded node from one cheap
	// healthz probe instead of parsing the full /metrics exposition.
	WorkersBusy       int           `json:"workers_busy"`
	WorkerUtilization float64       `json:"worker_utilization"`
	QueueDepth        int           `json:"queue_depth"`
	QueueCapacity     int           `json:"queue_capacity"`
	Jobs              map[State]int `json:"jobs"`
	Cache             CacheStats    `json:"cache"`
	// TotalEvals counts mapping evaluations actually performed since the
	// server started (finished jobs plus in-flight progress; cache hits
	// replay without evaluating and do not count). EvalsPerSec is the
	// lifetime average throughput — under the paper's equal-budget
	// protocol, evaluation throughput is the service's effective search
	// capacity.
	TotalEvals  int64   `json:"total_evals"`
	EvalsPerSec float64 `json:"evals_per_sec"`
	UptimeSec   float64 `json:"uptime_sec"`
}
