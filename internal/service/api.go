// Package service implements phonocmap-serve: a long-lived HTTP JSON
// service that accepts mapping-DSE jobs, executes them on a bounded
// worker pool with per-job cancellation, and caches results so duplicate
// submissions are answered instantly.
//
// Endpoints:
//
//	POST   /v1/jobs            submit a job (Request) -> JobStatus
//	GET    /v1/jobs            list known jobs        -> []JobStatus
//	GET    /v1/jobs/{id}        job status             -> JobStatus
//	GET    /v1/jobs/{id}/result finished result        -> JobResult
//	GET    /v1/jobs/{id}/trace  convergence trace      -> JobTrace
//	DELETE /v1/jobs/{id}        cancel                 -> JobStatus
//	POST   /v1/sweeps          submit a design-space sweep (SweepRequest) -> SweepStatus
//	GET    /v1/sweeps          list known sweeps      -> []SweepStatus
//	GET    /v1/sweeps/{id}        live per-cell progress -> SweepStatus
//	GET    /v1/sweeps/{id}/result aggregated results     -> SweepResult
//	DELETE /v1/sweeps/{id}        cancel                 -> SweepStatus
//	GET    /v1/apps            bundled applications   -> []AppInfo
//	GET    /v1/algorithms      available algorithms   -> []string
//	GET    /healthz            liveness + pool stats  -> Health
//
// A sweep expands a grid (apps x architectures x objectives x
// algorithms x budgets x seeds) into cells; every cell is exactly one
// job spec, executed on the same worker pool and answered from the same
// content-addressed result cache as individually submitted jobs.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"phonocmap/internal/cg"
	"phonocmap/internal/config"
	"phonocmap/internal/core"
	"phonocmap/internal/search"
)

// Request is the POST /v1/jobs payload. App is required; everything else
// defaults like the CLI: smallest square mesh of Crux routers with XY
// routing, SNR objective, R-PBLA, budget 20000, seed 1, single seed.
type Request struct {
	App       config.AppSpec  `json:"app"`
	Arch      config.ArchSpec `json:"arch,omitempty"`
	Objective string          `json:"objective,omitempty"`
	Algorithm string          `json:"algorithm,omitempty"`
	Budget    int             `json:"budget,omitempty"`
	Seed      int64           `json:"seed,omitempty"`
	// Seeds > 1 switches to islands mode: that many independent seeded
	// searches (seeds Seed, Seed+1, ...) run concurrently and the best
	// result wins.
	Seeds int `json:"seeds,omitempty"`
	// NoCache skips the result cache on both lookup and fill.
	NoCache bool `json:"no_cache,omitempty"`
}

// Spec is a fully normalized request: every default resolved, so equal
// Specs describe identical computations. Its canonical JSON is the
// content-addressed cache key.
type Spec struct {
	App       config.AppSpec  `json:"app"`
	Arch      config.ArchSpec `json:"arch"`
	Objective string          `json:"objective"`
	Algorithm string          `json:"algorithm"`
	Budget    int             `json:"budget"`
	Seed      int64           `json:"seed"`
	Seeds     int             `json:"seeds"`
}

// Key returns the content address of the spec: the hex SHA-256 of its
// canonical JSON (struct field order is fixed, so encoding is stable).
func (s Spec) Key() string {
	b, err := json.Marshal(s)
	if err != nil {
		// Spec is plain data; marshalling cannot fail.
		panic("service: spec marshal failed: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Limits bounds what a single request may ask for.
type Limits struct {
	MaxBudget int
	MaxSeeds  int
}

// normalize validates a request against the limits and resolves every
// default, returning the canonical spec. Architecture defaults come from
// config.ArchSpec.Normalize and the rest from config.Experiment.Normalize
// — the same resolution the CLI uses, so the two fronts cannot drift
// apart. Only the application graph is built here (cheap); the expensive
// network/problem construction is deferred to buildProblem so cache hits
// skip it entirely.
func normalize(req Request, lim Limits) (Spec, error) {
	app, err := req.App.Build()
	if err != nil {
		return Spec{}, err
	}
	arch := req.Arch
	arch.Normalize(app.NumTasks())
	exp := config.Experiment{
		App:       req.App,
		Arch:      arch,
		Objective: req.Objective,
		Algorithm: req.Algorithm,
		Budget:    req.Budget,
		Seed:      req.Seed,
	}
	exp.Normalize()
	spec := Spec{
		App:       exp.App,
		Arch:      exp.Arch,
		Objective: exp.Objective,
		Algorithm: exp.Algorithm,
		Budget:    exp.Budget,
		Seed:      exp.Seed,
		Seeds:     req.Seeds,
	}
	if spec.Seeds == 0 {
		spec.Seeds = 1
	}

	if spec.Budget < 0 || (lim.MaxBudget > 0 && spec.Budget > lim.MaxBudget) {
		return Spec{}, fmt.Errorf("service: budget %d out of range (1..%d)", spec.Budget, lim.MaxBudget)
	}
	if spec.Seeds < 0 || (lim.MaxSeeds > 0 && spec.Seeds > lim.MaxSeeds) {
		return Spec{}, fmt.Errorf("service: seeds %d out of range (1..%d)", spec.Seeds, lim.MaxSeeds)
	}
	if _, err := search.New(spec.Algorithm); err != nil {
		return Spec{}, err
	}
	if _, err := core.ParseObjective(spec.Objective); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// buildProblem constructs the runtime problem a normalized spec
// describes, including the Eq. 2 fit check. The caller owns the problem
// (it is not safe for concurrent use).
func buildProblem(spec Spec) (*core.Problem, error) {
	app, err := spec.App.Build()
	if err != nil {
		return nil, err
	}
	nw, err := spec.Arch.Build()
	if err != nil {
		return nil, err
	}
	obj, err := core.ParseObjective(spec.Objective)
	if err != nil {
		return nil, err
	}
	return core.NewProblem(app, nw, obj)
}

// JobStatus is the wire representation of a job's lifecycle state.
type JobStatus struct {
	ID        string `json:"id"`
	State     State  `json:"state"`
	Cached    bool   `json:"cached,omitempty"`
	Spec      Spec   `json:"spec"`
	Submitted string `json:"submitted,omitempty"`
	Started   string `json:"started,omitempty"`
	Finished  string `json:"finished,omitempty"`
	Evals     int    `json:"evals"`
	// IslandEvals is the per-island evaluation breakdown (one entry per
	// seed). Cache hits replay the live run's breakdown verbatim, so the
	// status shape is identical across hit and miss.
	IslandEvals []int       `json:"island_evals,omitempty"`
	Budget      int         `json:"budget"` // total across islands
	Best        *core.Score `json:"best,omitempty"`
	Error       string      `json:"error,omitempty"`
}

// JobResult is the GET /v1/jobs/{id}/result payload of a finished job.
type JobResult struct {
	ID         string       `json:"id"`
	State      State        `json:"state"`
	Cached     bool         `json:"cached,omitempty"`
	Algorithm  string       `json:"algorithm"`
	Objective  string       `json:"objective"`
	Mapping    core.Mapping `json:"mapping"`
	Score      core.Score   `json:"score"`
	Evals      int          `json:"evals"`
	DurationMs float64      `json:"duration_ms"`
	Seed       int64        `json:"seed"`
	Cancelled  bool         `json:"cancelled,omitempty"`
}

// TraceEvent is one incumbent improvement of one island.
type TraceEvent struct {
	Island int        `json:"island"`
	Evals  int        `json:"evals"`
	Score  core.Score `json:"score"`
}

// JobTrace is the GET /v1/jobs/{id}/trace payload.
type JobTrace struct {
	ID    string       `json:"id"`
	State State        `json:"state"`
	Trace []TraceEvent `json:"trace"`
}

// AppInfo describes one bundled benchmark application.
type AppInfo struct {
	Name  string `json:"name"`
	Tasks int    `json:"tasks"`
	Edges int    `json:"edges"`
}

// Apps lists the bundled applications for the discovery endpoint.
func Apps() []AppInfo {
	names := cg.AppNames()
	out := make([]AppInfo, 0, len(names))
	for _, name := range names {
		g := cg.MustApp(name)
		out = append(out, AppInfo{Name: name, Tasks: g.NumTasks(), Edges: g.NumEdges()})
	}
	return out
}

// Health is the /healthz payload.
type Health struct {
	Status        string        `json:"status"`
	Workers       int           `json:"workers"`
	QueueDepth    int           `json:"queue_depth"`
	QueueCapacity int           `json:"queue_capacity"`
	Jobs          map[State]int `json:"jobs"`
	Cache         CacheStats    `json:"cache"`
	// TotalEvals counts mapping evaluations actually performed since the
	// server started (finished jobs plus in-flight progress; cache hits
	// replay without evaluating and do not count). EvalsPerSec is the
	// lifetime average throughput — under the paper's equal-budget
	// protocol, evaluation throughput is the service's effective search
	// capacity.
	TotalEvals  int64   `json:"total_evals"`
	EvalsPerSec float64 `json:"evals_per_sec"`
	UptimeSec   float64 `json:"uptime_sec"`
}
