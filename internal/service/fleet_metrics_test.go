// The fleet coordinator's metric families ride on a host server's
// registry (fleet.Config.Registry), so their exposition contract is
// pinned here next to the server's own families. The test lives in an
// external package because the in-package tests cannot import
// internal/fleet: fleet depends on the client SDK, which depends on
// this package's API types.
package service_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"phonocmap/client"
	"phonocmap/internal/config"
	"phonocmap/internal/fleet"
	"phonocmap/internal/runner"
	"phonocmap/internal/service"
	"phonocmap/internal/sweep"
)

// fleetMetricFamilies is the documented contract of the
// phonocmap_fleet_* exposition: every family a hosted coordinator adds
// to the server's /metrics, with its type.
var fleetMetricFamilies = map[string]string{
	"phonocmap_fleet_cells_dispatched_total": "counter",
	"phonocmap_fleet_cells_retried_total":    "counter",
	"phonocmap_fleet_cells_migrated_total":   "counter",
	"phonocmap_fleet_cells_deduped_total":    "counter",
	"phonocmap_fleet_node_inflight":          "gauge",
	"phonocmap_fleet_node_healthy":           "gauge",
	"phonocmap_fleet_nodes":                  "gauge",
	"phonocmap_fleet_nodes_healthy":          "gauge",
}

// scrapeFamilies fetches /metrics and returns family -> type plus
// series -> value, with just enough parsing for the assertions below
// (the strict line-shape validation lives in the in-package suite).
func scrapeFamilies(t *testing.T, base string) (map[string]string, map[string]float64) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics returned %d, want 200", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	types := make(map[string]string)
	samples := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.SplitN(line[len("# TYPE "):], " ", 2)
			if len(parts) == 2 {
				types[parts[0]] = parts[1]
			}
		case strings.HasPrefix(line, "#"):
		default:
			idx := strings.LastIndexByte(line, ' ')
			if idx < 0 {
				t.Fatalf("malformed sample line: %q", line)
			}
			f, err := strconv.ParseFloat(line[idx+1:], 64)
			if err != nil {
				t.Fatalf("sample %q has unparseable value: %v", line, err)
			}
			samples[line[:idx]] = f
		}
	}
	return types, samples
}

// TestFleetMetricsExposition hosts a coordinator on one server's
// registry, sweeps through a two-node fleet, and asserts every
// phonocmap_fleet_* family appears on that server's /metrics with the
// right type and with counters reflecting the sweep that ran.
func TestFleetMetricsExposition(t *testing.T) {
	// The host: the server whose /metrics the coordinator publishes on.
	// It is also the fleet's first node, the common production shape —
	// a serve instance coordinating itself plus peers.
	newServer := func(workers int) (*service.Server, *httptest.Server) {
		srv := service.New(service.Config{Workers: workers})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		})
		return srv, ts
	}
	host, hostTS := newServer(1)
	_, peerTS := newServer(1)

	fr, err := fleet.New(fleet.Config{
		Servers:       []string{hostTS.URL, peerTS.URL},
		ProbeInterval: 10 * time.Second,
		Registry:      host.MetricsRegistry(),
		ClientOptions: []client.Option{client.WithPollInterval(5 * time.Millisecond)},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fr.Close() })

	grid := sweep.Spec{
		Apps:       []config.AppSpec{{Builtin: "PIP"}},
		Objectives: []string{"snr"},
		Algorithms: []string{"rs"},
		Budgets:    []int{150},
		Seeds:      []int64{1, 2, 3, 4},
	}
	res, err := fr.RunSweep(context.Background(), grid, runner.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		if c.Error != "" {
			t.Fatalf("cell %d failed: %s", c.Index, c.Error)
		}
	}

	types, samples := scrapeFamilies(t, hostTS.URL)
	for family, wantType := range fleetMetricFamilies {
		if got, ok := types[family]; !ok {
			t.Errorf("family %s missing from the host's /metrics", family)
		} else if got != wantType {
			t.Errorf("family %s has type %q, want %q", family, got, wantType)
		}
	}
	if v := samples["phonocmap_fleet_cells_dispatched_total"]; v < 4 {
		t.Errorf("phonocmap_fleet_cells_dispatched_total = %v, want >= 4", v)
	}
	if v := samples["phonocmap_fleet_nodes"]; v != 2 {
		t.Errorf("phonocmap_fleet_nodes = %v, want 2", v)
	}
	if v := samples["phonocmap_fleet_nodes_healthy"]; v != 2 {
		t.Errorf("phonocmap_fleet_nodes_healthy = %v, want 2 (both nodes probed up)", v)
	}
	// The per-node vectors carry one child per configured node.
	for _, url := range []string{hostTS.URL, peerTS.URL} {
		series := `phonocmap_fleet_node_healthy{node="` + url + `"}`
		if v, ok := samples[series]; !ok {
			t.Errorf("series %s missing", series)
		} else if v != 1 {
			t.Errorf("%s = %v, want 1", series, v)
		}
		inflight := `phonocmap_fleet_node_inflight{node="` + url + `"}`
		if v, ok := samples[inflight]; !ok {
			t.Errorf("series %s missing", inflight)
		} else if v != 0 {
			t.Errorf("%s = %v, want 0 after the sweep drained", inflight, v)
		}
	}
}
