package service

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"phonocmap/internal/core"
	"phonocmap/internal/scenario"
	"phonocmap/internal/store"
	"phonocmap/internal/topo"
)

// cacheSample fabricates a realistic cached computation for key i.
func cacheSample(i int) (core.RunResult, []TraceEvent, []int, *scenario.Report) {
	res := core.RunResult{
		Algorithm: "rs",
		Mapping:   core.Mapping{topo.TileID(i), topo.TileID(i + 1)},
		Score:     core.Score{Cost: float64(i) + 0.5, WorstSNRDB: 12.5},
		Evals:     100 + i,
		Duration:  time.Duration(i) * time.Millisecond,
		Seed:      int64(i),
	}
	trace := []TraceEvent{{Island: 0, Evals: i, Score: res.Score}}
	islands := []int{i, i * 2}
	rep := &scenario.Report{Power: &scenario.PowerReport{Feasible: i%2 == 0}}
	return res, trace, islands, rep
}

func mustOpenFileStore(t *testing.T, dir string) *store.File {
	t.Helper()
	st, err := store.OpenFile(dir, store.FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestCacheWriteBehindPersists proves a put lands in the store and that a
// fresh cache over the same directory reads it through byte-identically.
func TestCacheWriteBehindPersists(t *testing.T) {
	dir := t.TempDir()
	c := newResultCache(4, mustOpenFileStore(t, dir))
	res, trace, islands, rep := cacheSample(7)
	c.put("k7", res, trace, islands, rep)
	c.close()

	c2 := newResultCache(4, mustOpenFileStore(t, dir))
	defer c2.close()
	gr, gt, gi, grep, ok := c2.get("k7")
	if !ok {
		t.Fatal("entry did not survive the cache restart")
	}
	assertJSONEqual(t, "result", gr, res)
	assertJSONEqual(t, "trace", gt, trace)
	assertJSONEqual(t, "islands", gi, islands)
	assertJSONEqual(t, "report", grep, rep)
	st := c2.stats()
	if st.Store == nil || st.Store.Hits != 1 || st.Store.Gets != 1 {
		t.Errorf("store stats = %+v, want 1 get / 1 hit", st.Store)
	}
}

// TestCacheZeroCapWritesThrough is the satellite contract: a
// zero-or-negative LRU capacity disables only the memory tier — with a
// store attached the result still writes through to disk and the put
// still counts.
func TestCacheZeroCapWritesThrough(t *testing.T) {
	for _, capacity := range []int{0, -1} {
		t.Run(fmt.Sprintf("cap=%d", capacity), func(t *testing.T) {
			dir := t.TempDir()
			c := newResultCache(capacity, mustOpenFileStore(t, dir))
			defer c.close()
			res, trace, islands, rep := cacheSample(3)
			c.put("k3", res, trace, islands, rep)
			c.flush()
			if got := c.storePuts.Value(); got != 1 {
				t.Errorf("store puts = %d, want 1", got)
			}
			if c.store.Len() != 1 {
				t.Errorf("store entries = %d, want 1", c.store.Len())
			}
			if c.size() != 0 {
				t.Errorf("memory tier held %d entries with capacity %d", c.size(), capacity)
			}
			// Disk-only reads serve straight from the store.
			gr, _, _, _, ok := c.get("k3")
			if !ok || gr.Score.Cost != res.Score.Cost {
				t.Error("disk-only read-through failed")
			}
			if c.size() != 0 {
				t.Error("read-through promoted into a disabled memory tier")
			}
		})
	}
}

// TestCacheClearEmptiesBothTiers exercises the DELETE /v1/cache
// primitive.
func TestCacheClearEmptiesBothTiers(t *testing.T) {
	dir := t.TempDir()
	c := newResultCache(8, mustOpenFileStore(t, dir))
	defer c.close()
	for i := 0; i < 5; i++ {
		res, trace, islands, rep := cacheSample(i)
		c.put(fmt.Sprintf("k%d", i), res, trace, islands, rep)
	}
	memory, persisted := c.clear()
	if memory != 5 || persisted != 5 {
		t.Errorf("clear = (%d, %d), want (5, 5)", memory, persisted)
	}
	if c.size() != 0 || c.store.Len() != 0 {
		t.Errorf("tiers not empty after clear: memory=%d store=%d", c.size(), c.store.Len())
	}
	if _, _, _, _, ok := c.get("k0"); ok {
		t.Error("cleared key still served")
	}
}

// seedStore persists n entries with strictly increasing mtimes so the
// warming order is unambiguous. Returns the store directory.
func seedStore(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	st := mustOpenFileStore(t, dir)
	base := time.Now().Add(-24 * time.Hour)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%04d", i)
		res, trace, islands, rep := cacheSample(i)
		if err := st.Put(key, store.Entry{
			Key: key, Result: res, Trace: trace, IslandEvals: islands, Report: rep,
		}); err != nil {
			t.Fatal(err)
		}
		// Age each entry explicitly: entry i is i seconds newer than entry
		// 0, so "most recent N" is exactly the highest-numbered N keys.
		mt := base.Add(time.Duration(i) * time.Second)
		if err := os.Chtimes(store.EntryPath(dir, key), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestCacheWarmingMostRecent boots a 100-entry LRU over 500 persisted
// entries: exactly the most-recent 100 must be warm, in store recency
// order.
func TestCacheWarmingMostRecent(t *testing.T) {
	const persisted, capacity = 500, 100
	dir := seedStore(t, persisted)
	c := newResultCache(capacity, mustOpenFileStore(t, dir))
	defer c.close()

	warmed := c.warm(context.Background(), capacity, 8)
	if warmed != capacity {
		t.Fatalf("warmed = %d, want %d", warmed, capacity)
	}
	if c.size() != capacity {
		t.Fatalf("memory tier = %d entries, want %d", c.size(), capacity)
	}
	c.mu.Lock()
	for i := 0; i < persisted; i++ {
		key := fmt.Sprintf("k%04d", i)
		_, ok := c.items[key]
		if want := i >= persisted-capacity; ok != want {
			t.Errorf("key %s warm=%v, want %v", key, ok, want)
		}
	}
	c.mu.Unlock()
	if got := int(c.warmed.Load()); got != capacity {
		t.Errorf("warmed counter = %d, want %d", got, capacity)
	}
	// Warming reads are real store reads: gets and hits both count.
	if g, h := c.storeGets.Value(), c.storeHits.Value(); g != capacity || h != capacity {
		t.Errorf("store gets/hits = %d/%d, want %d/%d", g, h, capacity, capacity)
	}
}

// TestCacheWarmingRespectsContext proves a cancelled context stops the
// preload instead of blocking boot.
func TestCacheWarmingRespectsContext(t *testing.T) {
	dir := seedStore(t, 50)
	c := newResultCache(50, mustOpenFileStore(t, dir))
	defer c.close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if warmed := c.warm(ctx, 50, 4); warmed != 0 {
		t.Errorf("cancelled warm loaded %d entries, want 0", warmed)
	}
	if c.size() != 0 {
		t.Errorf("cancelled warm left %d entries in memory", c.size())
	}
}

// TestCacheWarmedHitByteIdentical completes the warming satellite: an
// entry produced by a live put, warmed into a fresh cache after a
// restart, replays byte-for-byte.
func TestCacheWarmedHitByteIdentical(t *testing.T) {
	dir := t.TempDir()
	c := newResultCache(4, mustOpenFileStore(t, dir))
	res, trace, islands, rep := cacheSample(42)
	c.put("answer", res, trace, islands, rep)
	gr, gt, gi, grep, ok := c.get("answer")
	if !ok {
		t.Fatal("live entry missing")
	}
	live, err := json.Marshal(struct {
		R core.RunResult
		T []TraceEvent
		I []int
		P *scenario.Report
	}{gr, gt, gi, grep})
	if err != nil {
		t.Fatal(err)
	}
	c.close()

	c2 := newResultCache(4, mustOpenFileStore(t, dir))
	defer c2.close()
	if warmed := c2.warm(context.Background(), 4, 2); warmed != 1 {
		t.Fatalf("warmed = %d, want 1", warmed)
	}
	wr, wt, wi, wrep, ok := c2.get("answer")
	if !ok {
		t.Fatal("warmed entry missing")
	}
	if c2.storeGets.Value() != 1 {
		t.Error("warmed hit went back to disk")
	}
	warmBytes, err := json.Marshal(struct {
		R core.RunResult
		T []TraceEvent
		I []int
		P *scenario.Report
	}{wr, wt, wi, wrep})
	if err != nil {
		t.Fatal(err)
	}
	if string(live) != string(warmBytes) {
		t.Errorf("warmed hit differs from live run:\nlive %s\nwarm %s", live, warmBytes)
	}
}

func assertJSONEqual(t *testing.T, what string, got, want any) {
	t.Helper()
	gb, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if string(gb) != string(wb) {
		t.Errorf("%s differs:\ngot  %s\nwant %s", what, gb, wb)
	}
}
