package service

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"phonocmap/internal/core"
	"phonocmap/internal/scenario"
	"phonocmap/internal/search"
	"phonocmap/internal/store"
	"phonocmap/internal/sweep"
	"phonocmap/internal/version"
)

// Config sizes the service.
type Config struct {
	// Addr is the listen address for ListenAndServe (default ":8080").
	Addr string
	// Workers is the worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueSize bounds the number of jobs waiting for a worker (default
	// 64). Submissions beyond it are rejected with 503.
	QueueSize int
	// EvalWorkers is the per-run batch-evaluation worker count applied
	// process-wide (default 1, i.e. sequential evaluation). It trades
	// intra-run parallelism against the Workers pool's inter-job
	// parallelism without changing any result: evaluation worker count
	// is bit-identity-preserving, so cached and remote results stay
	// byte-identical whatever the setting.
	EvalWorkers int
	// CacheSize bounds the result cache entries (default 256; negative
	// disables the in-memory tier — with a Store attached the cache then
	// runs disk-only: results persist and replay, nothing stays resident).
	CacheSize int
	// Store is the persistent result store behind the in-memory cache
	// (read-through on miss, write-behind on completion, warmed at boot).
	// Nil means memory-only. The server takes ownership: Shutdown drains
	// pending writes and closes it.
	Store store.Store
	// MaxJobs bounds the job registry; the oldest finished jobs are
	// evicted past it (default 1024).
	MaxJobs int
	// MaxBudget caps a single request's per-seed evaluation budget
	// (default 5,000,000).
	MaxBudget int
	// MaxSeeds caps a request's island count (default 64).
	MaxSeeds int
	// MaxSweepCells caps the grid size of a single sweep request
	// (default 1024). Every cell is bounded by MaxBudget/MaxSeeds like an
	// individual job.
	MaxSweepCells int
	// MaxSweeps bounds the sweep registry; the oldest finished sweeps are
	// evicted past it (default 128).
	MaxSweeps int
	// Logger receives the service's structured logs: the request access
	// log (debug), job and sweep lifecycle with their IDs (info), and
	// worker-pool events (debug). Nil discards everything.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.EvalWorkers <= 0 {
		c.EvalWorkers = 1
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.MaxBudget <= 0 {
		c.MaxBudget = 5_000_000
	}
	if c.MaxSeeds <= 0 {
		c.MaxSeeds = 64
	}
	if c.MaxSweepCells <= 0 {
		c.MaxSweepCells = 1024
	}
	if c.MaxSweeps <= 0 {
		c.MaxSweeps = 128
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c
}

// Server is the phonocmap-serve service: an HTTP API over a bounded job
// queue, a worker pool of optimization runners, and a result cache.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	handler http.Handler // mux wrapped with the telemetry middleware
	queue   chan *Job
	cache   *resultCache
	logger  *slog.Logger

	// metrics is the single source of runtime truth: /metrics renders
	// its registry and /healthz reads the same instruments.
	metrics *serverMetrics

	baseCtx context.Context
	stop    context.CancelFunc
	workers sync.WaitGroup

	nextID    atomic.Uint64
	nextSweep atomic.Uint64
	closed    atomic.Bool

	started time.Time

	mu         sync.Mutex
	jobs       map[string]*Job
	order      []string // insertion order, for listing and eviction
	sweeps     map[string]*Sweep
	sweepOrder []string
}

// New builds a server and starts its worker pool. Call Shutdown to stop
// it; Handler exposes the HTTP API (ListenAndServe binds it to
// cfg.Addr).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		queue:   make(chan *Job, cfg.QueueSize),
		cache:   newResultCache(cfg.CacheSize, cfg.Store),
		logger:  cfg.Logger,
		baseCtx: ctx,
		stop:    cancel,
		jobs:    make(map[string]*Job),
		sweeps:  make(map[string]*Sweep),
		started: time.Now(),
	}
	core.SetDefaultEvalWorkers(cfg.EvalWorkers)
	s.initMetrics()
	s.routes()
	s.handler = s.instrument(s.mux)
	// Boot-time cache warming: preload the most recently persisted
	// results into the LRU (bounded concurrency; decode dominates) so a
	// restarted node's hottest keys hit memory from the first request.
	// Read-through would answer them from disk anyway — warming only
	// moves that cost from the first requests to boot.
	if warmed := s.cache.warm(ctx, cfg.CacheSize, cfg.Workers); warmed > 0 {
		s.logger.Info("result cache warmed from store", "entries", warmed)
	}
	s.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	s.logger.Info("server started",
		"workers", cfg.Workers, "queue_size", cfg.QueueSize, "cache_size", cfg.CacheSize,
		"eval_workers", cfg.EvalWorkers, "persistent_store", cfg.Store != nil)
	return s
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	s.mux.HandleFunc("GET /v1/sweeps", s.handleSweepList)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepStatus)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/result", s.handleSweepResult)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleSweepCancel)
	s.mux.HandleFunc("GET /v1/cache", s.handleCacheStats)
	s.mux.HandleFunc("DELETE /v1/cache", s.handleCacheClear)
	s.mux.HandleFunc("GET /v1/apps", s.handleApps)
	s.mux.HandleFunc("GET /v1/algorithms", s.handleAlgorithms)
	s.mux.HandleFunc("GET /v1/routers", s.handleRouters)
	s.mux.HandleFunc("GET /v1/topologies", s.handleTopologies)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
}

// Handler returns the HTTP API, wrapped with the telemetry middleware
// (per-endpoint request counters, latency histograms, access log).
func (s *Server) Handler() http.Handler { return s.handler }

// Config returns the effective configuration (defaults resolved).
func (s *Server) Config() Config { return s.cfg }

// ListenAndServe binds the API to cfg.Addr and serves until ctx is done,
// then shuts the HTTP listener and the worker pool down gracefully
// (running jobs are cancelled through context propagation).
func (s *Server) ListenAndServe(ctx context.Context) error {
	hs := &http.Server{
		Addr:    s.cfg.Addr,
		Handler: s.handler,
		// A public long-lived service must bound slow/idle connections or
		// a slowloris-style client exhausts file descriptors.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		s.Shutdown(context.Background())
		return err
	case <-ctx.Done():
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		// Cancel the jobs BEFORE draining the listener: SSE event streams
		// stay open for the life of their job, so draining first would
		// wait out the whole timeout whenever a stream is watching a
		// running job (http.Server.Shutdown does not cancel request
		// contexts). Cancellation closes every job's Done channel, the
		// streams emit their terminal snapshot and exit, and the drain
		// below completes promptly.
		err := s.Shutdown(shCtx)
		if herr := hs.Shutdown(shCtx); err == nil {
			err = herr
		}
		return err
	}
}

// Shutdown stops accepting jobs, cancels every queued and running job,
// and waits for the workers to drain (bounded by ctx).
func (s *Server) Shutdown(ctx context.Context) error {
	s.closed.Store(true)
	s.stop() // cancels baseCtx -> every job context
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	// Flush anything still sitting in the queue (workers exited without
	// draining it) to a terminal state so pollers see "cancelled".
	for {
		select {
		case j := <-s.queue:
			j.Cancel()
		default:
			// Drain the write-behind backlog and close the persistent
			// store: everything the workers completed is durable before
			// Shutdown returns, so a restarted node with the same cache
			// directory replays all of it.
			s.cache.close()
			return err
		}
	}
}

// worker executes jobs from the queue until shutdown.
func (s *Server) worker() {
	defer s.workers.Done()
	defer s.logger.Debug("worker stopped")
	s.logger.Debug("worker started")
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case j := <-s.queue:
			s.metrics.workersBusy.Add(1)
			s.runJob(j)
			s.metrics.workersBusy.Add(-1)
		}
	}
}

// runJob executes one dequeued job end to end: the optimization run,
// then the spec's post-optimization analyses on the winning mapping.
func (s *Server) runJob(j *Job) {
	if !j.markRunning() {
		return // cancelled while queued
	}
	defer j.cancel() // release the job context resources
	// Fold the job's evaluations into the lifetime throughput counter
	// once it settles (all exit paths below reach a terminal state).
	defer func() { s.metrics.evalsDone.Add(int64(j.foldEvals())) }()
	defer func() {
		st := j.status()
		s.logger.Info("job finished",
			"job", j.id, "state", st.State, "evals", st.Evals, "error", st.Error)
	}()
	s.logger.Debug("job started", "job", j.id, "algorithm", j.spec.Algorithm, "budget", j.spec.Budget)

	var trace []TraceEvent
	// The one islands/single-seed dispatch every backend shares; the
	// job's counters and trace feed off its observers.
	res, err := j.comp.OptimizeObserved(j.ctx, scenario.Observers{
		OnImprove:  j.improve,
		OnProgress: j.observe,
	})
	switch {
	case err != nil && j.ctx.Err() != nil:
		j.finish(StateCancelled, nil, nil, err)
	case err != nil:
		j.finish(StateFailed, nil, nil, err)
	case res.Cancelled:
		// Truncated by cancellation (res.Cancelled is false for runs that
		// spent their whole budget even if the cancel landed late, so
		// complete results are never mislabelled or lost from the cache).
		// The analyses are skipped: they take no cancellation context, so
		// running them here would keep the worker busy long after the
		// DELETE (or shutdown) that asked it to stop. The partial result
		// ships without a report and is never cached.
		r := res
		j.finish(StateCancelled, &r, nil, nil)
	default:
		rep, aerr := j.comp.Analyze(res.Mapping, res.Score)
		if aerr != nil {
			// The optimization spent its budget but the requested analysis
			// could not run; that is a failed job, not a silent success
			// with a missing report.
			j.finish(StateFailed, nil, nil, aerr)
			return
		}
		r := res
		j.finish(StateDone, &r, rep, nil)
		if !j.noCache {
			_, trace = j.snapshotTrace()
			s.cache.put(j.key, res, trace, j.snapshotIslandEvals(), rep)
		}
	}
}

// evictOldestTerminal compacts an insertion-ordered registry down
// toward limit by deleting the oldest entries that reached a terminal
// state (live entries are never evicted, so the registry may
// transiently exceed the limit). It returns the compacted order.
func evictOldestTerminal[T any](order []string, entries map[string]T, limit int, terminal func(T) bool) []string {
	if len(order) <= limit {
		return order
	}
	kept := order[:0]
	excess := len(order) - limit
	for _, id := range order {
		e, ok := entries[id]
		if excess > 0 && ok && terminal(e) {
			delete(entries, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	return kept
}

// register stores a job, evicting the oldest finished jobs past MaxJobs.
func (s *Server) register(j *Job) {
	s.metrics.jobsSubmitted.Inc()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.order = evictOldestTerminal(s.order, s.jobs, s.cfg.MaxJobs,
		func(j *Job) bool { return j.currentState().Terminal() })
}

func (s *Server) job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// newJobID mints the next job identifier.
func (s *Server) newJobID() string {
	return fmt.Sprintf("job-%06d", s.nextID.Add(1))
}

// registerSweep stores a sweep, evicting the oldest finished sweeps past
// MaxSweeps.
func (s *Server) registerSweep(sw *Sweep) {
	s.metrics.sweepsSubmitted.Inc()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweeps[sw.id] = sw
	s.sweepOrder = append(s.sweepOrder, sw.id)
	s.sweepOrder = evictOldestTerminal(s.sweepOrder, s.sweeps, s.cfg.MaxSweeps,
		func(sw *Sweep) bool { return sw.currentState().Terminal() })
}

func (s *Server) sweepByID(id string) (*Sweep, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	return sw, ok
}

// activeSweeps counts the sweeps that have not yet reached a terminal
// state — the admission-control gauge for handleSweepSubmit.
func (s *Server) activeSweeps() int {
	s.mu.Lock()
	sweeps := make([]*Sweep, 0, len(s.sweeps))
	for _, sw := range s.sweeps {
		sweeps = append(sweeps, sw)
	}
	s.mu.Unlock()
	active := 0
	for _, sw := range sweeps {
		if !sw.currentState().Terminal() {
			active++
		}
	}
	return active
}

// --- HTTP handlers ---

// maxRequestBytes bounds submit payloads: generous for any legitimate
// custom app graph or sweep grid, small enough that a flood of oversized
// bodies cannot balloon decoder memory.
const maxRequestBytes = 4 << 20

// writeJSON is the service's single response writer; writeError layers
// the structured error envelope on top of it.
//
//phonocmap:envelope
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		writeError(w, CodeShuttingDown, "server is shutting down", nil)
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		writeError(w, CodeInvalidRequest, fmt.Sprintf("bad request body: %v", err), nil)
		return
	}
	spec, err := normalize(req, Limits{MaxBudget: s.cfg.MaxBudget, MaxSeeds: s.cfg.MaxSeeds})
	if err != nil {
		writeError(w, CodeInvalidSpec, err.Error(), nil)
		return
	}
	key := spec.Key()
	id := s.newJobID()

	if !req.NoCache {
		if res, trace, islandEvals, report, ok := s.cache.get(key); ok {
			j := newCachedJob(id, spec, key, res, trace, islandEvals, report)
			s.register(j)
			s.logger.Info("job replayed from cache", "job", id)
			writeJSON(w, http.StatusOK, j.status())
			return
		}
	}

	// Cache miss: now pay for the network/problem construction (and get
	// the Eq. 2 fit check) before committing the job to the queue.
	comp, err := compile(spec)
	if err != nil {
		writeError(w, CodeInvalidSpec, err.Error(), nil)
		return
	}

	j := newJob(id, spec, key, comp, req.NoCache, s.baseCtx)
	select {
	case s.queue <- j:
		// Re-check after the enqueue: a Shutdown that began between the
		// closed check above and this send may already have drained the
		// queue and stopped the workers, which would strand the job in
		// "queued" forever. Cancelling here guarantees it reaches a
		// terminal state either way.
		if s.closed.Load() {
			j.Cancel()
		}
		s.register(j)
		s.logger.Info("job accepted",
			"job", id, "algorithm", spec.Algorithm, "budget", spec.Budget, "seeds", spec.Seeds)
		writeJSON(w, http.StatusAccepted, j.status())
	default:
		j.cancel() // release the context registered on baseCtx
		writeError(w, CodeQueueFull,
			fmt.Sprintf("job queue full (%d pending); retry later", s.cfg.QueueSize),
			map[string]any{"queue_capacity": s.cfg.QueueSize})
	}
}

// listQuery is the shared ?status= / ?limit= filter of the list
// endpoints: status restricts to one lifecycle state, limit caps the
// response to the most recent N matching entries (0 = uncapped), so
// clients polling a busy instance need not page the entire registry.
type listQuery struct {
	status State
	limit  int
}

// parseListQuery validates the filter query parameters.
func parseListQuery(r *http.Request) (listQuery, error) {
	q := r.URL.Query()
	var lq listQuery
	if s := q.Get("status"); s != "" {
		st := State(s)
		switch st {
		case StateQueued, StateRunning, StateDone, StateFailed, StateCancelled:
			lq.status = st
		default:
			return listQuery{}, fmt.Errorf("unknown status %q", s)
		}
	}
	if l := q.Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n < 0 {
			return listQuery{}, fmt.Errorf("bad limit %q (want a non-negative integer)", l)
		}
		lq.limit = n
	}
	return lq, nil
}

// tail keeps the most recent n entries of an insertion-ordered slice
// (n = 0 means all).
func tail[T any](s []T, n int) []T {
	if n > 0 && len(s) > n {
		return s[len(s)-n:]
	}
	return s
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	lq, err := parseListQuery(r)
	if err != nil {
		writeError(w, CodeInvalidRequest, err.Error(), nil)
		return
	}
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		st := j.status()
		if lq.status != "" && st.State != lq.status {
			continue
		}
		out = append(out, st)
	}
	writeJSON(w, http.StatusOK, tail(out, lq.limit))
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, CodeNotFound, "unknown job", nil)
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, CodeNotFound, "unknown job", nil)
		return
	}
	res, state, ok := j.snapshotResult()
	if !ok {
		if state.Terminal() {
			// failed, or cancelled before any evaluation
			st := j.status()
			msg := st.Error
			if msg == "" {
				msg = fmt.Sprintf("job %s without a result", state)
			}
			writeError(w, CodeNoResult, msg, map[string]any{"state": state})
			return
		}
		writeJSON(w, http.StatusAccepted, j.status())
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, CodeNotFound, "unknown job", nil)
		return
	}
	state, trace := j.snapshotTrace()
	writeJSON(w, http.StatusOK, JobTrace{ID: j.id, State: state, Trace: trace})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, CodeNotFound, "unknown job", nil)
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		writeError(w, CodeShuttingDown, "server is shutting down", nil)
		return
	}
	// Bound live sweeps before decoding: MaxSweeps only evicts finished
	// sweeps from the registry, so without this gate a flood of
	// submissions would accumulate unbounded in-flight work — the sweep
	// analogue of the job queue's shedding on saturation.
	if active := s.activeSweeps(); active >= s.cfg.MaxSweeps {
		writeError(w, CodeQueueFull,
			fmt.Sprintf("%d sweeps in flight (limit %d); retry later", active, s.cfg.MaxSweeps),
			map[string]any{"max_sweeps": s.cfg.MaxSweeps})
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	var req SweepRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, CodeInvalidRequest, fmt.Sprintf("bad request body: %v", err), nil)
		return
	}
	grid := req.grid()
	// Size() saturates instead of overflowing, so adversarially long
	// dimension lists cannot wrap the product past this check.
	if size := grid.Size(); size > s.cfg.MaxSweepCells {
		writeError(w, CodeInvalidSpec,
			fmt.Sprintf("service: sweep expands to %d cells, limit %d", size, s.cfg.MaxSweepCells),
			map[string]any{"cells": size, "max_sweep_cells": s.cfg.MaxSweepCells})
		return
	}
	cells, err := sweep.Expand(grid)
	if err != nil {
		writeError(w, CodeInvalidSpec, err.Error(), nil)
		return
	}
	// Normalize every cell into a job spec up front so the whole grid is
	// validated against the per-job limits before any cell runs.
	scs := make([]sweepCell, 0, len(cells))
	lim := Limits{MaxBudget: s.cfg.MaxBudget, MaxSeeds: s.cfg.MaxSeeds}
	for _, c := range cells {
		spec, err := normalize(Request{
			App:       c.App,
			Arch:      c.Arch,
			Objective: c.Objective,
			Algorithm: c.Algorithm,
			Budget:    c.Budget,
			Seed:      c.Seed,
			Seeds:     c.Islands,
			Analyses:  c.Analyses,
		}, lim)
		if err != nil {
			writeError(w, CodeInvalidSpec, fmt.Sprintf("cell %s: %v", c.Label(), err),
				map[string]any{"cell": c.Label()})
			return
		}
		scs = append(scs, sweepCell{cell: c, spec: spec, key: spec.Key()})
	}

	id := fmt.Sprintf("sweep-%06d", s.nextSweep.Add(1))
	sw := newSweep(id, scs, req.NoCache, s.baseCtx)
	s.registerSweep(sw)
	s.logger.Info("sweep accepted", "sweep", id, "cells", len(scs))
	go s.runSweep(sw)
	writeJSON(w, http.StatusAccepted, sw.status())
}

func (s *Server) handleSweepList(w http.ResponseWriter, r *http.Request) {
	lq, err := parseListQuery(r)
	if err != nil {
		writeError(w, CodeInvalidRequest, err.Error(), nil)
		return
	}
	s.mu.Lock()
	sweeps := make([]*Sweep, 0, len(s.sweepOrder))
	for _, id := range s.sweepOrder {
		if sw, ok := s.sweeps[id]; ok {
			sweeps = append(sweeps, sw)
		}
	}
	s.mu.Unlock()
	out := make([]SweepStatus, 0, len(sweeps))
	for _, sw := range sweeps {
		st := sw.summary()
		if lq.status != "" && st.State != lq.status {
			continue
		}
		out = append(out, st)
	}
	writeJSON(w, http.StatusOK, tail(out, lq.limit))
}

func (s *Server) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.sweepByID(r.PathValue("id"))
	if !ok {
		writeError(w, CodeNotFound, "unknown sweep", nil)
		return
	}
	writeJSON(w, http.StatusOK, sw.status())
}

func (s *Server) handleSweepResult(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.sweepByID(r.PathValue("id"))
	if !ok {
		writeError(w, CodeNotFound, "unknown sweep", nil)
		return
	}
	if !sw.currentState().Terminal() {
		writeJSON(w, http.StatusAccepted, sw.status())
		return
	}
	writeJSON(w, http.StatusOK, sw.result())
}

func (s *Server) handleSweepCancel(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.sweepByID(r.PathValue("id"))
	if !ok {
		writeError(w, CodeNotFound, "unknown sweep", nil)
		return
	}
	sw.Cancel()
	writeJSON(w, http.StatusOK, sw.status())
}

// handleCacheStats serves GET /v1/cache: both cache tiers' live
// statistics — the admin view of hit rates, the write-behind backlog and
// the persistent store's size.
func (s *Server) handleCacheStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.cache.stats())
}

// CacheClearResult is the DELETE /v1/cache payload: how many entries
// each tier dropped.
type CacheClearResult struct {
	ClearedEntries int `json:"cleared_entries"`
	ClearedStore   int `json:"cleared_store_entries"`
}

// handleCacheClear serves DELETE /v1/cache: empty both tiers. The
// results themselves are deterministic in their specs, so clearing is
// always safe — subsequent submissions recompute (and re-persist).
func (s *Server) handleCacheClear(w http.ResponseWriter, _ *http.Request) {
	memory, persisted := s.cache.clear()
	s.logger.Info("result cache cleared", "memory_entries", memory, "store_entries", persisted)
	writeJSON(w, http.StatusOK, CacheClearResult{ClearedEntries: memory, ClearedStore: persisted})
}

func (s *Server) handleApps(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, Apps())
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, search.Names())
}

func (s *Server) handleRouters(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, Routers())
}

func (s *Server) handleTopologies(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, Topologies())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	// One source of truth with /metrics: the folded obs counter is read
	// BEFORE scanning the jobs (inside totalEvalsNow), so a job folding
	// mid-scan is a transient undercount, never a double count.
	total := s.totalEvalsNow()
	s.mu.Lock()
	counts := make(map[State]int)
	for _, j := range s.jobs {
		counts[j.currentState()]++
	}
	s.mu.Unlock()
	status := "ok"
	if s.closed.Load() {
		status = "shutting down"
	}
	uptime := time.Since(s.started).Seconds()
	perSec := s.evalsPerSec(total)
	busy := int(s.metrics.workersBusy.Value())
	writeJSON(w, http.StatusOK, Health{
		Status:            status,
		Version:           version.String(),
		Workers:           s.cfg.Workers,
		WorkersBusy:       busy,
		WorkerUtilization: float64(busy) / float64(s.cfg.Workers),
		QueueDepth:        len(s.queue),
		QueueCapacity:     s.cfg.QueueSize,
		Jobs:              counts,
		Cache:             s.cache.stats(),
		TotalEvals:        total,
		EvalsPerSec:       perSec,
		UptimeSec:         uptime,
	})
}
