package service

import (
	"context"
	"net/http"
	"reflect"
	"testing"
	"time"

	"phonocmap/internal/config"
	"phonocmap/internal/scenario"
	"phonocmap/internal/sweep"
)

// TestJobAnalysesReportAndCacheReplay covers the analysis pipeline end
// to end through the service: a job requesting analyses returns the
// typed report inline in JobResult, and a duplicate submission replays
// the identical report from the content-addressed cache.
func TestJobAnalysesReportAndCacheReplay(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := ts.URL

	req := Request{
		Algorithm: "rs",
		Budget:    300,
		Seed:      4,
		Analyses: &scenario.AnalysesSpec{
			Power:      &scenario.PowerSpec{},
			Robustness: &scenario.RobustnessSpec{Samples: 5},
		},
	}
	req.App.Builtin = "PIP"

	var submitted JobStatus
	if code := doJSON(t, http.MethodPost, base+"/v1/jobs", req, &submitted); code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	if submitted.Spec.Analyses == nil || submitted.Spec.Analyses.Robustness == nil ||
		submitted.Spec.Analyses.Robustness.Tolerance != 0.1 {
		t.Errorf("spec analyses not normalized: %+v", submitted.Spec.Analyses)
	}
	final, _ := pollUntil(t, base, submitted.ID, 60*time.Second, func(st JobStatus) bool { return st.State.Terminal() })
	if final.State != StateDone {
		t.Fatalf("job finished %q (%s)", final.State, final.Error)
	}

	var res JobResult
	if code := doJSON(t, http.MethodGet, base+"/v1/jobs/"+submitted.ID+"/result", nil, &res); code != http.StatusOK {
		t.Fatalf("result returned %d", code)
	}
	if res.Report == nil || res.Report.Power == nil || res.Report.Robustness == nil {
		t.Fatalf("report sections missing: %+v", res.Report)
	}
	if res.Report.WDM != nil || res.Report.Sim != nil || res.Report.LinkFailures != nil {
		t.Errorf("unrequested report sections present: %+v", res.Report)
	}
	if res.Report.Robustness.Samples != 5 {
		t.Errorf("robustness samples %d, want 5", res.Report.Robustness.Samples)
	}

	// Duplicate submission: cache hit, identical report replayed.
	var second JobStatus
	if code := doJSON(t, http.MethodPost, base+"/v1/jobs", req, &second); code != http.StatusOK {
		t.Fatalf("duplicate submit returned %d, want 200 (cache hit)", code)
	}
	if !second.Cached {
		t.Fatal("duplicate submission not served from cache")
	}
	var res2 JobResult
	if code := doJSON(t, http.MethodGet, base+"/v1/jobs/"+second.ID+"/result", nil, &res2); code != http.StatusOK {
		t.Fatalf("cached result returned %d", code)
	}
	if !reflect.DeepEqual(res.Report, res2.Report) {
		t.Errorf("cached report diverges:\n live %+v\n hit  %+v", res.Report, res2.Report)
	}
	if res2.Score != res.Score {
		t.Errorf("cached score %+v != live %+v", res2.Score, res.Score)
	}

	// The local pipeline produces the same report for the same spec —
	// service and library fronts share one computation.
	local, err := scenario.Run(context.Background(), scenario.Spec{
		App:       req.App,
		Algorithm: req.Algorithm,
		Budget:    req.Budget,
		Seed:      req.Seed,
		Analyses:  req.Analyses,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(local.Report, res.Report) {
		t.Errorf("local report diverges from service report:\n local   %+v\n service %+v", local.Report, res.Report)
	}
}

// TestAnalysesDistinctCacheIdentity is the cache-identity fix: a job
// with analyses must not alias the cache entry of the same job without
// them (and vice versa), or a cached score would be returned with a
// wrong/missing report.
func TestAnalysesDistinctCacheIdentity(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := ts.URL

	plain := Request{Algorithm: "rs", Budget: 200, Seed: 3}
	plain.App.Builtin = "PIP"
	var st JobStatus
	if code := doJSON(t, http.MethodPost, base+"/v1/jobs", plain, &st); code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	if final, _ := pollUntil(t, base, st.ID, 60*time.Second, func(s JobStatus) bool { return s.State.Terminal() }); final.State != StateDone {
		t.Fatalf("plain job finished %q", final.State)
	}

	withAnalyses := plain
	withAnalyses.Analyses = &scenario.AnalysesSpec{Power: &scenario.PowerSpec{}}
	var st2 JobStatus
	code := doJSON(t, http.MethodPost, base+"/v1/jobs", withAnalyses, &st2)
	if code != http.StatusAccepted {
		t.Fatalf("analyses job returned %d: aliased to the analysis-free cache entry", code)
	}
	if final, _ := pollUntil(t, base, st2.ID, 60*time.Second, func(s JobStatus) bool { return s.State.Terminal() }); final.State != StateDone {
		t.Fatalf("analyses job finished %q", final.State)
	}
	var res JobResult
	doJSON(t, http.MethodGet, base+"/v1/jobs/"+st2.ID+"/result", nil, &res)
	if res.Report == nil || res.Report.Power == nil {
		t.Fatal("analyses job returned no report")
	}

	// And the reverse direction: the plain spec still replays without a
	// report.
	var st3 JobStatus
	if code := doJSON(t, http.MethodPost, base+"/v1/jobs", plain, &st3); code != http.StatusOK {
		t.Fatalf("plain resubmit returned %d, want 200 (its own cache entry)", code)
	}
	var res3 JobResult
	doJSON(t, http.MethodGet, base+"/v1/jobs/"+st3.ID+"/result", nil, &res3)
	if res3.Report != nil {
		t.Errorf("analysis-free job replayed a report: %+v", res3.Report)
	}
}

// TestDegradedSpecBitIdenticalAcrossPaths: a failed_links arch spec
// produces bit-identical results through the local scenario pipeline
// (the CLI's execution path), the service job path, and a 1-cell
// service sweep.
func TestDegradedSpecBitIdenticalAcrossPaths(t *testing.T) {
	arch := config.ArchSpec{Router: "cygnus", Routing: "bfs", FailedLinks: [][2]int{{1, 2}}}
	app := config.AppSpec{Builtin: "PIP"}
	analyses := &scenario.AnalysesSpec{Power: &scenario.PowerSpec{}}

	// Local pipeline (what phonocmap map executes).
	local, err := scenario.Run(context.Background(), scenario.Spec{
		App: app, Arch: arch, Algorithm: "rs", Budget: 250, Seed: 11, Analyses: analyses,
	})
	if err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{})
	base := ts.URL

	// Service job path (no_cache so the sweep below recomputes too).
	jreq := Request{App: app, Arch: arch, Algorithm: "rs", Budget: 250, Seed: 11, Analyses: analyses, NoCache: true}
	var jst JobStatus
	if code := doJSON(t, http.MethodPost, base+"/v1/jobs", jreq, &jst); code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	if final, _ := pollUntil(t, base, jst.ID, 60*time.Second, func(s JobStatus) bool { return s.State.Terminal() }); final.State != StateDone {
		t.Fatalf("job finished %q", final.State)
	}
	var jres JobResult
	doJSON(t, http.MethodGet, base+"/v1/jobs/"+jst.ID+"/result", nil, &jres)
	if !jres.Mapping.Equal(local.Run.Mapping) || jres.Score != local.Run.Score || jres.Evals != local.Run.Evals {
		t.Errorf("service job diverges from local pipeline:\n local   %+v %+v\n service %+v %+v",
			local.Run.Mapping, local.Run.Score, jres.Mapping, jres.Score)
	}
	if !reflect.DeepEqual(jres.Report, local.Report) {
		t.Errorf("service report diverges from local report")
	}

	// 1-cell sweep path.
	sreq := SweepRequest{
		Apps:       []config.AppSpec{app},
		Archs:      []config.ArchSpec{arch},
		Algorithms: []string{"rs"},
		Budgets:    []int{250},
		Seeds:      []int64{11},
		Analyses:   analyses,
		NoCache:    true,
	}
	var sst SweepStatus
	if code := doJSON(t, http.MethodPost, base+"/v1/sweeps", sreq, &sst); code != http.StatusAccepted {
		t.Fatalf("sweep submit returned %d", code)
	}
	if len(sst.Cells) != 1 {
		t.Fatalf("sweep expanded to %d cells, want 1", len(sst.Cells))
	}
	fin := pollSweep(t, base, sst.ID, 60*time.Second, func(st SweepStatus) bool { return st.State.Terminal() })
	if fin.State != StateDone {
		t.Fatalf("sweep finished %q", fin.State)
	}
	var sres SweepResult
	doJSON(t, http.MethodGet, base+"/v1/sweeps/"+sst.ID+"/result", nil, &sres)
	cell := sres.Cells[0]
	if !cell.Mapping.Equal(local.Run.Mapping) || cell.Score != local.Run.Score || cell.Evals != local.Run.Evals {
		t.Errorf("sweep cell diverges from local pipeline:\n local %+v %+v\n sweep %+v %+v",
			local.Run.Mapping, local.Run.Score, cell.Mapping, cell.Score)
	}
	if !reflect.DeepEqual(cell.Report, local.Report) {
		t.Errorf("sweep cell report diverges from local report")
	}
}

// TestSweepAnalysisColumnsMatchLocal extends the TestSweepMatchesTable2
// equivalence to the analysis-derived aggregation columns: the same
// analyses-bearing grid executed through POST /v1/sweeps and through the
// local sweep engine must fold into identical AnalysisSummary rows and
// annotated Pareto fronts.
func TestSweepAnalysisColumnsMatchLocal(t *testing.T) {
	grid := sweep.Spec{
		Apps:       []config.AppSpec{{Builtin: "PIP"}},
		Objectives: []string{"snr", "loss"},
		Algorithms: []string{"rs"},
		Budgets:    []int{200},
		Seeds:      []int64{2, 3},
		Analyses: &scenario.AnalysesSpec{
			Power:      &scenario.PowerSpec{},
			Robustness: &scenario.RobustnessSpec{Samples: 4},
			WDM:        &scenario.WDMSpec{},
		},
	}

	cells, err := sweep.Expand(grid)
	if err != nil {
		t.Fatal(err)
	}
	localResults, err := sweep.Run(cells, sweep.RunCell, sweep.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantRows := sweep.AnalysisSummary(localResults)
	wantPareto := sweep.AnnotatedParetoFronts(localResults)
	if len(wantRows) != 1 || wantRows[0].PowerAssessed != 4 || wantRows[0].RobustnessAssessed != 4 {
		t.Fatalf("local analysis rows unexpected: %+v", wantRows)
	}

	_, ts := newTestServer(t, Config{Workers: 2})
	base := ts.URL
	req := SweepRequest{
		Apps:       grid.Apps,
		Objectives: grid.Objectives,
		Algorithms: grid.Algorithms,
		Budgets:    grid.Budgets,
		Seeds:      grid.Seeds,
		Analyses:   grid.Analyses,
	}
	var sst SweepStatus
	if code := doJSON(t, http.MethodPost, base+"/v1/sweeps", req, &sst); code != http.StatusAccepted {
		t.Fatalf("sweep submit returned %d", code)
	}
	fin := pollSweep(t, base, sst.ID, 120*time.Second, func(st SweepStatus) bool { return st.State.Terminal() })
	if fin.State != StateDone {
		t.Fatalf("sweep finished %q (%+v)", fin.State, fin.Counts)
	}
	var sres SweepResult
	doJSON(t, http.MethodGet, base+"/v1/sweeps/"+sst.ID+"/result", nil, &sres)
	if !reflect.DeepEqual(sres.Analysis, wantRows) {
		t.Errorf("service analysis rows diverge from local engine:\n service %+v\n local   %+v", sres.Analysis, wantRows)
	}
	if !reflect.DeepEqual(sres.Pareto, wantPareto) {
		t.Errorf("service annotated Pareto diverges from local engine:\n service %+v\n local   %+v", sres.Pareto, wantPareto)
	}
	for _, c := range sres.Cells {
		if c.Report == nil || c.Report.Power == nil || c.Report.WDM == nil {
			t.Errorf("cell %d missing report sections: %+v", c.Index, c.Report)
		}
	}
}

// TestDiscoveryRoutersAndTopologies covers the new discovery endpoints.
func TestDiscoveryRoutersAndTopologies(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := ts.URL

	var routers []RouterInfo
	if code := doJSON(t, http.MethodGet, base+"/v1/routers", nil, &routers); code != http.StatusOK {
		t.Fatalf("routers returned %d", code)
	}
	if len(routers) != 3 {
		t.Fatalf("%d routers, want 3", len(routers))
	}
	byName := make(map[string]RouterInfo)
	for _, r := range routers {
		byName[r.Name] = r
	}
	if crux, ok := byName["crux"]; !ok || crux.AllTurn {
		t.Errorf("crux info wrong: %+v", byName["crux"])
	}
	if cygnus, ok := byName["cygnus"]; !ok || !cygnus.AllTurn || cygnus.Rings == 0 {
		t.Errorf("cygnus info wrong: %+v", byName["cygnus"])
	}

	var topos []string
	if code := doJSON(t, http.MethodGet, base+"/v1/topologies", nil, &topos); code != http.StatusOK {
		t.Fatalf("topologies returned %d", code)
	}
	if !reflect.DeepEqual(topos, []string{"mesh", "torus", "ring"}) {
		t.Errorf("topologies = %v", topos)
	}
}
