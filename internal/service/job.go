package service

import (
	"context"
	"time"

	"phonocmap/internal/core"
	"phonocmap/internal/scenario"
	"sync"
)

// State is a job lifecycle state.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job is one submitted optimization with its mutable lifecycle. The
// worker that dequeues it is its only writer apart from cancellation;
// HTTP handlers read snapshots under the mutex.
type Job struct {
	id   string
	spec Spec
	key  string

	// comp is the compiled scenario, built at submission (validating the
	// request) and handed to the single worker that runs the job; the
	// problem it owns is not safe for concurrent use, so nothing else may
	// touch it.
	comp *scenario.Compiled

	noCache bool

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu          sync.Mutex
	state       State
	cached      bool
	folded      bool // evals folded into the server's lifetime counter
	submitted   time.Time
	started     time.Time
	finished    time.Time
	islandEvals []int
	best        *core.Score
	result      *core.RunResult
	report      *scenario.Report
	trace       []TraceEvent
	errMsg      string
}

func newJob(id string, spec Spec, key string, comp *scenario.Compiled, noCache bool, parent context.Context) *Job {
	ctx, cancel := context.WithCancel(parent)
	return &Job{
		id:          id,
		spec:        spec,
		key:         key,
		comp:        comp,
		noCache:     noCache,
		ctx:         ctx,
		cancel:      cancel,
		done:        make(chan struct{}),
		state:       StateQueued,
		submitted:   time.Now(),
		islandEvals: make([]int, spec.Seeds),
	}
}

// newCachedJob materializes a cache hit as an already-finished job so
// hits and misses share one lifecycle and API shape. islandEvals is the
// original job's per-island breakdown, replayed verbatim so a hit for a
// multi-seed spec reports the same number of islands — and the same
// totals — the live run ended with, and clients diffing status across
// hit and miss see one shape.
func newCachedJob(id string, spec Spec, key string, res core.RunResult, trace []TraceEvent, islandEvals []int, report *scenario.Report) *Job {
	now := time.Now()
	// Every cache entry is written from a finished job's snapshot, whose
	// breakdown has exactly spec.Seeds (>= 1) entries — copy it so the
	// replayed job cannot alias the cache's slice.
	evals := make([]int, len(islandEvals))
	copy(evals, islandEvals)
	j := &Job{
		id:     id,
		spec:   spec,
		key:    key,
		done:   make(chan struct{}),
		state:  StateDone,
		cached: true,
		// A replay performs no evaluations; the originals were folded
		// into the server's throughput counter by the job that ran.
		folded:      true,
		submitted:   now,
		started:     now,
		finished:    now,
		islandEvals: evals,
		result:      &res,
		// The report is deterministic in the spec, so the cached one is
		// replayed verbatim — hits and misses return identical payloads.
		report: report,
		trace:  trace,
	}
	j.best = &res.Score
	close(j.done)
	return j
}

// Cancel requests cancellation. A queued job flips to cancelled
// immediately; a running job stops at its next evaluation attempt.
func (j *Job) Cancel() {
	if j.cancel != nil {
		j.cancel()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateQueued {
		j.state = StateCancelled
		j.finished = time.Now()
		j.closeDoneLocked()
	}
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// markRunning transitions queued -> running; false means the job was
// cancelled while waiting in the queue and must not run.
func (j *Job) markRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	return true
}

// observe folds a progress callback into the job's counters.
func (j *Job) observe(island, evals int, best core.Score) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if island >= 0 && island < len(j.islandEvals) {
		j.islandEvals[island] = evals
	}
	if j.best == nil || best.Better(*j.best) {
		b := best
		j.best = &b
	}
}

// improve records an incumbent improvement in the trace and counters.
func (j *Job) improve(island, evals int, best core.Score) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if island >= 0 && island < len(j.islandEvals) {
		j.islandEvals[island] = evals
	}
	if j.best == nil || best.Better(*j.best) {
		b := best
		j.best = &b
	}
	j.trace = append(j.trace, TraceEvent{
		Island: island, Evals: evals, Score: best,
		AtMs: float64(time.Since(j.started)) / float64(time.Millisecond),
	})
}

// finish records the terminal state of an executed job.
func (j *Job) finish(state State, res *core.RunResult, report *scenario.Report, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.finished = time.Now()
	j.result = res
	j.report = report
	// The worker was the compiled scenario's only user; release the
	// network/path tables now so finished jobs in the registry do not pin
	// them.
	j.comp = nil
	if res != nil {
		j.best = &res.Score
	}
	if err != nil {
		j.errMsg = err.Error()
	}
	j.closeDoneLocked()
}

// totalEvals sums the per-island counters (falling back to the final
// result for jobs without progress callbacks).
func (j *Job) totalEvals() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.totalEvalsLocked()
}

func (j *Job) totalEvalsLocked() int {
	evals := 0
	for _, e := range j.islandEvals {
		evals += e
	}
	if j.result != nil && j.result.Evals > evals {
		evals = j.result.Evals
	}
	return evals
}

// foldEvals hands the job's evaluations over to the server's lifetime
// counter exactly once; unfoldedEvals reports them until that moment.
// The pair keeps the /healthz total consistent: a job's evaluations are
// visible either through the live scan or through the folded counter,
// never twice and never not at all (the folded counter is read before
// the scan, so a fold racing the scan can only undercount transiently).
func (j *Job) foldEvals() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.folded {
		return 0
	}
	j.folded = true
	return j.totalEvalsLocked()
}

// snapshotIslandEvals copies the per-island evaluation counters under
// the lock — the breakdown a cache entry preserves for replay.
func (j *Job) snapshotIslandEvals() []int {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]int, len(j.islandEvals))
	copy(out, j.islandEvals)
	return out
}

func (j *Job) unfoldedEvals() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.folded {
		return 0
	}
	return j.totalEvalsLocked()
}

func (j *Job) closeDoneLocked() {
	select {
	case <-j.done:
	default:
		close(j.done)
	}
}

// currentState reads the lifecycle state under the lock.
func (j *Job) currentState() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// snapshotTrace returns a copy of the trace under the lock.
func (j *Job) snapshotTrace() (State, []TraceEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]TraceEvent, len(j.trace))
	copy(out, j.trace)
	return j.state, out
}

// result snapshot; ok is false when the job has no result (yet).
func (j *Job) snapshotResult() (JobResult, State, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.result == nil {
		return JobResult{}, j.state, false
	}
	r := *j.result
	// Assemble the span record from the job's improvement timeline. The
	// inputs are replayed verbatim on a cache hit (events with their
	// original AtMs, the live run's island breakdown and duration), so
	// hit and miss return identical traces.
	trace := make([]TraceEvent, len(j.trace))
	copy(trace, j.trace)
	islands := make([]int, len(j.islandEvals))
	copy(islands, j.islandEvals)
	durationMs := float64(r.Duration) / float64(time.Millisecond)
	return JobResult{
		ID:         j.id,
		State:      j.state,
		Cached:     j.cached,
		Algorithm:  r.Algorithm,
		Objective:  r.Objective.String(),
		Mapping:    r.Mapping.Clone(),
		Score:      r.Score,
		Evals:      r.Evals,
		DurationMs: durationMs,
		Seed:       r.Seed,
		Cancelled:  r.Cancelled,
		Report:     j.report,
		Trace:      scenario.AssembleTrace(trace, islands, durationMs),
	}, j.state, true
}

// status builds the wire status snapshot.
func (j *Job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	evals := 0
	for _, e := range j.islandEvals {
		evals += e
	}
	if j.result != nil && j.result.Evals > evals {
		evals = j.result.Evals
	}
	islands := make([]int, len(j.islandEvals))
	copy(islands, j.islandEvals)
	st := JobStatus{
		ID:          j.id,
		State:       j.state,
		Cached:      j.cached,
		Spec:        j.spec,
		Submitted:   rfc3339(j.submitted),
		Started:     rfc3339(j.started),
		Finished:    rfc3339(j.finished),
		Evals:       evals,
		IslandEvals: islands,
		Budget:      j.spec.Budget * max(j.spec.Seeds, 1),
		Error:       j.errMsg,
	}
	if j.best != nil {
		b := *j.best
		st.Best = &b
	}
	return st
}

func rfc3339(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}
