package service

import (
	"container/list"
	"sync"

	"phonocmap/internal/core"
	"phonocmap/internal/obs"
	"phonocmap/internal/scenario"
)

// CacheStats summarizes result-cache effectiveness for /healthz.
type CacheStats struct {
	Size      int    `json:"size"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// cacheEntry is one cached computation: the winning run, its convergence
// trace, the per-island evaluation breakdown of the live run, and the
// analysis report (nil when the spec requested none), keyed by the
// spec's content address. Everything is preserved verbatim so a cache
// hit replays exactly what the live run reported — the analyses block is
// part of the key, so a report can never be served to a spec that asked
// for different (or no) analyses.
type cacheEntry struct {
	key         string
	res         core.RunResult
	trace       []TraceEvent
	islandEvals []int
	report      *scenario.Report
}

// resultCache is a bounded LRU of completed results. Optimization runs
// are deterministic in their spec, so entries never go stale; the bound
// only caps memory. Effectiveness counters are obs instruments so
// /healthz and /metrics read one source of truth.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:       capacity,
		ll:        list.New(),
		items:     make(map[string]*list.Element, capacity),
		hits:      obs.NewCounter(),
		misses:    obs.NewCounter(),
		evictions: obs.NewCounter(),
	}
}

// get returns the cached result for key, refreshing its recency.
func (c *resultCache) get(key string) (core.RunResult, []TraceEvent, []int, *scenario.Report, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Inc()
		return core.RunResult{}, nil, nil, nil, false
	}
	c.hits.Inc()
	c.ll.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.res, e.trace, e.islandEvals, e.report, true
}

// put stores a completed result, evicting the least recently used entry
// when the cache is full.
func (c *resultCache) put(key string, res core.RunResult, trace []TraceEvent, islandEvals []int, report *scenario.Report) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		e.res = res
		e.trace = trace
		e.islandEvals = islandEvals
		e.report = report
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res, trace: trace, islandEvals: islandEvals, report: report})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
}

// size reads the live entry count.
func (c *resultCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *resultCache) stats() CacheStats {
	return CacheStats{
		Size:      c.size(),
		Capacity:  c.cap,
		Hits:      uint64(c.hits.Value()),
		Misses:    uint64(c.misses.Value()),
		Evictions: uint64(c.evictions.Value()),
	}
}
