package service

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
	"time"

	"phonocmap/internal/core"
	"phonocmap/internal/obs"
	"phonocmap/internal/scenario"
	"phonocmap/internal/store"
)

// CacheStats summarizes result-cache effectiveness for /healthz and
// GET /v1/cache.
type CacheStats struct {
	Size      int    `json:"size"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Store describes the persistent tier; nil when the server runs
	// memory-only (no -cache-dir).
	Store *StoreStats `json:"store,omitempty"`
}

// StoreStats summarizes the persistent store tier: lookup traffic
// (gets/hits — warming loads count, they are real store reads), write
// traffic (puts are completed write-behind persists, pending is the
// write-behind backlog), failures, and the store's own size and
// maintenance counters.
type StoreStats struct {
	Entries     int    `json:"entries"`
	Bytes       int64  `json:"bytes"`
	Gets        uint64 `json:"gets"`
	Hits        uint64 `json:"hits"`
	Puts        uint64 `json:"puts"`
	Errors      uint64 `json:"errors"`
	Evictions   uint64 `json:"evictions"`
	Quarantined uint64 `json:"quarantined"`
	Pending     int64  `json:"pending_writes"`
	Warmed      int    `json:"warmed"`
}

// cacheEntry is one cached computation: the winning run, its convergence
// trace, the per-island evaluation breakdown of the live run, and the
// analysis report (nil when the spec requested none), keyed by the
// spec's content address. Everything is preserved verbatim so a cache
// hit replays exactly what the live run reported — the analyses block is
// part of the key, so a report can never be served to a spec that asked
// for different (or no) analyses.
type cacheEntry struct {
	key         string
	res         core.RunResult
	trace       []TraceEvent
	islandEvals []int
	report      *scenario.Report
}

// resultCache is the service's two-tier result cache: a bounded
// in-memory LRU in front of a persistent content-addressed store.
// Optimization runs are deterministic in their spec, so entries never go
// stale; the LRU bound only caps memory and the store makes completed
// work survive restarts. Reads are read-through (an LRU miss consults
// the store and promotes the hit); writes are write-behind (the worker
// returns as soon as the LRU holds the entry, a background writer
// persists it). Effectiveness counters are obs instruments so /healthz
// and /metrics read one source of truth.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter

	// store is never nil (store.Null when no persistence is configured);
	// hasStore gates the read-through/write-behind paths so a memory-only
	// cache costs exactly what it did before the store tier existed.
	store    store.Store
	hasStore bool

	storeGets   *obs.Counter
	storeHits   *obs.Counter
	storePuts   *obs.Counter
	storeErrors *obs.Counter

	pending atomic.Int64 // write-behind backlog (queued + in flight)
	warmed  atomic.Int64 // entries preloaded by boot-time warming

	writes chan *cacheEntry
	quit   chan struct{}
	writer sync.WaitGroup
	closed atomic.Bool
}

// writeBacklog bounds the write-behind queue. Past it, the enqueueing
// worker persists synchronously instead — bounded memory, no loss.
const writeBacklog = 256

func newResultCache(capacity int, st store.Store) *resultCache {
	if st == nil {
		st = store.Null{}
	}
	_, isNull := st.(store.Null)
	c := &resultCache{
		cap:         capacity,
		ll:          list.New(),
		items:       make(map[string]*list.Element, max(capacity, 0)),
		hits:        obs.NewCounter(),
		misses:      obs.NewCounter(),
		evictions:   obs.NewCounter(),
		store:       st,
		hasStore:    !isNull,
		storeGets:   obs.NewCounter(),
		storeHits:   obs.NewCounter(),
		storePuts:   obs.NewCounter(),
		storeErrors: obs.NewCounter(),
		writes:      make(chan *cacheEntry, writeBacklog),
		quit:        make(chan struct{}),
	}
	if c.hasStore {
		c.writer.Add(1)
		go c.writeLoop()
	}
	return c
}

// get returns the cached result for key, refreshing its recency. An LRU
// miss consults the persistent store (read-through) and promotes a disk
// hit into the LRU, so a restarted node answers repeated specs from disk
// without recomputing.
func (c *resultCache) get(key string) (core.RunResult, []TraceEvent, []int, *scenario.Report, bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.hits.Inc()
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		res, trace, islands, report := e.res, e.trace, e.islandEvals, e.report
		c.mu.Unlock()
		return res, trace, islands, report, true
	}
	c.mu.Unlock()

	if c.hasStore {
		c.storeGets.Inc()
		se, ok, err := c.store.Get(key)
		if err != nil {
			c.storeErrors.Inc()
		}
		if ok {
			c.storeHits.Inc()
			c.hits.Inc()
			e := &cacheEntry{key: key, res: se.Result, trace: se.Trace, islandEvals: se.IslandEvals, report: se.Report}
			c.insert(e)
			return e.res, e.trace, e.islandEvals, e.report, true
		}
	}
	c.misses.Inc()
	return core.RunResult{}, nil, nil, nil, false
}

// put stores a completed result in both tiers: the LRU immediately
// (evicting the least recently used entry when full), the persistent
// store asynchronously off the request path. A zero-or-negative LRU
// capacity disables only the memory tier — with a store attached the
// result still writes through to disk and the put still counts, so a
// disk-only cache configuration is not a silent drop.
func (c *resultCache) put(key string, res core.RunResult, trace []TraceEvent, islandEvals []int, report *scenario.Report) {
	e := &cacheEntry{key: key, res: res, trace: trace, islandEvals: islandEvals, report: report}
	if c.cap > 0 {
		c.mu.Lock()
		if el, ok := c.items[key]; ok {
			c.ll.MoveToFront(el)
			el.Value = e
		} else {
			c.items[key] = c.ll.PushFront(e)
			for c.ll.Len() > c.cap {
				oldest := c.ll.Back()
				c.ll.Remove(oldest)
				delete(c.items, oldest.Value.(*cacheEntry).key)
				c.evictions.Inc()
			}
		}
		c.mu.Unlock()
	}
	if c.hasStore {
		c.enqueueWrite(e)
	}
}

// insert adds an entry to the LRU without touching the hit/miss/put
// counters — the promotion path of read-through gets and boot warming.
func (c *resultCache) insert(e *cacheEntry) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[e.key]; ok {
		c.ll.MoveToFront(el)
		el.Value = e
		return
	}
	c.items[e.key] = c.ll.PushFront(e)
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
}

// enqueueWrite hands an entry to the background writer. When the
// backlog is full (or the cache is closing) the write happens
// synchronously on the caller — persistence is never silently dropped.
func (c *resultCache) enqueueWrite(e *cacheEntry) {
	c.pending.Add(1)
	if c.closed.Load() {
		c.persist(e)
		return
	}
	select {
	case c.writes <- e:
	default:
		c.persist(e)
	}
}

// writeLoop is the write-behind goroutine: it drains the queue until
// close asks it to finish whatever is already enqueued and exit.
func (c *resultCache) writeLoop() {
	defer c.writer.Done()
	for {
		select {
		case e := <-c.writes:
			c.persist(e)
		case <-c.quit:
			for {
				select {
				case e := <-c.writes:
					c.persist(e)
				default:
					return
				}
			}
		}
	}
}

// persist writes one entry to the store and settles its pending slot.
func (c *resultCache) persist(e *cacheEntry) {
	defer c.pending.Add(-1)
	err := c.store.Put(e.key, store.Entry{
		Key:         e.key,
		Result:      e.res,
		Trace:       e.trace,
		IslandEvals: e.islandEvals,
		Report:      e.report,
	})
	if err != nil {
		c.storeErrors.Inc()
		return
	}
	c.storePuts.Inc()
}

// flush blocks until the write-behind backlog is empty — the boundary a
// graceful shutdown needs so a restarted node finds everything the old
// one completed.
func (c *resultCache) flush() {
	for c.pending.Load() > 0 {
		time.Sleep(time.Millisecond)
	}
}

// close drains the write-behind queue and closes the store. Idempotent.
func (c *resultCache) close() {
	if c.closed.Swap(true) {
		return
	}
	if c.hasStore {
		close(c.quit)
		c.writer.Wait()
		c.flush() // synchronous fallbacks still in flight
	}
	_ = c.store.Close()
}

// warm preloads the most recently persisted entries into the LRU —
// bounded by limit and the LRU capacity — so a restarted node's hottest
// keys hit memory from the first request. Entries are loaded with
// bounded concurrency (decode dominates) and then inserted oldest-first,
// preserving store recency as LRU recency. Honors ctx: cancellation
// stops loading and warms whatever already arrived. Returns the number
// of entries warmed.
func (c *resultCache) warm(ctx context.Context, limit, workers int) int {
	if !c.hasStore || c.cap <= 0 {
		return 0
	}
	keys := c.store.Keys() // newest first
	n := min(limit, c.cap)
	if n <= 0 || n > len(keys) {
		n = min(len(keys), c.cap)
	}
	keys = keys[:n]
	if len(keys) == 0 {
		return 0
	}
	if workers <= 0 {
		workers = 4
	}

	loaded := make([]*cacheEntry, len(keys))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, key := range keys {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, key string) {
			defer wg.Done()
			defer func() { <-sem }()
			c.storeGets.Inc()
			se, ok, err := c.store.Get(key)
			if err != nil {
				c.storeErrors.Inc()
			}
			if !ok {
				return
			}
			c.storeHits.Inc()
			loaded[i] = &cacheEntry{key: key, res: se.Result, trace: se.Trace, islandEvals: se.IslandEvals, report: se.Report}
		}(i, key)
	}
	wg.Wait()

	warmed := 0
	for i := len(loaded) - 1; i >= 0; i-- { // oldest first → newest ends most recent
		if loaded[i] == nil {
			continue
		}
		c.insert(loaded[i])
		warmed++
	}
	c.warmed.Add(int64(warmed))
	return warmed
}

// clear empties both tiers, returning (memory entries, store entries)
// removed — the DELETE /v1/cache admin operation. The write-behind
// backlog is flushed first so an in-flight persist cannot resurrect a
// just-cleared key.
func (c *resultCache) clear() (int, int) {
	c.flush()
	c.mu.Lock()
	memory := c.ll.Len()
	c.ll.Init()
	c.items = make(map[string]*list.Element, max(c.cap, 0))
	c.mu.Unlock()
	persisted := 0
	if c.hasStore {
		for _, key := range c.store.Keys() {
			if err := c.store.Delete(key); err != nil {
				c.storeErrors.Inc()
				continue
			}
			persisted++
		}
	}
	return memory, persisted
}

// size reads the live entry count.
func (c *resultCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// storeStats snapshots the persistent tier (nil when memory-only).
func (c *resultCache) storeStats() *StoreStats {
	if !c.hasStore {
		return nil
	}
	st := StoreStats{
		Entries: c.store.Len(),
		Gets:    uint64(c.storeGets.Value()),
		Hits:    uint64(c.storeHits.Value()),
		Puts:    uint64(c.storePuts.Value()),
		Errors:  uint64(c.storeErrors.Value()),
		Pending: c.pending.Load(),
		Warmed:  int(c.warmed.Load()),
	}
	if sr, ok := c.store.(store.StatReader); ok {
		s := sr.Stats()
		st.Bytes = s.Bytes
		st.Evictions = s.Evictions
		st.Quarantined = s.Quarantined
	}
	return &st
}

func (c *resultCache) stats() CacheStats {
	return CacheStats{
		Size:      c.size(),
		Capacity:  c.cap,
		Hits:      uint64(c.hits.Value()),
		Misses:    uint64(c.misses.Value()),
		Evictions: uint64(c.evictions.Value()),
		Store:     c.storeStats(),
	}
}
