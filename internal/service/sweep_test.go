package service

import (
	"net/http"
	"reflect"
	"testing"
	"time"

	"phonocmap/internal/config"
	"phonocmap/internal/experiments"
)

// pollSweep polls the sweep status until pred is satisfied or the
// deadline passes.
func pollSweep(t *testing.T, base, id string, timeout time.Duration, pred func(SweepStatus) bool) SweepStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var st SweepStatus
		if code := doJSON(t, http.MethodGet, base+"/v1/sweeps/"+id, nil, &st); code != http.StatusOK {
			t.Fatalf("sweep status poll returned %d", code)
		}
		if pred(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s did not reach target state in %v (last: %+v)", id, timeout, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSweepMatchesTable2 is the sweep engine's unification proof: the
// same grid submitted through POST /v1/sweeps and driven through
// internal/experiments.Table2 must produce identical comparison rows —
// one shared engine (expansion, normalization, seed derivation,
// aggregation) behind both fronts.
func TestSweepMatchesTable2(t *testing.T) {
	opts := experiments.Table2Options{
		Budget:     250,
		Seed:       6,
		Apps:       []string{"PIP"},
		Algorithms: []string{"rs", "rpbla"},
	}
	want, err := experiments.Table2(opts)
	if err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{Workers: 2})
	base := ts.URL
	grid := experiments.Table2Grid(opts)
	req := SweepRequest{
		Apps:       grid.Apps,
		Archs:      grid.Archs,
		Objectives: grid.Objectives,
		Algorithms: grid.Algorithms,
		Budgets:    grid.Budgets,
		Seeds:      grid.Seeds,
	}
	var submitted SweepStatus
	if code := doJSON(t, http.MethodPost, base+"/v1/sweeps", req, &submitted); code != http.StatusAccepted {
		t.Fatalf("sweep submit returned %d", code)
	}
	if len(submitted.Cells) != 8 { // 1 app x 2 archs x 2 objectives x 2 algorithms
		t.Fatalf("sweep expanded to %d cells, want 8", len(submitted.Cells))
	}

	final := pollSweep(t, base, submitted.ID, 120*time.Second, func(st SweepStatus) bool {
		return st.State.Terminal()
	})
	if final.State != StateDone {
		t.Fatalf("sweep finished %q (%+v)", final.State, final.Counts)
	}
	for _, cs := range final.Cells {
		if cs.State != StateDone {
			t.Errorf("cell %d finished %q (%s)", cs.Index, cs.State, cs.Error)
		}
		if cs.Evals != opts.Budget {
			t.Errorf("cell %d spent %d evals, want %d", cs.Index, cs.Evals, opts.Budget)
		}
	}

	var res SweepResult
	if code := doJSON(t, http.MethodGet, base+"/v1/sweeps/"+submitted.ID+"/result", nil, &res); code != http.StatusOK {
		t.Fatalf("sweep result returned %d", code)
	}
	if !reflect.DeepEqual(res.Table, want) {
		t.Errorf("sweep table diverges from experiments.Table2:\n service: %+v\n experiments: %+v", res.Table, want)
	}
	if len(res.Pareto["PIP"]) == 0 {
		t.Error("sweep result has no Pareto front")
	}
	if len(res.BudgetCurves) == 0 {
		t.Error("sweep result has no budget curves")
	}
}

// TestSweepReusesJobCache: a cell whose spec was already computed — by
// an individually submitted job or by an identical cell of the same
// sweep — is answered from the content-addressed cache / shared job
// instead of recomputing.
func TestSweepReusesJobCache(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	base := ts.URL

	// Prime the cache with an ordinary job.
	jreq := Request{Algorithm: "rs", Budget: 300, Seed: 2}
	jreq.App.Builtin = "PIP"
	var jst JobStatus
	if code := doJSON(t, http.MethodPost, base+"/v1/jobs", jreq, &jst); code != http.StatusAccepted {
		t.Fatalf("job submit returned %d", code)
	}
	pollUntil(t, base, jst.ID, 60*time.Second, func(s JobStatus) bool { return s.State.Terminal() })

	var h0 Health
	doJSON(t, http.MethodGet, base+"/healthz", nil, &h0)

	// Two seeds: seed 2 duplicates the primed job (cache hit), seed 3 is
	// fresh work.
	sreq := SweepRequest{
		Apps:       []config.AppSpec{{Builtin: "PIP"}},
		Algorithms: []string{"rs"},
		Objectives: []string{"snr"},
		Budgets:    []int{300},
		Seeds:      []int64{2, 3},
	}
	var sst SweepStatus
	if code := doJSON(t, http.MethodPost, base+"/v1/sweeps", sreq, &sst); code != http.StatusAccepted {
		t.Fatalf("sweep submit returned %d", code)
	}
	final := pollSweep(t, base, sst.ID, 60*time.Second, func(st SweepStatus) bool { return st.State.Terminal() })
	if final.State != StateDone {
		t.Fatalf("sweep finished %q", final.State)
	}
	if !final.Cells[0].Cached {
		t.Error("duplicate cell (seed 2) was not answered from the cache")
	}
	if final.Cells[1].Cached {
		t.Error("fresh cell (seed 3) claims to be cached")
	}

	var h1 Health
	doJSON(t, http.MethodGet, base+"/healthz", nil, &h1)
	if got := h1.TotalEvals - h0.TotalEvals; got != 300 {
		t.Errorf("sweep added %d evals, want 300 (cached cell must not recompute)", got)
	}

	// Duplicate cells inside one sweep share one job.
	dup := SweepRequest{
		Apps:       []config.AppSpec{{Builtin: "PIP"}},
		Algorithms: []string{"rs", "rs"},
		Objectives: []string{"snr"},
		Budgets:    []int{150},
		Seeds:      []int64{9},
	}
	var dst SweepStatus
	if code := doJSON(t, http.MethodPost, base+"/v1/sweeps", dup, &dst); code != http.StatusAccepted {
		t.Fatalf("dup sweep submit returned %d", code)
	}
	dfinal := pollSweep(t, base, dst.ID, 60*time.Second, func(st SweepStatus) bool { return st.State.Terminal() })
	if dfinal.Cells[0].JobID == "" || dfinal.Cells[0].JobID != dfinal.Cells[1].JobID {
		t.Errorf("identical cells did not share a job: %q vs %q", dfinal.Cells[0].JobID, dfinal.Cells[1].JobID)
	}
}

func TestSweepCancel(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBudget: 100_000_000})
	base := ts.URL

	// Many long cells on one worker: the first runs, the rest queue or
	// wait in the feeder.
	sreq := SweepRequest{
		Apps:       []config.AppSpec{{Builtin: "VOPD"}},
		Algorithms: []string{"rs"},
		Budgets:    []int{50_000_000},
		Seeds:      []int64{1, 2, 3, 4},
	}
	var sst SweepStatus
	if code := doJSON(t, http.MethodPost, base+"/v1/sweeps", sreq, &sst); code != http.StatusAccepted {
		t.Fatalf("sweep submit returned %d", code)
	}
	pollSweep(t, base, sst.ID, 30*time.Second, func(st SweepStatus) bool {
		return st.Counts[StateRunning] > 0
	})
	var cancelled SweepStatus
	if code := doJSON(t, http.MethodDelete, base+"/v1/sweeps/"+sst.ID, nil, &cancelled); code != http.StatusOK {
		t.Fatalf("sweep cancel returned %d", code)
	}
	final := pollSweep(t, base, sst.ID, 30*time.Second, func(st SweepStatus) bool { return st.State.Terminal() })
	if final.State != StateCancelled {
		t.Fatalf("cancelled sweep finished %q", final.State)
	}
	for _, cs := range final.Cells {
		if cs.State != StateCancelled && cs.State != StateDone {
			t.Errorf("cell %d left in state %q after cancel", cs.Index, cs.State)
		}
	}
	// A terminal (cancelled) sweep still serves its partial result.
	if code := doJSON(t, http.MethodGet, base+"/v1/sweeps/"+sst.ID+"/result", nil, &SweepResult{}); code != http.StatusOK {
		t.Errorf("cancelled sweep result returned %d", code)
	}
}

func TestSweepBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSweepCells: 16, MaxBudget: 1000})
	base := ts.URL
	cases := []struct {
		name string
		req  SweepRequest
	}{
		{"no apps", SweepRequest{}},
		{"unknown app", SweepRequest{Apps: []config.AppSpec{{Builtin: "NOPE"}}}},
		{"unknown algorithm", SweepRequest{Apps: []config.AppSpec{{Builtin: "PIP"}}, Algorithms: []string{"nope"}}},
		{"cell over budget limit", SweepRequest{Apps: []config.AppSpec{{Builtin: "PIP"}}, Budgets: []int{2000}}},
		{"too many cells", SweepRequest{
			Apps:    []config.AppSpec{{Builtin: "PIP"}},
			Budgets: []int{100},
			Seeds:   []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17},
		}},
		{"app too big for arch", SweepRequest{
			Apps:  []config.AppSpec{{Builtin: "VOPD"}},
			Archs: []config.ArchSpec{{Topology: "mesh", Width: 2, Height: 2}},
		}},
	}
	for _, c := range cases {
		var env ErrorEnvelope
		if code := doJSON(t, http.MethodPost, base+"/v1/sweeps", c.req, &env); code != http.StatusBadRequest {
			t.Errorf("%s: got %d, want 400 (%+v)", c.name, code, env)
		}
		if env.Error.Code != CodeInvalidSpec {
			t.Errorf("%s: error code %q, want %q", c.name, env.Error.Code, CodeInvalidSpec)
		}
	}

	if code := doJSON(t, http.MethodGet, base+"/v1/sweeps/sweep-999999", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown sweep id: got %d, want 404", code)
	}
}

// TestSweepAdmissionControl: live sweeps are bounded like the job queue
// — past MaxSweeps in-flight sweeps, submissions are shed with a 429
// queue_full envelope instead of accumulating unbounded buffered work.
func TestSweepAdmissionControl(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxSweeps: 1, MaxBudget: 100_000_000})
	base := ts.URL
	long := SweepRequest{
		Apps:    []config.AppSpec{{Builtin: "VOPD"}},
		Budgets: []int{50_000_000},
		Seeds:   []int64{1},
	}
	var first SweepStatus
	if code := doJSON(t, http.MethodPost, base+"/v1/sweeps", long, &first); code != http.StatusAccepted {
		t.Fatalf("first sweep returned %d", code)
	}
	second := long
	second.Seeds = []int64{2}
	var env ErrorEnvelope
	if code := doJSON(t, http.MethodPost, base+"/v1/sweeps", second, &env); code != http.StatusTooManyRequests {
		t.Errorf("sweep beyond the in-flight limit returned %d, want 429", code)
	}
	if env.Error.Code != CodeQueueFull {
		t.Errorf("shed sweep error code %q, want %q", env.Error.Code, CodeQueueFull)
	}
	// Draining the first sweep frees the slot.
	doJSON(t, http.MethodDelete, base+"/v1/sweeps/"+first.ID, nil, nil)
	pollSweep(t, base, first.ID, 30*time.Second, func(st SweepStatus) bool { return st.State.Terminal() })
	quick := SweepRequest{
		Apps:    []config.AppSpec{{Builtin: "PIP"}},
		Budgets: []int{50},
		Seeds:   []int64{3},
	}
	var third SweepStatus
	if code := doJSON(t, http.MethodPost, base+"/v1/sweeps", quick, &third); code != http.StatusAccepted {
		t.Errorf("sweep after drain returned %d, want 202", code)
	}
	pollSweep(t, base, third.ID, 30*time.Second, func(st SweepStatus) bool { return st.State.Terminal() })
}

func TestSweepResultBeforeDone(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBudget: 100_000_000})
	base := ts.URL
	sreq := SweepRequest{
		Apps:    []config.AppSpec{{Builtin: "VOPD"}},
		Budgets: []int{50_000_000},
		Seeds:   []int64{7},
	}
	var sst SweepStatus
	if code := doJSON(t, http.MethodPost, base+"/v1/sweeps", sreq, &sst); code != http.StatusAccepted {
		t.Fatalf("sweep submit returned %d", code)
	}
	if code := doJSON(t, http.MethodGet, base+"/v1/sweeps/"+sst.ID+"/result", nil, nil); code != http.StatusAccepted {
		t.Errorf("result of unfinished sweep returned %d, want 202", code)
	}
	doJSON(t, http.MethodDelete, base+"/v1/sweeps/"+sst.ID, nil, nil)

	// The sweep also shows up in the listing.
	var list []SweepStatus
	if code := doJSON(t, http.MethodGet, base+"/v1/sweeps", nil, &list); code != http.StatusOK || len(list) == 0 {
		t.Errorf("sweep listing returned %d with %d entries", code, len(list))
	}
}
