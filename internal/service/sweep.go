package service

import (
	"context"
	"sync"
	"time"

	"phonocmap/internal/config"
	"phonocmap/internal/core"
	"phonocmap/internal/scenario"
	"phonocmap/internal/sweep"
)

// SweepRequest is the POST /v1/sweeps payload: a declarative design-
// space grid. Every dimension is a list and the sweep is the cross
// product; empty dimensions default like single jobs (auto-sized mesh,
// SNR, R-PBLA, budget 20000, seed 1).
type SweepRequest struct {
	Apps       []config.AppSpec  `json:"apps"`
	Archs      []config.ArchSpec `json:"archs,omitempty"`
	Objectives []string          `json:"objectives,omitempty"`
	Algorithms []string          `json:"algorithms,omitempty"`
	Budgets    []int             `json:"budgets,omitempty"`
	Seeds      []int64           `json:"seeds,omitempty"`
	// Islands > 1 runs every cell in multi-seed islands mode.
	Islands int `json:"islands,omitempty"`
	// Analyses runs the scenario analysis pipeline on every cell's
	// winning mapping; per-cell reports come back in the sweep result and
	// feed the analysis-derived aggregation columns.
	Analyses *scenario.AnalysesSpec `json:"analyses,omitempty"`
	// NoCache skips the result cache on both lookup and fill for every
	// cell, and disables within-sweep cell deduplication.
	NoCache bool `json:"no_cache,omitempty"`
}

// grid converts the request into the sweep engine's spec.
func (r SweepRequest) grid() sweep.Spec {
	return sweep.Spec{
		Apps:       r.Apps,
		Archs:      r.Archs,
		Objectives: r.Objectives,
		Algorithms: r.Algorithms,
		Budgets:    r.Budgets,
		Seeds:      r.Seeds,
		Islands:    r.Islands,
		Analyses:   r.Analyses,
	}
}

// SweepCellStatus is the live progress of one grid cell.
type SweepCellStatus struct {
	Index int        `json:"index"`
	Cell  sweep.Cell `json:"cell"`
	// JobID is the backing job (shared between duplicate cells of the
	// same sweep); empty while the cell is still waiting to be submitted.
	JobID  string      `json:"job_id,omitempty"`
	State  State       `json:"state"`
	Cached bool        `json:"cached,omitempty"`
	Evals  int         `json:"evals"`
	Budget int         `json:"budget"`
	Best   *core.Score `json:"best,omitempty"`
	Error  string      `json:"error,omitempty"`
}

// SweepStatus is the GET /v1/sweeps/{id} payload. The GET /v1/sweeps
// listing returns the same shape without Cells — per-cell detail for a
// full-size registry would be megabytes per poll.
type SweepStatus struct {
	ID       string            `json:"id"`
	State    State             `json:"state"`
	Created  string            `json:"created,omitempty"`
	Started  string            `json:"started,omitempty"`
	Finished string            `json:"finished,omitempty"`
	Counts   map[State]int     `json:"counts"`
	Evals    int               `json:"evals"`
	Budget   int               `json:"budget"`
	Cells    []SweepCellStatus `json:"cells,omitempty"`
}

// SweepCellResult is one finished cell of a sweep result.
type SweepCellResult struct {
	Index   int          `json:"index"`
	Cell    sweep.Cell   `json:"cell"`
	JobID   string       `json:"job_id,omitempty"`
	Cached  bool         `json:"cached,omitempty"`
	Score   core.Score   `json:"score"`
	Mapping core.Mapping `json:"mapping,omitempty"`
	Evals   int          `json:"evals"`
	// Report is the cell's analysis report (cache hits replay the live
	// run's report verbatim).
	Report *scenario.Report `json:"report,omitempty"`
	Error  string           `json:"error,omitempty"`
}

// SweepResult is the GET /v1/sweeps/{id}/result payload: the per-cell
// outcomes plus the sweep engine's aggregations — Table II comparison
// rows, budget-ablation curves, per-application Pareto fronts
// (report-annotated when analyses ran) and the analysis-derived summary
// columns.
type SweepResult struct {
	ID           string                         `json:"id"`
	State        State                          `json:"state"`
	Cells        []SweepCellResult              `json:"cells"`
	Table        []sweep.TableRow               `json:"table,omitempty"`
	BudgetCurves []sweep.BudgetPoint            `json:"budget_curves,omitempty"`
	Pareto       map[string][]sweep.ParetoEntry `json:"pareto,omitempty"`
	Analysis     []sweep.AnalysisRow            `json:"analysis,omitempty"`
}

// sweepCell binds one expanded grid cell to its normalized job spec and,
// once materialized, the job executing (or replaying) it.
type sweepCell struct {
	cell sweep.Cell
	spec Spec
	key  string
}

// Sweep is one submitted design-space sweep: a set of cells sharded over
// the server's worker pool as ordinary jobs, sharing the job registry
// and the content-addressed result cache.
type Sweep struct {
	id      string
	noCache bool

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	cells []sweepCell // immutable after construction

	mu       sync.Mutex
	state    State
	created  time.Time
	started  time.Time
	finished time.Time
	jobs     []*Job // per cell; nil until materialized
}

func newSweep(id string, cells []sweepCell, noCache bool, parent context.Context) *Sweep {
	ctx, cancel := context.WithCancel(parent)
	return &Sweep{
		id:      id,
		noCache: noCache,
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		cells:   cells,
		state:   StateQueued,
		created: time.Now(),
		jobs:    make([]*Job, len(cells)),
	}
}

// Done returns a channel closed when the sweep reaches a terminal state.
func (sw *Sweep) Done() <-chan struct{} { return sw.done }

// Cancel stops the sweep: unsubmitted cells are abandoned, queued cell
// jobs flip to cancelled immediately and running ones stop at their next
// evaluation attempt.
func (sw *Sweep) Cancel() {
	sw.cancel()
	sw.mu.Lock()
	jobs := make([]*Job, 0, len(sw.jobs))
	for _, j := range sw.jobs {
		if j != nil {
			jobs = append(jobs, j)
		}
	}
	sw.mu.Unlock()
	for _, j := range jobs {
		j.Cancel()
	}
}

func (sw *Sweep) markRunning() bool {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.state != StateQueued {
		return false
	}
	sw.state = StateRunning
	sw.started = time.Now()
	return true
}

func (sw *Sweep) setJob(i int, j *Job) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.jobs[i] = j
}

func (sw *Sweep) jobAt(i int) *Job {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.jobs[i]
}

// finish settles the sweep's terminal state from its cells: cancelled
// when the sweep was cancelled or any cell was, failed when any cell
// failed, done otherwise.
func (sw *Sweep) finish() {
	state := StateDone
	if sw.ctx.Err() != nil {
		state = StateCancelled
	} else {
		for i := range sw.cells {
			j := sw.jobAt(i)
			if j == nil {
				state = StateCancelled
				break
			}
			switch j.currentState() {
			case StateCancelled:
				state = StateCancelled
			case StateFailed:
				if state == StateDone {
					state = StateFailed
				}
			}
			if state == StateCancelled {
				break
			}
		}
	}
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.state.Terminal() {
		return
	}
	sw.state = state
	sw.finished = time.Now()
	select {
	case <-sw.done:
	default:
		close(sw.done)
	}
}

func (sw *Sweep) currentState() State {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.state
}

// status builds the wire status snapshot with live per-cell progress.
func (sw *Sweep) status() SweepStatus {
	sw.mu.Lock()
	state := sw.state
	created, started, finished := sw.created, sw.started, sw.finished
	jobs := make([]*Job, len(sw.jobs))
	copy(jobs, sw.jobs)
	sw.mu.Unlock()

	st := SweepStatus{
		ID:       sw.id,
		State:    state,
		Created:  rfc3339(created),
		Started:  rfc3339(started),
		Finished: rfc3339(finished),
		Counts:   make(map[State]int),
		Cells:    make([]SweepCellStatus, 0, len(sw.cells)),
	}
	for i, sc := range sw.cells {
		cs := SweepCellStatus{
			Index:  i,
			Cell:   sc.cell,
			State:  StateQueued, // not yet materialized
			Budget: sc.spec.Budget * max(sc.spec.Seeds, 1),
		}
		if state.Terminal() && jobs[i] == nil {
			// The sweep ended before this cell was ever submitted.
			cs.State = StateCancelled
		}
		if j := jobs[i]; j != nil {
			js := j.status()
			cs.JobID = js.ID
			cs.State = js.State
			cs.Cached = js.Cached
			cs.Evals = js.Evals
			cs.Best = js.Best
			cs.Error = js.Error
		}
		st.Counts[cs.State]++
		st.Evals += cs.Evals
		st.Budget += cs.Budget
		st.Cells = append(st.Cells, cs)
	}
	return st
}

// summary is the listing-weight status: counts, evals and budget totals
// without the per-cell array. It touches each backing job only for its
// state and counters instead of copying full specs and scores.
func (sw *Sweep) summary() SweepStatus {
	sw.mu.Lock()
	state := sw.state
	created, started, finished := sw.created, sw.started, sw.finished
	jobs := make([]*Job, len(sw.jobs))
	copy(jobs, sw.jobs)
	sw.mu.Unlock()

	st := SweepStatus{
		ID:       sw.id,
		State:    state,
		Created:  rfc3339(created),
		Started:  rfc3339(started),
		Finished: rfc3339(finished),
		Counts:   make(map[State]int),
	}
	for i, sc := range sw.cells {
		cellState := StateQueued
		if state.Terminal() && jobs[i] == nil {
			cellState = StateCancelled
		}
		if j := jobs[i]; j != nil {
			cellState = j.currentState()
			st.Evals += j.totalEvals()
		}
		st.Counts[cellState]++
		st.Budget += sc.spec.Budget * max(sc.spec.Seeds, 1)
	}
	return st
}

// result builds the terminal result payload with the sweep engine's
// aggregations over the successful cells.
func (sw *Sweep) result() SweepResult {
	sw.mu.Lock()
	state := sw.state
	jobs := make([]*Job, len(sw.jobs))
	copy(jobs, sw.jobs)
	sw.mu.Unlock()

	out := SweepResult{
		ID:    sw.id,
		State: state,
		Cells: make([]SweepCellResult, 0, len(sw.cells)),
	}
	agg := make([]sweep.Result, 0, len(sw.cells))
	for i, sc := range sw.cells {
		cr := SweepCellResult{Index: i, Cell: sc.cell}
		j := jobs[i]
		if j == nil {
			cr.Error = "cancelled before submission"
			out.Cells = append(out.Cells, cr)
			continue
		}
		res, jState, ok := j.snapshotResult()
		cr.JobID = j.id
		if !ok {
			cr.Error = j.status().Error
			if cr.Error == "" {
				cr.Error = string(jState)
			}
			out.Cells = append(out.Cells, cr)
			continue
		}
		cr.Cached = res.Cached
		cr.Score = res.Score
		cr.Mapping = res.Mapping
		cr.Evals = res.Evals
		cr.Report = res.Report
		out.Cells = append(out.Cells, cr)
		if jState == StateDone {
			agg = append(agg, sweep.Result{
				Index: i,
				Cell:  sc.cell,
				Run: core.RunResult{
					Algorithm: res.Algorithm,
					Mapping:   res.Mapping,
					Score:     res.Score,
					Evals:     res.Evals,
					Seed:      res.Seed,
				},
				Report: res.Report,
			})
		}
	}
	out.Table = sweep.Table(agg)
	out.BudgetCurves = sweep.BudgetCurves(agg)
	out.Pareto = sweep.AnnotatedParetoFronts(agg)
	out.Analysis = sweep.AnalysisSummary(agg)
	return out
}

// runSweep feeds the sweep's cells to the shared worker pool and waits
// for them to settle. Cells whose spec was already seen in this sweep
// share one job; cells whose spec is in the result cache replay
// instantly; the rest are enqueued as ordinary jobs, so a sweep shards
// across the pool exactly like independently submitted requests — with
// the queue's backpressure pacing submission instead of overflowing it.
func (s *Server) runSweep(sw *Sweep) {
	if !sw.markRunning() {
		return
	}
	defer sw.cancel() // release the sweep context resources
	defer func() {
		sw.finish()
		s.logger.Info("sweep finished", "sweep", sw.id, "state", sw.currentState())
	}()

	byKey := make(map[string]*Job, len(sw.cells))
	for i, sc := range sw.cells {
		if sw.ctx.Err() != nil {
			break
		}
		if !sw.noCache {
			// Within-sweep dedup: identical cells (same content address)
			// share one job, and therefore one computation.
			if j, ok := byKey[sc.key]; ok {
				sw.setJob(i, j)
				continue
			}
			if res, trace, islandEvals, report, ok := s.cache.get(sc.key); ok {
				j := newCachedJob(s.newJobID(), sc.spec, sc.key, res, trace, islandEvals, report)
				s.register(j)
				sw.setJob(i, j)
				byKey[sc.key] = j
				continue
			}
		}
		comp, err := compile(sc.spec)
		if err != nil {
			// Expansion validated the grid, so a build failure here is
			// exotic (e.g. pathological custom photonic parameters); it
			// fails this cell, not the sweep.
			j := newJob(s.newJobID(), sc.spec, sc.key, nil, sw.noCache, sw.ctx)
			j.finish(StateFailed, nil, nil, err)
			s.register(j)
			sw.setJob(i, j)
			continue
		}
		j := newJob(s.newJobID(), sc.spec, sc.key, comp, sw.noCache, sw.ctx)
		s.register(j)
		sw.setJob(i, j)
		if !sw.noCache {
			byKey[sc.key] = j
		}
		select {
		case s.queue <- j:
			// Same shutdown race guard as handleSubmit: a Shutdown that
			// drained the queue between our send and the workers exiting
			// would strand the job in "queued" forever.
			if s.closed.Load() {
				j.Cancel()
			}
		case <-sw.ctx.Done():
			j.Cancel()
		}
	}
	// Wait for every materialized cell; jobs always reach a terminal
	// state (cancellation propagates through sw.ctx and the queue drain).
	for i := range sw.cells {
		if j := sw.jobAt(i); j != nil {
			<-j.Done()
		}
	}
}
