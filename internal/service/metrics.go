package service

import (
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"time"

	"phonocmap/internal/core"
	"phonocmap/internal/obs"
	"phonocmap/internal/store"
)

// serverMetrics holds the service's directly-updated instruments; the
// callback-backed gauges (queue depth, utilization, active jobs) are
// registered in initMetrics and read live server state on scrape.
type serverMetrics struct {
	reg *obs.Registry

	requests *obs.CounterVec   // phonocmap_http_requests_total{endpoint,code}
	latency  *obs.HistogramVec // phonocmap_http_request_seconds{endpoint}

	// evalsDone counts the evaluations of finished (terminal) jobs;
	// in-flight evaluations are summed from the live jobs on demand.
	// Cache hits replay results without evaluating and are not counted.
	evalsDone       *obs.Counter
	workersBusy     *obs.Gauge
	jobsSubmitted   *obs.Counter
	sweepsSubmitted *obs.Counter
}

// initMetrics builds the registry and binds every metric family. Called
// once from New, after the server's pools exist and before any request
// can arrive.
func (s *Server) initMetrics() {
	reg := obs.NewRegistry()
	m := &serverMetrics{
		reg: reg,
		requests: reg.CounterVec("phonocmap_http_requests_total",
			"HTTP requests served, by route pattern and status code.",
			"endpoint", "code"),
		latency: reg.HistogramVec("phonocmap_http_request_seconds",
			"HTTP request latency in seconds, by route pattern.",
			obs.DefBuckets, "endpoint"),
		evalsDone: reg.Counter("phonocmap_evals_finished_total",
			"Mapping evaluations of finished jobs (in-flight progress is in phonocmap_evals_total)."),
		workersBusy: reg.Gauge("phonocmap_workers_busy",
			"Workers currently executing a job."),
		jobsSubmitted: reg.Counter("phonocmap_jobs_submitted_total",
			"Jobs registered (direct submissions, sweep cells and cache replays)."),
		sweepsSubmitted: reg.Counter("phonocmap_sweeps_submitted_total",
			"Design-space sweeps accepted."),
	}
	s.metrics = m

	reg.CounterFn("phonocmap_evals_total",
		"Mapping evaluations performed since start (finished jobs plus in-flight progress; cache replays do not count).",
		func() float64 { return float64(s.totalEvalsNow()) })
	reg.GaugeFn("phonocmap_evals_per_sec",
		"Lifetime average evaluation throughput — the effective search capacity under the equal-budget protocol.",
		func() float64 { return s.evalsPerSec(s.totalEvalsNow()) })
	reg.GaugeFn("phonocmap_uptime_seconds",
		"Seconds since the server started.",
		func() float64 { return time.Since(s.started).Seconds() })
	reg.GaugeFn("phonocmap_queue_depth",
		"Jobs waiting for a worker.",
		func() float64 { return float64(len(s.queue)) })
	reg.GaugeFn("phonocmap_queue_capacity",
		"Job queue capacity; submissions beyond it are rejected with 503.",
		func() float64 { return float64(s.cfg.QueueSize) })
	reg.GaugeFn("phonocmap_workers",
		"Worker pool size.",
		func() float64 { return float64(s.cfg.Workers) })
	reg.GaugeFn("phonocmap_eval_workers",
		"Per-run batch-evaluation worker count (results are identical at any setting; only throughput changes).",
		func() float64 { return float64(core.DefaultEvalWorkers()) })
	reg.CounterFn("phonocmap_batch_evals_total",
		"Mapping evaluations committed through the batch evaluation path.",
		func() float64 { return float64(core.BatchEvalsTotal()) })
	reg.GaugeFn("phonocmap_worker_utilization",
		"Fraction of the worker pool currently executing jobs (0..1).",
		func() float64 { return m.workersBusy.Value() / float64(s.cfg.Workers) })
	reg.GaugeFn("phonocmap_jobs_active",
		"Registered jobs not yet in a terminal state.",
		func() float64 { return float64(s.activeJobs()) })
	reg.GaugeFn("phonocmap_sweeps_active",
		"Registered sweeps not yet in a terminal state.",
		func() float64 { return float64(s.activeSweeps()) })
	reg.CounterFn("phonocmap_cache_hits_total",
		"Result-cache hits.",
		func() float64 { return float64(s.cache.hits.Value()) })
	reg.CounterFn("phonocmap_cache_misses_total",
		"Result-cache misses.",
		func() float64 { return float64(s.cache.misses.Value()) })
	reg.CounterFn("phonocmap_cache_evictions_total",
		"Result-cache LRU evictions.",
		func() float64 { return float64(s.cache.evictions.Value()) })
	reg.GaugeFn("phonocmap_cache_entries",
		"Result-cache entries currently held.",
		func() float64 { return float64(s.cache.size()) })
	// Persistent store tier. Always registered so the exposition shape is
	// stable: without -cache-dir every family reads zero.
	reg.CounterFn("phonocmap_store_gets_total",
		"Persistent-store lookups (LRU misses read through, warming loads count too).",
		func() float64 { return float64(s.cache.storeGets.Value()) })
	reg.CounterFn("phonocmap_store_hits_total",
		"Persistent-store lookups that found an entry.",
		func() float64 { return float64(s.cache.storeHits.Value()) })
	reg.CounterFn("phonocmap_store_puts_total",
		"Results persisted to the store (completed write-behind writes).",
		func() float64 { return float64(s.cache.storePuts.Value()) })
	reg.CounterFn("phonocmap_store_errors_total",
		"Persistent-store operations that failed (I/O errors, quarantined corrupt entries).",
		func() float64 { return float64(s.cache.storeErrors.Value()) })
	reg.CounterFn("phonocmap_store_evictions_total",
		"Entries the store evicted to stay under its size cap.",
		func() float64 {
			if sr, ok := s.cache.store.(store.StatReader); ok {
				return float64(sr.Stats().Evictions)
			}
			return 0
		})
	reg.GaugeFn("phonocmap_store_entries",
		"Entries currently persisted in the store.",
		func() float64 { return float64(s.cache.store.Len()) })
	reg.GaugeFn("phonocmap_store_bytes",
		"Total bytes the persisted entries occupy on disk.",
		func() float64 {
			if sr, ok := s.cache.store.(store.StatReader); ok {
				return float64(sr.Stats().Bytes)
			}
			return 0
		})
}

// MetricsRegistry exposes the server's metric registry so co-located
// components (a fleet coordinator embedding a node in-process, extra
// collectors in the serve binary) can register additional families onto
// the same /metrics exposition.
func (s *Server) MetricsRegistry() *obs.Registry { return s.metrics.reg }

// totalEvalsNow is the single evaluation-count truth /healthz and
// /metrics share: evaluations folded from finished jobs plus the live
// jobs' in-flight progress. The folded counter is read BEFORE the scan:
// a job folding mid-scan is then skipped by unfoldedEvals and not yet in
// done — a transient undercount, never a double count.
func (s *Server) totalEvalsNow() int64 {
	done := s.metrics.evalsDone.Value()
	s.mu.Lock()
	unfolded := int64(0)
	for _, j := range s.jobs {
		unfolded += int64(j.unfoldedEvals())
	}
	s.mu.Unlock()
	return done + unfolded
}

// evalsPerSec is the lifetime average throughput for a given total.
// The denominator is clamped to one second: right after startup the
// true uptime is near zero and a plain division would report an absurd
// throughput spike (a fast cached burst could read as millions of
// evals/sec), which poisons dashboards and autoscaling signals.
func (s *Server) evalsPerSec(total int64) float64 {
	return float64(total) / math.Max(time.Since(s.started).Seconds(), 1)
}

// activeJobs counts registered jobs not yet in a terminal state.
func (s *Server) activeJobs() int {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	active := 0
	for _, j := range jobs {
		if !j.currentState().Terminal() {
			active++
		}
	}
	return active
}

// handleMetrics serves GET /metrics in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", obs.ContentType)
	_ = s.metrics.reg.WritePrometheus(w)
}

// statusWriter captures the response status for request accounting. It
// forwards Flush so the SSE event stream keeps streaming through the
// middleware.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// instrument wraps the API mux with per-endpoint request counting,
// latency histograms and the access log. The endpoint label is the
// mux's route pattern — bounded cardinality no matter what paths
// clients probe.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		// The mux sets r.Pattern only on the clone it hands the handler;
		// matching again here is cheap and race-free.
		_, pattern := s.mux.Handler(r)
		if pattern == "" {
			pattern = "unmatched"
		}
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		s.metrics.requests.With(pattern, strconv.Itoa(code)).Inc()
		s.metrics.latency.With(pattern).Observe(elapsed.Seconds())
		s.logger.LogAttrs(r.Context(), slog.LevelDebug, "http request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("endpoint", pattern),
			slog.Int("status", code),
			slog.Float64("duration_ms", float64(elapsed)/float64(time.Millisecond)),
		)
	})
}
