package service

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"phonocmap/internal/store"
)

// metricFamilies is the documented contract of GET /metrics: every
// family the server exposes, with its exposition type. A family
// disappearing or changing type here is an observability regression
// even when the server otherwise works.
var metricFamilies = map[string]string{
	"phonocmap_http_requests_total":    "counter",
	"phonocmap_http_request_seconds":   "histogram",
	"phonocmap_evals_total":            "counter",
	"phonocmap_evals_finished_total":   "counter",
	"phonocmap_evals_per_sec":          "gauge",
	"phonocmap_uptime_seconds":         "gauge",
	"phonocmap_queue_depth":            "gauge",
	"phonocmap_queue_capacity":         "gauge",
	"phonocmap_workers":                "gauge",
	"phonocmap_workers_busy":           "gauge",
	"phonocmap_eval_workers":           "gauge",
	"phonocmap_batch_evals_total":      "counter",
	"phonocmap_worker_utilization":     "gauge",
	"phonocmap_jobs_active":            "gauge",
	"phonocmap_jobs_submitted_total":   "counter",
	"phonocmap_sweeps_active":          "gauge",
	"phonocmap_sweeps_submitted_total": "counter",
	"phonocmap_cache_hits_total":       "counter",
	"phonocmap_cache_misses_total":     "counter",
	"phonocmap_cache_evictions_total":  "counter",
	"phonocmap_cache_entries":          "gauge",
	"phonocmap_store_gets_total":       "counter",
	"phonocmap_store_hits_total":       "counter",
	"phonocmap_store_puts_total":       "counter",
	"phonocmap_store_errors_total":     "counter",
	"phonocmap_store_evictions_total":  "counter",
	"phonocmap_store_entries":          "gauge",
	"phonocmap_store_bytes":            "gauge",
}

// scrapeMetrics fetches /metrics and parses the exposition strictly:
// every line must be a HELP comment, a TYPE comment, or a sample, and
// every sample must belong to a family with a preceding TYPE line.
func scrapeMetrics(t *testing.T, base string) (types map[string]string, samples map[string]float64) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics returned %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type %q does not declare exposition version 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	types = make(map[string]string)
	samples = make(map[string]float64)
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			// help text is free-form; nothing to validate beyond shape
			if len(strings.SplitN(line[len("# HELP "):], " ", 2)) != 2 {
				t.Fatalf("malformed HELP line: %q", line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.SplitN(line[len("# TYPE "):], " ", 2)
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			types[parts[0]] = parts[1]
		case line == "":
			t.Fatal("exposition contains a blank line")
		default:
			idx := strings.LastIndexByte(line, ' ')
			if idx < 0 {
				t.Fatalf("malformed sample line: %q", line)
			}
			series, val := line[:idx], line[idx+1:]
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				t.Fatalf("sample %q has unparseable value %q: %v", series, val, err)
			}
			name := series
			if b := strings.IndexByte(series, '{'); b >= 0 {
				name = series[:b]
			}
			family := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if h := strings.TrimSuffix(name, suffix); h != name && types[h] == "histogram" {
					family = h
				}
			}
			if _, ok := types[family]; !ok {
				t.Fatalf("sample %q has no preceding TYPE line", series)
			}
			samples[series] = f
		}
	}
	return types, samples
}

// TestMetricsEndpoint drives real traffic through the server — a job, a
// cache replay, an unmatched probe — then scrapes /metrics and asserts
// every documented family is present with the right type and that the
// counters reflect what actually happened.
func TestMetricsEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2})
	base := ts.URL

	req := Request{Objective: "snr", Algorithm: "rs", Budget: 200, Seed: 1}
	req.App.Builtin = "PIP"
	var submitted JobStatus
	if code := doJSON(t, http.MethodPost, base+"/v1/jobs", req, &submitted); code != http.StatusAccepted {
		t.Fatalf("submit returned %d, want 202", code)
	}
	pollUntil(t, base, submitted.ID, 60*time.Second, func(st JobStatus) bool {
		return st.State.Terminal()
	})
	// Same spec again: a cache replay.
	var replayed JobStatus
	doJSON(t, http.MethodPost, base+"/v1/jobs", req, &replayed)
	pollUntil(t, base, replayed.ID, 10*time.Second, func(st JobStatus) bool {
		return st.State.Terminal()
	})
	// A probe no route matches lands in the "unmatched" endpoint bucket.
	resp, err := http.Get(base + "/no/such/route")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	types, samples := scrapeMetrics(t, base)

	for family, wantType := range metricFamilies {
		if got, ok := types[family]; !ok {
			t.Errorf("family %s missing from /metrics", family)
		} else if got != wantType {
			t.Errorf("family %s has type %q, want %q", family, got, wantType)
		}
	}

	cfg := srv.Config()
	expect := func(series string, want float64) {
		t.Helper()
		if got, ok := samples[series]; !ok {
			t.Errorf("series %s missing", series)
		} else if got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}
	atLeast := func(series string, min float64) {
		t.Helper()
		if got, ok := samples[series]; !ok {
			t.Errorf("series %s missing", series)
		} else if got < min {
			t.Errorf("%s = %v, want >= %v", series, got, min)
		}
	}

	expect("phonocmap_workers", float64(cfg.Workers))
	expect("phonocmap_queue_capacity", float64(cfg.QueueSize))
	expect("phonocmap_eval_workers", 1)
	expect("phonocmap_cache_hits_total", 1)
	expect("phonocmap_cache_misses_total", 1)
	expect("phonocmap_cache_evictions_total", 0)
	expect("phonocmap_cache_entries", 1)
	expect("phonocmap_jobs_active", 0)
	expect("phonocmap_sweeps_active", 0)
	expect("phonocmap_sweeps_submitted_total", 0)
	atLeast("phonocmap_jobs_submitted_total", 2)
	// One real run of 200 evaluations; the replay must not re-count.
	expect("phonocmap_evals_finished_total", 200)
	expect("phonocmap_evals_total", 200)
	atLeast("phonocmap_uptime_seconds", 0)
	atLeast("phonocmap_evals_per_sec", 0)
	// No -cache-dir in this server: the store families are exposed but
	// read zero.
	expect("phonocmap_store_gets_total", 0)
	expect("phonocmap_store_hits_total", 0)
	expect("phonocmap_store_puts_total", 0)
	expect("phonocmap_store_errors_total", 0)
	expect("phonocmap_store_evictions_total", 0)
	expect("phonocmap_store_entries", 0)
	expect("phonocmap_store_bytes", 0)

	// Per-endpoint accounting: the first submission was accepted with
	// 202, the cache replay answered 200 on the same route, and the
	// bogus path landed in the unmatched bucket.
	expect(`phonocmap_http_requests_total{endpoint="POST /v1/jobs",code="202"}`, 1)
	expect(`phonocmap_http_requests_total{endpoint="POST /v1/jobs",code="200"}`, 1)
	atLeast(`phonocmap_http_requests_total{endpoint="unmatched",code="404"}`, 1)
	atLeast(`phonocmap_http_requests_total{endpoint="GET /v1/jobs/{id}",code="200"}`, 2)

	// The latency histogram carries the full bucket ladder per endpoint,
	// cumulative and capped by the +Inf bucket equal to _count.
	count := samples[`phonocmap_http_request_seconds_count{endpoint="POST /v1/jobs"}`]
	if count != 2 {
		t.Errorf("POST /v1/jobs latency count = %v, want 2", count)
	}
	inf := samples[`phonocmap_http_request_seconds_bucket{endpoint="POST /v1/jobs",le="+Inf"}`]
	if inf != count {
		t.Errorf("+Inf bucket %v != count %v", inf, count)
	}
	if _, ok := samples[`phonocmap_http_request_seconds_sum{endpoint="POST /v1/jobs"}`]; !ok {
		t.Error("latency histogram missing _sum series")
	}
	for series, v := range samples {
		if strings.HasPrefix(series, `phonocmap_http_request_seconds_bucket{endpoint="POST /v1/jobs"`) && v > count {
			t.Errorf("bucket %s = %v exceeds count %v", series, v, count)
		}
	}
}

// TestMetricsWithStore scrapes a server backed by a file store: the
// store families must reflect the persisted traffic, not read zero.
func TestMetricsWithStore(t *testing.T) {
	st, err := store.OpenFile(t.TempDir(), store.FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, Config{Workers: 2, Store: st})
	base := ts.URL

	req := Request{Objective: "snr", Algorithm: "rs", Budget: 200, Seed: 1}
	req.App.Builtin = "PIP"
	var submitted JobStatus
	doJSON(t, http.MethodPost, base+"/v1/jobs", req, &submitted)
	pollUntil(t, base, submitted.ID, 60*time.Second, func(s JobStatus) bool {
		return s.State.Terminal()
	})
	srv.cache.flush() // settle the write-behind before scraping

	_, samples := scrapeMetrics(t, base)
	if samples["phonocmap_store_puts_total"] != 1 {
		t.Errorf("store_puts_total = %v, want 1", samples["phonocmap_store_puts_total"])
	}
	if samples["phonocmap_store_entries"] != 1 {
		t.Errorf("store_entries = %v, want 1", samples["phonocmap_store_entries"])
	}
	if samples["phonocmap_store_bytes"] <= 0 {
		t.Errorf("store_bytes = %v, want > 0", samples["phonocmap_store_bytes"])
	}
	if samples["phonocmap_store_errors_total"] != 0 {
		t.Errorf("store_errors_total = %v, want 0", samples["phonocmap_store_errors_total"])
	}

	// GET /v1/cache mirrors the same truth as JSON.
	var cs CacheStats
	if code := doJSON(t, http.MethodGet, base+"/v1/cache", nil, &cs); code != http.StatusOK {
		t.Fatalf("GET /v1/cache returned %d", code)
	}
	if cs.Store == nil || cs.Store.Puts != 1 || cs.Store.Entries != 1 {
		t.Errorf("cache stats store section = %+v, want 1 put / 1 entry", cs.Store)
	}

	// DELETE /v1/cache empties both tiers.
	var cleared CacheClearResult
	if code := doJSON(t, http.MethodDelete, base+"/v1/cache", nil, &cleared); code != http.StatusOK {
		t.Fatalf("DELETE /v1/cache returned %d", code)
	}
	if cleared.ClearedEntries != 1 || cleared.ClearedStore != 1 {
		t.Errorf("clear result = %+v, want 1/1", cleared)
	}
	_, samples = scrapeMetrics(t, base)
	if samples["phonocmap_store_entries"] != 0 || samples["phonocmap_cache_entries"] != 0 {
		t.Error("tiers not empty after DELETE /v1/cache")
	}
}

// TestMetricsConcurrentScrape hammers /metrics while jobs run and other
// endpoints are probed — the scrape path must stay consistent under
// the race detector.
func TestMetricsConcurrentScrape(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	base := ts.URL

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			req := Request{Objective: "snr", Algorithm: "rs", Budget: 100, Seed: int64(g + 1)}
			req.App.Builtin = "PIP"
			var st JobStatus
			doJSON(t, http.MethodPost, base+"/v1/jobs", req, &st)
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				scrapeMetrics(t, base)
				resp, err := http.Get(base + "/healthz")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()

	// After the dust settles the registry still serves a parseable,
	// complete exposition.
	types, _ := scrapeMetrics(t, base)
	for family := range metricFamilies {
		if _, ok := types[family]; !ok {
			t.Errorf("family %s missing after concurrent load", family)
		}
	}
}

// TestMetricsWorkerUtilization pins the utilization gauge's range: it
// must read 0 on an idle server and stay within [0, 1] while loaded.
func TestMetricsWorkerUtilization(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	_, samples := scrapeMetrics(t, ts.URL)
	if v := samples["phonocmap_worker_utilization"]; v != 0 {
		t.Errorf("idle utilization = %v, want 0", v)
	}
	if v := samples["phonocmap_workers_busy"]; v != 0 {
		t.Errorf("idle workers_busy = %v, want 0", v)
	}
	if v, ok := samples["phonocmap_queue_depth"]; !ok || v != 0 {
		t.Errorf("idle queue_depth = %v (present %t), want 0", v, ok)
	}
}
