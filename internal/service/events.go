package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// sseInterval is the sampling stride of the job event stream: snapshots
// are compared at this cadence and emitted only when something changed,
// so an idle long run costs no bandwidth between heartbeat-driven
// progress updates.
const sseInterval = 100 * time.Millisecond

// handleEvents serves GET /v1/jobs/{id}/events: a Server-Sent Events
// stream of JobStatus snapshots. The stream opens with the current
// status, emits a "status" event whenever the job's state, evaluation
// count, incumbent or error changes, and ends with the terminal
// snapshot — a push alternative to polling GET /v1/jobs/{id} that makes
// remote runs as observable as local ones.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, CodeNotFound, "unknown job", nil)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, CodeUnsupported, "response writer cannot stream", nil)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	// Tell buffering reverse proxies (nginx et al.) to pass events
	// through as they are written.
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	emit := func(st JobStatus) bool {
		b, err := json.Marshal(st)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: status\ndata: %s\n\n", b); err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	last := j.status()
	if !emit(last) || last.State.Terminal() {
		return
	}
	ticker := time.NewTicker(sseInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.baseCtx.Done():
			// Server shutdown: emit the latest snapshot and close the
			// stream so the connection goes idle for the listener drain.
			emit(j.status())
			return
		case <-j.Done():
			emit(j.status())
			return
		case <-ticker.C:
			st := j.status()
			if statusChanged(last, st) {
				if !emit(st) {
					return
				}
				last = st
			}
			if st.State.Terminal() {
				return
			}
		}
	}
}

// statusChanged reports whether two status snapshots differ in anything
// a stream consumer acts on.
func statusChanged(a, b JobStatus) bool {
	if a.State != b.State || a.Evals != b.Evals || a.Error != b.Error {
		return true
	}
	if (a.Best == nil) != (b.Best == nil) {
		return true
	}
	return a.Best != nil && *a.Best != *b.Best
}
