package service

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestErrorEnvelopeCodes: every failure class answers with the
// structured envelope and its machine-readable code — the contract the
// client SDK branches on.
func TestErrorEnvelopeCodes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := ts.URL

	cases := []struct {
		name     string
		method   string
		path     string
		body     string
		wantHTTP int
		wantCode ErrorCode
	}{
		{"malformed json", http.MethodPost, "/v1/jobs", `{`, http.StatusBadRequest, CodeInvalidRequest},
		{"unknown field", http.MethodPost, "/v1/jobs", `{"app":{"builtin":"PIP"},"bogus":1}`, http.StatusBadRequest, CodeInvalidRequest},
		{"unknown app", http.MethodPost, "/v1/jobs", `{"app":{"builtin":"NOPE"}}`, http.StatusBadRequest, CodeInvalidSpec},
		{"unknown job", http.MethodGet, "/v1/jobs/job-999999", "", http.StatusNotFound, CodeNotFound},
		{"unknown job result", http.MethodGet, "/v1/jobs/job-999999/result", "", http.StatusNotFound, CodeNotFound},
		{"unknown job events", http.MethodGet, "/v1/jobs/job-999999/events", "", http.StatusNotFound, CodeNotFound},
		{"unknown sweep", http.MethodGet, "/v1/sweeps/sweep-999999", "", http.StatusNotFound, CodeNotFound},
		{"bad list status", http.MethodGet, "/v1/jobs?status=bogus", "", http.StatusBadRequest, CodeInvalidRequest},
		{"bad list limit", http.MethodGet, "/v1/jobs?limit=x", "", http.StatusBadRequest, CodeInvalidRequest},
		{"bad sweep list status", http.MethodGet, "/v1/sweeps?status=bogus", "", http.StatusBadRequest, CodeInvalidRequest},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, base+c.path, strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var env ErrorEnvelope
		err = json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if err != nil {
			t.Errorf("%s: body is not an error envelope: %v", c.name, err)
			continue
		}
		if resp.StatusCode != c.wantHTTP {
			t.Errorf("%s: HTTP %d, want %d", c.name, resp.StatusCode, c.wantHTTP)
		}
		if env.Error.Code != c.wantCode {
			t.Errorf("%s: code %q, want %q", c.name, env.Error.Code, c.wantCode)
		}
		if env.Error.Message == "" {
			t.Errorf("%s: empty error message", c.name)
		}
	}
}

// TestNoResultEnvelope: a job that failed (or was cancelled before any
// evaluation) answers its result endpoint with the no_result envelope.
func TestNoResultEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBudget: 100_000_000})
	base := ts.URL

	// Occupy the single worker so the next job stays queued, then cancel
	// it there: cancelled before any evaluation, so no result exists.
	long := Request{Algorithm: "rs", Budget: 50_000_000, Seed: 1}
	long.App.Builtin = "VOPD"
	var blocker JobStatus
	if code := doJSON(t, http.MethodPost, base+"/v1/jobs", long, &blocker); code != http.StatusAccepted {
		t.Fatalf("blocker submit returned %d", code)
	}
	queued := long
	queued.Seed = 2
	var victim JobStatus
	if code := doJSON(t, http.MethodPost, base+"/v1/jobs", queued, &victim); code != http.StatusAccepted {
		t.Fatalf("victim submit returned %d", code)
	}
	doJSON(t, http.MethodDelete, base+"/v1/jobs/"+victim.ID, nil, nil)
	pollUntil(t, base, victim.ID, 10*time.Second, func(st JobStatus) bool { return st.State.Terminal() })

	resp, err := http.Get(base + "/v1/jobs/" + victim.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var env ErrorEnvelope
	err = json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("result body is not an envelope: %v", err)
	}
	if resp.StatusCode != http.StatusConflict || env.Error.Code != CodeNoResult {
		t.Errorf("got HTTP %d code %q, want 409 %q", resp.StatusCode, env.Error.Code, CodeNoResult)
	}
	doJSON(t, http.MethodDelete, base+"/v1/jobs/"+blocker.ID, nil, nil)
}

// TestListFilters: ?status= and ?limit= restrict the job listing to the
// most recent matching entries.
func TestListFilters(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := ts.URL

	req := Request{Algorithm: "rs", Budget: 60}
	req.App.Builtin = "PIP"
	var ids []string
	for seed := int64(1); seed <= 3; seed++ {
		req.Seed = seed
		var st JobStatus
		if code := doJSON(t, http.MethodPost, base+"/v1/jobs", req, &st); code != http.StatusAccepted {
			t.Fatalf("submit returned %d", code)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		pollUntil(t, base, id, 30*time.Second, func(st JobStatus) bool { return st.State.Terminal() })
	}

	var all []JobStatus
	if code := doJSON(t, http.MethodGet, base+"/v1/jobs?status=done", nil, &all); code != http.StatusOK {
		t.Fatalf("status filter returned %d", code)
	}
	if len(all) != 3 {
		t.Errorf("done filter matched %d jobs, want 3", len(all))
	}

	var none []JobStatus
	if code := doJSON(t, http.MethodGet, base+"/v1/jobs?status=failed", nil, &none); code != http.StatusOK {
		t.Fatalf("failed filter returned %d", code)
	}
	if len(none) != 0 {
		t.Errorf("failed filter matched %d jobs, want 0", len(none))
	}

	var capped []JobStatus
	if code := doJSON(t, http.MethodGet, base+"/v1/jobs?status=done&limit=2", nil, &capped); code != http.StatusOK {
		t.Fatalf("limit filter returned %d", code)
	}
	if len(capped) != 2 {
		t.Fatalf("limit=2 returned %d jobs", len(capped))
	}
	// The cap keeps the most recent submissions.
	if capped[0].ID != ids[1] || capped[1].ID != ids[2] {
		t.Errorf("limit kept %s,%s, want the most recent %s,%s",
			capped[0].ID, capped[1].ID, ids[1], ids[2])
	}

	// The sweep listing shares the same filter (an empty registry with a
	// valid filter is simply empty).
	var sweeps []SweepStatus
	if code := doJSON(t, http.MethodGet, base+"/v1/sweeps?status=done&limit=5", nil, &sweeps); code != http.StatusOK {
		t.Fatalf("sweep filter returned %d", code)
	}
	if len(sweeps) != 0 {
		t.Errorf("empty sweep registry listed %d sweeps", len(sweeps))
	}
}

// TestJobEventsStream: the SSE endpoint streams status snapshots and
// terminates with the terminal one.
func TestJobEventsStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBudget: 10_000_000})
	base := ts.URL

	req := Request{Algorithm: "rs", Budget: 150_000, Seed: 1}
	req.App.Builtin = "VOPD"
	var st JobStatus
	if code := doJSON(t, http.MethodPost, base+"/v1/jobs", req, &st); code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}

	resp, err := http.Get(base + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events returned %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("events content type %q", ct)
	}

	var events []JobStatus
	sc := bufio.NewScanner(resp.Body)
	var data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		case line == "" && data != "":
			var ev JobStatus
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("bad event payload %q: %v", data, err)
			}
			events = append(events, ev)
			data = ""
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no events received")
	}
	last := events[len(events)-1]
	if last.State != StateDone {
		t.Errorf("stream ended in state %q, want done", last.State)
	}
	if last.Evals == 0 {
		t.Error("terminal event reports zero evaluations")
	}
	// Evaluation counts are monotone along the stream.
	for i := 1; i < len(events); i++ {
		if events[i].Evals < events[i-1].Evals {
			t.Errorf("evals regressed at event %d: %d -> %d", i, events[i-1].Evals, events[i].Evals)
		}
	}
	// The streamed terminal snapshot matches a regular status poll.
	var polled JobStatus
	if code := doJSON(t, http.MethodGet, base+"/v1/jobs/"+st.ID, nil, &polled); code != http.StatusOK {
		t.Fatalf("status poll returned %d", code)
	}
	if polled.Evals != last.Evals || polled.State != last.State {
		t.Errorf("stream end (%s, %d evals) != polled status (%s, %d evals)",
			last.State, last.Evals, polled.State, polled.Evals)
	}
}

// TestHealthzVersion: the health payload carries a non-empty build
// version.
func TestHealthzVersion(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var h Health
	if code := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("healthz returned %d", code)
	}
	if h.Version == "" {
		t.Error("healthz reports an empty version")
	}
}
