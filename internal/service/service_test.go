package service

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, ts
}

func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// pollUntil polls the job status until pred is satisfied or the deadline
// passes, returning the final status and every state observed.
func pollUntil(t *testing.T, base, id string, timeout time.Duration, pred func(JobStatus) bool) (JobStatus, map[State]bool) {
	t.Helper()
	seen := make(map[State]bool)
	deadline := time.Now().Add(timeout)
	for {
		var st JobStatus
		if code := doJSON(t, http.MethodGet, base+"/v1/jobs/"+id, nil, &st); code != http.StatusOK {
			t.Fatalf("status poll returned %d", code)
		}
		seen[st.State] = true
		if pred(st) {
			return st, seen
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not reach target state in %v (last: %+v)", id, timeout, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestEndToEndVOPD(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := ts.URL

	req := Request{Objective: "snr", Algorithm: "rpbla", Budget: 3000, Seed: 1}
	req.App.Builtin = "VOPD"

	var submitted JobStatus
	if code := doJSON(t, http.MethodPost, base+"/v1/jobs", req, &submitted); code != http.StatusAccepted {
		t.Fatalf("submit returned %d, want 202", code)
	}
	if submitted.State != StateQueued {
		t.Errorf("fresh job state %q, want queued", submitted.State)
	}
	if submitted.Spec.Arch.Width != 4 || submitted.Spec.Arch.Height != 4 {
		t.Errorf("VOPD should default to a 4x4 mesh, got %dx%d", submitted.Spec.Arch.Width, submitted.Spec.Arch.Height)
	}

	final, _ := pollUntil(t, base, submitted.ID, 60*time.Second, func(st JobStatus) bool {
		return st.State.Terminal()
	})
	if final.State != StateDone {
		t.Fatalf("job finished %q (error %q), want done", final.State, final.Error)
	}
	if final.Evals == 0 {
		t.Error("finished job reports zero evaluations")
	}

	var res JobResult
	if code := doJSON(t, http.MethodGet, base+"/v1/jobs/"+submitted.ID+"/result", nil, &res); code != http.StatusOK {
		t.Fatalf("result returned %d, want 200", code)
	}
	if math.IsInf(res.Score.WorstSNRDB, 0) || math.IsNaN(res.Score.WorstSNRDB) || res.Score.WorstSNRDB == 0 {
		t.Errorf("worst-case SNR %v not finite/nonzero", res.Score.WorstSNRDB)
	}
	if len(res.Mapping) != 16 {
		t.Errorf("VOPD mapping has %d tasks, want 16", len(res.Mapping))
	}
	if res.Cached {
		t.Error("first submission claims to be cached")
	}

	// A second identical POST must be answered from the cache, already
	// done, with the identical score.
	var second JobStatus
	if code := doJSON(t, http.MethodPost, base+"/v1/jobs", req, &second); code != http.StatusOK {
		t.Fatalf("cached submit returned %d, want 200", code)
	}
	if second.State != StateDone || !second.Cached {
		t.Fatalf("second submission state=%q cached=%v, want done/true", second.State, second.Cached)
	}
	var res2 JobResult
	if code := doJSON(t, http.MethodGet, base+"/v1/jobs/"+second.ID+"/result", nil, &res2); code != http.StatusOK {
		t.Fatalf("cached result returned %d, want 200", code)
	}
	if res2.Score != res.Score {
		t.Errorf("cached score %+v != original %+v", res2.Score, res.Score)
	}
	if !res2.Cached {
		t.Error("cached result not flagged cached")
	}

	// The convergence trace of the original run is non-empty.
	var tr JobTrace
	if code := doJSON(t, http.MethodGet, base+"/v1/jobs/"+submitted.ID+"/trace", nil, &tr); code != http.StatusOK {
		t.Fatalf("trace returned %d", code)
	}
	if len(tr.Trace) == 0 {
		t.Error("empty convergence trace")
	}
	for i := 1; i < len(tr.Trace); i++ {
		if tr.Trace[i].Score.Cost > tr.Trace[i-1].Score.Cost {
			t.Errorf("trace not monotone at %d: %v -> %v", i, tr.Trace[i-1].Score.Cost, tr.Trace[i].Score.Cost)
		}
	}
}

func TestIslandsJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	base := ts.URL

	// 1234 is deliberately not a multiple of the progress stride, so this
	// also checks that the final per-island eval counts are reported
	// exactly rather than left at the last heartbeat.
	req := Request{Algorithm: "rs", Budget: 1234, Seed: 1, Seeds: 3}
	req.App.Builtin = "PIP"
	var submitted JobStatus
	if code := doJSON(t, http.MethodPost, base+"/v1/jobs", req, &submitted); code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	if submitted.Budget != 3*1234 {
		t.Errorf("islands budget %d, want %d", submitted.Budget, 3*1234)
	}
	final, _ := pollUntil(t, base, submitted.ID, 60*time.Second, func(st JobStatus) bool { return st.State.Terminal() })
	if final.State != StateDone {
		t.Fatalf("islands job finished %q (error %q)", final.State, final.Error)
	}
	if final.Evals != final.Budget {
		t.Errorf("finished islands job reports %d/%d evals; final progress not recorded", final.Evals, final.Budget)
	}
	var res JobResult
	if code := doJSON(t, http.MethodGet, base+"/v1/jobs/"+submitted.ID+"/result", nil, &res); code != http.StatusOK {
		t.Fatalf("result returned %d", code)
	}
	if res.Evals != 1234 {
		t.Errorf("winning island spent %d evals, want 1234", res.Evals)
	}
	if len(final.IslandEvals) != 3 {
		t.Fatalf("live islands status reports %d islands, want 3 (%v)", len(final.IslandEvals), final.IslandEvals)
	}
	for i, e := range final.IslandEvals {
		if e != 1234 {
			t.Errorf("island %d spent %d evals, want 1234", i, e)
		}
	}

	// A cached replay must report the same totals AND the same per-island
	// shape as the live run — a hit for a multi-seed spec must not
	// collapse the breakdown into a single pseudo-island.
	var cached JobStatus
	if code := doJSON(t, http.MethodPost, base+"/v1/jobs", req, &cached); code != http.StatusOK {
		t.Fatalf("cached submit returned %d", code)
	}
	if !cached.Cached || cached.Evals != final.Evals || cached.Budget != final.Budget {
		t.Errorf("cached islands status (cached=%v evals=%d budget=%d) != live (%d/%d)",
			cached.Cached, cached.Evals, cached.Budget, final.Evals, final.Budget)
	}
	if len(cached.IslandEvals) != len(final.IslandEvals) {
		t.Fatalf("cached replay reports %d islands, live run reported %d",
			len(cached.IslandEvals), len(final.IslandEvals))
	}
	for i := range cached.IslandEvals {
		if cached.IslandEvals[i] != final.IslandEvals[i] {
			t.Errorf("cached island %d evals %d != live %d", i, cached.IslandEvals[i], final.IslandEvals[i])
		}
	}
}

func TestCancelInFlightJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBudget: 100_000_000})
	base := ts.URL

	req := Request{Algorithm: "rs", Budget: 50_000_000, Seed: 1}
	req.App.Builtin = "VOPD"
	var submitted JobStatus
	if code := doJSON(t, http.MethodPost, base+"/v1/jobs", req, &submitted); code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	// Wait for it to actually start.
	pollUntil(t, base, submitted.ID, 30*time.Second, func(st JobStatus) bool { return st.State == StateRunning })

	var afterCancel JobStatus
	if code := doJSON(t, http.MethodDelete, base+"/v1/jobs/"+submitted.ID, nil, &afterCancel); code != http.StatusOK {
		t.Fatalf("cancel returned %d", code)
	}
	final, _ := pollUntil(t, base, submitted.ID, 10*time.Second, func(st JobStatus) bool { return st.State.Terminal() })
	if final.State != StateCancelled {
		t.Fatalf("job finished %q, want cancelled", final.State)
	}
	if final.Evals >= 50_000_000 {
		t.Error("cancelled job claims to have spent the whole budget")
	}
}

func TestCancelQueuedJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBudget: 100_000_000})
	base := ts.URL

	// Occupy the single worker.
	blocker := Request{Algorithm: "rs", Budget: 50_000_000, Seed: 1}
	blocker.App.Builtin = "VOPD"
	var b1 JobStatus
	doJSON(t, http.MethodPost, base+"/v1/jobs", blocker, &b1)

	queued := Request{Algorithm: "rs", Budget: 50_000_000, Seed: 2}
	queued.App.Builtin = "VOPD"
	var b2 JobStatus
	if code := doJSON(t, http.MethodPost, base+"/v1/jobs", queued, &b2); code != http.StatusAccepted {
		t.Fatalf("second submit returned %d", code)
	}

	var cancelled JobStatus
	doJSON(t, http.MethodDelete, base+"/v1/jobs/"+b2.ID, nil, &cancelled)
	if cancelled.State != StateCancelled {
		t.Fatalf("queued job state after cancel %q, want cancelled", cancelled.State)
	}
	// Clean up the blocker too so shutdown is fast.
	doJSON(t, http.MethodDelete, base+"/v1/jobs/"+b1.ID, nil, nil)
}

func TestShutdownCancelsRunningJobs(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, MaxBudget: 100_000_000})
	base := ts.URL

	req := Request{Algorithm: "rs", Budget: 50_000_000, Seed: 1}
	req.App.Builtin = "VOPD"
	var submitted JobStatus
	if code := doJSON(t, http.MethodPost, base+"/v1/jobs", req, &submitted); code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	pollUntil(t, base, submitted.ID, 30*time.Second, func(st JobStatus) bool { return st.State == StateRunning })

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain in time: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("shutdown took %v", elapsed)
	}

	// The handler still serves reads after shutdown; the job must have
	// been cancelled by context propagation, not left running.
	var st JobStatus
	if code := doJSON(t, http.MethodGet, base+"/v1/jobs/"+submitted.ID, nil, &st); code != http.StatusOK {
		t.Fatalf("status after shutdown returned %d", code)
	}
	if st.State != StateCancelled {
		t.Errorf("job state after shutdown %q, want cancelled", st.State)
	}

	// New submissions are refused.
	if code := doJSON(t, http.MethodPost, base+"/v1/jobs", req, nil); code != http.StatusServiceUnavailable {
		t.Errorf("submit after shutdown returned %d, want 503", code)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := ts.URL

	cases := []struct {
		name string
		body string
	}{
		{"unknown app", `{"app":{"builtin":"NOPE"}}`},
		{"unknown algorithm", `{"app":{"builtin":"PIP"},"algorithm":"nope"}`},
		{"unknown objective", `{"app":{"builtin":"PIP"},"objective":"nope"}`},
		{"negative budget", `{"app":{"builtin":"PIP"},"budget":-5}`},
		{"budget too large", `{"app":{"builtin":"PIP"},"budget":999999999}`},
		{"seeds too large", `{"app":{"builtin":"PIP"},"seeds":1000}`},
		{"unknown field", `{"app":{"builtin":"PIP"},"bogus":1}`},
		{"app too big for arch", `{"app":{"builtin":"VOPD"},"arch":{"topology":"mesh","width":2,"height":2}}`},
		{"malformed json", `{`},
	}
	for _, c := range cases {
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: got %d, want 400", c.name, resp.StatusCode)
		}
	}

	resp, err := http.Get(base + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job id: got %d, want 404", resp.StatusCode)
	}
}

func TestQueueFull(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueSize: 1, MaxBudget: 100_000_000})
	base := ts.URL

	req := Request{Algorithm: "rs", Budget: 50_000_000}
	req.App.Builtin = "VOPD"
	var ids []string
	full := false
	for i := 0; i < 8; i++ {
		req.Seed = int64(i + 1) // distinct specs dodge the cache
		var raw json.RawMessage
		code := doJSON(t, http.MethodPost, base+"/v1/jobs", req, &raw)
		switch code {
		case http.StatusAccepted:
			var st JobStatus
			if err := json.Unmarshal(raw, &st); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, st.ID)
		case http.StatusTooManyRequests:
			full = true
		default:
			t.Fatalf("submit %d returned %d", i, code)
		}
		if full {
			break
		}
	}
	if !full {
		t.Error("bounded queue never refused a submission")
	}
	for _, id := range ids {
		doJSON(t, http.MethodDelete, base+"/v1/jobs/"+id, nil, nil)
	}
}

func TestDiscoveryAndHealth(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueSize: 7})
	base := ts.URL

	var apps []AppInfo
	if code := doJSON(t, http.MethodGet, base+"/v1/apps", nil, &apps); code != http.StatusOK {
		t.Fatalf("apps returned %d", code)
	}
	found := false
	for _, a := range apps {
		if a.Name == "VOPD" && a.Tasks == 16 {
			found = true
		}
	}
	if !found {
		t.Errorf("VOPD missing from /v1/apps: %+v", apps)
	}

	var algos []string
	if code := doJSON(t, http.MethodGet, base+"/v1/algorithms", nil, &algos); code != http.StatusOK {
		t.Fatalf("algorithms returned %d", code)
	}
	if len(algos) == 0 || algos[0] != "rs" {
		t.Errorf("unexpected algorithm list %v", algos)
	}

	var h Health
	if code := doJSON(t, http.MethodGet, base+"/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("healthz returned %d", code)
	}
	if h.Status != "ok" || h.Workers != 2 || h.QueueCapacity != 7 {
		t.Errorf("unexpected health payload %+v", h)
	}
}

// TestHealthzEvalCounters: /healthz reports evaluation throughput — the
// service's effective search capacity under the equal-budget protocol.
// Real runs add their evaluations; cache replays do not.
func TestHealthzEvalCounters(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	base := ts.URL

	var h0 Health
	if code := doJSON(t, http.MethodGet, base+"/healthz", nil, &h0); code != http.StatusOK {
		t.Fatalf("healthz returned %d", code)
	}
	if h0.TotalEvals != 0 {
		t.Errorf("fresh server reports %d evals", h0.TotalEvals)
	}

	req := Request{Algorithm: "rs", Budget: 400, Seed: 3}
	req.App.Builtin = "PIP"
	var st JobStatus
	if code := doJSON(t, http.MethodPost, base+"/v1/jobs", req, &st); code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	final, _ := pollUntil(t, base, st.ID, 30*time.Second, func(s JobStatus) bool { return s.State.Terminal() })
	if final.State != StateDone {
		t.Fatalf("job finished %q", final.State)
	}

	var h1 Health
	if code := doJSON(t, http.MethodGet, base+"/healthz", nil, &h1); code != http.StatusOK {
		t.Fatalf("healthz returned %d", code)
	}
	if h1.TotalEvals != 400 {
		t.Errorf("total_evals = %d after a 400-eval run", h1.TotalEvals)
	}
	if h1.EvalsPerSec <= 0 {
		t.Errorf("evals_per_sec = %v, want > 0", h1.EvalsPerSec)
	}
	if h1.UptimeSec <= 0 {
		t.Errorf("uptime_sec = %v, want > 0", h1.UptimeSec)
	}

	// An identical second submission is served from the cache: no new
	// evaluations.
	var st2 JobStatus
	if code := doJSON(t, http.MethodPost, base+"/v1/jobs", req, &st2); code != http.StatusOK {
		t.Fatalf("cached submit returned %d", code)
	}
	var h2 Health
	if code := doJSON(t, http.MethodGet, base+"/healthz", nil, &h2); code != http.StatusOK {
		t.Fatalf("healthz returned %d", code)
	}
	if h2.TotalEvals != 400 {
		t.Errorf("cache hit changed total_evals: %d", h2.TotalEvals)
	}
}

// TestHealthzRateGuard: evals_per_sec divides by a clamped uptime
// (>= 1s), so a burst of work right after startup can never report a
// rate above the absolute evaluation count — the near-zero-denominator
// spike is structurally impossible.
func TestHealthzRateGuard(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	base := ts.URL

	// Fresh server: zero evals, zero rate, regardless of uptime.
	var h0 Health
	if code := doJSON(t, http.MethodGet, base+"/healthz", nil, &h0); code != http.StatusOK {
		t.Fatalf("healthz returned %d", code)
	}
	if h0.EvalsPerSec != 0 {
		t.Errorf("fresh server evals_per_sec = %v, want 0", h0.EvalsPerSec)
	}

	// Finish a quick job well inside the first second of uptime; the
	// clamp caps the reported rate at total_evals / 1s.
	req := Request{Algorithm: "rs", Budget: 500, Seed: 8}
	req.App.Builtin = "PIP"
	var st JobStatus
	if code := doJSON(t, http.MethodPost, base+"/v1/jobs", req, &st); code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	pollUntil(t, base, st.ID, 30*time.Second, func(s JobStatus) bool { return s.State.Terminal() })

	var h1 Health
	if code := doJSON(t, http.MethodGet, base+"/healthz", nil, &h1); code != http.StatusOK {
		t.Fatalf("healthz returned %d", code)
	}
	if h1.EvalsPerSec > float64(h1.TotalEvals) {
		t.Errorf("evals_per_sec %v exceeds total_evals %d: uptime denominator not clamped",
			h1.EvalsPerSec, h1.TotalEvals)
	}
	if h1.TotalEvals > 0 && h1.EvalsPerSec <= 0 {
		t.Errorf("evals_per_sec = %v with %d total evals", h1.EvalsPerSec, h1.TotalEvals)
	}
}

func TestNoCacheBypassesCache(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := ts.URL

	req := Request{Algorithm: "rs", Budget: 300, Seed: 5, NoCache: true}
	req.App.Builtin = "PIP"
	for i := 0; i < 2; i++ {
		var st JobStatus
		if code := doJSON(t, http.MethodPost, base+"/v1/jobs", req, &st); code != http.StatusAccepted {
			t.Fatalf("no_cache submit %d returned %d (cached hit?)", i, code)
		}
		final, _ := pollUntil(t, base, st.ID, 30*time.Second, func(s JobStatus) bool { return s.State.Terminal() })
		if final.State != StateDone {
			t.Fatalf("job finished %q", final.State)
		}
	}
}

func TestSpecKeyStability(t *testing.T) {
	req := Request{Algorithm: "rpbla", Budget: 100, Seed: 1}
	req.App.Builtin = "PIP"
	s1, err := normalize(req, Limits{MaxBudget: 1000, MaxSeeds: 4})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := normalize(req, Limits{MaxBudget: 1000, MaxSeeds: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Key() != s2.Key() {
		t.Error("identical requests produced different keys")
	}
	req2 := req
	req2.Seed = 2
	s3, err := normalize(req2, Limits{MaxBudget: 1000, MaxSeeds: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s3.Key() == s1.Key() {
		t.Error("different seeds collide")
	}
	if _, err := compile(s1); err != nil {
		t.Fatalf("compile on a normalized spec: %v", err)
	}
}

func TestResultBeforeDone(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBudget: 100_000_000})
	base := ts.URL
	req := Request{Algorithm: "rs", Budget: 50_000_000, Seed: 9}
	req.App.Builtin = "VOPD"
	var st JobStatus
	if code := doJSON(t, http.MethodPost, base+"/v1/jobs", req, &st); code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	code := doJSON(t, http.MethodGet, base+"/v1/jobs/"+st.ID+"/result", nil, nil)
	if code != http.StatusAccepted {
		t.Errorf("result of unfinished job returned %d, want 202", code)
	}
	doJSON(t, http.MethodDelete, base+"/v1/jobs/"+st.ID, nil, nil)
}
