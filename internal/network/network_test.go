package network

import (
	"math"
	"testing"
	"testing/quick"

	"phonocmap/internal/photonic"
	"phonocmap/internal/route"
	"phonocmap/internal/router"
	"phonocmap/internal/topo"
)

func mustMesh(t *testing.T, w, h int) *topo.Grid {
	t.Helper()
	g, err := topo.NewMesh(w, h)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newMeshNet(t *testing.T, w, h int) *Network {
	t.Helper()
	nw, err := New(mustMesh(t, w, h), router.Crux(), route.XY{}, photonic.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestNewValidates(t *testing.T) {
	bad := photonic.DefaultParams()
	bad.CrossingLoss = 1 // positive loss
	if _, err := New(mustMesh(t, 3, 3), router.Crux(), route.XY{}, bad); err == nil {
		t.Error("New accepted invalid params")
	}
}

func TestNewRejectsUnsupportedTurns(t *testing.T) {
	// Crux lacks Y->X turns, so YX routing must fail at construction.
	if _, err := New(mustMesh(t, 3, 3), router.Crux(), route.YX{}, photonic.DefaultParams()); err == nil {
		t.Error("Crux + YX accepted")
	}
	// The crossbar supports all turns, so YX works.
	if _, err := New(mustMesh(t, 3, 3), router.Crossbar(), route.YX{}, photonic.DefaultParams()); err != nil {
		t.Errorf("crossbar + YX rejected: %v", err)
	}
}

func TestNewRejectsNonGridAlgorithmMismatch(t *testing.T) {
	r, _ := topo.NewRing(6)
	if _, err := New(r, router.Crux(), route.XY{}, photonic.DefaultParams()); err == nil {
		t.Error("XY routing on a ring accepted")
	}
	// BFS on a ring needs only E/W through turns, ejection and
	// injection, all of which Crux has.
	if _, err := New(r, router.Crux(), route.BFS{}, photonic.DefaultParams()); err != nil {
		t.Errorf("BFS ring rejected: %v", err)
	}
}

func TestPathSelfIsEmpty(t *testing.T) {
	nw := newMeshNet(t, 3, 3)
	p := nw.Path(4, 4)
	if p == nil || len(p.Steps) != 0 || p.TotalLoss != 0 || p.Hops != 0 {
		t.Errorf("self path = %+v", p)
	}
}

func TestPathOutOfRange(t *testing.T) {
	nw := newMeshNet(t, 3, 3)
	if nw.Path(-1, 2) != nil || nw.Path(0, 9) != nil {
		t.Error("out-of-range Path returned non-nil")
	}
}

func TestAdjacentPathStructure(t *testing.T) {
	nw := newMeshNet(t, 3, 3)
	g := nw.Topology().(*topo.Grid)
	src, _ := g.TileAt(0, 0)
	dst, _ := g.TileAt(1, 0)
	p := nw.Path(src, dst)
	if p.Hops != 1 {
		t.Fatalf("adjacent hops = %d", p.Hops)
	}
	// Path: src router L->E, then dst router W->L.
	cruxArch := router.Crux()
	stepsInject, _ := cruxArch.Steps(nw.Params(), router.Local, router.East)
	stepsEject, _ := cruxArch.Steps(nw.Params(), router.West, router.Local)
	wantSteps := len(stepsInject) + len(stepsEject)
	if len(p.Steps) != wantSteps {
		t.Errorf("steps = %d, want %d", len(p.Steps), wantSteps)
	}
	// First steps belong to src tile, last ones to dst tile.
	if p.Steps[0].Tile != src || p.Steps[len(p.Steps)-1].Tile != dst {
		t.Error("step tiles wrong")
	}
	// Total loss = inject + link + eject.
	injLoss, _ := cruxArch.PathLoss(nw.Params(), router.Local, router.East)
	ejLoss, _ := cruxArch.PathLoss(nw.Params(), router.West, router.Local)
	link, _ := g.OutLink(src, topo.East)
	want := injLoss + ejLoss + nw.Params().PropagationLoss(link.LengthCm)
	if math.Abs(p.TotalLoss-want) > 1e-12 {
		t.Errorf("TotalLoss = %v, want %v", p.TotalLoss, want)
	}
}

func TestLossBeforeMonotone(t *testing.T) {
	nw := newMeshNet(t, 4, 4)
	p := nw.Path(0, 15)
	if p.Hops != 6 {
		t.Fatalf("corner-to-corner hops = %d, want 6", p.Hops)
	}
	prev := 0.0
	for i, s := range p.Steps {
		if s.LossBefore > prev+1e-12 {
			t.Fatalf("step %d: LossBefore %v not monotone (prev %v)", i, s.LossBefore, prev)
		}
		prev = s.LossBefore + s.Loss
	}
	// Final accumulated loss must not exceed TotalLoss (links add more).
	if prev < p.TotalLoss-1e-9 {
		t.Errorf("accumulated %v exceeds TotalLoss %v in magnitude", prev, p.TotalLoss)
	}
}

func TestGlobalElemDisjointAcrossTiles(t *testing.T) {
	nw := newMeshNet(t, 3, 3)
	p := nw.Path(0, 8) // multiple routers traversed
	numElems := nw.Router().NumElements()
	for _, s := range p.Steps {
		tileOf := int(s.Node) / numElems
		if tileOf != int(s.Tile) {
			t.Fatalf("step node %d maps to tile %d, step says %d", s.Node, tileOf, s.Tile)
		}
	}
}

func TestTurnSequenceThroughIntermediates(t *testing.T) {
	nw := newMeshNet(t, 4, 4)
	g := nw.Topology().(*topo.Grid)
	src, _ := g.TileAt(0, 0)
	dst, _ := g.TileAt(2, 2)
	p := nw.Path(src, dst)
	// XY: east, east, south, south. Intermediate tile (1,0) sees W->E;
	// turn tile (2,0) sees W->S; intermediate (2,1) sees N->S.
	tiles := map[topo.TileID]bool{}
	for _, s := range p.Steps {
		tiles[s.Tile] = true
	}
	for _, want := range []struct{ x, y int }{{0, 0}, {1, 0}, {2, 0}, {2, 1}, {2, 2}} {
		id, _ := g.TileAt(want.x, want.y)
		if !tiles[id] {
			t.Errorf("path misses tile (%d,%d)", want.x, want.y)
		}
	}
	if len(tiles) != 5 {
		t.Errorf("path touches %d tiles, want 5", len(tiles))
	}
}

// Property: on a mesh, longer Manhattan distance never gives smaller
// loss magnitude for straight-line paths along one axis.
func TestLossMonotoneInDistance(t *testing.T) {
	nw := newMeshNet(t, 4, 4)
	g := nw.Topology().(*topo.Grid)
	src, _ := g.TileAt(0, 0)
	prev := 0.0
	for x := 1; x < 4; x++ {
		dst, _ := g.TileAt(x, 0)
		loss := nw.Path(src, dst).TotalLoss
		if loss >= prev && x > 1 {
			t.Errorf("loss at distance %d (%v) not worse than distance %d (%v)", x, loss, x-1, prev)
		}
		prev = loss
	}
}

// Property: every path's step count and loss are reproducible and every
// pair is reachable.
func TestAllPairsExpanded(t *testing.T) {
	nw := newMeshNet(t, 4, 4)
	f := func(sRaw, dRaw uint8) bool {
		src := topo.TileID(int(sRaw) % 16)
		dst := topo.TileID(int(dRaw) % 16)
		p := nw.Path(src, dst)
		if p == nil {
			return false
		}
		if src == dst {
			return len(p.Steps) == 0
		}
		return len(p.Steps) > 0 && p.TotalLoss < 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTorusNetworkBuilds(t *testing.T) {
	tor, err := topo.NewTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(tor, router.Crux(), route.XY{}, photonic.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Torus wrap makes distant mesh pairs near: (0,0)->(3,3) is 2 hops.
	g := nw.Topology().(*topo.Grid)
	src, _ := g.TileAt(0, 0)
	dst, _ := g.TileAt(3, 3)
	if p := nw.Path(src, dst); p.Hops != 2 {
		t.Errorf("torus corner path hops = %d, want 2", p.Hops)
	}
}

func TestTorusLinkCrossingsAddLoss(t *testing.T) {
	base, _ := topo.NewTorus(4, 4)
	crossed, _ := topo.NewTorus(4, 4, topo.WithWrapCrossings(3))
	p := photonic.DefaultParams()
	nw1, err := New(base, router.Crux(), route.XY{}, p)
	if err != nil {
		t.Fatal(err)
	}
	nw2, err := New(crossed, router.Crux(), route.XY{}, p)
	if err != nil {
		t.Fatal(err)
	}
	l1 := nw1.Path(0, 1).TotalLoss
	l2 := nw2.Path(0, 1).TotalLoss
	want := l1 + 3*p.CrossingLoss
	if math.Abs(l2-want) > 1e-12 {
		t.Errorf("crossed link loss = %v, want %v", l2, want)
	}
}

func TestWorstPathLoss(t *testing.T) {
	nw := newMeshNet(t, 4, 4)
	worst := nw.WorstPathLoss()
	corner := nw.Path(0, 15).TotalLoss
	if worst > corner {
		t.Errorf("WorstPathLoss %v better than corner-to-corner %v", worst, corner)
	}
	if worst >= 0 || worst < -6 {
		t.Errorf("WorstPathLoss %v outside plausible range", worst)
	}
}

func TestNumElementsAndString(t *testing.T) {
	nw := newMeshNet(t, 3, 3)
	want := 9 * router.Crux().NumElements()
	if nw.NumElements() != want {
		t.Errorf("NumElements = %d, want %d", nw.NumElements(), want)
	}
	if nw.String() == "" {
		t.Error("empty String()")
	}
	if nw.Routing().Name() != "xy" {
		t.Errorf("Routing().Name() = %q", nw.Routing().Name())
	}
}

func TestPathsDeterministic(t *testing.T) {
	nw1 := newMeshNet(t, 4, 4)
	nw2 := newMeshNet(t, 4, 4)
	for src := topo.TileID(0); src < 16; src++ {
		for dst := topo.TileID(0); dst < 16; dst++ {
			p1, p2 := nw1.Path(src, dst), nw2.Path(src, dst)
			if p1.TotalLoss != p2.TotalLoss || len(p1.Steps) != len(p2.Steps) {
				t.Fatalf("paths differ for %d->%d", src, dst)
			}
			for i := range p1.Steps {
				if p1.Steps[i] != p2.Steps[i] {
					t.Fatalf("step %d differs for %d->%d", i, src, dst)
				}
			}
		}
	}
}

func TestCygnusSupportsYX(t *testing.T) {
	// Cygnus provides the Y-to-X turns Crux lacks, so YX routing builds.
	nw, err := New(mustMesh(t, 3, 3), router.Cygnus(), route.YX{}, photonic.DefaultParams())
	if err != nil {
		t.Fatalf("cygnus + yx rejected: %v", err)
	}
	g := nw.Topology().(*topo.Grid)
	src, _ := g.TileAt(0, 0)
	dst, _ := g.TileAt(2, 2)
	p := nw.Path(src, dst)
	if p == nil || p.Hops != 4 {
		t.Fatalf("path = %+v", p)
	}
}
