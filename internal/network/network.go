// Package network composes a topology, an optical router architecture and
// a routing algorithm into a concrete photonic NoC instance, and expands
// every tile-to-tile communication into its element-level optical path:
// the exact sequence of PSEs and crossings traversed, with ring states,
// per-element entry losses and inter-router waveguide losses.
//
// These paths are the substrate of the physical-layer analysis: insertion
// loss is the end-to-end accumulated loss, and crosstalk arises where the
// paths of two simultaneously active communications share an element
// (package analysis).
package network

import (
	"fmt"

	"phonocmap/internal/photonic"
	"phonocmap/internal/route"
	"phonocmap/internal/router"
	"phonocmap/internal/topo"
)

// GlobalElem uniquely identifies a photonic element instance across the
// whole network: element e of the router at tile t has ID
// t*arch.NumElements() + e.
type GlobalElem int

// Step is one element traversal of a network-level optical path.
type Step struct {
	// Node identifies the traversed element instance network-wide.
	Node GlobalElem
	// Tile is the tile whose router contains the element.
	Tile topo.TileID
	// Kind, In, Out and State describe the traversal physics; State is
	// the ring state this path's configuration requires (victim-centric
	// state for crosstalk analysis).
	Kind  photonic.Kind
	In    photonic.Port
	Out   photonic.Port
	State photonic.State
	// Loss is the element's dB entry loss; LossBefore is the accumulated
	// dB loss of everything before this element (elements and
	// waveguides). Both are <= 0.
	Loss       float64
	LossBefore float64
	// LinLossBefore and LinDownstream are the linear-domain factors of
	// the first-order crosstalk formula, precomputed at network build so
	// the analysis hot loop multiplies instead of exponentiating:
	// LinLossBefore = 10^(LossBefore/10) is the aggressor-side prefix
	// attenuation, LinDownstream = 10^((TotalLoss-LossBefore-Loss)/10)
	// the victim-side suffix attenuation (excluding the generating
	// element, the Ki*Li = Ki simplification).
	LinLossBefore float64
	LinDownstream float64
}

// Path is the element-level optical path of one communication.
type Path struct {
	Src, Dst topo.TileID
	// Steps are the router-element traversals in order. Inter-router
	// waveguide propagation (and any layout crossings assigned to links)
	// contributes loss between steps but no crosstalk, because link
	// geometry is not modelled; see DESIGN.md §3.1.
	Steps []Step
	// TotalLoss is the end-to-end insertion loss in dB (ILdB of the
	// paper; <= 0).
	TotalLoss float64
	// Hops is the number of links traversed.
	Hops int
}

// Network is an immutable photonic NoC instance with all tile-pair paths
// precomputed.
type Network struct {
	top    topo.Topology
	arch   *router.Architecture
	algo   route.Algorithm
	params photonic.Params
	paths  [][]*Path // [src][dst]; nil on the diagonal
}

// New builds the network and eagerly expands every ordered tile pair into
// its element-level path, validating on the way that the router
// architecture supports every turn the routing algorithm produces.
func New(t topo.Topology, arch *router.Architecture, algo route.Algorithm, p photonic.Params) (*Network, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := topo.Validate(t); err != nil {
		return nil, err
	}
	n := t.NumTiles()
	nw := &Network{top: t, arch: arch, algo: algo, params: p}
	nw.paths = make([][]*Path, n)
	for src := 0; src < n; src++ {
		nw.paths[src] = make([]*Path, n)
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			path, err := nw.expand(topo.TileID(src), topo.TileID(dst))
			if err != nil {
				return nil, err
			}
			nw.paths[src][dst] = path
		}
	}
	return nw, nil
}

// dirToPort maps a link direction to the router port a signal leaves
// through.
func dirToPort(d topo.Direction) router.Port {
	switch d {
	case topo.North:
		return router.North
	case topo.East:
		return router.East
	case topo.South:
		return router.South
	default:
		return router.West
	}
}

// entryPort returns the router port a signal arrives on after following a
// link in direction d: the opposite side of the receiving router.
func entryPort(d topo.Direction) router.Port {
	return dirToPort(d.Opposite())
}

// expand builds the element-level path from src to dst.
func (nw *Network) expand(src, dst topo.TileID) (*Path, error) {
	links, err := nw.algo.Route(nw.top, src, dst)
	if err != nil {
		return nil, fmt.Errorf("network: routing %d->%d: %w", src, dst, err)
	}
	if err := route.Check(src, dst, links); err != nil {
		return nil, fmt.Errorf("network: %s produced a broken path: %w", nw.algo.Name(), err)
	}
	path := &Path{Src: src, Dst: dst, Hops: len(links)}
	acc := 0.0
	numElems := nw.arch.NumElements()

	appendTurn := func(tile topo.TileID, in, out router.Port) error {
		steps, ok := nw.arch.Steps(nw.params, in, out)
		if !ok {
			return fmt.Errorf("network: router %s at tile %d does not support turn %v->%v required by %s routing",
				nw.arch.Name(), tile, in, out, nw.algo.Name())
		}
		for _, s := range steps {
			path.Steps = append(path.Steps, Step{
				Node:       GlobalElem(int(tile)*numElems + int(s.Elem)),
				Tile:       tile,
				Kind:       s.Kind,
				In:         s.In,
				Out:        s.Out,
				State:      s.State,
				Loss:       s.Loss,
				LossBefore: acc,
			})
			acc += s.Loss
		}
		return nil
	}
	linkLoss := func(l topo.Link) float64 {
		return nw.params.PropagationLoss(l.LengthCm) +
			float64(l.Crossings)*nw.params.CrossingLoss
	}

	in := router.Local
	for _, l := range links {
		if err := appendTurn(l.From, in, dirToPort(l.Dir)); err != nil {
			return nil, err
		}
		acc += linkLoss(l)
		in = entryPort(l.Dir)
	}
	if len(links) > 0 {
		if err := appendTurn(dst, in, router.Local); err != nil {
			return nil, err
		}
	}
	path.TotalLoss = acc
	for i := range path.Steps {
		s := &path.Steps[i]
		s.LinLossBefore = photonic.DBToLinear(s.LossBefore)
		s.LinDownstream = photonic.DBToLinear(path.TotalLoss - s.LossBefore - s.Loss)
	}
	return path, nil
}

// NumTiles returns the tile count of the underlying topology.
func (nw *Network) NumTiles() int { return nw.top.NumTiles() }

// Topology returns the underlying topology.
func (nw *Network) Topology() topo.Topology { return nw.top }

// Router returns the router architecture.
func (nw *Network) Router() *router.Architecture { return nw.arch }

// Routing returns the routing algorithm.
func (nw *Network) Routing() route.Algorithm { return nw.algo }

// Params returns the photonic parameter set.
func (nw *Network) Params() photonic.Params { return nw.params }

// Path returns the precomputed path from src to dst. For src == dst it
// returns an empty zero-loss path; out-of-range tiles return nil.
func (nw *Network) Path(src, dst topo.TileID) *Path {
	n := nw.NumTiles()
	if src < 0 || int(src) >= n || dst < 0 || int(dst) >= n {
		return nil
	}
	if src == dst {
		return &Path{Src: src, Dst: dst}
	}
	return nw.paths[src][dst]
}

// NumElements returns the total number of router element instances in the
// network (tiles x elements per router).
func (nw *Network) NumElements() int {
	return nw.NumTiles() * nw.arch.NumElements()
}

// WorstPathLoss returns the largest-magnitude TotalLoss over all ordered
// tile pairs — the loss of the network's worst physical route,
// independent of any application mapping.
func (nw *Network) WorstPathLoss() float64 {
	worst := 0.0
	for src := range nw.paths {
		for _, p := range nw.paths[src] {
			if p != nil && p.TotalLoss < worst {
				worst = p.TotalLoss
			}
		}
	}
	return worst
}

// String summarizes the instance, e.g.
// "mesh-4x4 + crux + xy (16 tiles, 272 elements)".
func (nw *Network) String() string {
	return fmt.Sprintf("%s + %s + %s (%d tiles, %d elements)",
		nw.top.Name(), nw.arch.Name(), nw.algo.Name(), nw.NumTiles(), nw.NumElements())
}
