package topo

import "fmt"

// Ring is a 1-D cycle of n tiles. Tile i connects eastward to tile
// (i+1) mod n and westward to (i-1+n) mod n. Rings are provided for small
// experiments and for exercising custom-topology support; the paper's
// evaluation uses meshes and tori.
type Ring struct {
	name   string
	n      int
	links  []Link
	outIdx [][]int
}

// NewRing returns a ring of n tiles laid out on the perimeter of a die
// with the given edge length (centimetres); hop length is the perimeter
// divided by n.
func NewRing(n int, opts ...GridOption) (*Ring, error) {
	if n < 3 {
		return nil, fmt.Errorf("topo: ring needs at least 3 tiles, got %d", n)
	}
	cfg := gridConfig{dieCm: DefaultDieCm}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.dieCm <= 0 {
		return nil, fmt.Errorf("topo: die size must be positive, got %v cm", cfg.dieCm)
	}
	hopLen := 4 * cfg.dieCm / float64(n)
	r := &Ring{name: fmt.Sprintf("ring-%d", n), n: n}
	r.outIdx = make([][]int, n)
	for t := range r.outIdx {
		r.outIdx[t] = []int{-1, -1, -1, -1}
	}
	for i := 0; i < n; i++ {
		from := TileID(i)
		east := TileID((i + 1) % n)
		west := TileID((i - 1 + n) % n)
		r.outIdx[from][East] = len(r.links)
		r.links = append(r.links, Link{From: from, To: east, Dir: East, LengthCm: hopLen})
		r.outIdx[from][West] = len(r.links)
		r.links = append(r.links, Link{From: from, To: west, Dir: West, LengthCm: hopLen})
	}
	return r, nil
}

// Name returns e.g. "ring-8".
func (r *Ring) Name() string { return r.name }

// NumTiles returns the tile count.
func (r *Ring) NumTiles() int { return r.n }

// Links returns all directed links. Callers must not modify the slice.
func (r *Ring) Links() []Link { return r.links }

// OutLink returns the link leaving tile from in direction d (East or West).
func (r *Ring) OutLink(from TileID, d Direction) (Link, bool) {
	if from < 0 || int(from) >= r.n || !d.Valid() {
		return Link{}, false
	}
	idx := r.outIdx[from][d]
	if idx < 0 {
		return Link{}, false
	}
	return r.links[idx], true
}

// LinkTo returns the direct link between two adjacent tiles.
func (r *Ring) LinkTo(from, to TileID) (Link, bool) {
	if from < 0 || int(from) >= r.n {
		return Link{}, false
	}
	for _, idx := range r.outIdx[from] {
		if idx >= 0 && r.links[idx].To == to {
			return r.links[idx], true
		}
	}
	return Link{}, false
}

// Neighbors returns the links leaving tile from.
func (r *Ring) Neighbors(from TileID) []Link {
	if from < 0 || int(from) >= r.n {
		return nil
	}
	res := make([]Link, 0, 2)
	for _, idx := range r.outIdx[from] {
		if idx >= 0 {
			res = append(res, r.links[idx])
		}
	}
	return res
}

var _ Topology = (*Ring)(nil)
