package topo

import "fmt"

// DefaultDieCm is the default die edge length in centimetres used to
// derive tile pitch and hence waveguide link lengths. A 2 cm x 2 cm die is
// the common assumption in the photonic NoC literature the paper builds on.
const DefaultDieCm = 2.0

// Kinds lists the built-in topology kinds the config layer can build.
func Kinds() []string { return []string{"mesh", "torus", "ring"} }

// Grid is a W x H direct topology, either a mesh (Wrap == false) or a
// folded torus (Wrap == true). Tiles are numbered row-major: tile (x, y)
// has ID y*W + x, with x growing eastward and y growing southward.
//
// Link lengths derive from the die size: a mesh hop spans one tile pitch;
// a folded torus places physically adjacent tiles two pitches apart in
// exchange for uniform wrap-free link lengths, so every torus hop spans
// two pitches — the standard equalized-layout assumption.
type Grid struct {
	name      string
	w, h      int
	wrap      bool
	dieCm     float64
	links     []Link
	outIdx    [][]int // outIdx[tile][dir] = index into links, or -1
	wrapCross int
}

// GridOption customizes grid construction.
type GridOption func(*gridConfig)

type gridConfig struct {
	dieCm     float64
	wrapCross int
}

// WithDieCm sets the die edge length in centimetres (default DefaultDieCm).
func WithDieCm(cm float64) GridOption {
	return func(c *gridConfig) { c.dieCm = cm }
}

// WithWrapCrossings assigns the given number of passive waveguide
// crossings to every link of a folded torus, modelling the layout cost of
// interleaved wrap wiring. Meshes ignore this option. Default 0.
func WithWrapCrossings(n int) GridOption {
	return func(c *gridConfig) { c.wrapCross = n }
}

// NewMesh returns a w x h mesh.
func NewMesh(w, h int, opts ...GridOption) (*Grid, error) {
	return newGrid(w, h, false, opts...)
}

// NewTorus returns a w x h folded torus.
func NewTorus(w, h int, opts ...GridOption) (*Grid, error) {
	return newGrid(w, h, true, opts...)
}

func newGrid(w, h int, wrap bool, opts ...GridOption) (*Grid, error) {
	if w < 2 || h < 2 {
		return nil, fmt.Errorf("topo: grid needs at least 2x2 tiles, got %dx%d", w, h)
	}
	cfg := gridConfig{dieCm: DefaultDieCm}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.dieCm <= 0 {
		return nil, fmt.Errorf("topo: die size must be positive, got %v cm", cfg.dieCm)
	}
	if cfg.wrapCross < 0 {
		return nil, fmt.Errorf("topo: wrap crossings must be >= 0, got %d", cfg.wrapCross)
	}
	kind := "mesh"
	if wrap {
		kind = "torus"
	}
	g := &Grid{
		name:      fmt.Sprintf("%s-%dx%d", kind, w, h),
		w:         w,
		h:         h,
		wrap:      wrap,
		dieCm:     cfg.dieCm,
		wrapCross: cfg.wrapCross,
	}
	// Tile pitch along the longer grid axis so the whole grid fits in
	// the die regardless of aspect ratio.
	longer := w
	if h > longer {
		longer = h
	}
	pitch := cfg.dieCm / float64(longer)
	hopLen := pitch
	crossings := 0
	if wrap {
		hopLen = 2 * pitch // folded-torus uniform hop length
		crossings = cfg.wrapCross
	}

	g.outIdx = make([][]int, w*h)
	for t := range g.outIdx {
		g.outIdx[t] = []int{-1, -1, -1, -1}
	}
	addLink := func(from TileID, d Direction, to TileID) {
		g.outIdx[from][d] = len(g.links)
		g.links = append(g.links, Link{
			From: from, To: to, Dir: d,
			LengthCm: hopLen, Crossings: crossings,
		})
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			from := g.mustTileAt(x, y)
			for _, d := range []Direction{North, East, South, West} {
				nx, ny, ok := g.step(x, y, d)
				if !ok {
					continue
				}
				addLink(from, d, g.mustTileAt(nx, ny))
			}
		}
	}
	return g, nil
}

// step returns the coordinates one hop from (x, y) in direction d,
// honouring wraparound for tori. ok is false for mesh edge violations.
func (g *Grid) step(x, y int, d Direction) (nx, ny int, ok bool) {
	nx, ny = x, y
	switch d {
	case North:
		ny--
	case South:
		ny++
	case East:
		nx++
	case West:
		nx--
	}
	if g.wrap {
		nx = (nx + g.w) % g.w
		ny = (ny + g.h) % g.h
		// A 2-wide torus would create duplicate links between the same
		// pair; that is fine topologically but we still return them so
		// both directions exist.
		return nx, ny, true
	}
	if nx < 0 || nx >= g.w || ny < 0 || ny >= g.h {
		return 0, 0, false
	}
	return nx, ny, true
}

func (g *Grid) mustTileAt(x, y int) TileID { return TileID(y*g.w + x) }

// Name returns e.g. "mesh-4x4" or "torus-6x6".
func (g *Grid) Name() string { return g.name }

// Width returns the number of columns.
func (g *Grid) Width() int { return g.w }

// Height returns the number of rows.
func (g *Grid) Height() int { return g.h }

// Wrap reports whether the grid is a torus.
func (g *Grid) Wrap() bool { return g.wrap }

// DieCm returns the die edge length in centimetres.
func (g *Grid) DieCm() float64 { return g.dieCm }

// NumTiles returns W*H.
func (g *Grid) NumTiles() int { return g.w * g.h }

// Coord returns the (x, y) grid coordinates of tile t.
func (g *Grid) Coord(t TileID) (x, y int) {
	return int(t) % g.w, int(t) / g.w
}

// TileAt returns the tile at grid coordinates (x, y).
func (g *Grid) TileAt(x, y int) (TileID, bool) {
	if x < 0 || x >= g.w || y < 0 || y >= g.h {
		return 0, false
	}
	return g.mustTileAt(x, y), true
}

// Links returns all directed links. Callers must not modify the slice.
func (g *Grid) Links() []Link { return g.links }

// OutLink returns the link leaving tile from in direction d.
func (g *Grid) OutLink(from TileID, d Direction) (Link, bool) {
	if from < 0 || int(from) >= len(g.outIdx) || !d.Valid() {
		return Link{}, false
	}
	idx := g.outIdx[from][d]
	if idx < 0 {
		return Link{}, false
	}
	return g.links[idx], true
}

// LinkTo returns the direct link between two adjacent tiles.
func (g *Grid) LinkTo(from, to TileID) (Link, bool) {
	if from < 0 || int(from) >= len(g.outIdx) {
		return Link{}, false
	}
	for _, idx := range g.outIdx[from] {
		if idx >= 0 && g.links[idx].To == to {
			return g.links[idx], true
		}
	}
	return Link{}, false
}

// Neighbors returns the links leaving tile from, in N, E, S, W order.
func (g *Grid) Neighbors(from TileID) []Link {
	if from < 0 || int(from) >= len(g.outIdx) {
		return nil
	}
	res := make([]Link, 0, 4)
	for _, idx := range g.outIdx[from] {
		if idx >= 0 {
			res = append(res, g.links[idx])
		}
	}
	return res
}

var _ Topology = (*Grid)(nil)
