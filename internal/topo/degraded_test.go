package topo

import "testing"

func TestDegradeRemovesLink(t *testing.T) {
	m, err := NewMesh(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Degrade(m, [][2]TileID{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "mesh-3x3-degraded" {
		t.Errorf("Name = %q", d.Name())
	}
	if d.FailedCount() != 1 {
		t.Errorf("FailedCount = %d", d.FailedCount())
	}
	if _, ok := d.OutLink(0, East); ok {
		t.Error("failed link still reachable via OutLink")
	}
	if _, ok := d.LinkTo(0, 1); ok {
		t.Error("failed link still reachable via LinkTo")
	}
	// The reverse direction survives (one lane failed).
	if _, ok := d.LinkTo(1, 0); !ok {
		t.Error("reverse link vanished")
	}
	if len(d.Links()) != len(m.Links())-1 {
		t.Errorf("links = %d, want %d", len(d.Links()), len(m.Links())-1)
	}
	// Neighbors of tile 0 shrink by one.
	if got, want := len(d.Neighbors(0)), len(m.Neighbors(0))-1; got != want {
		t.Errorf("neighbors = %d, want %d", got, want)
	}
	if d.NumTiles() != 9 {
		t.Errorf("NumTiles = %d", d.NumTiles())
	}
}

func TestDegradeErrors(t *testing.T) {
	m, _ := NewMesh(3, 3)
	if _, err := Degrade(m, [][2]TileID{{0, 5}}); err == nil {
		t.Error("accepted nonexistent link")
	}
	// Isolate the corner tile 0 completely: links 0->1, 1->0, 0->3, 3->0.
	if _, err := Degrade(m, [][2]TileID{{0, 1}, {1, 0}, {0, 3}, {3, 0}}); err == nil {
		t.Error("accepted an isolating failure set")
	}
}

func TestDegradedValidates(t *testing.T) {
	// Validate demands reciprocal links, so degrade both lanes.
	m, _ := NewMesh(4, 4)
	d, err := Degrade(m, [][2]TileID{{5, 6}, {6, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(d); err != nil {
		t.Errorf("Validate(degraded): %v", err)
	}
}
