package topo

import "fmt"

// Degraded wraps a topology with a set of failed directed links removed,
// for fault-tolerance studies: how much worse do a mapping's worst-case
// metrics get when a waveguide segment breaks and traffic detours?
//
// Dimension-order routing algorithms require the full grid, so degraded
// topologies are used with BFS routing, which finds minimal detours
// around the failures. Failing one direction of a link models a broken
// or decommissioned waveguide lane; fail both directions for a full cut.
type Degraded struct {
	base   Topology
	name   string
	failed map[[2]TileID]bool
	links  []Link
}

// Degrade removes the given directed links (from -> to pairs) from the
// topology. It fails when a named link does not exist or when the
// degraded topology would disconnect some tile entirely.
func Degrade(base Topology, failures [][2]TileID) (*Degraded, error) {
	d := &Degraded{
		base:   base,
		name:   base.Name() + "-degraded",
		failed: make(map[[2]TileID]bool, len(failures)),
	}
	for _, f := range failures {
		if _, ok := base.LinkTo(f[0], f[1]); !ok {
			return nil, fmt.Errorf("topo: cannot fail nonexistent link %d->%d on %s", f[0], f[1], base.Name())
		}
		d.failed[f] = true
	}
	degree := make([]int, base.NumTiles())
	for _, l := range base.Links() {
		if d.failed[[2]TileID{l.From, l.To}] {
			continue
		}
		d.links = append(d.links, l)
		degree[l.From]++
		degree[l.To]++
	}
	for tile, deg := range degree {
		if deg == 0 {
			return nil, fmt.Errorf("topo: failing %d link(s) isolates tile %d", len(failures), tile)
		}
	}
	return d, nil
}

// Name returns the base name with a "-degraded" suffix.
func (d *Degraded) Name() string { return d.name }

// NumTiles returns the tile count of the base topology.
func (d *Degraded) NumTiles() int { return d.base.NumTiles() }

// Links returns the surviving links. Callers must not modify the slice.
func (d *Degraded) Links() []Link { return d.links }

// OutLink returns the surviving link leaving tile from in direction dir.
func (d *Degraded) OutLink(from TileID, dir Direction) (Link, bool) {
	l, ok := d.base.OutLink(from, dir)
	if !ok || d.failed[[2]TileID{l.From, l.To}] {
		return Link{}, false
	}
	return l, true
}

// LinkTo returns the surviving direct link between two tiles.
func (d *Degraded) LinkTo(from, to TileID) (Link, bool) {
	if d.failed[[2]TileID{from, to}] {
		return Link{}, false
	}
	return d.base.LinkTo(from, to)
}

// Neighbors returns the surviving links leaving tile from.
func (d *Degraded) Neighbors(from TileID) []Link {
	base := d.base.Neighbors(from)
	res := make([]Link, 0, len(base))
	for _, l := range base {
		if !d.failed[[2]TileID{l.From, l.To}] {
			res = append(res, l)
		}
	}
	return res
}

// FailedCount returns the number of removed directed links.
func (d *Degraded) FailedCount() int { return len(d.failed) }

var _ Topology = (*Degraded)(nil)
