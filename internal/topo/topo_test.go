package topo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDirectionOpposite(t *testing.T) {
	pairs := map[Direction]Direction{North: South, South: North, East: West, West: East}
	for d, want := range pairs {
		if got := d.Opposite(); got != want {
			t.Errorf("%v.Opposite() = %v, want %v", d, got, want)
		}
		if d.Opposite().Opposite() != d {
			t.Errorf("Opposite not an involution for %v", d)
		}
	}
}

func TestDirectionString(t *testing.T) {
	want := map[Direction]string{North: "north", East: "east", South: "south", West: "west"}
	for d, s := range want {
		if d.String() != s {
			t.Errorf("%d.String() = %q, want %q", d, d.String(), s)
		}
		if !d.Valid() {
			t.Errorf("%v invalid", d)
		}
	}
	if Direction(4).Valid() {
		t.Error("Direction(4) valid")
	}
}

func TestNewMeshShape(t *testing.T) {
	m, err := NewMesh(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "mesh-4x4" {
		t.Errorf("Name = %q", m.Name())
	}
	if m.NumTiles() != 16 {
		t.Errorf("NumTiles = %d, want 16", m.NumTiles())
	}
	// 2*W*H - W - H undirected neighbor pairs, two directed links each.
	wantLinks := 2 * (2*4*4 - 4 - 4)
	if got := len(m.Links()); got != wantLinks {
		t.Errorf("len(Links) = %d, want %d", got, wantLinks)
	}
	if m.Wrap() {
		t.Error("mesh reports Wrap")
	}
	if err := Validate(m); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestNewMeshRejectsTiny(t *testing.T) {
	if _, err := NewMesh(1, 4); err == nil {
		t.Error("accepted 1x4 mesh")
	}
	if _, err := NewMesh(4, 0); err == nil {
		t.Error("accepted 4x0 mesh")
	}
	if _, err := NewMesh(4, 4, WithDieCm(-1)); err == nil {
		t.Error("accepted negative die size")
	}
	if _, err := NewTorus(4, 4, WithWrapCrossings(-2)); err == nil {
		t.Error("accepted negative wrap crossings")
	}
}

func TestMeshCoordRoundTrip(t *testing.T) {
	m, _ := NewMesh(5, 3)
	for y := 0; y < 3; y++ {
		for x := 0; x < 5; x++ {
			id, ok := m.TileAt(x, y)
			if !ok {
				t.Fatalf("TileAt(%d,%d) failed", x, y)
			}
			gx, gy := m.Coord(id)
			if gx != x || gy != y {
				t.Errorf("Coord(TileAt(%d,%d)) = (%d,%d)", x, y, gx, gy)
			}
		}
	}
	if _, ok := m.TileAt(5, 0); ok {
		t.Error("TileAt out of range succeeded")
	}
	if _, ok := m.TileAt(0, -1); ok {
		t.Error("TileAt negative succeeded")
	}
}

func TestMeshBorderTilesLackOutwardLinks(t *testing.T) {
	m, _ := NewMesh(3, 3)
	corner, _ := m.TileAt(0, 0)
	if _, ok := m.OutLink(corner, North); ok {
		t.Error("corner (0,0) has a north link")
	}
	if _, ok := m.OutLink(corner, West); ok {
		t.Error("corner (0,0) has a west link")
	}
	if l, ok := m.OutLink(corner, East); !ok || l.To != 1 {
		t.Errorf("corner east link = %+v, ok=%v", l, ok)
	}
	if l, ok := m.OutLink(corner, South); !ok || l.To != 3 {
		t.Errorf("corner south link = %+v, ok=%v", l, ok)
	}
	if n := m.Neighbors(corner); len(n) != 2 {
		t.Errorf("corner neighbor count = %d, want 2", len(n))
	}
	center, _ := m.TileAt(1, 1)
	if n := m.Neighbors(center); len(n) != 4 {
		t.Errorf("center neighbor count = %d, want 4", len(n))
	}
}

func TestMeshLinkLength(t *testing.T) {
	m, _ := NewMesh(4, 4, WithDieCm(2))
	for _, l := range m.Links() {
		if math.Abs(l.LengthCm-0.5) > 1e-12 {
			t.Fatalf("mesh 4x4 on 2cm die: link length %v, want 0.5", l.LengthCm)
		}
		if l.Crossings != 0 {
			t.Fatalf("mesh link has %d crossings, want 0", l.Crossings)
		}
	}
	// Non-square grid uses the longer axis for pitch.
	m2, _ := NewMesh(8, 2, WithDieCm(2))
	for _, l := range m2.Links() {
		if math.Abs(l.LengthCm-0.25) > 1e-12 {
			t.Fatalf("mesh 8x2: link length %v, want 0.25", l.LengthCm)
		}
	}
}

func TestTorusShape(t *testing.T) {
	tr, err := NewTorus(4, 4, WithDieCm(2), WithWrapCrossings(2))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name() != "torus-4x4" {
		t.Errorf("Name = %q", tr.Name())
	}
	if !tr.Wrap() {
		t.Error("torus does not report Wrap")
	}
	// Every tile has all four outgoing links.
	wantLinks := 4 * 16
	if got := len(tr.Links()); got != wantLinks {
		t.Errorf("len(Links) = %d, want %d", got, wantLinks)
	}
	for _, l := range tr.Links() {
		if math.Abs(l.LengthCm-1.0) > 1e-12 { // folded torus: 2 * pitch
			t.Fatalf("torus link length %v, want 1.0", l.LengthCm)
		}
		if l.Crossings != 2 {
			t.Fatalf("torus link crossings = %d, want 2", l.Crossings)
		}
	}
	if err := Validate(tr); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestTorusWraparound(t *testing.T) {
	tr, _ := NewTorus(4, 4)
	eastEdge, _ := tr.TileAt(3, 1)
	wrapped, _ := tr.TileAt(0, 1)
	l, ok := tr.OutLink(eastEdge, East)
	if !ok || l.To != wrapped {
		t.Errorf("east wrap link = %+v, ok=%v, want to %d", l, ok, wrapped)
	}
	northEdge, _ := tr.TileAt(2, 0)
	wrappedN, _ := tr.TileAt(2, 3)
	l, ok = tr.OutLink(northEdge, North)
	if !ok || l.To != wrappedN {
		t.Errorf("north wrap link = %+v, ok=%v, want to %d", l, ok, wrappedN)
	}
}

func TestSmallTorusValidates(t *testing.T) {
	// 2-wide tori have doubly adjacent tile pairs; Validate must still
	// pass because reverse links are matched by direction.
	tr, err := NewTorus(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(tr); err != nil {
		t.Errorf("Validate(2x2 torus): %v", err)
	}
}

func TestGridOutLinkBounds(t *testing.T) {
	m, _ := NewMesh(3, 3)
	if _, ok := m.OutLink(TileID(-1), East); ok {
		t.Error("OutLink accepted negative tile")
	}
	if _, ok := m.OutLink(TileID(99), East); ok {
		t.Error("OutLink accepted out-of-range tile")
	}
	if _, ok := m.OutLink(0, Direction(9)); ok {
		t.Error("OutLink accepted invalid direction")
	}
	if m.Neighbors(TileID(-3)) != nil {
		t.Error("Neighbors accepted negative tile")
	}
	if _, ok := m.LinkTo(TileID(77), 0); ok {
		t.Error("LinkTo accepted out-of-range tile")
	}
}

func TestLinkToAdjacency(t *testing.T) {
	m, _ := NewMesh(3, 3)
	a, _ := m.TileAt(0, 0)
	b, _ := m.TileAt(1, 0)
	c, _ := m.TileAt(2, 2)
	if _, ok := m.LinkTo(a, b); !ok {
		t.Error("adjacent tiles have no link")
	}
	if _, ok := m.LinkTo(a, c); ok {
		t.Error("non-adjacent tiles have a link")
	}
}

// Property: every grid validates and every tile's neighbor links start at
// that tile.
func TestGridProperty(t *testing.T) {
	f := func(wRaw, hRaw uint8, torus bool) bool {
		w := 2 + int(wRaw%7)
		h := 2 + int(hRaw%7)
		var g *Grid
		var err error
		if torus {
			g, err = NewTorus(w, h)
		} else {
			g, err = NewMesh(w, h)
		}
		if err != nil {
			return false
		}
		if Validate(g) != nil {
			return false
		}
		for tile := 0; tile < g.NumTiles(); tile++ {
			for _, l := range g.Neighbors(TileID(tile)) {
				if l.From != TileID(tile) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRing(t *testing.T) {
	r, err := NewRing(8, WithDieCm(2))
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "ring-8" || r.NumTiles() != 8 {
		t.Errorf("ring shape: %q %d", r.Name(), r.NumTiles())
	}
	if err := Validate(r); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if len(r.Links()) != 16 {
		t.Errorf("ring links = %d, want 16", len(r.Links()))
	}
	l, ok := r.OutLink(7, East)
	if !ok || l.To != 0 {
		t.Errorf("ring wrap east: %+v ok=%v", l, ok)
	}
	l, ok = r.OutLink(0, West)
	if !ok || l.To != 7 {
		t.Errorf("ring wrap west: %+v ok=%v", l, ok)
	}
	if _, ok := r.OutLink(0, North); ok {
		t.Error("ring has a north link")
	}
	if math.Abs(r.Links()[0].LengthCm-1.0) > 1e-12 {
		t.Errorf("ring hop length = %v, want 1.0", r.Links()[0].LengthCm)
	}
	if n := r.Neighbors(3); len(n) != 2 {
		t.Errorf("ring neighbors = %d, want 2", len(n))
	}
	if _, err := NewRing(2); err == nil {
		t.Error("accepted 2-tile ring")
	}
}

func TestGridAccessors(t *testing.T) {
	g, _ := NewMesh(5, 3, WithDieCm(1.5))
	if g.Width() != 5 || g.Height() != 3 {
		t.Errorf("Width/Height = %d/%d", g.Width(), g.Height())
	}
	if g.DieCm() != 1.5 {
		t.Errorf("DieCm = %v", g.DieCm())
	}
}

func TestRingLinkTo(t *testing.T) {
	r, _ := NewRing(5)
	if l, ok := r.LinkTo(0, 1); !ok || l.Dir != East {
		t.Errorf("LinkTo(0,1) = %+v, %v", l, ok)
	}
	if l, ok := r.LinkTo(0, 4); !ok || l.Dir != West {
		t.Errorf("LinkTo(0,4) = %+v, %v", l, ok)
	}
	if _, ok := r.LinkTo(0, 2); ok {
		t.Error("non-adjacent ring tiles linked")
	}
	if _, ok := r.LinkTo(9, 0); ok {
		t.Error("out-of-range ring LinkTo succeeded")
	}
	if r.Neighbors(TileID(-1)) != nil {
		t.Error("negative ring Neighbors non-nil")
	}
	if _, ok := r.OutLink(TileID(9), East); ok {
		t.Error("out-of-range ring OutLink succeeded")
	}
}
