// Package topo implements the topology graph of the paper (Definition 2):
// how NoC tiles are connected by physical links. It provides the regular
// direct topologies used in the evaluation — 2-D mesh and (folded) torus —
// plus a ring for small experiments, and carries the physical link lengths
// needed by the insertion-loss model.
package topo

import "fmt"

// TileID identifies one tile (a processing element plus its optical
// router). IDs are dense in [0, NumTiles).
type TileID int

// Direction identifies the compass direction of a link as seen from its
// source tile. It matches the non-local port naming of 5-port optical
// routers.
type Direction uint8

const (
	North Direction = iota
	East
	South
	West
	numDirections
)

// String returns the compass name of the direction.
func (d Direction) String() string {
	switch d {
	case North:
		return "north"
	case East:
		return "east"
	case South:
		return "south"
	case West:
		return "west"
	default:
		return fmt.Sprintf("topo.Direction(%d)", uint8(d))
	}
}

// Valid reports whether d is one of the four compass directions.
func (d Direction) Valid() bool { return d < numDirections }

// Opposite returns the reverse direction (North <-> South, East <-> West).
func (d Direction) Opposite() Direction {
	switch d {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	default:
		return East
	}
}

// Link is a directed physical waveguide connection between two adjacent
// tiles. LengthCm feeds the propagation-loss model; Crossings is the
// number of passive waveguide crossings the link traverses in the chip
// layout (0 for a planar mesh; wrap links of a torus may be assigned a
// positive count to model layout-induced crossings).
type Link struct {
	From, To  TileID
	Dir       Direction
	LengthCm  float64
	Crossings int
}

// Topology is the abstract tile-interconnection graph consumed by the
// network model. Implementations must be immutable after construction.
type Topology interface {
	// Name identifies the topology instance, e.g. "mesh-4x4".
	Name() string
	// NumTiles returns the number of tiles (size(T) in Eq. 2).
	NumTiles() int
	// Links returns every directed link. The slice is shared; callers
	// must not modify it.
	Links() []Link
	// OutLink returns the link leaving tile from in direction d.
	OutLink(from TileID, d Direction) (Link, bool)
	// LinkTo returns the direct link from tile from to tile to.
	LinkTo(from, to TileID) (Link, bool)
	// Neighbors returns the links leaving tile from, in direction order.
	Neighbors(from TileID) []Link
}

// Validate performs structural sanity checks shared by all topologies:
// consistent endpoints, positive lengths, reciprocal links.
func Validate(t Topology) error {
	n := t.NumTiles()
	if n <= 0 {
		return fmt.Errorf("topo: %s: no tiles", t.Name())
	}
	for _, l := range t.Links() {
		if l.From < 0 || int(l.From) >= n || l.To < 0 || int(l.To) >= n {
			return fmt.Errorf("topo: %s: link %v has out-of-range endpoint", t.Name(), l)
		}
		if l.From == l.To {
			return fmt.Errorf("topo: %s: self-link on tile %d", t.Name(), l.From)
		}
		if l.LengthCm <= 0 {
			return fmt.Errorf("topo: %s: link %v has non-positive length", t.Name(), l)
		}
		if l.Crossings < 0 {
			return fmt.Errorf("topo: %s: link %v has negative crossings", t.Name(), l)
		}
		if !l.Dir.Valid() {
			return fmt.Errorf("topo: %s: link %v has invalid direction", t.Name(), l)
		}
		back, ok := t.OutLink(l.To, l.Dir.Opposite())
		if !ok || back.To != l.From {
			return fmt.Errorf("topo: %s: link %v has no reverse link", t.Name(), l)
		}
	}
	return nil
}
