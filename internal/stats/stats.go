// Package stats provides the streaming summaries, histograms and
// empirical distributions used to regenerate the paper's Figure 3
// (probability distribution of SNR and power loss over 100 000 random
// mappings) and to report optimizer comparisons.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary accumulates count, extremes, mean and variance of a stream of
// values using Welford's online algorithm. The zero value is ready to use.
// Infinite values are counted separately and excluded from the moments so
// that +Inf SNRs (no crosstalk) do not destroy the statistics.
type Summary struct {
	n        int
	infs     int
	min, max float64
	mean, m2 float64
}

// Add incorporates a value.
func (s *Summary) Add(v float64) {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		s.infs++
		return
	}
	if s.n == 0 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.n++
	delta := v - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (v - s.mean)
}

// Count returns the number of finite values observed.
func (s *Summary) Count() int { return s.n }

// NonFinite returns the number of infinite or NaN values observed.
func (s *Summary) NonFinite() int { return s.infs }

// Min returns the smallest finite value (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest finite value (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// Mean returns the arithmetic mean of the finite values.
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the population variance of the finite values.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// StdDev returns the population standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// String renders a one-line summary.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3f mean=%.3f max=%.3f sd=%.3f", s.n, s.min, s.mean, s.max, s.StdDev())
}

// Histogram counts values into uniform bins over [Lo, Hi). Out-of-range
// values land in the Below/Above overflow counters; non-finite values in
// NonFinite.
type Histogram struct {
	lo, hi    float64
	bins      []int
	below     int
	above     int
	nonFinite int
	total     int
}

// NewHistogram creates a histogram of n uniform bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: histogram range [%v, %v) is empty", lo, hi)
	}
	if n < 1 {
		return nil, fmt.Errorf("stats: histogram needs at least 1 bin, got %d", n)
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]int, n)}, nil
}

// Add incorporates a value.
func (h *Histogram) Add(v float64) {
	h.total++
	switch {
	case math.IsInf(v, 0) || math.IsNaN(v):
		h.nonFinite++
	case v < h.lo:
		h.below++
	case v >= h.hi:
		h.above++
	default:
		idx := int(float64(len(h.bins)) * (v - h.lo) / (h.hi - h.lo))
		if idx == len(h.bins) { // guard the v == hi-epsilon float edge
			idx--
		}
		h.bins[idx]++
	}
}

// Total returns the number of values added, including overflow and
// non-finite ones.
func (h *Histogram) Total() int { return h.total }

// Below and Above return the overflow counts; NonFinite the Inf/NaN count.
func (h *Histogram) Below() int     { return h.below }
func (h *Histogram) Above() int     { return h.above }
func (h *Histogram) NonFinite() int { return h.nonFinite }

// NumBins returns the bin count.
func (h *Histogram) NumBins() int { return len(h.bins) }

// BinCount returns the number of values in bin i.
func (h *Histogram) BinCount(i int) int { return h.bins[i] }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.hi - h.lo) / float64(len(h.bins))
	return h.lo + w*(float64(i)+0.5)
}

// Probabilities returns the per-bin empirical probabilities (counts over
// total in-range values). Empty histograms return all zeros.
func (h *Histogram) Probabilities() []float64 {
	probs := make([]float64, len(h.bins))
	inRange := 0
	for _, c := range h.bins {
		inRange += c
	}
	if inRange == 0 {
		return probs
	}
	for i, c := range h.bins {
		probs[i] = float64(c) / float64(inRange)
	}
	return probs
}

// ASCII renders the histogram as fixed-width rows, one per bin:
// "center | bar | probability". Width is the maximum bar length.
func (h *Histogram) ASCII(width int) string {
	if width < 1 {
		width = 40
	}
	probs := h.Probabilities()
	maxP := 0.0
	for _, p := range probs {
		if p > maxP {
			maxP = p
		}
	}
	var b strings.Builder
	for i, p := range probs {
		barLen := 0
		if maxP > 0 {
			barLen = int(math.Round(p / maxP * float64(width)))
		}
		fmt.Fprintf(&b, "%9.2f | %-*s | %.4f\n", h.BinCenter(i), width, strings.Repeat("#", barLen), p)
	}
	return b.String()
}

// ECDF is an empirical cumulative distribution built from stored samples.
type ECDF struct {
	values []float64
	sorted bool
}

// Add appends a finite sample; non-finite values are ignored.
func (e *ECDF) Add(v float64) {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return
	}
	e.values = append(e.values, v)
	e.sorted = false
}

// Len returns the sample count.
func (e *ECDF) Len() int { return len(e.values) }

func (e *ECDF) sort() {
	if !e.sorted {
		sort.Float64s(e.values)
		e.sorted = true
	}
}

// Quantile returns the q-th quantile (0 <= q <= 1) by nearest-rank; false
// when empty or q out of range.
func (e *ECDF) Quantile(q float64) (float64, bool) {
	if len(e.values) == 0 || q < 0 || q > 1 {
		return 0, false
	}
	e.sort()
	idx := int(math.Ceil(q*float64(len(e.values)))) - 1
	if idx < 0 {
		idx = 0
	}
	return e.values[idx], true
}

// At returns the empirical P(X <= x).
func (e *ECDF) At(x float64) float64 {
	if len(e.values) == 0 {
		return 0
	}
	e.sort()
	return float64(sort.SearchFloat64s(e.values, math.Nextafter(x, math.Inf(1)))) / float64(len(e.values))
}
