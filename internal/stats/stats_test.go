package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.Count() != 8 {
		t.Errorf("Count = %d", s.Count())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	if math.Abs(s.StdDev()-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", s.StdDev())
	}
	if !strings.Contains(s.String(), "n=8") {
		t.Errorf("String = %q", s.String())
	}
}

func TestSummaryIgnoresNonFinite(t *testing.T) {
	var s Summary
	s.Add(1)
	s.Add(math.Inf(1))
	s.Add(math.NaN())
	s.Add(3)
	if s.Count() != 2 || s.NonFinite() != 2 {
		t.Errorf("Count=%d NonFinite=%d", s.Count(), s.NonFinite())
	}
	if s.Mean() != 2 {
		t.Errorf("Mean = %v, want 2", s.Mean())
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Variance() != 0 || s.Count() != 0 {
		t.Error("empty summary not zeroed")
	}
	s.Add(5)
	if s.Min() != 5 || s.Max() != 5 || s.Mean() != 5 || s.Variance() != 0 {
		t.Error("single-value summary wrong")
	}
}

// Property: mean stays within [min, max] for any finite stream.
func TestSummaryMeanBounded(t *testing.T) {
	f := func(vals []float64) bool {
		var s Summary
		for _, v := range vals {
			s.Add(math.Mod(v, 1e6))
		}
		if s.Count() == 0 {
			return true
		}
		return s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(1, 1, 10); err == nil {
		t.Error("accepted empty range")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("accepted zero bins")
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0, 1.9, 2, 5, 9.99} {
		h.Add(v)
	}
	h.Add(-1)          // below
	h.Add(10)          // above (hi is exclusive)
	h.Add(math.Inf(1)) // non-finite
	wantBins := []int{2, 1, 1, 0, 1}
	for i, want := range wantBins {
		if got := h.BinCount(i); got != want {
			t.Errorf("bin %d = %d, want %d", i, got, want)
		}
	}
	if h.Below() != 1 || h.Above() != 1 || h.NonFinite() != 1 {
		t.Errorf("overflow: below=%d above=%d nonfinite=%d", h.Below(), h.Above(), h.NonFinite())
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d, want 8", h.Total())
	}
	if h.NumBins() != 5 {
		t.Errorf("NumBins = %d", h.NumBins())
	}
	if h.BinCenter(0) != 1 || h.BinCenter(4) != 9 {
		t.Errorf("centers: %v, %v", h.BinCenter(0), h.BinCenter(4))
	}
}

func TestHistogramProbabilitiesSumToOne(t *testing.T) {
	h, _ := NewHistogram(-5, 5, 7)
	for i := 0; i < 1000; i++ {
		h.Add(-5 + 10*float64(i)/1000)
	}
	sum := 0.0
	for _, p := range h.Probabilities() {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probability sum = %v", sum)
	}
}

func TestHistogramEmptyProbabilities(t *testing.T) {
	h, _ := NewHistogram(0, 1, 3)
	for _, p := range h.Probabilities() {
		if p != 0 {
			t.Error("empty histogram has non-zero probability")
		}
	}
	if out := h.ASCII(20); len(out) == 0 {
		t.Error("ASCII of empty histogram is empty")
	}
}

func TestHistogramASCII(t *testing.T) {
	h, _ := NewHistogram(0, 4, 2)
	h.Add(1)
	h.Add(1.5)
	h.Add(3)
	out := h.ASCII(10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("ASCII lines = %d, want 2", len(lines))
	}
	if !strings.Contains(lines[0], "##########") {
		t.Errorf("densest bin not full-width: %q", lines[0])
	}
	// Default width on nonsense input.
	if h.ASCII(0) == "" {
		t.Error("ASCII(0) empty")
	}
}

func TestECDFQuantiles(t *testing.T) {
	var e ECDF
	for _, v := range []float64{5, 1, 3, 2, 4} {
		e.Add(v)
	}
	e.Add(math.Inf(1)) // ignored
	if e.Len() != 5 {
		t.Fatalf("Len = %d, want 5", e.Len())
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.2, 1}, {0.5, 3}, {1, 5},
	}
	for _, c := range cases {
		got, ok := e.Quantile(c.q)
		if !ok || got != c.want {
			t.Errorf("Quantile(%v) = %v, %v; want %v", c.q, got, ok, c.want)
		}
	}
	if _, ok := e.Quantile(-0.1); ok {
		t.Error("accepted negative quantile")
	}
	var empty ECDF
	if _, ok := empty.Quantile(0.5); ok {
		t.Error("empty ECDF returned a quantile")
	}
}

func TestECDFAt(t *testing.T) {
	var e ECDF
	for v := 1.0; v <= 10; v++ {
		e.Add(v)
	}
	if got := e.At(5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("At(5) = %v, want 0.5", got)
	}
	if got := e.At(0); got != 0 {
		t.Errorf("At(0) = %v, want 0", got)
	}
	if got := e.At(10); got != 1 {
		t.Errorf("At(10) = %v, want 1", got)
	}
	var empty ECDF
	if empty.At(1) != 0 {
		t.Error("empty ECDF At != 0")
	}
}
