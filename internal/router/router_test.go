package router

import (
	"math"
	"testing"

	"phonocmap/internal/photonic"
)

func TestPortStringAndValid(t *testing.T) {
	want := map[Port]string{
		Local: "local", North: "north", East: "east", South: "south", West: "west",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("Port(%d).String() = %q, want %q", p, p.String(), s)
		}
		if !p.Valid() {
			t.Errorf("port %v invalid", p)
		}
	}
	if Port(5).Valid() {
		t.Error("Port(5) valid")
	}
}

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder("test")
	ring := b.AddElement(photonic.PPSE, "r0")
	b.SetPath(Local, East, []Traversal{{Elem: ring, In: photonic.PortA0, State: photonic.On}})
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "test" || a.NumElements() != 1 {
		t.Errorf("arch = %s, %d elements", a.Name(), a.NumElements())
	}
	if !a.Supports(Local, East) {
		t.Error("declared turn unsupported")
	}
	if a.Supports(East, Local) {
		t.Error("undeclared turn supported")
	}
	e, ok := a.Element(ring)
	if !ok || e.Label != "r0" || e.Kind != photonic.PPSE {
		t.Errorf("Element(%d) = %+v, %v", ring, e, ok)
	}
	if _, ok := a.Element(ElemID(5)); ok {
		t.Error("out-of-range element lookup succeeded")
	}
	if a.RingCount() != 1 || a.CrossingCount() != 0 {
		t.Errorf("counts: %d rings, %d crossings", a.RingCount(), a.CrossingCount())
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *Builder)
	}{
		{"bad kind", func(b *Builder) { b.AddElement(photonic.Kind(9), "x") }},
		{"empty label", func(b *Builder) { b.AddElement(photonic.PPSE, "") }},
		{"dup label", func(b *Builder) {
			b.AddElement(photonic.PPSE, "x")
			b.AddElement(photonic.CPSE, "x")
		}},
		{"u-turn", func(b *Builder) {
			e := b.AddElement(photonic.PPSE, "x")
			b.SetPath(East, East, []Traversal{{Elem: e, In: photonic.PortA0}})
		}},
		{"double set", func(b *Builder) {
			e := b.AddElement(photonic.PPSE, "x")
			b.SetPath(Local, East, []Traversal{{Elem: e, In: photonic.PortA0}})
			b.SetPath(Local, East, []Traversal{{Elem: e, In: photonic.PortA0}})
		}},
		{"invalid port", func(b *Builder) {
			e := b.AddElement(photonic.PPSE, "x")
			b.SetPath(Port(9), East, []Traversal{{Elem: e, In: photonic.PortA0}})
		}},
		{"unknown element", func(b *Builder) {
			b.AddElement(photonic.PPSE, "x")
			b.SetPath(Local, East, []Traversal{{Elem: ElemID(7), In: photonic.PortA0}})
		}},
		{"bad in port", func(b *Builder) {
			e := b.AddElement(photonic.PPSE, "x")
			b.SetPath(Local, East, []Traversal{{Elem: e, In: photonic.Port(9)}})
		}},
		{"element twice", func(b *Builder) {
			e := b.AddElement(photonic.PPSE, "x")
			b.SetPath(Local, East, []Traversal{
				{Elem: e, In: photonic.PortA0},
				{Elem: e, In: photonic.PortA1},
			})
		}},
		{"crossing on", func(b *Builder) {
			e := b.AddElement(photonic.Crossing, "x")
			b.SetPath(Local, East, []Traversal{{Elem: e, In: photonic.PortA0, State: photonic.On}})
		}},
		{"no paths", func(b *Builder) { b.AddElement(photonic.PPSE, "x") }},
	}
	for _, c := range cases {
		b := NewBuilder("bad")
		c.build(b)
		if _, err := b.Build(); err == nil {
			t.Errorf("%s: Build succeeded", c.name)
		}
	}
}

func TestBuilderSingleUse(t *testing.T) {
	b := NewBuilder("once")
	e := b.AddElement(photonic.PPSE, "r")
	b.SetPath(Local, East, []Traversal{{Elem: e, In: photonic.PortA0, State: photonic.On}})
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err == nil {
		t.Error("second Build succeeded")
	}
}

func TestStepsResolveOutAndLoss(t *testing.T) {
	p := photonic.DefaultParams()
	b := NewBuilder("steps")
	ring := b.AddElement(photonic.CPSE, "r")
	cross := b.AddElement(photonic.Crossing, "c")
	b.SetPath(West, North, []Traversal{
		{Elem: cross, In: photonic.PortA0},
		{Elem: ring, In: photonic.PortA0, State: photonic.On},
	})
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	steps, ok := a.Steps(p, West, North)
	if !ok || len(steps) != 2 {
		t.Fatalf("Steps = %v, ok=%v", steps, ok)
	}
	if steps[0].Out != photonic.PortA1 || steps[0].Loss != p.CrossingLoss {
		t.Errorf("crossing step = %+v", steps[0])
	}
	if steps[1].Out != photonic.PortB1 || steps[1].Loss != p.CPSEOnLoss {
		t.Errorf("ring step = %+v", steps[1])
	}
	loss, ok := a.PathLoss(p, West, North)
	if !ok || math.Abs(loss-(-0.54)) > 1e-12 {
		t.Errorf("PathLoss = %v, want -0.54", loss)
	}
	if _, ok := a.PathLoss(p, North, West); ok {
		t.Error("PathLoss reported an unsupported turn")
	}
}

func TestCruxShape(t *testing.T) {
	a := Crux()
	if a.Name() != "crux" {
		t.Errorf("name = %q", a.Name())
	}
	if got := a.RingCount(); got != 12 {
		t.Errorf("Crux rings = %d, want 12", got)
	}
	if got := a.CrossingCount(); got != 5 {
		t.Errorf("Crux crossings = %d, want 5", got)
	}
	if got := len(a.SupportedTurns()); got != 16 {
		t.Errorf("Crux turns = %d, want 16", got)
	}
}

func TestCruxSupportsXYOnly(t *testing.T) {
	a := Crux()
	if err := CheckTurns(a, RequiredTurnsXY()); err != nil {
		t.Errorf("Crux fails XY turns: %v", err)
	}
	// Y-to-X turns are deliberately absent.
	for _, turn := range [][2]Port{{North, East}, {North, West}, {South, East}, {South, West}} {
		if a.Supports(turn[0], turn[1]) {
			t.Errorf("Crux supports forbidden turn %v->%v", turn[0], turn[1])
		}
	}
	if err := CheckTurns(a, RequiredTurnsAll()); err == nil {
		t.Error("Crux claims full connectivity")
	}
}

func TestCruxExactlyOneOnRingPerPath(t *testing.T) {
	// The defining property of the reconstruction: injection, ejection
	// and turn paths switch exactly one ring ON; dimension-through paths
	// switch none.
	a := Crux()
	p := photonic.DefaultParams()
	through := map[[2]Port]bool{
		{West, East}: true, {East, West}: true,
		{North, South}: true, {South, North}: true,
	}
	for _, turn := range a.SupportedTurns() {
		steps, _ := a.Steps(p, turn[0], turn[1])
		onCount := 0
		for _, s := range steps {
			if s.State == photonic.On {
				if s.Kind == photonic.Crossing {
					t.Errorf("%v->%v: crossing marked On", turn[0], turn[1])
				}
				onCount++
			}
		}
		want := 1
		if through[turn] {
			want = 0
		}
		if onCount != want {
			t.Errorf("%v->%v: %d ON rings, want %d", turn[0], turn[1], onCount, want)
		}
	}
}

func TestCruxLossProfile(t *testing.T) {
	a := Crux()
	p := photonic.DefaultParams()
	// Through traffic must be much cheaper than switched traffic.
	we, _ := a.PathLoss(p, West, East)
	ns, _ := a.PathLoss(p, North, South)
	inj, _ := a.PathLoss(p, Local, North)
	ej, _ := a.PathLoss(p, North, Local)
	turn, _ := a.PathLoss(p, West, North)
	for name, loss := range map[string]float64{"W->E": we, "N->S": ns} {
		if loss < -0.5 || loss >= 0 {
			t.Errorf("through loss %s = %v, want in (-0.5, 0)", name, loss)
		}
	}
	for name, loss := range map[string]float64{"inject": inj, "eject": ej, "turn": turn} {
		if loss > -0.5 {
			t.Errorf("switched loss %s = %v, want <= -0.5 (one ON ring)", name, loss)
		}
		if loss < -1.0 {
			t.Errorf("switched loss %s = %v, implausibly large", name, loss)
		}
	}
	// Symmetry of the two X directions and the two Y directions.
	ew, _ := a.PathLoss(p, East, West)
	sn, _ := a.PathLoss(p, South, North)
	if math.Abs(we-ew) > 1e-12 {
		t.Errorf("W->E loss %v != E->W loss %v", we, ew)
	}
	if math.Abs(ns-sn) > 1e-12 {
		t.Errorf("N->S loss %v != S->N loss %v", ns, sn)
	}
	if a.WorstTurnLoss(p) >= 0 || a.WorstTurnLoss(p) < -1.0 {
		t.Errorf("WorstTurnLoss = %v out of plausible range", a.WorstTurnLoss(p))
	}
}

func TestCruxStepsContinuity(t *testing.T) {
	// Sanity of the hand-built layout: within a path, the waveguide
	// direction never "teleports" — each step's exit and the next step's
	// entry must both be interior or both be endpoints of the path. We
	// cannot check full netlist geometry (the builder does not model
	// waveguide segments), but we can at least require every traversal's
	// ports to be valid and every PSE ON step to change waveguide.
	a := Crux()
	p := photonic.DefaultParams()
	for _, turn := range a.SupportedTurns() {
		steps, _ := a.Steps(p, turn[0], turn[1])
		if len(steps) == 0 {
			t.Errorf("%v->%v: empty path", turn[0], turn[1])
		}
		for i, s := range steps {
			if !s.In.Valid() || !s.Out.Valid() {
				t.Errorf("%v->%v step %d: invalid ports %+v", turn[0], turn[1], i, s)
			}
			if s.State == photonic.On && photonic.SameWaveguide(s.In, s.Out) {
				t.Errorf("%v->%v step %d: ON ring did not switch waveguide", turn[0], turn[1], i)
			}
			if s.State == photonic.Off && !photonic.SameWaveguide(s.In, s.Out) {
				t.Errorf("%v->%v step %d: OFF element switched waveguide", turn[0], turn[1], i)
			}
		}
	}
}

func TestCrossbarShape(t *testing.T) {
	a := Crossbar()
	if a.RingCount() != 20 {
		t.Errorf("crossbar rings = %d, want 20", a.RingCount())
	}
	if a.CrossingCount() != 5 {
		t.Errorf("crossbar crossings = %d, want 5", a.CrossingCount())
	}
	if err := CheckTurns(a, RequiredTurnsAll()); err != nil {
		t.Errorf("crossbar not fully connected: %v", err)
	}
}

func TestCrossbarPathStructure(t *testing.T) {
	a := Crossbar()
	p := photonic.DefaultParams()
	for _, turn := range a.SupportedTurns() {
		steps, _ := a.Steps(p, turn[0], turn[1])
		onCount := 0
		for _, s := range steps {
			if s.State == photonic.On {
				onCount++
			}
		}
		if onCount != 1 {
			t.Errorf("%v->%v: %d ON rings, want 1", turn[0], turn[1], onCount)
		}
		wantLen := int(turn[1]) + (int(NumPorts) - 1 - int(turn[0])) + 1
		if len(steps) != wantLen {
			t.Errorf("%v->%v: %d steps, want %d", turn[0], turn[1], len(steps), wantLen)
		}
	}
}

func TestCrossbarWorseThanCrux(t *testing.T) {
	// The optimized router must beat the crossbar baseline on worst-case
	// per-router loss — the reason Crux exists.
	p := photonic.DefaultParams()
	if crux, bar := Crux().WorstTurnLoss(p), Crossbar().WorstTurnLoss(p); crux < bar {
		t.Errorf("crux worst loss %v is worse than crossbar %v", crux, bar)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"crux", "crossbar"} {
		a, err := ByName(name)
		if err != nil || a.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, a, err)
		}
	}
	if _, err := ByName("warp-drive"); err == nil {
		t.Error("ByName accepted unknown router")
	}
}

func TestSummary(t *testing.T) {
	got := Crux().Summary()
	want := "crux: 12 rings, 5 crossings, 16 turns"
	if got != want {
		t.Errorf("Summary = %q, want %q", got, want)
	}
}

func TestCheckTurnsReportsMissing(t *testing.T) {
	b := NewBuilder("partial")
	e := b.AddElement(photonic.PPSE, "r")
	b.SetPath(Local, East, []Traversal{{Elem: e, In: photonic.PortA0, State: photonic.On}})
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	err = CheckTurns(a, RequiredTurnsXY())
	if err == nil {
		t.Fatal("CheckTurns passed an incomplete router")
	}
}

func TestCygnusShape(t *testing.T) {
	a := Cygnus()
	if a.Name() != "cygnus" {
		t.Errorf("name = %q", a.Name())
	}
	// Same netlist as Crux: 12 rings, 5 crossings — the corner rings are
	// reciprocal couplers serving both turn directions.
	if a.RingCount() != 12 || a.CrossingCount() != 5 {
		t.Errorf("shape: %d rings, %d crossings", a.RingCount(), a.CrossingCount())
	}
	if got := len(a.SupportedTurns()); got != 20 {
		t.Errorf("turns = %d, want 20 (all)", got)
	}
	if err := CheckTurns(a, RequiredTurnsAll()); err != nil {
		t.Errorf("cygnus not fully connected: %v", err)
	}
}

func TestCygnusYXTurnsUseOneOnRing(t *testing.T) {
	a := Cygnus()
	p := photonic.DefaultParams()
	for _, turn := range [][2]Port{{North, West}, {North, East}, {South, West}, {South, East}} {
		steps, ok := a.Steps(p, turn[0], turn[1])
		if !ok {
			t.Fatalf("%v->%v missing", turn[0], turn[1])
		}
		on := 0
		for _, s := range steps {
			if s.State == photonic.On {
				on++
				if photonic.SameWaveguide(s.In, s.Out) {
					t.Errorf("%v->%v: ON ring did not switch waveguide", turn[0], turn[1])
				}
			}
		}
		if on != 1 {
			t.Errorf("%v->%v: %d ON rings, want 1", turn[0], turn[1], on)
		}
	}
}

func TestCygnusMatchesCruxOnXYTurns(t *testing.T) {
	// The shared turn subset must have identical losses: same hardware.
	p := photonic.DefaultParams()
	crux, cyg := Crux(), Cygnus()
	for _, turn := range RequiredTurnsXY() {
		lc, ok1 := crux.PathLoss(p, turn[0], turn[1])
		lg, ok2 := cyg.PathLoss(p, turn[0], turn[1])
		if !ok1 || !ok2 || lc != lg {
			t.Errorf("%v->%v: crux %v (%v) vs cygnus %v (%v)", turn[0], turn[1], lc, ok1, lg, ok2)
		}
	}
}
