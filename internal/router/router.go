// Package router describes optical router microarchitectures as netlists
// of photonic elements (microring PSEs and waveguide crossings) plus a
// path table: for every (input port, output port) pair the router
// supports, the ordered list of elements the optical signal traverses and
// the microring states that configuration requires.
//
// This element-level description is what lets the analysis package compute
// insertion loss per path and locate the shared elements where two
// simultaneously active signals exchange first-order crosstalk, exactly as
// in Section II-C of the paper. New router architectures plug in through
// Builder without any change to the rest of the tool, matching the
// paper's "fully customizable" design.
package router

import (
	"fmt"
	"sort"

	"phonocmap/internal/photonic"
)

// Port identifies one of the five ports of a tile router: the local
// gateway (injection/ejection) plus the four compass directions.
type Port uint8

const (
	Local Port = iota
	North
	East
	South
	West
	// NumPorts is the port count of the 5-port routers modelled here.
	NumPorts
)

// String returns the short port name.
func (p Port) String() string {
	switch p {
	case Local:
		return "local"
	case North:
		return "north"
	case East:
		return "east"
	case South:
		return "south"
	case West:
		return "west"
	default:
		return fmt.Sprintf("router.Port(%d)", uint8(p))
	}
}

// Valid reports whether p is one of the five ports.
func (p Port) Valid() bool { return p < NumPorts }

// ElemID indexes an element within one Architecture.
type ElemID int

// Element is one photonic device instance in the router netlist.
type Element struct {
	Kind  photonic.Kind
	Label string
}

// Traversal is one step of an optical path through the router: the signal
// enters element Elem at photonic port In while the element is held in
// state State by this router configuration. The output port follows from
// the element physics (photonic.Traverse); crossings ignore State.
type Traversal struct {
	Elem  ElemID
	In    photonic.Port
	State photonic.State
}

// Step is a resolved traversal, with the element kind, exit port and
// dB loss filled in. Analysis code consumes steps.
type Step struct {
	Elem  ElemID
	Kind  photonic.Kind
	In    photonic.Port
	Out   photonic.Port
	State photonic.State
	Loss  float64 // dB, <= 0
}

// Architecture is an immutable router microarchitecture: its element
// netlist and the supported port-to-port optical paths.
type Architecture struct {
	name  string
	elems []Element
	// paths[in][out] is nil when the turn is unsupported.
	paths [NumPorts][NumPorts][]Traversal
	// steps caches resolved paths per parameter set independently; see
	// Steps. Loss depends on photonic.Params so resolution happens there.
}

// Name returns the architecture name, e.g. "crux".
func (a *Architecture) Name() string { return a.name }

// NumElements returns the number of photonic elements in the netlist.
func (a *Architecture) NumElements() int { return len(a.elems) }

// Element returns the element with the given ID.
func (a *Architecture) Element(id ElemID) (Element, bool) {
	if id < 0 || int(id) >= len(a.elems) {
		return Element{}, false
	}
	return a.elems[id], true
}

// RingCount returns the number of microring resonators (PPSE + CPSE
// elements) — the headline cost metric of optical routers.
func (a *Architecture) RingCount() int {
	n := 0
	for _, e := range a.elems {
		if e.Kind == photonic.PPSE || e.Kind == photonic.CPSE {
			n++
		}
	}
	return n
}

// CrossingCount returns the number of passive waveguide crossings.
func (a *Architecture) CrossingCount() int {
	n := 0
	for _, e := range a.elems {
		if e.Kind == photonic.Crossing {
			n++
		}
	}
	return n
}

// Supports reports whether the router provides an optical path from port
// in to port out.
func (a *Architecture) Supports(in, out Port) bool {
	return in.Valid() && out.Valid() && a.paths[in][out] != nil
}

// SupportedTurns returns all (in, out) pairs with a configured path, in
// deterministic order.
func (a *Architecture) SupportedTurns() [][2]Port {
	var res [][2]Port
	for in := Port(0); in < NumPorts; in++ {
		for out := Port(0); out < NumPorts; out++ {
			if a.paths[in][out] != nil {
				res = append(res, [2]Port{in, out})
			}
		}
	}
	return res
}

// Path returns the raw traversal list for the turn, or false when the
// turn is unsupported. Callers must not modify the returned slice.
func (a *Architecture) Path(in, out Port) ([]Traversal, bool) {
	if !in.Valid() || !out.Valid() || a.paths[in][out] == nil {
		return nil, false
	}
	return a.paths[in][out], true
}

// Steps resolves the turn's traversals against the element netlist and
// the given parameters, producing the exit port and per-step loss.
func (a *Architecture) Steps(p photonic.Params, in, out Port) ([]Step, bool) {
	trav, ok := a.Path(in, out)
	if !ok {
		return nil, false
	}
	steps := make([]Step, len(trav))
	for i, t := range trav {
		kind := a.elems[t.Elem].Kind
		steps[i] = Step{
			Elem:  t.Elem,
			Kind:  kind,
			In:    t.In,
			Out:   photonic.Traverse(kind, t.State, t.In),
			State: t.State,
			Loss:  p.TraversalLoss(kind, t.State),
		}
	}
	return steps, true
}

// PathLoss returns the total dB insertion loss of the turn under the
// given parameters, or false when the turn is unsupported.
func (a *Architecture) PathLoss(p photonic.Params, in, out Port) (float64, bool) {
	steps, ok := a.Steps(p, in, out)
	if !ok {
		return 0, false
	}
	var sum float64
	for _, s := range steps {
		sum += s.Loss
	}
	return sum, true
}

// WorstTurnLoss returns the largest-magnitude turn loss across all
// supported turns — the per-router worst-case insertion loss figure
// reported for router designs in the literature.
func (a *Architecture) WorstTurnLoss(p photonic.Params) float64 {
	worst := 0.0
	for in := Port(0); in < NumPorts; in++ {
		for out := Port(0); out < NumPorts; out++ {
			if loss, ok := a.PathLoss(p, in, out); ok && loss < worst {
				worst = loss
			}
		}
	}
	return worst
}

// Summary returns a human-readable one-line description, e.g.
// "crux: 12 rings, 4 crossings, 16 turns".
func (a *Architecture) Summary() string {
	return fmt.Sprintf("%s: %d rings, %d crossings, %d turns",
		a.name, a.RingCount(), a.CrossingCount(), len(a.SupportedTurns()))
}

// Builder assembles an Architecture. The zero value is unusable; create
// builders with NewBuilder. Builders are single-use: Build finalizes and
// validates the architecture.
type Builder struct {
	name   string
	elems  []Element
	labels map[string]ElemID
	paths  [NumPorts][NumPorts][]Traversal
	err    error
}

// NewBuilder returns a Builder for an architecture with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]ElemID)}
}

// AddElement adds a photonic element with a unique label and returns its
// ID. Errors are deferred to Build.
func (b *Builder) AddElement(kind photonic.Kind, label string) ElemID {
	if b.err != nil {
		return -1
	}
	if !kind.Valid() {
		b.err = fmt.Errorf("router: %s: invalid element kind %d", b.name, kind)
		return -1
	}
	if label == "" {
		b.err = fmt.Errorf("router: %s: empty element label", b.name)
		return -1
	}
	if _, dup := b.labels[label]; dup {
		b.err = fmt.Errorf("router: %s: duplicate element label %q", b.name, label)
		return -1
	}
	id := ElemID(len(b.elems))
	b.elems = append(b.elems, Element{Kind: kind, Label: label})
	b.labels[label] = id
	return id
}

// SetPath declares the optical path for the (in, out) turn. A nil or
// empty traversal list is valid (a zero-element pass-through) only for
// distinct ports; errors are deferred to Build.
func (b *Builder) SetPath(in, out Port, traversals []Traversal) {
	if b.err != nil {
		return
	}
	if !in.Valid() || !out.Valid() {
		b.err = fmt.Errorf("router: %s: invalid port in SetPath(%v,%v)", b.name, in, out)
		return
	}
	if in == out {
		b.err = fmt.Errorf("router: %s: U-turn path %v->%v not allowed", b.name, in, out)
		return
	}
	if b.paths[in][out] != nil {
		b.err = fmt.Errorf("router: %s: path %v->%v set twice", b.name, in, out)
		return
	}
	// make never returns nil, so even an empty path marks the turn as
	// supported in the paths table.
	cp := make([]Traversal, len(traversals))
	copy(cp, traversals)
	b.paths[in][out] = cp
}

// Build validates and returns the architecture. Validation checks element
// references, port validity, that no path visits the same element twice,
// and that any two configurations agree on the state of a shared element
// when entered from the same waveguide in the same direction (a physical
// consistency requirement: one path cannot require a ring both ON and OFF
// for the same signal).
func (b *Builder) Build() (*Architecture, error) {
	if b.err != nil {
		return nil, b.err
	}
	supported := 0
	for in := Port(0); in < NumPorts; in++ {
		for out := Port(0); out < NumPorts; out++ {
			trav := b.paths[in][out]
			if trav == nil {
				continue
			}
			supported++
			seen := make(map[ElemID]bool, len(trav))
			for i, t := range trav {
				if t.Elem < 0 || int(t.Elem) >= len(b.elems) {
					return nil, fmt.Errorf("router: %s: path %v->%v step %d: unknown element %d",
						b.name, in, out, i, t.Elem)
				}
				if !t.In.Valid() {
					return nil, fmt.Errorf("router: %s: path %v->%v step %d: invalid port %v",
						b.name, in, out, i, t.In)
				}
				if seen[t.Elem] {
					return nil, fmt.Errorf("router: %s: path %v->%v visits element %q twice",
						b.name, in, out, b.elems[t.Elem].Label)
				}
				seen[t.Elem] = true
				if b.elems[t.Elem].Kind == photonic.Crossing && t.State != photonic.Off {
					return nil, fmt.Errorf("router: %s: path %v->%v step %d: crossing %q cannot be On",
						b.name, in, out, i, b.elems[t.Elem].Label)
				}
			}
		}
	}
	if supported == 0 {
		return nil, fmt.Errorf("router: %s: no paths defined", b.name)
	}
	a := &Architecture{name: b.name, elems: b.elems, paths: b.paths}
	b.err = fmt.Errorf("router: builder for %s already consumed", b.name)
	return a, nil
}

// RequiredTurns returns the turn set a routing scheme needs. XY
// dimension-order routing on a mesh or torus needs injection and ejection
// on every direction, straight-through on both axes, and the four X-to-Y
// turns; Y-to-X turns never occur.
func RequiredTurnsXY() [][2]Port {
	return [][2]Port{
		{Local, North}, {Local, East}, {Local, South}, {Local, West},
		{North, Local}, {East, Local}, {South, Local}, {West, Local},
		{West, East}, {East, West}, {North, South}, {South, North},
		{West, North}, {West, South}, {East, North}, {East, South},
	}
}

// RequiredTurnsAll returns every turn of a fully connected 5-port router
// (20 pairs), as needed by arbitrary routing algorithms.
func RequiredTurnsAll() [][2]Port {
	var res [][2]Port
	for in := Port(0); in < NumPorts; in++ {
		for out := Port(0); out < NumPorts; out++ {
			if in != out {
				res = append(res, [2]Port{in, out})
			}
		}
	}
	return res
}

// CheckTurns verifies the architecture supports every required turn.
func CheckTurns(a *Architecture, required [][2]Port) error {
	var missing []string
	for _, t := range required {
		if !a.Supports(t[0], t[1]) {
			missing = append(missing, fmt.Sprintf("%v->%v", t[0], t[1]))
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("router: %s lacks turns: %v", a.Name(), missing)
	}
	return nil
}
