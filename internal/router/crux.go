package router

import "phonocmap/internal/photonic"

// Crux returns a reconstruction of the Crux 5x5 optical router
// (Xie et al., DAC 2010), the router used throughout the paper's
// evaluation. Crux is optimized for XY dimension-order routing: the
// forbidden Y-to-X turns have no hardware, dimension-through traffic
// crosses the router passing only OFF rings plus the central crossing,
// and injection, ejection and each X-to-Y turn switch exactly one ring ON.
//
// The reconstruction uses 12 microrings (the ring count of Crux) and five
// passive crossings:
//
//	                 N
//	                 │ eN(A)
//	                 │ iN(B)   ← injection branch N
//	                 │ tEN(B)
//	                 │ tWN(B)
//	W ── eW─iW─tWN─tWS─[c0]─tES─tEN─cInjS─iE─eE ── E
//	                 │ tWS(B)
//	                 │ tES(B)
//	                 │ cEjNS   ← ejection waveguide crosses here
//	                 │ iS(B)   ← injection branch S
//	                 │ eS(A)
//	                 S
//
// Waveguide inventory (all bidirectional):
//
//   - WE waveguide, W port to E port, passing (in order): eW, iW(drop
//     side), tWN, tWS, c0, tES, tEN, iE(drop side), eE.
//   - NS waveguide, N port to S port: eN, iN(drop side), tEN(drop side),
//     tWN(drop side), c0, tWS(drop side), tES(drop side), cEjNS, iS(drop
//     side), eS.
//   - Four injection branches from the local transmitter, one per
//     direction; branch X carries only the PPSE iX, whose ON state
//     steers the modulated signal onto direction waveguide X headed out.
//     (The split of the transmitter output into branches involves no
//     switching elements; couplers are out of PhoNoCMap's scope, as in
//     the paper.)
//   - One ejection waveguide to the local photodetector: eN, eE, cEjNS,
//     eS, eW. Turning an ejection ring ON drops an arriving signal onto
//     this waveguide.
//
// Element port conventions (photonic ports A0/A1 = first waveguide,
// B0/B1 = second; the ON state couples A0<->B1 and B0<->A1):
//
//   - ejection rings eX: A = direction waveguide with A0 facing port X,
//     A1 facing the centre; B = ejection waveguide with B0 upstream and
//     B1 toward the detector;
//   - injection rings iX: A = injection branch with A0 at the
//     transmitter; B = direction waveguide with B1 facing port X;
//   - turn rings tXY: A = WE waveguide with A0 facing port X; B = NS
//     waveguide with B1 facing port Y;
//   - crossings: c0 has A = WE (A0 west side) and B = NS (B0 north
//     side); cEjNS has A = ejection waveguide (A0 upstream) and B = NS
//     (B0 north side).
//
// The original Crux netlist is not published in the paper; this layout is
// a documented substitution (DESIGN.md §3.3) that preserves Crux's
// qualitative loss and crosstalk profile: through traffic accumulates
// only OFF-ring and crossing losses, switched traffic pays one ON ring,
// and the dominant unavoidable crosstalk interaction is the Kc-level
// coupling of perpendicular streams at the central crossing — which is
// what pins the best-case worst-SNR near |Kc| - |losses| ≈ 39 dB, the
// ceiling visible throughout Table II. Because every candidate mapping is
// scored with the same router model, mapping-dependent comparisons — the
// object of the paper's evaluation — are unaffected by residual constant
// offsets.
func Crux() *Architecture {
	return buildDimensionRouter("crux", false)
}

// Cygnus returns an all-turn variant of the same dimension-crossing
// layout, in the spirit of the Cygnus router (Gu et al., ASP-DAC 2009):
// the four corner turn rings are reciprocal couplers (the ON state
// couples both diagonal port pairs), so the identical 12-ring netlist
// also serves the four Y-to-X turns that Crux leaves unconnected. This
// makes the router usable with YX routing and arbitrary turn models, at
// the cost of more shared elements — and therefore more crosstalk
// interactions — between perpendicular streams.
func Cygnus() *Architecture {
	return buildDimensionRouter("cygnus", true)
}

func buildDimensionRouter(name string, allTurns bool) *Architecture {
	b := NewBuilder(name)

	// Injection PPSEs (one per direction branch).
	iN := b.AddElement(photonic.PPSE, "iN")
	iE := b.AddElement(photonic.PPSE, "iE")
	iS := b.AddElement(photonic.PPSE, "iS")
	iW := b.AddElement(photonic.PPSE, "iW")
	// Ejection CPSEs (the ejection waveguide crosses the direction
	// waveguides at the drop points).
	eN := b.AddElement(photonic.CPSE, "eN")
	eE := b.AddElement(photonic.CPSE, "eE")
	eS := b.AddElement(photonic.CPSE, "eS")
	eW := b.AddElement(photonic.CPSE, "eW")
	// Turn CPSEs around the central crossing.
	tWN := b.AddElement(photonic.CPSE, "tWN")
	tWS := b.AddElement(photonic.CPSE, "tWS")
	tEN := b.AddElement(photonic.CPSE, "tEN")
	tES := b.AddElement(photonic.CPSE, "tES")
	// Passive crossings: the central WE x NS crossing, the ejection
	// waveguide's crossing of NS, and the crossings of the east and
	// south injection branches with the NS and WE waveguides — in a
	// planar layout the transmitter cannot reach the far-side drop
	// points without crossing the dimension waveguides.
	c0 := b.AddElement(photonic.Crossing, "c0")
	cEjNS := b.AddElement(photonic.Crossing, "cEjNS")
	cInjE := b.AddElement(photonic.Crossing, "cInjE")
	cInjS := b.AddElement(photonic.Crossing, "cInjS")
	// The transmitter and detector share the gateway corner of the tile;
	// the injection trunk crosses the ejection waveguide once on its way
	// out. This is the interaction that keeps even perfectly separated
	// neighbouring communications at a finite (~39 dB) worst-case SNR,
	// as in the paper's Table II ceilings.
	cInjEj := b.AddElement(photonic.Crossing, "cInjEj")

	const (
		a0  = photonic.PortA0
		a1  = photonic.PortA1
		b0  = photonic.PortB0
		b1  = photonic.PortB1
		on  = photonic.On
		off = photonic.Off
	)
	tr := func(e ElemID, in photonic.Port, s photonic.State) Traversal {
		return Traversal{Elem: e, In: in, State: s}
	}

	// Injection: one ON ring on the direction branch, then out past the
	// direction's ejection ring. The east and south branches first cross
	// the NS and WE waveguides respectively.
	b.SetPath(Local, North, []Traversal{tr(cInjEj, a0, off), tr(iN, a0, on), tr(eN, a1, off)})
	b.SetPath(Local, East, []Traversal{tr(cInjEj, a0, off), tr(cInjE, a0, off), tr(iE, a0, on), tr(eE, a1, off)})
	b.SetPath(Local, South, []Traversal{tr(cInjEj, a0, off), tr(cInjS, a0, off), tr(iS, a0, on), tr(eS, a1, off)})
	b.SetPath(Local, West, []Traversal{tr(cInjEj, a0, off), tr(iW, a0, on), tr(eW, a1, off)})

	// Ejection: the arriving signal meets its ejection ring first, drops
	// onto the ejection waveguide and runs down to the detector passing
	// the downstream ejection hardware.
	b.SetPath(North, Local, []Traversal{
		tr(eN, a0, on), tr(eE, b0, off), tr(cEjNS, a0, off), tr(eS, b0, off), tr(eW, b0, off),
		tr(cInjEj, b0, off),
	})
	b.SetPath(East, Local, []Traversal{
		tr(eE, a0, on), tr(cEjNS, a0, off), tr(eS, b0, off), tr(eW, b0, off), tr(cInjEj, b0, off),
	})
	b.SetPath(South, Local, []Traversal{
		tr(eS, a0, on), tr(eW, b0, off), tr(cInjEj, b0, off),
	})
	b.SetPath(West, Local, []Traversal{
		tr(eW, a0, on), tr(cInjEj, b0, off),
	})

	// Dimension-through paths: only OFF elements.
	b.SetPath(West, East, []Traversal{
		tr(eW, a0, off), tr(iW, b1, off), tr(tWN, a0, off), tr(tWS, a0, off),
		tr(c0, a0, off), tr(tES, a1, off), tr(tEN, a1, off), tr(cInjS, b0, off),
		tr(iE, b0, off), tr(eE, a1, off),
	})
	b.SetPath(East, West, []Traversal{
		tr(eE, a0, off), tr(iE, b1, off), tr(cInjS, b1, off), tr(tEN, a0, off),
		tr(tES, a0, off), tr(c0, a1, off), tr(tWS, a1, off), tr(tWN, a1, off),
		tr(iW, b0, off), tr(eW, a1, off),
	})
	b.SetPath(North, South, []Traversal{
		tr(eN, a0, off), tr(iN, b1, off), tr(cInjE, b0, off), tr(tEN, b1, off),
		tr(tWN, b1, off), tr(c0, b0, off), tr(tWS, b0, off), tr(tES, b0, off),
		tr(cEjNS, b0, off), tr(iS, b0, off), tr(eS, a1, off),
	})
	b.SetPath(South, North, []Traversal{
		tr(eS, a0, off), tr(iS, b1, off), tr(cEjNS, b1, off), tr(tES, b1, off),
		tr(tWS, b1, off), tr(c0, b1, off), tr(tWN, b0, off), tr(tEN, b0, off),
		tr(cInjE, b1, off), tr(iN, b0, off), tr(eN, a1, off),
	})

	// X-to-Y turns: one ring ON at the centre, then out along NS past
	// the elements between the drop point and the exit port.
	b.SetPath(West, North, []Traversal{
		tr(eW, a0, off), tr(iW, b1, off), tr(tWN, a0, on),
		tr(tEN, b0, off), tr(cInjE, b1, off), tr(iN, b0, off), tr(eN, a1, off),
	})
	b.SetPath(West, South, []Traversal{
		tr(eW, a0, off), tr(iW, b1, off), tr(tWN, a0, off), tr(tWS, a0, on),
		tr(tES, b0, off), tr(cEjNS, b0, off), tr(iS, b0, off), tr(eS, a1, off),
	})
	b.SetPath(East, North, []Traversal{
		tr(eE, a0, off), tr(iE, b1, off), tr(cInjS, b1, off), tr(tEN, a0, on),
		tr(cInjE, b1, off), tr(iN, b0, off), tr(eN, a1, off),
	})
	b.SetPath(East, South, []Traversal{
		tr(eE, a0, off), tr(iE, b1, off), tr(cInjS, b1, off), tr(tEN, a0, off),
		tr(tES, a0, on), tr(cEjNS, b0, off), tr(iS, b0, off), tr(eS, a1, off),
	})

	if allTurns {
		// Y-to-X turns: the same corner rings, entered from the NS
		// waveguide side. A southbound (northbound) signal couples onto
		// the WE waveguide toward the ring's X port.
		b.SetPath(North, West, []Traversal{
			tr(eN, a0, off), tr(iN, b1, off), tr(cInjE, b0, off), tr(tEN, b1, off),
			tr(tWN, b1, on), tr(iW, b0, off), tr(eW, a1, off),
		})
		b.SetPath(North, East, []Traversal{
			tr(eN, a0, off), tr(iN, b1, off), tr(cInjE, b0, off), tr(tEN, b1, on),
			tr(cInjS, b0, off), tr(iE, b0, off), tr(eE, a1, off),
		})
		b.SetPath(South, West, []Traversal{
			tr(eS, a0, off), tr(iS, b1, off), tr(cEjNS, b1, off), tr(tES, b1, off),
			tr(tWS, b1, on), tr(tWN, a1, off), tr(iW, b0, off), tr(eW, a1, off),
		})
		b.SetPath(South, East, []Traversal{
			tr(eS, a0, off), tr(iS, b1, off), tr(cEjNS, b1, off), tr(tES, b1, on),
			tr(tEN, a1, off), tr(cInjS, b0, off), tr(iE, b0, off), tr(eE, a1, off),
		})
	}

	a, err := b.Build()
	if err != nil {
		panic("router: " + name + " construction failed: " + err.Error())
	}
	return a
}
