package router

import (
	"fmt"

	"phonocmap/internal/photonic"
)

// Crossbar returns a matrix-crossbar 5x5 optical router: five horizontal
// input waveguides (one per port) crossing five vertical output
// waveguides, with a CPSE at every off-diagonal intersection and a plain
// crossing on the diagonal (a port never routes to itself). Turning the
// CPSE at intersection (i, j) ON couples input i to output j.
//
// The crossbar supports all 20 turns, so it works with any routing
// algorithm (including YX, which Crux cannot serve), at the cost of 20
// rings and a longer worst-case path — the classic area/loss baseline
// against which optimized routers such as Crux are compared.
//
// Port conventions per element: A = input waveguide (A0 toward the input
// port), B = output waveguide (B1 toward the output port). A signal from
// input i to output j passes intersections (i, 0..j-1) OFF, switches at
// (i, j), then passes (i+1..4, j) OFF down the output waveguide.
func Crossbar() *Architecture {
	b := NewBuilder("crossbar")
	var elem [NumPorts][NumPorts]ElemID
	for i := Port(0); i < NumPorts; i++ {
		for j := Port(0); j < NumPorts; j++ {
			kind := photonic.CPSE
			if i == j {
				kind = photonic.Crossing
			}
			elem[i][j] = b.AddElement(kind, fmt.Sprintf("x%d%d", i, j))
		}
	}
	for i := Port(0); i < NumPorts; i++ {
		for j := Port(0); j < NumPorts; j++ {
			if i == j {
				continue
			}
			var path []Traversal
			for k := Port(0); k < j; k++ {
				path = append(path, Traversal{Elem: elem[i][k], In: photonic.PortA0, State: photonic.Off})
			}
			path = append(path, Traversal{Elem: elem[i][j], In: photonic.PortA0, State: photonic.On})
			for m := i + 1; m < NumPorts; m++ {
				path = append(path, Traversal{Elem: elem[m][j], In: photonic.PortB0, State: photonic.Off})
			}
			b.SetPath(i, j, path)
		}
	}
	a, err := b.Build()
	if err != nil {
		panic("router: crossbar construction failed: " + err.Error())
	}
	return a
}

// Names lists the built-in router architectures ByName accepts.
func Names() []string { return []string{"crux", "cygnus", "crossbar"} }

// ByName returns a built-in router architecture by name.
func ByName(name string) (*Architecture, error) {
	switch name {
	case "crux":
		return Crux(), nil
	case "cygnus":
		return Cygnus(), nil
	case "crossbar":
		return Crossbar(), nil
	default:
		return nil, fmt.Errorf("router: unknown architecture %q (have crux, cygnus, crossbar)", name)
	}
}
