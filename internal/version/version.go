// Package version resolves the build's version string from the Go
// build info embedded in the binary, so the service, the CLI binaries
// and the client SDK all report one consistent identity without a
// hand-maintained constant (module builds carry the module version,
// source builds the VCS revision).
package version

import (
	"runtime/debug"
	"sync"
)

// read is memoized: build info is immutable for the life of the process
// and ReadBuildInfo re-parses it on every call.
var read = sync.OnceValue(func() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	v := bi.Main.Version
	if v == "" || v == "(devel)" {
		// Source builds: fall back to the VCS revision stamped by the
		// toolchain, truncated to the conventional short-hash length.
		var rev string
		dirty := false
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if len(rev) > 12 {
			rev = rev[:12]
		}
		switch {
		case rev != "" && dirty:
			v = rev + "-dirty"
		case rev != "":
			v = rev
		default:
			v = "devel"
		}
	}
	return v
})

// String returns the build's version: the module version of a released
// build, the (short) VCS revision of a source build, or "devel" when
// neither is stamped.
func String() string { return read() }

// UserAgent formats the conventional User-Agent value for the named
// component, e.g. "phonocmap-client/v1.2.3".
func UserAgent(component string) string { return component + "/" + String() }
