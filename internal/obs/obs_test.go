package obs

import (
	"bufio"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	c := NewCounter()
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters are monotonic
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}

	g := NewGauge()
	g.Set(2.5)
	g.Add(-1)
	g.Add(0.25)
	if got := g.Value(); got != 1.75 {
		t.Errorf("gauge = %v, want 1.75", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if want := 0.05 + 0.1 + 0.5 + 5 + 100; math.Abs(h.Sum()-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", h.Sum(), want)
	}
	// Bucket upper bounds are inclusive: 0.1 falls in le="0.1".
	var b strings.Builder
	if err := h.write(&b, "m"); err != nil {
		t.Fatal(err)
	}
	want := `m_bucket{le="0.1"} 2
m_bucket{le="1"} 3
m_bucket{le="10"} 4
m_bucket{le="+Inf"} 5
`
	if !strings.HasPrefix(b.String(), want) {
		t.Errorf("histogram exposition:\n%s\nwant prefix:\n%s", b.String(), want)
	}
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Total ops.")
	c.Add(7)
	r.GaugeFn("test_depth", "Live depth.", func() float64 { return 3 })
	cv := r.CounterVec("test_requests_total", "Requests.", "endpoint", "code")
	cv.With("GET /x", "200").Add(2)
	cv.With("GET /x", "404").Inc()
	hv := r.HistogramVec("test_latency_seconds", "Latency.", []float64{0.01, 0.1}, "endpoint")
	hv.With("GET /x").Observe(0.05)
	gv := r.GaugeVec("test_inflight", "In-flight.", "node")
	gv.With("b").Set(2)
	gv.With("a").Set(1.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP test_ops_total Total ops.\n# TYPE test_ops_total counter\ntest_ops_total 7\n",
		"# TYPE test_depth gauge\ntest_depth 3\n",
		"test_requests_total{endpoint=\"GET /x\",code=\"200\"} 2\n",
		"test_requests_total{endpoint=\"GET /x\",code=\"404\"} 1\n",
		"test_latency_seconds_bucket{endpoint=\"GET /x\",le=\"0.01\"} 0\n",
		"test_latency_seconds_bucket{endpoint=\"GET /x\",le=\"0.1\"} 1\n",
		"test_latency_seconds_bucket{endpoint=\"GET /x\",le=\"+Inf\"} 1\n",
		"test_latency_seconds_sum{endpoint=\"GET /x\"} 0.05\n",
		"test_latency_seconds_count{endpoint=\"GET /x\"} 1\n",
		// GaugeVec children sort by label values for deterministic scrapes.
		"# TYPE test_inflight gauge\ntest_inflight{node=\"a\"} 1.5\ntest_inflight{node=\"b\"} 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}

	// Families are sorted by name for deterministic scrapes.
	if strings.Index(out, "test_depth") > strings.Index(out, "test_ops_total") {
		t.Error("families not sorted by name")
	}

	// Every line is a comment or a sample; parse to catch format rot.
	parseExposition(t, out)
}

// parseExposition is a minimal strict parser of the text format: every
// non-comment line must be `name{labels} value` or `name value`, with
// balanced quotes in labels.
func parseExposition(t *testing.T, out string) map[string]string {
	t.Helper()
	types := make(map[string]string)
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown metric type in %q", line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		rest := line
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.LastIndexByte(line, '}')
			if j < i {
				t.Fatalf("unbalanced braces in %q", line)
			}
			labels := line[i+1 : j]
			if strings.Count(labels, `"`)%2 != 0 {
				t.Fatalf("unbalanced quotes in %q", line)
			}
			rest = line[:i] + line[j+1:]
		}
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			t.Fatalf("sample line %q does not split into name and value", line)
		}
		if !validName(fields[0]) {
			t.Fatalf("invalid metric name in %q", line)
		}
		if fields[1] != "+Inf" && fields[1] != "-Inf" && fields[1] != "NaN" {
			if _, err := parseFloat(fields[1]); err != nil {
				t.Fatalf("unparseable value in %q: %v", line, err)
			}
		}
	}
	return types
}

func parseFloat(s string) (float64, error) {
	var f float64
	_, err := fmt.Sscanf(s, "%g", &f)
	return f, err
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("invalid metric name did not panic")
		}
	}()
	r.Counter("bad-name", "")
}

func TestLabelEscaping(t *testing.T) {
	v := NewCounterVec("path")
	v.With(`a"b\c` + "\nd").Inc()
	var b strings.Builder
	if err := v.write(&b, "m_total"); err != nil {
		t.Fatal(err)
	}
	want := `m_total{path="a\"b\\c\nd"} 1` + "\n"
	if b.String() != want {
		t.Errorf("escaped exposition = %q, want %q", b.String(), want)
	}
}

// TestConcurrentHammer drives every instrument kind from many
// goroutines while a scraper renders the registry — run under -race
// (the CI race step covers this package) it proves the atomic/lock
// discipline, and the final counts prove no increment is lost.
func TestConcurrentHammer(t *testing.T) {
	const (
		goroutines = 16
		iters      = 2000
	)
	r := NewRegistry()
	c := r.Counter("hammer_ops_total", "")
	g := r.Gauge("hammer_level", "")
	h := r.Histogram("hammer_seconds", "", []float64{0.5})
	cv := r.CounterVec("hammer_by_kind_total", "", "kind")
	gv := r.GaugeVec("hammer_kind_level", "", "kind")
	hv := r.HistogramVec("hammer_kind_seconds", "", []float64{0.5}, "kind")
	r.GaugeFn("hammer_live", "", func() float64 { return float64(c.Value()) })

	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			kind := fmt.Sprintf("k%d", i%4)
			for j := 0; j < iters; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j%2) * 0.9)
				cv.With(kind).Inc()
				gv.With(kind).Add(1)
				hv.With(kind).Observe(0.25)
				if j%500 == 0 {
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()

	total := int64(goroutines * iters)
	if c.Value() != total {
		t.Errorf("counter = %d, want %d", c.Value(), total)
	}
	if g.Value() != float64(total) {
		t.Errorf("gauge = %v, want %v", g.Value(), float64(total))
	}
	if h.Count() != total {
		t.Errorf("histogram count = %d, want %d", h.Count(), total)
	}
	var sum int64
	var gsum float64
	for i := 0; i < 4; i++ {
		sum += cv.With(fmt.Sprintf("k%d", i)).Value()
		gsum += gv.With(fmt.Sprintf("k%d", i)).Value()
	}
	if sum != total {
		t.Errorf("vec counters sum to %d, want %d", sum, total)
	}
	if gsum != float64(total) {
		t.Errorf("vec gauges sum to %v, want %v", gsum, float64(total))
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	parseExposition(t, b.String())
}
