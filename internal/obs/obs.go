// Package obs is PhoNoCMap's zero-dependency telemetry layer: atomic,
// race-safe counters, gauges and fixed-bucket latency histograms behind
// a Registry with Prometheus text-format exposition. It is the single
// source of runtime truth for the service — /metrics and /healthz both
// read the same instruments — and deliberately depends on nothing
// outside the standard library, so every layer of the system (core,
// service, client SDK, binaries) can instrument itself without pulling
// a metrics framework into the module graph.
//
// Instruments are constructible standalone (NewCounter, NewGauge,
// NewHistogram, and their labeled Vec variants) and bound to a metric
// family name when registered; the Registry also offers combined
// create-and-register helpers. Exposition is deterministic: families
// sort by name, children by label values, so scrapes diff cleanly.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count. The zero value is ready
// to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// NewCounter returns a standalone counter.
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (counters are monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is ready to
// use; all methods are safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// NewGauge returns a standalone gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (which may be negative) with a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefBuckets is the default latency histogram bucketing in seconds —
// the classic Prometheus spread from 1ms to 10s, wide enough for both
// sub-millisecond discovery endpoints and multi-second job waits.
var DefBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Histogram is a fixed-bucket distribution: cumulative bucket counts, a
// total count and a running sum, all updated atomically. Buckets are
// upper bounds in ascending order; an implicit +Inf bucket catches the
// rest.
type Histogram struct {
	upper   []float64
	counts  []atomic.Int64 // one per bucket, non-cumulative; +Inf is counts[len(upper)]
	sumBits atomic.Uint64
	count   atomic.Int64
}

// NewHistogram returns a standalone histogram over the given ascending
// upper bounds (DefBuckets when empty). A trailing +Inf bound is
// implicit and stripped if supplied.
func NewHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for len(buckets) > 0 && math.IsInf(buckets[len(buckets)-1], 1) {
		buckets = buckets[:len(buckets)-1]
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not ascending: %v", buckets))
		}
	}
	upper := append([]float64(nil), buckets...)
	return &Histogram{upper: upper, counts: make([]atomic.Int64, len(upper)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// labelSep joins label values into child keys. Label values containing
// it still round-trip: children store their own value slice.
const labelSep = "\x1f"

// CounterVec is a family of counters partitioned by label values.
type CounterVec struct {
	labels   []string
	mu       sync.RWMutex
	children map[string]*counterChild
}

type counterChild struct {
	values []string
	c      Counter
}

// NewCounterVec returns a standalone labeled counter family.
func NewCounterVec(labels ...string) *CounterVec {
	mustLabels(labels)
	return &CounterVec{labels: labels, children: make(map[string]*counterChild)}
}

// With returns the counter for the given label values (created on first
// use). The number of values must match the declared labels.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %d label values for %d labels", len(values), len(v.labels)))
	}
	key := strings.Join(values, labelSep)
	v.mu.RLock()
	ch, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return &ch.c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if ch, ok = v.children[key]; !ok {
		ch = &counterChild{values: append([]string(nil), values...)}
		v.children[key] = ch
	}
	return &ch.c
}

// GaugeVec is a family of gauges partitioned by label values.
type GaugeVec struct {
	labels   []string
	mu       sync.RWMutex
	children map[string]*gaugeChild
}

type gaugeChild struct {
	values []string
	g      Gauge
}

// NewGaugeVec returns a standalone labeled gauge family.
func NewGaugeVec(labels ...string) *GaugeVec {
	mustLabels(labels)
	return &GaugeVec{labels: labels, children: make(map[string]*gaugeChild)}
}

// With returns the gauge for the given label values (created on first
// use). The number of values must match the declared labels.
func (v *GaugeVec) With(values ...string) *Gauge {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %d label values for %d labels", len(values), len(v.labels)))
	}
	key := strings.Join(values, labelSep)
	v.mu.RLock()
	ch, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return &ch.g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if ch, ok = v.children[key]; !ok {
		ch = &gaugeChild{values: append([]string(nil), values...)}
		v.children[key] = ch
	}
	return &ch.g
}

// HistogramVec is a family of histograms partitioned by label values,
// sharing one bucket layout.
type HistogramVec struct {
	labels   []string
	buckets  []float64
	mu       sync.RWMutex
	children map[string]*histogramChild
}

type histogramChild struct {
	values []string
	h      *Histogram
}

// NewHistogramVec returns a standalone labeled histogram family over
// the given buckets (DefBuckets when empty).
func NewHistogramVec(buckets []float64, labels ...string) *HistogramVec {
	mustLabels(labels)
	// Validate the layout once, up front, by building a throwaway child.
	probe := NewHistogram(buckets)
	return &HistogramVec{labels: labels, buckets: probe.upper, children: make(map[string]*histogramChild)}
}

// With returns the histogram for the given label values (created on
// first use).
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %d label values for %d labels", len(values), len(v.labels)))
	}
	key := strings.Join(values, labelSep)
	v.mu.RLock()
	ch, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return ch.h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if ch, ok = v.children[key]; !ok {
		ch = &histogramChild{values: append([]string(nil), values...), h: NewHistogram(v.buckets)}
		v.children[key] = ch
	}
	return ch.h
}

// Collector is anything the registry can expose: one metric family with
// a type and zero or more samples.
type Collector interface {
	// metricType is the Prometheus TYPE of the family: "counter",
	// "gauge" or "histogram".
	metricType() string
	// write emits the family's sample lines (without HELP/TYPE headers)
	// for the given family name.
	write(w io.Writer, name string) error
}

// GaugeFunc adapts a callback into a gauge collector — the idiom for
// values computed on demand from live state (queue depth, utilization,
// uptime).
type GaugeFunc func() float64

// CounterFunc adapts a callback into a counter collector — for
// monotonic totals whose source of truth lives elsewhere (e.g. folded
// plus in-flight evaluation counts).
type CounterFunc func() float64

// family is one registered metric family.
type family struct {
	name string
	help string
	c    Collector
}

// Registry holds named metric families and renders them in Prometheus
// text exposition format. Registration is typically done once at
// startup; WritePrometheus may be called concurrently with updates to
// every registered instrument.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// MustRegister binds a collector to a metric family name. It panics on
// an invalid name or a duplicate registration — both are programmer
// errors caught at startup, not runtime conditions.
func (r *Registry) MustRegister(name, help string, c Collector) {
	if !validName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic("obs: duplicate metric " + name)
	}
	f := &family{name: name, help: help, c: c}
	r.byName[name] = f
	r.families = append(r.families, f)
}

// Counter creates and registers a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := NewCounter()
	r.MustRegister(name, help, c)
	return c
}

// CounterVec creates and registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := NewCounterVec(labels...)
	r.MustRegister(name, help, v)
	return v
}

// CounterFn registers a callback-backed counter.
func (r *Registry) CounterFn(name, help string, fn func() float64) {
	r.MustRegister(name, help, CounterFunc(fn))
}

// Gauge creates and registers a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := NewGauge()
	r.MustRegister(name, help, g)
	return g
}

// GaugeVec creates and registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	v := NewGaugeVec(labels...)
	r.MustRegister(name, help, v)
	return v
}

// GaugeFn registers a callback-backed gauge.
func (r *Registry) GaugeFn(name, help string, fn func() float64) {
	r.MustRegister(name, help, GaugeFunc(fn))
}

// Histogram creates and registers a histogram (DefBuckets when buckets
// is empty).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	h := NewHistogram(buckets)
	r.MustRegister(name, help, h)
	return h
}

// HistogramVec creates and registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	v := NewHistogramVec(buckets, labels...)
	r.MustRegister(name, help, v)
	return v
}

// ContentType is the Content-Type of the text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in Prometheus text
// exposition format, families sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.c.metricType()); err != nil {
			return err
		}
		if err := f.c.write(w, f.name); err != nil {
			return err
		}
	}
	return nil
}

// --- Collector implementations ---

func (c *Counter) metricType() string { return "counter" }
func (c *Counter) write(w io.Writer, name string) error {
	_, err := fmt.Fprintf(w, "%s %d\n", name, c.Value())
	return err
}

func (g *Gauge) metricType() string { return "gauge" }
func (g *Gauge) write(w io.Writer, name string) error {
	_, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(g.Value()))
	return err
}

func (fn GaugeFunc) metricType() string { return "gauge" }
func (fn GaugeFunc) write(w io.Writer, name string) error {
	_, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(fn()))
	return err
}

func (fn CounterFunc) metricType() string { return "counter" }
func (fn CounterFunc) write(w io.Writer, name string) error {
	_, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(fn()))
	return err
}

func (h *Histogram) metricType() string { return "histogram" }
func (h *Histogram) write(w io.Writer, name string) error {
	return h.writeLabeled(w, name, "")
}

// writeLabeled emits the bucket/sum/count triplet; extra is the child's
// pre-rendered label list without braces ("" for a bare histogram).
func (h *Histogram) writeLabeled(w io.Writer, name, extra string) error {
	cum := int64(0)
	for i, upper := range h.upper {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, extra, formatFloat(upper), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.upper)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, extra, cum); err != nil {
		return err
	}
	suffix := labelSuffix(extra)
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n", name, suffix, formatFloat(h.Sum()), name, suffix, h.Count()); err != nil {
		return err
	}
	return nil
}

// labelSuffix turns a child's label list into the "{...}" suffix of its
// _sum/_count series ("" for bare histograms).
func labelSuffix(extra string) string {
	if extra == "" {
		return ""
	}
	return "{" + strings.TrimSuffix(extra, ",") + "}"
}

func (v *CounterVec) metricType() string { return "counter" }
func (v *CounterVec) write(w io.Writer, name string) error {
	for _, ch := range v.sortedChildren() {
		if _, err := fmt.Fprintf(w, "%s{%s} %d\n", name, renderLabels(v.labels, ch.values), ch.c.Value()); err != nil {
			return err
		}
	}
	return nil
}

func (v *CounterVec) sortedChildren() []*counterChild {
	v.mu.RLock()
	out := make([]*counterChild, 0, len(v.children))
	for _, ch := range v.children {
		out = append(out, ch)
	}
	v.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i].values, labelSep) < strings.Join(out[j].values, labelSep)
	})
	return out
}

func (v *GaugeVec) metricType() string { return "gauge" }
func (v *GaugeVec) write(w io.Writer, name string) error {
	for _, ch := range v.sortedChildren() {
		if _, err := fmt.Fprintf(w, "%s{%s} %s\n", name, renderLabels(v.labels, ch.values), formatFloat(ch.g.Value())); err != nil {
			return err
		}
	}
	return nil
}

func (v *GaugeVec) sortedChildren() []*gaugeChild {
	v.mu.RLock()
	out := make([]*gaugeChild, 0, len(v.children))
	for _, ch := range v.children {
		out = append(out, ch)
	}
	v.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i].values, labelSep) < strings.Join(out[j].values, labelSep)
	})
	return out
}

func (v *HistogramVec) metricType() string { return "histogram" }
func (v *HistogramVec) write(w io.Writer, name string) error {
	v.mu.RLock()
	children := make([]*histogramChild, 0, len(v.children))
	for _, ch := range v.children {
		children = append(children, ch)
	}
	v.mu.RUnlock()
	sort.Slice(children, func(i, j int) bool {
		return strings.Join(children[i].values, labelSep) < strings.Join(children[j].values, labelSep)
	})
	for _, ch := range children {
		extra := renderLabels(v.labels, ch.values) + ","
		if err := ch.h.writeLabeled(w, name, extra); err != nil {
			return err
		}
	}
	return nil
}

// --- formatting helpers ---

// renderLabels renders `k1="v1",k2="v2"` with escaped values.
func renderLabels(labels, values []string) string {
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString("=\"")
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// escapeHelp escapes a HELP string (backslash and newline only).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip representation, "+Inf"/"-Inf"/"NaN" for the specials.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// validName checks the metric-name grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// mustLabels validates label names at vector construction.
func mustLabels(labels []string) {
	seen := make(map[string]bool, len(labels))
	for _, l := range labels {
		if !validName(l) || strings.Contains(l, ":") {
			panic("obs: invalid label name " + strconv.Quote(l))
		}
		if seen[l] {
			panic("obs: duplicate label name " + strconv.Quote(l))
		}
		seen[l] = true
	}
}
