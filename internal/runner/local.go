package runner

import (
	"context"
	"time"

	"phonocmap/internal/core"
	"phonocmap/internal/scenario"
	"phonocmap/internal/search"
	"phonocmap/internal/service"
	"phonocmap/internal/sweep"
	"phonocmap/internal/topo"
)

// Local executes scenarios and sweeps in-process through the scenario
// compiler and the sweep engine — the same pipeline phonocmap-serve
// workers run, with the same seed derivation and the same
// skip-analyses-on-cancellation policy, so Local and the remote client
// return identical results for equal specs. The zero value is ready to
// use.
type Local struct{}

// NewLocal returns the in-process backend.
func NewLocal() *Local { return &Local{} }

var _ Runner = (*Local)(nil)

// RunScenario compiles and executes the scenario on this machine. The
// per-island evaluation breakdown is collected through the same
// progress callbacks the service uses, so IslandEvals matches a remote
// run entry for entry.
func (l *Local) RunScenario(ctx context.Context, spec scenario.Spec) (ScenarioResult, error) {
	comp, err := scenario.Compile(spec)
	if err != nil {
		return ScenarioResult{}, err
	}

	// The tracer keeps the same per-island counters the service worker
	// does (so IslandEvals matches a remote run entry for entry) and
	// collects the improvement timeline into the run's span record.
	tracer := scenario.NewTracer(comp.Spec.Seeds)
	start := time.Now()
	run, err := comp.OptimizeObserved(ctx, tracer.Observers())
	if err != nil {
		return ScenarioResult{}, err
	}

	out := ScenarioResult{
		Spec:        comp.Spec,
		Algorithm:   run.Algorithm,
		Objective:   run.Objective.String(),
		Mapping:     run.Mapping,
		Score:       run.Score,
		Evals:       run.Evals,
		IslandEvals: tracer.IslandEvals(),
		Seed:        run.Seed,
		DurationMs:  float64(time.Since(start)) / float64(time.Millisecond),
		Cancelled:   run.Cancelled,
		// The trace's duration is the optimizer's own wall clock — the
		// same source the service worker's result carries, so a remote
		// trace reads identically.
		Trace: tracer.Trace(run.Duration),
	}
	if !run.Cancelled {
		// Cancelled runs ship without a report, exactly like the
		// service: analyses take no cancellation context, so running
		// them would keep working long after the stop was requested.
		rep, err := comp.Analyze(run.Mapping, run.Score)
		if err != nil {
			return ScenarioResult{}, err
		}
		out.Report = rep
	}
	return out, nil
}

// runCell executes one sweep cell with the service worker's exact
// policy: optimize under the sweep context, then analyses only for
// uncancelled runs.
func runCell(ctx context.Context, c sweep.Cell) (core.RunResult, *scenario.Report, error) {
	comp, err := c.Compile()
	if err != nil {
		return core.RunResult{}, nil, err
	}
	run, err := comp.Optimize(ctx)
	if err != nil {
		return core.RunResult{}, nil, err
	}
	if run.Cancelled {
		return run, nil, nil
	}
	rep, err := comp.Analyze(run.Mapping, run.Score)
	if err != nil {
		return core.RunResult{}, nil, err
	}
	return run, rep, nil
}

// RunSweep expands the grid and executes every cell on a bounded local
// worker pool, then folds the successful cells through the sweep
// engine's aggregators — the same aggregation path the service's sweep
// result endpoint runs.
func (l *Local) RunSweep(ctx context.Context, spec sweep.Spec, opts SweepOptions) (SweepResult, error) {
	cells, err := sweep.Expand(spec)
	if err != nil {
		return SweepResult{}, err
	}
	var onCell func(sweep.Result)
	if opts.OnCellDone != nil {
		onCell = func(r sweep.Result) { opts.OnCellDone(CellResult(r)) }
	}
	results, err := sweep.Run(cells, runCell, sweep.Options{
		Workers:    opts.Workers,
		Context:    ctx,
		OnCellDone: onCell,
	})
	if err != nil {
		return SweepResult{}, err
	}

	return AssembleSweep(results), nil
}

// AssembleSweep folds per-cell engine results (in cell-index order) into
// the interface's SweepResult: every cell converted, successful
// uncancelled cells aggregated through the sweep engine — the single
// assembly path every backend shares, so Local, the remote client's
// server and a fleet of servers produce byte-identical sweeps from equal
// per-cell results.
func AssembleSweep(results []sweep.Result) SweepResult {
	out := SweepResult{Cells: make([]SweepCellResult, 0, len(results))}
	agg := make([]sweep.Result, 0, len(results))
	for _, r := range results {
		out.Cells = append(out.Cells, CellResult(r))
		if r.Err == nil && !r.Run.Cancelled {
			agg = append(agg, r)
		}
	}
	out.Table = sweep.Table(agg)
	out.BudgetCurves = sweep.BudgetCurves(agg)
	out.Pareto = sweep.AnnotatedParetoFronts(agg)
	out.Analysis = sweep.AnalysisSummary(agg)
	return out
}

// CellResult converts an engine result into the interface shape.
func CellResult(r sweep.Result) SweepCellResult {
	cr := SweepCellResult{Index: r.Index, Cell: r.Cell}
	if r.Err != nil {
		cr.Error = r.Err.Error()
		return cr
	}
	cr.Score = r.Run.Score
	cr.Mapping = r.Run.Mapping
	cr.Evals = r.Run.Evals
	cr.Report = r.Report
	return cr
}

// Apps lists the bundled benchmark applications.
func (l *Local) Apps(context.Context) ([]AppInfo, error) { return service.Apps(), nil }

// Algorithms lists the available mapping-optimization algorithms.
func (l *Local) Algorithms(context.Context) ([]string, error) { return search.Names(), nil }

// Routers lists the built-in optical routers.
func (l *Local) Routers(context.Context) ([]RouterInfo, error) { return service.Routers(), nil }

// Topologies lists the built-in topology kinds.
func (l *Local) Topologies(context.Context) ([]string, error) { return topo.Kinds(), nil }
