// Package runner defines the unified execution interface over
// PhoNoCMap's backends: one typed API — run a scenario, run a design-
// space sweep, discover what the backend offers — with interchangeable
// implementations. Local (in-process optimization on this machine's
// worker pool) and the phonocmap-serve client SDK (package client)
// implement the same interface and are contractually equivalent: equal
// specs produce identical results, including analysis reports and
// per-island evaluation breakdowns, whichever backend executes them.
// Front ends (the CLI, the examples, library callers) program against
// Runner and pick the backend with a flag.
package runner

import (
	"context"

	"phonocmap/internal/core"
	"phonocmap/internal/scenario"
	"phonocmap/internal/service"
	"phonocmap/internal/sweep"
)

// Discovery re-exports the service's discovery shapes so both backends
// answer discovery calls with identical types.
type (
	// AppInfo describes one bundled benchmark application.
	AppInfo = service.AppInfo
	// RouterInfo describes one built-in optical router architecture.
	RouterInfo = service.RouterInfo
)

// ScenarioResult is one executed scenario, shaped so that local and
// remote execution return byte-identical values for equal specs:
// everything here is either deterministic in the spec (mapping, score,
// evaluation counts, report) or explicitly execution-local and excluded
// from the equivalence contract (DurationMs).
type ScenarioResult struct {
	// Spec is the fully normalized scenario that ran — every default
	// resolved, so Spec.Key() is its content address.
	Spec scenario.Spec `json:"spec"`
	// Algorithm and Objective echo the run's resolved choices.
	Algorithm string `json:"algorithm"`
	Objective string `json:"objective"`
	// Mapping and Score are the winning design point.
	Mapping core.Mapping `json:"mapping"`
	Score   core.Score   `json:"score"`
	// Evals counts the winning run's evaluations (the best island's in
	// islands mode); IslandEvals is the per-island breakdown, one entry
	// per seed.
	Evals       int   `json:"evals"`
	IslandEvals []int `json:"island_evals,omitempty"`
	// Seed is the winning run's seed.
	Seed int64 `json:"seed"`
	// DurationMs is wall-clock execution time. It is the one field
	// outside the local/remote equivalence contract (and a cache replay
	// reports the original run's duration).
	DurationMs float64 `json:"duration_ms"`
	// Cancelled marks a run stopped early through its context; Mapping
	// and Score then hold the best point reached before the stop and
	// Report is nil (analyses do not run on truncated results).
	Cancelled bool `json:"cancelled,omitempty"`
	// Report is the post-optimization analysis report, present when the
	// spec requested analyses.
	Report *scenario.Report `json:"report,omitempty"`
	// Trace is the run's span record: the improvement timeline, per-island
	// spans and time-to-best. Its deterministic fields (event islands,
	// evaluation counts, scores; span evals and improvement counts) are
	// part of the equivalence contract; its wall-clock fields (AtMs,
	// TimeToBestMs, DurationMs, throughputs) are execution-local like
	// DurationMs above.
	Trace *scenario.RunTrace `json:"trace,omitempty"`
}

// SweepCellResult is the outcome of one executed sweep cell.
type SweepCellResult struct {
	// Index is the cell's position in the expanded grid.
	Index int `json:"index"`
	// Cell is the fully normalized grid cell.
	Cell sweep.Cell `json:"cell"`
	// Score, Mapping, Evals and Report describe the cell's winning run;
	// zero-valued when Error is set.
	Score   core.Score       `json:"score"`
	Mapping core.Mapping     `json:"mapping,omitempty"`
	Evals   int              `json:"evals"`
	Report  *scenario.Report `json:"report,omitempty"`
	// Error is the cell's failure (or cancellation), empty on success.
	Error string `json:"error,omitempty"`
}

// SweepResult is an executed design-space sweep: the per-cell outcomes
// in grid order plus the sweep engine's aggregations. Failed cells keep
// their slot (with Error set) and are excluded from the aggregations.
type SweepResult struct {
	Cells        []SweepCellResult              `json:"cells"`
	Table        []sweep.TableRow               `json:"table,omitempty"`
	BudgetCurves []sweep.BudgetPoint            `json:"budget_curves,omitempty"`
	Pareto       map[string][]sweep.ParetoEntry `json:"pareto,omitempty"`
	Analysis     []sweep.AnalysisRow            `json:"analysis,omitempty"`
}

// SweepOptions tunes a sweep execution. The zero value is always valid.
type SweepOptions struct {
	// Workers bounds concurrently running cells for the local backend
	// (<= 0 means GOMAXPROCS). The remote backend's concurrency is the
	// server's worker pool; Workers is ignored there.
	Workers int
	// NoCache asks the remote backend to skip its result cache for every
	// cell. The local backend has no cache; NoCache is a no-op there.
	NoCache bool
	// OnCellDone, when non-nil, is called as cells settle — live
	// progress for CLIs. Calls may arrive concurrently. The local
	// backend delivers the full cell result; the remote backend delivers
	// what its status stream carries (index, cell, score, evals, error —
	// mappings and reports arrive with the final SweepResult).
	OnCellDone func(SweepCellResult)
}

// Runner executes scenarios and sweeps against one backend. All methods
// are safe for concurrent use and honor ctx cancellation: a cancelled
// scenario returns its best-so-far result with Cancelled set when any
// evaluation happened, an error otherwise.
//
// The interface is the service-equivalence guarantee as an API: for
// equal specs, every implementation must return identical
// ScenarioResult/SweepResult values up to DurationMs. The differential
// suite in package client enforces it against a live server.
type Runner interface {
	// RunScenario compiles and executes one scenario end to end:
	// optimization (single seed or islands), then the spec's analyses on
	// the winning mapping.
	RunScenario(ctx context.Context, spec scenario.Spec) (ScenarioResult, error)
	// RunSweep expands a declarative grid and executes every cell,
	// returning per-cell outcomes and the standard aggregations.
	RunSweep(ctx context.Context, spec sweep.Spec, opts SweepOptions) (SweepResult, error)

	// Apps lists the backend's bundled benchmark applications.
	Apps(ctx context.Context) ([]AppInfo, error)
	// Algorithms lists the backend's mapping-optimization algorithms.
	Algorithms(ctx context.Context) ([]string, error)
	// Routers lists the backend's built-in optical routers.
	Routers(ctx context.Context) ([]RouterInfo, error)
	// Topologies lists the backend's built-in topology kinds.
	Topologies(ctx context.Context) ([]string, error)
}
