package runner

import (
	"context"
	"reflect"
	"testing"

	"phonocmap/internal/config"
	"phonocmap/internal/scenario"
	"phonocmap/internal/sweep"
)

// TestLocalMatchesScenarioRun: the Local backend is a repackaging of
// the scenario pipeline — same mapping, score, evaluation count and
// report as scenario.Run for an equal spec.
func TestLocalMatchesScenarioRun(t *testing.T) {
	spec := scenario.Spec{
		App:       config.AppSpec{Builtin: "PIP"},
		Objective: "snr",
		Algorithm: "rs",
		Budget:    300,
		Seed:      7,
		Analyses: &scenario.AnalysesSpec{
			WDM:   &scenario.WDMSpec{},
			Power: &scenario.PowerSpec{},
		},
	}
	got, err := NewLocal().RunScenario(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := scenario.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Mapping.Equal(want.Run.Mapping) || got.Score != want.Run.Score || got.Evals != want.Run.Evals {
		t.Errorf("Local diverges from scenario.Run:\n got  %+v\n want %+v", got, want.Run)
	}
	if got.Seed != want.Run.Seed || got.Algorithm != want.Run.Algorithm {
		t.Errorf("run identity diverges: %+v vs %+v", got, want.Run)
	}
	if !reflect.DeepEqual(got.Report, want.Report) {
		t.Errorf("report diverges from scenario.Run")
	}
	if len(got.IslandEvals) != 1 || got.IslandEvals[0] != got.Evals {
		t.Errorf("single-seed island breakdown %v, want [%d]", got.IslandEvals, got.Evals)
	}
	if got.Spec.Budget != 300 || got.Spec.Seeds != 1 || got.Spec.Arch.Width == 0 {
		t.Errorf("returned spec not normalized: %+v", got.Spec)
	}
}

// TestLocalIslands: islands mode reports one breakdown entry per seed
// and the same winner as the scenario pipeline.
func TestLocalIslands(t *testing.T) {
	spec := scenario.Spec{
		App:       config.AppSpec{Builtin: "PIP"},
		Algorithm: "rs",
		Budget:    200,
		Seed:      3,
		Seeds:     2,
	}
	got, err := NewLocal().RunScenario(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := scenario.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if got.Score != want.Run.Score || got.Seed != want.Run.Seed {
		t.Errorf("islands winner diverges: %+v vs %+v", got.Score, want.Run.Score)
	}
	if len(got.IslandEvals) != 2 {
		t.Fatalf("island breakdown %v, want 2 entries", got.IslandEvals)
	}
	for i, e := range got.IslandEvals {
		if e == 0 {
			t.Errorf("island %d reports zero evaluations", i)
		}
	}
}

// TestLocalCancelledScenarioSkipsAnalyses: a cancelled run returns its
// best-so-far point without a report — the service worker's policy.
func TestLocalCancelledScenarioSkipsAnalyses(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	spec := scenario.Spec{
		App:       config.AppSpec{Builtin: "VOPD"},
		Algorithm: "rs",
		Budget:    50_000_000,
		Analyses:  &scenario.AnalysesSpec{WDM: &scenario.WDMSpec{}},
	}
	done := make(chan struct{})
	var got ScenarioResult
	var err error
	go func() {
		defer close(done)
		got, err = NewLocal().RunScenario(ctx, spec)
	}()
	cancel()
	<-done
	if err != nil {
		// Cancelled before the first evaluation: also a valid outcome.
		return
	}
	if !got.Cancelled {
		t.Fatalf("uncancelled result from a cancelled context: %+v", got)
	}
	if got.Report != nil {
		t.Error("cancelled run carries an analysis report")
	}
}

// TestLocalSweepMatchesEngine: per-cell sweep outcomes equal the
// scenario pipeline run cell by cell, and the aggregations cover the
// grid.
func TestLocalSweepMatchesEngine(t *testing.T) {
	grid := sweep.Spec{
		Apps:       []config.AppSpec{{Builtin: "PIP"}},
		Objectives: []string{"snr", "loss"},
		Algorithms: []string{"rs"},
		Budgets:    []int{150},
		Seeds:      []int64{1},
	}
	res, err := NewLocal().RunSweep(context.Background(), grid, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cells, err := sweep.Expand(grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(cells) {
		t.Fatalf("%d cell results for %d cells", len(res.Cells), len(cells))
	}
	for i, cr := range res.Cells {
		if cr.Error != "" {
			t.Fatalf("cell %d failed: %s", i, cr.Error)
		}
		want, err := scenario.Run(context.Background(), cells[i].Scenario())
		if err != nil {
			t.Fatal(err)
		}
		if !cr.Mapping.Equal(want.Run.Mapping) || cr.Score != want.Run.Score || cr.Evals != want.Run.Evals {
			t.Errorf("cell %d diverges from the scenario pipeline", i)
		}
	}
	if len(res.Table) != 1 || res.Table[0].App != "PIP" {
		t.Errorf("table rows %+v", res.Table)
	}
	if len(res.BudgetCurves) != 2 {
		t.Errorf("budget curve has %d points, want 2", len(res.BudgetCurves))
	}
	if len(res.Pareto["PIP"]) == 0 {
		t.Error("empty Pareto front")
	}
}

// TestLocalDiscovery: the discovery calls answer from the same tables
// the service exposes.
func TestLocalDiscovery(t *testing.T) {
	l := NewLocal()
	ctx := context.Background()
	apps, err := l.Apps(ctx)
	if err != nil || len(apps) == 0 {
		t.Fatalf("Apps: %v, %d entries", err, len(apps))
	}
	algos, err := l.Algorithms(ctx)
	if err != nil || len(algos) == 0 {
		t.Fatalf("Algorithms: %v, %d entries", err, len(algos))
	}
	routers, err := l.Routers(ctx)
	if err != nil || len(routers) == 0 {
		t.Fatalf("Routers: %v, %d entries", err, len(routers))
	}
	topos, err := l.Topologies(ctx)
	if err != nil || len(topos) == 0 {
		t.Fatalf("Topologies: %v, %d entries", err, len(topos))
	}
}
