package search

import (
	"fmt"
	"math/rand"
	"testing"

	"phonocmap/internal/cg"
	"phonocmap/internal/core"
	"phonocmap/internal/network"
	"phonocmap/internal/photonic"
	"phonocmap/internal/route"
	"phonocmap/internal/router"
	"phonocmap/internal/topo"
)

func meshNet(t *testing.T, w, h int) *network.Network {
	t.Helper()
	g, err := topo.NewMesh(w, h)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := network.New(g, router.Crux(), route.XY{}, photonic.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func problem(t *testing.T, app string, w, h int, obj core.Objective) *core.Problem {
	t.Helper()
	p, err := core.NewProblem(cg.MustApp(app), meshNet(t, w, h), obj)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// tinyProblem is a 4-task pipeline on a 2x2 mesh: 24 possible mappings,
// so exhaustive search is exact and fast.
func tinyProblem(t *testing.T, obj core.Objective) *core.Problem {
	t.Helper()
	pipe, err := cg.Pipeline(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewProblem(pipe, meshNet(t, 2, 2), obj)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runAlgo(t *testing.T, s core.Searcher, p *core.Problem, budget int, seed int64) (core.Mapping, core.Score) {
	t.Helper()
	ctx, err := core.NewContext(p, rand.New(rand.NewSource(seed)), budget)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Search(ctx); err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
	m, sc, ok := ctx.Best()
	if !ok {
		t.Fatalf("%s: no best found", s.Name())
	}
	if err := m.Validate(p.NumTiles()); err != nil {
		t.Fatalf("%s returned invalid mapping: %v", s.Name(), err)
	}
	return m, sc
}

func TestNewAndNames(t *testing.T) {
	for _, name := range Names() {
		s, err := New(name)
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		if s.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := New("quantum"); err == nil {
		t.Error("New accepted unknown algorithm")
	}
	if len(PaperNames()) != 3 {
		t.Errorf("PaperNames = %v", PaperNames())
	}
}

func TestAllAlgorithmsRespectBudget(t *testing.T) {
	p := problem(t, "PIP", 3, 3, core.MaximizeSNR)
	for _, name := range Names() {
		s, _ := New(name)
		ctx, err := core.NewContext(p, rand.New(rand.NewSource(11)), 120)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Search(ctx); err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if ctx.Evals() > 120 {
			t.Errorf("%s spent %d evals, budget 120", name, ctx.Evals())
		}
		if _, _, ok := ctx.Best(); !ok {
			t.Errorf("%s produced no result", name)
		}
	}
}

func TestExhaustiveFindsOptimumOnTiny(t *testing.T) {
	for _, obj := range []core.Objective{core.MinimizeLoss, core.MaximizeSNR} {
		p := tinyProblem(t, obj)
		if got := MappingCount(4, 4); got != 24 {
			t.Fatalf("MappingCount(4,4) = %d, want 24", got)
		}
		_, exact := runAlgo(t, Exhaustive{}, p, 1000, 1)
		// No random mapping may beat the exhaustive optimum.
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 200; i++ {
			m, err := core.RandomMapping(rng, 4, 4)
			if err != nil {
				t.Fatal(err)
			}
			s, err := p.Evaluate(m)
			if err != nil {
				t.Fatal(err)
			}
			if s.Better(exact) {
				t.Fatalf("obj %v: random mapping %v (cost %v) beats exhaustive (cost %v)",
					obj, m, s.Cost, exact.Cost)
			}
		}
	}
}

func TestHeuristicsReachOptimumOnTiny(t *testing.T) {
	p := tinyProblem(t, core.MinimizeLoss)
	_, exact := runAlgo(t, Exhaustive{}, p, 1000, 1)
	for _, name := range []string{"ga", "rpbla", "sa", "tabu"} {
		s, _ := New(name)
		_, got := runAlgo(t, s, p, 600, 7)
		if exact.Better(got) {
			t.Errorf("%s cost %v did not reach optimum %v on 24-point space", name, got.Cost, exact.Cost)
		}
	}
}

func TestMappingCountOverflowCapped(t *testing.T) {
	if got := MappingCount(64, 64); got != uint64(1)<<62 {
		t.Errorf("MappingCount(64,64) = %d, want cap", got)
	}
	if got := MappingCount(1, 5); got != 5 {
		t.Errorf("MappingCount(1,5) = %d, want 5", got)
	}
}

func TestRSMatchesBestOfRandomStream(t *testing.T) {
	// RS with budget B must equal the best of the first B random
	// mappings drawn from the same seed.
	p := problem(t, "PIP", 3, 3, core.MaximizeSNR)
	const budget = 60
	_, rsScore := runAlgo(t, RS{}, p, budget, 13)

	rng := rand.New(rand.NewSource(13))
	best := core.InfCost()
	for i := 0; i < budget; i++ {
		m, err := core.RandomMapping(rng, p.NumTasks(), p.NumTiles())
		if err != nil {
			t.Fatal(err)
		}
		s, err := p.Evaluate(m)
		if err != nil {
			t.Fatal(err)
		}
		if s.Better(best) {
			best = s
		}
	}
	if rsScore.Cost != best.Cost {
		t.Errorf("RS best %v != stream best %v", rsScore.Cost, best.Cost)
	}
}

func TestGAValidation(t *testing.T) {
	p := problem(t, "PIP", 3, 3, core.MaximizeSNR)
	bad := []*GA{
		{PopSize: 1, Elite: 0, TournamentK: 2, CrossoverRate: 0.5, MutationRate: 0.5},
		{PopSize: 10, Elite: 10, TournamentK: 2, CrossoverRate: 0.5, MutationRate: 0.5},
		{PopSize: 10, Elite: 1, TournamentK: 0, CrossoverRate: 0.5, MutationRate: 0.5},
		{PopSize: 10, Elite: 1, TournamentK: 2, CrossoverRate: 1.5, MutationRate: 0.5},
		{PopSize: 10, Elite: 1, TournamentK: 2, CrossoverRate: 0.5, MutationRate: -0.1},
	}
	for i, g := range bad {
		ctx, _ := core.NewContext(p, rand.New(rand.NewSource(1)), 10)
		if err := g.Search(ctx); err == nil {
			t.Errorf("bad GA config %d accepted", i)
		}
	}
}

func TestGACloneChildrenSpendNoBudget(t *testing.T) {
	// Budget accounting under the equal-budget protocol: a mutation-free,
	// crossover-free GA can only produce unmutated clone children after
	// the initial population, and clones inherit their parent's cached
	// score. The run must therefore spend exactly PopSize evaluations —
	// one per unique mapping scored — and terminate instead of burning
	// budget on re-evaluating identical mappings.
	p := problem(t, "PIP", 3, 3, core.MaximizeSNR)
	g := &GA{PopSize: 10, Elite: 2, TournamentK: 3, CrossoverRate: 0, MutationRate: 0}
	ctx, err := core.NewContext(p, rand.New(rand.NewSource(5)), 500)
	if err != nil {
		t.Fatal(err)
	}
	scored := make(map[string]bool)
	evaluations := 0
	ctx.OnEvaluate = func(m core.Mapping, _ core.Score) {
		evaluations++
		scored[fmt.Sprint(m)] = true
	}
	if err := g.Search(ctx); err != nil {
		t.Fatal(err)
	}
	if ctx.Evals() != g.PopSize {
		t.Errorf("mutation-free GA spent %d evals, want exactly PopSize=%d", ctx.Evals(), g.PopSize)
	}
	if evaluations != len(scored) {
		t.Errorf("%d evaluations for %d unique mappings: budget spent on duplicates", evaluations, len(scored))
	}
}

func TestGABudgetDifferentialVsCloneReevaluation(t *testing.T) {
	// Differential form of the same fix: gaCloneReeval below restores the
	// old buggy behavior (clone children re-evaluated even when
	// unmutated). With zero crossover and a low mutation rate the buggy
	// variant must evaluate strictly more mappings than unique mappings
	// seen, while the fixed GA never does.
	p := problem(t, "PIP", 3, 3, core.MaximizeSNR)
	countRun := func(s core.Searcher) (evals int, unique int) {
		ctx, err := core.NewContext(p.Clone(), rand.New(rand.NewSource(9)), 300)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[string]bool)
		ctx.OnEvaluate = func(m core.Mapping, _ core.Score) {
			evals++
			seen[fmt.Sprint(m)] = true
		}
		if err := s.Search(ctx); err != nil {
			t.Fatal(err)
		}
		return evals, len(seen)
	}
	cfg := GA{PopSize: 8, Elite: 1, TournamentK: 2, CrossoverRate: 0, MutationRate: 0.3}
	fixedEvals, fixedUnique := countRun(&cfg)
	buggyEvals, buggyUnique := countRun(gaCloneReeval{cfg: cfg})
	if buggyEvals <= buggyUnique {
		t.Fatalf("clone-reevaluating GA spent %d evals on %d unique mappings; expected waste", buggyEvals, buggyUnique)
	}
	// The fixed GA may still legitimately re-evaluate a mapping that a
	// *different* lineage produced (mutation chains can land on a
	// previously seen permutation); only clone-identity waste is
	// eliminated, so its duplicate rate must be strictly below the buggy
	// variant's under the same seed.
	fixedWaste := fixedEvals - fixedUnique
	buggyWaste := buggyEvals - buggyUnique
	if fixedWaste >= buggyWaste {
		t.Errorf("fixed GA wasted %d/%d evals, clone-reevaluating GA wasted %d/%d: fix removed no waste",
			fixedWaste, fixedEvals, buggyWaste, buggyEvals)
	}
}

// gaCloneReeval is the pre-fix GA: clone children do not inherit their
// parent's score and are re-evaluated even when unmutated.
type gaCloneReeval struct{ cfg GA }

func (g gaCloneReeval) Name() string { return "ga-clone-reeval" }

func (g gaCloneReeval) Search(ctx *core.Context) error {
	if err := g.cfg.validate(); err != nil {
		return err
	}
	rng := ctx.Rng()
	numTasks := ctx.Problem().NumTasks()
	numTiles := ctx.Problem().NumTiles()
	evaluate := func(ind *individual) (bool, error) {
		if ind.valid {
			return true, nil
		}
		s, ok, err := ctx.Evaluate(core.Mapping(ind.perm[:numTasks]))
		if err != nil || !ok {
			return ok, err
		}
		ind.score, ind.valid = s, true
		return true, nil
	}
	pop := make([]individual, g.cfg.PopSize)
	for i := range pop {
		perm := make([]topo.TileID, numTiles)
		for j, v := range rng.Perm(numTiles) {
			perm[j] = topo.TileID(v)
		}
		pop[i] = individual{perm: perm}
		if ok, err := evaluate(&pop[i]); err != nil {
			return err
		} else if !ok {
			return nil
		}
	}
	tournament := func() *individual {
		best := &pop[rng.Intn(len(pop))]
		for i := 1; i < g.cfg.TournamentK; i++ {
			c := &pop[rng.Intn(len(pop))]
			if c.score.Better(best.score) {
				best = c
			}
		}
		return best
	}
	next := make([]individual, 0, g.cfg.PopSize)
	for !ctx.Exhausted() {
		next = next[:0]
		sortByScore(pop)
		for i := 0; i < g.cfg.Elite; i++ {
			next = append(next, individual{perm: clonePerm(pop[i].perm), score: pop[i].score, valid: true})
		}
		for len(next) < g.cfg.PopSize {
			p1, p2 := tournament(), tournament()
			var child individual
			if rng.Float64() < g.cfg.CrossoverRate {
				child = individual{perm: pmx(rng, p1.perm, p2.perm)}
			} else {
				child = individual{perm: clonePerm(p1.perm)} // no score inheritance: the bug
			}
			for rng.Float64() < g.cfg.MutationRate {
				i, j := rng.Intn(numTiles), rng.Intn(numTiles)
				child.perm[i], child.perm[j] = child.perm[j], child.perm[i]
				child.valid = false
			}
			if !child.valid {
				if ok, err := evaluate(&child); err != nil {
					return err
				} else if !ok {
					return nil
				}
			}
			next = append(next, child)
		}
		pop, next = next, pop
	}
	return nil
}

func TestPMXProducesPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(12)
		a := make([]topo.TileID, n)
		b := make([]topo.TileID, n)
		for i, v := range rng.Perm(n) {
			a[i] = topo.TileID(v)
		}
		for i, v := range rng.Perm(n) {
			b[i] = topo.TileID(v)
		}
		child := pmx(rng, a, b)
		seen := make([]bool, n)
		for _, v := range child {
			if v < 0 || int(v) >= n || seen[v] {
				t.Fatalf("pmx produced non-permutation %v from %v x %v", child, a, b)
			}
			seen[v] = true
		}
	}
}

func TestGABeatsRSOnVOPD(t *testing.T) {
	// The paper's central comparative claim, scaled down: under an equal
	// modest budget, GA finds a better SNR mapping than RS on VOPD/4x4.
	p := problem(t, "VOPD", 4, 4, core.MaximizeSNR)
	const budget = 1500
	_, rsScore := runAlgo(t, RS{}, p, budget, 21)
	_, gaScore := runAlgo(t, NewGA(), p.Clone(), budget, 21)
	if !gaScore.Better(rsScore) {
		t.Errorf("GA (cost %v) did not beat RS (cost %v)", gaScore.Cost, rsScore.Cost)
	}
}

func TestRPBLAImprovesOverItsStart(t *testing.T) {
	p := problem(t, "MWD", 4, 4, core.MinimizeLoss)
	ctx, err := core.NewContext(p, rand.New(rand.NewSource(31)), 2000)
	if err != nil {
		t.Fatal(err)
	}
	var first core.Score
	gotFirst := false
	ctx.OnImprove = func(evals int, s core.Score) {
		if !gotFirst {
			first, gotFirst = s, true
		}
	}
	if err := NewRPBLA().Search(ctx); err != nil {
		t.Fatal(err)
	}
	_, final, _ := ctx.Best()
	if !gotFirst {
		t.Fatal("no improvement events recorded")
	}
	if !final.Better(first) && final != first {
		t.Errorf("R-PBLA final %v worse than first sample %v", final.Cost, first.Cost)
	}
	if final.Cost > first.Cost {
		t.Errorf("R-PBLA regressed: %v -> %v", first.Cost, final.Cost)
	}
}

func TestRPBLARejectsNegativeRounds(t *testing.T) {
	p := problem(t, "PIP", 3, 3, core.MaximizeSNR)
	ctx, _ := core.NewContext(p, rand.New(rand.NewSource(1)), 10)
	r := &RPBLA{MaxRounds: -1}
	if err := r.Search(ctx); err == nil {
		t.Error("accepted negative MaxRounds")
	}
}

func TestSAValidation(t *testing.T) {
	p := problem(t, "PIP", 3, 3, core.MaximizeSNR)
	bad := []*SA{
		{InitialAcceptance: 0, FinalTempFactor: 0.1, CalibrationSamples: 4},
		{InitialAcceptance: 0.5, FinalTempFactor: 1.5, CalibrationSamples: 4},
		{InitialAcceptance: 0.5, FinalTempFactor: 0.1, CalibrationSamples: 1},
	}
	for i, s := range bad {
		ctx, _ := core.NewContext(p, rand.New(rand.NewSource(1)), 10)
		if err := s.Search(ctx); err == nil {
			t.Errorf("bad SA config %d accepted", i)
		}
	}
}

func TestTabuEscapesLocalMinimum(t *testing.T) {
	// Tabu with a full-neighborhood budget must at least match a pure
	// greedy descent (R-PBLA with a single restart) from the same seed.
	p := problem(t, "MPEG-4", 4, 4, core.MaximizeSNR)
	_, tabuScore := runAlgo(t, NewTabu(), p, 3000, 17)
	_, rpblaScore := runAlgo(t, &RPBLA{MaxRounds: 1}, p.Clone(), 3000, 17)
	// Not a strict ordering theorem, but with these budgets tabu should
	// never be dramatically worse; guard against implementation bugs
	// that lose the incumbent.
	if tabuScore.Cost > rpblaScore.Cost+3.0 {
		t.Errorf("tabu (%v) much worse than single greedy descent (%v)", tabuScore.Cost, rpblaScore.Cost)
	}
}

func TestSearchersDeterministic(t *testing.T) {
	p := problem(t, "263enc_mp3enc", 4, 4, core.MaximizeSNR)
	for _, name := range Names() {
		if name == "exhaustive" {
			continue // deterministic by construction, too slow here
		}
		s1, _ := New(name)
		s2, _ := New(name)
		_, r1 := runAlgo(t, s1, p, 400, 5)
		_, r2 := runAlgo(t, s2, p.Clone(), 400, 5)
		if r1 != r2 {
			t.Errorf("%s: same seed, different results (%+v vs %+v)", name, r1, r2)
		}
	}
}

func TestAdmittedMovesCoverRelocations(t *testing.T) {
	// 3 tasks on 4 tiles: moves must include task-task swaps and moves
	// to the free tile, but never the (empty, empty) pair.
	m := core.Mapping{0, 1, 2}
	sl := newSlots(m, 4)
	moves := admittedMoves(sl.taskAt, len(sl.taskOf))
	// Tile pairs: (0,1),(0,2),(0,3),(1,2),(1,3),(2,3) — all admitted
	// because tile 3 is the only empty one.
	if len(moves) != 6 {
		t.Fatalf("admitted moves = %d, want 6", len(moves))
	}
	m2 := core.Mapping{0}
	sl2 := newSlots(m2, 4)
	moves2 := admittedMoves(sl2.taskAt, len(sl2.taskOf))
	// Only pairs touching tile 0 are admitted: (0,1),(0,2),(0,3).
	if len(moves2) != 3 {
		t.Fatalf("admitted moves = %d, want 3", len(moves2))
	}
}

func TestSlotsSwapKeepsMappingInSync(t *testing.T) {
	m := core.Mapping{0, 2}
	sl := newSlots(m, 4)
	sl.swapTiles(0, 1) // move task 0 to tile 1
	if sl.mapping[0] != 1 || sl.taskOf[1] != 0 || sl.taskOf[0] != -1 {
		t.Errorf("after move: mapping %v taskOf %v", sl.mapping, sl.taskOf)
	}
	sl.swapTiles(1, 2) // swap tasks 0 and 1
	if sl.mapping[0] != 2 || sl.mapping[1] != 1 {
		t.Errorf("after swap: mapping %v", sl.mapping)
	}
	if err := sl.mapping.Validate(4); err != nil {
		t.Errorf("slots broke injectivity: %v", err)
	}
	sl.reset(core.Mapping{3, 0})
	if sl.taskOf[3] != 0 || sl.taskOf[0] != 1 || sl.taskOf[1] != -1 {
		t.Errorf("reset wrong: %v", sl.taskOf)
	}
}

func TestMemeticValidation(t *testing.T) {
	p := problem(t, "PIP", 3, 3, core.MaximizeSNR)
	bad := []*Memetic{
		{GA: nil, RefineMoves: 10},
		{GA: NewGA(), RefineMoves: 0},
		{GA: &GA{PopSize: 1}, RefineMoves: 10},
	}
	for i, m := range bad {
		ctx, _ := core.NewContext(p, rand.New(rand.NewSource(1)), 10)
		if err := m.Search(ctx); err == nil {
			t.Errorf("bad memetic config %d accepted", i)
		}
	}
}

func TestMemeticCompetitiveWithGA(t *testing.T) {
	// On the dense MPEG-4 the memetic hybrid must at least match plain
	// GA under the same budget and seed.
	p := problem(t, "MPEG-4", 4, 4, core.MaximizeSNR)
	const budget = 2500
	_, gaScore := runAlgo(t, NewGA(), p, budget, 19)
	_, memScore := runAlgo(t, NewMemetic(), p.Clone(), budget, 19)
	if gaScore.Cost < memScore.Cost-2.0 {
		t.Errorf("memetic (%v) much worse than GA (%v)", memScore.Cost, gaScore.Cost)
	}
}

func TestBudgetSliceRestores(t *testing.T) {
	p := problem(t, "PIP", 3, 3, core.MaximizeSNR)
	ctx, err := core.NewContext(p, rand.New(rand.NewSource(3)), 100)
	if err != nil {
		t.Fatal(err)
	}
	err = ctx.WithBudgetSlice(10, func(c *core.Context) error {
		for i := 0; i < 50; i++ {
			if _, ok, err := c.Evaluate(c.RandomMapping()); err != nil {
				return err
			} else if !ok {
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Evals() != 10 {
		t.Errorf("slice allowed %d evals, want 10", ctx.Evals())
	}
	if ctx.Remaining() != 90 {
		t.Errorf("Remaining = %d after slice, want 90", ctx.Remaining())
	}
	if err := ctx.WithBudgetSlice(-1, func(*core.Context) error { return nil }); err == nil {
		t.Error("accepted negative slice")
	}
}
