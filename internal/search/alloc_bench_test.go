package search

import (
	"testing"

	"phonocmap/internal/cg"
	"phonocmap/internal/core"
	"phonocmap/internal/network"
	"phonocmap/internal/photonic"
	"phonocmap/internal/route"
	"phonocmap/internal/router"
	"phonocmap/internal/topo"
)

// benchProblem builds the VOPD 4x4 problem without a *testing.T.
func benchProblem(b *testing.B) *core.Problem {
	b.Helper()
	g, err := topo.NewMesh(4, 4)
	if err != nil {
		b.Fatal(err)
	}
	nw, err := network.New(g, router.Crux(), route.XY{}, photonic.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.NewProblem(cg.MustApp("VOPD"), nw, core.MaximizeSNR)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkGASearchAllocs measures a complete 10-generation GA run per
// op with allocation reporting: the population slab, pmx scratch and
// batch-evaluation path mean breeding allocates a bounded constant per
// RUN, not per child. The CI allocation gate and TestGAAllocationBudget
// pin allocs/op against a committed budget — the pre-slab GA (clonePerm
// and map-based pmx per child) sits far above it.
func BenchmarkGASearchAllocs(b *testing.B) {
	prob := benchProblem(b)
	cfg := NewGA()
	budget := 10 * cfg.PopSize
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex, err := core.NewExploration(prob.Clone(), core.Options{Budget: budget, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ex.Run(NewGA()); err != nil {
			b.Fatal(err)
		}
	}
}

// gaAllocBudget is the committed allocation budget for one full
// 480-evaluation GA run (setup + 10 generations): population slab,
// pmx/batch scratch, context, session pool and result copies. The
// pre-slab GA allocated ~3 objects per bred child (≈1400 extra per
// run), so regressions that reintroduce per-child allocation clear this
// bar by an order of magnitude.
const gaAllocBudget = 600

// TestGAAllocationBudget enforces gaAllocBudget in plain `go test` runs
// so allocation regressions fail fast even before the CI -benchmem
// gate.
func TestGAAllocationBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation budget measured in full test runs")
	}
	res := testing.Benchmark(BenchmarkGASearchAllocs)
	if a := res.AllocsPerOp(); a > gaAllocBudget {
		t.Errorf("GA run allocates %d objects, budget is %d", a, gaAllocBudget)
	}
}
