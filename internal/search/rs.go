package search

import "phonocmap/internal/core"

// RS is the paper's random search: generate a population of random
// mappings of a given size (here: as many as the budget allows) and keep
// the best. It is the weakest strategy on all but the smallest instances
// (Table II) and serves as the statistical baseline — Figure 3 is the
// distribution RS samples from.
type RS struct{}

// Name returns "rs".
func (RS) Name() string { return "rs" }

// Search implements core.Searcher.
func (RS) Search(ctx *core.Context) error {
	for !ctx.Exhausted() {
		if _, ok, err := ctx.Evaluate(ctx.RandomMapping()); err != nil {
			return err
		} else if !ok {
			break
		}
	}
	return nil
}
