package search

import (
	"fmt"

	"phonocmap/internal/core"
)

// RPBLA is the paper's purpose-built randomized priority-based list
// algorithm. From a random starting mapping it repeatedly builds the list
// of admitted moves — swapping the tasks mapped onto two different tiles
// (including relocations onto free tiles) — ordered by the worst-case
// loss or SNR each move would produce, and greedily applies the best
// move. Uphill moves are never taken, so when no move improves the
// current mapping (a local minimum), the incumbent is recorded and the
// search restarts from a fresh random point, hoping to fall into a
// different region of attraction (Section II-D.2).
type RPBLA struct {
	// MaxRounds caps the number of ranking rounds per restart as a
	// safety valve; 0 means unlimited (the budget is the real limit).
	MaxRounds int
}

// NewRPBLA returns an R-PBLA with default parameters.
func NewRPBLA() *RPBLA { return &RPBLA{} }

// Name returns "rpbla".
func (r *RPBLA) Name() string { return "rpbla" }

// Search implements core.Searcher.
func (r *RPBLA) Search(ctx *core.Context) error {
	if r.MaxRounds < 0 {
		return fmt.Errorf("search: rpbla MaxRounds must be >= 0, got %d", r.MaxRounds)
	}
	numTiles := ctx.Problem().NumTiles()
	var ranked []rankedMove

	for !ctx.Exhausted() {
		// Fresh random starting point: seat the incremental session on it
		// (one budget unit, exactly like the full evaluation it replaces)
		// and rank every admitted move as a delta.
		cur := ctx.RandomMapping()
		curScore, ok, err := ctx.StartSwaps(cur)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		moves := admittedMoves(ctx.SwapSession().TaskAt, numTiles)

		for round := 0; r.MaxRounds == 0 || round < r.MaxRounds; round++ {
			var full bool
			ranked, full, err = rankMoves(ctx, moves, ranked)
			if err != nil {
				return err
			}
			if len(ranked) == 0 {
				return nil // budget died before ranking anything
			}
			best := ranked[0]
			if !best.score.Better(curScore) {
				// Local minimum: the incumbent is already recorded by
				// the context; restart from a new random point.
				break
			}
			// The winning move's score was paid for in the ranking round;
			// applying it costs no budget.
			if err := ctx.ApplySwap(best.m.a, best.m.b); err != nil {
				return err
			}
			curScore = best.score
			if !full {
				// Ranking was cut short by the budget; the applied move
				// was the best of the evaluated prefix. Stop cleanly.
				return nil
			}
		}
	}
	return nil
}
