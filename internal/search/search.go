// Package search implements the mapping optimization strategies of
// PhoNoCMap's design space exploration engine (Section II-D.2): the three
// algorithms evaluated in the paper — random search (RS), a genetic
// algorithm (GA) and the randomized priority-based list algorithm
// (R-PBLA) — plus additional strategies (simulated annealing, tabu
// search, exhaustive enumeration) exercising the paper's claim that new
// optimizers plug in without changes to the tool core.
//
// Every algorithm draws randomness exclusively from the run context and
// spends evaluations through core.Context.Evaluate, which enforces the
// equal-budget fairness rule and tracks the incumbent.
package search

import (
	"fmt"
	"sort"

	"phonocmap/internal/core"
	"phonocmap/internal/topo"
)

// New returns a fresh instance of the named algorithm with default
// parameters. Known names: "rs", "ga", "rpbla", "sa", "tabu", "memetic",
// "exhaustive".
func New(name string) (core.Searcher, error) {
	switch name {
	case "rs":
		return RS{}, nil
	case "ga":
		return NewGA(), nil
	case "rpbla":
		return NewRPBLA(), nil
	case "sa":
		return NewSA(), nil
	case "tabu":
		return NewTabu(), nil
	case "memetic":
		return NewMemetic(), nil
	case "exhaustive":
		return Exhaustive{}, nil
	default:
		return nil, fmt.Errorf("search: unknown algorithm %q (have %v)", name, Names())
	}
}

// Names lists the built-in algorithm names, paper algorithms first.
func Names() []string {
	return []string{"rs", "ga", "rpbla", "sa", "tabu", "memetic", "exhaustive"}
}

// PaperNames lists the three algorithms compared in Table II.
func PaperNames() []string { return []string{"rs", "ga", "rpbla"} }

// slots is the tile-centric view of a mapping: slots[tile] is the task
// hosted on that tile, or -1. It makes swap-neighborhood enumeration and
// task moves O(1).
type slots struct {
	taskOf  []int // by tile
	mapping core.Mapping
}

func newSlots(m core.Mapping, numTiles int) *slots {
	s := &slots{
		taskOf:  make([]int, numTiles),
		mapping: m.Clone(),
	}
	for t := range s.taskOf {
		s.taskOf[t] = -1
	}
	for task, tile := range m {
		s.taskOf[tile] = task
	}
	return s
}

// reset re-seats the slot view on a new mapping.
func (s *slots) reset(m core.Mapping) {
	for t := range s.taskOf {
		s.taskOf[t] = -1
	}
	copy(s.mapping, m)
	for task, tile := range m {
		s.taskOf[tile] = task
	}
}

// taskAt reports the task on a tile (-1 when free) — the admittedMoves
// accessor of a slots view.
func (s *slots) taskAt(t topo.TileID) int { return s.taskOf[t] }

// swapTiles exchanges the contents of two tiles (tasks or emptiness),
// keeping the mapping in sync. Swapping two empty tiles is a no-op.
func (s *slots) swapTiles(a, b topo.TileID) {
	ta, tb := s.taskOf[a], s.taskOf[b]
	s.taskOf[a], s.taskOf[b] = tb, ta
	if ta >= 0 {
		s.mapping[ta] = b
	}
	if tb >= 0 {
		s.mapping[tb] = a
	}
}

// move is one admitted move of the priority-based list algorithms: swap
// the contents of two tiles, at least one of which hosts a task.
type move struct {
	a, b topo.TileID
}

// admittedMoves enumerates every admitted move for a problem of the given
// size, in deterministic order: all tile pairs (a < b) where at least one
// side will host a task. For fully packed problems this is all task-task
// swaps; with spare tiles it also includes task relocations. taskAt
// reports the task hosted on a tile (-1 when free) — typically
// core.SwapSession.TaskAt or a slots view.
func admittedMoves(taskAt func(topo.TileID) int, numTiles int) []move {
	var res []move
	for a := 0; a < numTiles; a++ {
		for b := a + 1; b < numTiles; b++ {
			if taskAt(topo.TileID(a)) >= 0 || taskAt(topo.TileID(b)) >= 0 {
				res = append(res, move{a: topo.TileID(a), b: topo.TileID(b)})
			}
		}
	}
	return res
}

// rankedMove pairs a move with its evaluated score for the priority list.
type rankedMove struct {
	m     move
	score core.Score
}

// rankMoves evaluates every admitted move from the current state of the
// context's swap session and returns the moves sorted best-first (the
// paper's priority-based list, "ordered according to the worst-case power
// loss or SNR associated with any potential move"). Each move is scored
// incrementally — evaluate the swap, record, revert — so a ranking round
// costs O(moves · Δ) instead of O(moves · full evaluation). It consumes
// one budget unit per move; when the budget runs out midway the evaluated
// prefix is returned with ok=false.
func rankMoves(ctx *core.Context, moves []move, buf []rankedMove) ([]rankedMove, bool, error) {
	buf = buf[:0]
	for _, mv := range moves {
		score, ok, err := ctx.EvaluateSwap(mv.a, mv.b)
		if err != nil {
			return buf, false, err
		}
		if !ok {
			return buf, false, nil
		}
		if err := ctx.RevertSwap(); err != nil {
			return buf, false, err
		}
		buf = append(buf, rankedMove{m: mv, score: score})
	}
	sort.SliceStable(buf, func(i, j int) bool { return buf[i].score.Better(buf[j].score) })
	return buf, true, nil
}
