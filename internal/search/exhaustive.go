package search

import (
	"fmt"

	"phonocmap/internal/core"
	"phonocmap/internal/topo"
)

// Exhaustive enumerates every injective mapping in lexicographic order —
// feasible only for tiny instances (the number of mappings is
// tiles!/(tiles-tasks)!), but invaluable as the ground-truth oracle in
// tests and for verifying that the heuristics reach the true optimum on
// small problems.
type Exhaustive struct{}

// Name returns "exhaustive".
func (Exhaustive) Name() string { return "exhaustive" }

// MappingCount returns tiles!/(tiles-tasks)! — the size of the search
// space (capped at a large sentinel to avoid overflow).
func MappingCount(tasks, tiles int) uint64 {
	const limit = uint64(1) << 62
	count := uint64(1)
	for i := 0; i < tasks; i++ {
		count *= uint64(tiles - i)
		if count > limit {
			return limit
		}
	}
	return count
}

// Search implements core.Searcher. When the budget is smaller than the
// space, the lexicographic prefix is searched; the context still holds
// the best mapping of the evaluated prefix.
func (Exhaustive) Search(ctx *core.Context) error {
	tasks := ctx.Problem().NumTasks()
	tiles := ctx.Problem().NumTiles()
	if tasks < 1 {
		return fmt.Errorf("search: exhaustive needs at least one task")
	}
	m := make(core.Mapping, tasks)
	used := make([]bool, tiles)
	var rec func(task int) (bool, error)
	rec = func(task int) (bool, error) {
		if task == tasks {
			_, ok, err := ctx.Evaluate(m)
			return ok, err
		}
		for t := 0; t < tiles; t++ {
			if used[t] {
				continue
			}
			used[t] = true
			m[task] = topo.TileID(t)
			ok, err := rec(task + 1)
			used[t] = false
			if err != nil || !ok {
				return ok, err
			}
		}
		return true, nil
	}
	_, err := rec(0)
	return err
}
