package search

import (
	"fmt"
	"math"

	"phonocmap/internal/core"
	"phonocmap/internal/topo"
)

// SA is simulated annealing over the swap-move neighborhood: one of the
// "other strategies" the tool architecture accommodates beyond the three
// algorithms of the paper. Unlike R-PBLA it accepts uphill moves with a
// temperature-controlled probability, trading the priority list for
// stochastic hill escape.
type SA struct {
	// InitialAcceptance calibrates the starting temperature: the
	// fraction of early uphill moves that should be accepted (0, 1).
	InitialAcceptance float64
	// FinalTempFactor is the ratio of final to initial temperature
	// reached exactly when the budget runs out (geometric cooling).
	FinalTempFactor float64
	// CalibrationSamples is the number of random mappings used to
	// estimate the initial cost scale.
	CalibrationSamples int
}

// NewSA returns an annealer with default parameters.
func NewSA() *SA {
	return &SA{
		InitialAcceptance:  0.5,
		FinalTempFactor:    1e-4,
		CalibrationSamples: 16,
	}
}

// Name returns "sa".
func (s *SA) Name() string { return "sa" }

func (s *SA) validate() error {
	if s.InitialAcceptance <= 0 || s.InitialAcceptance >= 1 {
		return fmt.Errorf("search: sa initial acceptance %v out of (0,1)", s.InitialAcceptance)
	}
	if s.FinalTempFactor <= 0 || s.FinalTempFactor >= 1 {
		return fmt.Errorf("search: sa final temperature factor %v out of (0,1)", s.FinalTempFactor)
	}
	if s.CalibrationSamples < 2 {
		return fmt.Errorf("search: sa needs >= 2 calibration samples, got %d", s.CalibrationSamples)
	}
	return nil
}

// Search implements core.Searcher.
func (s *SA) Search(ctx *core.Context) error {
	if err := s.validate(); err != nil {
		return err
	}
	rng := ctx.Rng()
	numTiles := ctx.Problem().NumTiles()

	// Calibration: estimate the cost spread of random mappings to set
	// the initial temperature so that a typical uphill step is accepted
	// with probability InitialAcceptance.
	var costs []float64
	var cur core.Mapping
	var curScore core.Score
	for i := 0; i < s.CalibrationSamples; i++ {
		m := ctx.RandomMapping()
		sc, ok, err := ctx.Evaluate(m)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if math.IsInf(sc.Cost, 0) {
			continue // infinite-SNR outliers would break the scale
		}
		costs = append(costs, sc.Cost)
		if cur == nil || sc.Better(curScore) {
			cur, curScore = m.Clone(), sc
		}
	}
	if cur == nil {
		// All calibration samples were infinite; greedy walk instead.
		cur = ctx.RandomMapping()
		sc, ok, err := ctx.Evaluate(cur)
		if err != nil || !ok {
			return err
		}
		curScore = sc
	}
	spread := costSpread(costs)
	if spread <= 0 {
		spread = 1
	}
	t0 := -spread / math.Log(s.InitialAcceptance)
	alpha := math.Pow(s.FinalTempFactor, 1/math.Max(1, float64(ctx.Remaining())))

	// The annealing walk lives entirely in the swap neighborhood: seat the
	// incremental session on the calibration survivor (already paid for)
	// and score every move as a delta.
	if err := ctx.AttachSwaps(cur); err != nil {
		return err
	}
	sess := ctx.SwapSession()
	temp := t0
	for !ctx.Exhausted() {
		a := topo.TileID(rng.Intn(numTiles))
		b := topo.TileID(rng.Intn(numTiles))
		if a == b || (sess.TaskAt(a) < 0 && sess.TaskAt(b) < 0) {
			continue // not an admitted move; costs no budget
		}
		sc, ok, err := ctx.EvaluateSwap(a, b)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		accept := sc.Better(curScore)
		if !accept {
			delta := sc.Cost - curScore.Cost
			if !math.IsInf(delta, 0) && rng.Float64() < math.Exp(-delta/temp) {
				accept = true
			}
		}
		if accept {
			curScore = sc
			ctx.CommitSwap()
		} else if err := ctx.RevertSwap(); err != nil {
			return err
		}
		temp *= alpha
	}
	return nil
}

// costSpread returns the mean absolute deviation of the sampled costs.
func costSpread(costs []float64) float64 {
	if len(costs) < 2 {
		return 0
	}
	mean := 0.0
	for _, c := range costs {
		mean += c
	}
	mean /= float64(len(costs))
	dev := 0.0
	for _, c := range costs {
		dev += math.Abs(c - mean)
	}
	return dev / float64(len(costs))
}
