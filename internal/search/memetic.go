package search

import (
	"fmt"

	"phonocmap/internal/core"
	"phonocmap/internal/topo"
)

// Memetic is a hybrid of the paper's two strong strategies: a genetic
// algorithm for global exploration with a bounded greedy swap descent
// (the R-PBLA move) applied to the best individual of each generation.
// It is one of the "other strategies" the extensible DSE engine admits,
// and typically converges faster than either parent algorithm on dense
// CGs where GA crossover alone stalls near good basins.
type Memetic struct {
	// GA configures the underlying genetic algorithm.
	GA *GA
	// RefineMoves bounds the random swap moves tried when refining the
	// generation's best individual (each costs one evaluation).
	RefineMoves int
}

// NewMemetic returns a memetic searcher with default parameters.
func NewMemetic() *Memetic {
	return &Memetic{GA: NewGA(), RefineMoves: 24}
}

// Name returns "memetic".
func (m *Memetic) Name() string { return "memetic" }

// Search implements core.Searcher. The memetic search alternates short
// GA bursts (fresh populations on a budget slice, in the manner of
// iterated restarts) with first-improvement swap descent on the shared
// incumbent; the context's incumbent ledger carries progress across
// bursts.
func (m *Memetic) Search(ctx *core.Context) error {
	if m.GA == nil {
		return fmt.Errorf("search: memetic needs a GA configuration")
	}
	if m.RefineMoves < 1 {
		return fmt.Errorf("search: memetic RefineMoves must be >= 1, got %d", m.RefineMoves)
	}
	if err := m.GA.validate(); err != nil {
		return err
	}
	numTiles := ctx.Problem().NumTiles()
	rng := ctx.Rng()

	for !ctx.Exhausted() {
		// GA burst: roughly four generations worth of evaluations.
		burst := 4 * m.GA.PopSize
		if remaining := ctx.Remaining(); burst > remaining {
			burst = remaining
		}
		if err := ctx.WithBudgetSlice(burst, m.GA.Search); err != nil {
			return err
		}
		// Local refinement of the incumbent: seat the incremental session
		// on it (already evaluated, so no budget) and descend by deltas.
		best, bestScore, ok := ctx.Best()
		if !ok {
			return nil
		}
		if err := ctx.AttachSwaps(best); err != nil {
			return err
		}
		sess := ctx.SwapSession()
		cur := bestScore
		for i := 0; i < m.RefineMoves && !ctx.Exhausted(); i++ {
			a := topo.TileID(rng.Intn(numTiles))
			b := topo.TileID(rng.Intn(numTiles))
			if a == b || (sess.TaskAt(a) < 0 && sess.TaskAt(b) < 0) {
				continue
			}
			s, evaluated, err := ctx.EvaluateSwap(a, b)
			if err != nil {
				return err
			}
			if !evaluated {
				return nil
			}
			if s.Better(cur) {
				cur = s // keep the move
				ctx.CommitSwap()
			} else if err := ctx.RevertSwap(); err != nil {
				return err
			}
		}
	}
	return nil
}
