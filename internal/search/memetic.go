package search

import (
	"fmt"

	"phonocmap/internal/core"
	"phonocmap/internal/topo"
)

// Memetic is a hybrid of the paper's two strong strategies: a genetic
// algorithm for global exploration with a bounded swap-neighborhood
// probe (the R-PBLA move) applied to the incumbent after each burst.
// It is one of the "other strategies" the extensible DSE engine admits,
// and typically converges faster than either parent algorithm on dense
// CGs where GA crossover alone stalls near good basins.
type Memetic struct {
	// GA configures the underlying genetic algorithm.
	GA *GA
	// RefineMoves bounds the random swap moves tried when refining the
	// incumbent after each burst (each non-degenerate move costs one
	// evaluation).
	RefineMoves int
}

// NewMemetic returns a memetic searcher with default parameters.
func NewMemetic() *Memetic {
	return &Memetic{GA: NewGA(), RefineMoves: 24}
}

// Name returns "memetic".
func (m *Memetic) Name() string { return "memetic" }

// Search implements core.Searcher. The memetic search alternates short
// GA bursts (fresh populations on a budget slice, in the manner of
// iterated restarts) with a swap-neighborhood probe of the shared
// incumbent; the context's incumbent ledger carries progress across
// bursts.
//
// Each refinement leg drafts RefineMoves random tile swaps relative to
// the incumbent, drops the degenerate ones (same tile, or two free
// tiles — zero-delta moves that would waste budget) and scores the rest
// in one Context.EvaluateBatch call: the probes are independent
// single-swap neighbors of one base mapping, so they parallelize across
// per-worker sessions while the batch's ordered accounting keeps the
// incumbent update sequence identical to a sequential probe loop.
func (m *Memetic) Search(ctx *core.Context) error {
	if m.GA == nil {
		return fmt.Errorf("search: memetic needs a GA configuration")
	}
	if m.RefineMoves < 1 {
		return fmt.Errorf("search: memetic RefineMoves must be >= 1, got %d", m.RefineMoves)
	}
	if err := m.GA.validate(); err != nil {
		return err
	}
	numTiles := ctx.Problem().NumTiles()
	numTasks := ctx.Problem().NumTasks()
	rng := ctx.Rng()

	// Refinement scratch, reused across legs: the incumbent's occupancy
	// view and a slab backing the candidate neighbor mappings.
	taskOf := make([]int, numTiles)
	slab := make([]topo.TileID, m.RefineMoves*numTasks)
	cands := make([]core.Mapping, 0, m.RefineMoves)

	for !ctx.Exhausted() {
		// GA burst: roughly four generations worth of evaluations.
		burst := 4 * m.GA.PopSize
		if remaining := ctx.Remaining(); burst > remaining {
			burst = remaining
		}
		if err := ctx.WithBudgetSlice(burst, m.GA.Search); err != nil {
			return err
		}
		// Local refinement: probe the swap neighborhood of the incumbent.
		best, _, ok := ctx.Best()
		if !ok {
			return nil
		}
		for t := range taskOf {
			taskOf[t] = -1
		}
		for task, tile := range best {
			taskOf[tile] = task
		}
		cands = cands[:0]
		for i := 0; i < m.RefineMoves; i++ {
			a := rng.Intn(numTiles)
			b := rng.Intn(numTiles)
			if a == b || (taskOf[a] < 0 && taskOf[b] < 0) {
				continue
			}
			cand := core.Mapping(slab[len(cands)*numTasks : (len(cands)+1)*numTasks])
			copy(cand, best)
			if ta := taskOf[a]; ta >= 0 {
				cand[ta] = topo.TileID(b)
			}
			if tb := taskOf[b]; tb >= 0 {
				cand[tb] = topo.TileID(a)
			}
			cands = append(cands, cand)
		}
		if _, _, err := ctx.EvaluateBatch(cands); err != nil {
			return err
		}
	}
	return nil
}
