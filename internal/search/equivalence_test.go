package search

import (
	"math"
	"sort"
	"testing"

	"phonocmap/internal/core"
	"phonocmap/internal/topo"
)

// This file proves the incremental-path rewrite of the searchers changed
// no search behavior: refSA, refTabu, refRPBLA, refMemetic and refGA are
// verbatim copies of the searchers' pre-rewrite control flow — every
// candidate scored through ctx.Evaluate, i.e. a full from-scratch
// evaluation — and the tests assert that the live searchers reproduce
// their RunResult (Mapping, Score, Evals) exactly under equal seeds.
// (Exception: refGA carries the same clone-score-inheritance budget fix
// as the live GA — an unmutated clone child reuses its parent's cached
// score instead of re-spending a budget unit — so the pair still proves
// full-vs-incremental evaluation-path equivalence under the corrected
// accounting.)
//
// Both sides run against the same Evaluator, so what is proven is
// strategy equivalence: identical candidate sequences, identical RNG
// consumption, identical budget accounting, identical incumbents. (The
// evaluator's own arithmetic was deliberately re-derived in the same PR
// — factorized linear factors plus fixed-point noise quantization — a
// documented sub-physical rounding change shared by both paths.)

// refRankMoves is the pre-refactor rankMoves: every admitted move
// evaluated by mutating the slot view and fully evaluating the mapping.
func refRankMoves(ctx *core.Context, s *slots, moves []move, buf []rankedMove) ([]rankedMove, bool, error) {
	buf = buf[:0]
	for _, mv := range moves {
		s.swapTiles(mv.a, mv.b)
		score, ok, err := ctx.Evaluate(s.mapping)
		s.swapTiles(mv.a, mv.b) // undo
		if err != nil {
			return buf, false, err
		}
		if !ok {
			return buf, false, nil
		}
		buf = append(buf, rankedMove{m: mv, score: score})
	}
	sort.SliceStable(buf, func(i, j int) bool { return buf[i].score.Better(buf[j].score) })
	return buf, true, nil
}

type refSA struct{ cfg *SA }

func (s refSA) Name() string { return "ref-sa" }

func (s refSA) Search(ctx *core.Context) error {
	if err := s.cfg.validate(); err != nil {
		return err
	}
	rng := ctx.Rng()
	numTiles := ctx.Problem().NumTiles()

	var costs []float64
	var cur core.Mapping
	var curScore core.Score
	for i := 0; i < s.cfg.CalibrationSamples; i++ {
		m := ctx.RandomMapping()
		sc, ok, err := ctx.Evaluate(m)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if math.IsInf(sc.Cost, 0) {
			continue
		}
		costs = append(costs, sc.Cost)
		if cur == nil || sc.Better(curScore) {
			cur, curScore = m.Clone(), sc
		}
	}
	if cur == nil {
		cur = ctx.RandomMapping()
		sc, ok, err := ctx.Evaluate(cur)
		if err != nil || !ok {
			return err
		}
		curScore = sc
	}
	spread := costSpread(costs)
	if spread <= 0 {
		spread = 1
	}
	t0 := -spread / math.Log(s.cfg.InitialAcceptance)
	alpha := math.Pow(s.cfg.FinalTempFactor, 1/math.Max(1, float64(ctx.Remaining())))

	sl := newSlots(cur, numTiles)
	temp := t0
	for !ctx.Exhausted() {
		a := topo.TileID(rng.Intn(numTiles))
		b := topo.TileID(rng.Intn(numTiles))
		if a == b || (sl.taskOf[a] < 0 && sl.taskOf[b] < 0) {
			continue
		}
		sl.swapTiles(a, b)
		sc, ok, err := ctx.Evaluate(sl.mapping)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		accept := sc.Better(curScore)
		if !accept {
			delta := sc.Cost - curScore.Cost
			if !math.IsInf(delta, 0) && rng.Float64() < math.Exp(-delta/temp) {
				accept = true
			}
		}
		if accept {
			curScore = sc
		} else {
			sl.swapTiles(a, b)
		}
		temp *= alpha
	}
	return nil
}

type refTabu struct{ cfg *Tabu }

func (t refTabu) Name() string { return "ref-tabu" }

func (t refTabu) Search(ctx *core.Context) error {
	tenure := t.cfg.Tenure
	if tenure == 0 {
		tenure = ctx.Problem().NumTasks()
	}
	numTiles := ctx.Problem().NumTiles()

	cur := ctx.RandomMapping()
	if _, ok, err := ctx.Evaluate(cur); err != nil || !ok {
		return err
	}
	_, bestScore, _ := ctx.Best()
	sl := newSlots(cur, numTiles)
	moves := admittedMoves(sl.taskAt, len(sl.taskOf))
	expires := make(map[move]int, len(moves))
	var ranked []rankedMove

	for iter := 0; !ctx.Exhausted(); iter++ {
		var err error
		var full bool
		ranked, full, err = refRankMoves(ctx, sl, moves, ranked)
		if err != nil {
			return err
		}
		if len(ranked) == 0 {
			return nil
		}
		applied := false
		for _, rm := range ranked {
			tabu := expires[rm.m] > iter
			aspire := rm.score.Better(bestScore)
			if tabu && !aspire {
				continue
			}
			sl.swapTiles(rm.m.a, rm.m.b)
			expires[rm.m] = iter + tenure
			if rm.score.Better(bestScore) {
				bestScore = rm.score
			}
			applied = true
			break
		}
		if !applied {
			for k := range expires {
				delete(expires, k)
			}
		}
		if !full {
			return nil
		}
	}
	return nil
}

type refRPBLA struct{ cfg *RPBLA }

func (r refRPBLA) Name() string { return "ref-rpbla" }

func (r refRPBLA) Search(ctx *core.Context) error {
	numTiles := ctx.Problem().NumTiles()
	var ranked []rankedMove

	for !ctx.Exhausted() {
		cur := ctx.RandomMapping()
		curScore, ok, err := ctx.Evaluate(cur)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		sl := newSlots(cur, numTiles)
		moves := admittedMoves(sl.taskAt, len(sl.taskOf))

		for round := 0; r.cfg.MaxRounds == 0 || round < r.cfg.MaxRounds; round++ {
			var full bool
			ranked, full, err = refRankMoves(ctx, sl, moves, ranked)
			if err != nil {
				return err
			}
			if len(ranked) == 0 {
				return nil
			}
			best := ranked[0]
			if !best.score.Better(curScore) {
				break
			}
			sl.swapTiles(best.m.a, best.m.b)
			curScore = best.score
			if !full {
				return nil
			}
		}
	}
	return nil
}

type refGA struct{ cfg *GA }

func (g refGA) Name() string { return "ref-ga" }

func (g refGA) Search(ctx *core.Context) error {
	if err := g.cfg.validate(); err != nil {
		return err
	}
	rng := ctx.Rng()
	numTasks := ctx.Problem().NumTasks()
	numTiles := ctx.Problem().NumTiles()

	newIndividual := func() individual {
		perm := make([]topo.TileID, numTiles)
		for i, v := range rng.Perm(numTiles) {
			perm[i] = topo.TileID(v)
		}
		return individual{perm: perm}
	}
	evaluate := func(ind *individual) (bool, error) {
		if ind.valid {
			return true, nil
		}
		s, ok, err := ctx.Evaluate(core.Mapping(ind.perm[:numTasks]))
		if err != nil || !ok {
			return ok, err
		}
		ind.score, ind.valid = s, true
		return true, nil
	}

	pop := make([]individual, g.cfg.PopSize)
	for i := range pop {
		pop[i] = newIndividual()
		if ok, err := evaluate(&pop[i]); err != nil {
			return err
		} else if !ok {
			return nil
		}
	}

	tournament := func() *individual {
		best := &pop[rng.Intn(len(pop))]
		for i := 1; i < g.cfg.TournamentK; i++ {
			c := &pop[rng.Intn(len(pop))]
			if c.score.Better(best.score) {
				best = c
			}
		}
		return best
	}

	next := make([]individual, 0, g.cfg.PopSize)
	for !ctx.Exhausted() {
		spentBefore := ctx.Evals()
		next = next[:0]
		sortByScore(pop)
		for i := 0; i < g.cfg.Elite; i++ {
			elite := individual{perm: clonePerm(pop[i].perm), score: pop[i].score, valid: true}
			next = append(next, elite)
		}
		for len(next) < g.cfg.PopSize {
			p1, p2 := tournament(), tournament()
			var child individual
			if rng.Float64() < g.cfg.CrossoverRate {
				child = individual{perm: pmx(rng, p1.perm, p2.perm)}
			} else {
				// Clone children inherit the parent's cached score (the GA
				// budget-accounting fix); mutation flips valid below.
				child = individual{perm: clonePerm(p1.perm), score: p1.score, valid: true}
			}
			for rng.Float64() < g.cfg.MutationRate {
				i, j := rng.Intn(numTiles), rng.Intn(numTiles)
				child.perm[i], child.perm[j] = child.perm[j], child.perm[i]
				child.valid = false
			}
			if !child.valid {
				if ok, err := evaluate(&child); err != nil {
					return err
				} else if !ok {
					return nil
				}
			}
			next = append(next, child)
		}
		pop, next = next, pop
		if ctx.Evals() == spentBefore && g.cfg.CrossoverRate == 0 && g.cfg.MutationRate == 0 {
			return nil
		}
	}
	return nil
}

type refMemetic struct{ cfg *Memetic }

func (m refMemetic) Name() string { return "ref-memetic" }

func (m refMemetic) Search(ctx *core.Context) error {
	if err := m.cfg.GA.validate(); err != nil {
		return err
	}
	numTiles := ctx.Problem().NumTiles()
	rng := ctx.Rng()
	ga := refGA{cfg: m.cfg.GA}

	for !ctx.Exhausted() {
		burst := 4 * m.cfg.GA.PopSize
		if remaining := ctx.Remaining(); burst > remaining {
			burst = remaining
		}
		if err := ctx.WithBudgetSlice(burst, ga.Search); err != nil {
			return err
		}
		best, bestScore, ok := ctx.Best()
		if !ok {
			return nil
		}
		sl := newSlots(best, numTiles)
		cur := bestScore
		for i := 0; i < m.cfg.RefineMoves && !ctx.Exhausted(); i++ {
			a := topo.TileID(rng.Intn(numTiles))
			b := topo.TileID(rng.Intn(numTiles))
			if a == b || (sl.taskOf[a] < 0 && sl.taskOf[b] < 0) {
				continue
			}
			sl.swapTiles(a, b)
			s, evaluated, err := ctx.Evaluate(sl.mapping)
			if err != nil {
				return err
			}
			if !evaluated {
				return nil
			}
			if s.Better(cur) {
				cur = s
			} else {
				sl.swapTiles(a, b)
			}
		}
	}
	return nil
}

// runSeeded executes one searcher on a fresh clone of the problem under
// the standard Exploration seed derivation.
func runSeeded(t *testing.T, prob *core.Problem, s core.Searcher, budget int, seed int64) core.RunResult {
	t.Helper()
	ex, err := core.NewExploration(prob.Clone(), core.Options{Budget: budget, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestIncrementalSearchersMatchReference: under equal seeds, the
// incremental-path searchers reproduce the pre-refactor full-evaluation
// searchers bit for bit — same Mapping, same Score, same Evals.
func TestIncrementalSearchersMatchReference(t *testing.T) {
	pairs := []struct {
		name string
		live core.Searcher
		ref  core.Searcher
	}{
		{"sa", NewSA(), refSA{cfg: NewSA()}},
		{"tabu", NewTabu(), refTabu{cfg: NewTabu()}},
		{"rpbla", NewRPBLA(), refRPBLA{cfg: NewRPBLA()}},
		{"ga", NewGA(), refGA{cfg: NewGA()}},
		{"memetic", NewMemetic(), refMemetic{cfg: NewMemetic()}},
	}
	for _, obj := range []core.Objective{core.MinimizeLoss, core.MaximizeSNR, core.MinimizeWeightedLoss} {
		prob := problem(t, "VOPD", 4, 4, obj)
		for _, p := range pairs {
			for _, seed := range []int64{1, 7} {
				got := runSeeded(t, prob, p.live, 600, seed)
				want := runSeeded(t, prob, p.ref, 600, seed)
				if !got.Mapping.Equal(want.Mapping) {
					t.Errorf("%s/%s seed %d: mapping %v != reference %v", p.name, obj, seed, got.Mapping, want.Mapping)
				}
				if got.Score != want.Score {
					t.Errorf("%s/%s seed %d: score %+v != reference %+v", p.name, obj, seed, got.Score, want.Score)
				}
				if got.Evals != want.Evals {
					t.Errorf("%s/%s seed %d: evals %d != reference %d", p.name, obj, seed, got.Evals, want.Evals)
				}
			}
		}
	}
}
