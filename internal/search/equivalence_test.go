package search

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"phonocmap/internal/core"
	"phonocmap/internal/topo"
)

// This file proves the evaluation-path rewrites of the searchers changed
// no search behavior. refSA, refTabu and refRPBLA are verbatim copies of
// the searchers' pre-incremental control flow — every candidate scored
// through ctx.Evaluate, i.e. a full from-scratch evaluation. refGA and
// refMemetic mirror the batched searchers' control flow (breed or draft
// the whole round first, then score) but evaluate every candidate
// sequentially through ctx.Evaluate with allocating helpers — the
// reference ledger Context.EvaluateBatch must reproduce. The tests
// assert that the live searchers reproduce the references' RunResult
// (Mapping, Score, Evals) exactly under equal seeds, and
// TestBatchedSearchersWorkerCountInvariant extends that to every eval
// worker count.
//
// Both sides run against the same Evaluator, so what is proven is
// strategy equivalence: identical candidate sequences, identical RNG
// consumption, identical budget accounting, identical incumbents. (The
// evaluator's own arithmetic was deliberately re-derived in the same PR
// — factorized linear factors plus fixed-point noise quantization — a
// documented sub-physical rounding change shared by both paths.)

// refRankMoves is the pre-refactor rankMoves: every admitted move
// evaluated by mutating the slot view and fully evaluating the mapping.
func refRankMoves(ctx *core.Context, s *slots, moves []move, buf []rankedMove) ([]rankedMove, bool, error) {
	buf = buf[:0]
	for _, mv := range moves {
		s.swapTiles(mv.a, mv.b)
		score, ok, err := ctx.Evaluate(s.mapping)
		s.swapTiles(mv.a, mv.b) // undo
		if err != nil {
			return buf, false, err
		}
		if !ok {
			return buf, false, nil
		}
		buf = append(buf, rankedMove{m: mv, score: score})
	}
	sort.SliceStable(buf, func(i, j int) bool { return buf[i].score.Better(buf[j].score) })
	return buf, true, nil
}

type refSA struct{ cfg *SA }

func (s refSA) Name() string { return "ref-sa" }

func (s refSA) Search(ctx *core.Context) error {
	if err := s.cfg.validate(); err != nil {
		return err
	}
	rng := ctx.Rng()
	numTiles := ctx.Problem().NumTiles()

	var costs []float64
	var cur core.Mapping
	var curScore core.Score
	for i := 0; i < s.cfg.CalibrationSamples; i++ {
		m := ctx.RandomMapping()
		sc, ok, err := ctx.Evaluate(m)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if math.IsInf(sc.Cost, 0) {
			continue
		}
		costs = append(costs, sc.Cost)
		if cur == nil || sc.Better(curScore) {
			cur, curScore = m.Clone(), sc
		}
	}
	if cur == nil {
		cur = ctx.RandomMapping()
		sc, ok, err := ctx.Evaluate(cur)
		if err != nil || !ok {
			return err
		}
		curScore = sc
	}
	spread := costSpread(costs)
	if spread <= 0 {
		spread = 1
	}
	t0 := -spread / math.Log(s.cfg.InitialAcceptance)
	alpha := math.Pow(s.cfg.FinalTempFactor, 1/math.Max(1, float64(ctx.Remaining())))

	sl := newSlots(cur, numTiles)
	temp := t0
	for !ctx.Exhausted() {
		a := topo.TileID(rng.Intn(numTiles))
		b := topo.TileID(rng.Intn(numTiles))
		if a == b || (sl.taskOf[a] < 0 && sl.taskOf[b] < 0) {
			continue
		}
		sl.swapTiles(a, b)
		sc, ok, err := ctx.Evaluate(sl.mapping)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		accept := sc.Better(curScore)
		if !accept {
			delta := sc.Cost - curScore.Cost
			if !math.IsInf(delta, 0) && rng.Float64() < math.Exp(-delta/temp) {
				accept = true
			}
		}
		if accept {
			curScore = sc
		} else {
			sl.swapTiles(a, b)
		}
		temp *= alpha
	}
	return nil
}

type refTabu struct{ cfg *Tabu }

func (t refTabu) Name() string { return "ref-tabu" }

func (t refTabu) Search(ctx *core.Context) error {
	tenure := t.cfg.Tenure
	if tenure == 0 {
		tenure = ctx.Problem().NumTasks()
	}
	numTiles := ctx.Problem().NumTiles()

	cur := ctx.RandomMapping()
	if _, ok, err := ctx.Evaluate(cur); err != nil || !ok {
		return err
	}
	_, bestScore, _ := ctx.Best()
	sl := newSlots(cur, numTiles)
	moves := admittedMoves(sl.taskAt, len(sl.taskOf))
	expires := make(map[move]int, len(moves))
	var ranked []rankedMove

	for iter := 0; !ctx.Exhausted(); iter++ {
		var err error
		var full bool
		ranked, full, err = refRankMoves(ctx, sl, moves, ranked)
		if err != nil {
			return err
		}
		if len(ranked) == 0 {
			return nil
		}
		applied := false
		for _, rm := range ranked {
			tabu := expires[rm.m] > iter
			aspire := rm.score.Better(bestScore)
			if tabu && !aspire {
				continue
			}
			sl.swapTiles(rm.m.a, rm.m.b)
			expires[rm.m] = iter + tenure
			if rm.score.Better(bestScore) {
				bestScore = rm.score
			}
			applied = true
			break
		}
		if !applied {
			for k := range expires {
				delete(expires, k)
			}
		}
		if !full {
			return nil
		}
	}
	return nil
}

type refRPBLA struct{ cfg *RPBLA }

func (r refRPBLA) Name() string { return "ref-rpbla" }

func (r refRPBLA) Search(ctx *core.Context) error {
	numTiles := ctx.Problem().NumTiles()
	var ranked []rankedMove

	for !ctx.Exhausted() {
		cur := ctx.RandomMapping()
		curScore, ok, err := ctx.Evaluate(cur)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		sl := newSlots(cur, numTiles)
		moves := admittedMoves(sl.taskAt, len(sl.taskOf))

		for round := 0; r.cfg.MaxRounds == 0 || round < r.cfg.MaxRounds; round++ {
			var full bool
			ranked, full, err = refRankMoves(ctx, sl, moves, ranked)
			if err != nil {
				return err
			}
			if len(ranked) == 0 {
				return nil
			}
			best := ranked[0]
			if !best.score.Better(curScore) {
				break
			}
			sl.swapTiles(best.m.a, best.m.b)
			curScore = best.score
			if !full {
				return nil
			}
		}
	}
	return nil
}

// clonePerm and pmx are the allocating reference forms the production
// GA used before the slab rewrite; refGA (and gaCloneReeval in
// search_test.go) keep using them so the references stay independent of
// the production scratch-buffer code they are checking.
func clonePerm(p []topo.TileID) []topo.TileID {
	c := make([]topo.TileID, len(p))
	copy(c, p)
	return c
}

// pmx is map-based partially mapped crossover: the reference form of
// pmxInto, with identical RNG draws and output (pinned by
// TestPMXIntoMatchesReference).
func pmx(rng *rand.Rand, a, b []topo.TileID) []topo.TileID {
	n := len(a)
	child := make([]topo.TileID, n)
	lo := rng.Intn(n)
	hi := rng.Intn(n)
	if lo > hi {
		lo, hi = hi, lo
	}
	inSegment := make(map[topo.TileID]bool, hi-lo+1)
	for i := lo; i <= hi; i++ {
		child[i] = a[i]
		inSegment[a[i]] = true
	}
	posInA := make(map[topo.TileID]int, n)
	for i, v := range a {
		posInA[v] = i
	}
	for i := 0; i < n; i++ {
		if i >= lo && i <= hi {
			continue
		}
		v := b[i]
		for inSegment[v] {
			v = b[posInA[v]]
		}
		child[i] = v
	}
	return child
}

type refGA struct{ cfg *GA }

func (g refGA) Name() string { return "ref-ga" }

// refGA breeds exactly like the live GA — whole generation first, same
// RNG draws — but scores every pending child sequentially through
// ctx.Evaluate, in breeding order. This is the ledger EvaluateBatch
// must reproduce: same scores, same eval counts, same incumbent
// sequence, same truncation point on budget exhaustion.
func (g refGA) Search(ctx *core.Context) error {
	if err := g.cfg.validate(); err != nil {
		return err
	}
	rng := ctx.Rng()
	numTasks := ctx.Problem().NumTasks()
	numTiles := ctx.Problem().NumTiles()

	pop := make([]individual, g.cfg.PopSize)
	for i := range pop {
		perm := make([]topo.TileID, numTiles)
		for j, v := range rng.Perm(numTiles) {
			perm[j] = topo.TileID(v)
		}
		pop[i] = individual{perm: perm}
	}
	// evaluatePending is the sequential counterpart of the live GA's
	// batched flush.
	evaluatePending := func(gen []individual) (bool, error) {
		for i := range gen {
			if gen[i].valid {
				continue
			}
			s, ok, err := ctx.Evaluate(core.Mapping(gen[i].perm[:numTasks]))
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
			gen[i].score, gen[i].valid = s, true
		}
		return true, nil
	}
	if full, err := evaluatePending(pop); err != nil {
		return err
	} else if !full {
		return nil
	}

	tournament := func() *individual {
		best := &pop[rng.Intn(len(pop))]
		for i := 1; i < g.cfg.TournamentK; i++ {
			c := &pop[rng.Intn(len(pop))]
			if c.score.Better(best.score) {
				best = c
			}
		}
		return best
	}

	next := make([]individual, 0, g.cfg.PopSize)
	for !ctx.Exhausted() {
		spentBefore := ctx.Evals()
		next = next[:0]
		sortByScore(pop)
		for i := 0; i < g.cfg.Elite; i++ {
			elite := individual{perm: clonePerm(pop[i].perm), score: pop[i].score, valid: true}
			next = append(next, elite)
		}
		for len(next) < g.cfg.PopSize {
			p1, p2 := tournament(), tournament()
			var child individual
			if rng.Float64() < g.cfg.CrossoverRate {
				child = individual{perm: pmx(rng, p1.perm, p2.perm)}
			} else {
				// Clone children inherit the parent's cached score (the GA
				// budget-accounting fix); mutation flips valid below.
				child = individual{perm: clonePerm(p1.perm), score: p1.score, valid: true}
			}
			for rng.Float64() < g.cfg.MutationRate {
				i, j := rng.Intn(numTiles), rng.Intn(numTiles)
				child.perm[i], child.perm[j] = child.perm[j], child.perm[i]
				child.valid = false
			}
			next = append(next, child)
		}
		if full, err := evaluatePending(next); err != nil {
			return err
		} else if !full {
			return nil
		}
		pop, next = next, pop
		if ctx.Evals() == spentBefore && g.cfg.CrossoverRate == 0 && g.cfg.MutationRate == 0 {
			return nil
		}
	}
	return nil
}

type refMemetic struct{ cfg *Memetic }

func (m refMemetic) Name() string { return "ref-memetic" }

// refMemetic drafts each refinement leg's swap candidates exactly like
// the live memetic — all RefineMoves draws against the incumbent base —
// then scores them sequentially through ctx.Evaluate.
func (m refMemetic) Search(ctx *core.Context) error {
	if err := m.cfg.GA.validate(); err != nil {
		return err
	}
	numTiles := ctx.Problem().NumTiles()
	rng := ctx.Rng()
	ga := refGA{cfg: m.cfg.GA}

	for !ctx.Exhausted() {
		burst := 4 * m.cfg.GA.PopSize
		if remaining := ctx.Remaining(); burst > remaining {
			burst = remaining
		}
		if err := ctx.WithBudgetSlice(burst, ga.Search); err != nil {
			return err
		}
		best, _, ok := ctx.Best()
		if !ok {
			return nil
		}
		sl := newSlots(best, numTiles)
		var cands []core.Mapping
		for i := 0; i < m.cfg.RefineMoves; i++ {
			a := rng.Intn(numTiles)
			b := rng.Intn(numTiles)
			if a == b || (sl.taskOf[a] < 0 && sl.taskOf[b] < 0) {
				continue
			}
			cand := best.Clone()
			if ta := sl.taskOf[a]; ta >= 0 {
				cand[ta] = topo.TileID(b)
			}
			if tb := sl.taskOf[b]; tb >= 0 {
				cand[tb] = topo.TileID(a)
			}
			cands = append(cands, cand)
		}
		for _, cand := range cands {
			if _, evaluated, err := ctx.Evaluate(cand); err != nil {
				return err
			} else if !evaluated {
				return nil
			}
		}
	}
	return nil
}

// runSeeded executes one searcher on a fresh clone of the problem under
// the standard Exploration seed derivation.
func runSeeded(t *testing.T, prob *core.Problem, s core.Searcher, budget int, seed int64) core.RunResult {
	t.Helper()
	return runSeededWorkers(t, prob, s, budget, seed, 0)
}

// runSeededWorkers is runSeeded with an explicit eval worker count.
func runSeededWorkers(t *testing.T, prob *core.Problem, s core.Searcher, budget int, seed int64, workers int) core.RunResult {
	t.Helper()
	ex, err := core.NewExploration(prob.Clone(), core.Options{Budget: budget, Seed: seed, EvalWorkers: workers})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestIncrementalSearchersMatchReference: under equal seeds, the
// incremental-path searchers reproduce the pre-refactor full-evaluation
// searchers bit for bit — same Mapping, same Score, same Evals.
func TestIncrementalSearchersMatchReference(t *testing.T) {
	pairs := []struct {
		name string
		live core.Searcher
		ref  core.Searcher
	}{
		{"sa", NewSA(), refSA{cfg: NewSA()}},
		{"tabu", NewTabu(), refTabu{cfg: NewTabu()}},
		{"rpbla", NewRPBLA(), refRPBLA{cfg: NewRPBLA()}},
		{"ga", NewGA(), refGA{cfg: NewGA()}},
		{"memetic", NewMemetic(), refMemetic{cfg: NewMemetic()}},
	}
	for _, obj := range []core.Objective{core.MinimizeLoss, core.MaximizeSNR, core.MinimizeWeightedLoss} {
		prob := problem(t, "VOPD", 4, 4, obj)
		for _, p := range pairs {
			for _, seed := range []int64{1, 7} {
				got := runSeeded(t, prob, p.live, 600, seed)
				want := runSeeded(t, prob, p.ref, 600, seed)
				if !got.Mapping.Equal(want.Mapping) {
					t.Errorf("%s/%s seed %d: mapping %v != reference %v", p.name, obj, seed, got.Mapping, want.Mapping)
				}
				if got.Score != want.Score {
					t.Errorf("%s/%s seed %d: score %+v != reference %+v", p.name, obj, seed, got.Score, want.Score)
				}
				if got.Evals != want.Evals {
					t.Errorf("%s/%s seed %d: evals %d != reference %d", p.name, obj, seed, got.Evals, want.Evals)
				}
			}
		}
	}
}

// TestBatchedSearchersWorkerCountInvariant is the parallel differential
// proof: the batched searchers produce bit-identical results (Mapping,
// Score, Evals) at every eval worker count, across all objectives —
// worker count is a throughput knob, never a search parameter. The
// sequential (1-worker) run doubles as the anchor back to the
// sequential references via TestIncrementalSearchersMatchReference.
func TestBatchedSearchersWorkerCountInvariant(t *testing.T) {
	searchers := []struct {
		name string
		make func() core.Searcher
	}{
		{"ga", func() core.Searcher { return NewGA() }},
		{"memetic", func() core.Searcher { return NewMemetic() }},
	}
	for _, obj := range []core.Objective{core.MinimizeLoss, core.MaximizeSNR, core.MinimizeWeightedLoss} {
		prob := problem(t, "VOPD", 4, 4, obj)
		for _, s := range searchers {
			for _, seed := range []int64{1, 7} {
				base := runSeededWorkers(t, prob, s.make(), 600, seed, 1)
				for _, workers := range []int{2, 4, 7} {
					got := runSeededWorkers(t, prob, s.make(), 600, seed, workers)
					if !got.Mapping.Equal(base.Mapping) {
						t.Errorf("%s/%s seed %d workers %d: mapping %v != sequential %v",
							s.name, obj, seed, workers, got.Mapping, base.Mapping)
					}
					if got.Score != base.Score {
						t.Errorf("%s/%s seed %d workers %d: score %+v != sequential %+v",
							s.name, obj, seed, workers, got.Score, base.Score)
					}
					if got.Evals != base.Evals {
						t.Errorf("%s/%s seed %d workers %d: evals %d != sequential %d",
							s.name, obj, seed, workers, got.Evals, base.Evals)
					}
				}
			}
		}
	}
}

// TestPMXIntoMatchesReference: the slab-writing pmxInto draws the same
// RNG values and produces the same child as the allocating map-based
// reference, across sizes and seeds.
func TestPMXIntoMatchesReference(t *testing.T) {
	for _, n := range []int{2, 5, 16, 64} {
		for seed := int64(1); seed <= 20; seed++ {
			gen := rand.New(rand.NewSource(seed * 31))
			a := make([]topo.TileID, n)
			b := make([]topo.TileID, n)
			for i, v := range gen.Perm(n) {
				a[i] = topo.TileID(v)
			}
			for i, v := range gen.Perm(n) {
				b[i] = topo.TileID(v)
			}
			rngRef := rand.New(rand.NewSource(seed))
			rngLive := rand.New(rand.NewSource(seed))
			want := pmx(rngRef, a, b)
			got := make([]topo.TileID, n)
			inSegment := make([]bool, n)
			posInA := make([]int, n)
			pmxInto(rngLive, a, b, got, inSegment, posInA)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d seed=%d: pmxInto %v != pmx %v (parents %v, %v)", n, seed, got, want, a, b)
				}
			}
			for i := range inSegment {
				if inSegment[i] {
					t.Fatalf("n=%d seed=%d: pmxInto left inSegment[%d] set", n, seed, i)
				}
			}
			if rngRef.Int63() != rngLive.Int63() {
				t.Fatalf("n=%d seed=%d: pmxInto consumed a different number of RNG draws", n, seed)
			}
		}
	}
}
