package search

import (
	"fmt"
	"math/rand"

	"phonocmap/internal/core"
	"phonocmap/internal/topo"
)

// GA is the paper's genetic algorithm: a fixed-size population of
// candidate mappings evolves through tournament selection, partially
// mapped crossover (PMX) and swap mutation, with elitism, until the
// evaluation budget is exhausted.
//
// Mappings of n tasks onto m >= n tiles are encoded as full permutations
// of the m tiles; the first n genes are the mapping and the remainder are
// phantom placements, so PMX and swap mutation preserve injectivity by
// construction.
//
// The search is generational in evaluation too: each generation's
// children are bred first (consuming the RNG) and then scored in one
// Context.EvaluateBatch call, so offspring evaluation parallelizes
// across eval workers while staying bit-identical to a sequential
// child-by-child loop. Both population generations live in a single
// reused slab, so breeding allocates nothing after setup.
type GA struct {
	// PopSize is the population size (paper: "fixed-sized population").
	PopSize int
	// Elite individuals survive unchanged each generation.
	Elite int
	// TournamentK is the tournament selection size.
	TournamentK int
	// CrossoverRate is the probability a child is produced by PMX rather
	// than cloning a parent.
	CrossoverRate float64
	// MutationRate is the probability a child undergoes one swap
	// mutation (repeated geometrically: after each applied swap another
	// follows with the same probability).
	MutationRate float64
}

// NewGA returns a GA with the default parameter set used in the
// experiments.
func NewGA() *GA {
	return &GA{
		PopSize:       48,
		Elite:         2,
		TournamentK:   3,
		CrossoverRate: 0.9,
		MutationRate:  0.4,
	}
}

// Name returns "ga".
func (g *GA) Name() string { return "ga" }

func (g *GA) validate() error {
	if g.PopSize < 2 {
		return fmt.Errorf("search: ga population must be >= 2, got %d", g.PopSize)
	}
	if g.Elite < 0 || g.Elite >= g.PopSize {
		return fmt.Errorf("search: ga elite %d out of range [0, %d)", g.Elite, g.PopSize)
	}
	if g.TournamentK < 1 {
		return fmt.Errorf("search: ga tournament size must be >= 1, got %d", g.TournamentK)
	}
	if g.CrossoverRate < 0 || g.CrossoverRate > 1 {
		return fmt.Errorf("search: ga crossover rate %v out of [0,1]", g.CrossoverRate)
	}
	if g.MutationRate < 0 || g.MutationRate > 1 {
		return fmt.Errorf("search: ga mutation rate %v out of [0,1]", g.MutationRate)
	}
	return nil
}

// individual is a full tile permutation plus its cached score.
type individual struct {
	perm  []topo.TileID
	score core.Score
	valid bool // score evaluated
}

// Search implements core.Searcher.
func (g *GA) Search(ctx *core.Context) error {
	if err := g.validate(); err != nil {
		return err
	}
	rng := ctx.Rng()
	numTasks := ctx.Problem().NumTasks()
	numTiles := ctx.Problem().NumTiles()

	// One slab backs both generations' permutations: pop owns the first
	// PopSize chunks, next the second, and the generational hand-over
	// swaps the slice headers wholesale. Children are bred by copying
	// into next's chunks, so no generation allocates after this setup —
	// the former per-child clonePerm/pmx allocations are gone (pinned by
	// BenchmarkGAAllocs).
	slab := make([]topo.TileID, 2*g.PopSize*numTiles)
	pop := make([]individual, g.PopSize)
	next := make([]individual, g.PopSize)
	for i := range pop {
		pop[i].perm = slab[i*numTiles : (i+1)*numTiles : (i+1)*numTiles]
		ni := g.PopSize + i
		next[i].perm = slab[ni*numTiles : (ni+1)*numTiles : (ni+1)*numTiles]
	}
	// pmxInto scratch, indexed by gene value.
	inSegment := make([]bool, numTiles)
	posInA := make([]int, numTiles)
	// Batch scratch: the generation members awaiting scores, in breeding
	// order, and their indices.
	cands := make([]core.Mapping, 0, g.PopSize)
	candIdx := make([]int, 0, g.PopSize)

	// flush scores the pending candidates in one batch and writes the
	// results back. full is false when the budget ran out mid-batch: the
	// scored prefix was accounted exactly as a sequential loop would
	// have, and the search is over.
	flush := func(gen []individual) (full bool, err error) {
		if len(cands) == 0 {
			return true, nil
		}
		scores, n, err := ctx.EvaluateBatch(cands)
		if err != nil {
			return false, err
		}
		for k := 0; k < n; k++ {
			gen[candIdx[k]].score = scores[k]
			gen[candIdx[k]].valid = true
		}
		full = n == len(cands)
		cands, candIdx = cands[:0], candIdx[:0]
		return full, nil
	}

	for i := range pop {
		for j, v := range rng.Perm(numTiles) {
			pop[i].perm[j] = topo.TileID(v)
		}
		cands = append(cands, core.Mapping(pop[i].perm[:numTasks]))
		candIdx = append(candIdx, i)
	}
	if full, err := flush(pop); err != nil {
		return err
	} else if !full {
		return nil // budget exhausted during initialization
	}

	tournament := func() *individual {
		best := &pop[rng.Intn(len(pop))]
		for i := 1; i < g.TournamentK; i++ {
			c := &pop[rng.Intn(len(pop))]
			if c.score.Better(best.score) {
				best = c
			}
		}
		return best
	}

	for !ctx.Exhausted() {
		spentBefore := ctx.Evals()
		// Elitism: carry the best individuals over unchanged.
		sortByScore(pop)
		for i := 0; i < g.Elite; i++ {
			copy(next[i].perm, pop[i].perm)
			next[i].score, next[i].valid = pop[i].score, true
		}
		for i := g.Elite; i < g.PopSize; i++ {
			p1, p2 := tournament(), tournament()
			child := &next[i]
			if rng.Float64() < g.CrossoverRate {
				pmxInto(rng, p1.perm, p2.perm, child.perm, inSegment, posInA)
				child.valid = false
			} else {
				// A clone starts as an exact copy of its parent and
				// inherits the parent's cached score: re-evaluating it
				// would burn a budget unit for no information — an
				// effective-budget leak under the equal-budget protocol.
				// Mutation below flips valid, forcing an evaluation only
				// when the mapping actually changed.
				copy(child.perm, p1.perm)
				child.score, child.valid = p1.score, true
			}
			for rng.Float64() < g.MutationRate {
				x, y := rng.Intn(numTiles), rng.Intn(numTiles)
				child.perm[x], child.perm[y] = child.perm[y], child.perm[x]
				child.valid = false
			}
			if !child.valid {
				cands = append(cands, core.Mapping(child.perm[:numTasks]))
				candIdx = append(candIdx, i)
			}
		}
		if full, err := flush(next); err != nil {
			return err
		} else if !full {
			return nil
		}
		pop, next = next, pop
		if ctx.Evals() == spentBefore && g.CrossoverRate == 0 && g.MutationRate == 0 {
			// Every child was an unmutated clone and the rates guarantee
			// every future generation will be too: with score inheritance
			// such generations are free, so without this stop the loop
			// would spin forever. A free generation under positive rates
			// is just luck — later generations can still mutate, so the
			// search keeps its budget and continues.
			return nil
		}
	}
	return nil
}

func sortByScore(pop []individual) {
	// Insertion sort: populations are small and mostly sorted across
	// generations.
	for i := 1; i < len(pop); i++ {
		for j := i; j > 0 && pop[j].score.Better(pop[j-1].score); j-- {
			pop[j], pop[j-1] = pop[j-1], pop[j]
		}
	}
}

// pmxInto is partially mapped crossover over permutations: a random
// segment of parent a is copied verbatim, and the remaining positions
// take parent b's genes, remapped through the segment's correspondence
// so the result stays a permutation. The child is written into dst;
// inSegment and posInA are caller-owned scratch of length len(a),
// indexed by gene value (inSegment must arrive all-false and is left
// all-false). RNG draws and output are identical to the allocating
// map-based form (pinned by TestPMXIntoMatchesReference).
//
//phonocmap:noalloc
func pmxInto(rng *rand.Rand, a, b, dst []topo.TileID, inSegment []bool, posInA []int) {
	n := len(a)
	lo := rng.Intn(n)
	hi := rng.Intn(n)
	if lo > hi {
		lo, hi = hi, lo
	}
	for i, v := range a {
		posInA[v] = i
	}
	for i := lo; i <= hi; i++ {
		dst[i] = a[i]
		inSegment[a[i]] = true
	}
	for i := 0; i < n; i++ {
		if i >= lo && i <= hi {
			continue
		}
		// The gene of b collides with the segment: follow the
		// correspondence chain until it resolves outside it.
		v := b[i]
		for inSegment[v] {
			v = b[posInA[v]]
		}
		dst[i] = v
	}
	for i := lo; i <= hi; i++ {
		inSegment[a[i]] = false
	}
}
