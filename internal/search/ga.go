package search

import (
	"fmt"
	"math/rand"

	"phonocmap/internal/core"
	"phonocmap/internal/topo"
)

// GA is the paper's genetic algorithm: a fixed-size population of
// candidate mappings evolves through tournament selection, partially
// mapped crossover (PMX) and swap mutation, with elitism, until the
// evaluation budget is exhausted.
//
// Mappings of n tasks onto m >= n tiles are encoded as full permutations
// of the m tiles; the first n genes are the mapping and the remainder are
// phantom placements, so PMX and swap mutation preserve injectivity by
// construction.
type GA struct {
	// PopSize is the population size (paper: "fixed-sized population").
	PopSize int
	// Elite individuals survive unchanged each generation.
	Elite int
	// TournamentK is the tournament selection size.
	TournamentK int
	// CrossoverRate is the probability a child is produced by PMX rather
	// than cloning a parent.
	CrossoverRate float64
	// MutationRate is the probability a child undergoes one swap
	// mutation (repeated geometrically: after each applied swap another
	// follows with the same probability).
	MutationRate float64
}

// NewGA returns a GA with the default parameter set used in the
// experiments.
func NewGA() *GA {
	return &GA{
		PopSize:       48,
		Elite:         2,
		TournamentK:   3,
		CrossoverRate: 0.9,
		MutationRate:  0.4,
	}
}

// Name returns "ga".
func (g *GA) Name() string { return "ga" }

func (g *GA) validate() error {
	if g.PopSize < 2 {
		return fmt.Errorf("search: ga population must be >= 2, got %d", g.PopSize)
	}
	if g.Elite < 0 || g.Elite >= g.PopSize {
		return fmt.Errorf("search: ga elite %d out of range [0, %d)", g.Elite, g.PopSize)
	}
	if g.TournamentK < 1 {
		return fmt.Errorf("search: ga tournament size must be >= 1, got %d", g.TournamentK)
	}
	if g.CrossoverRate < 0 || g.CrossoverRate > 1 {
		return fmt.Errorf("search: ga crossover rate %v out of [0,1]", g.CrossoverRate)
	}
	if g.MutationRate < 0 || g.MutationRate > 1 {
		return fmt.Errorf("search: ga mutation rate %v out of [0,1]", g.MutationRate)
	}
	return nil
}

// individual is a full tile permutation plus its cached score.
type individual struct {
	perm  []topo.TileID
	score core.Score
	valid bool // score evaluated
}

// Search implements core.Searcher.
func (g *GA) Search(ctx *core.Context) error {
	if err := g.validate(); err != nil {
		return err
	}
	rng := ctx.Rng()
	numTasks := ctx.Problem().NumTasks()
	numTiles := ctx.Problem().NumTiles()

	newIndividual := func() individual {
		perm := make([]topo.TileID, numTiles)
		for i, v := range rng.Perm(numTiles) {
			perm[i] = topo.TileID(v)
		}
		return individual{perm: perm}
	}
	// viaDelta routes an individual through the incremental engine
	// (ctx.EvaluateVia) instead of a full evaluation: used for the
	// mutation-only children, which differ from an evaluated parent by a
	// handful of swaps, so the engine re-scores only the touched edges.
	// Crossover offspring recombine two parents and resemble neither, so
	// they keep the full evaluation. Both paths produce bit-identical
	// scores and spend exactly one budget unit.
	evaluate := func(ind *individual, viaDelta bool) (bool, error) {
		if ind.valid {
			return true, nil
		}
		var s core.Score
		var ok bool
		var err error
		if viaDelta {
			s, ok, err = ctx.EvaluateVia(core.Mapping(ind.perm[:numTasks]))
		} else {
			s, ok, err = ctx.Evaluate(core.Mapping(ind.perm[:numTasks]))
		}
		if err != nil || !ok {
			return ok, err
		}
		ind.score, ind.valid = s, true
		return true, nil
	}

	pop := make([]individual, g.PopSize)
	for i := range pop {
		pop[i] = newIndividual()
		if ok, err := evaluate(&pop[i], false); err != nil {
			return err
		} else if !ok {
			return nil // budget exhausted during initialization
		}
	}

	tournament := func() *individual {
		best := &pop[rng.Intn(len(pop))]
		for i := 1; i < g.TournamentK; i++ {
			c := &pop[rng.Intn(len(pop))]
			if c.score.Better(best.score) {
				best = c
			}
		}
		return best
	}

	next := make([]individual, 0, g.PopSize)
	for !ctx.Exhausted() {
		spentBefore := ctx.Evals()
		next = next[:0]
		// Elitism: carry the best individuals over unchanged.
		sortByScore(pop)
		for i := 0; i < g.Elite; i++ {
			elite := individual{perm: clonePerm(pop[i].perm), score: pop[i].score, valid: true}
			next = append(next, elite)
		}
		for len(next) < g.PopSize {
			p1, p2 := tournament(), tournament()
			var child individual
			viaDelta := false
			if rng.Float64() < g.CrossoverRate {
				child = individual{perm: pmx(rng, p1.perm, p2.perm)}
			} else {
				// A clone starts as an exact copy of its parent and
				// inherits the parent's cached score: re-evaluating it
				// would burn a budget unit for no information — an
				// effective-budget leak under the equal-budget protocol.
				// Mutation below flips valid, forcing an evaluation only
				// when the mapping actually changed.
				child = individual{perm: clonePerm(p1.perm), score: p1.score, valid: true}
				viaDelta = true // a mutated clone is a short swap chain
			}
			for rng.Float64() < g.MutationRate {
				i, j := rng.Intn(numTiles), rng.Intn(numTiles)
				child.perm[i], child.perm[j] = child.perm[j], child.perm[i]
				child.valid = false
			}
			if !child.valid {
				if ok, err := evaluate(&child, viaDelta); err != nil {
					return err
				} else if !ok {
					return nil
				}
			}
			next = append(next, child)
		}
		pop, next = next, pop
		if ctx.Evals() == spentBefore && g.CrossoverRate == 0 && g.MutationRate == 0 {
			// Every child was an unmutated clone and the rates guarantee
			// every future generation will be too: with score inheritance
			// such generations are free, so without this stop the loop
			// would spin forever. A free generation under positive rates
			// is just luck — later generations can still mutate, so the
			// search keeps its budget and continues.
			return nil
		}
	}
	return nil
}

func clonePerm(p []topo.TileID) []topo.TileID {
	c := make([]topo.TileID, len(p))
	copy(c, p)
	return c
}

func sortByScore(pop []individual) {
	// Insertion sort: populations are small and mostly sorted across
	// generations.
	for i := 1; i < len(pop); i++ {
		for j := i; j > 0 && pop[j].score.Better(pop[j-1].score); j-- {
			pop[j], pop[j-1] = pop[j-1], pop[j]
		}
	}
}

// pmx is partially mapped crossover over permutations: a random segment
// of parent a is copied verbatim, and the remaining positions take parent
// b's genes, remapped through the segment's correspondence so the result
// stays a permutation.
func pmx(rng *rand.Rand, a, b []topo.TileID) []topo.TileID {
	n := len(a)
	child := make([]topo.TileID, n)
	lo := rng.Intn(n)
	hi := rng.Intn(n)
	if lo > hi {
		lo, hi = hi, lo
	}
	inSegment := make(map[topo.TileID]bool, hi-lo+1)
	for i := lo; i <= hi; i++ {
		child[i] = a[i]
		inSegment[a[i]] = true
	}
	// mapTo[x] answers: the gene x of b collides with the segment; which
	// gene does the correspondence chain resolve it to?
	posInA := make(map[topo.TileID]int, n)
	for i, v := range a {
		posInA[v] = i
	}
	for i := 0; i < n; i++ {
		if i >= lo && i <= hi {
			continue
		}
		v := b[i]
		for inSegment[v] {
			v = b[posInA[v]]
		}
		child[i] = v
	}
	return child
}
