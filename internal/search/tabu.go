package search

import (
	"fmt"

	"phonocmap/internal/core"
)

// Tabu is tabu search over the swap-move neighborhood: each iteration
// ranks the full admitted-move list (like R-PBLA) but applies the best
// non-tabu move even when it is uphill, keeping recently used moves in a
// tabu list to avoid cycling. An aspiration criterion overrides the tabu
// status of moves that would improve on the global incumbent.
type Tabu struct {
	// Tenure is the number of iterations a move stays tabu; 0 picks a
	// problem-sized default (number of tasks).
	Tenure int
}

// NewTabu returns a tabu search with defaults.
func NewTabu() *Tabu { return &Tabu{} }

// Name returns "tabu".
func (t *Tabu) Name() string { return "tabu" }

// Search implements core.Searcher.
func (t *Tabu) Search(ctx *core.Context) error {
	if t.Tenure < 0 {
		return fmt.Errorf("search: tabu tenure must be >= 0, got %d", t.Tenure)
	}
	tenure := t.Tenure
	if tenure == 0 {
		tenure = ctx.Problem().NumTasks()
	}
	numTiles := ctx.Problem().NumTiles()

	// Seat the incremental session on the random start (one budget unit,
	// exactly like the full evaluation it replaces); every subsequent move
	// in the ranking rounds is a delta evaluation.
	cur := ctx.RandomMapping()
	if _, ok, err := ctx.StartSwaps(cur); err != nil || !ok {
		return err
	}
	_, bestScore, _ := ctx.Best()
	moves := admittedMoves(ctx.SwapSession().TaskAt, numTiles)
	expires := make(map[move]int, len(moves))
	var ranked []rankedMove

	for iter := 0; !ctx.Exhausted(); iter++ {
		var err error
		var full bool
		ranked, full, err = rankMoves(ctx, moves, ranked)
		if err != nil {
			return err
		}
		if len(ranked) == 0 {
			return nil
		}
		applied := false
		for _, rm := range ranked {
			tabu := expires[rm.m] > iter
			aspire := rm.score.Better(bestScore)
			if tabu && !aspire {
				continue
			}
			// Apply the winner without spending budget — its score was
			// already paid for during the ranking round.
			if err := ctx.ApplySwap(rm.m.a, rm.m.b); err != nil {
				return err
			}
			expires[rm.m] = iter + tenure
			if rm.score.Better(bestScore) {
				bestScore = rm.score
			}
			applied = true
			break
		}
		if !applied {
			// Every move tabu and none aspires: age the list by clearing
			// the oldest entries (cheap approximation: drop all).
			for k := range expires {
				delete(expires, k)
			}
		}
		if !full {
			return nil
		}
	}
	return nil
}
