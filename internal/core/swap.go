package core

import (
	"fmt"

	"phonocmap/internal/analysis"
	"phonocmap/internal/topo"
)

// SwapSession is the incremental counterpart of Problem.Evaluate for
// searchers that move through the swap neighborhood. It owns a mapping, a
// tile-occupancy view and an analysis.Incremental seated on the induced
// communication set; swapping two tiles re-evaluates only the CG edges
// incident to the two moved tasks (plus the communications they share
// elements with) instead of the whole application.
//
// Scores are bit-for-bit identical to Problem.Evaluate on the same
// mapping, for all three objectives — the session exists to make
// evaluations cheaper, never different.
//
// The evaluate-then-decide protocol mirrors how swap searchers think:
// EvaluateSwap applies a tentative swap and scores it; the caller then
// either Commit()s (keep the move) or Revert()s (restore the previous
// state exactly). A session is single-tentative: resolve each swap before
// the next call. Like Problem, a session is not safe for concurrent use —
// but sibling sessions of the same Problem may run concurrently with each
// other: a session reads only the problem's immutable data (edges,
// incidence lists, objective) and the immutable network, never the
// problem's own evaluator scratch. SwapSessionPool builds on this.
type SwapSession struct {
	prob *Problem
	inc  *analysis.Incremental

	m      Mapping // current mapping (tentative swap included)
	taskOf []int   // tile -> task index, -1 when free
	score  Score

	pending   bool // a tentative swap awaits Commit/Revert
	pa, pb    topo.TileID
	prevScore Score

	// scratch for the edge-delta mapper
	changed    []int
	newComms   []analysis.Communication
	edgeSeen   []bool
	reseatPrev Mapping // pre-Reseat mapping, for error restoration
	seenTiles  []bool  // Reseat validation scratch
}

// NewSwapSession evaluates m in full through the incremental engine and
// returns a session seated on it. The mapping is copied.
func (p *Problem) NewSwapSession(m Mapping) (*SwapSession, error) {
	if len(m) != p.app.NumTasks() {
		return nil, fmt.Errorf("core: mapping covers %d tasks, app has %d", len(m), p.app.NumTasks())
	}
	if err := m.Validate(p.nw.NumTiles()); err != nil {
		return nil, err
	}
	ss := &SwapSession{
		prob:      p,
		inc:       analysis.NewIncremental(p.nw),
		m:         m.Clone(),
		taskOf:    make([]int, p.nw.NumTiles()),
		edgeSeen:  make([]bool, len(p.edges)),
		seenTiles: make([]bool, p.nw.NumTiles()),
	}
	for t := range ss.taskOf {
		ss.taskOf[t] = -1
	}
	for task, tile := range ss.m {
		ss.taskOf[tile] = task
	}
	comms := make([]analysis.Communication, len(p.edges))
	for i, e := range p.edges {
		comms[i] = analysis.Communication{Src: ss.m[e.Src], Dst: ss.m[e.Dst]}
	}
	var res analysis.Result
	var err error
	if p.obj == MinimizeWeightedLoss {
		res, err = ss.inc.InitWeighted(comms, p.weights)
	} else {
		res, err = ss.inc.Init(comms)
	}
	if err != nil {
		return nil, err
	}
	if ss.score, err = p.scoreFrom(res); err != nil {
		return nil, err
	}
	return ss, nil
}

// Problem returns the problem the session evaluates against.
func (ss *SwapSession) Problem() *Problem { return ss.prob }

// Release returns the session's incremental engine to the analysis
// package's buffer pool, so the next session stood up anywhere in the
// process reuses its occupancy map and accumulators instead of
// allocating fresh ones. The session must not be used afterwards.
func (ss *SwapSession) Release() {
	if ss.inc != nil {
		ss.inc.Release()
		ss.inc = nil
	}
}

// Score returns the score of the current (tentative included) mapping.
func (ss *SwapSession) Score() Score { return ss.score }

// Mapping returns the session's current mapping. The slice is the
// session's own state — callers must Clone it to retain it across moves.
func (ss *SwapSession) Mapping() Mapping { return ss.m }

// TaskAt returns the task hosted on a tile, or -1 when the tile is free
// or out of range.
func (ss *SwapSession) TaskAt(tile topo.TileID) int {
	if tile < 0 || int(tile) >= len(ss.taskOf) {
		return -1
	}
	return ss.taskOf[tile]
}

// Pending reports whether a tentative swap awaits Commit or Revert.
func (ss *SwapSession) Pending() bool { return ss.pending }

// EvaluateSwap tentatively exchanges the contents of two tiles (tasks or
// emptiness) and returns the score of the resulting mapping, touching
// only the communications the swap changes. Resolve the move with Commit
// or Revert before the next call. Swapping two free tiles (or a tile
//
// with itself) is a legal zero-delta evaluation of the unchanged mapping.
//
//phonocmap:noalloc
func (ss *SwapSession) EvaluateSwap(a, b topo.TileID) (Score, error) {
	if ss.pending {
		return Score{}, fmt.Errorf("core: unresolved tentative swap (%d,%d); Commit or Revert first", ss.pa, ss.pb)
	}
	n := len(ss.taskOf)
	if a < 0 || int(a) >= n || b < 0 || int(b) >= n {
		return Score{}, fmt.Errorf("core: swap tiles (%d,%d) out of range [0,%d)", a, b, n)
	}
	ss.applySwap(a, b)
	res, err := ss.inc.ApplyDelta(ss.collectDelta(a, b))
	if err != nil {
		ss.applySwap(a, b) // restore the mapping view
		return Score{}, err
	}
	s, err := ss.prob.scoreFrom(res)
	if err != nil {
		// NaN cost: physically impossible on a valid mapping, but keep the
		// session consistent anyway.
		ss.applySwap(a, b)
		if _, uerr := ss.inc.Undo(); uerr != nil {
			return Score{}, fmt.Errorf("%w (undo failed: %v)", err, uerr)
		}
		return Score{}, err
	}
	ss.pending = true
	ss.pa, ss.pb = a, b
	ss.prevScore = ss.score
	ss.score = s
	return s, nil
}

// Commit keeps the tentative swap.
func (ss *SwapSession) Commit() {
	ss.pending = false
}

// Revert undoes the tentative swap, restoring mapping and cached physics
//
// to their exact previous state.
//
//phonocmap:noalloc
func (ss *SwapSession) Revert() error {
	if !ss.pending {
		return fmt.Errorf("core: no tentative swap to revert")
	}
	if _, err := ss.inc.Undo(); err != nil {
		return err
	}
	ss.applySwap(ss.pa, ss.pb)
	ss.score = ss.prevScore
	ss.pending = false
	return nil
}

// Reseat moves the session onto an arbitrary valid mapping, evaluating it
// by delta from the current one: only the edges incident to tasks whose
// tile changed are re-evaluated. The move is committed immediately (no
// Revert). Cost degrades gracefully to a full evaluation when the two
//
// mappings share nothing.
//
//phonocmap:noalloc
func (ss *SwapSession) Reseat(m Mapping) (Score, error) {
	if ss.pending {
		return Score{}, fmt.Errorf("core: unresolved tentative swap (%d,%d); Commit or Revert first", ss.pa, ss.pb)
	}
	if len(m) != len(ss.m) {
		return Score{}, fmt.Errorf("core: mapping covers %d tasks, app has %d", len(m), len(ss.m))
	}
	if err := m.validate(len(ss.taskOf), ss.seenTiles); err != nil {
		return Score{}, err
	}
	ss.changed = ss.changed[:0]
	ss.newComms = ss.newComms[:0]
	moved := false
	for task, tile := range m {
		if ss.m[task] != tile {
			moved = true
			break
		}
	}
	if !moved {
		return ss.score, nil
	}
	ss.reseatPrev = append(ss.reseatPrev[:0], ss.m...)
	// Re-seat the occupancy view, then collect the edges whose endpoints
	// moved.
	for task, tile := range ss.m {
		if m[task] != tile {
			ss.taskOf[tile] = -1
		}
	}
	for task, tile := range m {
		if ss.m[task] != tile {
			ss.taskOf[tile] = task
			for _, ei := range ss.prob.incident[task] {
				if !ss.edgeSeen[ei] {
					ss.edgeSeen[ei] = true
					ss.changed = append(ss.changed, ei)
				}
			}
		}
	}
	copy(ss.m, m)
	for _, ei := range ss.changed {
		ss.edgeSeen[ei] = false
		e := ss.prob.edges[ei]
		ss.newComms = append(ss.newComms, analysis.Communication{Src: ss.m[e.Src], Dst: ss.m[e.Dst]})
	}
	res, err := ss.inc.ApplyDelta(ss.changed, ss.newComms)
	if err != nil {
		ss.restoreMapping(ss.reseatPrev)
		return Score{}, err
	}
	s, err := ss.prob.scoreFrom(res)
	if err != nil {
		// Keep the session consistent even on a (physically impossible)
		// NaN cost, like EvaluateSwap.
		ss.restoreMapping(ss.reseatPrev)
		if _, uerr := ss.inc.Undo(); uerr != nil {
			return Score{}, fmt.Errorf("%w (undo failed: %v)", err, uerr)
		}
		return Score{}, err
	}
	ss.score = s
	return s, nil
}

// restoreMapping rolls the mapping and occupancy view back to old after
// a failed Reseat (the incremental engine was left on the old state by
// its own error handling or an explicit Undo).
func (ss *SwapSession) restoreMapping(old Mapping) {
	for task, tile := range ss.m {
		if old[task] != tile {
			ss.taskOf[tile] = -1
		}
	}
	for task, tile := range old {
		if ss.m[task] != tile {
			ss.taskOf[tile] = task
		}
	}
	copy(ss.m, old)
}

// applySwap exchanges the contents of two tiles in the mapping and the
//
// occupancy view (its own inverse).
//
//phonocmap:noalloc
func (ss *SwapSession) applySwap(a, b topo.TileID) {
	ta, tb := ss.taskOf[a], ss.taskOf[b]
	ss.taskOf[a], ss.taskOf[b] = tb, ta
	if ta >= 0 {
		ss.m[ta] = b
	}
	if tb >= 0 {
		ss.m[tb] = a
	}
}

// collectDelta lists the CG edges incident to the tasks now on tiles a
// and b (post-swap) and their induced communications under the current
//
// mapping. An edge between the two swapped tasks appears once.
//
//phonocmap:noalloc
func (ss *SwapSession) collectDelta(a, b topo.TileID) ([]int, []analysis.Communication) {
	ss.changed = ss.changed[:0]
	ss.newComms = ss.newComms[:0]
	for _, t := range [2]int{ss.taskOf[a], ss.taskOf[b]} {
		if t < 0 {
			continue
		}
		for _, ei := range ss.prob.incident[t] {
			if !ss.edgeSeen[ei] {
				ss.edgeSeen[ei] = true
				ss.changed = append(ss.changed, ei)
			}
		}
	}
	for _, ei := range ss.changed {
		ss.edgeSeen[ei] = false
		e := ss.prob.edges[ei]
		ss.newComms = append(ss.newComms, analysis.Communication{Src: ss.m[e.Src], Dst: ss.m[e.Dst]})
	}
	return ss.changed, ss.newComms
}
