package core

import (
	"context"
	"sync"
	"testing"
)

// countingSearcher evaluates random mappings until the context refuses,
// like RS, and lets tests observe how far it got.
type countingSearcher struct{ evals int }

func (c *countingSearcher) Name() string { return "counting" }

func (c *countingSearcher) Search(ctx *Context) error {
	for !ctx.Exhausted() {
		if _, ok, err := ctx.Evaluate(ctx.RandomMapping()); err != nil {
			return err
		} else if !ok {
			break
		}
		c.evals++
	}
	return nil
}

func TestRunCancelledMidway(t *testing.T) {
	prob := pipProblem(t, MaximizeSNR)
	cctx, cancel := context.WithCancel(context.Background())
	const budget = 10_000
	const stopAfter = 50
	ex, err := NewExploration(prob, Options{
		Budget:        budget,
		Seed:          1,
		Context:       cctx,
		ProgressEvery: 1,
		OnProgress: func(evals int, _ Score) {
			if evals >= stopAfter {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := &countingSearcher{}
	res, err := ex.Run(s)
	if err != nil {
		t.Fatalf("cancelled run with results should not error: %v", err)
	}
	if !res.Cancelled {
		t.Error("RunResult.Cancelled not set")
	}
	if res.Evals >= budget {
		t.Errorf("cancellation did not stop the run: %d evals of %d budget", res.Evals, budget)
	}
	if res.Evals < stopAfter {
		t.Errorf("run stopped before the cancellation point: %d evals", res.Evals)
	}
	if err := res.Mapping.Validate(prob.NumTiles()); err != nil {
		t.Errorf("partial result mapping invalid: %v", err)
	}
}

func TestRunCancelledBeforeStart(t *testing.T) {
	prob := pipProblem(t, MaximizeSNR)
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	ex, err := NewExploration(prob, Options{Budget: 100, Seed: 1, Context: cctx})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(&countingSearcher{}); err == nil {
		t.Fatal("pre-cancelled run with zero evaluations must error")
	}
}

func TestRunOnImproveAndProgress(t *testing.T) {
	prob := pipProblem(t, MaximizeSNR)
	var improvements, heartbeats int
	ex, err := NewExploration(prob, Options{
		Budget:        200,
		Seed:          1,
		ProgressEvery: 10,
		OnImprove:     func(int, Score) { improvements++ },
		OnProgress:    func(int, Score) { heartbeats++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(&countingSearcher{}); err != nil {
		t.Fatal(err)
	}
	if improvements == 0 {
		t.Error("OnImprove never called")
	}
	// One call per stride plus the final completion report.
	if heartbeats != 200/10+1 {
		t.Errorf("OnProgress called %d times, want %d", heartbeats, 200/10+1)
	}
}

func TestRunParallelMatchesSequentialSeeds(t *testing.T) {
	prob := pipProblem(t, MaximizeSNR)
	const budget = 150
	seeds := SeedSequence(7, 4)

	// Sequential reference: one fresh Exploration per seed, like the
	// single-shot Optimize facade.
	var seqBest Score
	var have bool
	for _, seed := range seeds {
		ex, err := NewExploration(prob.Clone(), Options{Budget: budget, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		res, err := ex.Run(&countingSearcher{})
		if err != nil {
			t.Fatal(err)
		}
		if !have || res.Score.Better(seqBest) {
			seqBest = res.Score
			have = true
		}
	}

	factory := func() (Searcher, error) { return &countingSearcher{}, nil }
	best, all, err := RunParallel(prob, factory, ParallelOptions{
		Budget: budget, Seeds: seeds, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(seeds) {
		t.Fatalf("got %d island results, want %d", len(all), len(seeds))
	}
	if best.Score.Cost > seqBest.Cost {
		t.Errorf("parallel best %v worse than sequential best %v", best.Score.Cost, seqBest.Cost)
	}
	if best.Score.Cost != seqBest.Cost {
		t.Errorf("parallel best %v != sequential best %v (same seeds must reproduce)", best.Score.Cost, seqBest.Cost)
	}
	for _, r := range all {
		if err := r.Mapping.Validate(prob.NumTiles()); err != nil {
			t.Errorf("island %d mapping invalid: %v", r.Seed, err)
		}
		if r.Evals != budget {
			t.Errorf("island seed %d spent %d evals, want %d", r.Seed, r.Evals, budget)
		}
	}
}

func TestRunParallelDeterministicAcrossWorkerCounts(t *testing.T) {
	prob := pipProblem(t, MaximizeSNR)
	seeds := SeedSequence(3, 6)
	factory := func() (Searcher, error) { return &countingSearcher{}, nil }
	var ref RunResult
	for i, workers := range []int{1, 2, 6} {
		best, _, err := RunParallel(prob, factory, ParallelOptions{Budget: 120, Seeds: seeds, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = best
			continue
		}
		if best.Score != ref.Score || best.Seed != ref.Seed || !best.Mapping.Equal(ref.Mapping) {
			t.Errorf("workers=%d result differs from workers=1", workers)
		}
	}
}

func TestRunParallelCancellation(t *testing.T) {
	prob := pipProblem(t, MaximizeSNR)
	cctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	factory := func() (Searcher, error) { return &countingSearcher{}, nil }
	best, _, err := RunParallel(prob, factory, ParallelOptions{
		Budget:        1_000_000,
		Seeds:         SeedSequence(1, 2),
		Workers:       2,
		Context:       cctx,
		ProgressEvery: 1,
		OnProgress: func(island, evals int, _ Score) {
			if evals >= 30 {
				once.Do(cancel)
			}
		},
	})
	if err != nil {
		t.Fatalf("cancelled islands run with results should not error: %v", err)
	}
	if !best.Cancelled {
		t.Error("best island result not marked Cancelled")
	}
	if best.Evals >= 1_000_000 {
		t.Error("cancellation did not stop the islands")
	}
}

func TestRunParallelValidation(t *testing.T) {
	prob := pipProblem(t, MaximizeSNR)
	factory := func() (Searcher, error) { return &countingSearcher{}, nil }
	if _, _, err := RunParallel(nil, factory, ParallelOptions{Budget: 10, Seeds: []int64{1}}); err == nil {
		t.Error("nil problem accepted")
	}
	if _, _, err := RunParallel(prob, nil, ParallelOptions{Budget: 10, Seeds: []int64{1}}); err == nil {
		t.Error("nil factory accepted")
	}
	if _, _, err := RunParallel(prob, factory, ParallelOptions{Budget: 10}); err == nil {
		t.Error("empty seed list accepted")
	}
	if _, _, err := RunParallel(prob, factory, ParallelOptions{Budget: 0, Seeds: []int64{1}}); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestSeedSequence(t *testing.T) {
	got := SeedSequence(5, 3)
	want := []int64{5, 6, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SeedSequence(5,3) = %v, want %v", got, want)
		}
	}
	if s := SeedSequence(0, 2); s[0] != 1 || s[1] != 2 {
		t.Errorf("zero base should default to 1, got %v", s)
	}
}
