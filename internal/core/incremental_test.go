package core

import (
	"math/rand"
	"testing"

	"phonocmap/internal/cg"
	"phonocmap/internal/network"
	"phonocmap/internal/photonic"
	"phonocmap/internal/route"
	"phonocmap/internal/router"
	"phonocmap/internal/topo"
)

func swapTestNet(t *testing.T, torus bool, w, h int) *network.Network {
	t.Helper()
	var g *topo.Grid
	var err error
	if torus {
		g, err = topo.NewTorus(w, h)
	} else {
		g, err = topo.NewMesh(w, h)
	}
	if err != nil {
		t.Fatal(err)
	}
	nw, err := network.New(g, router.Crux(), route.XY{}, photonic.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// TestSwapSessionMatchesFullEvaluation is the core-level differential
// proof: ≥1000 random swaps per objective, on mesh and torus, with a
// spare-tile mapping (so relocations onto free tiles are exercised too),
// asserting the incremental Score equals the full-evaluation Score to the
// last bit at every step — through commits, reverts and reseats.
func TestSwapSessionMatchesFullEvaluation(t *testing.T) {
	rngApp := rand.New(rand.NewSource(7))
	app, err := cg.RandomConnected(rngApp, 12, 40) // dense: 40 edges on 12 tasks
	if err != nil {
		t.Fatal(err)
	}
	for _, obj := range []Objective{MinimizeLoss, MaximizeSNR, MinimizeWeightedLoss} {
		for _, torus := range []bool{false, true} {
			name := obj.String() + "-mesh"
			if torus {
				name = obj.String() + "-torus"
			}
			t.Run(name, func(t *testing.T) {
				nw := swapTestNet(t, torus, 4, 4) // 16 tiles, 12 tasks: 4 spare
				prob, err := NewProblem(app, nw, obj)
				if err != nil {
					t.Fatal(err)
				}
				ref := prob.Clone()
				rng := rand.New(rand.NewSource(99))
				m, err := RandomMapping(rng, app.NumTasks(), nw.NumTiles())
				if err != nil {
					t.Fatal(err)
				}

				sess, err := prob.NewSwapSession(m)
				if err != nil {
					t.Fatal(err)
				}
				want, err := ref.Evaluate(m)
				if err != nil {
					t.Fatal(err)
				}
				if sess.Score() != want {
					t.Fatalf("init: session %+v != full %+v", sess.Score(), want)
				}

				cur := m.Clone()
				numTiles := nw.NumTiles()
				for step := 0; step < 1100; step++ {
					if step%97 == 96 {
						// Occasionally reseat on a fresh random mapping —
						// the multi-task delta path.
						fresh, err := RandomMapping(rng, app.NumTasks(), numTiles)
						if err != nil {
							t.Fatal(err)
						}
						got, err := sess.Reseat(fresh)
						if err != nil {
							t.Fatal(err)
						}
						want, err := ref.Evaluate(fresh)
						if err != nil {
							t.Fatal(err)
						}
						if got != want {
							t.Fatalf("step %d reseat: incremental %+v != full %+v", step, got, want)
						}
						cur = fresh.Clone()
						continue
					}

					a := topo.TileID(rng.Intn(numTiles))
					b := topo.TileID(rng.Intn(numTiles))
					got, err := sess.EvaluateSwap(a, b)
					if err != nil {
						t.Fatal(err)
					}
					swapped := cur.Clone()
					ta, tb := -1, -1
					for task, tile := range swapped {
						if tile == a {
							ta = task
						}
						if tile == b {
							tb = task
						}
					}
					if ta >= 0 {
						swapped[ta] = b
					}
					if tb >= 0 {
						swapped[tb] = a
					}
					want, err := ref.Evaluate(swapped)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Fatalf("step %d swap(%d,%d): incremental %+v != full %+v", step, a, b, got, want)
					}
					if rng.Intn(2) == 0 {
						sess.Commit()
						cur = swapped
					} else {
						if err := sess.Revert(); err != nil {
							t.Fatal(err)
						}
						// After revert, the session must still score the
						// pre-swap mapping.
						want, err := ref.Evaluate(cur)
						if err != nil {
							t.Fatal(err)
						}
						if sess.Score() != want {
							t.Fatalf("step %d revert: session %+v != full %+v", step, sess.Score(), want)
						}
					}
				}
			})
		}
	}
}

func TestSwapSessionProtocolErrors(t *testing.T) {
	prob := pipProblem(t, MaximizeSNR)
	rng := rand.New(rand.NewSource(1))
	m, err := RandomMapping(rng, prob.NumTasks(), prob.NumTiles())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := prob.NewSwapSession(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Revert(); err == nil {
		t.Error("Revert without a tentative swap should fail")
	}
	if _, err := sess.EvaluateSwap(-1, 0); err == nil {
		t.Error("out-of-range tile should fail")
	}
	if _, err := sess.EvaluateSwap(0, 1); err != nil {
		t.Fatal(err)
	}
	if !sess.Pending() {
		t.Error("Pending should be true after EvaluateSwap")
	}
	if _, err := sess.EvaluateSwap(1, 2); err == nil {
		t.Error("second EvaluateSwap with a pending move should fail")
	}
	if _, err := sess.Reseat(m); err == nil {
		t.Error("Reseat with a pending move should fail")
	}
	sess.Commit()
	if sess.Pending() {
		t.Error("Pending should be false after Commit")
	}
	if _, err := prob.NewSwapSession(Mapping{0, 0, 1}); err == nil {
		t.Error("invalid mapping should fail")
	}
	if _, err := prob.NewSwapSession(m[:2]); err == nil {
		t.Error("short mapping should fail")
	}
}

// TestContextSwapLedger: the Context-level incremental path spends
// budget, fires callbacks and tracks the incumbent exactly like Evaluate.
func TestContextSwapLedger(t *testing.T) {
	prob := pipProblem(t, MaximizeSNR)
	rng := rand.New(rand.NewSource(3))
	ctx, err := NewContext(prob, rng, 10)
	if err != nil {
		t.Fatal(err)
	}
	var evals, improves int
	ctx.OnEvaluate = func(Mapping, Score) { evals++ }
	ctx.OnImprove = func(int, Score) { improves++ }

	m, err := RandomMapping(rng, prob.NumTasks(), prob.NumTiles())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ctx.EvaluateSwap(0, 1); err == nil {
		t.Error("EvaluateSwap before StartSwaps should fail")
	}
	s0, ok, err := ctx.StartSwaps(m)
	if err != nil || !ok {
		t.Fatalf("StartSwaps: %v ok=%v", err, ok)
	}
	if ctx.Evals() != 1 || evals != 1 || improves != 1 {
		t.Fatalf("after StartSwaps: evals=%d cb=%d improves=%d", ctx.Evals(), evals, improves)
	}
	if best, bs, _ := ctx.Best(); !best.Equal(m) || bs != s0 {
		t.Fatalf("incumbent %v/%+v, want %v/%+v", best, bs, m, s0)
	}

	// ApplySwap costs no budget.
	if err := ctx.ApplySwap(0, 1); err != nil {
		t.Fatal(err)
	}
	if ctx.Evals() != 1 {
		t.Fatalf("ApplySwap spent budget: evals=%d", ctx.Evals())
	}

	// Exhaust the budget through swap evaluations; ok must flip to false
	// exactly when Evaluate would refuse.
	spent := ctx.Evals()
	for i := 0; ; i++ {
		a := topo.TileID(rng.Intn(prob.NumTiles()))
		b := topo.TileID(rng.Intn(prob.NumTiles()))
		_, ok, err := ctx.EvaluateSwap(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		ctx.CommitSwap()
		spent++
	}
	if spent != ctx.Budget() || ctx.Evals() != ctx.Budget() {
		t.Fatalf("spent %d, ledger %d, budget %d", spent, ctx.Evals(), ctx.Budget())
	}

	// The incumbent must be the best mapping seen, verified by full
	// evaluation on a fresh problem.
	best, bs, ok := ctx.Best()
	if !ok {
		t.Fatal("no incumbent")
	}
	check, err := prob.Clone().Evaluate(best)
	if err != nil {
		t.Fatal(err)
	}
	if check != bs {
		t.Fatalf("incumbent score %+v does not reproduce (%+v)", bs, check)
	}
}

// TestEvaluateViaMatchesEvaluate: the arbitrary-mapping delta path is
// bit-identical to Evaluate and shares the ledger.
func TestEvaluateViaMatchesEvaluate(t *testing.T) {
	prob := pipProblem(t, MinimizeLoss)
	ref := prob.Clone()
	rng := rand.New(rand.NewSource(5))
	ctx, err := NewContext(prob, rng, 200)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		m, err := RandomMapping(rng, prob.NumTasks(), prob.NumTiles())
		if err != nil {
			t.Fatal(err)
		}
		got, ok, err := ctx.EvaluateVia(m)
		if err != nil || !ok {
			t.Fatalf("EvaluateVia: %v ok=%v", err, ok)
		}
		want, err := ref.Evaluate(m)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("iter %d: via %+v != full %+v", i, got, want)
		}
	}
	if ctx.Evals() != 100 {
		t.Fatalf("EvaluateVia ledger: %d evals, want 100", ctx.Evals())
	}
}
