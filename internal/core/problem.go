package core

import (
	"fmt"
	"math"

	"phonocmap/internal/analysis"
	"phonocmap/internal/cg"
	"phonocmap/internal/network"
)

// Objective selects which worst-case physical metric the design space
// exploration optimizes (Section II-D.1).
type Objective uint8

const (
	// MinimizeLoss optimizes the worst-case insertion loss ILdB_wc
	// (Eq. 3): find the mapping whose worst communication loses the
	// least power.
	MinimizeLoss Objective = iota
	// MaximizeSNR optimizes the worst-case signal-to-noise ratio SNR_wc
	// (Eq. 4): find the mapping whose noisiest communication has the
	// highest SNR. This objective is holistic — it depends on the
	// placement of every task, not only the endpoint pair.
	MaximizeSNR
	// MinimizeWeightedLoss optimizes the bandwidth-weighted average
	// insertion loss — an energy-oriented extension objective: heavy
	// flows matter proportionally more than light ones, unlike the
	// worst-case objectives of the paper.
	MinimizeWeightedLoss
)

// String returns "loss", "snr" or "wloss".
func (o Objective) String() string {
	switch o {
	case MaximizeSNR:
		return "snr"
	case MinimizeWeightedLoss:
		return "wloss"
	default:
		return "loss"
	}
}

// ParseObjective converts "loss", "snr" or "wloss" to an Objective.
func ParseObjective(s string) (Objective, error) {
	switch s {
	case "loss":
		return MinimizeLoss, nil
	case "snr":
		return MaximizeSNR, nil
	case "wloss":
		return MinimizeWeightedLoss, nil
	default:
		return 0, fmt.Errorf("core: unknown objective %q (have loss, snr, wloss)", s)
	}
}

// Score is the evaluation of one mapping. Cost is the canonical
// minimization value used by all search algorithms: |ILdB_wc| for the
// loss objective and -SNR_wc for the SNR objective; lower is always
// better. The raw worst-case metrics ride along for reporting.
type Score struct {
	Cost        float64
	WorstLossDB float64
	WorstSNRDB  float64
	// AvgLossDB is the bandwidth-weighted mean insertion loss, populated
	// for the MinimizeWeightedLoss objective (0 otherwise).
	AvgLossDB float64
	Conflicts int
}

// Better reports whether s is strictly better (lower cost) than o.
func (s Score) Better(o Score) bool { return s.Cost < o.Cost }

// Problem is one mapping-problem instance: an application CG, a concrete
// photonic NoC, and an objective. A Problem owns an analysis evaluator
// and scratch buffers, so it is not safe for concurrent use; Clone
// produces independent instances for parallel search.
type Problem struct {
	app     *cg.Graph
	nw      *network.Network
	obj     Objective
	ev      *analysis.Evaluator
	edges   []cg.Edge
	comms   []analysis.Communication
	weights []float64 // bandwidth weights, MinimizeWeightedLoss only
	// incident[task] lists the indices of the CG edges the task is an
	// endpoint of — the communications a task-level move changes. Built
	// once; the swap-session delta mapper depends on it.
	incident [][]int
}

// NewProblem validates Eq. 2 (the application must fit the topology) and
// binds the pieces together.
func NewProblem(app *cg.Graph, nw *network.Network, obj Objective) (*Problem, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	if app.NumTasks() > nw.NumTiles() {
		return nil, fmt.Errorf("core: %s has %d tasks but %s has only %d tiles (Eq. 2)",
			app.Name(), app.NumTasks(), nw.String(), nw.NumTiles())
	}
	if app.NumEdges() == 0 {
		return nil, fmt.Errorf("core: %s has no communications to optimize", app.Name())
	}
	if obj != MinimizeLoss && obj != MaximizeSNR && obj != MinimizeWeightedLoss {
		return nil, fmt.Errorf("core: invalid objective %d", obj)
	}
	p := &Problem{
		app:   app,
		nw:    nw,
		obj:   obj,
		ev:    analysis.NewEvaluator(nw),
		edges: app.Edges(),
		comms: make([]analysis.Communication, app.NumEdges()),
	}
	p.incident = make([][]int, app.NumTasks())
	for i, e := range p.edges {
		p.incident[e.Src] = append(p.incident[e.Src], i)
		p.incident[e.Dst] = append(p.incident[e.Dst], i)
	}
	if obj == MinimizeWeightedLoss {
		p.weights = make([]float64, len(p.edges))
		for i, e := range p.edges {
			p.weights[i] = e.Bandwidth
		}
		sum := 0.0
		for _, w := range p.weights {
			sum += w
		}
		if sum <= 0 {
			return nil, fmt.Errorf("core: %s has zero total bandwidth; weighted objective undefined", app.Name())
		}
	}
	return p, nil
}

// Clone returns an independent Problem sharing the immutable app and
// network.
func (p *Problem) Clone() *Problem {
	cp, err := NewProblem(p.app, p.nw, p.obj)
	if err != nil {
		// The original validated; re-validation cannot fail.
		panic("core: clone of valid problem failed: " + err.Error())
	}
	return cp
}

// App returns the application graph.
func (p *Problem) App() *cg.Graph { return p.app }

// Network returns the photonic NoC instance.
func (p *Problem) Network() *network.Network { return p.nw }

// Objective returns the optimization objective.
func (p *Problem) Objective() Objective { return p.obj }

// NumTasks returns size(C).
func (p *Problem) NumTasks() int { return p.app.NumTasks() }

// NumTiles returns size(T).
func (p *Problem) NumTiles() int { return p.nw.NumTiles() }

// Evaluate scores a mapping: it expands every CG edge into the tile-pair
// communication induced by the mapping and runs the worst-case analysis.
// The mapping must satisfy Eqs. 5-6.
func (p *Problem) Evaluate(m Mapping) (Score, error) {
	if len(m) != p.app.NumTasks() {
		return Score{}, fmt.Errorf("core: mapping covers %d tasks, app has %d", len(m), p.app.NumTasks())
	}
	if err := m.Validate(p.nw.NumTiles()); err != nil {
		return Score{}, err
	}
	for i, e := range p.edges {
		p.comms[i] = analysis.Communication{Src: m[e.Src], Dst: m[e.Dst]}
	}
	var res analysis.Result
	var err error
	if p.obj == MinimizeWeightedLoss {
		res, err = p.ev.EvaluateWeighted(p.comms, p.weights)
	} else {
		res, err = p.ev.Evaluate(p.comms)
	}
	if err != nil {
		return Score{}, err
	}
	return p.scoreFrom(res)
}

// scoreFrom converts an analysis result into the objective's Score — the
// single place the Cost semantics live, shared by the full and the
// incremental evaluation paths so they cannot drift apart.
func (p *Problem) scoreFrom(res analysis.Result) (Score, error) {
	s := Score{
		WorstLossDB: res.WorstLossDB,
		WorstSNRDB:  res.WorstSNRDB,
		Conflicts:   res.Conflicts,
	}
	switch p.obj {
	case MinimizeLoss:
		s.Cost = -res.WorstLossDB // |loss| in dB
	case MaximizeSNR:
		s.Cost = -res.WorstSNRDB // maximize SNR == minimize its negation
	case MinimizeWeightedLoss:
		s.AvgLossDB = res.AvgLossDB
		s.Cost = -res.AvgLossDB // |weighted mean loss| in dB
	}
	if math.IsNaN(s.Cost) {
		return Score{}, fmt.Errorf("core: evaluation produced NaN cost")
	}
	return s, nil
}

// Details returns the per-communication breakdown of a mapping, in CG
// edge order, for reporting and plotting.
func (p *Problem) Details(m Mapping) (analysis.Result, []analysis.Detail, error) {
	if err := m.Validate(p.nw.NumTiles()); err != nil {
		return analysis.Result{}, nil, err
	}
	if len(m) != p.app.NumTasks() {
		return analysis.Result{}, nil, fmt.Errorf("core: mapping covers %d tasks, app has %d", len(m), p.app.NumTasks())
	}
	for i, e := range p.edges {
		p.comms[i] = analysis.Communication{Src: m[e.Src], Dst: m[e.Dst]}
	}
	return p.ev.Detailed(p.comms, nil)
}
