package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
)

// Searcher is a mapping optimization algorithm. Implementations draw all
// randomness from the context's RNG and spend evaluations through
// Context.Evaluate, which enforces the budget and tracks the incumbent;
// this is how the tool guarantees the paper's "same running time" fair
// comparison (equal evaluation budgets) across algorithms.
type Searcher interface {
	// Name identifies the algorithm, e.g. "rs", "ga", "rpbla".
	Name() string
	// Search runs until the context budget is exhausted (Evaluate
	// returns ok == false) or the algorithm converges. The incumbent is
	// read from the context afterwards, so Search needs no return value
	// beyond errors.
	Search(ctx *Context) error
}

// Context carries the problem, the randomness, the evaluation budget and
// the incumbent (best mapping found so far) through one optimization run.
type Context struct {
	prob      *Problem
	rng       *rand.Rand
	budget    int
	evals     int
	best      Mapping
	bestScore Score
	hasBest   bool
	// cancel, when non-nil, aborts the run early: once it is done,
	// Evaluate refuses further work exactly as if the budget had run out,
	// so every Searcher winds down through its normal exhaustion path.
	cancel context.Context
	// OnImprove, when non-nil, is called with the evaluation count and
	// new incumbent score each time the incumbent improves — used for
	// convergence traces.
	OnImprove func(evals int, s Score)
	// OnEvaluate, when non-nil, observes every evaluation (mapping and
	// score) regardless of improvement — used by multi-objective
	// archives such as ParetoFront. The mapping is only valid during the
	// callback; clone it to retain it.
	OnEvaluate func(m Mapping, s Score)
}

// NewContext prepares an optimization run with the given evaluation
// budget. Budgets must be positive.
func NewContext(prob *Problem, rng *rand.Rand, budget int) (*Context, error) {
	if prob == nil {
		return nil, fmt.Errorf("core: nil problem")
	}
	if rng == nil {
		return nil, fmt.Errorf("core: nil rng")
	}
	if budget <= 0 {
		return nil, fmt.Errorf("core: budget must be positive, got %d", budget)
	}
	return &Context{prob: prob, rng: rng, budget: budget}, nil
}

// Problem returns the problem under optimization.
func (c *Context) Problem() *Problem { return c.prob }

// Rng returns the run's random source.
func (c *Context) Rng() *rand.Rand { return c.rng }

// Budget returns the total evaluation budget.
func (c *Context) Budget() int { return c.budget }

// SetCancel attaches a cancellation context to the run. A nil ctx leaves
// the run uncancellable (the default).
func (c *Context) SetCancel(ctx context.Context) { c.cancel = ctx }

// Cancelled reports whether the run's cancellation context is done.
func (c *Context) Cancelled() bool {
	return c.cancel != nil && c.cancel.Err() != nil
}

// Evals returns the number of evaluations spent so far.
func (c *Context) Evals() int { return c.evals }

// Remaining returns the unspent budget.
func (c *Context) Remaining() int { return c.budget - c.evals }

// Exhausted reports whether the run is over: the budget is spent or the
// run has been cancelled.
func (c *Context) Exhausted() bool { return c.evals >= c.budget || c.Cancelled() }

// Evaluate scores a mapping, spending one unit of budget. ok is false —
// and the mapping is NOT evaluated — once the budget is exhausted or the
// run is cancelled. Invalid mappings surface as errors; algorithms are
// expected to produce only valid ones, so errors indicate bugs rather
// than search states.
func (c *Context) Evaluate(m Mapping) (Score, bool, error) {
	if c.Exhausted() {
		return Score{}, false, nil
	}
	s, err := c.prob.Evaluate(m)
	if err != nil {
		return Score{}, false, err
	}
	c.evals++
	if c.OnEvaluate != nil {
		c.OnEvaluate(m, s)
	}
	if !c.hasBest || s.Better(c.bestScore) {
		c.best = m.Clone()
		c.bestScore = s
		c.hasBest = true
		if c.OnImprove != nil {
			c.OnImprove(c.evals, s)
		}
	}
	return s, true, nil
}

// WithBudgetSlice runs f under a temporarily reduced budget: at most n
// further evaluations are allowed inside f, after which the original
// budget is restored (already-spent evaluations still count). It lets
// composite searchers run sub-algorithms on budget slices while sharing
// the incumbent and the evaluation ledger.
func (c *Context) WithBudgetSlice(n int, f func(*Context) error) error {
	if n < 0 {
		return fmt.Errorf("core: negative budget slice %d", n)
	}
	old := c.budget
	if limit := c.evals + n; limit < old {
		c.budget = limit
	}
	err := f(c)
	c.budget = old
	return err
}

// BestScore returns the incumbent score without cloning the mapping — a
// cheap read for progress reporting. ok is false when nothing has been
// evaluated yet.
func (c *Context) BestScore() (Score, bool) { return c.bestScore, c.hasBest }

// Best returns the incumbent mapping and score. ok is false when nothing
// has been evaluated yet.
func (c *Context) Best() (Mapping, Score, bool) {
	if !c.hasBest {
		return nil, Score{}, false
	}
	return c.best.Clone(), c.bestScore, true
}

// RandomMapping draws a fresh uniform mapping for this problem.
func (c *Context) RandomMapping() Mapping {
	m, err := RandomMapping(c.rng, c.prob.NumTasks(), c.prob.NumTiles())
	if err != nil {
		// NewProblem verified Eq. 2, so this cannot fail.
		panic("core: random mapping failed: " + err.Error())
	}
	return m
}

// InfCost is a sentinel cost worse than any real evaluation.
func InfCost() Score { return Score{Cost: math.Inf(1)} }
