package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"phonocmap/internal/topo"
)

// Searcher is a mapping optimization algorithm. Implementations draw all
// randomness from the context's RNG and spend evaluations through
// Context.Evaluate, which enforces the budget and tracks the incumbent;
// this is how the tool guarantees the paper's "same running time" fair
// comparison (equal evaluation budgets) across algorithms.
type Searcher interface {
	// Name identifies the algorithm, e.g. "rs", "ga", "rpbla".
	Name() string
	// Search runs until the context budget is exhausted (Evaluate
	// returns ok == false) or the algorithm converges. The incumbent is
	// read from the context afterwards, so Search needs no return value
	// beyond errors.
	Search(ctx *Context) error
}

// Context carries the problem, the randomness, the evaluation budget and
// the incumbent (best mapping found so far) through one optimization run.
type Context struct {
	prob      *Problem
	rng       *rand.Rand
	budget    int
	evals     int
	best      Mapping
	bestScore Score
	hasBest   bool
	// cancel, when non-nil, aborts the run early: once it is done,
	// Evaluate refuses further work exactly as if the budget had run out,
	// so every Searcher winds down through its normal exhaustion path.
	cancel context.Context
	// OnImprove, when non-nil, is called with the evaluation count and
	// new incumbent score each time the incumbent improves — used for
	// convergence traces.
	OnImprove func(evals int, s Score)
	// OnEvaluate, when non-nil, observes every evaluation (mapping and
	// score) regardless of improvement — used by multi-objective
	// archives such as ParetoFront. The mapping is only valid during the
	// callback; clone it to retain it.
	OnEvaluate func(m Mapping, s Score)
	// sess is the incremental swap session of the run, seated by
	// StartSwaps/AttachSwaps and driven by EvaluateSwap; nil until a
	// searcher opts into the incremental path.
	sess *SwapSession
	// evalWorkers, when > 0, overrides the process-wide default worker
	// count for EvaluateBatch (see SetEvalWorkers in batch.go).
	evalWorkers int
	// batchPool holds the per-worker sessions of EvaluateBatch, created
	// lazily on the first batch and released by Close.
	batchPool *SwapSessionPool
	// batchScores is EvaluateBatch's reusable result slab.
	batchScores []Score
}

// NewContext prepares an optimization run with the given evaluation
// budget. Budgets must be positive.
func NewContext(prob *Problem, rng *rand.Rand, budget int) (*Context, error) {
	if prob == nil {
		return nil, fmt.Errorf("core: nil problem")
	}
	if rng == nil {
		return nil, fmt.Errorf("core: nil rng")
	}
	if budget <= 0 {
		return nil, fmt.Errorf("core: budget must be positive, got %d", budget)
	}
	return &Context{prob: prob, rng: rng, budget: budget}, nil
}

// Problem returns the problem under optimization.
func (c *Context) Problem() *Problem { return c.prob }

// Rng returns the run's random source.
func (c *Context) Rng() *rand.Rand { return c.rng }

// Budget returns the total evaluation budget.
func (c *Context) Budget() int { return c.budget }

// SetCancel attaches a cancellation context to the run. A nil ctx leaves
// the run uncancellable (the default).
func (c *Context) SetCancel(ctx context.Context) { c.cancel = ctx }

// Cancelled reports whether the run's cancellation context is done.
func (c *Context) Cancelled() bool {
	return c.cancel != nil && c.cancel.Err() != nil
}

// Evals returns the number of evaluations spent so far.
func (c *Context) Evals() int { return c.evals }

// Remaining returns the unspent budget.
func (c *Context) Remaining() int { return c.budget - c.evals }

// Exhausted reports whether the run is over: the budget is spent or the
// run has been cancelled.
func (c *Context) Exhausted() bool { return c.evals >= c.budget || c.Cancelled() }

// Evaluate scores a mapping, spending one unit of budget. ok is false —
// and the mapping is NOT evaluated — once the budget is exhausted or the
// run is cancelled. Invalid mappings surface as errors; algorithms are
// expected to produce only valid ones, so errors indicate bugs rather
// than search states.
func (c *Context) Evaluate(m Mapping) (Score, bool, error) {
	if c.Exhausted() {
		return Score{}, false, nil
	}
	s, err := c.prob.Evaluate(m)
	if err != nil {
		return Score{}, false, err
	}
	c.account(m, s)
	return s, true, nil
}

// account spends one budget unit on an already-computed evaluation:
// callbacks fire and the incumbent updates exactly as in Evaluate, so
// the full and incremental paths share one ledger.
func (c *Context) account(m Mapping, s Score) {
	c.evals++
	if c.OnEvaluate != nil {
		c.OnEvaluate(m, s)
	}
	if !c.hasBest || s.Better(c.bestScore) {
		// The incumbent slab is reused across improvements (Best clones on
		// the way out), so a long run allocates for its best mapping once.
		c.best = append(c.best[:0], m...)
		c.bestScore = s
		c.hasBest = true
		if c.OnImprove != nil {
			c.OnImprove(c.evals, s)
		}
	}
}

// StartSwaps evaluates m through the incremental engine, seats the run's
// swap session on it and spends one budget unit — the incremental
// equivalent of Evaluate for the starting point of a swap searcher. The
// returned Score is bit-for-bit what Evaluate(m) would have produced.
func (c *Context) StartSwaps(m Mapping) (Score, bool, error) {
	if c.Exhausted() {
		return Score{}, false, nil
	}
	s, err := c.seatSwaps(m)
	if err != nil {
		return Score{}, false, err
	}
	c.account(m, s)
	return s, true, nil
}

// AttachSwaps seats the swap session on a mapping whose evaluation was
// already paid for (e.g. the incumbent, or the survivor of a calibration
// phase) without spending budget. Seating costs up to one evaluation's
// worth of CPU but keeps the evaluation ledger untouched.
func (c *Context) AttachSwaps(m Mapping) error {
	_, err := c.seatSwaps(m)
	return err
}

// seatSwaps places the session on m, reusing the existing session's
// buffers via Reseat when one is already seated (scores are bit-for-bit
// identical either way; Reseat just skips the re-allocation and the
// unchanged communications).
func (c *Context) seatSwaps(m Mapping) (Score, error) {
	if c.sess != nil && !c.sess.Pending() {
		return c.sess.Reseat(m)
	}
	sess, err := c.prob.NewSwapSession(m)
	if err != nil {
		return Score{}, err
	}
	c.sess = sess
	return sess.Score(), nil
}

// EvaluateSwap tentatively swaps the contents of two tiles of the
// session's mapping and scores the result, spending one budget unit like
// Evaluate but touching only the communications the swap changes. The
// caller must resolve the move with CommitSwap or RevertSwap before the
// next evaluation. ok is false — and the swap is NOT applied — once the
// budget is exhausted or the run cancelled.
func (c *Context) EvaluateSwap(a, b topo.TileID) (Score, bool, error) {
	if c.sess == nil {
		return Score{}, false, fmt.Errorf("core: EvaluateSwap without a session (call StartSwaps or AttachSwaps)")
	}
	if c.Exhausted() {
		return Score{}, false, nil
	}
	s, err := c.sess.EvaluateSwap(a, b)
	if err != nil {
		return Score{}, false, err
	}
	c.account(c.sess.Mapping(), s)
	return s, true, nil
}

// CommitSwap keeps the tentative swap of the session.
func (c *Context) CommitSwap() {
	if c.sess != nil {
		c.sess.Commit()
	}
}

// RevertSwap undoes the tentative swap of the session, restoring the
// exact previous state.
func (c *Context) RevertSwap() error {
	if c.sess == nil {
		return fmt.Errorf("core: RevertSwap without a session")
	}
	return c.sess.Revert()
}

// ApplySwap commits a swap whose score is already known from a previous
// EvaluateSwap/RevertSwap round, without spending budget — the
// incremental analogue of mutating a working mapping between rounds
// (tabu and R-PBLA apply the winner of a ranked round this way).
func (c *Context) ApplySwap(a, b topo.TileID) error {
	if c.sess == nil {
		return fmt.Errorf("core: ApplySwap without a session")
	}
	if _, err := c.sess.EvaluateSwap(a, b); err != nil {
		return err
	}
	c.sess.Commit()
	return nil
}

// EvaluateVia evaluates an arbitrary valid mapping through the
// incremental engine, spending one budget unit: the session reseats on m
// by delta from wherever it currently sits (seating itself in full on
// first use). Scores are bit-for-bit identical to Evaluate(m); cost is
// proportional to how much of the mapping changed. Used by searchers
// whose moves are close to — but not exactly — single swaps, e.g. GA
// mutation chains.
func (c *Context) EvaluateVia(m Mapping) (Score, bool, error) {
	if c.Exhausted() {
		return Score{}, false, nil
	}
	if c.sess == nil {
		return c.StartSwaps(m)
	}
	s, err := c.sess.Reseat(m)
	if err != nil {
		return Score{}, false, err
	}
	c.account(c.sess.Mapping(), s)
	return s, true, nil
}

// SwapSession exposes the seated session (nil before StartSwaps or
// AttachSwaps) for searchers that need its occupancy view.
func (c *Context) SwapSession() *SwapSession { return c.sess }

// WithBudgetSlice runs f under a temporarily reduced budget: at most n
// further evaluations are allowed inside f, after which the original
// budget is restored (already-spent evaluations still count). It lets
// composite searchers run sub-algorithms on budget slices while sharing
// the incumbent and the evaluation ledger.
func (c *Context) WithBudgetSlice(n int, f func(*Context) error) error {
	if n < 0 {
		return fmt.Errorf("core: negative budget slice %d", n)
	}
	old := c.budget
	if limit := c.evals + n; limit < old {
		c.budget = limit
	}
	err := f(c)
	c.budget = old
	return err
}

// BestScore returns the incumbent score without cloning the mapping — a
// cheap read for progress reporting. ok is false when nothing has been
// evaluated yet.
func (c *Context) BestScore() (Score, bool) { return c.bestScore, c.hasBest }

// Best returns the incumbent mapping and score. ok is false when nothing
// has been evaluated yet.
func (c *Context) Best() (Mapping, Score, bool) {
	if !c.hasBest {
		return nil, Score{}, false
	}
	return c.best.Clone(), c.bestScore, true
}

// RandomMapping draws a fresh uniform mapping for this problem.
func (c *Context) RandomMapping() Mapping {
	m, err := RandomMapping(c.rng, c.prob.NumTasks(), c.prob.NumTiles())
	if err != nil {
		// NewProblem verified Eq. 2, so this cannot fail.
		panic("core: random mapping failed: " + err.Error())
	}
	return m
}

// InfCost is a sentinel cost worse than any real evaluation.
func InfCost() Score { return Score{Cost: math.Inf(1)} }
