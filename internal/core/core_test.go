package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"phonocmap/internal/cg"
	"phonocmap/internal/network"
	"phonocmap/internal/photonic"
	"phonocmap/internal/route"
	"phonocmap/internal/router"
	"phonocmap/internal/topo"
)

func testNet(t *testing.T, w, h int) *network.Network {
	t.Helper()
	g, err := topo.NewMesh(w, h)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := network.New(g, router.Crux(), route.XY{}, photonic.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func pipProblem(t *testing.T, obj Objective) *Problem {
	t.Helper()
	p, err := NewProblem(cg.MustApp("PIP"), testNet(t, 3, 3), obj)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMappingValidate(t *testing.T) {
	m := Mapping{0, 3, 5}
	if err := m.Validate(9); err != nil {
		t.Errorf("valid mapping rejected: %v", err)
	}
	cases := []struct {
		name string
		m    Mapping
		n    int
	}{
		{"empty", Mapping{}, 9},
		{"too many tasks", Mapping{0, 1, 2}, 2},
		{"negative tile", Mapping{0, -1}, 9},
		{"tile out of range", Mapping{0, 9}, 9},
		{"duplicate tile", Mapping{3, 3}, 9},
	}
	for _, c := range cases {
		if err := c.m.Validate(c.n); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestMappingCloneEqualSwap(t *testing.T) {
	m := Mapping{2, 5, 7}
	c := m.Clone()
	if !m.Equal(c) {
		t.Error("clone not equal")
	}
	c.Swap(0, 2)
	if m.Equal(c) {
		t.Error("swap leaked into original")
	}
	if c[0] != 7 || c[2] != 2 {
		t.Errorf("swap wrong: %v", c)
	}
	if m.Equal(Mapping{2, 5}) {
		t.Error("Equal ignored length")
	}
}

func TestRandomMappingProperty(t *testing.T) {
	f := func(seed int64, tasksRaw, extraRaw uint8) bool {
		tasks := 1 + int(tasksRaw%20)
		tiles := tasks + int(extraRaw%10)
		rng := rand.New(rand.NewSource(seed))
		m, err := RandomMapping(rng, tasks, tiles)
		if err != nil {
			return false
		}
		return len(m) == tasks && m.Validate(tiles) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomMapping(rng, 5, 4); err == nil {
		t.Error("accepted tasks > tiles")
	}
	if _, err := RandomMapping(rng, 0, 4); err == nil {
		t.Error("accepted zero tasks")
	}
}

func TestIdentityAndFreeTiles(t *testing.T) {
	m := IdentityMapping(4)
	if err := m.Validate(9); err != nil {
		t.Fatal(err)
	}
	free := m.FreeTiles(nil, 6)
	want := []topo.TileID{4, 5}
	if len(free) != len(want) {
		t.Fatalf("free = %v, want %v", free, want)
	}
	for i := range want {
		if free[i] != want[i] {
			t.Fatalf("free = %v, want %v", free, want)
		}
	}
	m.MoveTo(0, 5)
	if m[0] != 5 {
		t.Error("MoveTo failed")
	}
}

func TestParseObjective(t *testing.T) {
	if o, err := ParseObjective("loss"); err != nil || o != MinimizeLoss {
		t.Errorf("loss: %v %v", o, err)
	}
	if o, err := ParseObjective("snr"); err != nil || o != MaximizeSNR {
		t.Errorf("snr: %v %v", o, err)
	}
	if _, err := ParseObjective("latency"); err == nil {
		t.Error("accepted unknown objective")
	}
	if MinimizeLoss.String() != "loss" || MaximizeSNR.String() != "snr" {
		t.Error("Objective.String mismatch")
	}
}

func TestNewProblemValidation(t *testing.T) {
	nw := testNet(t, 3, 3)
	// DVOPD (32 tasks) cannot fit a 3x3: Eq. 2.
	if _, err := NewProblem(cg.MustApp("DVOPD"), nw, MaximizeSNR); err == nil {
		t.Error("accepted app larger than topology")
	}
	// Graph with no edges.
	lonely := cg.New("lonely")
	lonely.MustAddTask("a")
	if _, err := NewProblem(lonely, nw, MaximizeSNR); err == nil {
		t.Error("accepted edgeless app")
	}
	if _, err := NewProblem(cg.MustApp("PIP"), nw, Objective(9)); err == nil {
		t.Error("accepted invalid objective")
	}
}

func TestEvaluateObjectives(t *testing.T) {
	lossProb := pipProblem(t, MinimizeLoss)
	snrProb := pipProblem(t, MaximizeSNR)
	m := IdentityMapping(8)

	ls, err := lossProb.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Cost != -ls.WorstLossDB {
		t.Errorf("loss cost %v != -WorstLossDB %v", ls.Cost, -ls.WorstLossDB)
	}
	if ls.WorstLossDB >= 0 {
		t.Errorf("WorstLossDB = %v, want negative", ls.WorstLossDB)
	}

	ss, err := snrProb.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Cost != -ss.WorstSNRDB {
		t.Errorf("snr cost %v != -WorstSNRDB %v", ss.Cost, -ss.WorstSNRDB)
	}
	// Same mapping, same physics: the raw metrics agree across objectives.
	if ls.WorstLossDB != ss.WorstLossDB || ls.WorstSNRDB != ss.WorstSNRDB {
		t.Error("raw metrics differ between objectives")
	}
}

func TestEvaluateRejectsBadMappings(t *testing.T) {
	p := pipProblem(t, MaximizeSNR)
	if _, err := p.Evaluate(Mapping{0, 1, 2}); err == nil {
		t.Error("accepted short mapping")
	}
	bad := IdentityMapping(8)
	bad[3] = bad[4]
	if _, err := p.Evaluate(bad); err == nil {
		t.Error("accepted non-injective mapping")
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	p := pipProblem(t, MaximizeSNR)
	m, _ := RandomMapping(rand.New(rand.NewSource(3)), 8, 9)
	s1, err := p.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Errorf("re-evaluation differs: %+v vs %+v", s1, s2)
	}
	s3, err := p.Clone().Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s3 {
		t.Errorf("clone evaluation differs: %+v vs %+v", s1, s3)
	}
}

func TestDetails(t *testing.T) {
	p := pipProblem(t, MaximizeSNR)
	m := IdentityMapping(8)
	res, details, err := p.Details(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(details) != p.App().NumEdges() {
		t.Fatalf("details = %d entries, want %d", len(details), p.App().NumEdges())
	}
	worst := math.Inf(1)
	for _, d := range details {
		if d.SNRDB < worst {
			worst = d.SNRDB
		}
	}
	if math.Abs(worst-res.WorstSNRDB) > 1e-12 {
		t.Errorf("min detail SNR %v != result %v", worst, res.WorstSNRDB)
	}
	if _, _, err := p.Details(Mapping{0}); err == nil {
		t.Error("Details accepted short mapping")
	}
}

func TestScoreBetter(t *testing.T) {
	a := Score{Cost: 1}
	b := Score{Cost: 2}
	if !a.Better(b) || b.Better(a) || a.Better(a) {
		t.Error("Better ordering wrong")
	}
	if !a.Better(InfCost()) {
		t.Error("InfCost not worse than a real score")
	}
}

func TestContextBudgetEnforced(t *testing.T) {
	p := pipProblem(t, MaximizeSNR)
	rng := rand.New(rand.NewSource(5))
	ctx, err := NewContext(p, rng, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, ok, err := ctx.Evaluate(ctx.RandomMapping()); err != nil || !ok {
			t.Fatalf("eval %d: ok=%v err=%v", i, ok, err)
		}
	}
	if !ctx.Exhausted() || ctx.Remaining() != 0 || ctx.Evals() != 3 {
		t.Errorf("budget accounting wrong: evals=%d remaining=%d", ctx.Evals(), ctx.Remaining())
	}
	if _, ok, err := ctx.Evaluate(ctx.RandomMapping()); ok || err != nil {
		t.Errorf("evaluation beyond budget: ok=%v err=%v", ok, err)
	}
}

func TestContextTracksBest(t *testing.T) {
	p := pipProblem(t, MaximizeSNR)
	ctx, err := NewContext(p, rand.New(rand.NewSource(7)), 50)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := ctx.Best(); ok {
		t.Error("Best before any evaluation")
	}
	improvements := 0
	ctx.OnImprove = func(int, Score) { improvements++ }
	bestSeen := InfCost()
	for i := 0; i < 50; i++ {
		s, ok, err := ctx.Evaluate(ctx.RandomMapping())
		if err != nil || !ok {
			t.Fatal(err)
		}
		if s.Better(bestSeen) {
			bestSeen = s
		}
	}
	m, s, ok := ctx.Best()
	if !ok {
		t.Fatal("no best after 50 evals")
	}
	if s.Cost != bestSeen.Cost {
		t.Errorf("incumbent %v != observed best %v", s.Cost, bestSeen.Cost)
	}
	if err := m.Validate(p.NumTiles()); err != nil {
		t.Errorf("incumbent invalid: %v", err)
	}
	if improvements < 1 {
		t.Error("OnImprove never fired")
	}
	// The returned mapping is a defensive copy.
	m[0] = m[1]
	m2, _, _ := ctx.Best()
	if err := m2.Validate(p.NumTiles()); err != nil {
		t.Error("mutating returned best corrupted the incumbent")
	}
}

func TestNewContextValidation(t *testing.T) {
	p := pipProblem(t, MaximizeSNR)
	rng := rand.New(rand.NewSource(1))
	if _, err := NewContext(nil, rng, 10); err == nil {
		t.Error("accepted nil problem")
	}
	if _, err := NewContext(p, nil, 10); err == nil {
		t.Error("accepted nil rng")
	}
	if _, err := NewContext(p, rng, 0); err == nil {
		t.Error("accepted zero budget")
	}
}

// trivialSearcher evaluates n random mappings.
type trivialSearcher struct{ n int }

func (t trivialSearcher) Name() string { return "trivial" }
func (t trivialSearcher) Search(ctx *Context) error {
	for i := 0; i < t.n; i++ {
		if _, ok, err := ctx.Evaluate(ctx.RandomMapping()); err != nil {
			return err
		} else if !ok {
			break
		}
	}
	return nil
}

func TestExplorationRun(t *testing.T) {
	p := pipProblem(t, MaximizeSNR)
	ex, err := NewExploration(p, Options{Budget: 20, Seed: 42, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Run(trivialSearcher{n: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals != 20 {
		t.Errorf("Evals = %d, want 20 (budget-capped)", res.Evals)
	}
	if res.Algorithm != "trivial" || res.Objective != MaximizeSNR {
		t.Errorf("metadata wrong: %+v", res)
	}
	if err := res.Mapping.Validate(p.NumTiles()); err != nil {
		t.Errorf("result mapping invalid: %v", err)
	}
	if tr := ex.Trace("trivial"); len(tr) == 0 {
		t.Error("trace empty despite Trace option")
	}
	best, ok := ex.BestResult()
	if !ok || best.Algorithm != "trivial" {
		t.Errorf("BestResult = %+v, %v", best, ok)
	}
}

func TestExplorationReproducible(t *testing.T) {
	run := func() RunResult {
		p := pipProblem(t, MinimizeLoss)
		ex, err := NewExploration(p, Options{Budget: 30, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		res, err := ex.Run(trivialSearcher{n: 30})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	if r1.Score != r2.Score || !r1.Mapping.Equal(r2.Mapping) {
		t.Error("same seed produced different results")
	}
}

func TestExplorationValidation(t *testing.T) {
	p := pipProblem(t, MaximizeSNR)
	if _, err := NewExploration(nil, Options{Budget: 1}); err == nil {
		t.Error("accepted nil problem")
	}
	if _, err := NewExploration(p, Options{Budget: 0}); err == nil {
		t.Error("accepted zero budget")
	}
}

func TestRunAll(t *testing.T) {
	p := pipProblem(t, MaximizeSNR)
	ex, err := NewExploration(p, Options{Budget: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	results, err := ex.RunAll([]Searcher{trivialSearcher{n: 10}, trivialSearcher{n: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	// Different derived seeds: the two runs should generally differ.
	if results[0].Seed == results[1].Seed {
		t.Error("runs share a seed")
	}
}

func TestWeightedLossObjective(t *testing.T) {
	p, err := NewProblem(cg.MustApp("VOPD"), testNet(t, 4, 4), MinimizeWeightedLoss)
	if err != nil {
		t.Fatal(err)
	}
	m := IdentityMapping(16)
	s, err := p.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	if s.AvgLossDB >= 0 || s.AvgLossDB < s.WorstLossDB {
		t.Errorf("AvgLossDB = %v, worst %v: mean must lie in (worst, 0)", s.AvgLossDB, s.WorstLossDB)
	}
	if s.Cost != -s.AvgLossDB {
		t.Errorf("Cost = %v, want %v", s.Cost, -s.AvgLossDB)
	}
	if MinimizeWeightedLoss.String() != "wloss" {
		t.Error("String mismatch")
	}
	if o, err := ParseObjective("wloss"); err != nil || o != MinimizeWeightedLoss {
		t.Errorf("ParseObjective(wloss) = %v, %v", o, err)
	}
}

func TestWeightedObjectiveRejectsZeroBandwidth(t *testing.T) {
	g := cg.New("zero")
	a := g.MustAddTask("a")
	b := g.MustAddTask("b")
	g.MustAddEdge(a, b, 0)
	if _, err := NewProblem(g, testNet(t, 3, 3), MinimizeWeightedLoss); err == nil {
		t.Error("accepted zero-bandwidth app for weighted objective")
	}
	// The same app is fine for the worst-case objectives.
	if _, err := NewProblem(g, testNet(t, 3, 3), MinimizeLoss); err != nil {
		t.Errorf("worst-case objective rejected zero-bandwidth app: %v", err)
	}
}

func TestWeightedObjectiveFavoursHeavyFlows(t *testing.T) {
	// Two flows from one source: one heavy, one light. The weighted
	// objective must prefer placing the heavy flow's destination closer.
	g := cg.New("skew")
	src := g.MustAddTask("src")
	heavy := g.MustAddTask("heavy")
	light := g.MustAddTask("light")
	g.MustAddEdge(src, heavy, 1000)
	g.MustAddEdge(src, light, 1)
	p, err := NewProblem(g, testNet(t, 3, 3), MinimizeWeightedLoss)
	if err != nil {
		t.Fatal(err)
	}
	// heavy adjacent, light far.
	good := Mapping{0, 1, 8}
	// heavy far, light adjacent.
	bad := Mapping{0, 8, 1}
	gs, err := p.Evaluate(good)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := p.Evaluate(bad)
	if err != nil {
		t.Fatal(err)
	}
	if !gs.Better(bs) {
		t.Errorf("heavy-flow-near mapping (cost %v) not better than far (cost %v)", gs.Cost, bs.Cost)
	}
}
