package core

import (
	"context"
	"fmt"
	"math/rand"
	"time"
)

// RunResult records one optimization run of the DSE engine.
type RunResult struct {
	Algorithm string
	Objective Objective
	Mapping   Mapping
	Score     Score
	Evals     int
	Duration  time.Duration
	Seed      int64
	// Cancelled marks a run that was stopped early through its
	// cancellation context; Mapping/Score hold the best point reached
	// before the stop.
	Cancelled bool
}

// TracePoint is one improvement event of a run's convergence curve.
type TracePoint struct {
	Evals int
	Score Score
}

// Options configures a DSE run.
type Options struct {
	// Budget is the evaluation budget per algorithm run; every algorithm
	// gets the same budget, the deterministic analogue of the paper's
	// equal running times. Required.
	Budget int
	// Seed derives each run's RNG (combined with the algorithm index) so
	// whole explorations reproduce bit-for-bit. Defaults to 1.
	Seed int64
	// Trace, when true, records convergence curves.
	Trace bool
	// Context, when non-nil, cancels in-flight runs: once it is done no
	// further evaluations are spent and Run returns the best point
	// reached so far with RunResult.Cancelled set (or the context error
	// when nothing was evaluated at all).
	Context context.Context
	// OnImprove, when non-nil, is called on every incumbent improvement
	// (in addition to Trace recording).
	OnImprove func(evals int, best Score)
	// OnProgress, when non-nil, is called every ProgressEvery evaluations
	// with the current incumbent — a heartbeat for long runs that may go
	// thousands of evaluations between improvements — and once more when
	// the run completes, with the final evaluation count.
	OnProgress func(evals int, best Score)
	// ProgressEvery sets the OnProgress stride; 0 means every 500
	// evaluations.
	ProgressEvery int
	// EvalWorkers sets the run's EvaluateBatch worker count; 0 follows
	// the process-wide default (SetDefaultEvalWorkers). Worker count
	// never changes results — sequential and parallel runs are
	// bit-identical under equal seeds.
	EvalWorkers int
}

// Exploration is the DSE engine of the paper's architecture (Figure 1,
// box 4): it runs a set of search strategies against one problem under
// identical budgets and collects the results.
type Exploration struct {
	prob    *Problem
	opts    Options
	results []RunResult
	traces  map[string][]TracePoint
}

// NewExploration validates options and prepares an engine.
func NewExploration(prob *Problem, opts Options) (*Exploration, error) {
	if prob == nil {
		return nil, fmt.Errorf("core: nil problem")
	}
	if opts.Budget <= 0 {
		return nil, fmt.Errorf("core: DSE budget must be positive, got %d", opts.Budget)
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	return &Exploration{
		prob:   prob,
		opts:   opts,
		traces: make(map[string][]TracePoint),
	}, nil
}

// Run executes one searcher and records its result. Each call derives an
// independent RNG from the exploration seed and the run ordinal, so runs
// are reproducible and order-independent in distribution.
func (e *Exploration) Run(s Searcher) (RunResult, error) {
	runIdx := len(e.results)
	seed := e.opts.Seed*1_000_003 + int64(runIdx)*7919
	rng := rand.New(rand.NewSource(seed))
	ctx, err := NewContext(e.prob, rng, e.opts.Budget)
	if err != nil {
		return RunResult{}, err
	}
	ctx.SetCancel(e.opts.Context)
	ctx.SetEvalWorkers(e.opts.EvalWorkers)
	defer ctx.Close()
	if e.opts.Trace || e.opts.OnImprove != nil {
		name := s.Name()
		trace := e.opts.Trace
		onImprove := e.opts.OnImprove
		ctx.OnImprove = func(evals int, sc Score) {
			if trace {
				e.traces[name] = append(e.traces[name], TracePoint{Evals: evals, Score: sc})
			}
			if onImprove != nil {
				onImprove(evals, sc)
			}
		}
	}
	if e.opts.OnProgress != nil {
		stride := e.opts.ProgressEvery
		if stride <= 0 {
			stride = 500
		}
		onProgress := e.opts.OnProgress
		ctx.OnEvaluate = func(_ Mapping, sc Score) {
			if ctx.Evals()%stride == 0 {
				// OnEvaluate fires before the incumbent update, so fold
				// the current evaluation in by hand to report the
				// post-update best.
				best, ok := ctx.BestScore()
				if !ok || sc.Better(best) {
					best = sc
				}
				onProgress(ctx.Evals(), best)
			}
		}
	}
	//phonocmap:wallclock only measures RunResult.Duration, the one field documented as non-contractual
	start := time.Now()
	if err := s.Search(ctx); err != nil {
		return RunResult{}, fmt.Errorf("core: %s failed: %w", s.Name(), err)
	}
	best, score, ok := ctx.Best()
	if !ok {
		if ctx.Cancelled() {
			return RunResult{}, fmt.Errorf("core: %s cancelled before evaluating any mapping: %w",
				s.Name(), e.opts.Context.Err())
		}
		return RunResult{}, fmt.Errorf("core: %s finished without evaluating any mapping", s.Name())
	}
	res := RunResult{
		Algorithm: s.Name(),
		Objective: e.prob.Objective(),
		Mapping:   best,
		Score:     score,
		Evals:     ctx.Evals(),
		//phonocmap:wallclock Duration is the one non-contractual RunResult field; differential suites strip it
		Duration: time.Since(start),
		Seed:     seed,
		// A cancellation that lands after the budget was fully spent did
		// not truncate anything; the result is complete.
		Cancelled: ctx.Cancelled() && ctx.Evals() < ctx.Budget(),
	}
	if e.opts.OnProgress != nil {
		// Final report, so observers see the exact eval count even when
		// the budget is not a multiple of the progress stride.
		e.opts.OnProgress(res.Evals, res.Score)
	}
	e.results = append(e.results, res)
	return res, nil
}

// RunAll runs every searcher in order and returns all results.
func (e *Exploration) RunAll(searchers []Searcher) ([]RunResult, error) {
	for _, s := range searchers {
		if _, err := e.Run(s); err != nil {
			return nil, err
		}
	}
	return e.Results(), nil
}

// Results returns the recorded runs in execution order.
func (e *Exploration) Results() []RunResult {
	out := make([]RunResult, len(e.results))
	copy(out, e.results)
	return out
}

// Trace returns the convergence curve of the named algorithm (only
// populated when Options.Trace was set).
func (e *Exploration) Trace(algorithm string) []TracePoint {
	pts := e.traces[algorithm]
	out := make([]TracePoint, len(pts))
	copy(out, pts)
	return out
}

// BestResult returns the best run recorded so far.
func (e *Exploration) BestResult() (RunResult, bool) {
	if len(e.results) == 0 {
		return RunResult{}, false
	}
	best := e.results[0]
	for _, r := range e.results[1:] {
		if r.Score.Better(best.Score) {
			best = r
		}
	}
	return best, true
}
