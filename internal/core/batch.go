package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"phonocmap/internal/obs"
)

// This file is the population-parallel evaluation engine: a pool of
// independent incremental swap sessions plus Context.EvaluateBatch,
// which shards a slice of candidate mappings across a bounded worker
// group and folds the scores back through the context's single
// evaluation ledger.
//
// Determinism contract (the reason the engine is usable inside seeded
// searches at all): EvaluateBatch produces bit-identical results at
// every worker count, including 1. Two properties carry it:
//
//  1. Scoring a mapping is a pure function of the mapping. Every pool
//     session honors SwapSession's bit-for-bit contract with
//     Problem.Evaluate, so WHICH session scores a candidate — and in
//     what order relative to its siblings — cannot change any score.
//  2. Accounting happens at a single commit point after all workers
//     join, replayed in candidate-index order: budget units, the
//     incumbent ledger, and the OnEvaluate/OnImprove callbacks observe
//     exactly the sequence a sequential ctx.Evaluate loop over the
//     same candidates would have produced.
//
// This is the same fixed-derivation + deterministic-reduction pattern
// the islands machinery (RunParallel) established, applied one level
// down: inside a single search's evaluation stream.

// defaultEvalWorkers is the process-wide worker count used by contexts
// that were not given an explicit count — the knob behind the
// -eval-workers flags of the CLI and phonocmap-serve. Zero means 1
// (sequential).
var defaultEvalWorkers atomic.Int32

// batchEvals counts mapping evaluations performed through EvaluateBatch
// process-wide, exposed by the service as phonocmap_batch_evals_total.
var batchEvals = obs.NewCounter()

// SetDefaultEvalWorkers sets the process-wide evaluation worker count
// used by contexts without an explicit SetEvalWorkers call. n <= 0
// resets to 1 (sequential). Results are bit-identical at every setting;
// only throughput changes.
func SetDefaultEvalWorkers(n int) {
	if n < 1 {
		n = 1
	}
	defaultEvalWorkers.Store(int32(n))
}

// DefaultEvalWorkers returns the process-wide evaluation worker count
// (at least 1).
func DefaultEvalWorkers() int {
	if n := defaultEvalWorkers.Load(); n > 1 {
		return int(n)
	}
	return 1
}

// BatchEvalsTotal returns the number of mapping evaluations performed
// through EvaluateBatch since process start.
func BatchEvalsTotal() int64 { return batchEvals.Value() }

// SwapSessionPool is a fixed set of independent SwapSessions over one
// Problem — one per evaluation worker. Sessions are seated lazily on
// the first mapping their worker scores and then move by delta
// (SwapSession.Reseat), so steady-state batch evaluation allocates
// nothing. Sibling sessions share only the problem's immutable data and
// may therefore evaluate concurrently; each individual session must
// stay confined to its worker.
type SwapSessionPool struct {
	prob *Problem
	sess []*SwapSession
}

// NewSwapSessionPool prepares size worker sessions over the problem
// (created lazily on first use).
func NewSwapSessionPool(prob *Problem, size int) (*SwapSessionPool, error) {
	if prob == nil {
		return nil, fmt.Errorf("core: nil problem")
	}
	if size < 1 {
		return nil, fmt.Errorf("core: session pool size must be >= 1, got %d", size)
	}
	return &SwapSessionPool{prob: prob, sess: make([]*SwapSession, size)}, nil
}

// Size returns the number of worker slots.
func (sp *SwapSessionPool) Size() int { return len(sp.sess) }

// grow extends the pool to at least size worker slots.
func (sp *SwapSessionPool) grow(size int) {
	for len(sp.sess) < size {
		sp.sess = append(sp.sess, nil)
	}
}

// Evaluate scores m on worker w's session, seating the session on first
// use. Scores are bit-for-bit identical to Problem.Evaluate(m)
// regardless of the worker or of what the session evaluated before.
// Distinct workers may call Evaluate concurrently; a single worker must
// not.
func (sp *SwapSessionPool) Evaluate(w int, m Mapping) (Score, error) {
	if w < 0 || w >= len(sp.sess) {
		return Score{}, fmt.Errorf("core: pool worker %d out of range [0,%d)", w, len(sp.sess))
	}
	ss := sp.sess[w]
	if ss == nil {
		ss, err := sp.prob.NewSwapSession(m)
		if err != nil {
			return Score{}, err
		}
		sp.sess[w] = ss
		return ss.Score(), nil
	}
	return ss.Reseat(m)
}

// Release returns every seated session's incremental engine to the
// analysis buffer pool. The pool must not be used afterwards.
func (sp *SwapSessionPool) Release() {
	for i, ss := range sp.sess {
		if ss != nil {
			ss.Release()
			sp.sess[i] = nil
		}
	}
}

// SetEvalWorkers sets this run's evaluation worker count, overriding
// the process default. n <= 0 restores "follow the process default".
// Worker count never changes results — only how many candidates of an
// EvaluateBatch call are scored concurrently.
func (c *Context) SetEvalWorkers(n int) {
	if n < 0 {
		n = 0
	}
	c.evalWorkers = n
}

// EvalWorkers returns the run's effective evaluation worker count.
func (c *Context) EvalWorkers() int {
	if c.evalWorkers > 0 {
		return c.evalWorkers
	}
	return DefaultEvalWorkers()
}

// Close releases the context's evaluation sessions (the swap session
// seated by StartSwaps/AttachSwaps and the batch pool's worker
// sessions) back to the analysis buffer pool. Call it when the run is
// over and the context will not evaluate again; reading Best/Evals
// afterwards is fine.
func (c *Context) Close() {
	if c.sess != nil {
		c.sess.Release()
		c.sess = nil
	}
	if c.batchPool != nil {
		c.batchPool.Release()
		c.batchPool = nil
	}
}

// EvaluateBatch scores a slice of candidate mappings, spending one
// budget unit per scored candidate, and returns their scores in
// candidate order plus the number n of candidates actually scored.
// n < len(cands) exactly when the budget ran out (or the run was
// cancelled): the first Remaining() candidates are scored and charged,
// the rest are neither — precisely where a sequential ctx.Evaluate
// loop over the same slice would have stopped.
//
// Candidates are sharded across EvalWorkers() pool sessions and scored
// concurrently; accounting (budget, incumbent, OnEvaluate/OnImprove)
// replays at a single commit point in candidate-index order, so
// results are bit-identical at every worker count. On an evaluation
// error the candidates before the first failing index are committed —
// again matching the sequential loop — and the error is returned.
//
// The returned slice is scratch owned by the context, valid until the
// next EvaluateBatch call.
func (c *Context) EvaluateBatch(cands []Mapping) ([]Score, int, error) {
	n := len(cands)
	if r := c.Remaining(); n > r {
		n = r
	}
	if c.Cancelled() {
		n = 0
	}
	if n == 0 {
		return nil, 0, nil
	}
	workers := c.EvalWorkers()
	if workers > n {
		workers = n
	}
	if c.batchPool == nil {
		pool, err := NewSwapSessionPool(c.prob, workers)
		if err != nil {
			return nil, 0, err
		}
		c.batchPool = pool
	} else {
		c.batchPool.grow(workers)
	}
	if cap(c.batchScores) < n {
		c.batchScores = make([]Score, n)
	}
	scores := c.batchScores[:n]

	// firstErr/firstErrIdx reduce worker failures deterministically: the
	// error at the lowest candidate index wins, whatever the schedule.
	var firstErr error
	firstErrIdx := n
	if workers == 1 {
		for i := 0; i < n; i++ {
			s, err := c.batchPool.Evaluate(0, cands[i])
			if err != nil {
				firstErr, firstErrIdx = err, i
				break
			}
			scores[i] = s
		}
	} else {
		// Contiguous shards: worker w scores [w*chunk, min((w+1)*chunk, n)).
		// Each worker stops at its first error; the reduction below picks
		// the globally lowest failing index, before which every candidate
		// was necessarily scored.
		chunk := (n + workers - 1) / workers
		errs := make([]error, workers)
		errIdx := make([]int, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				errIdx[w] = n
				for i := lo; i < hi; i++ {
					s, err := c.batchPool.Evaluate(w, cands[i])
					if err != nil {
						errs[w], errIdx[w] = err, i
						return
					}
					scores[i] = s
				}
			}(w, lo, hi)
		}
		wg.Wait()
		for w := 0; w < workers; w++ {
			if errs[w] != nil && errIdx[w] < firstErrIdx {
				firstErr, firstErrIdx = errs[w], errIdx[w]
			}
		}
	}

	// Single commit point: replay the ledger in candidate order.
	commit := n
	if firstErrIdx < commit {
		commit = firstErrIdx
	}
	for i := 0; i < commit; i++ {
		c.account(cands[i], scores[i])
	}
	batchEvals.Add(int64(commit))
	if firstErr != nil {
		return nil, 0, firstErr
	}
	return scores, n, nil
}

// AutoEvalWorkers returns a sensible eval-worker count for "use the
// machine": GOMAXPROCS.
func AutoEvalWorkers() int { return runtime.GOMAXPROCS(0) }
