package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func pt(loss, snr float64) (Mapping, Score) {
	return Mapping{0}, Score{WorstLossDB: loss, WorstSNRDB: snr}
}

func TestParetoOfferBasics(t *testing.T) {
	var f ParetoFront
	m, s := pt(-2, 20)
	if !f.Offer(m, s) {
		t.Fatal("first point rejected")
	}
	// Dominated point (worse on both axes) rejected.
	if m2, s2 := pt(-3, 15); f.Offer(m2, s2) {
		t.Error("dominated point accepted")
	}
	// Duplicate rejected.
	if m2, s2 := pt(-2, 20); f.Offer(m2, s2) {
		t.Error("duplicate accepted")
	}
	// Trade-off point (better SNR, worse loss) accepted.
	if m2, s2 := pt(-3, 30); !f.Offer(m2, s2) {
		t.Error("trade-off point rejected")
	}
	if f.Size() != 2 {
		t.Fatalf("Size = %d, want 2", f.Size())
	}
	// Dominating point evicts both.
	if m2, s2 := pt(-1, 35); !f.Offer(m2, s2) {
		t.Error("dominating point rejected")
	}
	if f.Size() != 1 {
		t.Fatalf("Size after eviction = %d, want 1", f.Size())
	}
}

func TestParetoPointsSorted(t *testing.T) {
	var f ParetoFront
	for _, p := range [][2]float64{{-3, 30}, {-1, 10}, {-2, 20}} {
		m, s := pt(p[0], p[1])
		f.Offer(m, s)
	}
	pts := f.Points()
	if len(pts) != 3 {
		t.Fatalf("front size %d, want 3", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].WorstLossDB > pts[i-1].WorstLossDB {
			t.Error("not sorted by loss")
		}
		if pts[i].WorstSNRDB < pts[i-1].WorstSNRDB {
			t.Error("SNR should increase as loss worsens along a front")
		}
	}
}

// Property: after arbitrary offers, no archived point dominates another.
func TestParetoInvariant(t *testing.T) {
	f := func(raw []uint16) bool {
		var front ParetoFront
		for i := 0; i+1 < len(raw); i += 2 {
			loss := -float64(raw[i]%50) / 10
			snr := float64(raw[i+1] % 400)
			m, s := pt(loss, snr)
			front.Offer(m, s)
		}
		pts := front.Points()
		for i := range pts {
			for j := range pts {
				if i != j && dominates(pts[i], pts[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestParetoOfferClonesMapping(t *testing.T) {
	var f ParetoFront
	m := Mapping{3, 5}
	f.Offer(m, Score{WorstLossDB: -1, WorstSNRDB: 10})
	m[0] = 9 // mutate the caller's slice
	if f.Points()[0].Mapping[0] != 3 {
		t.Error("front shares storage with the offered mapping")
	}
}

func TestParetoAttachCollectsDuringSearch(t *testing.T) {
	p := pipProblem(t, MaximizeSNR)
	ctx, err := NewContext(p, rand.New(rand.NewSource(11)), 120)
	if err != nil {
		t.Fatal(err)
	}
	var front ParetoFront
	observed := 0
	ctx.OnEvaluate = func(Mapping, Score) { observed++ }
	front.Attach(ctx)
	for i := 0; i < 120; i++ {
		if _, ok, err := ctx.Evaluate(ctx.RandomMapping()); err != nil || !ok {
			t.Fatal(err)
		}
	}
	if front.Size() == 0 {
		t.Fatal("empty front after 120 evaluations")
	}
	if observed != 120 {
		t.Errorf("composed observer saw %d evaluations, want 120", observed)
	}
	// The incumbent's SNR must appear on the front (it is non-dominated
	// on the SNR axis by construction).
	_, best, _ := ctx.Best()
	found := false
	for _, pt := range front.Points() {
		if pt.WorstSNRDB == best.WorstSNRDB {
			found = true
		}
	}
	if !found {
		t.Error("best SNR mapping missing from the front")
	}
	// Every archived mapping is valid.
	for _, pt := range front.Points() {
		if err := pt.Mapping.Validate(p.NumTiles()); err != nil {
			t.Errorf("archived mapping invalid: %v", err)
		}
	}
}
