package core

import (
	"math/rand"
	"sync"
	"testing"

	"phonocmap/internal/cg"
	"phonocmap/internal/topo"
)

// batchTestProblem builds a 12-task app on a 4x4 mesh (4 spare tiles).
func batchTestProblem(t *testing.T, obj Objective) *Problem {
	t.Helper()
	rngApp := rand.New(rand.NewSource(7))
	app, err := cg.RandomConnected(rngApp, 12, 40)
	if err != nil {
		t.Fatal(err)
	}
	nw := swapTestNet(t, false, 4, 4)
	prob, err := NewProblem(app, nw, obj)
	if err != nil {
		t.Fatal(err)
	}
	return prob
}

// ledger records the observable evaluation sequence of a context: every
// OnEvaluate and OnImprove event in order.
type ledger struct {
	evalScores   []Score
	improveEvals []int
	improves     []Score
}

func (l *ledger) attach(ctx *Context) {
	ctx.OnEvaluate = func(_ Mapping, s Score) { l.evalScores = append(l.evalScores, s) }
	ctx.OnImprove = func(evals int, s Score) {
		l.improveEvals = append(l.improveEvals, evals)
		l.improves = append(l.improves, s)
	}
}

func (l *ledger) equal(o *ledger) bool {
	if len(l.evalScores) != len(o.evalScores) || len(l.improves) != len(o.improves) {
		return false
	}
	for i := range l.evalScores {
		if l.evalScores[i] != o.evalScores[i] {
			return false
		}
	}
	for i := range l.improves {
		if l.improves[i] != o.improves[i] || l.improveEvals[i] != o.improveEvals[i] {
			return false
		}
	}
	return true
}

// TestEvaluateBatchMatchesSequential: for every objective and worker
// count, EvaluateBatch over a candidate list reproduces the exact
// observable behavior of a sequential ctx.Evaluate loop — same scores,
// same eval counts, same incumbent, same callback sequences — including
// when the budget truncates the batch.
func TestEvaluateBatchMatchesSequential(t *testing.T) {
	for _, obj := range []Objective{MinimizeLoss, MaximizeSNR, MinimizeWeightedLoss} {
		prob := batchTestProblem(t, obj)
		for _, budget := range []int{200, 37} { // 37: truncation mid-batch
			rng := rand.New(rand.NewSource(11))
			cands := make([]Mapping, 50)
			for i := range cands {
				m, err := RandomMapping(rng, prob.NumTasks(), prob.NumTiles())
				if err != nil {
					t.Fatal(err)
				}
				cands[i] = m
			}

			seqCtx, err := NewContext(prob.Clone(), rand.New(rand.NewSource(1)), budget)
			if err != nil {
				t.Fatal(err)
			}
			var seqLedger ledger
			seqLedger.attach(seqCtx)
			var seqScores []Score
			for _, m := range cands {
				s, ok, err := seqCtx.Evaluate(m)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				seqScores = append(seqScores, s)
			}

			for _, workers := range []int{1, 2, 4, 7} {
				ctx, err := NewContext(prob.Clone(), rand.New(rand.NewSource(1)), budget)
				if err != nil {
					t.Fatal(err)
				}
				ctx.SetEvalWorkers(workers)
				var l ledger
				l.attach(ctx)
				scores, n, err := ctx.EvaluateBatch(cands)
				if err != nil {
					t.Fatal(err)
				}
				ctx.Close()

				if n != len(seqScores) {
					t.Fatalf("%s budget %d workers %d: batch scored %d, sequential %d", obj, budget, workers, n, len(seqScores))
				}
				for i := 0; i < n; i++ {
					if scores[i] != seqScores[i] {
						t.Fatalf("%s budget %d workers %d: score[%d] %+v != sequential %+v", obj, budget, workers, i, scores[i], seqScores[i])
					}
				}
				if ctx.Evals() != seqCtx.Evals() {
					t.Errorf("%s budget %d workers %d: evals %d != sequential %d", obj, budget, workers, ctx.Evals(), seqCtx.Evals())
				}
				gm, gs, gok := ctx.Best()
				wm, ws, wok := seqCtx.Best()
				if gok != wok || gs != ws || !gm.Equal(wm) {
					t.Errorf("%s budget %d workers %d: incumbent (%v,%+v,%t) != sequential (%v,%+v,%t)", obj, budget, workers, gm, gs, gok, wm, ws, wok)
				}
				if !l.equal(&seqLedger) {
					t.Errorf("%s budget %d workers %d: callback ledger diverged from sequential", obj, budget, workers)
				}
			}
		}
	}
}

// TestEvaluateBatchEdgeCases pins the empty-batch, exhausted-budget and
// repeated-batch behaviors.
func TestEvaluateBatchEdgeCases(t *testing.T) {
	prob := batchTestProblem(t, MinimizeLoss)
	rng := rand.New(rand.NewSource(3))
	ctx, err := NewContext(prob, rng, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	ctx.SetEvalWorkers(4)

	if scores, n, err := ctx.EvaluateBatch(nil); err != nil || n != 0 || scores != nil {
		t.Fatalf("empty batch: got (%v, %d, %v)", scores, n, err)
	}

	m := ctx.RandomMapping()
	batch := []Mapping{m, m, m, m, m, m}
	if _, n, err := ctx.EvaluateBatch(batch); err != nil || n != 6 {
		t.Fatalf("first batch: n=%d err=%v", n, err)
	}
	// 4 budget units remain: the next batch truncates.
	if _, n, err := ctx.EvaluateBatch(batch); err != nil || n != 4 {
		t.Fatalf("truncated batch: n=%d err=%v, want n=4", n, err)
	}
	if !ctx.Exhausted() {
		t.Fatal("budget should be exhausted")
	}
	if _, n, err := ctx.EvaluateBatch(batch); err != nil || n != 0 {
		t.Fatalf("exhausted batch: n=%d err=%v, want n=0", n, err)
	}
	if ctx.Evals() != 10 {
		t.Fatalf("evals = %d, want exactly the budget 10", ctx.Evals())
	}
}

// TestEvaluateBatchWorkerCountIsNotIdentity: distinct contexts may pick
// different worker counts mid-run; SetEvalWorkers(0) falls back to the
// process default, and the pool grows when the count rises.
func TestEvaluateBatchWorkerGrowth(t *testing.T) {
	prob := batchTestProblem(t, MinimizeLoss)
	ctx, err := NewContext(prob, rand.New(rand.NewSource(5)), 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()

	mk := func(k int) []Mapping {
		out := make([]Mapping, k)
		for i := range out {
			out[i] = ctx.RandomMapping()
		}
		return out
	}
	ctx.SetEvalWorkers(1)
	if _, n, err := ctx.EvaluateBatch(mk(8)); err != nil || n != 8 {
		t.Fatalf("1-worker batch: n=%d err=%v", n, err)
	}
	ctx.SetEvalWorkers(6)
	if _, n, err := ctx.EvaluateBatch(mk(16)); err != nil || n != 16 {
		t.Fatalf("6-worker batch after growth: n=%d err=%v", n, err)
	}
	if got := ctx.EvalWorkers(); got != 6 {
		t.Fatalf("EvalWorkers = %d, want 6", got)
	}
	ctx.SetEvalWorkers(0)
	if got, want := ctx.EvalWorkers(), DefaultEvalWorkers(); got != want {
		t.Fatalf("EvalWorkers after reset = %d, want process default %d", got, want)
	}
}

// TestSwapSessionPoolConcurrentHammer exercises the documented sibling
// concurrency contract under the race detector: many sessions of one
// Problem running EvaluateSwap/Commit/Revert/Reseat interleavings
// concurrently, each verifying every score against a private
// full-evaluation reference.
func TestSwapSessionPoolConcurrentHammer(t *testing.T) {
	prob := batchTestProblem(t, MaximizeSNR)
	const workers = 8
	const steps = 150

	pool, err := NewSwapSessionPool(prob, workers)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Release()

	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			ref := prob.Clone() // private full evaluator
			m, err := RandomMapping(rng, prob.NumTasks(), prob.NumTiles())
			if err != nil {
				errc <- err
				return
			}
			if _, err := pool.Evaluate(w, m); err != nil {
				errc <- err
				return
			}
			sess := pool.sess[w]
			numTiles := prob.NumTiles()
			for step := 0; step < steps; step++ {
				switch step % 5 {
				case 4:
					// Reseat on a fresh mapping through the pool.
					fresh, err := RandomMapping(rng, prob.NumTasks(), numTiles)
					if err != nil {
						errc <- err
						return
					}
					got, err := pool.Evaluate(w, fresh)
					if err != nil {
						errc <- err
						return
					}
					want, err := ref.Evaluate(fresh)
					if err != nil {
						errc <- err
						return
					}
					if got != want {
						t.Errorf("worker %d step %d: reseat %+v != full %+v", w, step, got, want)
						return
					}
				default:
					a := topo.TileID(rng.Intn(numTiles))
					b := topo.TileID(rng.Intn(numTiles))
					got, err := sess.EvaluateSwap(a, b)
					if err != nil {
						errc <- err
						return
					}
					want, err := ref.Evaluate(sess.Mapping())
					if err != nil {
						errc <- err
						return
					}
					if got != want {
						t.Errorf("worker %d step %d: swap(%d,%d) %+v != full %+v", w, step, a, b, got, want)
						return
					}
					if step%2 == 0 {
						sess.Commit()
					} else if err := sess.Revert(); err != nil {
						errc <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestSwapEvalAllocationFree pins the allocation budget of the
// incremental hot path: steady-state EvaluateSwap+Revert and
// small-delta Reseat must not allocate at all. This is the in-tree
// anchor of the CI -benchmem gate.
func TestSwapEvalAllocationFree(t *testing.T) {
	prob := batchTestProblem(t, MinimizeLoss)
	rng := rand.New(rand.NewSource(17))
	m, err := RandomMapping(rng, prob.NumTasks(), prob.NumTiles())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := prob.NewSwapSession(m)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Release()
	numTiles := prob.NumTiles()

	// Warm up: let every lazily-grown scratch buffer reach steady state.
	for i := 0; i < 64; i++ {
		a := topo.TileID(rng.Intn(numTiles))
		b := topo.TileID(rng.Intn(numTiles))
		if _, err := sess.EvaluateSwap(a, b); err != nil {
			t.Fatal(err)
		}
		if err := sess.Revert(); err != nil {
			t.Fatal(err)
		}
	}

	allocs := testing.AllocsPerRun(200, func() {
		a := topo.TileID(rng.Intn(numTiles))
		b := topo.TileID(rng.Intn(numTiles))
		if _, err := sess.EvaluateSwap(a, b); err != nil {
			t.Fatal(err)
		}
		if err := sess.Revert(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("EvaluateSwap+Revert allocates %.1f objects per op, want 0", allocs)
	}

	// Single-swap Reseat (the batch path's steady state) must be
	// allocation-free too.
	cur := sess.Mapping().Clone()
	next := cur.Clone()
	allocs = testing.AllocsPerRun(200, func() {
		a := rng.Intn(len(next))
		b := rng.Intn(len(next))
		next[a], next[b] = next[b], next[a]
		if _, err := sess.Reseat(next); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("single-swap Reseat allocates %.1f objects per op, want 0", allocs)
	}
}

// TestIncrementalPoolRecycles: a released session's engine is reused by
// the next session over the same network shape, so standing sessions up
// in a loop stops allocating engine-sized buffers.
func TestIncrementalPoolRecycles(t *testing.T) {
	prob := batchTestProblem(t, MinimizeLoss)
	rng := rand.New(rand.NewSource(23))
	m, err := RandomMapping(rng, prob.NumTasks(), prob.NumTiles())
	if err != nil {
		t.Fatal(err)
	}
	ref := prob.Clone()
	want, err := ref.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	// Cycle sessions through the pool; scores must stay exact.
	for i := 0; i < 10; i++ {
		sess, err := prob.NewSwapSession(m)
		if err != nil {
			t.Fatal(err)
		}
		if sess.Score() != want {
			t.Fatalf("cycle %d: pooled session score %+v != full %+v", i, sess.Score(), want)
		}
		sess.Release()
	}
}
