// Package core implements the paper's primary contribution: the mapping
// problem formulation (Section II-D.1, Eqs. 2-6), its evaluation against
// the physical-layer models, the search-algorithm contract, and the
// design space exploration engine that orchestrates optimization runs.
package core

import (
	"fmt"
	"math/rand"

	"phonocmap/internal/topo"
)

// Mapping is the mapping function Omega: C -> T of the paper. Mapping[i]
// is the tile hosting task i. A valid mapping is injective (Eq. 6: every
// tile hosts at most one task) and total (Eq. 5: every task is placed).
type Mapping []topo.TileID

// Clone returns an independent copy.
func (m Mapping) Clone() Mapping {
	c := make(Mapping, len(m))
	copy(c, m)
	return c
}

// Equal reports whether two mappings are identical.
func (m Mapping) Equal(o Mapping) bool {
	if len(m) != len(o) {
		return false
	}
	for i := range m {
		if m[i] != o[i] {
			return false
		}
	}
	return true
}

// Validate checks Eqs. 5 and 6 against a network of numTiles tiles.
func (m Mapping) Validate(numTiles int) error {
	return m.validate(numTiles, make([]bool, numTiles))
}

// validate is Validate with caller-owned scratch (len >= numTiles,
// cleared here) so per-evaluation validation on the hot path does not
// allocate.
func (m Mapping) validate(numTiles int, seen []bool) error {
	if len(m) == 0 {
		return fmt.Errorf("core: empty mapping")
	}
	if len(m) > numTiles {
		return fmt.Errorf("core: %d tasks exceed %d tiles (Eq. 2 violated)", len(m), numTiles)
	}
	seen = seen[:numTiles]
	for i := range seen {
		seen[i] = false
	}
	for task, tile := range m {
		if tile < 0 || int(tile) >= numTiles {
			return fmt.Errorf("core: task %d mapped to invalid tile %d", task, tile)
		}
		if seen[tile] {
			return fmt.Errorf("core: tile %d hosts more than one task (Eq. 6 violated)", tile)
		}
		seen[tile] = true
	}
	return nil
}

// RandomMapping draws a uniform injective mapping of numTasks tasks onto
// numTiles tiles using the given source of randomness.
func RandomMapping(rng *rand.Rand, numTasks, numTiles int) (Mapping, error) {
	if numTasks < 1 {
		return nil, fmt.Errorf("core: need at least one task, got %d", numTasks)
	}
	if numTasks > numTiles {
		return nil, fmt.Errorf("core: %d tasks do not fit on %d tiles (Eq. 2)", numTasks, numTiles)
	}
	perm := rng.Perm(numTiles)
	m := make(Mapping, numTasks)
	for i := range m {
		m[i] = topo.TileID(perm[i])
	}
	return m, nil
}

// IdentityMapping places task i on tile i — the naive baseline layout.
func IdentityMapping(numTasks int) Mapping {
	m := make(Mapping, numTasks)
	for i := range m {
		m[i] = topo.TileID(i)
	}
	return m
}

// Swap exchanges the tiles of two tasks in place. Swapping a task with
// itself is a no-op. This is the primitive move of the paper's R-PBLA and
// of the GA mutation operator; it preserves injectivity by construction.
func (m Mapping) Swap(taskA, taskB int) {
	m[taskA], m[taskB] = m[taskB], m[taskA]
}

// MoveTo relocates a task to a tile. The caller must guarantee the tile
// is currently free, or injectivity breaks; use with FreeTiles.
func (m Mapping) MoveTo(task int, tile topo.TileID) {
	m[task] = tile
}

// FreeTiles appends to dst the tiles not used by the mapping, in
// ascending order, and returns the extended slice.
func (m Mapping) FreeTiles(dst []topo.TileID, numTiles int) []topo.TileID {
	used := make([]bool, numTiles)
	for _, t := range m {
		if t >= 0 && int(t) < numTiles {
			used[t] = true
		}
	}
	for t := 0; t < numTiles; t++ {
		if !used[t] {
			dst = append(dst, topo.TileID(t))
		}
	}
	return dst
}
