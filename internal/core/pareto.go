package core

import "sort"

// ParetoPoint is one non-dominated mapping of the two-objective space
// (worst-case loss, worst-case SNR). For both axes, greater is better:
// losses are negative dB (closer to zero wins) and SNR is positive dB.
type ParetoPoint struct {
	Mapping     Mapping
	WorstLossDB float64
	WorstSNRDB  float64
}

// dominates reports whether a is at least as good as b on both axes and
// strictly better on one.
func dominates(a, b ParetoPoint) bool {
	if a.WorstLossDB < b.WorstLossDB || a.WorstSNRDB < b.WorstSNRDB {
		return false
	}
	return a.WorstLossDB > b.WorstLossDB || a.WorstSNRDB > b.WorstSNRDB
}

// ParetoFront maintains the archive of mutually non-dominated mappings
// observed during a search. The zero value is an empty front. Fronts are
// not safe for concurrent use.
type ParetoFront struct {
	points []ParetoPoint
}

// Offer considers a scored mapping for the archive. It returns true when
// the mapping enters the front (evicting any points it dominates) and
// false when an archived point dominates or duplicates it.
func (f *ParetoFront) Offer(m Mapping, s Score) bool {
	cand := ParetoPoint{WorstLossDB: s.WorstLossDB, WorstSNRDB: s.WorstSNRDB}
	for _, p := range f.points {
		if dominates(p, cand) ||
			(p.WorstLossDB == cand.WorstLossDB && p.WorstSNRDB == cand.WorstSNRDB) {
			return false
		}
	}
	kept := f.points[:0]
	for _, p := range f.points {
		if !dominates(cand, p) {
			kept = append(kept, p)
		}
	}
	cand.Mapping = m.Clone()
	f.points = append(kept, cand)
	return true
}

// Size returns the number of archived points.
func (f *ParetoFront) Size() int { return len(f.points) }

// Points returns the front sorted by decreasing loss quality (least lossy
// first); SNR then decreases along the front by construction.
func (f *ParetoFront) Points() []ParetoPoint {
	out := make([]ParetoPoint, len(f.points))
	copy(out, f.points)
	sort.Slice(out, func(i, j int) bool {
		if out[i].WorstLossDB != out[j].WorstLossDB {
			return out[i].WorstLossDB > out[j].WorstLossDB
		}
		return out[i].WorstSNRDB > out[j].WorstSNRDB
	})
	return out
}

// Attach wires the front into a search context so that every evaluated
// mapping is offered to the archive, composing with any existing
// OnEvaluate observer.
func (f *ParetoFront) Attach(ctx *Context) {
	prev := ctx.OnEvaluate
	ctx.OnEvaluate = func(m Mapping, s Score) {
		f.Offer(m, s)
		if prev != nil {
			prev(m, s)
		}
	}
}
