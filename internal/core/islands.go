package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// ParallelOptions configures a multi-seed islands run: N independent
// seeded searches of the same problem executed concurrently, keeping the
// best result. Each island receives the full Budget, its own cloned
// Problem, its own Searcher instance and an RNG derived from its seed
// exactly as a sequential Exploration run with that seed would, so the
// islands reproduce the corresponding sequential runs bit-for-bit
// regardless of scheduling.
type ParallelOptions struct {
	// Budget is the evaluation budget per island. Required.
	Budget int
	// Seeds lists one exploration seed per island. Required.
	Seeds []int64
	// Workers bounds concurrent islands; <= 0 means GOMAXPROCS.
	Workers int
	// Context, when non-nil, cancels all islands.
	Context context.Context
	// OnImprove, when non-nil, is called on every incumbent improvement
	// of any island. Calls may arrive concurrently from all islands.
	OnImprove func(island int, evals int, best Score)
	// OnProgress, when non-nil, is a periodic per-island heartbeat (see
	// Options.OnProgress). Calls may arrive concurrently.
	OnProgress func(island int, evals int, best Score)
	// ProgressEvery sets the OnProgress stride (default 500).
	ProgressEvery int
	// EvalWorkers sets each island's EvaluateBatch worker count; 0
	// follows the process-wide default. Like seeds, it never changes
	// results — only throughput.
	EvalWorkers int
}

// RunParallel executes one seeded search per entry of opts.Seeds on a
// bounded worker pool and returns the best result plus the per-island
// results in seed order. The factory supplies a fresh Searcher per
// island (searchers are not required to be safe for concurrent use).
//
// Ties between islands break toward the lower island index, so the
// winner is deterministic regardless of completion order. On
// cancellation the islands that evaluated at least one mapping
// contribute partial results (marked Cancelled); RunParallel fails only
// when no island produced any result.
func RunParallel(prob *Problem, factory func() (Searcher, error), opts ParallelOptions) (RunResult, []RunResult, error) {
	if prob == nil {
		return RunResult{}, nil, fmt.Errorf("core: nil problem")
	}
	if factory == nil {
		return RunResult{}, nil, fmt.Errorf("core: nil searcher factory")
	}
	if len(opts.Seeds) == 0 {
		return RunResult{}, nil, fmt.Errorf("core: islands mode needs at least one seed")
	}
	if opts.Budget <= 0 {
		return RunResult{}, nil, fmt.Errorf("core: DSE budget must be positive, got %d", opts.Budget)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(opts.Seeds) {
		workers = len(opts.Seeds)
	}

	results := make([]RunResult, len(opts.Seeds))
	errs := make([]error, len(opts.Seeds))
	done := make([]bool, len(opts.Seeds))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, seed := range opts.Seeds {
		wg.Add(1)
		go func(island int, seed int64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			s, err := factory()
			if err != nil {
				errs[island] = err
				return
			}
			exOpts := Options{
				Budget:        opts.Budget,
				Seed:          seed,
				Context:       opts.Context,
				ProgressEvery: opts.ProgressEvery,
				EvalWorkers:   opts.EvalWorkers,
			}
			if opts.OnImprove != nil {
				exOpts.OnImprove = func(evals int, best Score) { opts.OnImprove(island, evals, best) }
			}
			if opts.OnProgress != nil {
				exOpts.OnProgress = func(evals int, best Score) { opts.OnProgress(island, evals, best) }
			}
			ex, err := NewExploration(prob.Clone(), exOpts)
			if err != nil {
				errs[island] = err
				return
			}
			res, err := ex.Run(s)
			if err != nil {
				errs[island] = err
				return
			}
			results[island] = res
			done[island] = true
		}(i, seed)
	}
	wg.Wait()

	var best RunResult
	var have bool
	all := make([]RunResult, 0, len(opts.Seeds))
	var firstErr error
	for i := range opts.Seeds {
		if done[i] {
			all = append(all, results[i])
			if !have || results[i].Score.Better(best.Score) {
				best = results[i]
				have = true
			}
		} else if errs[i] != nil && firstErr == nil {
			firstErr = errs[i]
		}
	}
	// A real failure (not a cancellation race) poisons the whole run even
	// when other islands finished: partial answers to buggy requests are
	// worse than errors.
	if firstErr != nil && !errors.Is(firstErr, context.Canceled) && !errors.Is(firstErr, context.DeadlineExceeded) {
		return RunResult{}, nil, firstErr
	}
	if !have {
		if firstErr != nil {
			return RunResult{}, nil, firstErr
		}
		return RunResult{}, nil, fmt.Errorf("core: no island produced a result")
	}
	// The multi-seed result is only complete when every island ran to its
	// full budget: even if the winning island finished before the
	// cancellation, a truncated or missing island means a full re-run
	// could still find something better, so the best is marked Cancelled.
	for _, r := range all {
		if r.Cancelled {
			best.Cancelled = true
		}
	}
	if firstErr != nil || len(all) < len(opts.Seeds) {
		best.Cancelled = true
	}
	return best, all, nil
}

// SeedSequence derives n distinct exploration seeds from a base seed:
// base, base+1, ..., base+n-1. A zero base defaults to 1 so the derived
// explorations do not all collapse onto the Options.Seed default.
func SeedSequence(base int64, n int) []int64 {
	if base == 0 {
		base = 1
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = base + int64(i)
	}
	return seeds
}
