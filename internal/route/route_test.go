package route

import (
	"testing"
	"testing/quick"

	"phonocmap/internal/topo"
)

func mesh4(t *testing.T) *topo.Grid {
	t.Helper()
	g, err := topo.NewMesh(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func torus4(t *testing.T) *topo.Grid {
	t.Helper()
	g, err := topo.NewTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func pathDirs(path []topo.Link) []topo.Direction {
	dirs := make([]topo.Direction, len(path))
	for i, l := range path {
		dirs[i] = l.Dir
	}
	return dirs
}

func TestXYOnMesh(t *testing.T) {
	g := mesh4(t)
	src, _ := g.TileAt(0, 0)
	dst, _ := g.TileAt(2, 3)
	path, err := XY{}.Route(g, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(src, dst, path); err != nil {
		t.Fatal(err)
	}
	want := []topo.Direction{topo.East, topo.East, topo.South, topo.South, topo.South}
	got := pathDirs(path)
	if len(got) != len(want) {
		t.Fatalf("path dirs %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hop %d dir %v, want %v", i, got[i], want[i])
		}
	}
}

func TestYXOnMesh(t *testing.T) {
	g := mesh4(t)
	src, _ := g.TileAt(0, 0)
	dst, _ := g.TileAt(2, 3)
	path, err := YX{}.Route(g, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(src, dst, path); err != nil {
		t.Fatal(err)
	}
	got := pathDirs(path)
	want := []topo.Direction{topo.South, topo.South, topo.South, topo.East, topo.East}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hop %d dir %v, want %v", i, got[i], want[i])
		}
	}
}

func TestXYSameTile(t *testing.T) {
	g := mesh4(t)
	path, err := XY{}.Route(g, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 0 {
		t.Errorf("self route has %d hops", len(path))
	}
}

func TestXYWestNorth(t *testing.T) {
	g := mesh4(t)
	src, _ := g.TileAt(3, 3)
	dst, _ := g.TileAt(1, 0)
	path, err := XY{}.Route(g, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	got := pathDirs(path)
	want := []topo.Direction{topo.West, topo.West, topo.North, topo.North, topo.North}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hop %d dir %v, want %v", i, got[i], want[i])
		}
	}
}

func TestXYOutOfRange(t *testing.T) {
	g := mesh4(t)
	if _, err := (XY{}).Route(g, -1, 3); err == nil {
		t.Error("accepted negative src")
	}
	if _, err := (XY{}).Route(g, 0, 16); err == nil {
		t.Error("accepted out-of-range dst")
	}
}

func TestXYRejectsNonGrid(t *testing.T) {
	r, _ := topo.NewRing(6)
	if _, err := (XY{}).Route(r, 0, 3); err == nil {
		t.Error("XY accepted a ring topology")
	}
	if _, err := (YX{}).Route(r, 0, 3); err == nil {
		t.Error("YX accepted a ring topology")
	}
}

func TestXYTorusWraparound(t *testing.T) {
	g := torus4(t)
	// (0,0) -> (3,0): wrapping west (1 hop) beats going east (3 hops).
	src, _ := g.TileAt(0, 0)
	dst, _ := g.TileAt(3, 0)
	path, err := XY{}.Route(g, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 1 || path[0].Dir != topo.West {
		t.Errorf("wrap path = %v, want single west hop", pathDirs(path))
	}
	// (0,0) -> (2,0): tie (2 east vs 2 west) broken toward East.
	dst2, _ := g.TileAt(2, 0)
	path, err = XY{}.Route(g, src, dst2)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 || path[0].Dir != topo.East {
		t.Errorf("tie path = %v, want two east hops", pathDirs(path))
	}
	// Vertical wrap: (0,0) -> (0,3) wraps north.
	dst3, _ := g.TileAt(0, 3)
	path, err = XY{}.Route(g, src, dst3)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 1 || path[0].Dir != topo.North {
		t.Errorf("vertical wrap = %v, want single north hop", pathDirs(path))
	}
}

// Property: XY paths on a mesh are minimal (Manhattan distance) and pass
// Check; X hops all precede Y hops.
func TestXYMeshProperty(t *testing.T) {
	g := mesh4(t)
	f := func(sRaw, dRaw uint8) bool {
		src := topo.TileID(int(sRaw) % 16)
		dst := topo.TileID(int(dRaw) % 16)
		path, err := XY{}.Route(g, src, dst)
		if err != nil {
			return false
		}
		if Check(src, dst, path) != nil {
			return false
		}
		sx, sy := g.Coord(src)
		dx, dy := g.Coord(dst)
		manhattan := abs(sx-dx) + abs(sy-dy)
		if len(path) != manhattan {
			return false
		}
		seenY := false
		for _, l := range path {
			vertical := l.Dir == topo.North || l.Dir == topo.South
			if vertical {
				seenY = true
			} else if seenY {
				return false // X hop after a Y hop
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: XY torus paths are minimal under wraparound distance.
func TestXYTorusProperty(t *testing.T) {
	g := torus4(t)
	f := func(sRaw, dRaw uint8) bool {
		src := topo.TileID(int(sRaw) % 16)
		dst := topo.TileID(int(dRaw) % 16)
		path, err := XY{}.Route(g, src, dst)
		if err != nil || Check(src, dst, path) != nil {
			return false
		}
		sx, sy := g.Coord(src)
		dx, dy := g.Coord(dst)
		distX := min(mod(dx-sx, 4), mod(sx-dx, 4))
		distY := min(mod(dy-sy, 4), mod(sy-dy, 4))
		return len(path) == distX+distY
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBFSOnRing(t *testing.T) {
	r, _ := topo.NewRing(8)
	path, err := BFS{}.Route(r, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(0, 3, path); err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 {
		t.Errorf("ring path length %d, want 3", len(path))
	}
	// Wrap side is shorter for 0 -> 6.
	path, err = BFS{}.Route(r, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 {
		t.Errorf("ring wrap path length %d, want 2", len(path))
	}
}

func TestBFSMatchesManhattanOnMesh(t *testing.T) {
	g := mesh4(t)
	for src := topo.TileID(0); src < 16; src++ {
		for dst := topo.TileID(0); dst < 16; dst++ {
			bfsPath, err := BFS{}.Route(g, src, dst)
			if err != nil {
				t.Fatal(err)
			}
			xyPath, err := XY{}.Route(g, src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if len(bfsPath) != len(xyPath) {
				t.Errorf("%d->%d: bfs %d hops, xy %d hops", src, dst, len(bfsPath), len(xyPath))
			}
		}
	}
}

func TestBFSSameTileAndBounds(t *testing.T) {
	g := mesh4(t)
	path, err := BFS{}.Route(g, 7, 7)
	if err != nil || len(path) != 0 {
		t.Errorf("self route: %v, %v", path, err)
	}
	if _, err := (BFS{}).Route(g, 0, 99); err == nil {
		t.Error("accepted out-of-range dst")
	}
}

func TestCheckRejectsBrokenPaths(t *testing.T) {
	g := mesh4(t)
	path, _ := XY{}.Route(g, 0, 15)
	// Wrong destination.
	if err := Check(0, 14, path); err == nil {
		t.Error("Check accepted wrong destination")
	}
	// Discontinuity.
	if len(path) >= 2 {
		broken := append([]topo.Link(nil), path...)
		broken[1] = broken[len(broken)-1]
		if err := Check(0, 15, broken); err == nil {
			t.Error("Check accepted discontinuous path")
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"xy", "yx", "bfs"} {
		a, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
		if a.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, a.Name())
		}
	}
	if _, err := ByName("zigzag"); err == nil {
		t.Error("ByName accepted unknown algorithm")
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func mod(x, m int) int { return ((x % m) + m) % m }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
