// Package route implements the routing algorithms that select the tile
// path of each communication. PhoNoCMap targets direct topologies with
// dimension-order routing (Section II-A of the paper); this package
// provides XY and YX dimension-order routing for meshes, dimension-order
// routing with minimal wraparound for tori, and a generic BFS router for
// arbitrary topologies, all behind a pluggable interface.
package route

import (
	"fmt"

	"phonocmap/internal/topo"
)

// Algorithm computes the sequence of links a communication traverses.
// Implementations must be deterministic: the same (topology, src, dst)
// always produces the same path, a prerequisite of the paper's static
// worst-case analysis.
type Algorithm interface {
	// Name identifies the algorithm, e.g. "xy".
	Name() string
	// Route returns the links from src to dst in traversal order. An
	// empty path is returned when src == dst. Route fails if the
	// topology is unsupported or the destination is unreachable.
	Route(t topo.Topology, src, dst topo.TileID) ([]topo.Link, error)
}

// Check verifies that a path is well-formed: it starts at src, ends at
// dst, and every link continues where the previous one ended.
func Check(src, dst topo.TileID, path []topo.Link) error {
	at := src
	for i, l := range path {
		if l.From != at {
			return fmt.Errorf("route: hop %d starts at %d, expected %d", i, l.From, at)
		}
		at = l.To
	}
	if at != dst {
		return fmt.Errorf("route: path ends at %d, want %d", at, dst)
	}
	return nil
}

// gridOf extracts the concrete grid from a topology, for the
// dimension-order algorithms that need coordinates.
func gridOf(t topo.Topology, algo string) (*topo.Grid, error) {
	g, ok := t.(*topo.Grid)
	if !ok {
		return nil, fmt.Errorf("route: %s routing requires a grid topology, got %s", algo, t.Name())
	}
	return g, nil
}

// XY is dimension-order routing: route fully along the X axis first,
// then along Y. On a mesh, movement is monotonic; on a torus, each axis
// takes the minimal wrap-aware direction (ties broken toward East/South
// so routes stay deterministic). XY is deadlock-free on meshes and is the
// algorithm assumed by the paper's Crux-based architectures.
type XY struct{}

// Name returns "xy".
func (XY) Name() string { return "xy" }

// Route implements Algorithm.
func (XY) Route(t topo.Topology, src, dst topo.TileID) ([]topo.Link, error) {
	g, err := gridOf(t, "xy")
	if err != nil {
		return nil, err
	}
	return dimensionOrder(g, src, dst, true)
}

// YX is dimension-order routing that resolves the Y axis before X.
// Included to study routing sensitivity; it exercises the turn set that
// XY never uses.
type YX struct{}

// Name returns "yx".
func (YX) Name() string { return "yx" }

// Route implements Algorithm.
func (YX) Route(t topo.Topology, src, dst topo.TileID) ([]topo.Link, error) {
	g, err := gridOf(t, "yx")
	if err != nil {
		return nil, err
	}
	return dimensionOrder(g, src, dst, false)
}

// axisSteps returns how many hops to take along one axis and in which
// grid direction, choosing the shorter way around for tori. On a tie the
// positive direction (East or South) wins.
func axisSteps(from, to, size int, wrap bool, pos, neg topo.Direction) (int, topo.Direction) {
	if from == to {
		return 0, pos
	}
	if !wrap {
		if to > from {
			return to - from, pos
		}
		return from - to, neg
	}
	fwd := ((to - from) + size) % size
	bwd := ((from - to) + size) % size
	if fwd <= bwd {
		return fwd, pos
	}
	return bwd, neg
}

func dimensionOrder(g *topo.Grid, src, dst topo.TileID, xFirst bool) ([]topo.Link, error) {
	n := g.NumTiles()
	if src < 0 || int(src) >= n || dst < 0 || int(dst) >= n {
		return nil, fmt.Errorf("route: tile out of range: src=%d dst=%d n=%d", src, dst, n)
	}
	if src == dst {
		return nil, nil
	}
	sx, sy := g.Coord(src)
	dx, dy := g.Coord(dst)
	stepsX, dirX := axisSteps(sx, dx, g.Width(), g.Wrap(), topo.East, topo.West)
	stepsY, dirY := axisSteps(sy, dy, g.Height(), g.Wrap(), topo.South, topo.North)

	type leg struct {
		steps int
		dir   topo.Direction
	}
	legs := []leg{{stepsX, dirX}, {stepsY, dirY}}
	if !xFirst {
		legs[0], legs[1] = legs[1], legs[0]
	}

	path := make([]topo.Link, 0, stepsX+stepsY)
	at := src
	for _, lg := range legs {
		for s := 0; s < lg.steps; s++ {
			l, ok := g.OutLink(at, lg.dir)
			if !ok {
				return nil, fmt.Errorf("route: no %v link at tile %d on %s", lg.dir, at, g.Name())
			}
			path = append(path, l)
			at = l.To
		}
	}
	if at != dst {
		return nil, fmt.Errorf("route: dimension-order routing ended at %d, want %d", at, dst)
	}
	return path, nil
}

// BFS routes along a shortest path found by breadth-first search with
// deterministic direction-order tie breaking. It works on any Topology
// and serves as the fallback for custom topologies such as rings.
type BFS struct{}

// Name returns "bfs".
func (BFS) Name() string { return "bfs" }

// Route implements Algorithm.
func (BFS) Route(t topo.Topology, src, dst topo.TileID) ([]topo.Link, error) {
	n := t.NumTiles()
	if src < 0 || int(src) >= n || dst < 0 || int(dst) >= n {
		return nil, fmt.Errorf("route: tile out of range: src=%d dst=%d n=%d", src, dst, n)
	}
	if src == dst {
		return nil, nil
	}
	prev := make([]topo.Link, n)
	seen := make([]bool, n)
	seen[src] = true
	queue := []topo.TileID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, l := range t.Neighbors(cur) {
			if seen[l.To] {
				continue
			}
			seen[l.To] = true
			prev[l.To] = l
			if l.To == dst {
				return reconstruct(prev, src, dst), nil
			}
			queue = append(queue, l.To)
		}
	}
	return nil, fmt.Errorf("route: %d unreachable from %d on %s", dst, src, t.Name())
}

func reconstruct(prev []topo.Link, src, dst topo.TileID) []topo.Link {
	var rev []topo.Link
	for at := dst; at != src; at = prev[at].From {
		rev = append(rev, prev[at])
	}
	path := make([]topo.Link, len(rev))
	for i := range rev {
		path[i] = rev[len(rev)-1-i]
	}
	return path
}

// ByName returns the built-in algorithm with the given name.
func ByName(name string) (Algorithm, error) {
	switch name {
	case "xy":
		return XY{}, nil
	case "yx":
		return YX{}, nil
	case "bfs":
		return BFS{}, nil
	default:
		return nil, fmt.Errorf("route: unknown algorithm %q (have xy, yx, bfs)", name)
	}
}
