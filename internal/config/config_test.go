package config

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"phonocmap/internal/cg"
)

func TestAppSpecBuiltin(t *testing.T) {
	g, err := AppSpec{Builtin: "PIP"}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "PIP" || g.NumTasks() != 8 {
		t.Errorf("built %v", g)
	}
	if _, err := (AppSpec{Builtin: "nope"}).Build(); err == nil {
		t.Error("accepted unknown builtin")
	}
	if _, err := (AppSpec{Builtin: "PIP", Name: "x"}).Build(); err == nil {
		t.Error("accepted builtin plus custom fields")
	}
}

func TestAppSpecCustom(t *testing.T) {
	s := AppSpec{
		Name:  "custom",
		Tasks: []string{"a", "b", "c"},
		Edges: []EdgeSpec{{Src: "a", Dst: "b", Bandwidth: 10}, {Src: "b", Dst: "c", Bandwidth: 20}},
	}
	g, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 3 || g.NumEdges() != 2 {
		t.Errorf("shape: %v", g)
	}
	bad := s
	bad.Edges = []EdgeSpec{{Src: "a", Dst: "zzz", Bandwidth: 1}}
	if _, err := bad.Build(); err == nil {
		t.Error("accepted unknown edge endpoint")
	}
	if _, err := (AppSpec{}).Build(); err == nil {
		t.Error("accepted empty spec")
	}
	dup := s
	dup.Tasks = []string{"a", "a"}
	if _, err := dup.Build(); err == nil {
		t.Error("accepted duplicate tasks")
	}
}

func TestAppSpecRoundTrip(t *testing.T) {
	orig := cg.MustApp("VOPD")
	spec := AppSpecOf(orig)
	rebuilt, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.DOT() != orig.DOT() {
		t.Error("round trip altered the graph")
	}
}

func TestArchSpecBuildMesh(t *testing.T) {
	nw, err := DefaultArch(4, 4).Build()
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumTiles() != 16 {
		t.Errorf("tiles = %d", nw.NumTiles())
	}
	if nw.Router().Name() != "crux" || nw.Routing().Name() != "xy" {
		t.Errorf("wrong components: %s", nw.String())
	}
}

func TestArchSpecBuildVariants(t *testing.T) {
	cases := []ArchSpec{
		{Topology: "torus", Width: 4, Height: 4, Router: "crux", Routing: "xy", WrapCrossings: 2},
		{Topology: "ring", Tiles: 6, Router: "crux", Routing: "bfs"},
		{Topology: "mesh", Width: 3, Height: 3, Router: "crossbar", Routing: "yx", DieCm: 1.5},
	}
	for i, s := range cases {
		if _, err := s.Build(); err != nil {
			t.Errorf("case %d: %v", i, err)
		}
	}
	bad := []ArchSpec{
		{Topology: "hypercube", Width: 4, Height: 4, Router: "crux", Routing: "xy"},
		{Topology: "mesh", Width: 4, Height: 4, Router: "nope", Routing: "xy"},
		{Topology: "mesh", Width: 4, Height: 4, Router: "crux", Routing: "nope"},
		{Topology: "mesh", Width: 0, Height: 4, Router: "crux", Routing: "xy"},
	}
	for i, s := range bad {
		if _, err := s.Build(); err == nil {
			t.Errorf("bad case %d accepted", i)
		}
	}
}

func TestArchSpecFailedLinks(t *testing.T) {
	// A full cut removes both lanes; the degraded mesh still builds with
	// BFS routing.
	s := ArchSpec{Topology: "mesh", Width: 3, Height: 3, Router: "cygnus", Routing: "bfs",
		FailedLinks: [][2]int{{0, 1}}}
	nw, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumTiles() != 9 {
		t.Errorf("tiles = %d", nw.NumTiles())
	}
	if got := len(nw.Topology().Links()); got != 24-2 {
		t.Errorf("degraded 3x3 mesh has %d directed links, want 22", got)
	}

	// Dimension-order routing cannot detour around cuts.
	bad := s
	bad.Routing = "xy"
	if _, err := bad.Build(); err == nil {
		t.Error("failed_links with xy routing accepted")
	}

	// Nonexistent links are rejected.
	missing := s
	missing.FailedLinks = [][2]int{{0, 5}}
	if _, err := missing.Build(); err == nil {
		t.Error("nonexistent failed link accepted")
	}

	// Cutting every link of a tile is rejected (tile isolated).
	isolating := s
	isolating.FailedLinks = [][2]int{{0, 1}, {0, 3}}
	if _, err := isolating.Build(); err == nil {
		t.Error("isolating cut accepted")
	}
}

func TestFailedLinksCanonicalization(t *testing.T) {
	// The same cuts in any order or lane direction normalize to one
	// canonical form — one cache identity.
	a := ArchSpec{Topology: "mesh", Routing: "bfs", FailedLinks: [][2]int{{5, 2}, {0, 1}, {1, 0}}}
	a.Normalize(8)
	want := [][2]int{{0, 1}, {2, 5}}
	if !reflect.DeepEqual(a.FailedLinks, want) {
		t.Errorf("canonical form %v, want %v", a.FailedLinks, want)
	}
}

func TestArchSpecFailedLinksRoundTrip(t *testing.T) {
	s := ArchSpec{Topology: "mesh", Width: 3, Height: 3, Router: "cygnus", Routing: "bfs",
		FailedLinks: [][2]int{{1, 2}, {4, 5}}}
	var buf bytes.Buffer
	if err := Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := Load[ArchSpec](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Errorf("round trip diverges:\n in %+v\nout %+v", s, back)
	}
}

func TestExperimentNormalize(t *testing.T) {
	var e Experiment
	e.Normalize()
	if e.Algorithm != "rpbla" || e.Budget != 20000 || e.Seed != 1 || e.Objective != "snr" {
		t.Errorf("defaults wrong: %+v", e)
	}
	e2 := Experiment{Algorithm: "ga", Budget: 5, Seed: 3, Objective: "loss"}
	e2.Normalize()
	if e2.Algorithm != "ga" || e2.Budget != 5 || e2.Seed != 3 || e2.Objective != "loss" {
		t.Errorf("Normalize clobbered explicit values: %+v", e2)
	}
}

func TestLoadSaveRoundTrip(t *testing.T) {
	exp := Experiment{
		App:       AppSpec{Builtin: "MWD"},
		Arch:      DefaultArch(4, 4),
		Objective: "snr",
		Algorithm: "rpbla",
		Budget:    100,
		Seed:      7,
	}
	var buf bytes.Buffer
	if err := Save(&buf, exp); err != nil {
		t.Fatal(err)
	}
	got, err := Load[Experiment](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.App.Builtin != "MWD" || got.Budget != 100 || got.Arch.Width != 4 {
		t.Errorf("round trip: %+v", got)
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	r := strings.NewReader(`{"app":{"builtin":"PIP"},"frobnicate":true}`)
	if _, err := Load[Experiment](r); err == nil {
		t.Error("accepted unknown field")
	}
}

func TestLoadSaveFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "exp.json")
	exp := Experiment{App: AppSpec{Builtin: "PIP"}, Arch: DefaultArch(3, 3), Objective: "loss"}
	if err := SaveFile(path, exp); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile[Experiment](path)
	if err != nil {
		t.Fatal(err)
	}
	if got.App.Builtin != "PIP" || got.Objective != "loss" {
		t.Errorf("file round trip: %+v", got)
	}
	if _, err := LoadFile[Experiment](filepath.Join(dir, "missing.json")); err == nil {
		t.Error("loaded a missing file")
	}
}

func TestArchSpecParamsOverride(t *testing.T) {
	spec := DefaultArch(3, 3)
	params := spec.Params
	if params != nil {
		t.Fatal("default arch has explicit params")
	}
	nw, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if nw.Params().CrossingLoss != -0.04 {
		t.Error("default params not Table I")
	}
	custom := nw.Params()
	custom.CrossingLoss = -0.08
	spec.Params = &custom
	nw2, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if nw2.Params().CrossingLoss != -0.08 {
		t.Error("params override ignored")
	}
}
