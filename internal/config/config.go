// Package config implements the input-description layer of PhoNoCMap
// (Figure 1, box 1): JSON descriptions of applications (communication
// graphs) and NoC architectures (topology + optical router + routing
// algorithm + physical parameters), with loaders that build the
// corresponding runtime objects. It gives the CLI tools and downstream
// users a declarative way to describe experiments.
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"phonocmap/internal/cg"
	"phonocmap/internal/network"
	"phonocmap/internal/photonic"
	"phonocmap/internal/route"
	"phonocmap/internal/router"
	"phonocmap/internal/topo"
)

// EdgeSpec is one directed communication in an application description.
type EdgeSpec struct {
	Src       string  `json:"src"`
	Dst       string  `json:"dst"`
	Bandwidth float64 `json:"bandwidth"`
}

// AppSpec describes an application. Either Builtin names one of the
// bundled benchmark graphs, or Name/Tasks/Edges define a custom CG.
type AppSpec struct {
	Builtin string     `json:"builtin,omitempty"`
	Name    string     `json:"name,omitempty"`
	Tasks   []string   `json:"tasks,omitempty"`
	Edges   []EdgeSpec `json:"edges,omitempty"`
}

// Build returns the communication graph the spec describes.
func (s AppSpec) Build() (*cg.Graph, error) {
	if s.Builtin != "" {
		if s.Name != "" || len(s.Tasks) > 0 || len(s.Edges) > 0 {
			return nil, fmt.Errorf("config: builtin app %q must not also define a custom graph", s.Builtin)
		}
		return cg.App(s.Builtin)
	}
	if s.Name == "" {
		return nil, fmt.Errorf("config: application needs a builtin or a name")
	}
	g := cg.New(s.Name)
	for _, task := range s.Tasks {
		if _, err := g.AddTask(task); err != nil {
			return nil, err
		}
	}
	for _, e := range s.Edges {
		src, ok := g.TaskByName(e.Src)
		if !ok {
			return nil, fmt.Errorf("config: %s: edge references unknown task %q", s.Name, e.Src)
		}
		dst, ok := g.TaskByName(e.Dst)
		if !ok {
			return nil, fmt.Errorf("config: %s: edge references unknown task %q", s.Name, e.Dst)
		}
		if err := g.AddEdge(src, dst, e.Bandwidth); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// AppSpecOf serializes a communication graph into a custom AppSpec.
func AppSpecOf(g *cg.Graph) AppSpec {
	s := AppSpec{Name: g.Name()}
	for i := 0; i < g.NumTasks(); i++ {
		s.Tasks = append(s.Tasks, g.TaskName(cg.TaskID(i)))
	}
	for _, e := range g.Edges() {
		s.Edges = append(s.Edges, EdgeSpec{
			Src:       g.TaskName(e.Src),
			Dst:       g.TaskName(e.Dst),
			Bandwidth: e.Bandwidth,
		})
	}
	return s
}

// ArchSpec describes a photonic NoC architecture.
type ArchSpec struct {
	// Topology is "mesh", "torus" or "ring".
	Topology string `json:"topology"`
	// Width and Height size grids; Tiles sizes rings.
	Width  int `json:"width,omitempty"`
	Height int `json:"height,omitempty"`
	Tiles  int `json:"tiles,omitempty"`
	// DieCm is the die edge length in centimetres (default 2).
	DieCm float64 `json:"die_cm,omitempty"`
	// WrapCrossings assigns layout crossings to torus wrap links.
	WrapCrossings int `json:"wrap_crossings,omitempty"`
	// Router is "crux", "cygnus" or "crossbar".
	Router string `json:"router"`
	// Routing is "xy", "yx" or "bfs".
	Routing string `json:"routing"`
	// FailedLinks lists failed links as [a, b] tile pairs; both lanes of
	// each pair are removed (a full cut), so the spec describes a degraded
	// topology (topo.Degraded) declaratively. Degraded topologies require
	// "bfs" routing: dimension-order algorithms need the full grid.
	FailedLinks [][2]int `json:"failed_links,omitempty"`
	// Params overrides the Table I photonic coefficients when present.
	Params *photonic.Params `json:"params,omitempty"`
}

// DefaultArch returns the paper's reference architecture: a WxH mesh of
// Crux routers with XY routing and Table I parameters.
func DefaultArch(w, h int) ArchSpec {
	return ArchSpec{Topology: "mesh", Width: w, Height: h, Router: "crux", Routing: "xy"}
}

// SquareForTasks returns the side of the smallest square grid that fits
// n tasks: PIP (8 tasks) -> 3, VOPD (16) -> 4, DVOPD (32) -> 6.
func SquareForTasks(n int) int {
	if n < 1 {
		return 0
	}
	return int(math.Ceil(math.Sqrt(float64(n))))
}

// Normalize fills the spec's defaults in place for an application of
// numTasks tasks: the paper's reference choices (a mesh of Crux routers
// with XY routing on the default die) sized to the smallest square — or,
// for rings, one tile per task. The CLI and the optimization service
// both resolve architecture defaults through this method so they cannot
// drift apart.
func (s *ArchSpec) Normalize(numTasks int) {
	if s.Topology == "" {
		s.Topology = "mesh"
	}
	if s.Router == "" {
		s.Router = "crux"
	}
	if s.Routing == "" {
		s.Routing = "xy"
	}
	if s.DieCm == 0 {
		s.DieCm = topo.DefaultDieCm
	}
	switch s.Topology {
	case "mesh", "torus":
		side := SquareForTasks(numTasks)
		if s.Width == 0 {
			s.Width = side
		}
		if s.Height == 0 {
			s.Height = side
		}
	case "ring":
		if s.Tiles == 0 {
			s.Tiles = numTasks
		}
	}
	if len(s.FailedLinks) > 0 {
		s.FailedLinks = canonicalFailedLinks(s.FailedLinks)
	}
}

// canonicalFailedLinks sorts each pair (a cut is undirected) and the
// list, dropping duplicates, so specs naming the same cuts in any order
// or direction share one canonical form — and one cache identity.
func canonicalFailedLinks(links [][2]int) [][2]int {
	out := make([][2]int, 0, len(links))
	seen := make(map[[2]int]bool, len(links))
	for _, l := range links {
		if l[1] < l[0] {
			l[0], l[1] = l[1], l[0]
		}
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Build constructs the network instance the spec describes.
func (s ArchSpec) Build() (*network.Network, error) {
	var opts []topo.GridOption
	if s.DieCm != 0 {
		opts = append(opts, topo.WithDieCm(s.DieCm))
	}
	if s.WrapCrossings != 0 {
		opts = append(opts, topo.WithWrapCrossings(s.WrapCrossings))
	}
	var t topo.Topology
	var err error
	switch s.Topology {
	case "mesh":
		t, err = topo.NewMesh(s.Width, s.Height, opts...)
	case "torus":
		t, err = topo.NewTorus(s.Width, s.Height, opts...)
	case "ring":
		t, err = topo.NewRing(s.Tiles, opts...)
	default:
		return nil, fmt.Errorf("config: unknown topology %q (have mesh, torus, ring)", s.Topology)
	}
	if err != nil {
		return nil, err
	}
	if len(s.FailedLinks) > 0 {
		if s.Routing != "bfs" {
			return nil, fmt.Errorf("config: failed_links needs \"bfs\" routing (dimension-order %q requires the full grid)", s.Routing)
		}
		failures := make([][2]topo.TileID, 0, 2*len(s.FailedLinks))
		for _, l := range s.FailedLinks {
			a, b := topo.TileID(l[0]), topo.TileID(l[1])
			failures = append(failures, [2]topo.TileID{a, b}, [2]topo.TileID{b, a})
		}
		t, err = topo.Degrade(t, failures)
		if err != nil {
			return nil, err
		}
	}
	arch, err := router.ByName(s.Router)
	if err != nil {
		return nil, err
	}
	algo, err := route.ByName(s.Routing)
	if err != nil {
		return nil, err
	}
	params := photonic.DefaultParams()
	if s.Params != nil {
		params = *s.Params
	}
	return network.New(t, arch, algo, params)
}

// Experiment is a full experiment description: what to map onto what,
// optimizing which objective, with which algorithm and budget.
type Experiment struct {
	App       AppSpec  `json:"app"`
	Arch      ArchSpec `json:"arch"`
	Objective string   `json:"objective"`           // "loss" or "snr"
	Algorithm string   `json:"algorithm,omitempty"` // default "rpbla"
	Budget    int      `json:"budget,omitempty"`    // default 20000
	Seed      int64    `json:"seed,omitempty"`      // default 1
}

// Normalize fills defaults in place.
func (e *Experiment) Normalize() {
	if e.Algorithm == "" {
		e.Algorithm = "rpbla"
	}
	if e.Budget == 0 {
		e.Budget = 20000
	}
	if e.Seed == 0 {
		e.Seed = 1
	}
	if e.Objective == "" {
		e.Objective = "snr"
	}
}

// Load reads a JSON value from r. Unknown fields are rejected to catch
// typos in hand-written experiment files.
func Load[T any](r io.Reader) (T, error) {
	var v T
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&v); err != nil {
		return v, fmt.Errorf("config: decode: %w", err)
	}
	return v, nil
}

// LoadFile reads a JSON value from a file.
func LoadFile[T any](path string) (T, error) {
	f, err := os.Open(path)
	if err != nil {
		var zero T
		return zero, err
	}
	defer f.Close()
	return Load[T](f)
}

// Save writes v as indented JSON to w.
func Save(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// SaveFile writes v as indented JSON to a file.
func SaveFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Save(f, v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
