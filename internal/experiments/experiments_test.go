package experiments

import (
	"math"
	"testing"

	"phonocmap/internal/core"
	"phonocmap/internal/search"
)

func TestPaperAppsMatchesTableII(t *testing.T) {
	apps := PaperApps()
	if len(apps) != 8 {
		t.Fatalf("PaperApps = %d entries, want 8", len(apps))
	}
	want := map[string]bool{
		"263dec_mp3dec": true, "263enc_mp3enc": true, "DVOPD": true,
		"MPEG-4": true, "MWD": true, "PIP": true, "VOPD": true, "Wavelet": true,
	}
	for _, a := range apps {
		if !want[a] {
			t.Errorf("unexpected app %q", a)
		}
	}
}

func TestSquareFor(t *testing.T) {
	cases := map[int]int{1: 1, 4: 2, 8: 3, 9: 3, 12: 4, 14: 4, 16: 4, 22: 5, 32: 6}
	for n, want := range cases {
		if got := SquareFor(n); got != want {
			t.Errorf("SquareFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestFig3SmallSample(t *testing.T) {
	res, err := Fig3("PIP", Fig3Options{Samples: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.App != "PIP" || res.Samples != 500 {
		t.Errorf("metadata: %+v", res)
	}
	if res.SNRHist.Total() != 500 || res.LossHist.Total() != 500 {
		t.Errorf("hist totals: %d, %d", res.SNRHist.Total(), res.LossHist.Total())
	}
	// The paper's headline: random mappings spread widely. Demand at
	// least 3 dB of SNR spread and 0.3 dB of loss spread over 500 draws.
	if res.SNRSummary.Max()-res.SNRSummary.Min() < 3 {
		t.Errorf("SNR spread too small: %v", res.SNRSummary.String())
	}
	if res.LossSummary.Max()-res.LossSummary.Min() < 0.3 {
		t.Errorf("loss spread too small: %v", res.LossSummary.String())
	}
	// All losses negative, all SNRs positive for this workload.
	if res.LossSummary.Max() >= 0 {
		t.Errorf("non-negative loss observed: %v", res.LossSummary.Max())
	}
	if res.SNRSummary.Min() <= 0 {
		t.Errorf("non-positive SNR observed: %v", res.SNRSummary.Min())
	}
}

func TestFig3Deterministic(t *testing.T) {
	a, err := Fig3("MWD", Fig3Options{Samples: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig3("MWD", Fig3Options{Samples: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.SNRSummary.Mean() != b.SNRSummary.Mean() || a.LossSummary.Mean() != b.LossSummary.Mean() {
		t.Error("same seed produced different distributions")
	}
	c, err := Fig3("MWD", Fig3Options{Samples: 200, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a.SNRSummary.Mean() == c.SNRSummary.Mean() {
		t.Error("different seeds produced identical distributions (suspicious)")
	}
}

func TestFig3UnknownApp(t *testing.T) {
	if _, err := Fig3("nope", Fig3Options{Samples: 10}); err == nil {
		t.Error("accepted unknown app")
	}
}

func TestTable2RowShape(t *testing.T) {
	row, err := Table2Row("PIP", Table2Options{Budget: 300, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if row.App != "PIP" {
		t.Errorf("App = %q", row.App)
	}
	for _, algo := range []string{"rs", "ga", "rpbla"} {
		for name, cells := range map[string]map[string]Cell{"mesh": row.Mesh, "torus": row.Torus} {
			cell, ok := cells[algo]
			if !ok {
				t.Fatalf("missing %s/%s cell", name, algo)
			}
			if cell.LossDB >= 0 || math.IsInf(cell.LossDB, 0) {
				t.Errorf("%s/%s loss = %v", name, algo, cell.LossDB)
			}
			if cell.SNRDB <= 0 {
				t.Errorf("%s/%s snr = %v", name, algo, cell.SNRDB)
			}
			if cell.Evals <= 0 || cell.Evals > 300 {
				t.Errorf("%s/%s evals = %d, budget 300", name, algo, cell.Evals)
			}
		}
	}
}

func TestTable2QualitativeClaims(t *testing.T) {
	// The comparison claims of the paper, on a reduced budget to keep the
	// test fast: on VOPD (a mid-size app where RS struggles), both GA and
	// R-PBLA beat RS for the SNR objective on the mesh.
	row, err := Table2Row("VOPD", Table2Options{Budget: 4000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rs := row.Mesh["rs"].SNRDB
	ga := row.Mesh["ga"].SNRDB
	rpbla := row.Mesh["rpbla"].SNRDB
	if ga <= rs {
		t.Errorf("GA snr %v did not beat RS %v on VOPD mesh", ga, rs)
	}
	if rpbla <= rs {
		t.Errorf("R-PBLA snr %v did not beat RS %v on VOPD mesh", rpbla, rs)
	}
}

func TestTable2ScalesWithNetworkSize(t *testing.T) {
	// "both the crosstalk noise and the power loss scale up with the
	// network size: the worst-case values are reached ... DVOPD".
	small, err := Table2Row("PIP", Table2Options{Budget: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Table2Row("DVOPD", Table2Options{Budget: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if big.Mesh["rs"].LossDB >= small.Mesh["rs"].LossDB {
		t.Errorf("DVOPD loss %v not worse than PIP %v", big.Mesh["rs"].LossDB, small.Mesh["rs"].LossDB)
	}
	if big.Mesh["rs"].SNRDB >= small.Mesh["rs"].SNRDB {
		t.Errorf("DVOPD snr %v not worse than PIP %v", big.Mesh["rs"].SNRDB, small.Mesh["rs"].SNRDB)
	}
}

func TestBudgetAblationMonotoneish(t *testing.T) {
	res, err := BudgetAblation("MWD", []int{200, 2000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	// More budget must not yield a worse SNR for the same seed (the
	// incumbent only improves as evaluations accumulate and the larger
	// budget replays the smaller run's prefix).
	if res[1].SNRDB < res[0].SNRDB {
		t.Errorf("budget 2000 snr %v worse than budget 200 %v", res[1].SNRDB, res[0].SNRDB)
	}
}

func TestRouterAblation(t *testing.T) {
	res, err := RouterAblation("PIP", 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Label != "crux" || res[1].Label != "crossbar" {
		t.Fatalf("results = %+v", res)
	}
	for _, r := range res {
		if r.LossDB >= 0 {
			t.Errorf("%s loss %v not negative", r.Label, r.LossDB)
		}
	}
}

func TestFig3AllMatchesSequential(t *testing.T) {
	apps := []string{"PIP", "MWD"}
	opts := Fig3Options{Samples: 150, Seed: 4}
	all, err := Fig3All(apps, opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("results = %d", len(all))
	}
	for i, app := range apps {
		if all[i] == nil || all[i].App != app {
			t.Fatalf("result %d out of order: %+v", i, all[i])
		}
		single, err := Fig3(app, opts)
		if err != nil {
			t.Fatal(err)
		}
		if all[i].SNRSummary.Mean() != single.SNRSummary.Mean() ||
			all[i].LossSummary.Mean() != single.LossSummary.Mean() {
			t.Errorf("%s: sharded Fig3 diverges from sequential", app)
		}
	}
	if _, err := Fig3All([]string{"PIP", "nope"}, opts, 2); err == nil {
		t.Error("Fig3All accepted an unknown app")
	}
}

// TestTable2MatchesDirectExplorationLoop pins the sweep-engine refactor
// to the original hand-rolled Table II loop: for every cell, one
// core.NewExploration run per (topology, algorithm, objective) with the
// option seed. If the sweep engine's normalization or seed derivation
// ever drifts, the values diverge here.
func TestTable2MatchesDirectExplorationLoop(t *testing.T) {
	const (
		app    = "PIP"
		budget = 250
	)
	opts := Table2Options{Budget: budget, Seed: 6, Algorithms: []string{"rs", "rpbla"}}
	row, err := Table2Row(app, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, torus := range []bool{false, true} {
		cells := row.Mesh
		if torus {
			cells = row.Torus
		}
		for _, algo := range opts.Algorithms {
			for _, obj := range []core.Objective{core.MaximizeSNR, core.MinimizeLoss} {
				prob, err := problemFor(app, torus, obj)
				if err != nil {
					t.Fatal(err)
				}
				s, err := search.New(algo)
				if err != nil {
					t.Fatal(err)
				}
				ex, err := core.NewExploration(prob, core.Options{Budget: budget, Seed: opts.Seed})
				if err != nil {
					t.Fatal(err)
				}
				res, err := ex.Run(s)
				if err != nil {
					t.Fatal(err)
				}
				got := cells[algo]
				if obj == core.MaximizeSNR && got.SNRDB != res.Score.WorstSNRDB {
					t.Errorf("torus=%v %s snr: sweep %v != direct %v", torus, algo, got.SNRDB, res.Score.WorstSNRDB)
				}
				if obj == core.MinimizeLoss && got.LossDB != res.Score.WorstLossDB {
					t.Errorf("torus=%v %s loss: sweep %v != direct %v", torus, algo, got.LossDB, res.Score.WorstLossDB)
				}
			}
		}
	}
}

func TestTable2FullDriver(t *testing.T) {
	// The full-table driver at a tiny budget with a restricted app and
	// algorithm set: exercises the same code path as the CLI.
	rows, err := Table2(Table2Options{
		Budget:     100,
		Seed:       4,
		Apps:       []string{"PIP", "MWD"},
		Algorithms: []string{"rs", "rpbla"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		for _, algo := range []string{"rs", "rpbla"} {
			if _, ok := row.Mesh[algo]; !ok {
				t.Errorf("%s missing mesh cell for %s", row.App, algo)
			}
			if _, ok := row.Torus[algo]; !ok {
				t.Errorf("%s missing torus cell for %s", row.App, algo)
			}
		}
	}
	if _, err := Table2(Table2Options{Budget: 10, Apps: []string{"nope"}}); err == nil {
		t.Error("Table2 accepted unknown app")
	}
}
