// Package experiments implements the paper's evaluation section (Section
// III) as reusable drivers: the Figure 3 random-mapping distribution
// study and the Table II algorithm comparison, plus ablations on the
// design choices. The CLI tool cmd/phonocmap-bench and the repository's
// benchmark suite both call into this package so that printed tables and
// testing.B benchmarks exercise identical code.
package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"phonocmap/internal/cg"
	"phonocmap/internal/config"
	"phonocmap/internal/core"
	"phonocmap/internal/search"
	"phonocmap/internal/stats"
)

// PaperApps returns the eight applications of the case studies in the
// row order of Table II.
func PaperApps() []string {
	return []string{
		"263dec_mp3dec", "263enc_mp3enc", "DVOPD", "MPEG-4",
		"MWD", "PIP", "VOPD", "Wavelet",
	}
}

// SquareFor returns the side of the smallest square grid that fits n
// tasks ("each app maps onto the smallest topology", e.g. PIP on 3x3).
func SquareFor(n int) int {
	return int(math.Ceil(math.Sqrt(float64(n))))
}

// problemFor builds the paper's problem instance for one app: smallest
// square mesh or torus of Crux routers with XY routing.
func problemFor(app string, torus bool, obj core.Objective) (*core.Problem, error) {
	g, err := cg.App(app)
	if err != nil {
		return nil, err
	}
	side := SquareFor(g.NumTasks())
	spec := config.DefaultArch(side, side)
	if torus {
		spec.Topology = "torus"
	}
	nw, err := spec.Build()
	if err != nil {
		return nil, err
	}
	return core.NewProblem(g, nw, obj)
}

// Fig3Result holds the random-mapping distributions of one application:
// the empirical SNR and power-loss histograms of Figure 3 plus summary
// statistics.
type Fig3Result struct {
	App         string
	Samples     int
	SNRHist     *stats.Histogram
	LossHist    *stats.Histogram
	SNRSummary  stats.Summary
	LossSummary stats.Summary
}

// Fig3Options configures the distribution study. The zero value is
// completed by Normalize to the paper's setup (100 000 samples) with
// histogram ranges covering Figure 3's axes.
type Fig3Options struct {
	Samples int
	Seed    int64
	Bins    int
	SNRLo   float64
	SNRHi   float64
	LossLo  float64
	LossHi  float64
}

// Normalize fills defaults in place.
func (o *Fig3Options) Normalize() {
	if o.Samples == 0 {
		o.Samples = 100_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Bins == 0 {
		o.Bins = 60
	}
	if o.SNRLo == 0 && o.SNRHi == 0 {
		o.SNRLo, o.SNRHi = 5, 45 // Figure 3a spans roughly 5..25+ dB
	}
	if o.LossLo == 0 && o.LossHi == 0 {
		o.LossLo, o.LossHi = -5, 0 // Figure 3b spans roughly -4..0 dB
	}
}

// Fig3 reproduces Figure 3 for one application: it draws random mappings
// on the app's mesh + Crux network and accumulates the worst-case SNR and
// power-loss distributions.
func Fig3(app string, opts Fig3Options) (*Fig3Result, error) {
	opts.Normalize()
	prob, err := problemFor(app, false, core.MaximizeSNR)
	if err != nil {
		return nil, err
	}
	snrHist, err := stats.NewHistogram(opts.SNRLo, opts.SNRHi, opts.Bins)
	if err != nil {
		return nil, err
	}
	lossHist, err := stats.NewHistogram(opts.LossLo, opts.LossHi, opts.Bins)
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{
		App:      app,
		Samples:  opts.Samples,
		SNRHist:  snrHist,
		LossHist: lossHist,
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	for i := 0; i < opts.Samples; i++ {
		m, err := core.RandomMapping(rng, prob.NumTasks(), prob.NumTiles())
		if err != nil {
			return nil, err
		}
		s, err := prob.Evaluate(m)
		if err != nil {
			return nil, err
		}
		res.SNRHist.Add(s.WorstSNRDB)
		res.LossHist.Add(s.WorstLossDB)
		res.SNRSummary.Add(s.WorstSNRDB)
		res.LossSummary.Add(s.WorstLossDB)
	}
	return res, nil
}

// Cell is one Table II cell pair: the best worst-case SNR and the best
// worst-case loss found by one algorithm on one topology.
type Cell struct {
	SNRDB  float64 // from the MaximizeSNR run
	LossDB float64 // from the MinimizeLoss run
	Evals  int
}

// Row is one application row of Table II: cells per algorithm for mesh
// and torus.
type Row struct {
	App   string
	Mesh  map[string]Cell
	Torus map[string]Cell
}

// Table2Options configures the algorithm comparison.
type Table2Options struct {
	// Budget is the per-run evaluation budget (the equal-running-time
	// proxy). Default 20 000.
	Budget int
	// Seed drives all runs reproducibly. Default 1.
	Seed int64
	// Algorithms defaults to the paper's rs, ga, rpbla.
	Algorithms []string
	// Apps defaults to the paper's eight applications.
	Apps []string
}

// Normalize fills defaults in place.
func (o *Table2Options) Normalize() {
	if o.Budget == 0 {
		o.Budget = 20_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Algorithms) == 0 {
		o.Algorithms = search.PaperNames()
	}
	if len(o.Apps) == 0 {
		o.Apps = PaperApps()
	}
}

// Table2Row computes one application row of Table II: every algorithm on
// mesh and torus, optimizing SNR and loss separately (as the paper's
// per-objective columns do).
func Table2Row(app string, opts Table2Options) (Row, error) {
	opts.Normalize()
	row := Row{
		App:   app,
		Mesh:  make(map[string]Cell),
		Torus: make(map[string]Cell),
	}
	for _, torus := range []bool{false, true} {
		cells := row.Mesh
		if torus {
			cells = row.Torus
		}
		for _, algo := range opts.Algorithms {
			var cell Cell
			for _, obj := range []core.Objective{core.MaximizeSNR, core.MinimizeLoss} {
				prob, err := problemFor(app, torus, obj)
				if err != nil {
					return Row{}, err
				}
				s, err := search.New(algo)
				if err != nil {
					return Row{}, err
				}
				ex, err := core.NewExploration(prob, core.Options{Budget: opts.Budget, Seed: opts.Seed})
				if err != nil {
					return Row{}, err
				}
				res, err := ex.Run(s)
				if err != nil {
					return Row{}, err
				}
				if obj == core.MaximizeSNR {
					cell.SNRDB = res.Score.WorstSNRDB
				} else {
					cell.LossDB = res.Score.WorstLossDB
				}
				cell.Evals = res.Evals
			}
			cells[algo] = cell
		}
	}
	return row, nil
}

// Table2 computes the full comparison table.
func Table2(opts Table2Options) ([]Row, error) {
	opts.Normalize()
	rows := make([]Row, 0, len(opts.Apps))
	for _, app := range opts.Apps {
		row, err := Table2Row(app, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: table2 %s: %w", app, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationResult records one configuration of an ablation sweep.
type AblationResult struct {
	Label  string
	SNRDB  float64
	LossDB float64
}

// BudgetAblation measures how the R-PBLA result quality scales with the
// evaluation budget — the knob behind the paper's "same running time"
// protocol.
func BudgetAblation(app string, budgets []int, seed int64) ([]AblationResult, error) {
	var out []AblationResult
	for _, b := range budgets {
		prob, err := problemFor(app, false, core.MaximizeSNR)
		if err != nil {
			return nil, err
		}
		ex, err := core.NewExploration(prob, core.Options{Budget: b, Seed: seed})
		if err != nil {
			return nil, err
		}
		res, err := ex.Run(search.NewRPBLA())
		if err != nil {
			return nil, err
		}
		out = append(out, AblationResult{
			Label:  fmt.Sprintf("budget=%d", b),
			SNRDB:  res.Score.WorstSNRDB,
			LossDB: res.Score.WorstLossDB,
		})
	}
	return out, nil
}

// RouterAblation compares the Crux router against the crossbar baseline
// on one application with the same optimizer and budget, demonstrating
// why router microarchitecture matters for mapping quality.
func RouterAblation(app string, budget int, seed int64) ([]AblationResult, error) {
	var out []AblationResult
	for _, routerName := range []string{"crux", "crossbar"} {
		g, err := cg.App(app)
		if err != nil {
			return nil, err
		}
		side := SquareFor(g.NumTasks())
		spec := config.DefaultArch(side, side)
		spec.Router = routerName
		nw, err := spec.Build()
		if err != nil {
			return nil, err
		}
		prob, err := core.NewProblem(g, nw, core.MaximizeSNR)
		if err != nil {
			return nil, err
		}
		ex, err := core.NewExploration(prob, core.Options{Budget: budget, Seed: seed})
		if err != nil {
			return nil, err
		}
		res, err := ex.Run(search.NewRPBLA())
		if err != nil {
			return nil, err
		}
		out = append(out, AblationResult{
			Label:  routerName,
			SNRDB:  res.Score.WorstSNRDB,
			LossDB: res.Score.WorstLossDB,
		})
	}
	return out, nil
}
