// Package experiments implements the paper's evaluation section (Section
// III) as reusable drivers: the Figure 3 random-mapping distribution
// study and the Table II algorithm comparison, plus ablations on the
// design choices. Every grid-shaped driver (Table2, BudgetAblation,
// RouterAblation) is a thin adapter over the generic sweep engine
// (internal/sweep): it declares the grid, lets the engine expand and
// execute the cells, and folds the results with the engine's
// aggregators — so the CLI tool cmd/phonocmap-bench, the repository's
// benchmark suite and the service's /v1/sweeps endpoint all execute
// identical code for identical grids.
package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"phonocmap/internal/config"
	"phonocmap/internal/core"
	"phonocmap/internal/scenario"
	"phonocmap/internal/search"
	"phonocmap/internal/stats"
	"phonocmap/internal/sweep"
)

// PaperApps returns the eight applications of the case studies in the
// row order of Table II.
func PaperApps() []string {
	return []string{
		"263dec_mp3dec", "263enc_mp3enc", "DVOPD", "MPEG-4",
		"MWD", "PIP", "VOPD", "Wavelet",
	}
}

// SquareFor returns the side of the smallest square grid that fits n
// tasks ("each app maps onto the smallest topology", e.g. PIP on 3x3).
func SquareFor(n int) int {
	return int(math.Ceil(math.Sqrt(float64(n))))
}

// problemFor builds the paper's problem instance for one app — smallest
// square mesh or torus of Crux routers with XY routing — through the
// scenario compiler, like every other front end.
func problemFor(app string, torus bool, obj core.Objective) (*core.Problem, error) {
	spec := scenario.Spec{
		App:       config.AppSpec{Builtin: app},
		Objective: obj.String(),
	}
	if torus {
		spec.Arch.Topology = "torus"
	}
	comp, err := scenario.Compile(spec)
	if err != nil {
		return nil, err
	}
	return comp.Problem, nil
}

// Fig3Result holds the random-mapping distributions of one application:
// the empirical SNR and power-loss histograms of Figure 3 plus summary
// statistics.
type Fig3Result struct {
	App         string
	Samples     int
	SNRHist     *stats.Histogram
	LossHist    *stats.Histogram
	SNRSummary  stats.Summary
	LossSummary stats.Summary
}

// Fig3Options configures the distribution study. The zero value is
// completed by Normalize to the paper's setup (100 000 samples) with
// histogram ranges covering Figure 3's axes.
type Fig3Options struct {
	Samples int
	Seed    int64
	Bins    int
	SNRLo   float64
	SNRHi   float64
	LossLo  float64
	LossHi  float64
}

// Normalize fills defaults in place.
func (o *Fig3Options) Normalize() {
	if o.Samples == 0 {
		o.Samples = 100_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Bins == 0 {
		o.Bins = 60
	}
	if o.SNRLo == 0 && o.SNRHi == 0 {
		o.SNRLo, o.SNRHi = 5, 45 // Figure 3a spans roughly 5..25+ dB
	}
	if o.LossLo == 0 && o.LossHi == 0 {
		o.LossLo, o.LossHi = -5, 0 // Figure 3b spans roughly -4..0 dB
	}
}

// Fig3 reproduces Figure 3 for one application: it draws random mappings
// on the app's mesh + Crux network and accumulates the worst-case SNR and
// power-loss distributions.
func Fig3(app string, opts Fig3Options) (*Fig3Result, error) {
	opts.Normalize()
	prob, err := problemFor(app, false, core.MaximizeSNR)
	if err != nil {
		return nil, err
	}
	snrHist, err := stats.NewHistogram(opts.SNRLo, opts.SNRHi, opts.Bins)
	if err != nil {
		return nil, err
	}
	lossHist, err := stats.NewHistogram(opts.LossLo, opts.LossHi, opts.Bins)
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{
		App:      app,
		Samples:  opts.Samples,
		SNRHist:  snrHist,
		LossHist: lossHist,
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	for i := 0; i < opts.Samples; i++ {
		m, err := core.RandomMapping(rng, prob.NumTasks(), prob.NumTiles())
		if err != nil {
			return nil, err
		}
		s, err := prob.Evaluate(m)
		if err != nil {
			return nil, err
		}
		res.SNRHist.Add(s.WorstSNRDB)
		res.LossHist.Add(s.WorstLossDB)
		res.SNRSummary.Add(s.WorstSNRDB)
		res.LossSummary.Add(s.WorstLossDB)
	}
	return res, nil
}

// Fig3All runs the distribution study for several applications sharded
// over the sweep engine's worker pool (each app is one unit of work; the
// per-app sampling itself is seed-deterministic and unchanged, so the
// worker count never changes the histograms). Results come back in input
// order. workers <= 0 means GOMAXPROCS.
func Fig3All(apps []string, opts Fig3Options, workers int) ([]*Fig3Result, error) {
	results := make([]*Fig3Result, len(apps))
	err := sweep.ForEach(context.Background(), len(apps), workers, func(_ context.Context, i int) error {
		res, err := Fig3(apps[i], opts)
		if err != nil {
			return fmt.Errorf("%s: %w", apps[i], err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// Cell is one Table II cell pair: the best worst-case SNR and the best
// worst-case loss found by one algorithm on one topology. It is the
// sweep engine's comparison-table cell.
type Cell = sweep.TableCell

// Row is one application row of Table II: cells per algorithm for mesh
// and torus. It is the sweep engine's comparison-table row.
type Row = sweep.TableRow

// Table2Options configures the algorithm comparison.
type Table2Options struct {
	// Budget is the per-run evaluation budget (the equal-running-time
	// proxy). Default 20 000.
	Budget int
	// Seed drives all runs reproducibly. Default 1.
	Seed int64
	// Algorithms defaults to the paper's rs, ga, rpbla.
	Algorithms []string
	// Apps defaults to the paper's eight applications.
	Apps []string
	// Workers bounds concurrently executing grid cells (<= 0 means
	// GOMAXPROCS). Cells are independent seeded runs, so the results are
	// identical at any worker count.
	Workers int
}

// Normalize fills defaults in place.
func (o *Table2Options) Normalize() {
	if o.Budget == 0 {
		o.Budget = 20_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Algorithms) == 0 {
		o.Algorithms = search.PaperNames()
	}
	if len(o.Apps) == 0 {
		o.Apps = PaperApps()
	}
}

// Table2Grid declares the Table II design-space grid for the sweep
// engine: every app on its smallest square mesh and torus, both
// objectives, every algorithm, one budget, one seed. The service's
// /v1/sweeps endpoint executes the same grid through the same engine, so
// the two fronts cannot drift apart.
func Table2Grid(opts Table2Options) sweep.Spec {
	opts.Normalize()
	apps := make([]config.AppSpec, 0, len(opts.Apps))
	for _, name := range opts.Apps {
		apps = append(apps, config.AppSpec{Builtin: name})
	}
	return sweep.Spec{
		Apps:       apps,
		Archs:      []config.ArchSpec{{Topology: "mesh"}, {Topology: "torus"}},
		Objectives: []string{"snr", "loss"},
		Algorithms: opts.Algorithms,
		Budgets:    []int{opts.Budget},
		Seeds:      []int64{opts.Seed},
	}
}

// Table2 computes the full comparison table by expanding the Table II
// grid and folding the executed cells into rows.
func Table2(opts Table2Options) ([]Row, error) {
	opts.Normalize()
	results, err := runGrid(Table2Grid(opts), opts.Workers)
	if err != nil {
		return nil, fmt.Errorf("experiments: table2: %w", err)
	}
	return sweep.Table(results), nil
}

// Table2Row computes one application row of Table II: every algorithm on
// mesh and torus, optimizing SNR and loss separately (as the paper's
// per-objective columns do).
func Table2Row(app string, opts Table2Options) (Row, error) {
	opts.Normalize()
	opts.Apps = []string{app}
	rows, err := Table2(opts)
	if err != nil {
		return Row{}, err
	}
	if len(rows) != 1 {
		return Row{}, fmt.Errorf("experiments: table2 %s: %d rows", app, len(rows))
	}
	return rows[0], nil
}

// runGrid expands and executes a grid with the local in-process runner,
// surfacing the first cell failure as an error (the experiment drivers
// want complete tables, not partial ones).
func runGrid(spec sweep.Spec, workers int) ([]sweep.Result, error) {
	cells, err := sweep.Expand(spec)
	if err != nil {
		return nil, err
	}
	results, err := sweep.Run(cells, sweep.RunCell, sweep.Options{Workers: workers})
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("cell %s: %w", r.Cell.Label(), r.Err)
		}
	}
	return results, nil
}

// AblationResult records one configuration of an ablation sweep.
type AblationResult struct {
	Label  string
	SNRDB  float64
	LossDB float64
}

// BudgetAblation measures how the R-PBLA result quality scales with the
// evaluation budget — the knob behind the paper's "same running time"
// protocol. It is a one-dimensional sweep over the budget axis.
func BudgetAblation(app string, budgets []int, seed int64) ([]AblationResult, error) {
	if len(budgets) == 0 {
		// An empty budget list means "no configurations", not the sweep
		// engine's default budget.
		return nil, nil
	}
	results, err := runGrid(sweep.Spec{
		Apps:       []config.AppSpec{{Builtin: app}},
		Archs:      []config.ArchSpec{{Topology: "mesh"}},
		Objectives: []string{"snr"},
		Algorithms: []string{"rpbla"},
		Budgets:    budgets,
		Seeds:      []int64{seed},
	}, 0)
	if err != nil {
		return nil, fmt.Errorf("experiments: budget ablation: %w", err)
	}
	// Results arrive in cell order — the caller's budget order.
	out := make([]AblationResult, 0, len(results))
	for _, r := range results {
		out = append(out, AblationResult{
			Label:  fmt.Sprintf("budget=%d", r.Cell.Budget),
			SNRDB:  r.Run.Score.WorstSNRDB,
			LossDB: r.Run.Score.WorstLossDB,
		})
	}
	return out, nil
}

// RouterAblation compares the Crux router against the crossbar baseline
// on one application with the same optimizer and budget, demonstrating
// why router microarchitecture matters for mapping quality. It is a
// one-dimensional sweep over the architecture axis.
func RouterAblation(app string, budget int, seed int64) ([]AblationResult, error) {
	results, err := runGrid(sweep.Spec{
		Apps: []config.AppSpec{{Builtin: app}},
		Archs: []config.ArchSpec{
			{Topology: "mesh", Router: "crux"},
			{Topology: "mesh", Router: "crossbar"},
		},
		Objectives: []string{"snr"},
		Algorithms: []string{"rpbla"},
		Budgets:    []int{budget},
		Seeds:      []int64{seed},
	}, 0)
	if err != nil {
		return nil, fmt.Errorf("experiments: router ablation: %w", err)
	}
	out := make([]AblationResult, 0, len(results))
	for _, r := range results {
		out = append(out, AblationResult{
			Label:  r.Cell.Arch.Router,
			SNRDB:  r.Run.Score.WorstSNRDB,
			LossDB: r.Run.Score.WorstLossDB,
		})
	}
	return out, nil
}
