package robust

import (
	"math"
	"math/rand"
	"testing"

	"phonocmap/internal/cg"
	"phonocmap/internal/core"
	"phonocmap/internal/network"
	"phonocmap/internal/photonic"
	"phonocmap/internal/route"
	"phonocmap/internal/router"
	"phonocmap/internal/topo"
)

func fixtures(t *testing.T) (*topo.Grid, *cg.Graph, core.Mapping) {
	t.Helper()
	g, err := topo.NewMesh(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	app := cg.MustApp("PIP")
	return g, app, core.IdentityMapping(app.NumTasks())
}

func TestVariationZeroToleranceIsDeterministic(t *testing.T) {
	g, app, m := fixtures(t)
	res, err := Variation(g, router.Crux(), route.XY{}, photonic.DefaultParams(), app, m, 5, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 5 {
		t.Errorf("Samples = %d", res.Samples)
	}
	// With zero tolerance every sample is the nominal evaluation.
	if res.Loss.StdDev() != 0 || res.SNR.StdDev() != 0 {
		t.Errorf("zero tolerance produced spread: loss sd %v, snr sd %v",
			res.Loss.StdDev(), res.SNR.StdDev())
	}
	if res.WorstLossDB != res.Loss.Min() {
		t.Error("worst loss != min sample")
	}
}

func TestVariationSpreadsWithTolerance(t *testing.T) {
	g, app, m := fixtures(t)
	res, err := Variation(g, router.Crux(), route.XY{}, photonic.DefaultParams(), app, m, 30, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Loss.StdDev() == 0 {
		t.Error("20% tolerance produced no loss spread")
	}
	if res.SNR.StdDev() == 0 {
		t.Error("20% tolerance produced no SNR spread")
	}
	// Conservative values are at least as bad as the means.
	if res.WorstLossDB > res.Loss.Mean() {
		t.Error("worst loss better than mean")
	}
	if res.WorstSNRDB > res.SNR.Mean() {
		t.Error("worst SNR better than mean")
	}
	// Determinism under a fixed seed.
	res2, err := Variation(g, router.Crux(), route.XY{}, photonic.DefaultParams(), app, m, 30, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.WorstLossDB != res2.WorstLossDB || res.WorstSNRDB != res2.WorstSNRDB {
		t.Error("same seed produced different robustness results")
	}
}

func TestVariationErrors(t *testing.T) {
	g, app, m := fixtures(t)
	p := photonic.DefaultParams()
	if _, err := Variation(g, router.Crux(), route.XY{}, p, app, m, 0, 0.1, 1); err == nil {
		t.Error("accepted zero samples")
	}
	if _, err := Variation(g, router.Crux(), route.XY{}, p, app, m, 5, 1.5, 1); err == nil {
		t.Error("accepted tolerance >= 1")
	}
	bad := p
	bad.CrossingLoss = 1
	if _, err := Variation(g, router.Crux(), route.XY{}, bad, app, m, 5, 0.1, 1); err == nil {
		t.Error("accepted invalid base params")
	}
}

func TestPerturbKeepsSign(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := photonic.DefaultParams()
	for i := 0; i < 100; i++ {
		p := perturb(rng, base, 0.3)
		if err := p.Validate(); err != nil {
			t.Fatalf("perturbed params invalid: %v", err)
		}
		if math.Abs(p.CrossingCrosstalk-base.CrossingCrosstalk) > 0.3*math.Abs(base.CrossingCrosstalk)+1e-12 {
			t.Fatalf("perturbation exceeded tolerance: %v", p.CrossingCrosstalk)
		}
	}
}

func TestLinkFailuresReroute(t *testing.T) {
	g, app, m := fixtures(t)
	// Crux lacks Y->X turns, so it must be rejected.
	if _, err := LinkFailures(g, router.Crux(), photonic.DefaultParams(), app, m); err == nil {
		t.Error("accepted Crux for BFS rerouting")
	}
	results, err := LinkFailures(g, router.Cygnus(), photonic.DefaultParams(), app, m)
	if err != nil {
		t.Fatal(err)
	}
	// A 3x3 mesh has 12 undirected links.
	if len(results) != 12 {
		t.Fatalf("results = %d, want 12", len(results))
	}
	// No single link cut disconnects a 3x3 mesh.
	baseline := math.Inf(-1)
	for _, r := range results {
		if r.Unreachable {
			t.Errorf("cut %v reported unreachable on a 2-connected mesh", r.Failed)
		}
		if r.WorstLossDB >= 0 {
			t.Errorf("cut %v: loss %v not negative", r.Failed, r.WorstLossDB)
		}
		if r.WorstLossDB > baseline {
			baseline = r.WorstLossDB
		}
	}
	// Compare against the undegraded BFS network: some cut must make the
	// worst loss strictly worse (detours are longer).
	nw, err := network.New(g, router.Cygnus(), route.BFS{}, photonic.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	prob, err := core.NewProblem(app, nw, core.MaximizeSNR)
	if err != nil {
		t.Fatal(err)
	}
	intact, err := prob.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	worstCut := 0.0
	for _, r := range results {
		if r.WorstLossDB < worstCut {
			worstCut = r.WorstLossDB
		}
	}
	if worstCut >= intact.WorstLossDB {
		t.Errorf("no cut degraded the worst loss: cut %v vs intact %v", worstCut, intact.WorstLossDB)
	}
}
