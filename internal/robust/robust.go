// Package robust quantifies how sensitive a mapping's worst-case metrics
// are to physical parameter variation and to link failures — the two
// practical perturbations a fabricated photonic NoC faces (thermal drift
// and process variation move the Table I coefficients; a broken
// waveguide removes a link).
//
// PhoNoCMap's analysis is deterministic for fixed coefficients; this
// package is the extension that tells a designer whether an optimized
// mapping's margin survives reality.
package robust

import (
	"fmt"
	"math"
	"math/rand"

	"phonocmap/internal/cg"
	"phonocmap/internal/core"
	"phonocmap/internal/network"
	"phonocmap/internal/photonic"
	"phonocmap/internal/route"
	"phonocmap/internal/router"
	"phonocmap/internal/stats"
	"phonocmap/internal/topo"
)

// VariationResult summarizes the Monte Carlo study of one mapping under
// coefficient variation.
type VariationResult struct {
	Samples int
	// Loss and SNR statistics over the perturbed parameter sets.
	Loss stats.Summary
	SNR  stats.Summary
	// WorstLossDB / WorstSNRDB are the most pessimistic draws — the
	// values a conservative designer budgets for.
	WorstLossDB float64
	WorstSNRDB  float64
}

// Variation runs a Monte Carlo study: it perturbs every Table I
// coefficient independently by a uniform relative factor in
// [-tolerance, +tolerance] (in dB magnitude), rebuilds the network, and
// re-evaluates the mapping. Typical tolerances: 0.1 to 0.3 (10–30 %
// coefficient uncertainty).
func Variation(
	t topo.Topology,
	arch *router.Architecture,
	algo route.Algorithm,
	base photonic.Params,
	app *cg.Graph,
	m core.Mapping,
	samples int,
	tolerance float64,
	seed int64,
) (VariationResult, error) {
	if samples < 1 {
		return VariationResult{}, fmt.Errorf("robust: need at least 1 sample, got %d", samples)
	}
	if tolerance < 0 || tolerance >= 1 {
		return VariationResult{}, fmt.Errorf("robust: tolerance %v out of [0, 1)", tolerance)
	}
	if err := base.Validate(); err != nil {
		return VariationResult{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	res := VariationResult{
		Samples:     samples,
		WorstLossDB: 0,
		WorstSNRDB:  math.Inf(1),
	}
	for i := 0; i < samples; i++ {
		p := perturb(rng, base, tolerance)
		nw, err := network.New(t, arch, algo, p)
		if err != nil {
			return VariationResult{}, fmt.Errorf("robust: sample %d: %w", i, err)
		}
		prob, err := core.NewProblem(app, nw, core.MaximizeSNR)
		if err != nil {
			return VariationResult{}, err
		}
		s, err := prob.Evaluate(m)
		if err != nil {
			return VariationResult{}, err
		}
		res.Loss.Add(s.WorstLossDB)
		res.SNR.Add(s.WorstSNRDB)
		if s.WorstLossDB < res.WorstLossDB {
			res.WorstLossDB = s.WorstLossDB
		}
		if s.WorstSNRDB < res.WorstSNRDB {
			res.WorstSNRDB = s.WorstSNRDB
		}
	}
	return res, nil
}

// perturb scales every coefficient by an independent factor in
// [1-tol, 1+tol]. Coefficients are negative dB values, so scaling the
// magnitude keeps them valid.
func perturb(rng *rand.Rand, p photonic.Params, tol float64) photonic.Params {
	f := func(v float64) float64 {
		return v * (1 + tol*(2*rng.Float64()-1))
	}
	return photonic.Params{
		CrossingLoss:         f(p.CrossingLoss),
		PropagationLossPerCm: f(p.PropagationLossPerCm),
		PPSEOffLoss:          f(p.PPSEOffLoss),
		PPSEOnLoss:           f(p.PPSEOnLoss),
		CPSEOffLoss:          f(p.CPSEOffLoss),
		CPSEOnLoss:           f(p.CPSEOnLoss),
		CrossingCrosstalk:    f(p.CrossingCrosstalk),
		PSEOffCrosstalk:      f(p.PSEOffCrosstalk),
		PSEOnCrosstalk:       f(p.PSEOnCrosstalk),
	}
}

// FailureResult records the impact of one link-failure scenario.
type FailureResult struct {
	Failed      [2]topo.TileID
	WorstLossDB float64
	WorstSNRDB  float64
	// Unreachable is true when the failure disconnects some mapped
	// communication entirely (no detour exists).
	Unreachable bool
}

// LinkFailures evaluates the mapping under every single-link full cut
// (both lanes of each undirected link failed, one at a time), rerouting
// with BFS. The router architecture must support the turns BFS produces;
// all-turn routers (cygnus, crossbar) qualify, Crux does not.
func LinkFailures(
	t topo.Topology,
	arch *router.Architecture,
	base photonic.Params,
	app *cg.Graph,
	m core.Mapping,
) ([]FailureResult, error) {
	if err := router.CheckTurns(arch, router.RequiredTurnsAll()); err != nil {
		return nil, fmt.Errorf("robust: link-failure analysis needs an all-turn router: %w", err)
	}
	seen := make(map[[2]topo.TileID]bool)
	var results []FailureResult
	for _, l := range t.Links() {
		key := [2]topo.TileID{l.From, l.To}
		if l.To < l.From {
			key = [2]topo.TileID{l.To, l.From}
		}
		if seen[key] {
			continue
		}
		seen[key] = true

		fr := FailureResult{Failed: key}
		deg, err := topo.Degrade(t, [][2]topo.TileID{{key[0], key[1]}, {key[1], key[0]}})
		if err != nil {
			// The cut isolates a tile: every mapping is unreachable.
			fr.Unreachable = true
			results = append(results, fr)
			continue
		}
		nw, err := network.New(deg, arch, route.BFS{}, base)
		if err != nil {
			fr.Unreachable = true
			results = append(results, fr)
			continue
		}
		prob, err := core.NewProblem(app, nw, core.MaximizeSNR)
		if err != nil {
			return nil, err
		}
		s, err := prob.Evaluate(m)
		if err != nil {
			return nil, err
		}
		fr.WorstLossDB = s.WorstLossDB
		fr.WorstSNRDB = s.WorstSNRDB
		results = append(results, fr)
	}
	return results, nil
}
