package sweep

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"phonocmap/internal/config"
	"phonocmap/internal/core"
	"phonocmap/internal/scenario"
)

func builtin(name string) config.AppSpec { return config.AppSpec{Builtin: name} }

func TestExpandGridShapeAndOrder(t *testing.T) {
	spec := Spec{
		Apps:       []config.AppSpec{builtin("PIP"), builtin("MWD")},
		Archs:      []config.ArchSpec{{Topology: "mesh"}, {Topology: "torus"}},
		Objectives: []string{"snr", "loss"},
		Algorithms: []string{"rs", "rpbla"},
		Budgets:    []int{100, 200},
		Seeds:      []int64{1, 2},
	}
	if got := spec.Size(); got != 2*2*2*2*2*2 {
		t.Fatalf("Size = %d, want 64", got)
	}
	cells, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 64 {
		t.Fatalf("expanded %d cells, want 64", len(cells))
	}
	// Deterministic ordering: apps outermost, seeds innermost.
	if cells[0].AppName() != "PIP" || cells[32].AppName() != "MWD" {
		t.Errorf("app ordering broken: %s, %s", cells[0].AppName(), cells[32].AppName())
	}
	if cells[0].Seed != 1 || cells[1].Seed != 2 {
		t.Errorf("seed is not the innermost dimension: %d, %d", cells[0].Seed, cells[1].Seed)
	}
	// Architecture auto-sizing: PIP (8 tasks) on 3x3, MWD (12) on 4x4.
	if cells[0].Arch.Width != 3 || cells[0].Arch.Height != 3 {
		t.Errorf("PIP arch = %dx%d, want 3x3", cells[0].Arch.Width, cells[0].Arch.Height)
	}
	if cells[32].Arch.Width != 4 || cells[32].Arch.Height != 4 {
		t.Errorf("MWD arch = %dx%d, want 4x4", cells[32].Arch.Width, cells[32].Arch.Height)
	}
	for _, c := range cells {
		if c.Islands != 1 {
			t.Fatalf("default islands = %d, want 1", c.Islands)
		}
	}
}

func TestExpandDefaults(t *testing.T) {
	cells, err := Expand(Spec{Apps: []config.AppSpec{builtin("VOPD")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("expanded %d cells, want 1", len(cells))
	}
	c := cells[0]
	if c.Arch.Topology != "mesh" || c.Arch.Width != 4 || c.Arch.Height != 4 ||
		c.Arch.Router != "crux" || c.Arch.Routing != "xy" {
		t.Errorf("default arch = %+v", c.Arch)
	}
	if c.Objective != "snr" || c.Algorithm != "rpbla" || c.Budget != 20000 || c.Seed != 1 {
		t.Errorf("default cell = %+v", c)
	}
}

func TestExpandRejectsBadGrids(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"no apps", Spec{}},
		{"unknown app", Spec{Apps: []config.AppSpec{builtin("NOPE")}}},
		{"unknown objective", Spec{Apps: []config.AppSpec{builtin("PIP")}, Objectives: []string{"nope"}}},
		{"unknown algorithm", Spec{Apps: []config.AppSpec{builtin("PIP")}, Algorithms: []string{"nope"}}},
		{"negative budget", Spec{Apps: []config.AppSpec{builtin("PIP")}, Budgets: []int{-1}}},
		{"arch too small", Spec{
			Apps:  []config.AppSpec{builtin("VOPD")},
			Archs: []config.ArchSpec{{Topology: "mesh", Width: 2, Height: 2}},
		}},
		{"negative islands", Spec{Apps: []config.AppSpec{builtin("PIP")}, Islands: -2}},
	}
	for _, c := range cases {
		if _, err := Expand(c.spec); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestSizeSaturatesInsteadOfOverflowing(t *testing.T) {
	many := func(n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = "snr"
		}
		return out
	}
	spec := Spec{
		Apps:       make([]config.AppSpec, 4096),
		Archs:      make([]config.ArchSpec, 4096),
		Objectives: many(4096),
		Algorithms: many(4096),
		Budgets:    make([]int, 4096),
		Seeds:      make([]int64, 4096),
	}
	// 4096^6 = 2^72 wraps negative in int64 arithmetic; the saturating
	// product must instead read as enormous so limit checks reject it.
	if got := spec.Size(); got != math.MaxInt {
		t.Fatalf("Size = %d, want saturation at MaxInt", got)
	}
	if _, err := Expand(spec); err == nil {
		t.Fatal("Expand accepted a 2^72-cell grid")
	}
	// A merely-large grid is also refused by the engine ceiling.
	big := Spec{
		Apps:  make([]config.AppSpec, 2048),
		Seeds: make([]int64, 2048),
	}
	if got := big.Size(); got != 2048*2048 {
		t.Fatalf("Size = %d, want %d", got, 2048*2048)
	}
	if _, err := Expand(big); err == nil {
		t.Fatal("Expand accepted a grid above MaxExpandCells")
	}
}

func TestRunExecutesEveryCellDeterministically(t *testing.T) {
	spec := Spec{
		Apps:       []config.AppSpec{builtin("PIP")},
		Archs:      []config.ArchSpec{{Topology: "mesh"}, {Topology: "torus"}},
		Objectives: []string{"snr", "loss"},
		Algorithms: []string{"rs"},
		Budgets:    []int{120},
		Seeds:      []int64{3},
	}
	cells, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	var done atomic.Int32
	run := func(workers int) []Result {
		results, err := Run(cells, RunCell, Options{
			Workers:    workers,
			OnCellDone: func(Result) { done.Add(1) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	seq := run(1)
	par := run(4)
	if int(done.Load()) != 2*len(cells) {
		t.Errorf("OnCellDone fired %d times, want %d", done.Load(), 2*len(cells))
	}
	for i := range seq {
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("cell %d failed: %v / %v", i, seq[i].Err, par[i].Err)
		}
		if seq[i].Run.Score != par[i].Run.Score || !seq[i].Run.Mapping.Equal(par[i].Run.Mapping) {
			t.Errorf("cell %d: sequential and parallel execution diverge", i)
		}
		if seq[i].Run.Evals != 120 {
			t.Errorf("cell %d spent %d evals, want 120", i, seq[i].Run.Evals)
		}
	}
}

func TestRunPerCellFailureIsolation(t *testing.T) {
	cells := []Cell{{Seed: 0}, {Seed: 1}, {Seed: 2}}
	boom := errors.New("boom")
	results, err := Run(cells, func(_ context.Context, c Cell) (core.RunResult, *scenario.Report, error) {
		if c.Seed == 1 {
			return core.RunResult{}, nil, boom
		}
		return core.RunResult{Evals: int(c.Seed) + 1}, nil, nil
	}, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("healthy cells poisoned: %v / %v", results[0].Err, results[2].Err)
	}
	if !errors.Is(results[1].Err, boom) {
		t.Errorf("failed cell error = %v, want boom", results[1].Err)
	}
	if results[0].Run.Evals != 1 || results[2].Run.Evals != 3 {
		t.Errorf("results misplaced: %+v", results)
	}
}

func TestRunCancellationSkipsUnstartedCells(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	block := make(chan struct{})
	var once sync.Once
	cells := make([]Cell, 16)
	results, err := Run(cells, func(cellCtx context.Context, _ Cell) (core.RunResult, *scenario.Report, error) {
		started.Add(1)
		once.Do(func() {
			cancel() // cancel the sweep from inside the first running cell
			close(block)
		})
		<-block
		if cellCtx.Err() != nil {
			return core.RunResult{}, nil, cellCtx.Err()
		}
		return core.RunResult{Evals: 1}, nil, nil
	}, Options{Workers: 1, Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	cancelled := 0
	for _, r := range results {
		if errors.Is(r.Err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled != len(cells) {
		t.Errorf("%d cells report cancellation, want %d", cancelled, len(cells))
	}
	if started.Load() != 1 {
		t.Errorf("%d cells started after cancellation, want 1", started.Load())
	}
}

func TestForEachShardsAndStopsOnError(t *testing.T) {
	var hits atomic.Int32
	if err := ForEach(context.Background(), 20, 4, func(_ context.Context, i int) error {
		hits.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 20 {
		t.Errorf("ForEach ran %d items, want 20", hits.Load())
	}

	boom := errors.New("boom")
	var ran atomic.Int32
	err := ForEach(context.Background(), 1000, 1, func(_ context.Context, i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("ForEach error = %v, want boom", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Errorf("ForEach did not stop early (%d items ran)", n)
	}
}

func TestRunCellIslandsMode(t *testing.T) {
	cells, err := Expand(Spec{
		Apps:       []config.AppSpec{builtin("PIP")},
		Algorithms: []string{"rs"},
		Budgets:    []int{80},
		Seeds:      []int64{5},
		Islands:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := RunCell(context.Background(), cells[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals != 80 {
		t.Errorf("winning island evals = %d, want 80", res.Evals)
	}
	// The islands winner is at least as good as the plain single-seed run
	// with the same base seed (islands include that seed).
	single := cells[0]
	single.Islands = 1
	sres, _, err := RunCell(context.Background(), single)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Score.Better(res.Score) {
		t.Errorf("islands result %v worse than its own base seed %v", res.Score.Cost, sres.Score.Cost)
	}
}

func TestAggregators(t *testing.T) {
	mk := func(app, topoName, obj, algo string, budget int, snr, loss float64, idx int) Result {
		return Result{
			Index: idx,
			Cell: Cell{
				App:       builtin(app),
				Arch:      config.ArchSpec{Topology: topoName},
				Objective: obj,
				Algorithm: algo,
				Budget:    budget,
			},
			Run: core.RunResult{
				Score:   core.Score{Cost: -snr, WorstSNRDB: snr, WorstLossDB: loss},
				Mapping: core.Mapping{0},
				Evals:   budget,
			},
		}
	}
	results := []Result{
		mk("PIP", "mesh", "snr", "rs", 100, 20, -2, 0),
		mk("PIP", "mesh", "loss", "rs", 100, 19, -1.5, 1),
		mk("PIP", "torus", "snr", "rs", 100, 22, -1.8, 2),
		mk("PIP", "mesh", "snr", "rpbla", 100, 25, -1.2, 3),
		{Index: 4, Err: errors.New("failed cell must be skipped")},
	}
	rows := Table(results)
	if len(rows) != 1 || rows[0].App != "PIP" {
		t.Fatalf("rows = %+v", rows)
	}
	if got := rows[0].Mesh["rs"]; got.SNRDB != 20 || got.LossDB != -1.5 {
		t.Errorf("mesh/rs cell = %+v", got)
	}
	if got := rows[0].Torus["rs"]; got.SNRDB != 22 || got.LossDB != 0 {
		t.Errorf("torus/rs cell = %+v", got)
	}
	if got := rows[0].Mesh["rpbla"]; got.SNRDB != 25 {
		t.Errorf("mesh/rpbla cell = %+v", got)
	}

	// Multi-seed/budget grids: the table keeps the BEST score per slot,
	// not whichever cell happened to come last.
	multi := []Result{
		mk("PIP", "mesh", "snr", "rs", 100, 24, -2, 0),
		mk("PIP", "mesh", "snr", "rs", 100, 21, -2, 1), // later but worse
		mk("PIP", "mesh", "loss", "rs", 100, 20, -1.9, 2),
		mk("PIP", "mesh", "loss", "rs", 100, 20, -1.1, 3), // later and better (loss closer to 0)
	}
	// mk derives Cost from -snr only; fix the loss cells' costs to match
	// the loss objective (-WorstLossDB).
	multi[2].Run.Score.Cost = 1.9
	multi[3].Run.Score.Cost = 1.1
	mrows := Table(multi)
	if got := mrows[0].Mesh["rs"]; got.SNRDB != 24 || got.LossDB != -1.1 {
		t.Errorf("multi-seed table kept non-best cells: %+v", got)
	}

	curve := BudgetCurves([]Result{
		mk("PIP", "mesh", "snr", "rs", 400, 21, -2, 0),
		mk("PIP", "mesh", "snr", "rs", 100, 20, -2, 1),
	})
	if len(curve) != 2 || curve[0].Budget != 100 || curve[1].Budget != 400 {
		t.Errorf("budget curve not sorted ascending: %+v", curve)
	}

	fronts := ParetoFronts(results)
	if len(fronts["PIP"]) == 0 {
		t.Error("empty Pareto front")
	}

	best := BestCells(results)
	if b := best["PIP/snr"]; b.Run.Score.WorstSNRDB != 25 {
		t.Errorf("best PIP/snr = %+v", b.Run.Score)
	}
}

func TestCellLabelAndBuildProblem(t *testing.T) {
	cells, err := Expand(Spec{Apps: []config.AppSpec{builtin("PIP")}, Budgets: []int{10}})
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].Label() == "" {
		t.Error("empty label")
	}
	prob, err := cells[0].BuildProblem()
	if err != nil {
		t.Fatal(err)
	}
	if prob.NumTasks() != 8 || prob.NumTiles() != 9 {
		t.Errorf("PIP problem = %d tasks on %d tiles", prob.NumTasks(), prob.NumTiles())
	}
	if s := fmt.Sprint(cells[0]); s == "" {
		t.Error("cells must be printable plain data")
	}
}

// TestExpandNormalizesAnalyses: the grid's analyses block is normalized
// once per cell through the scenario compiler, every cell carries its
// own detached copy, and invalid combinations (link failures on a
// turn-restricted router) are rejected at expansion time.
func TestExpandNormalizesAnalyses(t *testing.T) {
	cells, err := Expand(Spec{
		Apps:     []config.AppSpec{builtin("PIP")},
		Seeds:    []int64{1, 2},
		Analyses: &scenario.AnalysesSpec{Robustness: &scenario.RobustnessSpec{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cells {
		if c.Analyses == nil || c.Analyses.Robustness == nil || c.Analyses.Robustness.Samples != 50 {
			t.Fatalf("cell %d analyses not normalized: %+v", i, c.Analyses)
		}
	}
	if cells[0].Analyses == cells[1].Analyses {
		t.Error("cells share one analyses pointer")
	}

	// Link-failure analysis needs an all-turn router; the default crux
	// grid must be rejected up front.
	if _, err := Expand(Spec{
		Apps:     []config.AppSpec{builtin("PIP")},
		Analyses: &scenario.AnalysesSpec{LinkFailures: &scenario.LinkFailuresSpec{}},
	}); err == nil {
		t.Error("link-failure analyses on crux accepted")
	}
}

// TestRunCellCarriesReport: the local runner executes the cell's
// analyses and returns the report alongside the run.
func TestRunCellCarriesReport(t *testing.T) {
	cells, err := Expand(Spec{
		Apps:       []config.AppSpec{builtin("PIP")},
		Algorithms: []string{"rs"},
		Budgets:    []int{120},
		Analyses:   &scenario.AnalysesSpec{Power: &scenario.PowerSpec{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	run, rep, err := RunCell(context.Background(), cells[0])
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.Power == nil {
		t.Fatalf("report missing: %+v", rep)
	}
	if rep.Power.ChannelPowerDBm != -20-run.Score.WorstLossDB {
		t.Errorf("report inconsistent with run: %v vs loss %v", rep.Power.ChannelPowerDBm, run.Score.WorstLossDB)
	}
}

// TestAnalysisSummaryAndAnnotatedPareto: the analysis-derived
// aggregation columns fold deterministically.
func TestAnalysisSummaryAndAnnotatedPareto(t *testing.T) {
	rep := func(feasible bool, worstSNR, satLoad float64, channels int) *scenario.Report {
		return &scenario.Report{
			Power:      &scenario.PowerReport{Feasible: feasible},
			Robustness: &scenario.RobustnessReport{WorstSNRDB: worstSNR},
			Sim:        &scenario.SimReport{SaturationLoad: satLoad},
			WDM:        &scenario.WDMReport{Channels: channels},
		}
	}
	mkRes := func(idx int, app string, loss, snr float64, r *scenario.Report) Result {
		return Result{
			Index:  idx,
			Cell:   Cell{App: builtin(app), Objective: "snr"},
			Run:    core.RunResult{Mapping: core.Mapping{0}, Score: core.Score{Cost: -snr, WorstLossDB: loss, WorstSNRDB: snr}},
			Report: r,
		}
	}
	results := []Result{
		mkRes(0, "PIP", -2, 20, rep(true, 15, 4, 2)),
		mkRes(1, "PIP", -1, 18, rep(false, 12, 2, 3)),
		mkRes(2, "PIP", -3, 22, nil), // no report
		{Index: 3, Cell: Cell{App: builtin("PIP")}, Err: errors.New("boom")},
	}
	rows := AnalysisSummary(results)
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	r := rows[0]
	if r.Cells != 3 || r.Reports != 2 || r.PowerAssessed != 2 {
		t.Errorf("counters %+v", r)
	}
	if r.PowerFeasibleFraction != 0.5 {
		t.Errorf("feasible fraction %v, want 0.5", r.PowerFeasibleFraction)
	}
	if r.WorstVariationSNRDB != 12 {
		t.Errorf("worst variation SNR %v, want 12", r.WorstVariationSNRDB)
	}
	if r.SaturationLoad != 2 {
		t.Errorf("saturation load %v, want 2 (worst cell)", r.SaturationLoad)
	}
	if r.WDMMaxChannels != 3 {
		t.Errorf("wdm max channels %v, want 3", r.WDMMaxChannels)
	}

	fronts := AnnotatedParetoFronts(results)
	entries := fronts["PIP"]
	if len(entries) == 0 {
		t.Fatal("no annotated Pareto entries")
	}
	for _, e := range entries {
		switch e.CellIndex {
		case 0, 1:
			if e.Report == nil {
				t.Errorf("entry for cell %d lost its report", e.CellIndex)
			}
		case 2:
			if e.Report != nil {
				t.Errorf("entry for cell 2 gained a report")
			}
		default:
			t.Errorf("entry annotated with unexpected cell %d", e.CellIndex)
		}
	}

	// Apps without any reports still summarize (zero columns, not Inf).
	bare := []Result{mkRes(0, "MWD", -1, 10, nil)}
	rows = AnalysisSummary(bare)
	if rows[0].WorstVariationSNRDB != 0 || rows[0].SaturationLoad != 0 {
		t.Errorf("report-free columns not zeroed: %+v", rows[0])
	}
}
