// Package sweep is the design-space sweep engine: it expands a declarative
// grid specification — applications × architectures × objectives ×
// algorithms × budgets × seeds — into cells, executes the cells on a
// bounded worker pool with per-cell cancellation, and aggregates the
// results into the paper's comparison shapes (Table II rows, budget
// ablation curves, Pareto fronts).
//
// Each cell is exactly one job specification as the optimization service
// understands it: the same application/architecture normalization
// (config.ArchSpec.Normalize + config.Experiment.Normalize) and the same
// seed derivation (core.NewExploration with the cell's seed), so a cell
// run locally, through internal/experiments, or through the service's
// /v1/sweeps endpoint produces bit-identical results and shares one
// content-addressed cache identity.
package sweep

import (
	"fmt"
	"math"

	"phonocmap/internal/config"
	"phonocmap/internal/core"
	"phonocmap/internal/scenario"
	"phonocmap/internal/search"
)

// Spec is a declarative design-space grid. Every dimension is a list;
// the grid is the cross product. Empty dimensions default to the paper's
// reference choices (one auto-sized mesh, SNR objective, R-PBLA, budget
// 20000, seed 1).
type Spec struct {
	// Apps is the only required dimension.
	Apps []config.AppSpec `json:"apps"`
	// Archs lists architecture variants. Zero-valued Width/Height are
	// auto-sized per application to the smallest square that fits, so one
	// ArchSpec{Topology:"mesh"} entry covers apps of any size.
	Archs []config.ArchSpec `json:"archs,omitempty"`
	// Objectives are objective names ("snr", "loss", "wloss").
	Objectives []string `json:"objectives,omitempty"`
	// Algorithms are search algorithm names ("rs", "ga", "rpbla", ...).
	Algorithms []string `json:"algorithms,omitempty"`
	// Budgets are per-run evaluation budgets (the equal-budget protocol:
	// every algorithm compared at the same budget).
	Budgets []int `json:"budgets,omitempty"`
	// Seeds are base exploration seeds; each seed is its own grid cell.
	Seeds []int64 `json:"seeds,omitempty"`
	// Islands > 1 runs every cell in multi-seed islands mode with that
	// many concurrent seeded searches (seed, seed+1, ...).
	Islands int `json:"islands,omitempty"`
	// Analyses, when present, runs the scenario analysis pipeline (wdm,
	// power, robustness, link failures, traffic sim) on every cell's
	// winning mapping; per-cell reports feed the analysis-derived
	// aggregation columns.
	Analyses *scenario.AnalysesSpec `json:"analyses,omitempty"`
}

// normalize fills the spec's dimension defaults in place.
func (s *Spec) normalize() {
	if len(s.Archs) == 0 {
		s.Archs = []config.ArchSpec{{}} // auto-sized reference mesh
	}
	if len(s.Objectives) == 0 {
		s.Objectives = []string{"snr"}
	}
	if len(s.Algorithms) == 0 {
		s.Algorithms = []string{"rpbla"}
	}
	if len(s.Budgets) == 0 {
		s.Budgets = []int{20000}
	}
	if len(s.Seeds) == 0 {
		s.Seeds = []int64{1}
	}
	if s.Islands == 0 {
		s.Islands = 1
	}
}

// Size returns the number of cells the spec expands to, without
// expanding it — callers can reject oversized grids cheaply. The
// product saturates at math.MaxInt instead of overflowing, so an
// adversarially huge grid (six lists of thousands of entries multiply
// past 2^63) still reads as enormous rather than wrapping to a small or
// negative number and slipping past a limit check.
func (s Spec) Size() int {
	t := s
	t.normalize()
	size := 1
	for _, n := range []int{
		len(t.Apps), len(t.Archs), len(t.Objectives),
		len(t.Algorithms), len(t.Budgets), len(t.Seeds),
	} {
		if n == 0 {
			return 0
		}
		if size > math.MaxInt/n {
			return math.MaxInt
		}
		size *= n
	}
	return size
}

// Cell is one point of the grid: a fully normalized job specification.
// Equal cells describe identical computations.
type Cell struct {
	App       config.AppSpec  `json:"app"`
	Arch      config.ArchSpec `json:"arch"`
	Objective string          `json:"objective"`
	Algorithm string          `json:"algorithm"`
	Budget    int             `json:"budget"`
	Seed      int64           `json:"seed"`
	// Islands is the multi-seed island count (1 = single run).
	Islands int `json:"islands"`
	// Analyses is the normalized post-optimization analysis block shared
	// by the whole grid (nil = none).
	Analyses *scenario.AnalysesSpec `json:"analyses,omitempty"`
}

// AppName is the cell's application label for aggregation: the builtin
// name, or the custom graph's name.
func (c Cell) AppName() string {
	if c.App.Builtin != "" {
		return c.App.Builtin
	}
	return c.App.Name
}

// Label is a compact human-readable cell identity for logs and progress
// displays.
func (c Cell) Label() string {
	return fmt.Sprintf("%s/%s %dx%d/%s/%s/b%d/s%d",
		c.AppName(), c.Arch.Topology, c.Arch.Width, c.Arch.Height,
		c.Objective, c.Algorithm, c.Budget, c.Seed)
}

// Scenario converts the cell into the equivalent scenario spec — the
// exact shape the optimization service normalizes and content-addresses,
// so a cell and the job it becomes share one identity.
func (c Cell) Scenario() scenario.Spec {
	return scenario.Spec{
		App:       c.App,
		Arch:      c.Arch,
		Objective: c.Objective,
		Algorithm: c.Algorithm,
		Budget:    c.Budget,
		Seed:      c.Seed,
		Seeds:     c.Islands,
		Analyses:  c.Analyses,
	}
}

// Compile builds the runnable scenario the cell describes through the
// scenario compiler (the single spec-to-problem path), including the
// Eq. 2 fit check. The caller owns the result (problems are not safe for
// concurrent use).
func (c Cell) Compile() (*scenario.Compiled, error) {
	return scenario.Compile(c.Scenario())
}

// BuildProblem is Compile reduced to the problem instance, for callers
// that only optimize.
func (c Cell) BuildProblem() (*core.Problem, error) {
	comp, err := c.Compile()
	if err != nil {
		return nil, err
	}
	return comp.Problem, nil
}

// MaxExpandCells is the absolute ceiling on a grid's cell count: an
// engine-level backstop against runaway cross products (services layer
// their own, tighter admission limits on top).
const MaxExpandCells = 1 << 20

// Expand normalizes the spec and returns its cells in deterministic
// order: apps (outermost), archs, objectives, algorithms, budgets, seeds
// (innermost). Every cell is validated cheaply — application graph
// buildable, architecture big enough (Eq. 2), known objective and
// algorithm, positive budget — so downstream executors see only
// well-formed work.
func Expand(spec Spec) ([]Cell, error) {
	spec.normalize()
	if len(spec.Apps) == 0 {
		return nil, fmt.Errorf("sweep: grid needs at least one application")
	}
	if size := spec.Size(); size > MaxExpandCells {
		return nil, fmt.Errorf("sweep: grid expands to %d cells, engine limit %d", size, MaxExpandCells)
	}
	if spec.Islands < 1 {
		return nil, fmt.Errorf("sweep: islands must be >= 1, got %d", spec.Islands)
	}
	for _, obj := range spec.Objectives {
		if _, err := core.ParseObjective(obj); err != nil {
			return nil, err
		}
	}
	for _, algo := range spec.Algorithms {
		if _, err := search.New(algo); err != nil {
			return nil, err
		}
	}
	for _, b := range spec.Budgets {
		if b <= 0 {
			return nil, fmt.Errorf("sweep: budget must be positive, got %d", b)
		}
	}

	cells := make([]Cell, 0, spec.Size())
	for _, appSpec := range spec.Apps {
		app, err := appSpec.Build()
		if err != nil {
			return nil, err
		}
		for _, archSpec := range spec.Archs {
			arch := archSpec
			arch.Normalize(app.NumTasks())
			if tiles := archTiles(arch); tiles < app.NumTasks() {
				return nil, fmt.Errorf("sweep: %s needs %d tiles but %s %dx%d has %d (Eq. 2)",
					app.Name(), app.NumTasks(), arch.Topology, arch.Width, arch.Height, tiles)
			}
			for _, obj := range spec.Objectives {
				for _, algo := range spec.Algorithms {
					for _, budget := range spec.Budgets {
						for _, seed := range spec.Seeds {
							sc := scenario.Spec{
								App:       appSpec,
								Arch:      arch,
								Objective: obj,
								Algorithm: algo,
								Budget:    budget,
								Seed:      seed,
								Seeds:     spec.Islands,
								Analyses:  spec.Analyses,
							}
							// The scenario compiler is the one normalization
							// path; its validation also covers analysis/
							// architecture consistency (e.g. link-failure
							// analysis on a turn-restricted router).
							if _, err := sc.Normalize(); err != nil {
								return nil, err
							}
							cells = append(cells, Cell{
								App:       sc.App,
								Arch:      sc.Arch,
								Objective: sc.Objective,
								Algorithm: sc.Algorithm,
								Budget:    sc.Budget,
								Seed:      sc.Seed,
								Islands:   sc.Seeds,
								Analyses:  sc.Analyses,
							})
						}
					}
				}
			}
		}
	}
	return cells, nil
}

// archTiles computes the tile count of a normalized architecture spec
// without building the network.
func archTiles(a config.ArchSpec) int {
	if a.Topology == "ring" {
		return a.Tiles
	}
	return a.Width * a.Height
}
