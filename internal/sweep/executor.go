package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"phonocmap/internal/core"
	"phonocmap/internal/scenario"
)

// Runner executes one cell under the sweep's context, returning the
// optimization run and the cell's analysis report (nil when the cell
// requests no analyses). A cancelled runner should return the best
// partial result it has (with core.RunResult.Cancelled set) or an error
// when nothing was evaluated. Runners that need finer-grained
// cancellation derive their own context per cell (the service's job
// runner does, through job contexts).
type Runner func(ctx context.Context, c Cell) (core.RunResult, *scenario.Report, error)

// Result is the outcome of one executed cell.
type Result struct {
	// Index is the cell's position in the expanded grid.
	Index int
	Cell  Cell
	Run   core.RunResult
	// Report is the cell's post-optimization analysis report (nil when
	// the cell requested no analyses, or on failure).
	Report *scenario.Report
	// Err is non-nil when the cell failed (or was cancelled before any
	// evaluation); Run is then zero-valued.
	Err error
}

// Options configures a sweep execution.
type Options struct {
	// Workers bounds concurrently running cells; <= 0 means GOMAXPROCS.
	Workers int
	// Context, when non-nil, cancels the whole sweep: in-flight cells
	// wind down through their per-cell contexts, unstarted cells are
	// skipped (reported as cancelled).
	Context context.Context
	// OnCellDone, when non-nil, is called as each cell settles — live
	// per-cell progress for CLIs and services. Calls may arrive
	// concurrently from all workers.
	OnCellDone func(Result)
}

// Run executes every cell through the runner on ForEach's bounded
// worker pool and returns the results in cell order. Cell failures are
// recorded in their Result, not returned: a 500-cell sweep with one
// broken cell still yields 499 results; cells skipped because the sweep
// context was cancelled report the cancellation as their Err. The
// returned error is only non-nil for invalid arguments.
func Run(cells []Cell, run Runner, opts Options) ([]Result, error) {
	if run == nil {
		return nil, fmt.Errorf("sweep: nil runner")
	}
	parent := opts.Context
	if parent == nil {
		parent = context.Background()
	}
	results := make([]Result, len(cells))
	done := make([]bool, len(cells))
	err := ForEach(parent, len(cells), opts.Workers, func(ctx context.Context, i int) error {
		res := Result{Index: i, Cell: cells[i]}
		res.Run, res.Report, res.Err = run(ctx, cells[i])
		results[i] = res
		done[i] = true
		if opts.OnCellDone != nil {
			opts.OnCellDone(res)
		}
		return nil // cell failures stay in their Result
	})
	// The only error ForEach can surface here is the parent context's
	// cancellation (the callback never returns one); the skipped cells
	// record it below.
	if err != nil && !errors.Is(err, parent.Err()) {
		return nil, err
	}
	for i := range results {
		if done[i] {
			continue
		}
		cause := parent.Err()
		if cause == nil {
			cause = context.Canceled
		}
		res := Result{Index: i, Cell: cells[i], Err: cause}
		results[i] = res
		if opts.OnCellDone != nil {
			opts.OnCellDone(res)
		}
	}
	return results, nil
}

// ForEach runs fn(i) for i in [0, n) on a pool of `workers` goroutines
// (<= 0 means GOMAXPROCS; never more than n), stopping early on the
// first error or context cancellation (in-flight items finish; unfed
// items are skipped). It is the sharding primitive under Run — and
// exported for drivers whose unit of work is not a grid cell, e.g. the
// Figure 3 per-application distribution study. The pool is fixed-size:
// feeding a million items costs a million channel sends, not a million
// parked goroutines.
func ForEach(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if fn == nil {
		return fmt.Errorf("sweep: nil function")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if ctx == nil {
		ctx = context.Background()
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
	)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < max(workers, 1); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if runCtx.Err() != nil {
					continue // drain so the feeder never blocks
				}
				if err := fn(runCtx, i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					cancel()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		if runCtx.Err() != nil {
			break
		}
		idx <- i
	}
	close(idx)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// RunCell is the local Runner: it compiles and executes the cell
// in-process through the scenario pipeline — a single seeded
// exploration, or islands mode when Cell.Islands > 1, followed by the
// cell's analyses on the winning mapping. The seed derivation is
// identical to the service's job execution (core.NewExploration with the
// cell seed), so local sweeps, internal/experiments drivers and service
// sweeps produce bit-identical results for equal cells.
func RunCell(ctx context.Context, c Cell) (core.RunResult, *scenario.Report, error) {
	comp, err := c.Compile()
	if err != nil {
		return core.RunResult{}, nil, err
	}
	run, err := comp.Optimize(ctx)
	if err != nil {
		return core.RunResult{}, nil, err
	}
	rep, err := comp.Analyze(run.Mapping, run.Score)
	if err != nil {
		return core.RunResult{}, nil, err
	}
	return run, rep, nil
}
