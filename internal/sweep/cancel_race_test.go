package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"phonocmap/internal/core"
	"phonocmap/internal/scenario"
)

// These tests pin ForEach/Run cancellation behavior under concurrency —
// the CI race step runs this package with -race, which is the point:
// the fleet coordinator's migration path retries cells through ForEach
// and depends on completed work surviving a mid-shard cancellation
// without data races on the shared result slices.

// TestForEachParentCancelMidShardRace cancels the parent context while
// workers are mid-item: in-flight items finish (each callback runs to
// completion exactly once), unfed items are never started, and ForEach
// reports the parent's cancellation.
func TestForEachParentCancelMidShardRace(t *testing.T) {
	const n, workers = 200, 8
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var (
		started   atomic.Int64
		completed atomic.Int64
		ran       [n]atomic.Int32
		release   = make(chan struct{})
		once      sync.Once
	)
	err := ForEach(ctx, n, workers, func(fnCtx context.Context, i int) error {
		started.Add(1)
		ran[i].Add(1)
		// The first full wave parks until the parent dies, so the cancel
		// is guaranteed to land while every worker is mid-item.
		once.Do(func() {
			cancel()
			close(release)
		})
		<-release
		completed.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForEach returned %v, want context.Canceled", err)
	}
	if s, c := started.Load(), completed.Load(); s != c {
		t.Errorf("started %d items but completed %d: an in-flight item was abandoned", s, c)
	}
	// Cancellation mid-shard must stop the feeder: with 8 workers and an
	// immediate cancel, nowhere near all 200 items may start.
	if s := started.Load(); s == n {
		t.Errorf("all %d items started despite mid-shard cancellation", n)
	}
	for i := range ran {
		if c := ran[i].Load(); c > 1 {
			t.Fatalf("item %d ran %d times", i, c)
		}
	}
}

// TestForEachWorkerErrorPropagationRace: a failing item cancels the
// pool from inside a worker while its siblings are running; the first
// error (and only an error, never a spurious context cancellation) is
// returned, and the failure's cancellation reaches the other workers'
// contexts.
func TestForEachWorkerErrorPropagationRace(t *testing.T) {
	const n, workers = 200, 8
	boom := errors.New("boom")
	var sawCancel atomic.Bool
	err := ForEach(context.Background(), n, workers, func(ctx context.Context, i int) error {
		if i == 3 {
			return boom
		}
		if ctx.Err() != nil {
			sawCancel.Store(true)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("ForEach returned %v, want the worker's error", err)
	}
	// Not asserted strictly (scheduling may finish fast items first),
	// but exercised under -race: workers observing the internal cancel
	// concurrently with the error write is the race this test hunts.
	_ = sawCancel.Load()
}

// TestRunParentCancelPreservesCompletedCells is the fleet retry path's
// dependency stated as a contract: when the sweep context dies mid-run,
// every cell that completed keeps its full Result (run and report), and
// only unstarted cells record the cancellation as their Err.
func TestRunParentCancelPreservesCompletedCells(t *testing.T) {
	const n, workers, settleAt = 64, 4, 8
	cells := make([]Cell, n)
	for i := range cells {
		cells[i].Seed = int64(i) // distinguishable results
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var settled atomic.Int64
	results, err := Run(cells, func(fnCtx context.Context, c Cell) (core.RunResult, *scenario.Report, error) {
		if settled.Add(1) == settleAt {
			cancel()
		}
		if fnCtx.Err() != nil {
			// Mirrors a real runner racing the cancel: cancelled before any
			// evaluation reports the cancellation as an error.
			return core.RunResult{}, nil, fnCtx.Err()
		}
		return core.RunResult{Seed: c.Seed, Evals: 1}, nil, nil
	}, Options{Workers: workers, Context: ctx})
	if err != nil {
		t.Fatalf("Run returned %v; cell and cancellation outcomes belong in the results", err)
	}
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}

	var ok, cancelled int
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("result %d carries index %d: order must be preserved", i, r.Index)
		}
		switch {
		case r.Err == nil:
			ok++
			if r.Run.Seed != cells[i].Seed || r.Run.Evals != 1 {
				t.Errorf("completed cell %d lost its result: %+v", i, r.Run)
			}
		case errors.Is(r.Err, context.Canceled):
			cancelled++
		default:
			t.Errorf("cell %d has unexpected error %v", i, r.Err)
		}
	}
	if ok == 0 {
		t.Error("no completed cells survived the cancellation")
	}
	if cancelled == 0 {
		t.Error("no cell recorded the cancellation")
	}
	if ok+cancelled != n {
		t.Errorf("completed (%d) + cancelled (%d) != %d", ok, cancelled, n)
	}
}

// TestRunWorkerPanicFreeErrorRace floods Run with failing cells from
// every worker at once: each failure must land in its own Result (the
// engine returns no error), with OnCellDone fired exactly once per
// cell from concurrent workers.
func TestRunWorkerPanicFreeErrorRace(t *testing.T) {
	const n, workers = 100, 8
	cells := make([]Cell, n)
	var callbacks atomic.Int64
	results, err := Run(cells, func(ctx context.Context, c Cell) (core.RunResult, *scenario.Report, error) {
		return core.RunResult{}, nil, fmt.Errorf("cell failure")
	}, Options{
		Workers:    workers,
		OnCellDone: func(Result) { callbacks.Add(1) },
	})
	if err != nil {
		t.Fatalf("Run returned %v, want nil (failures live in Results)", err)
	}
	for i, r := range results {
		if r.Err == nil {
			t.Fatalf("cell %d lost its failure", i)
		}
	}
	if c := callbacks.Load(); c != n {
		t.Errorf("OnCellDone fired %d times, want %d", c, n)
	}
}
