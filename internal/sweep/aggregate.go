package sweep

import (
	"sort"

	"phonocmap/internal/core"
)

// TableCell is one algorithm/topology cell of a comparison table: the
// best worst-case SNR found under the "snr" objective and the best
// worst-case loss found under the "loss" objective, à la Table II.
type TableCell struct {
	SNRDB  float64 `json:"snr_db"`
	LossDB float64 `json:"loss_db"`
	Evals  int     `json:"evals"`
}

// TableRow is one application row of the comparison table: per-algorithm
// cells for the mesh and torus topologies.
type TableRow struct {
	App   string               `json:"app"`
	Mesh  map[string]TableCell `json:"mesh"`
	Torus map[string]TableCell `json:"torus"`
}

// Table folds sweep results into Table II comparison rows: one row per
// application (in order of first appearance), one cell per
// (topology, algorithm) with the SNR column taken from "snr"-objective
// cells and the loss column from "loss"-objective cells. When the grid
// spans several budgets or seeds, each column reports the best score any
// of those cells found (ties keep the earlier cell), honoring the
// "best ... found" semantics of TableCell. Results from topologies other
// than mesh/torus, and failed cells, are skipped.
func Table(results []Result) []TableRow {
	type slot struct{ app, topo, algo, obj string }
	bestCost := make(map[slot]float64)
	byApp := make(map[string]*TableRow)
	var order []string
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		switch r.Cell.Arch.Topology {
		case "mesh", "torus":
		default:
			continue
		}
		switch r.Cell.Objective {
		case "snr", "loss":
		default:
			continue
		}
		app := r.Cell.AppName()
		row, ok := byApp[app]
		if !ok {
			row = &TableRow{
				App:   app,
				Mesh:  make(map[string]TableCell),
				Torus: make(map[string]TableCell),
			}
			byApp[app] = row
			order = append(order, app)
		}
		cells := row.Mesh
		if r.Cell.Arch.Topology == "torus" {
			cells = row.Torus
		}
		k := slot{app, r.Cell.Arch.Topology, r.Cell.Algorithm, r.Cell.Objective}
		if prev, seen := bestCost[k]; seen && prev <= r.Run.Score.Cost {
			continue
		}
		bestCost[k] = r.Run.Score.Cost
		cell := cells[r.Cell.Algorithm]
		if r.Cell.Objective == "snr" {
			cell.SNRDB = r.Run.Score.WorstSNRDB
		} else {
			cell.LossDB = r.Run.Score.WorstLossDB
		}
		cell.Evals = r.Run.Evals
		cells[r.Cell.Algorithm] = cell
	}
	rows := make([]TableRow, 0, len(order))
	for _, app := range order {
		rows = append(rows, *byApp[app])
	}
	return rows
}

// BudgetPoint is one point of a budget-ablation curve: the result
// quality one algorithm reached on one application, topology and
// objective at one budget.
type BudgetPoint struct {
	App       string  `json:"app"`
	Topology  string  `json:"topology"`
	Objective string  `json:"objective"`
	Algorithm string  `json:"algorithm"`
	Budget    int     `json:"budget"`
	SNRDB     float64 `json:"snr_db"`
	LossDB    float64 `json:"loss_db"`
	Evals     int     `json:"evals"`
}

// BudgetCurves folds sweep results into budget-ablation curves, sorted
// by application, topology, objective, algorithm, then ascending budget
// — how result quality scales with the evaluation budget, the knob
// behind the paper's "same running time" protocol. Both score columns
// come from each cell's single run (a Score carries both metrics
// regardless of objective).
func BudgetCurves(results []Result) []BudgetPoint {
	var pts []BudgetPoint
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		pts = append(pts, BudgetPoint{
			App:       r.Cell.AppName(),
			Topology:  r.Cell.Arch.Topology,
			Objective: r.Cell.Objective,
			Algorithm: r.Cell.Algorithm,
			Budget:    r.Cell.Budget,
			SNRDB:     r.Run.Score.WorstSNRDB,
			LossDB:    r.Run.Score.WorstLossDB,
			Evals:     r.Run.Evals,
		})
	}
	sort.SliceStable(pts, func(i, j int) bool {
		a, b := pts[i], pts[j]
		switch {
		case a.App != b.App:
			return a.App < b.App
		case a.Topology != b.Topology:
			return a.Topology < b.Topology
		case a.Objective != b.Objective:
			return a.Objective < b.Objective
		case a.Algorithm != b.Algorithm:
			return a.Algorithm < b.Algorithm
		default:
			return a.Budget < b.Budget
		}
	})
	return pts
}

// ParetoFronts builds, per application, the Pareto front of
// (worst-case loss, worst-case SNR) over the best mappings of every
// successful cell — the multi-objective view of a sweep whose cells
// optimized different single objectives.
func ParetoFronts(results []Result) map[string][]core.ParetoPoint {
	fronts := make(map[string]*core.ParetoFront)
	for _, r := range results {
		if r.Err != nil || r.Run.Mapping == nil {
			continue
		}
		app := r.Cell.AppName()
		f, ok := fronts[app]
		if !ok {
			f = &core.ParetoFront{}
			fronts[app] = f
		}
		f.Offer(r.Run.Mapping, r.Run.Score)
	}
	out := make(map[string][]core.ParetoPoint, len(fronts))
	for app, f := range fronts {
		out[app] = f.Points()
	}
	return out
}

// BestCells returns the best result per (application, objective) pair —
// cost comparisons are only meaningful within one objective. Keys are
// "app/objective". Ties break toward the lower cell index (results
// arrive in cell order), so the selection is deterministic regardless of
// execution scheduling.
func BestCells(results []Result) map[string]Result {
	best := make(map[string]Result)
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		key := r.Cell.AppName() + "/" + r.Cell.Objective
		if cur, ok := best[key]; !ok || r.Run.Score.Better(cur.Run.Score) {
			best[key] = r
		}
	}
	return best
}
