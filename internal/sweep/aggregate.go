package sweep

import (
	"math"
	"sort"

	"phonocmap/internal/core"
	"phonocmap/internal/scenario"
)

// TableCell is one algorithm/topology cell of a comparison table: the
// best worst-case SNR found under the "snr" objective and the best
// worst-case loss found under the "loss" objective, à la Table II.
type TableCell struct {
	SNRDB  float64 `json:"snr_db"`
	LossDB float64 `json:"loss_db"`
	Evals  int     `json:"evals"`
}

// TableRow is one application row of the comparison table: per-algorithm
// cells for the mesh and torus topologies.
type TableRow struct {
	App   string               `json:"app"`
	Mesh  map[string]TableCell `json:"mesh"`
	Torus map[string]TableCell `json:"torus"`
}

// Table folds sweep results into Table II comparison rows: one row per
// application (in order of first appearance), one cell per
// (topology, algorithm) with the SNR column taken from "snr"-objective
// cells and the loss column from "loss"-objective cells. When the grid
// spans several budgets or seeds, each column reports the best score any
// of those cells found (ties keep the earlier cell), honoring the
// "best ... found" semantics of TableCell. Results from topologies other
// than mesh/torus, and failed cells, are skipped.
func Table(results []Result) []TableRow {
	type slot struct{ app, topo, algo, obj string }
	bestCost := make(map[slot]float64)
	byApp := make(map[string]*TableRow)
	var order []string
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		switch r.Cell.Arch.Topology {
		case "mesh", "torus":
		default:
			continue
		}
		switch r.Cell.Objective {
		case "snr", "loss":
		default:
			continue
		}
		app := r.Cell.AppName()
		row, ok := byApp[app]
		if !ok {
			row = &TableRow{
				App:   app,
				Mesh:  make(map[string]TableCell),
				Torus: make(map[string]TableCell),
			}
			byApp[app] = row
			order = append(order, app)
		}
		cells := row.Mesh
		if r.Cell.Arch.Topology == "torus" {
			cells = row.Torus
		}
		k := slot{app, r.Cell.Arch.Topology, r.Cell.Algorithm, r.Cell.Objective}
		if prev, seen := bestCost[k]; seen && prev <= r.Run.Score.Cost {
			continue
		}
		bestCost[k] = r.Run.Score.Cost
		cell := cells[r.Cell.Algorithm]
		if r.Cell.Objective == "snr" {
			cell.SNRDB = r.Run.Score.WorstSNRDB
		} else {
			cell.LossDB = r.Run.Score.WorstLossDB
		}
		cell.Evals = r.Run.Evals
		cells[r.Cell.Algorithm] = cell
	}
	rows := make([]TableRow, 0, len(order))
	for _, app := range order {
		rows = append(rows, *byApp[app])
	}
	return rows
}

// BudgetPoint is one point of a budget-ablation curve: the result
// quality one algorithm reached on one application, topology and
// objective at one budget.
type BudgetPoint struct {
	App       string  `json:"app"`
	Topology  string  `json:"topology"`
	Objective string  `json:"objective"`
	Algorithm string  `json:"algorithm"`
	Budget    int     `json:"budget"`
	SNRDB     float64 `json:"snr_db"`
	LossDB    float64 `json:"loss_db"`
	Evals     int     `json:"evals"`
}

// BudgetCurves folds sweep results into budget-ablation curves, sorted
// by application, topology, objective, algorithm, then ascending budget
// — how result quality scales with the evaluation budget, the knob
// behind the paper's "same running time" protocol. Both score columns
// come from each cell's single run (a Score carries both metrics
// regardless of objective).
func BudgetCurves(results []Result) []BudgetPoint {
	var pts []BudgetPoint
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		pts = append(pts, BudgetPoint{
			App:       r.Cell.AppName(),
			Topology:  r.Cell.Arch.Topology,
			Objective: r.Cell.Objective,
			Algorithm: r.Cell.Algorithm,
			Budget:    r.Cell.Budget,
			SNRDB:     r.Run.Score.WorstSNRDB,
			LossDB:    r.Run.Score.WorstLossDB,
			Evals:     r.Run.Evals,
		})
	}
	sort.SliceStable(pts, func(i, j int) bool {
		a, b := pts[i], pts[j]
		switch {
		case a.App != b.App:
			return a.App < b.App
		case a.Topology != b.Topology:
			return a.Topology < b.Topology
		case a.Objective != b.Objective:
			return a.Objective < b.Objective
		case a.Algorithm != b.Algorithm:
			return a.Algorithm < b.Algorithm
		default:
			return a.Budget < b.Budget
		}
	})
	return pts
}

// ParetoFronts builds, per application, the Pareto front of
// (worst-case loss, worst-case SNR) over the best mappings of every
// successful cell — the multi-objective view of a sweep whose cells
// optimized different single objectives.
func ParetoFronts(results []Result) map[string][]core.ParetoPoint {
	fronts := make(map[string]*core.ParetoFront)
	for _, r := range results {
		if r.Err != nil || r.Run.Mapping == nil {
			continue
		}
		app := r.Cell.AppName()
		f, ok := fronts[app]
		if !ok {
			f = &core.ParetoFront{}
			fronts[app] = f
		}
		f.Offer(r.Run.Mapping, r.Run.Score)
	}
	out := make(map[string][]core.ParetoPoint, len(fronts))
	for app, f := range fronts {
		out[app] = f.Points()
	}
	return out
}

// AnalysisRow aggregates the analysis reports of one application's cells
// into the sweep's analysis-derived comparison columns. Counters tell
// how many cells contributed to each column, so a fraction over a
// partial grid is never mistaken for one over the whole grid.
type AnalysisRow struct {
	App string `json:"app"`
	// Cells counts the successful cells of the application; Reports those
	// that carried an analysis report.
	Cells   int `json:"cells"`
	Reports int `json:"reports"`
	// PowerFeasibleFraction is the fraction of power-assessed cells whose
	// design point fit the optical power budget.
	PowerAssessed         int     `json:"power_assessed,omitempty"`
	PowerFeasibleFraction float64 `json:"power_feasible_fraction"`
	// WorstVariationSNRDB is the most pessimistic finite SNR any
	// robustness study of the application observed.
	RobustnessAssessed  int     `json:"robustness_assessed,omitempty"`
	WorstVariationSNRDB float64 `json:"worst_variation_snr_db"`
	// SaturationLoad is the smallest per-cell saturation point over the
	// simulated cells — the load headroom the worst mapping guarantees.
	SimAssessed    int     `json:"sim_assessed,omitempty"`
	SaturationLoad float64 `json:"saturation_load"`
	// WDMMaxChannels is the largest wavelength count any cell needed for
	// contention-free operation.
	WDMAssessed    int `json:"wdm_assessed,omitempty"`
	WDMMaxChannels int `json:"wdm_max_channels"`
}

// AnalysisSummary folds the per-cell analysis reports into one row per
// application (in order of first appearance, like Table): power-feasible
// fraction, worst SNR under parameter variation, worst simulated
// saturation point and peak WDM channel demand. Failed cells and cells
// without reports are skipped (but counted in Cells when successful).
func AnalysisSummary(results []Result) []AnalysisRow {
	byApp := make(map[string]*AnalysisRow)
	var order []string
	feasible := make(map[string]int)
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		app := r.Cell.AppName()
		row, ok := byApp[app]
		if !ok {
			row = &AnalysisRow{App: app, WorstVariationSNRDB: math.Inf(1), SaturationLoad: math.Inf(1)}
			byApp[app] = row
			order = append(order, app)
		}
		row.Cells++
		rep := r.Report
		if rep == nil {
			continue
		}
		row.Reports++
		if rep.Power != nil {
			row.PowerAssessed++
			if rep.Power.Feasible {
				feasible[app]++
			}
		}
		if rep.Robustness != nil {
			row.RobustnessAssessed++
			if rep.Robustness.WorstSNRDB < row.WorstVariationSNRDB {
				row.WorstVariationSNRDB = rep.Robustness.WorstSNRDB
			}
		}
		if rep.Sim != nil {
			row.SimAssessed++
			if rep.Sim.SaturationLoad < row.SaturationLoad {
				row.SaturationLoad = rep.Sim.SaturationLoad
			}
		}
		if rep.WDM != nil {
			row.WDMAssessed++
			if rep.WDM.Channels > row.WDMMaxChannels {
				row.WDMMaxChannels = rep.WDM.Channels
			}
		}
	}
	rows := make([]AnalysisRow, 0, len(order))
	for _, app := range order {
		row := byApp[app]
		if row.PowerAssessed > 0 {
			row.PowerFeasibleFraction = float64(feasible[app]) / float64(row.PowerAssessed)
		}
		// Columns no cell contributed to read as zero, not +Inf (which
		// JSON cannot carry anyway).
		if row.RobustnessAssessed == 0 {
			row.WorstVariationSNRDB = 0
		}
		if row.SimAssessed == 0 {
			row.SaturationLoad = 0
		}
		rows = append(rows, *row)
	}
	return rows
}

// ParetoEntry is one non-dominated point of an annotated Pareto front:
// the point itself plus the producing cell and its analysis report, so
// multi-objective views carry the physical-feasibility columns.
type ParetoEntry struct {
	core.ParetoPoint
	// CellIndex is the grid position of the cell whose best mapping the
	// point is.
	CellIndex int `json:"cell_index"`
	// Report is that cell's analysis report (nil when none was run).
	Report *scenario.Report `json:"report,omitempty"`
}

// AnnotatedParetoFronts builds, per application, the Pareto front of
// (worst-case loss, worst-case SNR) over the best mappings of every
// successful cell — like ParetoFronts — and annotates each surviving
// point with the cell that produced it and that cell's analysis report.
// Ties on an identical score keep the earlier cell, so annotation is
// deterministic regardless of execution order.
func AnnotatedParetoFronts(results []Result) map[string][]ParetoEntry {
	fronts := ParetoFronts(results)
	out := make(map[string][]ParetoEntry, len(fronts))
	for app, pts := range fronts {
		entries := make([]ParetoEntry, 0, len(pts))
		for _, p := range pts {
			e := ParetoEntry{ParetoPoint: p, CellIndex: -1}
			for _, r := range results {
				if r.Err != nil || r.Cell.AppName() != app {
					continue
				}
				if r.Run.Score.WorstLossDB == p.WorstLossDB && r.Run.Score.WorstSNRDB == p.WorstSNRDB {
					e.CellIndex = r.Index
					e.Report = r.Report
					break
				}
			}
			entries = append(entries, e)
		}
		out[app] = entries
	}
	return out
}

// BestCells returns the best result per (application, objective) pair —
// cost comparisons are only meaningful within one objective. Keys are
// "app/objective". Ties break toward the lower cell index (results
// arrive in cell order), so the selection is deterministic regardless of
// execution scheduling.
func BestCells(results []Result) map[string]Result {
	best := make(map[string]Result)
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		key := r.Cell.AppName() + "/" + r.Cell.Objective
		if cur, ok := best[key]; !ok || r.Run.Score.Better(cur.Run.Score) {
			best[key] = r
		}
	}
	return best
}
