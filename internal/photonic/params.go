// Package photonic models the fundamental photonic building blocks of an
// optical network-on-chip: silicon waveguides, waveguide crossings, and
// microring-resonator-based photonic switching elements (PSEs).
//
// The model follows Section II-C of Fusella & Cilardo, "PhoNoCMap: an
// Application Mapping Tool for Photonic Networks-on-Chip" (DATE 2016),
// which in turn simplifies the analytical model of Xie et al. (TVLSI 2013):
//
//   - only first-order crosstalk is considered (Ki*Kj = 0);
//   - crosstalk entering on the add port and back-reflection are neglected;
//   - noise suffers no loss inside the switch that generates it (Ki*Li = Ki),
//     but it does suffer all downstream losses along the victim path.
//
// All coefficients are expressed in dB (losses and crosstalk couplings are
// negative). Powers combine additively in dB along a path and linearly when
// aggregating noise from several sources.
package photonic

import (
	"errors"
	"fmt"
	"math"
)

// Params holds the loss and crosstalk coefficients of Table I of the paper.
// The zero value is not useful; use DefaultParams or fill all fields.
// All values are in dB (dB/cm for PropagationLossPerCm) and must be <= 0:
// a coefficient of -3 dB means the power is halved.
type Params struct {
	// CrossingLoss is Lc, the power loss of a signal passing straight
	// through a waveguide crossing. Table I: -0.04 dB [Ding 2010].
	CrossingLoss float64

	// PropagationLossPerCm is Lp, the power lost per centimetre of
	// silicon waveguide. Table I: -0.274 dB/cm [Dong 2010].
	PropagationLossPerCm float64

	// PPSEOffLoss is Lp,off, the loss of a parallel PSE in the OFF state
	// (signal continues on its own waveguide). Table I: -0.005 dB [Chan 2011].
	PPSEOffLoss float64

	// PPSEOnLoss is Lp,on, the loss of a parallel PSE in the ON state
	// (signal coupled into the ring and dropped). Table I: -0.5 dB [Chan 2011].
	PPSEOnLoss float64

	// CPSEOffLoss is Lc,off, the loss of a crossing PSE in the OFF state.
	// Table I: -0.045 dB (crossing loss plus ring proximity).
	CPSEOffLoss float64

	// CPSEOnLoss is Lc,on, the loss of a crossing PSE in the ON state.
	// Table I: -0.5 dB [Lee 2008].
	CPSEOnLoss float64

	// CrossingCrosstalk is Kc, the fraction of power leaking into each
	// perpendicular output of a waveguide crossing. Table I: -40 dB [Ding 2010].
	CrossingCrosstalk float64

	// PSEOffCrosstalk is Kp,off, the ring leakage of a PSE in the OFF
	// state. Table I: -20 dB [Chan 2011].
	PSEOffCrosstalk float64

	// PSEOnCrosstalk is Kp,on, the ring leakage of a PSE in the ON state.
	// Table I: -25 dB [Chan 2011].
	PSEOnCrosstalk float64
}

// DefaultParams returns the coefficients of Table I of the paper.
func DefaultParams() Params {
	return Params{
		CrossingLoss:         -0.04,
		PropagationLossPerCm: -0.274,
		PPSEOffLoss:          -0.005,
		PPSEOnLoss:           -0.5,
		CPSEOffLoss:          -0.045,
		CPSEOnLoss:           -0.5,
		CrossingCrosstalk:    -40,
		PSEOffCrosstalk:      -20,
		PSEOnCrosstalk:       -25,
	}
}

// Validate reports whether every coefficient is a non-positive, finite
// number. Positive "losses" would amplify signals and indicate a sign
// mistake in a user-supplied parameter set.
func (p Params) Validate() error {
	checks := []struct {
		name string
		v    float64
	}{
		{"CrossingLoss", p.CrossingLoss},
		{"PropagationLossPerCm", p.PropagationLossPerCm},
		{"PPSEOffLoss", p.PPSEOffLoss},
		{"PPSEOnLoss", p.PPSEOnLoss},
		{"CPSEOffLoss", p.CPSEOffLoss},
		{"CPSEOnLoss", p.CPSEOnLoss},
		{"CrossingCrosstalk", p.CrossingCrosstalk},
		{"PSEOffCrosstalk", p.PSEOffCrosstalk},
		{"PSEOnCrosstalk", p.PSEOnCrosstalk},
	}
	for _, c := range checks {
		if math.IsNaN(c.v) || math.IsInf(c.v, 0) {
			return fmt.Errorf("photonic: parameter %s is not finite: %v", c.name, c.v)
		}
		if c.v > 0 {
			return fmt.Errorf("photonic: parameter %s must be <= 0 dB, got %v", c.name, c.v)
		}
	}
	return nil
}

// ErrNotFinite is returned by conversion helpers when a value cannot be
// represented (for example the dB value of zero power).
var ErrNotFinite = errors.New("photonic: value is not finite")

// DBToLinear converts a power ratio expressed in dB to a linear factor.
// DBToLinear(-3) is approximately 0.501; DBToLinear(0) is exactly 1.
func DBToLinear(db float64) float64 {
	return math.Pow(10, db/10)
}

// LinearToDB converts a linear power ratio to dB. The ratio must be
// strictly positive; zero maps to -Inf which callers usually must guard.
func LinearToDB(lin float64) float64 {
	return 10 * math.Log10(lin)
}

// PropagationLoss returns the dB loss of a waveguide of the given length
// in centimetres. Negative lengths are invalid and reported as NaN so that
// downstream validation catches them.
func (p Params) PropagationLoss(lengthCm float64) float64 {
	if lengthCm < 0 {
		return math.NaN()
	}
	return p.PropagationLossPerCm * lengthCm
}
