package photonic

import (
	"math"
	"testing"
	"testing/quick"
)

func allPorts() []Port { return []Port{PortA0, PortA1, PortB0, PortB1} }

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Crossing: "crossing", PPSE: "ppse", CPSE: "cpse"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "photonic.Kind(99)" {
		t.Errorf("unknown kind String() = %q", got)
	}
}

func TestKindValid(t *testing.T) {
	for _, k := range []Kind{Crossing, PPSE, CPSE} {
		if !k.Valid() {
			t.Errorf("Kind %v reported invalid", k)
		}
	}
	if Kind(3).Valid() {
		t.Error("Kind(3) reported valid")
	}
}

func TestStateFlip(t *testing.T) {
	if On.Flip() != Off || Off.Flip() != On {
		t.Error("State.Flip is not an involution on {On, Off}")
	}
	if On.String() != "on" || Off.String() != "off" {
		t.Error("State.String mismatch")
	}
}

func TestPortValidAndString(t *testing.T) {
	want := map[Port]string{PortA0: "a0", PortA1: "a1", PortB0: "b0", PortB1: "b1"}
	for p, s := range want {
		if !p.Valid() {
			t.Errorf("port %v reported invalid", p)
		}
		if p.String() != s {
			t.Errorf("Port(%d).String() = %q, want %q", p, p.String(), s)
		}
	}
	if Port(4).Valid() {
		t.Error("Port(4) reported valid")
	}
}

func TestSameWaveguide(t *testing.T) {
	if !SameWaveguide(PortA0, PortA1) || !SameWaveguide(PortB0, PortB1) {
		t.Error("ports on the same waveguide not recognised")
	}
	if SameWaveguide(PortA0, PortB0) || SameWaveguide(PortA1, PortB1) {
		t.Error("ports on different waveguides reported as same")
	}
}

func TestTraverseCrossingStraight(t *testing.T) {
	// Eq. 1i: a crossing always passes straight, regardless of state.
	want := map[Port]Port{PortA0: PortA1, PortA1: PortA0, PortB0: PortB1, PortB1: PortB0}
	for _, s := range []State{Off, On} {
		for in, out := range want {
			if got := Traverse(Crossing, s, in); got != out {
				t.Errorf("Traverse(Crossing, %v, %v) = %v, want %v", s, in, out, got)
			}
		}
	}
}

func TestTraversePSE(t *testing.T) {
	for _, k := range []Kind{PPSE, CPSE} {
		// OFF: stay on waveguide (Eqs. 1a, 1e).
		if got := Traverse(k, Off, PortA0); got != PortA1 {
			t.Errorf("Traverse(%v, Off, a0) = %v, want a1", k, got)
		}
		// ON: switch waveguide (Eqs. 1c, 1g).
		if got := Traverse(k, On, PortA0); got != PortB1 {
			t.Errorf("Traverse(%v, On, a0) = %v, want b1", k, got)
		}
		if got := Traverse(k, On, PortB0); got != PortA1 {
			t.Errorf("Traverse(%v, On, b0) = %v, want a1", k, got)
		}
	}
}

// Property: traversal never returns the input port and always returns a
// valid port.
func TestTraverseNeverReflects(t *testing.T) {
	for _, k := range []Kind{Crossing, PPSE, CPSE} {
		for _, s := range []State{Off, On} {
			for _, in := range allPorts() {
				out := Traverse(k, s, in)
				if out == in {
					t.Errorf("Traverse(%v,%v,%v) reflected back", k, s, in)
				}
				if !out.Valid() {
					t.Errorf("Traverse(%v,%v,%v) = invalid port %v", k, s, in, out)
				}
			}
		}
	}
}

// Property: traversal is an involution — going back through the element
// returns to the original port (photonic elements are reciprocal).
func TestTraverseInvolution(t *testing.T) {
	for _, k := range []Kind{Crossing, PPSE, CPSE} {
		for _, s := range []State{Off, On} {
			for _, in := range allPorts() {
				out := Traverse(k, s, in)
				if back := Traverse(k, s, out); back != in {
					t.Errorf("Traverse(%v,%v) not reciprocal: %v -> %v -> %v", k, s, in, out, back)
				}
			}
		}
	}
}

func TestTraversalLossValues(t *testing.T) {
	p := DefaultParams()
	cases := []struct {
		k    Kind
		s    State
		want float64
	}{
		{Crossing, Off, -0.04},
		{Crossing, On, -0.04},
		{PPSE, Off, -0.005},
		{PPSE, On, -0.5},
		{CPSE, Off, -0.045},
		{CPSE, On, -0.5},
	}
	for _, c := range cases {
		if got := p.TraversalLoss(c.k, c.s); got != c.want {
			t.Errorf("TraversalLoss(%v,%v) = %v, want %v", c.k, c.s, got, c.want)
		}
	}
}

func TestLeakCoeffValues(t *testing.T) {
	p := DefaultParams()
	if got := p.LeakCoeff(Crossing, Off); got != -40 {
		t.Errorf("LeakCoeff(Crossing) = %v, want -40", got)
	}
	if got := p.LeakCoeff(PPSE, Off); got != -20 {
		t.Errorf("LeakCoeff(PPSE,Off) = %v, want -20", got)
	}
	if got := p.LeakCoeff(PPSE, On); got != -25 {
		t.Errorf("LeakCoeff(PPSE,On) = %v, want -25", got)
	}
	if got := p.LeakCoeff(CPSE, On); got != -25 {
		t.Errorf("LeakCoeff(CPSE,On) = %v, want -25", got)
	}
	// Eq. 1f: CPSE OFF leaks Kp,off + Kc, combined in linear power.
	want := LinearToDB(DBToLinear(-20) + DBToLinear(-40))
	if got := p.LeakCoeff(CPSE, Off); math.Abs(got-want) > 1e-12 {
		t.Errorf("LeakCoeff(CPSE,Off) = %v, want %v", got, want)
	}
	// The combination must be slightly stronger (less negative) than
	// Kp,off alone.
	if got := p.LeakCoeff(CPSE, Off); got <= -20 {
		t.Errorf("LeakCoeff(CPSE,Off) = %v, want > -20 (power sum)", got)
	}
}

func TestLeakTargetsCrossing(t *testing.T) {
	// Eq. 1j: leak into both perpendicular ports.
	got := LeakTargets(nil, Crossing, Off, PortA0)
	if len(got) != 2 || got[0] != PortB0 || got[1] != PortB1 {
		t.Errorf("LeakTargets(crossing from a0) = %v, want [b0 b1]", got)
	}
	got = LeakTargets(nil, Crossing, Off, PortB1)
	if len(got) != 2 || got[0] != PortA0 || got[1] != PortA1 {
		t.Errorf("LeakTargets(crossing from b1) = %v, want [a0 a1]", got)
	}
}

func TestLeakTargetsPSE(t *testing.T) {
	// OFF PSE leaks into the port the signal would reach if ON (Eq. 1b).
	got := LeakTargets(nil, PPSE, Off, PortA0)
	if len(got) != 1 || got[0] != PortB1 {
		t.Errorf("LeakTargets(ppse off from a0) = %v, want [b1]", got)
	}
	// ON PSE leaks into the straight-through port (Eq. 1d).
	got = LeakTargets(nil, CPSE, On, PortA0)
	if len(got) != 1 || got[0] != PortA1 {
		t.Errorf("LeakTargets(cpse on from a0) = %v, want [a1]", got)
	}
}

// Property: leak targets never include the traversal output nor the input
// itself — leaked power goes somewhere else by construction.
func TestLeakTargetsDisjointFromSignal(t *testing.T) {
	for _, k := range []Kind{Crossing, PPSE, CPSE} {
		for _, s := range []State{Off, On} {
			for _, in := range allPorts() {
				out := Traverse(k, s, in)
				for _, lt := range LeakTargets(nil, k, s, in) {
					if lt == in {
						t.Errorf("leak target equals input: %v %v %v", k, s, in)
					}
					if k != Crossing && lt == out {
						t.Errorf("PSE leak target equals signal output: %v %v %v", k, s, in)
					}
				}
			}
		}
	}
}

func TestLeaksIntoMatchesLeakTargets(t *testing.T) {
	for _, k := range []Kind{Crossing, PPSE, CPSE} {
		for _, s := range []State{Off, On} {
			for _, in := range allPorts() {
				targets := LeakTargets(nil, k, s, in)
				for _, out := range allPorts() {
					want := false
					for _, lt := range targets {
						if lt == out {
							want = true
						}
					}
					if got := LeaksInto(k, s, in, out); got != want {
						t.Errorf("LeaksInto(%v,%v,%v,%v) = %v, want %v", k, s, in, out, got, want)
					}
				}
			}
		}
	}
}

// Property-based: for random kind/state/port combinations, the element
// physics stays self-consistent.
func TestElementConsistencyQuick(t *testing.T) {
	p := DefaultParams()
	f := func(kRaw, sRaw, inRaw uint8) bool {
		k := Kind(kRaw % 3)
		s := State(sRaw % 2)
		in := Port(inRaw % 4)
		out := Traverse(k, s, in)
		if !out.Valid() || out == in {
			return false
		}
		if p.TraversalLoss(k, s) > 0 {
			return false
		}
		if p.LeakCoeff(k, s) > 0 {
			return false
		}
		// Leak coupling must be much weaker than the main traversal
		// (crosstalk coefficients are at least -20 dB here).
		return p.LeakCoeff(k, s) <= -19
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
