package photonic

import "fmt"

// Kind identifies a type of photonic element that optical paths traverse.
//
// Plain waveguide segments are not elements: they contribute only
// length-proportional propagation loss and are handled by the network
// model directly via Params.PropagationLoss.
type Kind uint8

const (
	// Crossing is a passive intersection of two waveguides (Fig. 2e).
	// A signal continues straight with loss Lc (Eq. 1i) and leaks Kc
	// into each of the two perpendicular output ports (Eq. 1j).
	Crossing Kind = iota

	// PPSE is a parallel photonic switching element (Fig. 2a-b): two
	// parallel waveguides coupled by a microring. OFF: the signal stays
	// on its waveguide (Eq. 1a) leaking Kp,off to the other (Eq. 1b).
	// ON: the signal switches waveguide (Eq. 1c) leaking Kp,on to its
	// original one (Eq. 1d).
	PPSE

	// CPSE is a crossing photonic switching element (Fig. 2c-d): two
	// crossing waveguides with a microring at the intersection. OFF:
	// straight with loss Lc,off (Eq. 1e), leaking Kp,off+Kc (Eq. 1f).
	// ON: turned with loss Lc,on (Eq. 1g), leaking Kp,on (Eq. 1h).
	CPSE
)

// String returns the conventional abbreviation of the element kind.
func (k Kind) String() string {
	switch k {
	case Crossing:
		return "crossing"
	case PPSE:
		return "ppse"
	case CPSE:
		return "cpse"
	default:
		return fmt.Sprintf("photonic.Kind(%d)", uint8(k))
	}
}

// Valid reports whether k names a known element kind.
func (k Kind) Valid() bool { return k <= CPSE }

// State is the resonance state of the microring of a PSE. Crossings have
// no ring; by convention their state is Off everywhere in the code base.
type State uint8

const (
	// Off means the ring is out of resonance: signals pass straight.
	Off State = iota
	// On means the ring is resonant: signals are coupled across.
	On
)

// String returns "off" or "on".
func (s State) String() string {
	if s == On {
		return "on"
	}
	return "off"
}

// Flip returns the opposite state.
func (s State) Flip() State {
	if s == On {
		return Off
	}
	return On
}

// Port identifies one of the four optical ports of an element.
//
// For a crossing, ports A0/A1 are the two ends of one waveguide and B0/B1
// the two ends of the perpendicular one; straight propagation is A0<->A1
// and B0<->B1.
//
// For a PSE, A0/A1 are the two ends of the first waveguide (the "input"
// waveguide of Fig. 2) and B0/B1 the two ends of the second (the "add/drop"
// waveguide). OFF keeps signals on their own waveguide; ON exchanges them:
// A0<->B1 and B0<->A1, matching the input->drop geometry of Fig. 2b/2d.
type Port uint8

const (
	PortA0 Port = iota
	PortA1
	PortB0
	PortB1
	numPorts
)

// String returns the short port name used in diagnostics.
func (p Port) String() string {
	switch p {
	case PortA0:
		return "a0"
	case PortA1:
		return "a1"
	case PortB0:
		return "b0"
	case PortB1:
		return "b1"
	default:
		return fmt.Sprintf("photonic.Port(%d)", uint8(p))
	}
}

// Valid reports whether p names one of the four ports.
func (p Port) Valid() bool { return p < numPorts }

// SameWaveguide reports whether two ports lie on the same waveguide of the
// element (A-axis or B-axis).
func SameWaveguide(p, q Port) bool {
	return (p <= PortA1) == (q <= PortA1)
}

// straightOut returns the port reached by continuing on the same
// waveguide: a0<->a1, b0<->b1.
func straightOut(in Port) Port {
	switch in {
	case PortA0:
		return PortA1
	case PortA1:
		return PortA0
	case PortB0:
		return PortB1
	default:
		return PortB0
	}
}

// coupledOut returns the port reached when a resonant ring exchanges the
// two waveguides: a0<->b1, b0<->a1.
func coupledOut(in Port) Port {
	switch in {
	case PortA0:
		return PortB1
	case PortA1:
		return PortB0
	case PortB0:
		return PortA1
	default:
		return PortA0
	}
}

// Traverse returns the output port of a signal entering element kind k at
// port in while the element is in state s. Crossings ignore the state.
func Traverse(k Kind, s State, in Port) Port {
	if k == Crossing || s == Off {
		return straightOut(in)
	}
	return coupledOut(in)
}

// TraversalLoss returns the dB loss suffered by the signal modelled by
// Traverse: Eqs. (1a), (1c), (1e), (1g), (1i).
func (p Params) TraversalLoss(k Kind, s State) float64 {
	switch k {
	case Crossing:
		return p.CrossingLoss
	case PPSE:
		if s == On {
			return p.PPSEOnLoss
		}
		return p.PPSEOffLoss
	case CPSE:
		if s == On {
			return p.CPSEOnLoss
		}
		return p.CPSEOffLoss
	default:
		return 0
	}
}

// LeakCoeff returns the dB crosstalk coupling of the element's leak paths:
// Eqs. (1b), (1d), (1f), (1h), (1j). For a CPSE in the OFF state the ring
// leakage and the embedded crossing leakage combine (Kp,off + Kc in the
// paper's notation; powers add, so the combination is done in the linear
// domain).
func (p Params) LeakCoeff(k Kind, s State) float64 {
	switch k {
	case Crossing:
		return p.CrossingCrosstalk
	case PPSE:
		if s == On {
			return p.PSEOnCrosstalk
		}
		return p.PSEOffCrosstalk
	case CPSE:
		if s == On {
			return p.PSEOnCrosstalk
		}
		return LinearToDB(DBToLinear(p.PSEOffCrosstalk) + DBToLinear(p.CrossingCrosstalk))
	default:
		return 0
	}
}

// LeakTargets appends to dst the ports into which a signal entering at in
// leaks first-order crosstalk, given element kind k in state s, and
// returns the extended slice.
//
// A crossing leaks Kc into both perpendicular output ports (Eq. 1j). A PSE
// leaks into the single port the signal would have reached had the ring
// been in the opposite state (Eqs. 1b, 1d, 1f, 1h).
func LeakTargets(dst []Port, k Kind, s State, in Port) []Port {
	if k == Crossing {
		if in <= PortA1 {
			return append(dst, PortB0, PortB1)
		}
		return append(dst, PortA0, PortA1)
	}
	return append(dst, Traverse(k, s.Flip(), in))
}

// LeaksInto reports whether a signal entering element kind k (state s) at
// port aggIn injects first-order crosstalk into output port out.
func LeaksInto(k Kind, s State, aggIn, out Port) bool {
	if k == Crossing {
		return !SameWaveguide(aggIn, out)
	}
	return Traverse(k, s.Flip(), aggIn) == out
}
