package photonic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultParamsMatchTableI(t *testing.T) {
	p := DefaultParams()
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"CrossingLoss", p.CrossingLoss, -0.04},
		{"PropagationLossPerCm", p.PropagationLossPerCm, -0.274},
		{"PPSEOffLoss", p.PPSEOffLoss, -0.005},
		{"PPSEOnLoss", p.PPSEOnLoss, -0.5},
		{"CPSEOffLoss", p.CPSEOffLoss, -0.045},
		{"CPSEOnLoss", p.CPSEOnLoss, -0.5},
		{"CrossingCrosstalk", p.CrossingCrosstalk, -40},
		{"PSEOffCrosstalk", p.PSEOffCrosstalk, -20},
		{"PSEOnCrosstalk", p.PSEOnCrosstalk, -25},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestDefaultParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("DefaultParams().Validate() = %v, want nil", err)
	}
}

func TestValidateRejectsPositive(t *testing.T) {
	p := DefaultParams()
	p.CrossingLoss = 0.04
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted a positive loss coefficient")
	}
}

func TestValidateRejectsNaN(t *testing.T) {
	p := DefaultParams()
	p.PSEOnCrosstalk = math.NaN()
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted a NaN coefficient")
	}
}

func TestValidateRejectsInf(t *testing.T) {
	p := DefaultParams()
	p.PropagationLossPerCm = math.Inf(-1)
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted an infinite coefficient")
	}
}

func TestValidateAcceptsZero(t *testing.T) {
	var p Params // all zeros: lossless, no crosstalk — valid if unusual
	if err := p.Validate(); err != nil {
		t.Errorf("Validate rejected all-zero params: %v", err)
	}
}

func TestDBToLinearKnownValues(t *testing.T) {
	cases := []struct {
		db   float64
		want float64
	}{
		{0, 1},
		{-10, 0.1},
		{-20, 0.01},
		{-40, 0.0001},
		{10, 10},
	}
	for _, c := range cases {
		if got := DBToLinear(c.db); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("DBToLinear(%v) = %v, want %v", c.db, got, c.want)
		}
	}
}

func TestLinearToDBKnownValues(t *testing.T) {
	if got := LinearToDB(1); got != 0 {
		t.Errorf("LinearToDB(1) = %v, want 0", got)
	}
	if got := LinearToDB(0.5); math.Abs(got-(-3.0102999566398)) > 1e-9 {
		t.Errorf("LinearToDB(0.5) = %v, want about -3.0103", got)
	}
}

// Property: LinearToDB(DBToLinear(x)) == x for any reasonable dB value.
func TestDBLinearRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		db := math.Mod(x, 100) // keep within a numerically sane range
		if math.IsNaN(db) {
			return true
		}
		back := LinearToDB(DBToLinear(db))
		return math.Abs(back-db) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: DBToLinear is monotonically increasing.
func TestDBToLinearMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(a, 100)
		b = math.Mod(b, 100)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return DBToLinear(a) <= DBToLinear(b)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropagationLoss(t *testing.T) {
	p := DefaultParams()
	if got := p.PropagationLoss(1); got != -0.274 {
		t.Errorf("PropagationLoss(1cm) = %v, want -0.274", got)
	}
	if got := p.PropagationLoss(0); got != 0 {
		t.Errorf("PropagationLoss(0) = %v, want 0", got)
	}
	if got := p.PropagationLoss(2.5); math.Abs(got-(-0.685)) > 1e-12 {
		t.Errorf("PropagationLoss(2.5cm) = %v, want -0.685", got)
	}
	if got := p.PropagationLoss(-1); !math.IsNaN(got) {
		t.Errorf("PropagationLoss(-1) = %v, want NaN", got)
	}
}

// Property: propagation loss is additive in length.
func TestPropagationLossAdditive(t *testing.T) {
	p := DefaultParams()
	f := func(a, b float64) bool {
		a, b = math.Abs(math.Mod(a, 10)), math.Abs(math.Mod(b, 10))
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		sum := p.PropagationLoss(a) + p.PropagationLoss(b)
		return math.Abs(sum-p.PropagationLoss(a+b)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
