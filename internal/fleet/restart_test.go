package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"phonocmap/client"
	"phonocmap/internal/runner"
	"phonocmap/internal/service"
	"phonocmap/internal/store"
)

// swapHandler is a stable HTTP front whose backing handler can be
// replaced atomically — it keeps a node's URL constant across a
// "process restart", the way a restarted serve binary rebinds the same
// address.
type swapHandler struct {
	h atomic.Value // http.Handler
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.h.Load().(http.Handler).ServeHTTP(w, r)
}

// bootStoreNode starts one service lifetime over the persistent store
// in dir.
func bootStoreNode(t *testing.T, dir string) *service.Server {
	t.Helper()
	st, err := store.OpenFile(dir, store.FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return service.New(service.Config{Workers: 1, Store: st})
}

// nodeHealth fetches a node's /healthz.
func nodeHealth(t *testing.T, base string) service.Health {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h service.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// TestRestartDifferentialFleet runs the differential sweep through a
// fleet of 2 nodes with per-node persistent stores, restarts one node
// (graceful shutdown, fresh process over the same cache directory, same
// URL), and sweeps again: the second sweep must be byte-identical to
// the local reference and fully cache-served — the survivor's
// evaluation counter does not move and the restarted node answers from
// its warmed store without evaluating at all.
func TestRestartDifferentialFleet(t *testing.T) {
	grid := diffGrid()
	local, err := runner.NewLocal().RunSweep(context.Background(), grid, runner.SweepOptions{})
	if err != nil {
		t.Fatalf("local sweep: %v", err)
	}

	dirB := t.TempDir()
	srvA := bootStoreNode(t, t.TempDir())
	tsA := httptest.NewServer(srvA.Handler())
	defer tsA.Close()
	srvB := bootStoreNode(t, dirB)
	swap := &swapHandler{}
	swap.h.Store(srvB.Handler())
	tsB := httptest.NewServer(swap)
	defer tsB.Close()

	fr, err := New(Config{
		Servers:       []string{tsA.URL, tsB.URL},
		ProbeInterval: 10 * time.Second,
		ClientOptions: []client.Option{
			client.WithPollInterval(5 * time.Millisecond),
			client.WithRetries(1, 5*time.Millisecond),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()

	first, err := fr.RunSweep(context.Background(), grid, runner.SweepOptions{})
	if err != nil {
		t.Fatalf("first fleet sweep: %v", err)
	}
	jsonDiff(t, "fleet sweep before restart", first, local)

	evalsA := nodeHealth(t, tsA.URL).TotalEvals
	evalsB := nodeHealth(t, tsB.URL).TotalEvals
	if evalsA+evalsB == 0 {
		t.Fatal("first sweep performed no evaluations")
	}
	if evalsB == 0 {
		t.Fatal("node B received no cells; the restart proves nothing")
	}

	// Restart node B: graceful shutdown (drains the write-behind queue,
	// closes the store), then a fresh service over the same directory
	// takes over the same URL.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := srvB.Shutdown(shutdownCtx); err != nil {
		cancel()
		t.Fatalf("node B shutdown: %v", err)
	}
	cancel()
	srvB2 := bootStoreNode(t, dirB)
	swap.h.Store(srvB2.Handler())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srvB2.Shutdown(ctx)
		ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel2()
		_ = srvA.Shutdown(ctx2)
	}()

	hB := nodeHealth(t, tsB.URL)
	if hB.Cache.Store == nil || hB.Cache.Store.Entries == 0 {
		t.Fatalf("restarted node B store is empty: %+v", hB.Cache.Store)
	}

	second, err := fr.RunSweep(context.Background(), grid, runner.SweepOptions{})
	if err != nil {
		t.Fatalf("second fleet sweep: %v", err)
	}
	jsonDiff(t, "fleet sweep after restart", second, local)

	// No recomputation anywhere: the survivor's evaluation counter is
	// unchanged and the restarted node never evaluated — its answers came
	// from the persistent store (hit counter incremented).
	if after := nodeHealth(t, tsA.URL).TotalEvals; after != evalsA {
		t.Errorf("node A evals went %d -> %d; the second sweep recomputed", evalsA, after)
	}
	hB2 := nodeHealth(t, tsB.URL)
	if hB2.TotalEvals != 0 {
		t.Errorf("restarted node B evals_total = %d, want 0", hB2.TotalEvals)
	}
	if hB2.Cache.Store == nil || hB2.Cache.Store.Hits == 0 {
		t.Error("restarted node B answered without store hits")
	}
}
