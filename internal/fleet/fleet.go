// Package fleet is the horizontal scale-out backend: a Runner that
// shards sweep cells across many phonocmap-serve nodes through the
// client SDK. The paper's equal-budget design-space exploration is
// embarrassingly parallel at the cell level — each cell is one
// content-addressed job spec — so a coordinator that dispatches cells
// to the least-loaded healthy node turns N worker pools into one.
//
// The contract is the Runner contract, unchanged: a fleet sweep returns
// a SweepResult byte-identical to a LocalRunner sweep of the same spec,
// at any fleet size, because every cell's result is deterministic in
// its spec and the coordinator reduces cells in cell-index order
// through the same assembly path Local uses. The differential suite in
// this package enforces that equivalence against live in-process
// servers, including a node killed mid-sweep.
//
// Failure handling: nodes are probed periodically through /healthz and
// tracked through a healthy / draining / down state machine; a cell
// whose node fails mid-flight migrates — the failing node joins the
// cell's excluded set and the cell retries elsewhere, bounded by
// CellAttempts. Deterministic rejections (invalid specs) do not
// migrate: they would fail identically everywhere.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/url"
	"time"

	"phonocmap/client"
	"phonocmap/internal/core"
	"phonocmap/internal/obs"
	"phonocmap/internal/runner"
	"phonocmap/internal/scenario"
	"phonocmap/internal/service"
	"phonocmap/internal/sweep"
)

// Config configures a fleet coordinator.
type Config struct {
	// Servers is the node list: one phonocmap-serve base URL per node.
	// At least one is required.
	Servers []string
	// ProbeInterval is the /healthz probe period (default 1s).
	ProbeInterval time.Duration
	// DownAfter is the number of consecutive failed probes before a node
	// is marked down (default 2). Down nodes stop receiving new cells
	// until a probe succeeds again.
	DownAfter int
	// CellAttempts bounds how many nodes one cell may be dispatched to
	// before its failure is final (default len(Servers)+1: every node
	// gets one chance, plus one retry after the excluded set resets).
	CellAttempts int
	// ClientOptions is appended to every per-node client (e.g. tighter
	// retry budgets; the coordinator owns migration, so per-node clients
	// should fail fast rather than retry for long).
	ClientOptions []client.Option
	// Registry, when non-nil, receives the phonocmap_fleet_* metric
	// families — pass a server's MetricsRegistry() to co-host them on an
	// existing /metrics exposition. Each registry can host at most one
	// coordinator (families register once). Nil keeps the instruments
	// private.
	Registry *obs.Registry
}

// Runner is a fleet coordinator: a runner.Runner whose execution
// backend is N phonocmap-serve nodes. It is safe for concurrent use.
// Close releases the prober; in-flight calls finish normally.
type Runner struct {
	cfg     Config
	nodes   []*node
	metrics *metrics

	affinity *affinityMap

	stop chan struct{}
	done chan struct{}
}

var _ runner.Runner = (*Runner)(nil)

// New builds a coordinator over the configured nodes and performs one
// synchronous probe round so dispatch starts with live load data. It
// does not fail when nodes are unreachable — they start down and join
// the rotation when probing reaches them — only when the configuration
// itself is unusable.
func New(cfg Config) (*Runner, error) {
	if len(cfg.Servers) == 0 {
		return nil, fmt.Errorf("fleet: at least one server is required")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = 2
	}
	if cfg.CellAttempts <= 0 {
		cfg.CellAttempts = len(cfg.Servers) + 1
	}
	r := &Runner{
		cfg:      cfg,
		affinity: newAffinityMap(affinityCap),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for i, addr := range cfg.Servers {
		n, err := newNode(i, addr, cfg.ClientOptions)
		if err != nil {
			return nil, err
		}
		r.nodes = append(r.nodes, n)
	}
	r.metrics = newMetrics(cfg.Registry, r)
	r.probeAll()
	go r.probeLoop()
	return r, nil
}

// Close stops the health prober. It does not cancel in-flight calls.
func (r *Runner) Close() error {
	close(r.stop)
	<-r.done
	return nil
}

// probeLoop drives periodic health probing until Close.
func (r *Runner) probeLoop() {
	defer close(r.done)
	t := time.NewTicker(r.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.probeAll()
		}
	}
}

// probeAll probes every node concurrently and waits for the round.
func (r *Runner) probeAll() {
	ctx, cancel := context.WithTimeout(context.Background(), r.probeTimeout())
	defer cancel()
	done := make(chan struct{}, len(r.nodes))
	for _, n := range r.nodes {
		go func(n *node) {
			n.probe(ctx, r.cfg.DownAfter)
			r.metrics.observeNode(n)
			done <- struct{}{}
		}(n)
	}
	for range r.nodes {
		<-done
	}
}

// probeTimeout bounds one probe round: the probe period, floored so a
// fast-probing test configuration still gives the HTTP round trip room.
func (r *Runner) probeTimeout() time.Duration {
	if r.cfg.ProbeInterval < 500*time.Millisecond {
		return 500 * time.Millisecond
	}
	return r.cfg.ProbeInterval
}

// pick selects the dispatch target among non-excluded nodes: the
// least-loaded node in the best available state tier (healthy, then
// draining, then down — a down tier pick gives a just-recovered node a
// chance before the next probe notices). Returns nil when every node is
// excluded.
func (r *Runner) pick(excluded []bool) *node {
	var best *node
	bestTier := int32(3)
	bestLoad := 0.0
	for _, n := range r.nodes {
		if excluded != nil && excluded[n.index] {
			continue
		}
		tier := n.state.Load()
		load := n.load()
		if best == nil || tier < bestTier || (tier == bestTier && load < bestLoad) {
			best, bestTier, bestLoad = n, tier, load
		}
	}
	return best
}

// pickAffine prefers the node that served this content key before (its
// result cache already holds the answer) when that node is healthy and
// not excluded; otherwise it falls back to least-loaded dispatch.
func (r *Runner) pickAffine(key string, excluded []bool) *node {
	if i, ok := r.affinity.get(key); ok && i < len(r.nodes) {
		n := r.nodes[i]
		if (excluded == nil || !excluded[n.index]) && nodeState(n.state.Load()) == stateHealthy {
			return n
		}
	}
	return r.pick(excluded)
}

// RunScenario dispatches one scenario to the fleet with the same
// retry/migration policy sweep cells get.
func (r *Runner) RunScenario(ctx context.Context, spec scenario.Spec) (runner.ScenarioResult, error) {
	// Normalize first so the content key (and therefore cache affinity)
	// is computed on the resolved spec, exactly like a sweep cell's.
	if _, err := spec.Normalize(); err != nil {
		return runner.ScenarioResult{}, err
	}
	return r.runCell(ctx, spec, spec.Key())
}

// runCell executes one content-addressed job on the fleet with the
// node's caching client: dispatch to the affine or least-loaded node,
// migrate away from nodes that fail, bounded by CellAttempts.
func (r *Runner) runCell(ctx context.Context, spec scenario.Spec, key string) (runner.ScenarioResult, error) {
	return r.dispatch(ctx, spec, key, true)
}

// runCellNoCache is runCell against the nodes' cache-bypassing clients
// (cache affinity is pointless without a cache, so dispatch is purely
// least-loaded).
func (r *Runner) runCellNoCache(ctx context.Context, spec scenario.Spec, key string) (runner.ScenarioResult, error) {
	return r.dispatch(ctx, spec, key, false)
}

// dispatch is the fleet's per-cell policy loop: pick a node, run the
// job, and on node-local failure exclude the node and migrate. Attempts
// are bounded by CellAttempts; once every node has failed the cell, the
// excluded set resets so remaining attempts re-try the full rotation (a
// node may have recovered).
func (r *Runner) dispatch(ctx context.Context, spec scenario.Spec, key string, useCache bool) (runner.ScenarioResult, error) {
	excluded := make([]bool, len(r.nodes))
	pick := func() *node {
		if useCache {
			return r.pickAffine(key, excluded)
		}
		return r.pick(excluded)
	}
	var lastErr error
	for attempt := 0; attempt < r.cfg.CellAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return runner.ScenarioResult{}, err
		}
		n := pick()
		if n == nil {
			clear(excluded)
			if n = pick(); n == nil {
				break
			}
		}
		r.metrics.dispatched.Inc()
		if attempt > 0 {
			r.metrics.retried.Inc()
		}
		c := n.c
		if !useCache {
			c = n.cNoCache
		}
		r.metrics.setInflight(n, n.inflight.Add(1))
		res, err := c.RunScenario(ctx, spec)
		r.metrics.setInflight(n, n.inflight.Add(-1))
		if err == nil {
			r.affinity.put(key, n.index)
			return res, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return runner.ScenarioResult{}, err
		}
		if !migratable(err) {
			return runner.ScenarioResult{}, err
		}
		// The node failed this cell for node-local reasons: exclude it,
		// count it toward down detection, and migrate.
		excluded[n.index] = true
		n.suspect(r.cfg.DownAfter)
		r.metrics.observeNode(n)
		r.metrics.migrated.Inc()
	}
	return runner.ScenarioResult{}, fmt.Errorf("fleet: cell failed on all attempts: %w", lastErr)
}

// migratable reports whether a cell failure is node-local (worth trying
// another node) rather than deterministic in the spec (it would fail
// identically everywhere). Transport errors, gateway-style statuses,
// queue_full and shutting_down migrate; validation rejections and
// server-side job failures do not.
func migratable(err error) bool {
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		switch apiErr.Code {
		case service.CodeQueueFull, service.CodeShuttingDown:
			return true
		case "":
			// No envelope: an intermediary or a dying process answered.
			return apiErr.StatusCode >= 500
		default:
			return false
		}
	}
	var uerr *url.Error
	return errors.As(err, &uerr)
}

// RunSweep expands the grid, dedups cells by content key, executes each
// unique cell once on the fleet and assembles the results in cell-index
// order through the exact aggregation path Local uses — which is what
// makes the output byte-identical to a local sweep.
func (r *Runner) RunSweep(ctx context.Context, spec sweep.Spec, opts runner.SweepOptions) (runner.SweepResult, error) {
	cells, err := sweep.Expand(spec)
	if err != nil {
		return runner.SweepResult{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}

	// Cross-node dedup: cells sharing a content key are one job. The
	// first index runs; every duplicate index receives the same result.
	specs := make([]scenario.Spec, len(cells))
	byKey := make(map[string][]int, len(cells))
	order := make([]string, 0, len(cells))
	for i, c := range cells {
		specs[i] = c.Scenario()
		k := specs[i].Key()
		if _, seen := byKey[k]; !seen {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], i)
	}
	r.metrics.deduped.Add(int64(len(cells) - len(order)))

	results := make([]sweep.Result, len(cells))
	done := make([]bool, len(cells))
	runOne := r.cellRunner(opts.NoCache)
	ferr := sweep.ForEach(ctx, len(order), r.sweepWorkers(opts.Workers), func(ctx context.Context, ui int) error {
		key := order[ui]
		idxs := byKey[key]
		res, err := runOne(ctx, specs[idxs[0]], key)
		for _, i := range idxs {
			results[i] = toSweepResult(i, cells[i], res, err)
			done[i] = true
			if opts.OnCellDone != nil {
				opts.OnCellDone(runner.CellResult(results[i]))
			}
		}
		return nil // cell failures stay in their Result, like sweep.Run
	})
	// Mirror sweep.Run: the parent context's cancellation is recorded on
	// the skipped cells, any other ForEach error is surfaced.
	if ferr != nil && !errors.Is(ferr, ctx.Err()) {
		return runner.SweepResult{}, ferr
	}
	for i := range results {
		if done[i] {
			continue
		}
		cause := ctx.Err()
		if cause == nil {
			cause = context.Canceled
		}
		results[i] = sweep.Result{Index: i, Cell: cells[i], Err: cause}
		if opts.OnCellDone != nil {
			opts.OnCellDone(runner.CellResult(results[i]))
		}
	}
	return runner.AssembleSweep(results), nil
}

// cellRunner returns the per-cell execution function honoring the
// sweep's cache preference.
func (r *Runner) cellRunner(noCache bool) func(context.Context, scenario.Spec, string) (runner.ScenarioResult, error) {
	if noCache {
		return r.runCellNoCache
	}
	return r.runCell
}

// sweepWorkers resolves the sweep concurrency bound: the caller's
// explicit setting, else the fleet's live worker capacity (cells beyond
// it would only deepen node queues).
func (r *Runner) sweepWorkers(requested int) int {
	if requested > 0 {
		return requested
	}
	total := 0
	for _, n := range r.nodes {
		if nodeState(n.state.Load()) != stateDown {
			total += int(n.workers.Load())
		}
	}
	if total <= 0 {
		total = len(r.nodes)
	}
	return total
}

// toSweepResult converts one fleet cell outcome into the sweep engine's
// result shape, so assembly is shared with Local verbatim.
func toSweepResult(i int, c sweep.Cell, res runner.ScenarioResult, err error) sweep.Result {
	if err != nil {
		return sweep.Result{Index: i, Cell: c, Err: err}
	}
	return sweep.Result{
		Index: i,
		Cell:  c,
		Run: core.RunResult{
			Algorithm: res.Algorithm,
			Mapping:   res.Mapping,
			Score:     res.Score,
			Evals:     res.Evals,
			Seed:      res.Seed,
			Cancelled: res.Cancelled,
		},
		Report: res.Report,
	}
}

// Apps lists the bundled benchmark applications from the first node
// that answers (discovery is identical on every node).
func (r *Runner) Apps(ctx context.Context) ([]runner.AppInfo, error) {
	return discover(ctx, r, func(ctx context.Context, c *client.Client) ([]runner.AppInfo, error) {
		return c.Apps(ctx)
	})
}

// Algorithms lists the mapping-optimization algorithms.
func (r *Runner) Algorithms(ctx context.Context) ([]string, error) {
	return discover(ctx, r, func(ctx context.Context, c *client.Client) ([]string, error) {
		return c.Algorithms(ctx)
	})
}

// Routers lists the built-in optical routers.
func (r *Runner) Routers(ctx context.Context) ([]runner.RouterInfo, error) {
	return discover(ctx, r, func(ctx context.Context, c *client.Client) ([]runner.RouterInfo, error) {
		return c.Routers(ctx)
	})
}

// Topologies lists the built-in topology kinds.
func (r *Runner) Topologies(ctx context.Context) ([]string, error) {
	return discover(ctx, r, func(ctx context.Context, c *client.Client) ([]string, error) {
		return c.Topologies(ctx)
	})
}

// discover tries nodes in state order (healthy first) until one answers.
func discover[T any](ctx context.Context, r *Runner, call func(context.Context, *client.Client) (T, error)) (T, error) {
	excluded := make([]bool, len(r.nodes))
	var zero T
	var lastErr error
	for range r.nodes {
		n := r.pick(excluded)
		if n == nil {
			break
		}
		out, err := call(ctx, n.c)
		if err == nil {
			return out, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return zero, err
		}
		excluded[n.index] = true
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("fleet: no nodes")
	}
	return zero, lastErr
}
