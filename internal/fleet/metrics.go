package fleet

import (
	"phonocmap/internal/obs"
)

// metrics holds the coordinator's instruments. The families live on the
// caller-provided registry (Config.Registry) so a serve binary hosting
// a coordinator exposes them on its existing /metrics; without one they
// register on a private registry and simply stay unexposed — the
// dispatch path never branches on whether anyone is scraping.
type metrics struct {
	dispatched *obs.Counter
	retried    *obs.Counter
	migrated   *obs.Counter
	deduped    *obs.Counter

	nodeInflight *obs.GaugeVec
	nodeHealthy  *obs.GaugeVec
}

// newMetrics registers the phonocmap_fleet_* families and seeds the
// per-node children so every node is visible from the first scrape.
func newMetrics(reg *obs.Registry, r *Runner) *metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &metrics{
		dispatched: reg.Counter("phonocmap_fleet_cells_dispatched_total",
			"Sweep cells (and single scenarios) dispatched to fleet nodes, including re-dispatches."),
		retried: reg.Counter("phonocmap_fleet_cells_retried_total",
			"Cell dispatches that were retries (attempt > 0) after a node-local failure."),
		migrated: reg.Counter("phonocmap_fleet_cells_migrated_total",
			"Cells that excluded a failing node and moved to another one."),
		deduped: reg.Counter("phonocmap_fleet_cells_deduped_total",
			"Sweep cells satisfied by another cell's result through content-addressed identity (never dispatched)."),
		nodeInflight: reg.GaugeVec("phonocmap_fleet_node_inflight",
			"Cells this coordinator currently has in flight, per node.",
			"node"),
		nodeHealthy: reg.GaugeVec("phonocmap_fleet_node_healthy",
			"Node health from probing: 1 healthy, 0 draining or down.",
			"node"),
	}
	reg.GaugeFn("phonocmap_fleet_nodes",
		"Configured fleet size.",
		func() float64 { return float64(len(r.nodes)) })
	reg.GaugeFn("phonocmap_fleet_nodes_healthy",
		"Nodes currently in the healthy state.",
		func() float64 {
			healthy := 0
			for _, n := range r.nodes {
				if nodeState(n.state.Load()) == stateHealthy {
					healthy++
				}
			}
			return float64(healthy)
		})
	for _, n := range r.nodes {
		m.nodeInflight.With(n.url).Set(0)
		m.nodeHealthy.With(n.url).Set(0)
	}
	return m
}

// setInflight publishes a node's live in-flight count.
func (m *metrics) setInflight(n *node, v int64) {
	m.nodeInflight.With(n.url).Set(float64(v))
}

// observeNode publishes a node's health after a probe or a dispatch
// failure.
func (m *metrics) observeNode(n *node) {
	v := 0.0
	if nodeState(n.state.Load()) == stateHealthy {
		v = 1
	}
	m.nodeHealthy.With(n.url).Set(v)
}
