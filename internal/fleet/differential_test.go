package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"phonocmap/client"
	"phonocmap/internal/config"
	"phonocmap/internal/runner"
	"phonocmap/internal/scenario"
	"phonocmap/internal/service"
	"phonocmap/internal/sweep"
)

// newTestFleet boots n real phonocmap-serve instances behind httptest
// and a coordinator over all of them. The per-node clients poll fast
// and fail fast — the coordinator owns retry/migration, so node-level
// persistence would only slow failover down.
func newTestFleet(t *testing.T, n int, mutate func(*Config)) (*Runner, []*httptest.Server) {
	t.Helper()
	servers := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range servers {
		srv := service.New(service.Config{Workers: 1})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		})
		servers[i] = ts
		urls[i] = ts.URL
	}
	cfg := Config{
		Servers:       urls,
		ProbeInterval: 10 * time.Second, // quiet during tests; dispatch failures drive the state machine
		ClientOptions: []client.Option{
			client.WithPollInterval(5 * time.Millisecond),
			client.WithRetries(1, 5*time.Millisecond),
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	fr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fr.Close() })
	return fr, servers
}

// jsonDiff compares two values through their canonical JSON — the exact
// equivalence the wire can express (same technique as the client
// package's differential suite).
func jsonDiff(t *testing.T, label string, got, want any) {
	t.Helper()
	gb, err := json.MarshalIndent(got, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	wb, err := json.MarshalIndent(want, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gb, wb) {
		t.Errorf("%s: fleet and local results differ\nfleet:\n%s\nlocal:\n%s", label, gb, wb)
	}
}

// diffGrid is the differential sweep: 8 cells spanning topologies,
// objectives and algorithms, with analyses — the same shape the client
// package's differential sweep pins against a single server.
func diffGrid() sweep.Spec {
	return sweep.Spec{
		Apps:       []config.AppSpec{{Builtin: "PIP"}},
		Archs:      []config.ArchSpec{{Topology: "mesh"}, {Topology: "torus"}},
		Objectives: []string{"snr", "loss"},
		Algorithms: []string{"rs", "rpbla"},
		Budgets:    []int{150},
		Seeds:      []int64{1},
		Analyses: &scenario.AnalysesSpec{
			WDM:   &scenario.WDMSpec{},
			Power: &scenario.PowerSpec{},
		},
	}
}

// TestDifferentialFleetSweep is the scale-invariance guarantee: the
// same grid swept through fleets of 1, 2 and 3 nodes produces a
// SweepResult — cells and every aggregation — byte-identical to a
// LocalRunner sweep. Fleet size must be invisible in the output.
func TestDifferentialFleetSweep(t *testing.T) {
	grid := diffGrid()
	local, err := runner.NewLocal().RunSweep(context.Background(), grid, runner.SweepOptions{})
	if err != nil {
		t.Fatalf("local sweep: %v", err)
	}
	for _, nodes := range []int{1, 2, 3} {
		t.Run(map[int]string{1: "one-node", 2: "two-nodes", 3: "three-nodes"}[nodes], func(t *testing.T) {
			fr, _ := newTestFleet(t, nodes, nil)
			got, err := fr.RunSweep(context.Background(), grid, runner.SweepOptions{})
			if err != nil {
				t.Fatalf("fleet sweep: %v", err)
			}
			if len(got.Cells) != 8 {
				t.Fatalf("fleet sweep has %d cells, want 8", len(got.Cells))
			}
			for _, cell := range got.Cells {
				if cell.Error != "" {
					t.Fatalf("fleet cell %d failed: %s", cell.Index, cell.Error)
				}
				if cell.Report == nil {
					t.Fatalf("fleet cell %d missing its analysis report", cell.Index)
				}
			}
			jsonDiff(t, "sweep", got, local)
			if d := fr.metrics.dispatched.Value(); d < 8 {
				t.Errorf("dispatched %d cells, want >= 8", d)
			}
		})
	}
}

// TestDifferentialFleetNodeKill kills one of two nodes mid-sweep: its
// in-flight and future cells must migrate to the survivor and the final
// result must still be byte-identical to the local reference — failure
// handling must be invisible in the output too.
func TestDifferentialFleetNodeKill(t *testing.T) {
	grid := diffGrid()
	local, err := runner.NewLocal().RunSweep(context.Background(), grid, runner.SweepOptions{})
	if err != nil {
		t.Fatalf("local sweep: %v", err)
	}

	fr, servers := newTestFleet(t, 2, func(cfg *Config) {
		// Event streams hold connections open, which would make the
		// mid-sweep Close below wait on them; plain polling keeps every
		// request short-lived.
		cfg.ClientOptions = append(cfg.ClientOptions, client.WithoutEvents())
	})

	// Kill the second node as soon as the first cell settles: whatever
	// it is running or later receives fails over to the survivor.
	var once sync.Once
	opts := runner.SweepOptions{
		OnCellDone: func(runner.SweepCellResult) {
			once.Do(func() {
				servers[1].CloseClientConnections()
				servers[1].Close()
			})
		},
	}
	got, err := fr.RunSweep(context.Background(), grid, opts)
	if err != nil {
		t.Fatalf("fleet sweep with node kill: %v", err)
	}
	for _, cell := range got.Cells {
		if cell.Error != "" {
			t.Fatalf("fleet cell %d failed despite migration: %s", cell.Index, cell.Error)
		}
	}
	jsonDiff(t, "sweep-node-kill", got, local)

	// The dead node must be marked down by the dispatch-failure path
	// (the prober is quiet at this interval), and at least one cell must
	// have migrated — the sweep ran 8 cells on 2 workers, so work was
	// outstanding when the node died.
	if st := nodeState(fr.nodes[1].state.Load()); st != stateDown {
		t.Errorf("killed node state = %v, want down", st)
	}
	if m := fr.metrics.migrated.Value(); m < 1 {
		t.Errorf("migrated = %d, want >= 1", m)
	}
}

// TestDifferentialFleetScenario: single scenarios go through the same
// dispatch path and must match local execution byte-for-byte (wall
// clock aside).
func TestDifferentialFleetScenario(t *testing.T) {
	fr, _ := newTestFleet(t, 2, nil)
	spec := scenario.Spec{
		App: config.AppSpec{Builtin: "PIP"}, Objective: "snr",
		Algorithm: "rs", Budget: 300, Seed: 1,
	}
	got, err := fr.RunScenario(context.Background(), spec)
	if err != nil {
		t.Fatalf("fleet scenario: %v", err)
	}
	want, err := runner.NewLocal().RunScenario(context.Background(), spec)
	if err != nil {
		t.Fatalf("local scenario: %v", err)
	}
	got.DurationMs, want.DurationMs = 0, 0
	stripTraceTiming(got.Trace)
	stripTraceTiming(want.Trace)
	jsonDiff(t, "scenario", got, want)
}

// stripTraceTiming zeroes a trace's execution-local wall-clock fields so
// the deterministic remainder can be compared byte-for-byte.
func stripTraceTiming(tr *scenario.RunTrace) {
	tr.TimeToBestMs, tr.DurationMs, tr.EvalsPerSec = 0, 0, 0
	for i := range tr.Events {
		tr.Events[i].AtMs = 0
	}
	for i := range tr.Islands {
		tr.Islands[i].EvalsPerSec = 0
	}
}

// TestDifferentialFleetDiscovery: discovery answers are identical to
// the local backend's, whichever node serves them.
func TestDifferentialFleetDiscovery(t *testing.T) {
	fr, _ := newTestFleet(t, 2, nil)
	local := runner.NewLocal()
	ctx := context.Background()

	apps, err := fr.Apps(ctx)
	if err != nil {
		t.Fatal(err)
	}
	lApps, _ := local.Apps(ctx)
	jsonDiff(t, "apps", apps, lApps)

	algos, err := fr.Algorithms(ctx)
	if err != nil {
		t.Fatal(err)
	}
	lAlgos, _ := local.Algorithms(ctx)
	jsonDiff(t, "algorithms", algos, lAlgos)

	routers, err := fr.Routers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	lRouters, _ := local.Routers(ctx)
	jsonDiff(t, "routers", routers, lRouters)

	topos, err := fr.Topologies(ctx)
	if err != nil {
		t.Fatal(err)
	}
	lTopos, _ := local.Topologies(ctx)
	jsonDiff(t, "topologies", topos, lTopos)
}

// TestFleetDedup: cells sharing a content key are executed once — the
// duplicate budget axis below expands to pairwise-identical cells, and
// the coordinator must dispatch each unique computation exactly once
// while the output still matches the local reference, which runs every
// duplicate independently (and deterministically identically).
func TestFleetDedup(t *testing.T) {
	grid := sweep.Spec{
		Apps:       []config.AppSpec{{Builtin: "PIP"}},
		Objectives: []string{"snr"},
		Algorithms: []string{"rs"},
		Budgets:    []int{150, 150},
		Seeds:      []int64{1, 2},
	}
	fr, _ := newTestFleet(t, 2, nil)
	got, err := fr.RunSweep(context.Background(), grid, runner.SweepOptions{})
	if err != nil {
		t.Fatalf("fleet sweep: %v", err)
	}
	local, err := runner.NewLocal().RunSweep(context.Background(), grid, runner.SweepOptions{})
	if err != nil {
		t.Fatalf("local sweep: %v", err)
	}
	jsonDiff(t, "dedup sweep", got, local)
	if d := fr.metrics.deduped.Value(); d != 2 {
		t.Errorf("deduped = %d, want 2 (4 cells, 2 unique keys)", d)
	}
	if d := fr.metrics.dispatched.Value(); d != 2 {
		t.Errorf("dispatched = %d, want 2", d)
	}
}
