package fleet

import (
	"context"
	"sync"
	"sync/atomic"

	"phonocmap/client"
)

// nodeState is a node's position in the health state machine. States
// order by dispatch preference: healthy nodes take new cells, draining
// nodes (the server announced shutdown) and down nodes (probes failing)
// are fallbacks of last resort.
type nodeState int32

const (
	stateHealthy nodeState = iota
	stateDraining
	stateDown
)

// String renders the state for logs and metrics labels.
func (s nodeState) String() string {
	switch s {
	case stateHealthy:
		return "healthy"
	case stateDraining:
		return "draining"
	case stateDown:
		return "down"
	}
	return "unknown"
}

// node is one phonocmap-serve instance in the registry: two clients
// (cached and cache-bypassing dispatch), the probed health state, and
// the live load signals dispatch ranks on.
type node struct {
	index int
	url   string

	c        *client.Client
	cNoCache *client.Client

	state    atomic.Int32 // nodeState
	failures atomic.Int32 // consecutive probe/dispatch failures

	// Load signals: inflight is this coordinator's own live count;
	// queueDepth, workersBusy and workers come from the last probe.
	inflight    atomic.Int64
	queueDepth  atomic.Int64
	workersBusy atomic.Int64
	workers     atomic.Int64
}

// newNode builds the registry entry for one server address. Nodes start
// down — the initial probe round promotes the reachable ones before any
// dispatch happens.
func newNode(index int, addr string, opts []client.Option) (*node, error) {
	c, err := client.New(addr, opts...)
	if err != nil {
		return nil, err
	}
	cNoCache, err := client.New(addr, append(append([]client.Option{}, opts...), client.WithNoCache())...)
	if err != nil {
		return nil, err
	}
	n := &node{index: index, url: c.BaseURL(), c: c, cNoCache: cNoCache}
	n.state.Store(int32(stateDown))
	n.workers.Store(1)
	return n, nil
}

// load is the node's dispatch rank: outstanding work (the coordinator's
// own in-flight cells plus the node's queued and executing jobs)
// normalized by the node's worker pool, so a 2-worker node at depth 2
// ranks equal to an 8-worker node at depth 8.
func (n *node) load() float64 {
	outstanding := n.inflight.Load() + n.queueDepth.Load() + n.workersBusy.Load()
	workers := n.workers.Load()
	if workers < 1 {
		workers = 1
	}
	return float64(outstanding) / float64(workers)
}

// probe refreshes the node's state and load signals from one /healthz
// round trip. A success resets the failure streak; downAfter
// consecutive failures mark the node down.
func (n *node) probe(ctx context.Context, downAfter int) {
	h, err := n.c.Health(ctx)
	if err != nil {
		if int(n.failures.Add(1)) >= downAfter {
			n.state.Store(int32(stateDown))
		}
		return
	}
	n.failures.Store(0)
	if h.Status == "ok" {
		n.state.Store(int32(stateHealthy))
	} else {
		n.state.Store(int32(stateDraining))
	}
	n.queueDepth.Store(int64(h.QueueDepth))
	n.workersBusy.Store(int64(h.WorkersBusy))
	if h.Workers > 0 {
		n.workers.Store(int64(h.Workers))
	}
}

// suspect records a dispatch failure against the node: downAfter
// consecutive failures (probe or dispatch) mark it down immediately, so
// a dead node stops attracting cells before the next probe tick.
func (n *node) suspect(downAfter int) {
	if int(n.failures.Add(1)) >= downAfter {
		n.state.Store(int32(stateDown))
	}
}

// affinityCap bounds the content-key affinity memo. When full, the memo
// resets wholesale: affinity is a cache-hit optimization, not
// correctness, and wholesale reset is allocation-cheaper than LRU
// bookkeeping per dispatch.
const affinityCap = 4096

// affinityMap remembers which node served each content key, so a
// repeated cell lands on the node whose result cache already holds it.
type affinityMap struct {
	mu  sync.RWMutex
	cap int
	m   map[string]int
}

func newAffinityMap(capacity int) *affinityMap {
	return &affinityMap{cap: capacity, m: make(map[string]int)}
}

func (a *affinityMap) get(key string) (int, bool) {
	a.mu.RLock()
	i, ok := a.m[key]
	a.mu.RUnlock()
	return i, ok
}

func (a *affinityMap) put(key string, nodeIndex int) {
	a.mu.Lock()
	if len(a.m) >= a.cap {
		clear(a.m)
	}
	a.m[key] = nodeIndex
	a.mu.Unlock()
}
