// Package viz renders mappings and link usage as fixed-width text for
// terminal inspection: the placement grid shows which task sits on which
// tile, and the usage table shows how many communications each physical
// link carries — the first thing to look at when a mapping's worst-case
// SNR is dominated by a hotspot.
package viz

import (
	"fmt"
	"sort"
	"strings"

	"phonocmap/internal/cg"
	"phonocmap/internal/core"
	"phonocmap/internal/network"
	"phonocmap/internal/topo"
)

// MappingGrid renders the placement of tasks on a grid topology, one
// cell per tile, with task names truncated to fit. Unoccupied tiles show
// a dot.
func MappingGrid(g *topo.Grid, app *cg.Graph, m core.Mapping) (string, error) {
	if err := m.Validate(g.NumTiles()); err != nil {
		return "", err
	}
	if len(m) != app.NumTasks() {
		return "", fmt.Errorf("viz: mapping covers %d tasks, app has %d", len(m), app.NumTasks())
	}
	const cell = 12
	taskOf := make([]int, g.NumTiles())
	for i := range taskOf {
		taskOf[i] = -1
	}
	for task, tile := range m {
		taskOf[tile] = task
	}
	var b strings.Builder
	hline := strings.Repeat("+"+strings.Repeat("-", cell), g.Width()) + "+\n"
	for y := 0; y < g.Height(); y++ {
		b.WriteString(hline)
		for x := 0; x < g.Width(); x++ {
			tile, _ := g.TileAt(x, y)
			label := "."
			if task := taskOf[tile]; task >= 0 {
				label = app.TaskName(cg.TaskID(task))
				if len(label) > cell-2 {
					label = label[:cell-2]
				}
			}
			fmt.Fprintf(&b, "|%-*s", cell, " "+label)
		}
		b.WriteString("|\n")
		for x := 0; x < g.Width(); x++ {
			tile, _ := g.TileAt(x, y)
			fmt.Fprintf(&b, "|%-*s", cell, fmt.Sprintf(" t%d", tile))
		}
		b.WriteString("|\n")
	}
	b.WriteString(hline)
	return b.String(), nil
}

// LinkLoad is the number of mapped communications traversing one link.
type LinkLoad struct {
	Link  topo.Link
	Count int
}

// LinkUsage computes how many communications of the mapped application
// traverse each physical link, sorted by decreasing count then by source
// tile. Links carrying no traffic are omitted.
func LinkUsage(nw *network.Network, app *cg.Graph, m core.Mapping) ([]LinkLoad, error) {
	if err := m.Validate(nw.NumTiles()); err != nil {
		return nil, err
	}
	if len(m) != app.NumTasks() {
		return nil, fmt.Errorf("viz: mapping covers %d tasks, app has %d", len(m), app.NumTasks())
	}
	t := nw.Topology()
	counts := make(map[[2]int]int)
	for _, e := range app.Edges() {
		links, err := nw.Routing().Route(t, m[e.Src], m[e.Dst])
		if err != nil {
			return nil, err
		}
		for _, l := range links {
			counts[[2]int{int(l.From), int(l.Dir)}]++
		}
	}
	var loads []LinkLoad
	for _, l := range t.Links() {
		if c := counts[[2]int{int(l.From), int(l.Dir)}]; c > 0 {
			loads = append(loads, LinkLoad{Link: l, Count: c})
		}
	}
	sort.Slice(loads, func(i, j int) bool {
		if loads[i].Count != loads[j].Count {
			return loads[i].Count > loads[j].Count
		}
		if loads[i].Link.From != loads[j].Link.From {
			return loads[i].Link.From < loads[j].Link.From
		}
		return loads[i].Link.Dir < loads[j].Link.Dir
	})
	return loads, nil
}

// FormatLinkUsage renders the top-n link loads as a table; n <= 0 shows
// all.
func FormatLinkUsage(loads []LinkLoad, n int) string {
	if n <= 0 || n > len(loads) {
		n = len(loads)
	}
	var b strings.Builder
	for _, l := range loads[:n] {
		fmt.Fprintf(&b, "  tile %2d -%s-> tile %2d : %d communication(s)\n",
			l.Link.From, l.Link.Dir, l.Link.To, l.Count)
	}
	if b.Len() == 0 {
		b.WriteString("  (no traffic)\n")
	}
	return b.String()
}
