package viz

import (
	"strings"
	"testing"

	"phonocmap/internal/cg"
	"phonocmap/internal/core"
	"phonocmap/internal/network"
	"phonocmap/internal/photonic"
	"phonocmap/internal/route"
	"phonocmap/internal/router"
	"phonocmap/internal/topo"
)

func fixtures(t *testing.T) (*topo.Grid, *network.Network, *cg.Graph) {
	t.Helper()
	g, err := topo.NewMesh(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := network.New(g, router.Crux(), route.XY{}, photonic.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return g, nw, cg.MustApp("PIP")
}

func TestMappingGrid(t *testing.T) {
	g, _, app := fixtures(t)
	m := core.IdentityMapping(app.NumTasks())
	out, err := MappingGrid(g, app, m)
	if err != nil {
		t.Fatal(err)
	}
	// Every task name (possibly truncated) appears once; tile 8 is free.
	for i := 0; i < app.NumTasks(); i++ {
		name := app.TaskName(cg.TaskID(i))
		if len(name) > 10 {
			name = name[:10]
		}
		if !strings.Contains(out, name) {
			t.Errorf("grid missing task %q", name)
		}
	}
	if !strings.Contains(out, " .") {
		t.Error("grid missing empty-tile marker")
	}
	if !strings.Contains(out, "t8") {
		t.Error("grid missing tile label t8")
	}
	// 3 rows x 2 lines + 4 horizontal rules.
	if got := strings.Count(out, "\n"); got != 10 {
		t.Errorf("grid has %d lines, want 10", got)
	}
}

func TestMappingGridErrors(t *testing.T) {
	g, _, app := fixtures(t)
	if _, err := MappingGrid(g, app, core.Mapping{0, 1}); err == nil {
		t.Error("accepted short mapping")
	}
	bad := core.IdentityMapping(app.NumTasks())
	bad[0] = bad[1]
	if _, err := MappingGrid(g, app, bad); err == nil {
		t.Error("accepted duplicate mapping")
	}
}

func TestLinkUsage(t *testing.T) {
	_, nw, app := fixtures(t)
	m := core.IdentityMapping(app.NumTasks())
	loads, err := LinkUsage(nw, app, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(loads) == 0 {
		t.Fatal("no loaded links")
	}
	total := 0
	prev := loads[0].Count
	for _, l := range loads {
		if l.Count <= 0 {
			t.Errorf("zero-count load reported: %+v", l)
		}
		if l.Count > prev {
			t.Error("loads not sorted by count")
		}
		prev = l.Count
		total += l.Count
	}
	// Total link traversals equal the sum of hop counts over all edges.
	wantTotal := 0
	for _, e := range app.Edges() {
		wantTotal += nw.Path(m[e.Src], m[e.Dst]).Hops
	}
	if total != wantTotal {
		t.Errorf("total traversals %d, want %d", total, wantTotal)
	}
}

func TestFormatLinkUsage(t *testing.T) {
	_, nw, app := fixtures(t)
	m := core.IdentityMapping(app.NumTasks())
	loads, err := LinkUsage(nw, app, m)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatLinkUsage(loads, 3)
	if got := strings.Count(out, "\n"); got != 3 {
		t.Errorf("top-3 output has %d lines", got)
	}
	all := FormatLinkUsage(loads, 0)
	if got := strings.Count(all, "\n"); got != len(loads) {
		t.Errorf("full output has %d lines, want %d", got, len(loads))
	}
	if FormatLinkUsage(nil, 5) != "  (no traffic)\n" {
		t.Error("empty loads not handled")
	}
}
