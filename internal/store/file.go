package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// FileOptions tunes a file-backed store. The zero value is valid:
// unbounded size.
type FileOptions struct {
	// MaxBytes caps the total payload bytes on disk; past it, Put evicts
	// the oldest-mtime entries until the store fits again. 0 or negative
	// means unbounded.
	MaxBytes int64
}

// File is the stdlib-only file-backed Store: one entry per file under a
// sharded content-addressed layout,
//
//	<dir>/<shard>/<name>.entry
//
// where name is the hex SHA-256 of the key (so arbitrary keys are
// filesystem-safe) and shard is its first two hex characters (bounded
// fan-out per directory). Writes are atomic — encode, write to a
// temporary file in the same shard, fsync, rename — so a crash never
// leaves a half-written entry under a live name; whatever does end up
// damaged (torn by an unsynced crash, bit-rotted, truncated) is detected
// by the header checksum and moved to <dir>/quarantine instead of being
// served, both at open and on the Get that trips over it.
type File struct {
	dir  string
	opts FileOptions

	mu          sync.Mutex
	index       map[string]*fileMeta
	bytes       int64
	evictions   uint64
	quarantined uint64
	closed      bool
	tmpSeq      uint64

	// Test seams for crash injection: wrapWriter interposes on the entry
	// writer (a failing writer simulates a full or dying disk mid-Put),
	// renameHook replaces the atomic rename (a truncate-then-rename hook
	// simulates a machine crash that tore the write). Nil means the real
	// thing.
	wrapWriter func(io.Writer) io.Writer
	renameHook func(oldpath, newpath string) error
}

type fileMeta struct {
	path  string
	size  int64
	mtime time.Time
}

const (
	entrySuffix   = ".entry"
	quarantineDir = "quarantine"
)

// fileName is the content-addressed file stem for a key. Keys are
// normally already hex SHA-256 content addresses; hashing again costs
// little and makes any key filesystem-safe.
func fileName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// EntryPath returns the path a key's entry file occupies under dir —
// exported for tests and operational tooling (inspecting or aging a
// specific entry); the layout is otherwise an implementation detail.
func EntryPath(dir, key string) string {
	name := fileName(key)
	return filepath.Join(dir, name[:2], name+entrySuffix)
}

// OpenFile opens (creating if needed) a file-backed store rooted at dir.
// Every existing entry is verified: readable, checksummed, and keyed
// consistently — anything else is moved to the quarantine subdirectory
// and the boot continues, so one torn write never takes the cache down.
// Leftover temporary files from interrupted writes are removed.
func OpenFile(dir string, opts FileOptions) (*File, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, quarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	f := &File{dir: dir, opts: opts, index: make(map[string]*fileMeta)}
	shards, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: scan %s: %w", dir, err)
	}
	for _, sh := range shards {
		if !sh.IsDir() || len(sh.Name()) != 2 {
			continue
		}
		shardPath := filepath.Join(dir, sh.Name())
		files, err := os.ReadDir(shardPath)
		if err != nil {
			return nil, fmt.Errorf("store: scan %s: %w", shardPath, err)
		}
		for _, fi := range files {
			path := filepath.Join(shardPath, fi.Name())
			if !strings.HasSuffix(fi.Name(), entrySuffix) {
				// Interrupted write: the temp file never got renamed.
				_ = os.Remove(path)
				continue
			}
			info, err := fi.Info()
			if err != nil {
				continue // deleted under us
			}
			e, err := f.readEntry(path)
			if err != nil || fileName(e.Key)+entrySuffix != fi.Name() {
				f.quarantine(path)
				continue
			}
			f.index[e.Key] = &fileMeta{path: path, size: info.Size(), mtime: info.ModTime()}
			f.bytes += info.Size()
		}
	}
	f.evictOverCapLocked()
	return f, nil
}

// Dir returns the store's root directory.
func (f *File) Dir() string { return f.dir }

// readEntry loads and verifies one entry file.
func (f *File) readEntry(path string) (Entry, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Entry{}, err
	}
	return decode(b)
}

// quarantine moves a damaged file into the quarantine subdirectory
// (best-effort: if even the move fails, the file is deleted so it can
// never be served). Callers hold f.mu or have exclusive access.
func (f *File) quarantine(path string) {
	f.quarantined++
	dst := filepath.Join(f.dir, quarantineDir,
		fmt.Sprintf("%s.%d", filepath.Base(path), f.quarantined))
	if err := os.Rename(path, dst); err != nil {
		_ = os.Remove(path)
	}
}

// Get returns the entry for key. A damaged entry is quarantined and
// reported as a miss with a non-nil error.
func (f *File) Get(key string) (Entry, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return Entry{}, false, ErrClosed
	}
	meta, ok := f.index[key]
	if !ok {
		return Entry{}, false, nil
	}
	e, err := f.readEntry(meta.path)
	if err == nil && e.Key != key {
		err = errCorrupt{"entry key mismatch"}
	}
	if err != nil {
		if _, corrupt := err.(errCorrupt); corrupt {
			f.quarantine(meta.path)
		}
		delete(f.index, key)
		f.bytes -= meta.size
		return Entry{}, false, fmt.Errorf("store: get %s: %w", key, err)
	}
	return e, true, nil
}

// Put persists an entry atomically: write to a temp file in the target
// shard, fsync, rename over the final name. On success the size cap is
// enforced by evicting the oldest-mtime entries.
func (f *File) Put(key string, e Entry) error {
	e.Key = key
	b, err := encode(e)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	path := EntryPath(f.dir, key)
	shard := filepath.Dir(path)
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	f.tmpSeq++
	tmp := fmt.Sprintf("%s.tmp%d", path, f.tmpSeq)
	if err := f.writeFile(tmp, b); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	rename := os.Rename
	if f.renameHook != nil {
		rename = f.renameHook
	}
	if err := rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	syncDir(shard)
	info, err := os.Stat(path)
	size := int64(len(b))
	if err == nil {
		size = info.Size()
	}
	if old, ok := f.index[key]; ok {
		f.bytes -= old.size
	}
	//phonocmap:wallclock recency drives cap eviction and warming order only, never result content
	f.index[key] = &fileMeta{path: path, size: size, mtime: time.Now()}
	f.bytes += size
	f.evictOverCapLocked()
	return nil
}

// writeFile writes b to path and fsyncs it, routing through the
// wrapWriter test seam when set.
func (f *File) writeFile(path string, b []byte) error {
	file, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var w io.Writer = file
	if f.wrapWriter != nil {
		w = f.wrapWriter(file)
	}
	if _, err := w.Write(b); err != nil {
		file.Close()
		return err
	}
	if err := file.Sync(); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

// syncDir fsyncs a directory so the rename that landed in it is durable.
// Best-effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// evictOverCapLocked deletes oldest-mtime entries (ties broken by key)
// until the store fits its byte cap again. At least one entry always
// survives: evicting the newest write to satisfy an undersized cap would
// make the store useless rather than small.
func (f *File) evictOverCapLocked() {
	if f.opts.MaxBytes <= 0 {
		return
	}
	for f.bytes > f.opts.MaxBytes && len(f.index) > 1 {
		oldestKey := ""
		var oldest *fileMeta
		for k, m := range f.index {
			if oldest == nil || m.mtime.Before(oldest.mtime) ||
				(m.mtime.Equal(oldest.mtime) && k < oldestKey) {
				oldestKey, oldest = k, m
			}
		}
		_ = os.Remove(oldest.path)
		delete(f.index, oldestKey)
		f.bytes -= oldest.size
		f.evictions++
	}
}

// Keys lists the stored keys newest-first (mtime descending, ties broken
// by key ascending) — the order cache warming consumes.
func (f *File) Keys() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	keys := make([]string, 0, len(f.index))
	for k := range f.index {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		mi, mj := f.index[keys[i]].mtime, f.index[keys[j]].mtime
		if !mi.Equal(mj) {
			return mi.After(mj)
		}
		return keys[i] < keys[j]
	})
	return keys
}

// Delete removes the entry for key (missing keys are a no-op).
func (f *File) Delete(key string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	meta, ok := f.index[key]
	if !ok {
		return nil
	}
	if err := os.Remove(meta.path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: delete %s: %w", key, err)
	}
	delete(f.index, key)
	f.bytes -= meta.size
	return nil
}

// Len reports the number of stored entries.
func (f *File) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.index)
}

// Close marks the store closed; subsequent operations fail with
// ErrClosed. Every write was already fsynced, so there is nothing to
// flush.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	return nil
}

// Stats reports the store's current size and maintenance counters.
func (f *File) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return Stats{
		Entries:     len(f.index),
		Bytes:       f.bytes,
		Evictions:   f.evictions,
		Quarantined: f.quarantined,
	}
}
