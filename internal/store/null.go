package store

// Null is the no-op store: it persists nothing, misses every lookup and
// never fails. It is the default backing of the service's result cache
// when no persistence is configured, so the cache code has exactly one
// shape — a tier over a Store — instead of a nil branch per call site.
type Null struct{}

// Get always misses.
func (Null) Get(string) (Entry, bool, error) { return Entry{}, false, nil }

// Put drops the entry.
func (Null) Put(string, Entry) error { return nil }

// Keys is always empty.
func (Null) Keys() []string { return nil }

// Delete is a no-op.
func (Null) Delete(string) error { return nil }

// Len is always zero.
func (Null) Len() int { return 0 }

// Close is a no-op.
func (Null) Close() error { return nil }

// Stats is all zeros.
func (Null) Stats() Stats { return Stats{} }
