// Package store persists completed optimization results across process
// restarts. The paper's equal-budget protocol makes every run a pure
// function of its scenario spec, and every spec has a canonical-JSON
// content address (scenario.Spec.Key), so a completed result never goes
// stale: a persistent content-addressed store turns node restarts and
// fleet redeployments into cache hits instead of recomputed sweeps.
//
// A Store holds the full cached payload of a run — the winning
// core.RunResult, its improvement trace, the per-island evaluation
// breakdown and the analysis report — in a versioned canonical-JSON
// encoding, so a replay from disk is byte-identical to the live run it
// preserves. Two implementations ship: Null (drops everything; the
// default when no persistence is configured) and File (one fsynced file
// per key under a sharded content-addressed directory layout, written
// atomically, with corrupt entries quarantined instead of served).
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"

	"phonocmap/internal/core"
	"phonocmap/internal/scenario"
)

// Version is the on-disk encoding version. Decoding rejects any other
// version, so a future incompatible Entry change bumps this constant and
// old files are quarantined instead of misread.
const Version = 1

// Entry is the full cached payload of one completed optimization run,
// keyed by its spec's content address — exactly what the service's
// in-memory result cache holds per key, so a disk hit replays the same
// bytes a live-run cache hit would.
type Entry struct {
	// Key is the spec's content address (scenario.Spec.Key). It is
	// stored inside the payload too, so a file that was renamed or
	// cross-linked to the wrong key is detected as corrupt.
	Key string `json:"key"`
	// Result is the winning run, verbatim (including its wall-clock
	// Duration — replays report the original run's timing).
	Result core.RunResult `json:"result"`
	// Trace is the improvement timeline of the live run.
	Trace []scenario.TraceEvent `json:"trace,omitempty"`
	// IslandEvals is the per-island evaluation breakdown (one entry per
	// seed of the spec).
	IslandEvals []int `json:"island_evals,omitempty"`
	// Report is the post-optimization analysis report, nil when the spec
	// requested no analyses.
	Report *scenario.Report `json:"report,omitempty"`
}

// Store is a persistent content-addressed result store. Implementations
// must be safe for concurrent use.
type Store interface {
	// Get returns the entry for key. ok is false on a miss; a non-nil
	// error means the lookup itself failed (e.g. the entry existed but
	// was corrupt and has been quarantined) — callers treat that as a
	// miss and count the error.
	Get(key string) (e Entry, ok bool, err error)
	// Put persists an entry under key, replacing any previous one.
	Put(key string, e Entry) error
	// Keys lists the stored keys, most recently written first (ties
	// broken by key, so the order is deterministic) — the order boot-time
	// cache warming consumes.
	Keys() []string
	// Delete removes the entry for key; deleting a missing key is not an
	// error.
	Delete(key string) error
	// Len reports the number of stored entries.
	Len() int
	// Close releases the store. Operations after Close fail with
	// ErrClosed; Close itself is idempotent.
	Close() error
}

// Stats describes a store's size and lifetime maintenance counters.
// Implementations without a meaningful notion of size report zeros.
type Stats struct {
	// Entries and Bytes are the store's current size.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// Evictions counts entries removed by the size cap (oldest-mtime
	// first); Quarantined counts corrupt entries moved aside instead of
	// served.
	Evictions   uint64 `json:"evictions"`
	Quarantined uint64 `json:"quarantined"`
}

// StatReader is the optional stats surface of a Store; the service's
// /metrics and /v1/cache endpoints read it when present.
type StatReader interface {
	Stats() Stats
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// errCorrupt tags decode failures so File can distinguish "entry is
// damaged, quarantine it" from I/O errors.
type errCorrupt struct{ reason string }

func (e errCorrupt) Error() string { return "store: corrupt entry: " + e.reason }

// header is the first line of every entry file:
//
//	phonocmap-store v<version> <sha256-hex-of-payload> <payload-bytes>\n
//
// followed by the payload (the entry's canonical JSON). The checksum and
// length make truncated or bit-rotted files detectable without trusting
// the JSON decoder to notice.
const headerMagic = "phonocmap-store"

// encode renders an entry into its on-disk representation.
func encode(e Entry) ([]byte, error) {
	payload, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("store: encode entry: %w", err)
	}
	sum := sha256.Sum256(payload)
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s v%d %s %d\n", headerMagic, Version, hex.EncodeToString(sum[:]), len(payload))
	buf.Write(payload)
	return buf.Bytes(), nil
}

// decode parses and verifies an on-disk entry. Every failure mode —
// short header, unknown version, length or checksum mismatch, JSON
// damage — comes back as errCorrupt.
func decode(b []byte) (Entry, error) {
	nl := bytes.IndexByte(b, '\n')
	if nl < 0 {
		return Entry{}, errCorrupt{"missing header"}
	}
	fields := bytes.Fields(b[:nl])
	if len(fields) != 4 || string(fields[0]) != headerMagic {
		return Entry{}, errCorrupt{"malformed header"}
	}
	if v := string(fields[1]); v != "v"+strconv.Itoa(Version) {
		return Entry{}, errCorrupt{"unsupported version " + v}
	}
	wantLen, err := strconv.Atoi(string(fields[3]))
	if err != nil {
		return Entry{}, errCorrupt{"bad length field"}
	}
	payload := b[nl+1:]
	if len(payload) != wantLen {
		return Entry{}, errCorrupt{fmt.Sprintf("payload is %d bytes, header says %d", len(payload), wantLen)}
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != string(fields[2]) {
		return Entry{}, errCorrupt{"checksum mismatch"}
	}
	var e Entry
	if err := json.Unmarshal(payload, &e); err != nil {
		return Entry{}, errCorrupt{"payload: " + err.Error()}
	}
	return e, nil
}
